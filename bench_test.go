package pactrain

// This file carries one benchmark per table/figure of the paper's
// evaluation (DESIGN.md §3) plus micro-benchmarks of the primitives on the
// critical path. The figure benchmarks run the same harness code as
// cmd/pactrain-bench at reduced scale (the full-fidelity settings take
// minutes; `go run ./cmd/pactrain-bench` regenerates the paper-scale
// output); each reports the experiment's headline quantity as a custom
// metric.

import (
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/compress"
	"pactrain/internal/core"
	"pactrain/internal/data"
	"pactrain/internal/harness"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/tensor"
)

func benchOpts() harness.Options {
	return harness.Options{Quick: true, World: 4, Samples: 256, Seed: 2}
}

// BenchmarkTable1Properties regenerates Table 1 (method-property matrix).
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.VerifyAgainstPaper(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3TTA regenerates Fig. 3 (relative TTA across bandwidths) and
// reports the PacTrain max speedup.
func BenchmarkFig3TTA(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.MaxSpeedup()
	}
	b.ReportMetric(speedup, "max_speedup_x")
}

// BenchmarkFig5Curves regenerates Fig. 5 (time-to-accuracy curves) and
// reports PacTrain's speedup over all-reduce.
func BenchmarkFig5Curves(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.SpeedupVsAllReduce
	}
	b.ReportMetric(speedup, "speedup_vs_allreduce_x")
}

// BenchmarkFig6PruningSweep regenerates Fig. 6 (pruning ratio vs final
// accuracy) and reports the accuracy drop at ratio 0.5.
func BenchmarkFig6PruningSweep(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := res.AccuracyDrop(res.Models[0], 0.5); ok {
			drop = d
		}
	}
	b.ReportMetric(drop, "acc_drop_at_0.5")
}

// BenchmarkAblationMaskTracker sweeps the Mask Tracker stability window.
func BenchmarkAblationMaskTracker(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunAblationMT(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		frac = res.Rows[0].StableFraction
	}
	b.ReportMetric(frac, "compact_fraction_w1")
}

// BenchmarkAblationTernary compares pruning-only vs pruning+ternary.
func BenchmarkAblationTernary(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunAblationTernary(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Rows[0].PlainTTA / res.Rows[0].TernaryTTA
	}
	b.ReportMetric(gain, "ternary_gain_100mbps_x")
}

// BenchmarkAblationTopology compares Fig. 4 chained switches vs a flat
// switch at equal link speed.
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunAblationTopo(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectivesGrid regenerates the collective-algorithm grid and
// reports the hierarchical-over-ring all-reduce speedup on the two-rack
// fabric.
func BenchmarkCollectivesGrid(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunCollectives(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.HierarchicalSpeedup("all-reduce")
	}
	b.ReportMetric(speedup, "hier_vs_ring_x")
}

// --- Micro-benchmarks of the primitives on the critical path ---------------

// BenchmarkRingAllReduce8MiB measures the simulated collective engine
// itself (data movement + pricing) for a 2Mi-element bucket on 8 workers.
func BenchmarkRingAllReduce8MiB(b *testing.B) {
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: netsim.Gbps})
	cluster := collective.NewCluster(8, netsim.NewFabric(topo))
	n := 2 << 20
	vecs := make([][]float32, 8)
	for r := range vecs {
		vecs[r] = make([]float32, n)
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		for r := 0; r < 8; r++ {
			go func(rank int) {
				cluster.AllReduceSum(rank, vecs[rank], collective.WireFP32, 0)
				done <- struct{}{}
			}(r)
		}
		for r := 0; r < 8; r++ {
			<-done
		}
	}
}

// BenchmarkCompressors measures Encode throughput of every dense scheme on
// a 1Mi-element gradient.
func BenchmarkCompressors(b *testing.B) {
	n := 1 << 20
	r := tensor.NewRNG(1)
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.NormFloat64())
	}
	dense := map[string]compress.DenseCompressor{
		"fp32":     compress.NewFP32(),
		"fp16":     compress.NewFP16(),
		"terngrad": compress.NewTernGrad(1),
		"qsgd":     compress.NewQSGD(256, 1),
		"thc":      compress.NewTHC(256),
	}
	for name, c := range dense {
		c := c
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(n * 4))
			for i := 0; i < b.N; i++ {
				c.Encode(grad)
			}
		})
	}
	b.Run("topk-0.01", func(b *testing.B) {
		c := compress.NewTopK(0.01)
		b.SetBytes(int64(n * 4))
		for i := 0; i < b.N; i++ {
			c.Encode(grad)
		}
	})
}

// BenchmarkMaskCompact measures PacTrain's gather/scatter compaction at 50%
// sparsity — the hot loop of the compact path.
func BenchmarkMaskCompact(b *testing.B) {
	n := 1 << 20
	keep := make([]bool, n)
	for i := 0; i < n; i += 2 {
		keep[i] = true
	}
	mc := compress.NewMaskCompact(false, 1)
	mc.SetMask(compress.MaskIndices(keep), n)
	grad := make([]float32, n)
	out := make([]float32, n)
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Decode(mc.Encode(grad), out)
	}
}

// BenchmarkTernarize measures the TernGrad quantization kernel.
func BenchmarkTernarize(b *testing.B) {
	n := 1 << 20
	r := tensor.NewRNG(1)
	grad := make([]float32, n)
	out := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.NormFloat64())
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.Ternarize(r, grad, out)
	}
}

// BenchmarkConvForward measures the Conv2D layer on a lite-model-sized
// input, the compute kernel of the VGG/ResNet twins.
func BenchmarkConvForward(b *testing.B) {
	r := tensor.NewRNG(1)
	layer := nn.NewConv2D("conv", r, 8, 16, 3, 1, 1)
	x := tensor.Randn(r, 1, 8, 8, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
	}
}

// BenchmarkTrainingIteration measures one full distributed training
// iteration (forward, backward, GSE, bucketed compact all-reduce, step)
// amortized over a short PacTrain run.
func BenchmarkTrainingIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig("MLP", "pactrain-ternary")
		cfg.World = 4
		cfg.Data = data.CIFAR10Like(128, 3)
		cfg.TestSamples = 32
		cfg.Epochs = 2
		cfg.BatchSize = 8
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations)/res.WallSeconds, "iters/s")
	}
}
