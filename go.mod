module pactrain

go 1.24
