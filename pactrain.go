// Package pactrain is the public API of the PacTrain reproduction: a
// communication-efficient distributed-training framework combining
// unstructured pruning, Gradient Sparsity Enforcement, a Mask Tracker that
// recovers sparsity patterns from opaque DDP gradient buckets, and adaptive
// mask-compact gradient compression that remains compatible with ring
// all-reduce (Wang, Wu, Li, Kutscher — DAC 2025, arXiv:2505.18563).
//
// The package fronts the internal implementation:
//
//   - Train runs one distributed training job over a simulated
//     bandwidth-constrained fabric with any of the paper's aggregation
//     schemes (all-reduce, fp16, topk, DGC, TernGrad, QSGD, THC, parameter
//     server, OmniReduce-style, Zen-style, pactrain, pactrain-ternary).
//   - Experiment regenerates any table or figure of the paper's evaluation.
//   - NewCompressor, topology constructors, and the workload presets expose
//     the building blocks for custom studies.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package pactrain

import (
	"fmt"

	"pactrain/internal/audit"
	"pactrain/internal/collective"
	"pactrain/internal/compress"
	"pactrain/internal/core"
	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/harness"
	"pactrain/internal/harness/engine"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/obs"
	"pactrain/internal/prune"
)

// Re-exported core types. Config describes a distributed training run;
// Result is its outcome (accuracy curve, TTA, communication statistics,
// per-iteration comm log).
type (
	// Config configures a training run; construct with DefaultConfig.
	Config = core.Config
	// Result is a completed run's summary.
	Result = core.Result
	// Workload couples a paper model with its calibrated recipe.
	Workload = harness.Workload
	// Options configures experiment harness runs.
	Options = harness.Options
	// Engine is the shared experiment scheduler: a concurrency-limited
	// worker pool that deduplicates identical training jobs across
	// experiments and optionally caches results on disk.
	Engine = engine.Engine
	// EngineStats counts an engine's scheduling outcomes.
	EngineStats = engine.Stats
	// Topology is a simulated network graph.
	Topology = netsim.Topology
	// DatasetConfig configures synthetic dataset generation.
	DatasetConfig = data.Config
	// CommProfile is a full-size model's communication profile.
	CommProfile = nn.CommProfile
)

// Bandwidth helpers (bits per second).
const (
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// Pruning method selectors.
const (
	GlobalMagnitude = prune.GlobalMagnitude
	LayerMagnitude  = prune.LayerMagnitude
	GraSP           = prune.GraSP
)

// DefaultConfig returns a ready-to-run configuration for a paper workload
// ("VGG19", "ResNet18", "ResNet152", "ViT-Base-16", or "MLP") and scheme.
func DefaultConfig(model, scheme string) Config {
	return core.DefaultConfig(model, scheme)
}

// Train executes a distributed training run and returns its result.
func Train(cfg Config) (*Result, error) {
	return core.Run(cfg)
}

// Schemes lists every aggregation scheme Train accepts, in the scheme
// registry's canonical order.
func Schemes() []string { return core.Schemes() }

// SchemeInfo is one scheme-catalog entry (name, description, aliases).
type SchemeInfo = core.SchemeInfo

// SchemeCatalog lists every scheme with its description — the table behind
// `pactrain-bench -list-schemes` and the service's GET /v1/schemes.
func SchemeCatalog() []SchemeInfo { return core.SchemeCatalog() }

// CollectiveAlgorithms lists the registered collective algorithms
// (Config.Collective vocabulary), the default ring first.
func CollectiveAlgorithms() []string { return collective.AlgorithmNames() }

// CollectiveInfo is one collective-algorithm catalog entry (name,
// description).
type CollectiveInfo = collective.AlgorithmInfo

// CollectiveCatalog lists every collective algorithm with its description —
// the table behind `pactrain-bench -list-collectives` and the service's
// GET /v1/collectives, mirroring SchemeCatalog for schemes.
func CollectiveCatalog() []CollectiveInfo { return collective.AlgorithmCatalog() }

// CanonicalCollective normalizes a collective-algorithm selector (the empty
// string canonicalizes to "ring") and errors on unknown names with the
// valid vocabulary.
func CanonicalCollective(name string) (string, error) {
	return collective.CanonicalAlgorithm(name)
}

// NewCompressor constructs a gradient compressor by figure name (e.g.
// "fp16", "topk-0.01", "terngrad"); see internal/compress for the suite.
func NewCompressor(name string, seed uint64) (compress.Compressor, error) {
	return compress.ByName(name, seed)
}

// Fig4Topology builds the paper's evaluation network (Fig. 4): eight GPU
// servers across three chained virtual switches whose two inter-switch
// links run at the given bottleneck speed.
func Fig4Topology(bottleneckBps float64) *Topology {
	return netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bottleneckBps})
}

// FlatTopology builds n hosts on one switch at uniform link speed.
func FlatTopology(n int, bandwidthBps float64) *Topology {
	return netsim.FlatTopology(n, bandwidthBps, 1e-4)
}

// TwoRackTopology builds n hosts split across two switches joined by a
// single bottleneck link — the minimal fabric where the hierarchical
// collective algorithm pays off.
func TwoRackTopology(n int, bottleneckBps float64) *Topology {
	return netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: n, BottleneckBps: bottleneckBps})
}

// PaperWorkloads returns the four evaluation models with calibrated
// recipes and per-model target accuracies.
func PaperWorkloads() []Workload { return harness.PaperWorkloads() }

// Profiles returns the communication profiles of the paper's full-size
// models.
func Profiles() []CommProfile { return nn.Profiles() }

// A40ComputeModel returns the default simulated device model for a
// per-sample FLOP count.
func A40ComputeModel(flopsPerSample int64) ddp.ComputeModel {
	return ddp.A40ComputeModel(flopsPerSample)
}

// Overlap selects how bucket communication interleaves with backward
// compute (Config.Overlap): OverlapNone serializes compute then
// communication, OverlapBackward launches each DDP bucket's collective at
// its per-rank gradient-ready barrier (the event-timeline model, DESIGN.md
// §9).
type Overlap = ddp.Overlap

// Overlap modes.
const (
	OverlapNone     = ddp.OverlapNone
	OverlapBackward = ddp.OverlapBackward
)

// ParseOverlap resolves an overlap selector ("", "none", "backward") to a
// mode, erroring with the valid vocabulary on unknown names; it round-trips
// with Overlap.String.
func ParseOverlap(name string) (Overlap, error) { return ddp.ParseOverlap(name) }

// OverlapModes lists the selector vocabulary ParseOverlap accepts.
func OverlapModes() []string { return ddp.OverlapNames() }

// RankCompute describes per-rank compute heterogeneity (Config.RankCompute):
// straggler multipliers plus deterministically seeded per-iteration jitter.
type RankCompute = ddp.RankCompute

// OneSlowRank returns per-rank compute-time multipliers where the last of n
// ranks runs factor× slower — the canonical single-straggler profile for
// RankCompute.Multipliers.
func OneSlowRank(n int, factor float64) []float64 { return netsim.OneSlowRank(n, factor) }

// RampRanks returns multipliers ramping linearly from 1 to maxFactor across
// n ranks — a mixed-hardware cluster profile.
func RampRanks(n int, maxFactor float64) []float64 { return netsim.RampRanks(n, maxFactor) }

// IterationWireBytes returns, for every recorded training iteration, the
// payload bytes one worker put on the wire — the quantity PacTrain's
// adaptive compression shrinks once the Mask Tracker stabilizes. It
// returns nil when the run was not recorded (Config.RecordComm false).
func IterationWireBytes(res *Result) []float64 {
	if res.CommLog == nil {
		return nil
	}
	world := len(res.WeightChecksums)
	out := make([]float64, len(res.CommLog.Iters))
	for i, ops := range res.CommLog.Iters {
		out[i] = core.WireBytesPerWorker(ops, world)
	}
	return out
}

// Report is a rendered experiment result.
type Report = harness.Report

// ExperimentDef describes one registry entry: an experiment id, the paper
// artifact it regenerates, and its runner.
type ExperimentDef = harness.Definition

// ExperimentDefs lists the experiment registry in canonical order — one
// entry per paper artifact plus the ablations (see DESIGN.md §3). The same
// table backs the pactrain-bench CLI and the pactrain-serve service.
func ExperimentDefs() []ExperimentDef { return harness.Experiments() }

// LookupExperiment fetches a registry entry by id.
func LookupExperiment(id string) (ExperimentDef, bool) { return harness.ExperimentByID(id) }

// ExperimentIDs lists the identifiers Experiment accepts.
func ExperimentIDs() []string { return harness.ExperimentIDs() }

// Experiment regenerates a paper table/figure (or ablation) by id and
// returns its report.
//
// Experiments submit their training grids to a shared scheduler (see
// NewExperimentEngine) that deduplicates identical jobs, bounds parallelism
// (Options.Parallelism), and optionally caches results on disk
// (Options.CacheDir). Set Options.Engine to share one scheduler across
// several Experiment calls so repeated (model, scheme, seed) trainings
// execute once per process.
func Experiment(id string, opt Options) (Report, error) {
	def, ok := harness.ExperimentByID(id)
	if !ok {
		return nil, fmt.Errorf("pactrain: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return def.Run(opt)
}

// NewExperimentEngine builds the scheduler described by the options; assign
// it to Options.Engine and reuse the Options across Experiment calls to
// deduplicate training work between experiments.
func NewExperimentEngine(opt Options) *Engine {
	return harness.NewEngine(opt)
}

// ExperimentJSON serializes an experiment report as an indented
// machine-readable JSON document, the structured counterpart of
// Report.Render.
func ExperimentJSON(id string, opt Options, rep Report) ([]byte, error) {
	return harness.ReportJSON(id, opt, rep)
}

// Fingerprint returns the deterministic digest identifying everything about
// a config that can influence its training Result — the deduplication and
// cache key the experiment engine schedules by.
func Fingerprint(cfg Config) string {
	return cfg.Fingerprint()
}

// BenchReport is a perf-lane result set: the pinned macro-benchmark grid's
// wall times, serialized to BENCH_<grid>.json and diffed against a
// committed baseline in CI (DESIGN.md §10).
type BenchReport = harness.BenchReport

// PerfOptions configures a perf-lane run.
type PerfOptions = harness.PerfOptions

// PerfCase is one pinned benchmark; PerfOptions.Extra lets callers append
// their own entries (the serve load generator's serve-* measurements) to
// the same report and regression gate.
type PerfCase = harness.PerfCase

// BenchTolerance is the calibration-normalized slowdown CI fails on.
const BenchTolerance = harness.BenchTolerance

// RunPerf executes the pinned perf grid ("quick" or "full") and returns its
// report.
func RunPerf(opt PerfOptions) *BenchReport { return harness.RunPerf(opt) }

// BenchPath is the canonical baseline filename for a grid
// ("BENCH_quick.json", "BENCH_full.json").
func BenchPath(grid string) string { return harness.BenchPath(grid) }

// WriteBench serializes a perf report to path.
func WriteBench(path string, r *BenchReport) error { return harness.WriteBench(path, r) }

// LoadBench reads a perf baseline.
func LoadBench(path string) (*BenchReport, error) { return harness.LoadBench(path) }

// CompareBench returns one line per benchmark whose calibration-normalized
// wall time regressed beyond tol; empty means the lane passes.
func CompareBench(base, cur *BenchReport, tol float64) []string {
	return harness.CompareBench(base, cur, tol)
}

// Tracer collects per-rank simulation spans — compute, barrier waits,
// collectives, adaptive decisions — from recorded runs, for export as
// Chrome trace-event JSON that Perfetto and chrome://tracing open directly.
// Hang one on Options.Tracer (experiments) or call TraceRun (single runs);
// tracing is observation-only and never perturbs reports or fingerprints.
type Tracer = obs.Tracer

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// TraceRun derives the per-rank timeline of one recorded run (the config
// must have RecordComm set, as DefaultConfig does) into the tracer.
// Identical configs are traced once.
func TraceRun(tr *Tracer, label string, cfg Config, res *Result) {
	harness.TraceRun(tr, label, cfg, res)
}

// WriteTrace renders everything the tracer collected as a Chrome
// trace-event JSON file.
func WriteTrace(tr *Tracer, path string) error { return tr.Build().WriteFile(path) }

// TraceSummary renders a human-readable per-span-kind aggregate of the
// tracer's contents.
func TraceSummary(tr *Tracer) string { return tr.Summary() }

// ValidateTraceFile structurally checks a trace-event JSON file: parseable,
// spans non-negative and metadata-consistent, instants well-scoped. CI runs
// it on generated traces.
func ValidateTraceFile(path string) error { return obs.ValidateFile(path) }

// Auditor accumulates counterfactual audit reports across experiment runs,
// deduplicated by config fingerprint. Hang one on Options.Auditor; auditing
// is derived purely from recorded logs and never perturbs reports,
// fingerprints, or caches (DESIGN.md §13).
type Auditor = audit.Collector

// AuditReport is one run's counterfactual ledger: per-round candidate
// quotes, cumulative regret versus the per-round oracle and the best static
// format, switch-efficiency verdicts, and predicted-versus-actual cost
// calibration per format.
type AuditReport = audit.Report

// AuditOptions configures an audit replay (staleness injection, per-round
// ledger retention).
type AuditOptions = audit.Options

// NewAuditor returns an empty audit collector.
func NewAuditor() *Auditor { return audit.NewCollector() }

// AuditRun replays one recorded run's controller decisions through the
// pricing arithmetic the controller used and returns its ledger. The config
// must be the one the run was recorded under (DESIGN.md §8) and must have
// RecordComm set, as DefaultConfig does.
func AuditRun(label string, cfg Config, res *Result, opt AuditOptions) (*AuditReport, error) {
	return harness.AuditRun(label, cfg, res, opt)
}

// WriteAuditReports serializes audit reports as an indented JSON artifact —
// byte-identical across parallelism and kernel budgets.
func WriteAuditReports(path string, reports []*AuditReport) error {
	return audit.WriteReports(path, reports)
}

// AuditSummary renders the collected ledgers as human-readable regret,
// calibration, and switch tables.
func AuditSummary(reports []*AuditReport) string { return audit.Summary(reports) }
