// Pruning/accuracy trade-off: the Fig. 6 experiment on one workload. Sweep
// the pruning ratio from 0 to 0.99 and report the final accuracy of the
// full PacTrain pipeline (prune → GSE → mask-tracked compact all-reduce).
// The paper's observation — accuracy holds below ~0.8 and collapses toward
// 0.99 — reproduces on the synthetic task.
//
//	go run ./examples/pruning-accuracy
package main

import (
	"fmt"
	"log"

	"pactrain"
)

func main() {
	ratios := []float64{0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.99}

	fmt.Printf("%-8s %-10s %-10s %-14s %s\n", "ratio", "final acc", "best acc", "compact path", "bar")
	var baseline float64
	for _, ratio := range ratios {
		scheme := "pactrain"
		if ratio == 0 {
			scheme = "all-reduce" // unpruned reference
		}
		cfg := pactrain.DefaultConfig("MLP", scheme)
		cfg.World = 4
		cfg.PruneRatio = ratio
		cfg.Epochs = 8
		cfg.Data.Samples = 512
		res, err := pactrain.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if ratio == 0 {
			baseline = res.FinalAcc
		}
		bar := ""
		for i := 0; i < int(res.FinalAcc*40); i++ {
			bar += "█"
		}
		fmt.Printf("%-8.2f %-10.3f %-10.3f %-14s %s\n",
			ratio, res.FinalAcc, res.BestAcc,
			fmt.Sprintf("%.0f%%", res.StableFraction*100), bar)
	}
	fmt.Printf("\nunpruned reference accuracy: %.3f\n", baseline)
	fmt.Println("expect: minimal degradation below ratio 0.8, collapse toward 0.99 (paper Fig. 6)")
}
