// Bandwidth sweep: the paper's central experiment in miniature. Train one
// workload under each aggregation scheme at 100 Mbps, 500 Mbps, and 1 Gbps
// bottleneck links (the Fig. 4 topology) and report time-to-accuracy — the
// crossover structure of Fig. 3: compression matters more as the network
// gets slower, and schemes that hurt convergence (aggressive TopK) lose even
// with tiny payloads.
//
//	go run ./examples/bandwidth-sweep
package main

import (
	"fmt"
	"log"

	"pactrain"
)

func main() {
	schemes := []string{"all-reduce", "fp16", "topk-0.01", "pactrain-ternary"}
	bandwidths := []struct {
		label string
		bps   float64
	}{
		{"100 Mbps", 100 * pactrain.Mbps},
		{"500 Mbps", 500 * pactrain.Mbps},
		{"1 Gbps", 1 * pactrain.Gbps},
	}

	fmt.Printf("%-18s", "TTA(75%) \\ link")
	for _, bw := range bandwidths {
		fmt.Printf(" %12s", bw.label)
	}
	fmt.Println()

	baseline := map[string]float64{}
	for _, scheme := range schemes {
		fmt.Printf("%-18s", scheme)
		for _, bw := range bandwidths {
			cfg := pactrain.DefaultConfig("MLP", scheme)
			cfg.World = 4
			cfg.BottleneckBps = bw.bps
			cfg.Epochs = 6
			cfg.Data.Samples = 512
			cfg.TargetAcc = 0.75
			res, err := pactrain.Train(cfg)
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%.2fs", res.TTASeconds)
			if !res.ReachedTarget {
				cell = ">" + cell
			}
			if scheme == "all-reduce" {
				baseline[bw.label] = res.TTASeconds
			} else if res.ReachedTarget {
				cell += fmt.Sprintf(" (%.1f×)", baseline[bw.label]/res.TTASeconds)
			}
			fmt.Printf(" %12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\n(×: speedup over all-reduce at the same bandwidth; > : target not reached)")
}
