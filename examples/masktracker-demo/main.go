// Mask Tracker demo: watch PacTrain's adaptive compression switch paths.
//
// The run records every iteration's communication. Before pruning, every
// bucket synchronizes full-size fp32. At the pruning epoch the gradient
// support shrinks; the Mask Tracker observes the new pattern on the
// aggregated buckets, waits for it to hold for the stability window, pays
// one bitmap broadcast to re-share the mask, and then switches to compact
// ternary all-reduce — visible here as a cliff in per-iteration wire bytes.
//
//	go run ./examples/masktracker-demo
package main

import (
	"fmt"
	"log"

	"pactrain"
)

func main() {
	cfg := pactrain.DefaultConfig("MLP", "pactrain-ternary")
	cfg.World = 4
	cfg.Epochs = 4
	cfg.PretrainEpochs = 1 // dense warm-up, then prune
	cfg.PruneRatio = 0.6
	cfg.StableWindow = 2
	cfg.Data.Samples = 256

	res, err := pactrain.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	bytesPerIter := pactrain.IterationWireBytes(res)
	itersPerEpoch := len(bytesPerIter) / cfg.Epochs

	fmt.Println("per-iteration wire bytes per worker (one row per iteration):")
	fmt.Println()
	maxBytes := 0.0
	for _, b := range bytesPerIter {
		if b > maxBytes {
			maxBytes = b
		}
	}
	for i, b := range bytesPerIter {
		marker := ""
		if i == 0 {
			marker = "  <- dense warm-up (full fp32 sync)"
		}
		if i == itersPerEpoch {
			marker = "  <- pruned here; tracker re-learning the mask"
		}
		bar := ""
		for j := 0; j < int(b/maxBytes*48); j++ {
			bar += "▇"
		}
		fmt.Printf("iter %3d %9.0f B %s%s\n", i+1, b, bar, marker)
	}
	fmt.Printf("\nmask sparsity: %.0f%%   compact-path fraction: %.0f%%\n",
		res.MaskSparsity*100, res.StableFraction*100)
	fmt.Printf("first iteration: %.0f B/worker; last iteration: %.0f B/worker (%.1f× smaller)\n",
		bytesPerIter[0], bytesPerIter[len(bytesPerIter)-1],
		bytesPerIter[0]/bytesPerIter[len(bytesPerIter)-1])
}
