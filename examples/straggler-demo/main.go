// Straggler demo: the per-rank event timeline in action. Four edge-grade
// workers train behind a 100 Mbps Fig. 4 bottleneck while the last rank
// runs 2× slower; every collective launches at the barrier over the ranks'
// gradient-ready times, so the straggler holds the whole ring. The demo
// compares dense fp32 against PacTrain under both overlap models: the
// straggler stretches every scheme's clock, but PacTrain's compressed
// communication keeps its time-to-accuracy strictly ahead, and per-bucket
// backward overlap claws back part of the straggler's cost by hiding
// communication under the (now longer) backward pass.
//
//	go run ./examples/straggler-demo
package main

import (
	"fmt"
	"log"

	"pactrain"
	"pactrain/internal/metrics"
)

func config(scheme string, overlap pactrain.Overlap, straggler float64) pactrain.Config {
	cfg := pactrain.DefaultConfig("MLP", scheme)
	cfg.World = 4
	cfg.Lite.Width = 8
	cfg.Data.Samples = 320
	cfg.Epochs = 6
	cfg.BatchSize = 8
	cfg.TargetAcc = 0.70
	cfg.Seed = 3
	cfg.BottleneckBps = 100 * pactrain.Mbps
	cfg.Overlap = overlap
	// An edge-class accelerator (~0.23 TFLOP/s) makes compute a meaningful
	// share of the iteration — the regime where stragglers actually bite.
	cfg.Compute.DeviceFLOPS = 0.23e12
	if straggler > 1 {
		cfg.RankCompute.Multipliers = pactrain.OneSlowRank(cfg.World, straggler)
	}
	return cfg
}

func main() {
	fmt.Println("one slow rank on edge workers: per-rank timelines, launch barriers, overlap")
	fmt.Println("fabric: Fig. 4 @ 100 Mbps bottleneck; last of 4 ranks 2× slower")
	fmt.Println()
	fmt.Printf("%-18s %-10s %12s %12s %12s\n",
		"scheme", "overlap", "uniform TTA", "straggler", "degradation")

	for _, scheme := range []string{"all-reduce", "pactrain-ternary"} {
		for _, overlap := range []pactrain.Overlap{pactrain.OverlapNone, pactrain.OverlapBackward} {
			tta := func(straggler float64) float64 {
				res, err := pactrain.Train(config(scheme, overlap, straggler))
				if err != nil {
					log.Fatal(err)
				}
				t, _ := res.Curve.TTA(0.70)
				return t
			}
			uniform := tta(1)
			slow := tta(2)
			fmt.Printf("%-18s %-10s %12s %12s %11.3f×\n",
				scheme, overlap, metrics.FormatSeconds(uniform),
				metrics.FormatSeconds(slow), slow/uniform)
		}
	}

	fmt.Println()
	fmt.Println("The straggler stretches every clock, but PacTrain stays strictly")
	fmt.Println("ahead of dense fp32, and backward overlap hides part of the cost —")
	fmt.Println("the slow rank's longer backward is more room to hide bytes under.")
}
