// Quickstart: train one model with PacTrain and with the plain all-reduce
// baseline on a bandwidth-constrained 4-worker cluster, and compare
// time-to-accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pactrain"
)

func main() {
	run := func(scheme string) *pactrain.Result {
		cfg := pactrain.DefaultConfig("MLP", scheme)
		cfg.World = 4
		cfg.BottleneckBps = 500 * pactrain.Mbps // Fig. 4 topology, constrained links
		cfg.Epochs = 6
		cfg.Data.Samples = 512
		cfg.TargetAcc = 0.75
		res, err := pactrain.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("training with native all-reduce...")
	base := run("all-reduce")
	fmt.Println("training with PacTrain (prune 0.5 + ternary)...")
	pac := run("pactrain-ternary")

	fmt.Printf("\n%-22s %12s %12s %12s\n", "scheme", "final acc", "sim time", "TTA(75%)")
	for _, r := range []*pactrain.Result{base, pac} {
		fmt.Printf("%-22s %12.3f %11.2fs %11.2fs\n",
			r.Scheme, r.FinalAcc, r.SimSeconds, r.TTASeconds)
	}
	fmt.Printf("\nPacTrain reached the target %.2f× faster than all-reduce.\n",
		base.TTASeconds/pac.TTASeconds)
	fmt.Printf("PacTrain synchronized %.0f%% of its iterations on the compact path\n",
		pac.StableFraction*100)
	fmt.Printf("after pruning %.0f%% of the weights.\n", pac.MaskSparsity*100)
}
