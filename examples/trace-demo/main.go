// Trace demo: every simulated run can explain itself span by span. A
// four-rank cluster with one 2× straggler trains PacTrain-ternary under
// backward overlap behind a 100 Mbps bottleneck; the run's recorded comm
// log is then replayed into a tracer, which derives each rank's compute
// spans, the barrier waits the fast ranks spend idling on the straggler,
// every bucket's collective, and the adaptive controller's priced format
// decisions. The result is written as Chrome trace-event JSON — drag
// trace-demo.json onto https://ui.perfetto.dev (or chrome://tracing) to
// scrub through the cluster's timeline — and summarized as a table here.
//
//	go run ./examples/trace-demo
package main

import (
	"fmt"
	"log"

	"pactrain"
	"pactrain/internal/metrics"
)

func main() {
	cfg := pactrain.DefaultConfig("MLP", "adaptive")
	cfg.World = 4
	cfg.Lite.Width = 8
	cfg.Data.Samples = 320
	cfg.Epochs = 4
	cfg.BatchSize = 8
	cfg.Seed = 3
	cfg.BottleneckBps = 100 * pactrain.Mbps
	cfg.Overlap = pactrain.OverlapBackward
	// An edge-class accelerator plus one 2× straggler: the regime where the
	// barrier-wait spans are long enough to see without zooming.
	cfg.Compute.DeviceFLOPS = 0.23e12
	cfg.RankCompute.Multipliers = pactrain.OneSlowRank(cfg.World, 2)

	res, err := pactrain.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s/%s: %d iterations, %s simulated, final acc %.3f\n",
		res.Model, res.Scheme, res.Iterations, metrics.FormatSeconds(res.SimSeconds), res.FinalAcc)

	// Tracing is a pure replay of the recorded comm log — it happens after
	// the run and cannot perturb it.
	tracer := pactrain.NewTracer()
	pactrain.TraceRun(tracer, "trace-demo MLP adaptive", cfg, res)

	const out = "trace-demo.json"
	if err := pactrain.WriteTrace(tracer, out); err != nil {
		log.Fatal(err)
	}
	if err := pactrain.ValidateTraceFile(out); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(pactrain.TraceSummary(tracer))
	fmt.Println()
	fmt.Printf("wrote %s — open it at https://ui.perfetto.dev\n", out)
	fmt.Println("rows: one process per run, one track per rank (compute) and per bucket (collectives);")
	fmt.Println("instant markers carry the adaptive controller's per-format price quotes.")
}
