// Controller-audit demo: replay a recorded adaptive run into a
// counterfactual regret ledger. The run itself is the adaptive-demo fabric
// — a WAN-latency Fig. 4 topology whose bottleneck oscillates between full
// speed and a 10× dip — so the controller switches wire formats mid-run.
// The audit then answers, from the recorded log alone:
//
//   - regret: how close the controller's picks came to the per-round oracle
//     and whether it beat every static format (the paper's adaptive claim);
//
//   - switches: did each hysteresis-dwelled format switch pay for itself;
//
//   - calibration: how well launch-time predicted costs matched the
//     replayed actuals — exact at staleness 0, drifting as the audit ages
//     the controller's bandwidth view to simulate a stale estimator.
//
//     go run ./examples/audit-demo
package main

import (
	"fmt"
	"log"
	"math"

	"pactrain"
	"pactrain/internal/netsim"
)

func main() {
	cfg := pactrain.DefaultConfig("MLP", "adaptive")
	cfg.World = 4
	cfg.Lite.Width = 8
	cfg.Data.Samples = 320
	cfg.Epochs = 4
	cfg.BatchSize = 8
	cfg.TargetAcc = 0.70
	cfg.Seed = 3

	// Fig. 4 at WAN latency, bottleneck links oscillating 1.0 ↔ 0.1× every
	// half simulated second — fast enough that the run straddles several
	// regimes and the controller has something to adapt to.
	const period = 0.5
	topo := netsim.Fig4Topology(netsim.Fig4Options{
		BottleneckBps: 500 * pactrain.Mbps, LatencySec: 5e-3,
	})
	cfg.Topology = topo
	var segs []netsim.TraceSegment
	for k := 0; k < 512; k++ {
		scale := 1.0
		if k%2 == 1 {
			scale = 0.1
		}
		segs = append(segs, netsim.TraceSegment{UntilSec: float64(k+1) * period, Scale: scale})
	}
	segs = append(segs, netsim.TraceSegment{UntilSec: math.Inf(1), Scale: 1})
	for _, li := range topo.InterSwitchLinks() {
		cfg.Traces = append(cfg.Traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: segs})
	}

	res, err := pactrain.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d iters, %.3f final acc, %.2fs simulated\n\n",
		res.Iterations, res.FinalAcc, res.SimSeconds)

	// The ledger at staleness 0: predicted == actual bit-for-bit, and the
	// regret tables reproduce the adaptive experiment's headline from the
	// recorded log alone.
	rep, err := pactrain.AuditRun("wan oscillation", cfg, res, pactrain.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())

	// Staleness ladder: age the audit's bandwidth view and watch the
	// prediction error and the would-be mispicks grow — the calibration
	// drift a controller fed a stale estimator would suffer.
	fmt.Println()
	fmt.Println("calibration drift vs bandwidth staleness (oscillation period 0.5s):")
	fmt.Printf("  %-12s %-14s %s\n", "staleness", "max |err|", "stale mispick rounds")
	for _, stale := range []float64{0, period / 8, period / 4, period / 2} {
		r, err := pactrain.AuditRun("", cfg, res, pactrain.AuditOptions{StalenessSec: stale})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-14.4f %d/%d\n",
			fmt.Sprintf("%gms", stale*1e3), r.MaxCalibrationError(), r.MispickRounds, r.DecidedRounds)
	}
}
