// Adaptive-controller demo: the paper's titular adaptivity in action. A
// WAN-latency Fig. 4 fabric oscillates its bottleneck between full speed
// and a 10× dip; the adaptive scheme's controller prices dense fp32,
// mask-compact, mask-compact-ternary, and the COO index-list every round
// and rides the cheapest. At full bandwidth the latency term dominates and
// the index-list's shorter ring wins the small bucket; in the dips the byte
// volume dominates and ternary takes over — so the controller switches
// formats mid-run and beats every statically chosen format.
//
//	go run ./examples/adaptive-demo
package main

import (
	"fmt"
	"log"
	"math"

	"pactrain"
	"pactrain/internal/adaptive"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

func config(candidates []string) pactrain.Config {
	cfg := pactrain.DefaultConfig("MLP", "adaptive")
	cfg.World = 4
	cfg.Lite.Width = 8
	cfg.Data.Samples = 320
	cfg.Epochs = 6
	cfg.BatchSize = 8
	cfg.TargetAcc = 0.70
	cfg.Seed = 3
	cfg.AdaptCandidates = candidates

	// The Fig. 4 fabric at WAN latency (5 ms/link) with the bottleneck
	// links oscillating 1.0 ↔ 0.1× every two simulated seconds.
	topo := netsim.Fig4Topology(netsim.Fig4Options{
		BottleneckBps: 500 * pactrain.Mbps, LatencySec: 5e-3,
	})
	cfg.Topology = topo
	var segs []netsim.TraceSegment
	for k := 0; k < 256; k++ {
		scale := 1.0
		if k%2 == 1 {
			scale = 0.1
		}
		segs = append(segs, netsim.TraceSegment{UntilSec: float64(k+1) * 2, Scale: scale})
	}
	segs = append(segs, netsim.TraceSegment{UntilSec: math.Inf(1), Scale: 1})
	for _, li := range topo.InterSwitchLinks() {
		cfg.Traces = append(cfg.Traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: segs})
	}
	return cfg
}

func main() {
	fmt.Println("adaptive controller vs static wire formats")
	fmt.Println("fabric: Fig. 4 @ 500 Mbps bottleneck, 5 ms/link, 10× dips every 2 s")
	fmt.Println()
	fmt.Printf("%-28s %10s %10s  %s\n", "scheme", "TTA(70%)", "final acc", "controller decisions")

	rows := [][]string{nil} // nil = the full candidate set: the controller decides
	for _, f := range adaptive.Formats() {
		rows = append(rows, []string{f})
	}
	for _, candidates := range rows {
		cfg := config(candidates)
		res, err := pactrain.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "adaptive (controller)"
		if len(candidates) == 1 {
			name = "static " + candidates[0]
		}
		tta, reached := res.Curve.TTA(cfg.TargetAcc)
		ttaStr := metrics.FormatSeconds(tta)
		if !reached {
			ttaStr = ">" + ttaStr
		}
		decisions := ""
		if len(candidates) != 1 {
			decisions = fmt.Sprintf("%s, %d switches",
				adaptive.SummarizeCounts(res.AdaptiveDecisions), res.AdaptiveSwitches)
		}
		fmt.Printf("%-28s %10s %10.3f  %s\n", name, ttaStr, res.FinalAcc, decisions)
	}

	fmt.Println()
	fmt.Println("The controller matches the best static format where one format")
	fmt.Println("dominates, and beats them all when the oscillation straddles the")
	fmt.Println("crossover — no static choice is right in both trace phases.")
}
