// Package adaptive implements the cost-model-driven online compression
// controller behind the "adaptive" aggregation scheme. The paper's title
// promises *adaptive* sparse gradient compression, and DGC (Lin et al.,
// 2018) and the gradient-compression evaluation study (Zhang et al., 2023)
// both show that the best wire format depends on the gradient's sparsity
// and the network regime. This package makes that choice online: each
// communication round, per bucket, the controller prices every candidate
// wire format with the registered collective.Algorithm cost functions —
// against the fabric's *current* (possibly trace-varying) bandwidth — and
// selects the cheapest, with hysteresis so formats do not thrash at
// crossover points.
//
// Candidates (the static formats the scheme registry also exposes):
//
//   - dense-fp32: full fp32 all-reduce of the whole bucket;
//   - mask-compact: PacTrain's mask-compact fp32 all-reduce of the NNZ
//     coordinates (the globally shared mask makes indices unnecessary);
//   - mask-compact-ternary: the §III-D ternary stage on the compact path
//     (1 byte per retained coordinate on the wire);
//   - index-list: a Zen-style COO (value, index) all-gather of the in-mask
//     coordinates (8 bytes per coordinate, but roughly half the ring steps
//     of an all-reduce — the latency-bound regime's friend).
//
// Pricing runs on a netsim.Fabric.PricingClone so quoted-but-not-taken
// transfers never pollute the live fabric's byte accounting. Every input to
// a decision (bucket size, mask NNZ, the synchronized simulated clock) is
// replica-identical, so all workers reach the same decision in lockstep
// with zero consensus traffic — the same property PacTrain's Mask Tracker
// relies on.
//
// Because decisions consult the fabric, a recorded adaptive run re-costs
// exactly only under the fabric it was recorded on (see DESIGN.md §8); the
// experiment harness therefore retrains adaptive cells per operating point
// instead of re-costing them across bandwidths. A controller restricted to
// a single candidate makes fabric-independent decisions and re-costs
// exactly anywhere, like the static schemes.
package adaptive

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/netsim"
)

// Candidate wire-format identifiers, in canonical order.
const (
	FormatDense          = "dense-fp32"
	FormatCompact        = "mask-compact"
	FormatCompactTernary = "mask-compact-ternary"
	FormatIndexList      = "index-list"
)

// Formats lists the candidate wire formats in canonical order — the
// vocabulary Config.AdaptCandidates accepts.
func Formats() []string {
	return []string{FormatDense, FormatCompact, FormatCompactTernary, FormatIndexList}
}

// Default hysteresis parameters: a challenger must undercut the incumbent
// by DefaultMargin for DefaultDwell consecutive rounds before the
// controller switches formats. The margin is the anti-thrash band — within
// ±margin of the incumbent nothing moves — so the default dwell is 1:
// switching is free in the cost plane, and every round spent on a
// decisively beaten incumbent is pure regret (a dwell of d pays d-1 stale
// rounds per regime flip). Raise the dwell when format switches carry a
// real-world cost the model does not price.
const (
	DefaultMargin = 0.05
	DefaultDwell  = 1
)

// CanonicalCandidates normalizes a candidate list: nil/empty means every
// format, order is canonicalized, duplicates and unknown names error.
func CanonicalCandidates(names []string) ([]string, error) {
	if len(names) == 0 {
		return Formats(), nil
	}
	seen := map[string]bool{}
	for _, n := range names {
		valid := false
		for _, f := range Formats() {
			if n == f {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("adaptive: unknown candidate format %q (have %s)",
				n, strings.Join(Formats(), ", "))
		}
		if seen[n] {
			return nil, fmt.Errorf("adaptive: duplicate candidate format %q", n)
		}
		seen[n] = true
	}
	var out []string
	for _, f := range Formats() {
		if seen[f] {
			out = append(out, f)
		}
	}
	return out, nil
}

// Options configures a Controller.
type Options struct {
	// Margin is the fractional win margin: a challenger's quoted cost must
	// be below incumbent*(1-Margin) to score a win (<=0 takes
	// DefaultMargin).
	Margin float64
	// Dwell is the number of consecutive winning rounds a challenger needs
	// before the controller switches to it (<1 takes DefaultDwell).
	Dwell int
	// Candidates restricts the formats under consideration (nil = all, in
	// canonical order). Callers must pass a CanonicalCandidates result.
	Candidates []string
	// Algorithm prices the symmetric collectives (the same implementation
	// the cluster charges the real ops with).
	Algorithm collective.Algorithm
	// Fabric is the live fabric; the controller prices on a PricingClone of
	// it so quotes never touch the real byte accounting.
	Fabric *netsim.Fabric
	// Hosts maps ranks to fabric hosts, as the cluster sees them.
	Hosts []netsim.NodeID
	// WireScale multiplies each wire format's per-element bytes, matching
	// the lite-twin scaling the hooks apply (DESIGN.md §1).
	WireScale float64
}

// Quote is one candidate's priced cost for a round.
type Quote struct {
	Format      string
	CostSeconds float64
}

// Decision is the controller's pick for one bucket in one round.
type Decision struct {
	// Format is the wire format to use this round (the incumbent after
	// hysteresis is applied).
	Format string
	// Switched reports whether this round completed a format switch.
	Switched bool
	// Quotes holds every candidate's priced cost, in candidate order.
	Quotes []Quote
	// BottleneckBps is the fabric's quoted bottleneck bandwidth at decision
	// time, for the decision log.
	BottleneckBps float64
}

// bucketState is the per-bucket hysteresis memory.
type bucketState struct {
	incumbent  string
	challenger string
	wins       int
}

// Controller picks a wire format per bucket per communication round by
// pricing every candidate with the collective algorithm's cost functions.
// It is deterministic: identical inputs produce identical decisions, which
// keeps worker replicas in lockstep.
type Controller struct {
	margin     float64
	dwell      int
	candidates []string
	algo       collective.Algorithm
	pricing    *netsim.Fabric
	hosts      []netsim.NodeID
	wireScale  float64

	buckets  map[int]*bucketState
	counts   map[string]int
	switches int
	// current is the format of the most recent round decision, for live
	// telemetry (Current); hysteresis never reads it.
	current string
}

// New builds a controller from validated options.
func New(opt Options) *Controller {
	if opt.Margin <= 0 {
		opt.Margin = DefaultMargin
	}
	if opt.Dwell < 1 {
		opt.Dwell = DefaultDwell
	}
	cands := opt.Candidates
	if len(cands) == 0 {
		cands = Formats()
	}
	scale := opt.WireScale
	if scale <= 0 {
		scale = 1
	}
	return &Controller{
		margin:     opt.Margin,
		dwell:      opt.Dwell,
		candidates: cands,
		algo:       opt.Algorithm,
		pricing:    opt.Fabric.PricingClone(),
		hosts:      opt.Hosts,
		wireScale:  scale,
		buckets:    make(map[int]*bucketState),
		counts:     make(map[string]int),
	}
}

// scaleWireFormat applies the lite-twin wire scale to a format's
// per-element bytes, as hookEnv.scaleWire does for the real ops.
func scaleWireFormat(w collective.WireFormat, scale float64) collective.WireFormat {
	w.BytesPerElement *= scale
	return w
}

// priceFormat quotes one candidate for a bucket of n elements with nnz
// retained coordinates at absolute time t.
func priceFormat(algo collective.Algorithm, pricing *netsim.Fabric, hosts []netsim.NodeID,
	wireScale float64, format string, n, nnz int, t float64) float64 {
	switch format {
	case FormatDense:
		return algo.AllReduce(pricing, hosts, n, scaleWireFormat(collective.WireFP32, wireScale), t)
	case FormatCompact:
		return algo.AllReduce(pricing, hosts, nnz, scaleWireFormat(collective.WireFP32, wireScale), t)
	case FormatCompactTernary:
		return algo.AllReduce(pricing, hosts, nnz, scaleWireFormat(collective.WireInt8, wireScale), t)
	case FormatIndexList:
		sizes := make([]int, len(hosts))
		for i := range sizes {
			sizes[i] = nnz
		}
		return algo.AllGather(pricing, hosts, sizes, scaleWireFormat(collective.WireSparse, wireScale), t)
	}
	panic(fmt.Sprintf("adaptive: unknown format %q", format))
}

// PriceQuotes prices every candidate wire format for a bucket of n elements
// with nnz retained coordinates at absolute time t, in candidate order. It
// is the quote vector behind Controller.Decide, exported so the trace
// replay (internal/harness) can reprice a recorded adaptive round against
// the recorded fabric without rebuilding a controller. Callers must pass a
// fabric that is safe to quote on — a PricingClone — so quoted-but-not-taken
// transfers never touch live byte accounting; wireScale <= 0 means 1.
func PriceQuotes(algo collective.Algorithm, pricing *netsim.Fabric, hosts []netsim.NodeID,
	wireScale float64, candidates []string, n, nnz int, t float64) []Quote {
	if wireScale <= 0 {
		wireScale = 1
	}
	quotes := make([]Quote, 0, len(candidates))
	for _, f := range candidates {
		quotes = append(quotes, Quote{
			Format:      f,
			CostSeconds: priceFormat(algo, pricing, hosts, wireScale, f, n, nnz, t),
		})
	}
	return quotes
}

// Decide prices every candidate for one bucket and returns the format to
// use this round. n is the bucket's element count, nnz the shared mask's
// retained-coordinate count, and t the synchronized simulated time the
// collective will start at.
//
// Hysteresis: the first decision for a bucket takes the cheapest candidate
// outright. Afterwards the incumbent holds unless some challenger undercuts
// it by the win margin for dwell consecutive rounds; a challenger change
// restarts the count. This bounds thrashing at cost crossovers to at most
// one switch per dwell rounds and bounds the regret of a held incumbent to
// the margin.
func (c *Controller) Decide(bucket, n, nnz int, t float64) Decision {
	dec := Decision{
		Quotes:        PriceQuotes(c.algo, c.pricing, c.hosts, c.wireScale, c.candidates, n, nnz, t),
		BottleneckBps: c.pricing.BottleneckBandwidthAt(t),
	}
	costs := make(map[string]float64, len(c.candidates))
	best := ""
	for _, q := range dec.Quotes {
		costs[q.Format] = q.CostSeconds
		if best == "" || q.CostSeconds < costs[best] {
			best = q.Format
		}
	}

	st := c.buckets[bucket]
	if st == nil {
		st = &bucketState{}
		c.buckets[bucket] = st
	}
	switch {
	case st.incumbent == "":
		// First stable round: no history to defend, take the cheapest.
		st.incumbent = best
	case best == st.incumbent || costs[best] >= costs[st.incumbent]*(1-c.margin):
		st.challenger, st.wins = "", 0
	default:
		if st.challenger != best {
			st.challenger, st.wins = best, 0
		}
		st.wins++
		if st.wins >= c.dwell {
			st.incumbent = best
			st.challenger, st.wins = "", 0
			dec.Switched = true
			c.switches++
		}
	}
	dec.Format = st.incumbent
	c.counts[st.incumbent]++
	c.current = st.incumbent
	return dec
}

// Current returns the format of the most recent round decision, or ""
// before any decision has been taken (the unstable full-sync phase).
func (c *Controller) Current() string { return c.current }

// Reset forgets all per-bucket hysteresis state. The hook calls it when the
// pruning step invalidates every mask: the densities the incumbents were
// chosen under no longer exist.
func (c *Controller) Reset() {
	c.buckets = make(map[int]*bucketState)
}

// Counts returns how many round decisions landed on each format, for
// telemetry. Keys are candidate format names.
func (c *Controller) Counts() map[string]int {
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Switches returns the number of completed format switches.
func (c *Controller) Switches() int { return c.switches }

// SummarizeCounts renders a format→rounds map as a stable one-line string
// ("mask-compact-ternary:40 index-list:8"), most-used first.
func SummarizeCounts(counts map[string]int) string {
	type kv struct {
		k string
		v int
	}
	var rows []kv
	for k, v := range counts {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].v != rows[b].v {
			return rows[a].v > rows[b].v
		}
		return rows[a].k < rows[b].k
	})
	var parts []string
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s:%d", r.k, r.v))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}

// Regret bounds what hysteresis can cost: with margin m, a held incumbent
// is never more than 1/(1-m) times the cheapest candidate's quote. Exported
// for the demo and tests.
func Regret(margin float64) float64 {
	if margin <= 0 {
		margin = DefaultMargin
	}
	return 1 / (1 - math.Min(margin, 0.99))
}
