package adaptive

import (
	"math"
	"reflect"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/netsim"
)

func TestCanonicalCandidates(t *testing.T) {
	t.Parallel()
	all, err := CanonicalCandidates(nil)
	if err != nil || !reflect.DeepEqual(all, Formats()) {
		t.Fatalf("nil must canonicalize to every format: %v, %v", all, err)
	}
	ordered, err := CanonicalCandidates([]string{FormatIndexList, FormatDense})
	if err != nil || !reflect.DeepEqual(ordered, []string{FormatDense, FormatIndexList}) {
		t.Fatalf("order must canonicalize: %v, %v", ordered, err)
	}
	if _, err := CanonicalCandidates([]string{"smoke-signals"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := CanonicalCandidates([]string{FormatDense, FormatDense}); err == nil {
		t.Fatal("duplicate format accepted")
	}
}

// wanFabric builds the Fig. 4 topology at WAN latency with a trace dropping
// the bottleneck to 10% from flipAt onwards — the regime flip the
// controller must react to.
func wanFabric(flipAt float64) (*netsim.Fabric, []netsim.NodeID) {
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 1 * netsim.Gbps, LatencySec: 5e-3})
	f := netsim.NewFabric(topo)
	for _, li := range topo.InterSwitchLinks() {
		f.SetTrace(&netsim.BandwidthTrace{LinkIndex: li, Segments: []netsim.TraceSegment{
			{UntilSec: flipAt, Scale: 1},
			{UntilSec: math.Inf(1), Scale: 0.1},
		}})
	}
	return f, topo.Hosts()[:4]
}

// Bucket geometry where the ranking is regime-dependent: at full 1 Gbps the
// latency term dominates and the index-list's w-1 ring steps beat the
// ternary all-reduce's 2(w-1); in the 10× dip the byte volume dominates and
// ternary's 1 B/element beats COO's 8 B/element.
const (
	testElems = 4874
	testNNZ   = 2437
	testScale = 18.5
)

func newTestController(t *testing.T, dwell int, margin float64, flipAt float64) *Controller {
	t.Helper()
	fabric, hosts := wanFabric(flipAt)
	return New(Options{
		Margin:     margin,
		Dwell:      dwell,
		Candidates: []string{FormatCompactTernary, FormatIndexList},
		Algorithm:  collective.MustAlgorithm("ring"),
		Fabric:     fabric,
		Hosts:      hosts,
		WireScale:  testScale,
	})
}

func TestControllerTracksRegimeFlip(t *testing.T) {
	t.Parallel()
	const dwell = 2
	ctrl := newTestController(t, dwell, 0.05, 10)

	// Full bandwidth: the first decision takes the cheapest outright.
	dec := ctrl.Decide(0, testElems, testNNZ, 0)
	if dec.Format != FormatIndexList {
		t.Fatalf("at full bandwidth the index-list must win, got %q (quotes %v)", dec.Format, dec.Quotes)
	}
	if dec.Switched {
		t.Fatal("first decision is a pick, not a switch")
	}
	if dec.BottleneckBps != 1*netsim.Gbps {
		t.Fatalf("bottleneck quote %v, want 1 Gbps", dec.BottleneckBps)
	}
	// Steady state before the flip: the incumbent holds, no switches.
	for _, tm := range []float64{1, 3, 5, 9} {
		if dec = ctrl.Decide(0, testElems, testNNZ, tm); dec.Format != FormatIndexList || dec.Switched {
			t.Fatalf("incumbent must hold before the flip: %+v at t=%v", dec, tm)
		}
	}

	// After the flip the ternary format undercuts the incumbent; the switch
	// completes after exactly dwell winning rounds.
	for round := 1; round <= dwell; round++ {
		dec = ctrl.Decide(0, testElems, testNNZ, 10+float64(round))
		wantFormat := FormatIndexList
		if round == dwell {
			wantFormat = FormatCompactTernary
		}
		if dec.Format != wantFormat || dec.Switched != (round == dwell) {
			t.Fatalf("flip round %d: got %+v, want format %q switched=%v",
				round, dec, wantFormat, round == dwell)
		}
	}
	if dec.BottleneckBps != 0.1*netsim.Gbps {
		t.Fatalf("post-flip bottleneck quote %v, want 100 Mbps", dec.BottleneckBps)
	}
	if ctrl.Switches() != 1 {
		t.Fatalf("switch count %d, want 1", ctrl.Switches())
	}
	counts := ctrl.Counts()
	if counts[FormatIndexList] == 0 || counts[FormatCompactTernary] == 0 {
		t.Fatalf("decision counts missing a format: %v", counts)
	}
}

func TestControllerMarginBlocksSwitch(t *testing.T) {
	t.Parallel()
	// A margin wider than the post-flip advantage keeps the incumbent.
	ctrl := newTestController(t, 1, 0.95, 10)
	if dec := ctrl.Decide(0, testElems, testNNZ, 0); dec.Format != FormatIndexList {
		t.Fatalf("initial pick %q", dec.Format)
	}
	for _, tm := range []float64{11, 12, 13, 14} {
		if dec := ctrl.Decide(0, testElems, testNNZ, tm); dec.Format != FormatIndexList || dec.Switched {
			t.Fatalf("a 95%% margin must block the switch: %+v", dec)
		}
	}
}

func TestControllerDwellDelaysSwitch(t *testing.T) {
	t.Parallel()
	const dwell = 4
	ctrl := newTestController(t, dwell, 0.05, 10)
	ctrl.Decide(0, testElems, testNNZ, 0)
	for round := 1; round < dwell; round++ {
		if dec := ctrl.Decide(0, testElems, testNNZ, 10+float64(round)); dec.Switched {
			t.Fatalf("switched after %d winning rounds, dwell is %d", round, dwell)
		}
	}
	if dec := ctrl.Decide(0, testElems, testNNZ, 10+float64(dwell)); !dec.Switched {
		t.Fatal("dwell satisfied but no switch")
	}
}

func TestControllerResetForgetsIncumbents(t *testing.T) {
	t.Parallel()
	ctrl := newTestController(t, 2, 0.05, 10)
	ctrl.Decide(0, testElems, testNNZ, 0)
	ctrl.Reset()
	// Post-reset, post-flip: the first decision re-picks from scratch
	// (ternary, the dipped regime's winner) instead of defending the old
	// incumbent.
	if dec := ctrl.Decide(0, testElems, testNNZ, 20); dec.Format != FormatCompactTernary || dec.Switched {
		t.Fatalf("reset must clear the incumbent: %+v", dec)
	}
}

// TestControllerDeterministic is the lockstep property the trainer relies
// on: two controllers fed identical inputs produce identical decisions.
func TestControllerDeterministic(t *testing.T) {
	t.Parallel()
	a := newTestController(t, 2, 0.05, 10)
	b := newTestController(t, 2, 0.05, 10)
	for _, tm := range []float64{0, 2, 9, 11, 12, 13, 30} {
		da := a.Decide(0, testElems, testNNZ, tm)
		db := b.Decide(0, testElems, testNNZ, tm)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("controllers diverged at t=%v: %+v vs %+v", tm, da, db)
		}
	}
}

// TestPricingDoesNotTouchLiveFabric guards the PricingClone contract: a
// thousand quotes must leave the live fabric's byte accounting untouched.
func TestPricingDoesNotTouchLiveFabric(t *testing.T) {
	t.Parallel()
	fabric, hosts := wanFabric(10)
	ctrl := New(Options{
		Algorithm: collective.MustAlgorithm("ring"),
		Fabric:    fabric,
		Hosts:     hosts,
		WireScale: testScale,
	})
	for i := 0; i < 1000; i++ {
		ctrl.Decide(0, testElems, testNNZ, float64(i))
	}
	if fabric.TotalBytes != 0 {
		t.Fatalf("pricing leaked %v bytes onto the live fabric", fabric.TotalBytes)
	}
}

func TestDenseDominatedByCompact(t *testing.T) {
	t.Parallel()
	// With a strict subset mask (nnz < n) and equal wire format, the
	// compact payload can never lose to dense — the controller's first pick
	// must not be dense.
	fabric, hosts := wanFabric(10)
	ctrl := New(Options{
		Candidates: []string{FormatDense, FormatCompact},
		Algorithm:  collective.MustAlgorithm("ring"),
		Fabric:     fabric,
		Hosts:      hosts,
		WireScale:  testScale,
	})
	if dec := ctrl.Decide(0, testElems, testNNZ, 0); dec.Format != FormatCompact {
		t.Fatalf("dense beat compact at half density: %+v", dec)
	}
}

func TestSummarizeCounts(t *testing.T) {
	t.Parallel()
	got := SummarizeCounts(map[string]int{FormatIndexList: 3, FormatCompactTernary: 40})
	if got != "mask-compact-ternary:40 index-list:3" {
		t.Fatalf("summary %q", got)
	}
	if SummarizeCounts(nil) != "(none)" {
		t.Fatal("empty summary")
	}
}

func TestRegretBound(t *testing.T) {
	t.Parallel()
	if r := Regret(0.05); math.Abs(r-1/0.95) > 1e-12 {
		t.Fatalf("regret %v", r)
	}
	if Regret(0) != 1/(1-DefaultMargin) {
		t.Fatal("zero margin must take the default")
	}
}

// TestDecisionQuotesRestrictedCandidates pins the ledger discipline the
// audit layer depends on: with a restricted candidate set, Decide quotes
// exactly the configured candidates — no phantom formats — in canonical
// order, and each quote equals PriceQuotes' price of that format.
func TestDecisionQuotesRestrictedCandidates(t *testing.T) {
	t.Parallel()
	ctrl := newTestController(t, 1, 0.05, 10)
	fabric, hosts := wanFabric(10)
	want := []string{FormatCompactTernary, FormatIndexList}
	for round := 0; round < 4; round++ {
		at := float64(round)
		d := ctrl.Decide(0, testElems, testNNZ, at)
		if len(d.Quotes) != len(want) {
			t.Fatalf("round %d: %d quotes for %d candidates: %+v", round, len(d.Quotes), len(want), d.Quotes)
		}
		ref := PriceQuotes(collective.MustAlgorithm("ring"), fabric.PricingClone(), hosts,
			testScale, want, testElems, testNNZ, at)
		for i, q := range d.Quotes {
			if q.Format != want[i] {
				t.Fatalf("round %d quote %d is %q, want %q (canonical order)", round, i, q.Format, want[i])
			}
			if q.CostSeconds != ref[i].CostSeconds {
				t.Fatalf("round %d %s: decision quote %v != PriceQuotes %v",
					round, q.Format, q.CostSeconds, ref[i].CostSeconds)
			}
		}
		if d.Format == FormatDense || d.Format == FormatCompact {
			t.Fatalf("round %d picked %q, outside the candidate set", round, d.Format)
		}
	}
}
