package harness

import (
	"strconv"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/netsim"
)

// opCoster prices recorded communication ops, optionally memoizing by op
// signature. On a time-invariant fabric (no bandwidth traces) the launch
// time t only ever reaches a cost model through bandwidth lookups, which are
// constant, so an op's duration is t-independent up to accumulation roundoff:
// the models fold durations into the running clock (t += step; ... return
// t - start), and that subtraction can differ in the last ulp between two
// launch times. Memoized pricing therefore returns the first evaluation's
// value for every repeat of a signature.
//
// That ulp is far below the cost models' fidelity, but it is NOT the
// bit-exactness contract the replay paths pin (re-costing a recorded run on
// its own fabric reproduces the training clock byte-for-byte). The memo is
// therefore strictly opt-in: the historical replay paths price every op
// live, and only the cluster-scale pricing path (the largescale experiment,
// whose model is *defined* as memoized pricing) enables it. There, recorded
// logs repeat a handful of signatures hundreds of times, and memoization
// turns O(iterations) collective simulations — ~300k link transfers each at
// 4,096 ranks — into O(distinct signatures).
//
// The memo also skips the fabric's byte accounting for repeated ops;
// re-costing fabrics are throwaway pricing instruments and no harness caller
// reads their counters.
type opCoster struct {
	alg    collective.Algorithm
	fabric *netsim.Fabric
	hosts  []netsim.NodeID
	memo   map[opKey]float64 // nil => price every op live
}

// opKey is a cost signature: every CommOp field the cost models read.
// Decision, Bucket, and LaunchAt never influence the duration.
type opKey struct {
	kind    core.OpKind
	elems   int
	wire    collective.WireFormat
	union   int
	blockSz int
	scale   float64
	shape   string // Sizes/Blocks, encoded; "" when both are nil
}

// newOpCoster builds a coster. memoize engages the signature cache, and is
// ignored (pricing stays live) when the fabric's bandwidths vary with time —
// there a repeat of a signature legitimately costs a different duration.
func newOpCoster(alg collective.Algorithm, fabric *netsim.Fabric, hosts []netsim.NodeID, memoize bool) *opCoster {
	c := &opCoster{alg: alg, fabric: fabric, hosts: hosts}
	if memoize && fabric.TimeInvariant() {
		c.memo = make(map[opKey]float64)
	}
	return c
}

// shapeKey flattens the op's variable-length fields into one string key.
func shapeKey(sizes, blocks []int) string {
	if sizes == nil && blocks == nil {
		return ""
	}
	var sb strings.Builder
	for _, v := range sizes {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	for _, v := range blocks {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	return sb.String()
}

// cost returns the op's duration when launched at t. With the memo off this
// is exactly core.CostOp; with it on, repeats of a signature reuse the first
// evaluation (see the type comment for the roundoff caveat).
func (c *opCoster) cost(op core.CommOp, t float64) float64 {
	if c.memo == nil {
		return core.CostOp(op, c.alg, c.fabric, c.hosts, t)
	}
	key := opKey{
		kind: op.Kind, elems: op.Elements, wire: op.Wire,
		union: op.Union, blockSz: op.BlockSz, scale: op.Scale,
		shape: shapeKey(op.Sizes, op.Blocks),
	}
	if d, ok := c.memo[key]; ok {
		return d
	}
	d := core.CostOp(op, c.alg, c.fabric, c.hosts, t)
	c.memo[key] = d
	return d
}
