package harness

import (
	"math"
	"strings"
	"testing"

	"pactrain/internal/adaptive"
	"pactrain/internal/core"
	"pactrain/internal/netsim"
)

// TestRunAdaptiveQuick asserts the experiment's headline invariant: at
// every operating point — both fabrics, every bandwidth — the online
// controller's TTA is at or below the best static wire format's. The
// controller is never told which regime it is in; it must match whichever
// format that regime favors (and beat them all when the trace straddles a
// crossover, since no single format is right in both phases).
func TestRunAdaptiveQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunAdaptive(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	points := len(res.VarBWBandwidths) + len(res.TwoRackBandwidths)
	wantCells := points * (len(res.Formats) + 1)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	for _, part := range []string{"varbw", "two-rack"} {
		for _, bw := range res.bandwidths(part) {
			ad, ok := res.Cell(part, AdaptiveSchemeName, bw)
			if !ok {
				t.Fatalf("missing adaptive cell %s/%v", part, bw)
			}
			if !ad.Reached {
				t.Fatalf("adaptive did not reach target at %s/%s", part, bandwidthLabel(bw))
			}
			best, ok := res.BestStaticTTA(part, bw)
			if !ok {
				t.Fatalf("missing static cells %s/%v", part, bw)
			}
			if ad.TTASeconds > best {
				t.Fatalf("adaptive TTA %v exceeds best static %v at %s/%s",
					ad.TTASeconds, best, part, bandwidthLabel(bw))
			}
			if ad.Decisions == "" {
				t.Fatalf("adaptive cell %s/%s has no decision summary", part, bandwidthLabel(bw))
			}
		}
	}
	// The decisions must actually be regime-dependent: some operating point
	// mixes formats (otherwise a static scheme would do).
	mixed := false
	for _, c := range res.Cells {
		if c.Scheme == AdaptiveSchemeName && strings.Contains(c.Decisions, " ") {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("controller picked one format at every operating point — no regime dependence")
	}
	out := res.Render()
	for _, want := range []string{"Adaptive", "static:mask-compact-ternary", "best static", "switches"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// adaptiveWANConfig builds the quick adaptive config on the WAN-latency
// Fig. 4 fabric, optionally dipping the bottleneck to 10% from dipAt on.
func adaptiveWANConfig(opt Options, dipAt float64) core.Config {
	w := QuickWorkloads()[0]
	cfg := baseConfig(w, core.SchemeAdaptive, opt)
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 1 * netsim.Gbps, LatencySec: adaptiveWANLatency})
	cfg.Topology = topo
	if dipAt > 0 {
		for _, li := range topo.InterSwitchLinks() {
			cfg.Traces = append(cfg.Traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: []netsim.TraceSegment{
				{UntilSec: dipAt, Scale: 1},
				{UntilSec: math.Inf(1), Scale: 0.1},
			}})
		}
	}
	return cfg
}

// decisionSequence flattens a run's comm record to its ordered decisions.
func decisionSequence(res *core.Result) []string {
	var seq []string
	for _, ops := range res.CommLog.Iters {
		for _, op := range ops {
			if op.Decision != "" {
				seq = append(seq, op.Decision)
			}
		}
	}
	return seq
}

// TestAdaptiveRecostExactOnRecordedFabric is the half of the exactness
// contract that still holds for the adaptive scheme: re-costing its log on
// a fabric identical to the recorded one — traces included — reproduces the
// clock bit-for-bit, because the replayed ops are the recorded decisions'
// consequences priced by the same cost functions at the same times.
func TestAdaptiveRecostExactOnRecordedFabric(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	cfg := adaptiveWANConfig(opt, 2)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric(cfg.Topology)
	for _, tr := range cfg.Traces {
		fabric.SetTrace(tr)
	}
	cum := recostCum(res, &cfg, fabric)
	if got := cum[len(cum)-1]; got != res.SimSeconds {
		t.Fatalf("re-costed end time %v != recorded SimSeconds %v (Δ %g)",
			got, res.SimSeconds, got-res.SimSeconds)
	}
	for _, p := range res.Curve.Points {
		if cum[p.Iter] != p.SimTime {
			t.Fatalf("re-costed time at iter %d = %v, recorded %v", p.Iter, cum[p.Iter], p.SimTime)
		}
	}
}

// TestAdaptiveRecostRequiresRecordedFabric documents the caveat DESIGN.md
// §8 states: a multi-candidate adaptive run is fabric-sensitive — its
// decision sequence changes with the network — so re-costing its log onto
// a *different* fabric replays decisions the controller would not have made
// there and diverges from training there directly. A single-candidate
// controller is fabric-independent and re-costs exactly anywhere, which is
// what lets the experiment's static baselines train once.
func TestAdaptiveRecostRequiresRecordedFabric(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	flat := adaptiveWANConfig(opt, 0)
	dipped := adaptiveWANConfig(opt, 2)
	if !flat.FabricSensitive() {
		t.Fatal("multi-candidate config must be fabric-sensitive")
	}

	flatRes, err := core.Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	dippedRes, err := core.Run(dipped)
	if err != nil {
		t.Fatal(err)
	}
	// The premise: the fabrics elicit different decision sequences.
	flatSeq, dippedSeq := decisionSequence(flatRes), decisionSequence(dippedRes)
	same := len(flatSeq) == len(dippedSeq)
	if same {
		for i := range flatSeq {
			if flatSeq[i] != dippedSeq[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("fabrics elicited identical decision sequences; the caveat has nothing to bite on")
	}
	// The consequence: replaying the flat-fabric log on the dipped fabric
	// does not reproduce a dipped-fabric training.
	dippedFabric := netsim.NewFabric(dipped.Topology)
	for _, tr := range dipped.Traces {
		dippedFabric.SetTrace(tr)
	}
	cum := recostCum(flatRes, &flat, dippedFabric)
	if got := cum[len(cum)-1]; got == dippedRes.SimSeconds {
		t.Fatalf("cross-fabric re-cost accidentally exact (%v); the harness relies on it NOT being a substitute for retraining", got)
	}
	// The sweep helpers enforce the rule rather than leaving it to
	// convention: re-costing a fabric-sensitive run across networks panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("recostTTA accepted a fabric-sensitive config")
			}
		}()
		_, _ = recostTTA(flatRes, &flat, 100*netsim.Mbps, 0.7)
	}()

	// Control: pin the candidate set to one format and the very same
	// cross-fabric re-cost becomes exact again.
	single := adaptiveWANConfig(opt, 0)
	single.AdaptCandidates = []string{adaptive.FormatCompactTernary}
	if single.FabricSensitive() {
		t.Fatal("single-candidate config must be fabric-independent")
	}
	singleRes, err := core.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	singleDipped := adaptiveWANConfig(opt, 2)
	singleDipped.AdaptCandidates = []string{adaptive.FormatCompactTernary}
	singleDippedRes, err := core.Run(singleDipped)
	if err != nil {
		t.Fatal(err)
	}
	dippedFabric2 := netsim.NewFabric(singleDipped.Topology)
	for _, tr := range singleDipped.Traces {
		dippedFabric2.SetTrace(tr)
	}
	cum = recostCum(singleRes, &single, dippedFabric2)
	if got := cum[len(cum)-1]; got != singleDippedRes.SimSeconds {
		t.Fatalf("single-candidate cross-fabric re-cost %v != traced training %v (Δ %g)",
			got, singleDippedRes.SimSeconds, got-singleDippedRes.SimSeconds)
	}
}
