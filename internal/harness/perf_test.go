package harness

import (
	"path/filepath"
	"testing"
)

func TestBenchWriteLoadRoundTrip(t *testing.T) {
	t.Parallel()
	want := &BenchReport{
		Grid:       "quick",
		GoMaxProcs: 4,
		Entries: []BenchEntry{
			{Name: BenchCalibration, Seconds: 0.05, Runs: 5},
			{Name: "compose-1024", Seconds: 0.012, Runs: 3},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBench(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != want.Grid || got.GoMaxProcs != want.GoMaxProcs || len(got.Entries) != len(want.Entries) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	for i, e := range got.Entries {
		if e != want.Entries[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, e, want.Entries[i])
		}
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	t.Parallel()
	base := &BenchReport{Entries: []BenchEntry{
		{Name: BenchCalibration, Seconds: 0.10},
		{Name: "compose-1024", Seconds: 0.020},
		{Name: "encode-topk-2.5M", Seconds: 0.040},
	}}
	cur := &BenchReport{Entries: []BenchEntry{
		{Name: BenchCalibration, Seconds: 0.10},
		{Name: "compose-1024", Seconds: 0.020 * 1.05}, // within tolerance
		{Name: "encode-topk-2.5M", Seconds: 0.040 * 1.5},
	}}
	regs := CompareBench(base, cur, BenchTolerance)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want exactly the topk one", len(regs), regs)
	}
}

// TestCompareBenchNormalizesByCalibration pins the cross-machine story: on a
// host that runs the calibration spin 2× slower, every entry may be 2× slower
// without tripping the tolerance.
func TestCompareBenchNormalizesByCalibration(t *testing.T) {
	t.Parallel()
	base := &BenchReport{Entries: []BenchEntry{
		{Name: BenchCalibration, Seconds: 0.10},
		{Name: "compose-1024", Seconds: 0.020},
	}}
	slowHost := &BenchReport{Entries: []BenchEntry{
		{Name: BenchCalibration, Seconds: 0.20},
		{Name: "compose-1024", Seconds: 0.041}, // 2.05× raw, 1.025× normalized
	}}
	if regs := CompareBench(base, slowHost, BenchTolerance); len(regs) != 0 {
		t.Fatalf("calibration normalization failed: %v", regs)
	}
	slowHost.Entries[1].Seconds = 0.050 // 1.25× normalized — a real regression
	if regs := CompareBench(base, slowHost, BenchTolerance); len(regs) != 1 {
		t.Fatalf("normalized regression missed: %v", regs)
	}
}

func TestCompareBenchIgnoresNewAndMissingEntries(t *testing.T) {
	t.Parallel()
	base := &BenchReport{Entries: []BenchEntry{
		{Name: "compose-1024", Seconds: 0.020},
		{Name: "retired-bench", Seconds: 0.005},
	}}
	cur := &BenchReport{Entries: []BenchEntry{
		{Name: "compose-1024", Seconds: 0.020},
		{Name: "brand-new-bench", Seconds: 99},
	}}
	if regs := CompareBench(base, cur, BenchTolerance); len(regs) != 0 {
		t.Fatalf("unmatched entries must not regress: %v", regs)
	}
}
