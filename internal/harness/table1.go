package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/compress"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// Table1Row is one method's measured property row. The paper's Table 1
// marks each method's effect on convergence speed, all-reduce
// compatibility, and TTA; here every mark is derived from a measurement or
// a structural property of the implementation rather than asserted.
type Table1Row struct {
	Scheme string
	// ConvOK: iterations-to-target within tolerance of the lossless
	// baseline (✓) or measurably slower / target missed (✗).
	ConvOK bool
	// ConvKnown is false when the workload-dependence the paper marks "?"
	// applies (the scheme reached the target here but is known to be
	// architecture-sensitive — reported as measured).
	IterRatio float64
	// AllReduceCompatible is the transport property of the implementation.
	AllReduceCompatible bool
	// TTAImproved: TTA at the reference bandwidth beats the all-reduce
	// baseline.
	TTAImproved bool
	TTASpeedup  float64
}

// Table1Result is the measured property matrix.
type Table1Result struct {
	Rows      []Table1Row
	Model     string
	Bandwidth float64
}

// Table1Schemes lists the methods of Table 1 (PacTrain plus the six
// comparison systems) as implemented in this repository.
func Table1Schemes() []string {
	return []string{"pactrain-ternary", "thc", "terngrad", "dgc-0.01", "omnireduce", "zen", "topk-0.1", "fp16"}
}

// allReduceCompatible reports the transport property of a scheme.
func allReduceCompatible(scheme string) bool {
	switch scheme {
	case "pactrain", "pactrain-ternary":
		return true // mask-compact payloads sum elementwise
	case "omnireduce":
		return false // streaming aggregator (PS-style)
	case "zen":
		return false // sparse all-gather
	}
	c, err := compress.ByName(scheme, 1)
	if err != nil {
		return false
	}
	return c.Transport() == compress.TransportAllReduce
}

// RunTable1 measures every Table 1 property on a reference workload at a
// bandwidth-constrained link (500 Mbps, the middle of Fig. 3's range).
func RunTable1(opt Options) (*Table1Result, error) {
	opt.defaults()
	eng := opt.engine()
	w := PaperWorkloads()[0] // VGG19, the reference workload
	if opt.Quick {
		w = QuickWorkloads()[0]
	}
	bw := 500 * netsim.Mbps
	out := &Table1Result{Model: w.Model, Bandwidth: bw}
	opt.logf("Table 1: method properties on %s @ %s", w.Model, bandwidthLabel(bw))

	// Job 0 is the lossless baseline; the rest follow Table1Schemes order.
	jobs := []engine.Job{trainJob("table1", w, "all-reduce", opt)}
	for _, scheme := range Table1Schemes() {
		jobs = append(jobs, trainJob("table1", w, scheme, opt))
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("table1", map[string]any{"bandwidth": bandwidthLabel(bw), "runs": len(jobs)})

	baseRes, baseCfg := results[0], jobs[0].Config
	baseIters, baseReached := baseRes.Curve.IterTo(w.TargetAcc)
	baseTTA, _ := recostTTA(baseRes, &baseCfg, bw, w.TargetAcc)
	if !baseReached {
		opt.logf("  warning: baseline did not reach target %.2f; verdicts use end-of-run state", w.TargetAcc)
		baseIters = baseRes.Iterations
	}

	for si, scheme := range Table1Schemes() {
		res, cfg := results[si+1], jobs[si+1].Config
		iters, reached := res.Curve.IterTo(w.TargetAcc)
		tta, ttaReached := recostTTA(res, &cfg, bw, w.TargetAcc)
		row := Table1Row{
			Scheme:              scheme,
			AllReduceCompatible: allReduceCompatible(scheme),
		}
		if reached && baseIters > 0 {
			row.IterRatio = float64(iters) / float64(baseIters)
			row.ConvOK = row.IterRatio <= 1.3
		} else {
			row.IterRatio = 0
			row.ConvOK = false
		}
		row.TTAImproved = ttaReached && tta < baseTTA
		row.TTASpeedup = metrics.Speedup(tta, baseTTA)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "✗"
}

// Render prints the measured Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	tb := metrics.NewTable(
		fmt.Sprintf("Table 1 — Measured impact of acceleration methods (%s @ %s)", r.Model, bandwidthLabel(r.Bandwidth)),
		"Method", "Conv. Speed", "Compatibility", "TTA", "iter ratio", "TTA speedup")
	for _, row := range r.Rows {
		iterStr := "-"
		if row.IterRatio > 0 {
			iterStr = fmt.Sprintf("%.2f×", row.IterRatio)
		}
		tb.AddRow(DisplayName(row.Scheme), mark(row.ConvOK), mark(row.AllReduceCompatible),
			mark(row.TTAImproved), iterStr, fmt.Sprintf("%.2f×", row.TTASpeedup))
	}
	b.WriteString(tb.String())
	b.WriteString("\nPaper's Table 1 (claimed): PacTrain ✓✓✓ · THC ✓✗✓ · Terngrad ✗✓? · DGC ✗✓? · OmniReduce ✓✗✓ · Zen ✓✗✓\n")
	return b.String()
}

// VerifyAgainstPaper checks the structural (transport) column against the
// paper's claims; measured columns are workload-dependent and reported, not
// asserted.
func (r *Table1Result) VerifyAgainstPaper() error {
	// Note: the paper's §I text ("most schemes (e.g., DGC, OmniReduce, and
	// Zen) are not compatible with all-reduce") and its Table 1 symbols
	// disagree on DGC; we follow the text and the mechanism (DGC exchanges
	// per-worker top-k selections, which requires all-gather).
	want := map[string]bool{
		"pactrain-ternary": true,
		"thc":              false,
		"terngrad":         true,
		"dgc-0.01":         false,
		"omnireduce":       false,
		"zen":              false,
		"topk-0.1":         false,
		"fp16":             true,
	}
	for _, row := range r.Rows {
		if expected, ok := want[row.Scheme]; ok && row.AllReduceCompatible != expected {
			return fmt.Errorf("table1: %s compatibility %v, paper claims %v",
				row.Scheme, row.AllReduceCompatible, expected)
		}
	}
	return nil
}
