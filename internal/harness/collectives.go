package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// CollectivesCell is one (algorithm, scheme, bandwidth) TTA measurement on
// the two-rack fabric.
type CollectivesCell struct {
	Algorithm    string
	Scheme       string
	BandwidthBps float64
	TTASeconds   float64
	Reached      bool
	// SpeedupVsRing is TTA(ring)/TTA(this algorithm) for the same scheme
	// and bandwidth (>1 means this algorithm is faster than the flat ring).
	SpeedupVsRing float64
}

// CollectivesResult is the collective-algorithm grid: every registered
// algorithm × the Fig. 3 bandwidths × a scheme subset, priced on a two-rack
// fabric whose single inter-switch link is the bottleneck. It is the first
// experiment where the simulated topology structure — not just link speed —
// can change the ranking of compression schemes: hierarchical aggregation
// crosses the bottleneck once per rack instead of once per ring step.
type CollectivesResult struct {
	Cells      []CollectivesCell
	Model      string
	Algorithms []string
	Schemes    []string
	Bandwidths []float64
	// EdgeBps is the intra-rack host-to-switch speed of the fabric.
	EdgeBps float64
}

// CollectivesSchemes lists the schemes the grid prices: the uncompressed
// baseline, the cheapest dense compression, and PacTrain.
func CollectivesSchemes() []string {
	return []string{"all-reduce", "fp16", "pactrain-ternary"}
}

// RunCollectives regenerates the algorithm grid. Each scheme trains once —
// the convergence trajectory is algorithm-independent, because the data
// plane sums identically under every algorithm — and the recorded
// communication is re-priced per (algorithm, bandwidth) on the two-rack
// fabric (bit-exact versus training under that algorithm directly; see
// TestRecostExactPerAlgorithm).
func RunCollectives(opt Options) (*CollectivesResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &CollectivesResult{
		Model:      w.Model,
		Algorithms: collective.AlgorithmNames(),
		Schemes:    CollectivesSchemes(),
		Bandwidths: Fig3Bandwidths(),
		EdgeBps:    10 * netsim.Gbps,
	}
	opt.logf("Collectives: %d algorithms × %d schemes × %d bandwidths on %s (two-rack fabric)",
		len(out.Algorithms), len(out.Schemes), len(out.Bandwidths), w.Model)

	var jobs []engine.Job
	for _, scheme := range out.Schemes {
		jobs = append(jobs, trainJob("collectives", w, scheme, opt))
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("collectives: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("collectives", map[string]any{
		"algorithms": len(out.Algorithms), "bandwidths": len(out.Bandwidths),
	})

	for si, scheme := range out.Schemes {
		res, cfg := results[si], jobs[si].Config
		for _, bw := range out.Bandwidths {
			topo := netsim.TwoRackTopology(netsim.TwoRackOptions{
				Hosts: opt.World, BottleneckBps: bw, EdgeBps: out.EdgeBps,
			})
			ringTTA := 0.0
			for _, algo := range out.Algorithms {
				fabric := netsim.NewFabric(topo)
				cum := recostCumWith(collective.MustAlgorithm(algo), res, &cfg, fabric)
				tta, reached := ttaFromCum(res, cum, w.TargetAcc)
				if algo == collective.DefaultAlgorithm {
					ringTTA = tta
				}
				out.Cells = append(out.Cells, CollectivesCell{
					Algorithm: algo, Scheme: scheme, BandwidthBps: bw,
					TTASeconds: tta, Reached: reached,
					SpeedupVsRing: metrics.Speedup(tta, ringTTA),
				})
			}
		}
	}
	return out, nil
}

// Cell fetches one grid entry.
func (r *CollectivesResult) Cell(algo, scheme string, bw float64) (CollectivesCell, bool) {
	for _, c := range r.Cells {
		if c.Algorithm == algo && c.Scheme == scheme && c.BandwidthBps == bw {
			return c, true
		}
	}
	return CollectivesCell{}, false
}

// HierarchicalSpeedup returns the best hierarchical-over-ring speedup for a
// scheme across the swept bandwidths — the experiment's headline (topology-
// aware aggregation pays most when the inter-rack link is slowest).
func (r *CollectivesResult) HierarchicalSpeedup(scheme string) float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.Algorithm == "hierarchical" && c.Scheme == scheme && c.SpeedupVsRing > best {
			best = c.SpeedupVsRing
		}
	}
	return best
}

// Render prints one table per bandwidth (rows = algorithms, columns =
// schemes, cells = TTA with the speedup over the flat ring).
func (r *CollectivesResult) Render() string {
	var b strings.Builder
	for _, bw := range r.Bandwidths {
		headers := append([]string{"algorithm \\ scheme"}, func() []string {
			names := make([]string, len(r.Schemes))
			for i, s := range r.Schemes {
				names[i] = DisplayName(s)
			}
			return names
		}()...)
		tb := metrics.NewTable(fmt.Sprintf(
			"Collectives — TTA on two-rack fabric (%s; %s bottleneck, %s edges; vs ring)",
			r.Model, bandwidthLabel(bw), bandwidthLabel(r.EdgeBps)), headers...)
		for _, algo := range r.Algorithms {
			row := []string{algo}
			for _, scheme := range r.Schemes {
				if c, ok := r.Cell(algo, scheme, bw); ok {
					cell := fmt.Sprintf("%s (%.2f×)", metrics.FormatSeconds(c.TTASeconds), c.SpeedupVsRing)
					if !c.Reached {
						cell = ">" + cell
					}
					row = append(row, cell)
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Best hierarchical speedup over flat ring: all-reduce %.2f×, PacTrain %.2f×\n",
		r.HierarchicalSpeedup("all-reduce"), r.HierarchicalSpeedup("pactrain-ternary"))
	return b.String()
}
