package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// Fig3Bandwidths lists the three WAN bottleneck speeds of Fig. 3.
func Fig3Bandwidths() []float64 {
	return []float64{100 * netsim.Mbps, 500 * netsim.Mbps, 1 * netsim.Gbps}
}

// Fig3Cell is one bar of Fig. 3: a (model, scheme, bandwidth) TTA
// measurement normalized to the all-reduce baseline at the same bandwidth.
type Fig3Cell struct {
	Model        string
	Scheme       string
	BandwidthBps float64
	TTASeconds   float64
	Reached      bool
	// RelTTA is TTA / TTA(all-reduce); the paper plots this on a log scale
	// (lower is better, baseline = 1.0).
	RelTTA float64
	// Speedup is the inverse, the form quoted in the abstract.
	Speedup float64
}

// Fig3Result holds the full grid.
type Fig3Result struct {
	Cells      []Fig3Cell
	Models     []string
	Schemes    []string
	Bandwidths []float64
}

// RunFig3 regenerates Fig. 3: for every workload × scheme it trains once
// (recording per-iteration communication), then re-costs the run under each
// bottleneck bandwidth and normalizes TTA to the all-reduce baseline.
func RunFig3(opt Options) (*Fig3Result, error) {
	opt.defaults()
	eng := opt.engine()
	workloads := opt.workloads()
	schemes := Fig3Schemes()
	bandwidths := Fig3Bandwidths()

	out := &Fig3Result{Schemes: schemes, Bandwidths: bandwidths}
	opt.logf("Fig. 3: end-to-end TTA, %d models × %d schemes × %d bandwidths",
		len(workloads), len(schemes), len(bandwidths))

	var jobs []engine.Job
	for _, w := range workloads {
		for _, scheme := range schemes {
			jobs = append(jobs, trainJob("fig3", w, scheme, opt))
		}
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("fig3", map[string]any{"bandwidths": len(bandwidths), "runs": len(jobs)})

	for wi, w := range workloads {
		out.Models = append(out.Models, w.Model)
		baselineTTA := make(map[float64]float64)
		for si, scheme := range schemes {
			res := results[wi*len(schemes)+si]
			cfg := jobs[wi*len(schemes)+si].Config
			for _, bw := range bandwidths {
				tta, reached := recostTTA(res, &cfg, bw, w.TargetAcc)
				if scheme == "all-reduce" {
					baselineTTA[bw] = tta
				}
				base := baselineTTA[bw]
				out.Cells = append(out.Cells, Fig3Cell{
					Model: w.Model, Scheme: scheme, BandwidthBps: bw,
					TTASeconds: tta, Reached: reached,
					RelTTA:  metrics.RelativeTTA(tta, base),
					Speedup: metrics.Speedup(tta, base),
				})
			}
		}
	}
	return out, nil
}

// Cell fetches one grid entry.
func (r *Fig3Result) Cell(model, scheme string, bw float64) (Fig3Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == model && c.Scheme == scheme && c.BandwidthBps == bw {
			return c, true
		}
	}
	return Fig3Cell{}, false
}

// MaxSpeedup returns the largest PacTrain speedup over all-reduce across
// the grid (the paper's headline "up to 8.72×").
func (r *Fig3Result) MaxSpeedup() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.Scheme == "pactrain-ternary" && c.Reached && c.Speedup > best {
			best = c.Speedup
		}
	}
	return best
}

// Render prints one relative-TTA table per bandwidth, shaped like
// Fig. 3(a)–(c) (rows = schemes, columns = models, values = TTA relative
// to all-reduce, lower is better).
func (r *Fig3Result) Render() string {
	var b strings.Builder
	for _, bw := range r.Bandwidths {
		headers := append([]string{"scheme \\ model"}, r.Models...)
		tb := metrics.NewTable(fmt.Sprintf("Fig. 3 — Relative TTA at WAN bandwidth %s (all-reduce = 1.0, lower is better)",
			bandwidthLabel(bw)), headers...)
		for _, scheme := range r.Schemes {
			row := []string{DisplayName(scheme)}
			for _, model := range r.Models {
				if c, ok := r.Cell(model, scheme, bw); ok {
					row = append(row, renderRelTTA(c.RelTTA, c.Reached))
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Max PacTrain speedup over all-reduce: %.2f×\n", r.MaxSpeedup())
	return b.String()
}
