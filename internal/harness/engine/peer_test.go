package engine

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// encodeFor runs a job on an engine and renders the Result in the canonical
// cache envelope, the form in which byte-identity is guaranteed across
// instances.
func encodeFor(t *testing.T, e *Engine, job Job) []byte {
	t.Helper()
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := encodeEntry(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestPeerHitServesRemoteEntry: an instance that misses locally serves a
// sibling's cached Result byte-identically and writes it through to its own
// disk cache.
func TestPeerHitServesRemoteEntry(t *testing.T) {
	t.Parallel()
	job := Job{Label: "remote", Config: testConfig("all-reduce")}

	dirA := t.TempDir()
	a := New(Options{Parallelism: 1, CacheDir: dirA, PeerID: "peer0"})
	wantRaw := encodeFor(t, a, job)
	srv := httptest.NewServer(NewPeerServer(a))
	defer srv.Close()

	dirB := t.TempDir()
	b := New(Options{Parallelism: 1, CacheDir: dirB, PeerID: "peer1", PeerURLs: []string{srv.URL}})
	gotRaw := encodeFor(t, b, job)

	if !bytes.Equal(gotRaw, wantRaw) {
		t.Fatal("peer-served result differs from the origin's entry bytes")
	}
	st := b.Stats()
	if st.Trained != 0 || st.PeerHits != 1 {
		t.Fatalf("stats %+v, want 0 trained / 1 peer hit", st)
	}
	// Write-through: B's on-disk entry must be byte-identical to A's.
	fp := job.Config.Fingerprint()
	fileA, err := os.ReadFile(filepath.Join(dirA, fp+".json"))
	if err != nil {
		t.Fatal(err)
	}
	fileB, err := os.ReadFile(filepath.Join(dirB, fp+".json"))
	if err != nil {
		t.Fatalf("peer hit was not written through to the local cache: %v", err)
	}
	if !bytes.Equal(fileA, fileB) {
		t.Fatal("written-through entry differs from the origin's file bytes")
	}
}

// TestPeerSingleflightTrainsOnce: the same fingerprint submitted to both
// instances of a peer pair concurrently trains exactly once, and both serve
// bytes identical to a single-instance run.
func TestPeerSingleflightTrainsOnce(t *testing.T) {
	t.Parallel()
	job := Job{Label: "pair", Config: testConfig("fp16")}
	want := encodeFor(t, New(Options{Parallelism: 1}), job)

	for round := 0; round < 3; round++ {
		a := New(Options{Parallelism: 1, CacheDir: t.TempDir(), PeerID: "peer0"})
		b := New(Options{Parallelism: 1, CacheDir: t.TempDir(), PeerID: "peer1"})
		srvA := httptest.NewServer(NewPeerServer(a))
		srvB := httptest.NewServer(NewPeerServer(b))
		a.peers = []string{srvB.URL}
		b.peers = []string{srvA.URL}

		var wg sync.WaitGroup
		raws := make([][]byte, 2)
		errs := make([]error, 2)
		for i, e := range []*Engine{a, b} {
			wg.Add(1)
			go func(i int, e *Engine) {
				defer wg.Done()
				res, err := e.Run(job)
				if err != nil {
					errs[i] = err
					return
				}
				raws[i], errs[i] = encodeEntry(res)
			}(i, e)
		}
		wg.Wait()
		srvA.Close()
		srvB.Close()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d instance %d: %v", round, i, err)
			}
		}
		trained := a.Stats().Trained + b.Stats().Trained
		if trained != 1 {
			t.Fatalf("round %d: %d trainings across the pair, want exactly 1", round, trained)
		}
		for i, raw := range raws {
			if !bytes.Equal(raw, want) {
				t.Fatalf("round %d instance %d: result differs from single-instance bytes", round, i)
			}
		}
	}
}

// TestPeerDownFallsBackToTraining: an unreachable peer degrades to a local
// training, never an error.
func TestPeerDownFallsBackToTraining(t *testing.T) {
	t.Parallel()
	// A listener that is immediately closed yields a refused connection.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	e := New(Options{Parallelism: 1, PeerID: "peer1", PeerURLs: []string{dead}})
	if _, err := e.Run(Job{Label: "solo", Config: testConfig("all-reduce")}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Trained != 1 {
		t.Fatalf("trained %d, want 1", st.Trained)
	}
	if st.PeerErrors == 0 {
		t.Fatal("dead peer produced no PeerErrors count")
	}
}

// TestPeerServerRejectsMalformedRequests covers the wire validation: bad
// fingerprints 400, unknown fingerprints 404.
func TestPeerServerRejectsMalformedRequests(t *testing.T) {
	t.Parallel()
	e := New(Options{PeerID: "peer0"})
	srv := httptest.NewServer(NewPeerServer(e))
	defer srv.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/cache/v1/entry/UPPER", http.StatusBadRequest},
		{"/cache/v1/entry/ab..cd", http.StatusBadRequest},
		{"/cache/v1/entry/0123456789abcdef", http.StatusNotFound},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestPeerServesFromMemo: a diskless instance still answers peers from its
// in-memory singleflight memo.
func TestPeerServesFromMemo(t *testing.T) {
	t.Parallel()
	job := Job{Label: "memo", Config: testConfig("all-reduce")}
	a := New(Options{Parallelism: 1, PeerID: "peer0"}) // no CacheDir
	wantRaw := encodeFor(t, a, job)
	srv := httptest.NewServer(NewPeerServer(a))
	defer srv.Close()

	b := New(Options{Parallelism: 1, PeerID: "peer1", PeerURLs: []string{srv.URL}})
	gotRaw := encodeFor(t, b, job)
	if !bytes.Equal(gotRaw, wantRaw) {
		t.Fatal("memo-served result differs from origin bytes")
	}
	if st := b.Stats(); st.Trained != 0 || st.PeerHits != 1 {
		t.Fatalf("stats %+v, want 0 trained / 1 peer hit", st)
	}
}

// TestPeerMissCountsAndTrains: a healthy peer without the entry answers
// 404; the asker counts the miss and trains locally.
func TestPeerMissCountsAndTrains(t *testing.T) {
	t.Parallel()
	a := New(Options{PeerID: "peer0"})
	srv := httptest.NewServer(NewPeerServer(a))
	defer srv.Close()

	b := New(Options{Parallelism: 1, PeerID: "peer1", PeerURLs: []string{srv.URL}})
	if _, err := b.Run(Job{Label: "miss", Config: testConfig("all-reduce")}); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Trained != 1 || st.PeerMisses == 0 || st.PeerErrors != 0 {
		t.Fatalf("stats %+v, want 1 trained, >0 peer misses, 0 peer errors", st)
	}
}
