package engine

// The cache-peer protocol makes N serve instances behave like one logical
// cache: an engine that misses its local disk cache asks its configured
// peers before committing to a training. Fingerprints are deterministic and
// training is deterministic for a fingerprint, so a peer's entry is exactly
// the bytes this instance would have produced — the protocol only moves
// work, never changes results.
//
// Wire format (one route, mounted by NewPeerServer):
//
//	GET {base}/cache/v1/entry/{fp}[?wait=SECONDS]
//
//	200  body = the cacheEntry JSON envelope (identical to the on-disk
//	     file bytes' schema): the peer has the Result.
//	404  the peer has no entry and no in-flight resolution for fp.
//	202  body = {"state":"resolving"|"training","id":PEER_ID}: the peer
//	     has an in-flight submission for fp. "training" means it has
//	     committed to training (the caller should wait — with ?wait the
//	     server long-polls completion before answering). "resolving"
//	     means the peer is itself still consulting cache/peers.
//
// Cross-instance singleflight falls out of the 202 states plus one
// tie-break. Each call carries a `training` latch that is closed only when
// the owner commits to local training, i.e. after both its disk cache and
// every peer have missed. A peer that answers "training" will definitely
// produce the Result, so the client long-polls it instead of training.
// "resolving" is the symmetric race — both instances are mid-consult for
// the same fingerprint — and is broken by total order on PeerID: the
// smaller ID treats the answer as a miss and goes on to train; the larger
// ID defers (bounded backoff re-poll) until the smaller side either
// commits ("training"), publishes (200), or gives up (404). The order is
// total, so at least one instance always makes progress and the mutual
// wait cannot deadlock. Every failure mode — peer down, malformed body,
// defer budget exhausted, peer's training failed — degrades to a local
// training: duplicated work at worst, never a wrong or missing result.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pactrain/internal/core"
)

const (
	// peerEntryPrefix is the route under which NewPeerServer resolves
	// fingerprints; clients append the fingerprint.
	peerEntryPrefix = "/cache/v1/entry/"

	// peerServerMaxWait caps how long one ?wait long-poll may hold the
	// server; clients re-poll. Must stay below the client timeout.
	peerServerMaxWait = 25 * time.Second
	// peerClientTimeout bounds one peer HTTP request end to end; it leaves
	// headroom over peerServerMaxWait so a full-length long-poll answers.
	peerClientTimeout = 30 * time.Second
	// peerLongPoll is the ?wait the client requests while a peer reports
	// "training": completion answers immediately, otherwise the poll
	// returns after this long and the client re-issues it.
	peerLongPoll = 10 * time.Second
	// peerMaxBody bounds a peer response body; a recorded Result with full
	// comm logs is a few MB, so this is generous without being unbounded.
	peerMaxBody = 128 << 20

	// peerDeferBase/Max bound the backoff between re-polls while deferring
	// to a lower-ID peer that is still "resolving" (a window of a few
	// milliseconds in practice).
	peerDeferBase = 10 * time.Millisecond
	peerDeferMax  = 250 * time.Millisecond
	// peerDeferRounds caps defer iterations; past it the engine stops
	// waiting and trains locally (safe: results are deterministic).
	peerDeferRounds = 512
)

// peer wire states beyond plain hit/miss.
const (
	peerStateHit       = "hit"
	peerStateMiss      = "miss"
	peerStateResolving = "resolving"
	peerStateTraining  = "training"
)

// peerPending is the 202 body: the peer has fp in flight.
type peerPending struct {
	State string `json:"state"`
	ID    string `json:"id"`
}

// NewPeerServer exposes an engine's cache — and its in-flight trainings —
// to sibling instances over the cache-peer protocol. Mount it alongside the
// instance's main API (the serve subsystem mounts it under the same mux).
func NewPeerServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+peerEntryPrefix+"{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp := r.PathValue("fp")
		if !validFingerprint(fp) {
			http.Error(w, "malformed fingerprint", http.StatusBadRequest)
			return
		}
		var wait time.Duration
		if s := r.URL.Query().Get("wait"); s != "" {
			sec, err := strconv.ParseFloat(s, 64)
			if err != nil || sec < 0 {
				http.Error(w, "malformed wait", http.StatusBadRequest)
				return
			}
			wait = min(time.Duration(sec*float64(time.Second)), peerServerMaxWait)
		}
		res, state := e.peerLookup(r.Context(), fp, wait)
		switch state {
		case peerStateHit:
			raw, err := encodeEntry(res)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
		case peerStateMiss:
			http.Error(w, "no entry", http.StatusNotFound)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(peerPending{State: state, ID: e.peerID})
		}
	})
	return mux
}

// validFingerprint accepts exactly the hex digests core.Config.Fingerprint
// produces; anything else (path tricks included) is rejected before it can
// reach a cache path.
func validFingerprint(fp string) bool {
	if fp == "" || len(fp) > 128 {
		return false
	}
	for _, r := range fp {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// peerLookup resolves one peer request against this engine: disk cache,
// then the in-flight table. With wait > 0 a fingerprint in the "training"
// state long-polls completion for up to that long before answering
// "training" (the client re-polls).
func (e *Engine) peerLookup(ctx context.Context, fp string, wait time.Duration) (*core.Result, string) {
	if e.cache != nil {
		if res, ok := e.cache.Load(fp); ok {
			return res, peerStateHit
		}
	}
	e.mu.Lock()
	c, ok := e.inflight[fp]
	e.mu.Unlock()
	if !ok {
		return nil, peerStateMiss
	}
	// Completed calls stay in the table as the singleflight memo, so a
	// diskless instance still serves peers from memory.
	select {
	case <-c.done:
		if c.err != nil {
			return nil, peerStateMiss
		}
		return c.res, peerStateHit
	default:
	}
	select {
	case <-c.training:
	default:
		return nil, peerStateResolving
	}
	if wait <= 0 {
		return nil, peerStateTraining
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-c.done:
		if c.err != nil {
			return nil, peerStateMiss
		}
		return c.res, peerStateHit
	case <-timer.C:
		return nil, peerStateTraining
	case <-ctx.Done():
		return nil, peerStateTraining
	}
}

// consultPeers asks every configured peer for fp, driving the singleflight
// dance described in the package comment. ok is true with the peer-served
// Result; false means every peer missed (or failed) and the caller should
// train locally.
func (e *Engine) consultPeers(job Job, fp string) (*core.Result, bool) {
	backoff := peerDeferBase
	deferred := 0
	wait := time.Duration(0)
	for {
		anyTraining, anyDefer := false, false
		for _, peer := range e.peers {
			res, state, remoteID, err := e.peerFetch(peer, fp, wait)
			if err != nil {
				e.mu.Lock()
				e.stats.PeerErrors++
				e.mu.Unlock()
				e.logf("engine: %-32s %s peer %s error: %v", job.Label, fp, peer, err)
				continue
			}
			switch state {
			case peerStateHit:
				e.mu.Lock()
				e.stats.PeerHits++
				e.mu.Unlock()
				if e.onEvent != nil {
					e.onEvent(Event{Kind: EventPeerHit, Label: job.Label, Fingerprint: fp,
						SimSeconds: res.SimSeconds, Peer: peer, Stats: e.Stats()})
				}
				e.logf("engine: %-32s %s peer hit (%s)", job.Label, fp, peer)
				return res, true
			case peerStateMiss:
				e.mu.Lock()
				e.stats.PeerMisses++
				e.mu.Unlock()
			case peerStateTraining:
				anyTraining = true
			case peerStateResolving:
				// Symmetric race: both instances are mid-consult. Total
				// order on peer IDs breaks it — the smaller ID proceeds
				// to train, the larger defers.
				if remoteID < e.peerID {
					anyDefer = true
				}
			}
		}
		if !anyTraining && !anyDefer {
			return nil, false
		}
		if anyTraining {
			// A peer owns the training; the next fetch long-polls its
			// completion server-side, so no client-side sleep is needed.
			wait = peerLongPoll
			continue
		}
		deferred++
		if deferred > peerDeferRounds {
			e.logf("engine: %-32s %s peer defer budget exhausted; training locally", job.Label, fp)
			return nil, false
		}
		time.Sleep(backoff)
		backoff = min(backoff*2, peerDeferMax)
	}
}

// peerFetch performs one protocol request against one peer base URL.
func (e *Engine) peerFetch(base, fp string, wait time.Duration) (*core.Result, string, string, error) {
	url := strings.TrimRight(base, "/") + peerEntryPrefix + fp
	if wait > 0 {
		url += fmt.Sprintf("?wait=%g", wait.Seconds())
	}
	resp, err := e.peerHTTP.Get(url)
	if err != nil {
		return nil, "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, peerMaxBody))
	if err != nil {
		return nil, "", "", err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		res, ok := decodeEntry(body)
		if !ok {
			return nil, "", "", fmt.Errorf("peer %s: undecodable entry for %s", base, fp)
		}
		return res, peerStateHit, "", nil
	case http.StatusNotFound:
		return nil, peerStateMiss, "", nil
	case http.StatusAccepted:
		var p peerPending
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, "", "", fmt.Errorf("peer %s: undecodable pending body: %w", base, err)
		}
		if p.State != peerStateResolving && p.State != peerStateTraining {
			return nil, "", "", fmt.Errorf("peer %s: unknown pending state %q", base, p.State)
		}
		return nil, p.State, p.ID, nil
	default:
		return nil, "", "", fmt.Errorf("peer %s: status %d", base, resp.StatusCode)
	}
}
