package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pactrain/internal/core"
)

// testConfig is a tiny fast run used across the engine tests.
func testConfig(scheme string) core.Config {
	cfg := core.DefaultConfig("MLP", scheme)
	cfg.World = 2
	cfg.Epochs = 1
	cfg.Data.Samples = 64
	cfg.TestSamples = 32
	return cfg
}

func TestRunAllDeduplicatesIdenticalJobs(t *testing.T) {
	t.Parallel()
	var log bytes.Buffer
	e := New(Options{Parallelism: 4, Log: &log})
	jobs := []Job{
		{Label: "a", Config: testConfig("all-reduce")},
		{Label: "b", Config: testConfig("all-reduce")},
		{Label: "c", Config: testConfig("fp16")},
		{Label: "d", Config: testConfig("all-reduce")},
	}
	results, err := e.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// Deduplicated submissions share the identical Result pointer.
	if results[0] != results[1] || results[0] != results[3] {
		t.Fatal("identical jobs did not share a result")
	}
	if results[0] == results[2] {
		t.Fatal("distinct jobs shared a result")
	}
	s := e.Stats()
	if s.Submitted != 4 || s.Trained != 2 || s.Deduped != 2 {
		t.Fatalf("stats %+v, want 4 submitted / 2 trained / 2 deduped", s)
	}
	if !strings.Contains(log.String(), "deduplicated") {
		t.Fatalf("dedup not observable in progress log:\n%s", log.String())
	}
}

func TestRunSharesAcrossSequentialSubmissions(t *testing.T) {
	t.Parallel()
	e := New(Options{})
	r1, err := e.Run(Job{Label: "first", Config: testConfig("all-reduce")})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(Job{Label: "second", Config: testConfig("all-reduce")})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("completed job was re-trained on resubmission")
	}
	if s := e.Stats(); s.Trained != 1 || s.Deduped != 1 {
		t.Fatalf("stats %+v, want 1 trained / 1 deduped", s)
	}
}

func TestRunErrorNotCached(t *testing.T) {
	t.Parallel()
	e := New(Options{})
	bad := testConfig("no-such-scheme")
	if _, err := e.Run(Job{Label: "bad", Config: bad}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	// A failed fingerprint must not poison the key: a corrected config with
	// the same fingerprint cannot exist, but resubmitting the same bad job
	// must re-attempt rather than hang on a closed call.
	if _, err := e.Run(Job{Label: "bad again", Config: bad}); err == nil {
		t.Fatal("expected error on resubmission")
	}
	if s := e.Stats(); s.Trained != 0 {
		t.Fatalf("failed validations counted as trainings: %+v", s)
	}
}

// TestCacheRoundTripExact is the cache-correctness contract: a Result
// loaded from the on-disk cache must be indistinguishable from the freshly
// trained one — identical curve, clock, communication log, and summary
// statistics — so cached and fresh invocations render byte-identical
// reports.
func TestCacheRoundTripExact(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	fresh := New(Options{CacheDir: dir})
	job := Job{Label: "seed", Config: testConfig("pactrain-ternary")}
	want, err := fresh.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	reload := New(Options{CacheDir: dir})
	got, err := reload.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if s := reload.Stats(); s.CacheHits != 1 || s.Trained != 0 {
		t.Fatalf("expected pure cache hit, got %+v", s)
	}

	// WallSeconds is the recorded process's wall clock; everything else
	// must round-trip exactly (encoding/json preserves float64 bit
	// patterns for finite values).
	wantCp, gotCp := *want, *got
	wantCp.WallSeconds, gotCp.WallSeconds = 0, 0
	if !reflect.DeepEqual(&wantCp, &gotCp) {
		wj, _ := json.Marshal(wantCp)
		gj, _ := json.Marshal(gotCp)
		t.Fatalf("cached result differs from fresh:\nfresh:  %s\ncached: %s", wj, gj)
	}
}

// TestMemoLimitEvictsThroughDiskCache covers the bounded singleflight memo
// (DESIGN.md §6 named this as future work): once an entry's Result is on
// disk, MemoLimit may evict it from memory, and a re-query round-trips
// through the disk cache byte-identically instead of retraining.
func TestMemoLimitEvictsThroughDiskCache(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	e := New(Options{CacheDir: dir, MemoLimit: 1})

	jobA := Job{Label: "a", Config: testConfig("all-reduce")}
	jobB := Job{Label: "b", Config: testConfig("fp16")}
	first, err := e.Run(jobA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(jobB); err != nil { // evicts jobA's memo entry
		t.Fatal(err)
	}

	again, err := e.Run(jobA)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Trained != 2 || s.CacheHits != 1 || s.Deduped != 0 {
		t.Fatalf("stats %+v, want 2 trained / 1 cache hit / 0 deduped", s)
	}
	if first == again {
		t.Fatal("evicted entry returned the in-memory pointer, not the disk copy")
	}
	// Byte-identical round trip (WallSeconds is the recorded process's wall
	// clock, zeroed on both store and load).
	firstCp := *first
	firstCp.WallSeconds = 0
	wj, err := json.Marshal(&firstCp)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Fatalf("disk round trip not byte-identical:\nfresh: %s\ndisk:  %s", wj, gj)
	}
}

// TestMemoLimitPinsUnpersistedEntries: without a disk cache nothing is
// evictable — the memo is the only copy — so the limit must not discard
// work.
func TestMemoLimitPinsUnpersistedEntries(t *testing.T) {
	t.Parallel()
	e := New(Options{MemoLimit: 1})
	jobA := Job{Label: "a", Config: testConfig("all-reduce")}
	if _, err := e.Run(jobA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Job{Label: "b", Config: testConfig("fp16")}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(jobA); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Trained != 2 || s.Deduped != 1 {
		t.Fatalf("stats %+v, want 2 trained / 1 deduped (no eviction without a cache)", s)
	}
}

func TestCacheVersionSkewIsMiss(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := NewCache(dir)
	res := &core.Result{Scheme: "all-reduce", Model: "MLP"}
	if err := c.Store("deadbeef", res); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("deadbeef"); !ok {
		t.Fatal("stored entry did not load")
	}
	if _, ok := c.Load("not-there"); ok {
		t.Fatal("missing entry reported as hit")
	}
}

// TestCachePreTimelineLogIsMiss guards against serving recorded logs from
// before the per-rank timeline refactor: their fingerprints still match,
// but they lack the bucket geometry (CommLog.BucketElems) the timeline
// re-coster needs, so Load must miss — and Sweep must remove them — rather
// than panic a straggler-grid or overlap re-cost downstream.
func TestCachePreTimelineLogIsMiss(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := NewCache(dir)
	legacy := &core.Result{Scheme: "all-reduce", Model: "MLP",
		CommLog: &core.CommLog{Iters: [][]core.CommOp{{{Kind: core.OpAllReduce, Elements: 4}}}}}
	if err := c.Store("cafe01", legacy); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("cafe01"); ok {
		t.Fatal("pre-timeline log (no BucketElems) must miss")
	}
	sr, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Swept != 1 || sr.Kept != 0 {
		t.Fatalf("sweep = %+v, want the geometry-less entry removed", sr)
	}

	// The same log with geometry is current and must round-trip.
	current := &core.Result{Scheme: "all-reduce", Model: "MLP",
		CommLog: &core.CommLog{BucketElems: []int{4},
			Iters: [][]core.CommOp{{{Kind: core.OpAllReduce, Elements: 4}}}}}
	if err := c.Store("cafe02", current); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("cafe02"); !ok {
		t.Fatal("current log reported as miss")
	}
}

func TestParallelismBoundsConcurrency(t *testing.T) {
	t.Parallel()
	// Observe concurrency through the engine's own semaphore: with
	// Parallelism 2, at most two distinct trainings hold slots at once.
	e := New(Options{Parallelism: 2})
	var peak atomic.Int32
	// Wrap by submitting jobs whose configs differ only by seed, so none
	// deduplicate and all must take a pool slot.
	jobs := make([]Job, 6)
	for i := range jobs {
		cfg := testConfig("all-reduce")
		cfg.Seed = uint64(i + 1)
		jobs[i] = Job{Label: "j", Config: cfg}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = e.RunAll(jobs)
	}()
	// Sample the semaphore occupancy while the pool drains.
	for {
		select {
		case <-done:
			if p := peak.Load(); p > 2 {
				t.Fatalf("observed %d concurrent slots, bound is 2", p)
			}
			if s := e.Stats(); s.Trained != 6 {
				t.Fatalf("stats %+v, want 6 trained", s)
			}
			return
		default:
		}
		if n := int32(len(e.sem)); n > peak.Load() {
			peak.Store(n)
		}
		time.Sleep(time.Millisecond)
	}
}
