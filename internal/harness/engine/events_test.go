package engine

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pactrain/internal/core"
)

// eventRecorder collects events from concurrent scheduling goroutines.
type eventRecorder struct {
	mu  sync.Mutex
	evs []Event
}

func (r *eventRecorder) record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = append(r.evs, ev)
}

func (r *eventRecorder) count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func TestEventsCoverSubmissionLifecycle(t *testing.T) {
	t.Parallel()
	var rec eventRecorder
	e := New(Options{Parallelism: 2, OnEvent: rec.record})
	jobs := []Job{
		{Label: "fig3 a", Config: testConfig("all-reduce")},
		{Label: "fig3 b", Config: testConfig("all-reduce")},
		{Label: "fig3 c", Config: testConfig("fp16")},
	}
	if _, err := e.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(EventSubmitted); got != 3 {
		t.Fatalf("submitted events = %d, want 3", got)
	}
	if got := rec.count(EventTrainStart); got != 2 {
		t.Fatalf("train-start events = %d, want 2", got)
	}
	if got := rec.count(EventTrainDone); got != 2 {
		t.Fatalf("train-done events = %d, want 2", got)
	}
	if got := rec.count(EventDeduped); got != 1 {
		t.Fatalf("deduped events = %d, want 1", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var last Stats
	for _, ev := range rec.evs {
		if ev.Fingerprint == "" || ev.Label == "" {
			t.Fatalf("event missing identity: %+v", ev)
		}
		switch ev.Kind {
		case EventTrainDone, EventDeduped:
			if ev.Err == "" && ev.SimSeconds <= 0 {
				t.Fatalf("%s event carries no simulated time: %+v", ev.Kind, ev)
			}
		}
		last = ev.Stats
	}
	// The final snapshot must agree with the engine's own counters.
	if want := e.Stats(); last != want {
		t.Fatalf("last event stats %+v, engine stats %+v", last, want)
	}
}

func TestEventsReportTrainingFailure(t *testing.T) {
	t.Parallel()
	var rec eventRecorder
	e := New(Options{OnEvent: rec.record})
	if _, err := e.Run(Job{Label: "bad", Config: testConfig("no-such-scheme")}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	found := false
	for _, ev := range rec.evs {
		if ev.Kind == EventTrainDone {
			found = true
			if ev.Err == "" {
				t.Fatalf("failed training emitted no error: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no train-done event for failed job")
	}
}

func TestCacheHitEmitsEvent(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	job := Job{Label: "seed", Config: testConfig("all-reduce")}
	warm := New(Options{CacheDir: dir})
	if _, err := warm.Run(job); err != nil {
		t.Fatal(err)
	}
	var rec eventRecorder
	cold := New(Options{CacheDir: dir, OnEvent: rec.record})
	if _, err := cold.Run(job); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(EventCacheHit); got != 1 {
		t.Fatalf("cache-hit events = %d, want 1", got)
	}
	if got := rec.count(EventTrainStart); got != 0 {
		t.Fatalf("train-start events = %d, want 0", got)
	}
}

func TestSweepRemovesStaleAndCorruptEntries(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := NewCache(dir)

	// A valid entry, written through the real path.
	if err := c.Store("valid", testResult()); err != nil {
		t.Fatal(err)
	}
	// A version-skewed entry, a corrupt entry, and an orphaned temp file.
	writeFile(t, filepath.Join(dir, "stale.json"), `{"version":0,"result":{}}`)
	writeFile(t, filepath.Join(dir, "corrupt.json"), `{"version":1,`)
	writeFile(t, filepath.Join(dir, "orphan.tmp-12345"), "partial")
	// Temp files younger than sweepTmpGrace may have a live writer behind
	// them; backdate the orphan so the sweep treats it as abandoned, and
	// leave a fresh one that must survive.
	old := time.Now().Add(-2 * sweepTmpGrace)
	if err := os.Chtimes(filepath.Join(dir, "orphan.tmp-12345"), old, old); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "live.tmp-67890"), "in flight")
	// A foreign file the sweep must leave alone.
	writeFile(t, filepath.Join(dir, "README"), "not a cache entry")

	sr, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Scanned != 5 || sr.Swept != 3 || sr.Kept != 2 {
		t.Fatalf("sweep %+v, want 5 scanned / 3 swept / 2 kept", sr)
	}
	if _, ok := c.Load("valid"); !ok {
		t.Fatal("sweep removed the valid entry")
	}
	for _, gone := range []string{"stale.json", "corrupt.json", "orphan.tmp-12345"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the sweep", gone)
		}
	}
	for _, kept := range []string{"README", "live.tmp-67890"} {
		if _, err := os.Stat(filepath.Join(dir, kept)); err != nil {
			t.Fatalf("sweep removed %s", kept)
		}
	}

	// Idempotent: a second sweep finds the kept entry and the live temp.
	sr, err = c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Scanned != 2 || sr.Swept != 0 || sr.Kept != 2 {
		t.Fatalf("second sweep %+v, want 2 scanned / 0 swept / 2 kept", sr)
	}
}

func TestSweepMissingDirIsNoop(t *testing.T) {
	t.Parallel()
	c := NewCache(filepath.Join(t.TempDir(), "never-created"))
	sr, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sr != (SweepResult{}) {
		t.Fatalf("sweep of missing dir %+v, want zero", sr)
	}
}

func TestEngineSweepCacheWithoutCache(t *testing.T) {
	t.Parallel()
	e := New(Options{})
	sr, err := e.SweepCache()
	if err != nil {
		t.Fatal(err)
	}
	if sr != (SweepResult{}) {
		t.Fatalf("cacheless sweep %+v, want zero", sr)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// testResult trains the tiny config once per process for cache fixtures.
var testResult = sync.OnceValue(func() *core.Result {
	e := New(Options{})
	res, err := e.Run(Job{Label: "fixture", Config: testConfig("all-reduce")})
	if err != nil {
		panic(err)
	}
	return res
})

// TestEventProgressRelaysHeartbeats checks that a training with an event
// observer emits EventProgress heartbeats carrying the core.Progress
// payload, and that a caller-installed OnProgress keeps firing too.
func TestEventProgressRelaysHeartbeats(t *testing.T) {
	t.Parallel()
	var rec eventRecorder
	e := New(Options{Parallelism: 1, OnEvent: rec.record})
	cfg := testConfig("all-reduce")
	callerBeats := 0
	cfg.OnProgress = func(core.Progress) { callerBeats++ }
	if _, err := e.Run(Job{Label: "progress", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	got := rec.count(EventProgress)
	if got == 0 {
		t.Fatal("no EventProgress emitted")
	}
	if callerBeats != got {
		t.Fatalf("caller callback fired %d times, observer saw %d heartbeats", callerBeats, got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, ev := range rec.evs {
		if ev.Kind != EventProgress {
			continue
		}
		if ev.Progress == nil || ev.Progress.Iter == 0 || ev.SimSeconds != ev.Progress.SimSeconds {
			t.Fatalf("malformed progress event: %+v", ev)
		}
	}
}

// TestEventCacheHitCarriesAge checks that serving from the on-disk cache
// stamps the event with the entry's age.
func TestEventCacheHitCarriesAge(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := testConfig("all-reduce")
	if _, err := New(Options{Parallelism: 1, CacheDir: dir}).Run(Job{Label: "warm", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	// Backdate the entry so the age is unambiguous.
	fp := cfg.Fingerprint()
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, fp+".json"), old, old); err != nil {
		t.Fatal(err)
	}
	var rec eventRecorder
	if _, err := New(Options{Parallelism: 1, CacheDir: dir, OnEvent: rec.record}).Run(Job{Label: "hit", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if rec.count(EventCacheHit) != 1 {
		t.Fatal("expected one cache-hit event")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, ev := range rec.evs {
		if ev.Kind == EventCacheHit && (ev.CacheAgeSeconds < 3500 || ev.CacheAgeSeconds > 7200) {
			t.Fatalf("cache hit age %v s, want ≈ 3600", ev.CacheAgeSeconds)
		}
	}
}
