// Package engine schedules the experiment harness's training jobs. Every
// experiment in the paper's evaluation (§IV) is a grid over (model, scheme,
// bandwidth, topology) whose expensive axis is training; the engine turns
// each grid into declarative Jobs keyed by core.Config.Fingerprint and runs
// them through one shared worker pool with:
//
//   - singleflight deduplication: identical jobs submitted by any experiment
//     in the process train exactly once and share the Result (training is
//     deterministic for a fingerprint, so sharing is exact);
//   - bounded parallelism: at most Parallelism trainings run concurrently,
//     independent grid cells overlapping on the wall clock;
//   - an optional on-disk JSON result cache, so repeated CLI invocations
//     re-cost recorded runs instead of re-training them.
//
// Experiments submit jobs in a deterministic order and assemble reports from
// the returned slice, so report bytes are independent of scheduling.
package engine

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"pactrain/internal/core"
	"pactrain/internal/par"
)

// Job is one declarative unit of training work: a fully specified run
// configuration plus a human-readable label for progress logging.
type Job struct {
	// Label names the job in the progress log, e.g. "fig3 VGG19/fp16".
	Label string
	// Config is the run to execute; its Fingerprint is the dedup key.
	Config core.Config
}

// Stats counts what the engine did on behalf of its callers.
type Stats struct {
	// Submitted is the number of Run/RunAll job submissions.
	Submitted int `json:"submitted"`
	// Trained is the number of core.Run invocations actually executed.
	Trained int `json:"trained"`
	// Deduped counts submissions satisfied by an identical in-process job.
	Deduped int `json:"deduped"`
	// CacheHits counts submissions satisfied from the on-disk cache.
	CacheHits int `json:"cache_hits"`
	// PeerHits counts submissions satisfied over the cache-peer protocol
	// (peer.go); PeerMisses and PeerErrors count per-peer requests that
	// answered "no entry" or failed outright.
	PeerHits   int `json:"peer_hits"`
	PeerMisses int `json:"peer_misses"`
	PeerErrors int `json:"peer_errors"`
}

// EventKind classifies one step of a submission's lifecycle.
type EventKind int

// Event kinds, in the order a single submission can emit them.
const (
	// EventSubmitted fires when a job enters the engine.
	EventSubmitted EventKind = iota
	// EventDeduped fires when a submission was satisfied by an identical
	// in-process job, after that job completes.
	EventDeduped
	// EventCacheHit fires when a submission was satisfied from the on-disk
	// cache.
	EventCacheHit
	// EventTrainStart fires when a training acquires a pool slot.
	EventTrainStart
	// EventTrainDone fires when a training finishes; Err is non-empty on
	// failure.
	EventTrainDone
	// EventProgress fires on each of a running training's rank-0 evaluation
	// heartbeats (core.Progress); Progress carries the payload. Appended
	// after the lifecycle kinds so their numeric values never move.
	EventProgress
	// EventPeerHit fires when a submission was satisfied by a cache peer
	// (Event.Peer names it). Appended last; numeric values never move.
	EventPeerHit
)

// String names the kind for logs and API payloads.
func (k EventKind) String() string {
	switch k {
	case EventSubmitted:
		return "submitted"
	case EventDeduped:
		return "deduped"
	case EventCacheHit:
		return "cache-hit"
	case EventTrainStart:
		return "train-start"
	case EventTrainDone:
		return "train-done"
	case EventProgress:
		return "progress"
	case EventPeerHit:
		return "peer-hit"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one observable step of the engine's scheduling, the structured
// counterpart of the progress log: callers that used to scrape log lines
// subscribe to these instead (Options.OnEvent).
type Event struct {
	Kind        EventKind
	Label       string
	Fingerprint string
	// SimSeconds is the simulated training time of the Result the event
	// delivered (EventDeduped, EventCacheHit, successful EventTrainDone;
	// zero otherwise).
	SimSeconds float64
	// Err carries the failure of an EventTrainDone.
	Err string
	// Progress carries the heartbeat payload of an EventProgress (nil on
	// every other kind).
	Progress *core.Progress
	// CacheAgeSeconds is, on an EventCacheHit, how long ago the served
	// entry was written (0 when unknown).
	CacheAgeSeconds float64
	// Peer is, on an EventPeerHit, the base URL of the peer that served
	// the entry (empty on every other kind).
	Peer string
	// Stats snapshots the engine counters just after the event.
	Stats Stats
}

// Options configures an Engine.
type Options struct {
	// Parallelism bounds concurrent trainings (min 1).
	Parallelism int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Cache, when non-nil, supplies the result store directly and takes
	// precedence over CacheDir. The default (CacheDir) backend is the
	// on-disk Cache; tests and embedders may substitute any CacheBackend.
	Cache CacheBackend
	// PeerURLs lists sibling instances' base URLs for the cache-peer
	// protocol (peer.go): a local cache miss consults each peer before the
	// engine commits to training. Empty disables peering.
	PeerURLs []string
	// PeerID names this instance in the peer protocol. The resolving-vs-
	// resolving race is broken by total order on IDs (smaller trains), so
	// IDs must be unique and stable across the peer group.
	PeerID string
	// PeerClient overrides the HTTP client used for peer fetches (nil uses
	// a default with a timeout above the server's long-poll cap).
	PeerClient *http.Client
	// MemoLimit bounds the in-memory singleflight Result memo (0 =
	// unlimited, the historical behavior). The memo is the cross-experiment
	// dedup economy, but a long-lived process serving many distinct configs
	// (the serve subsystem, DESIGN.md §6) would otherwise retain one Result
	// per config forever. With a limit set, an entry becomes evictable once
	// its Result is safely on disk — stored to, or loaded from, the cache —
	// and the oldest evictable entries drop first; a re-query then
	// round-trips through the disk cache byte-identically
	// (TestMemoLimitEvictsThroughDiskCache). Entries that never reached
	// disk (no CacheDir, or a failed store) are pinned: evicting them would
	// forget work nothing can recover.
	MemoLimit int
	// Log receives per-job progress lines; nil discards them.
	Log io.Writer
	// OnEvent, when non-nil, observes every scheduling step. It is invoked
	// synchronously from scheduling goroutines — possibly several at once —
	// so it must be fast, internally synchronized, and must not call back
	// into the engine.
	OnEvent func(Event)
}

// Engine is a concurrency-limited, deduplicating scheduler for training
// jobs. It is safe for concurrent use; one engine is typically shared by
// every experiment in a process.
type Engine struct {
	sem       chan struct{}
	cache     CacheBackend
	log       io.Writer
	onEvent   func(Event)
	memoLimit int
	peers     []string
	peerID    string
	peerHTTP  *http.Client

	mu       sync.Mutex
	inflight map[string]*call
	stats    Stats
	// completed lists successfully finished fingerprints in completion
	// order; persisted marks the ones whose Result is on disk and therefore
	// evictable under MemoLimit.
	completed []string
	persisted map[string]bool

	logMu sync.Mutex
}

// call is one singleflight entry: the first submitter of a fingerprint
// trains; later submitters wait on done and share the outcome.
type call struct {
	done chan struct{}
	// training is closed once the owner commits to training locally —
	// after the disk cache and every peer have missed. The peer server
	// reports a call "resolving" before the latch closes and "training"
	// after; only the latter is a promise a remote instance may wait on.
	training chan struct{}
	res      *core.Result
	err      error
}

// New builds an engine.
func New(opt Options) *Engine {
	if opt.Parallelism < 1 {
		opt.Parallelism = 1
	}
	if opt.Log == nil {
		opt.Log = io.Discard
	}
	// Size the kernel worker budget against the job-level parallelism so the
	// two do not multiply: with P concurrent trainings on a G-core machine,
	// each training's compression kernels may fan out over at most G/P
	// goroutines. Kernel chunking never changes results (internal/par), so
	// this is purely a scheduling decision.
	par.SetBudget(runtime.GOMAXPROCS(0) / opt.Parallelism)
	cache := opt.Cache
	if cache == nil && opt.CacheDir != "" {
		cache = NewCache(opt.CacheDir)
	}
	peerHTTP := opt.PeerClient
	if peerHTTP == nil {
		peerHTTP = &http.Client{Timeout: peerClientTimeout}
	}
	return &Engine{
		sem:       make(chan struct{}, opt.Parallelism),
		cache:     cache,
		log:       opt.Log,
		onEvent:   opt.OnEvent,
		memoLimit: opt.MemoLimit,
		peers:     opt.PeerURLs,
		peerID:    opt.PeerID,
		peerHTTP:  peerHTTP,
		inflight:  make(map[string]*call),
		persisted: make(map[string]bool),
	}
}

// emit delivers an event to the observer with a fresh counter snapshot. It
// must never be called with e.mu held (it takes it for the snapshot).
func (e *Engine) emit(kind EventKind, label, fp string, sim float64, err error) {
	if e.onEvent == nil {
		return
	}
	ev := Event{Kind: kind, Label: label, Fingerprint: fp, SimSeconds: sim, Stats: e.Stats()}
	if err != nil {
		ev.Err = err.Error()
	}
	e.onEvent(ev)
}

// Run executes one job, deduplicating against identical in-flight or
// completed jobs and the on-disk cache. The returned Result is shared
// between deduplicated callers and must be treated as read-only.
func (e *Engine) Run(job Job) (*core.Result, error) {
	fp := job.Config.Fingerprint()

	e.mu.Lock()
	e.stats.Submitted++
	if c, ok := e.inflight[fp]; ok {
		e.stats.Deduped++
		e.mu.Unlock()
		e.emit(EventSubmitted, job.Label, fp, 0, nil)
		e.logf("engine: %-32s %s deduplicated", job.Label, fp)
		<-c.done
		var sim float64
		if c.res != nil {
			sim = c.res.SimSeconds
		}
		e.emit(EventDeduped, job.Label, fp, sim, c.err)
		return c.res, c.err
	}
	c := &call{done: make(chan struct{}), training: make(chan struct{})}
	e.inflight[fp] = c
	e.mu.Unlock()
	e.emit(EventSubmitted, job.Label, fp, 0, nil)

	var persisted bool
	c.res, persisted, c.err = e.execute(job, fp, c)
	close(c.done)
	e.mu.Lock()
	if c.err != nil {
		// Do not poison the key forever: a failed job may be retried.
		delete(e.inflight, fp)
	} else {
		e.completed = append(e.completed, fp)
		if persisted {
			e.persisted[fp] = true
		}
		e.evictLocked()
	}
	e.mu.Unlock()
	return c.res, c.err
}

// evictLocked drops the oldest disk-persisted completed entries until the
// memo is back within MemoLimit. Callers hold e.mu.
func (e *Engine) evictLocked() {
	if e.memoLimit <= 0 || len(e.persisted) == 0 {
		// Nothing evictable (no limit, no cache, or every store failed):
		// skip the scan rather than rewalking an all-pinned list per job.
		return
	}
	excess := len(e.completed) - e.memoLimit
	if excess <= 0 {
		return
	}
	kept := e.completed[:0]
	for _, fp := range e.completed {
		if excess > 0 && e.persisted[fp] {
			delete(e.inflight, fp)
			delete(e.persisted, fp)
			excess--
			continue
		}
		kept = append(kept, fp)
	}
	e.completed = kept
}

// execute resolves a job the first submitter owns: disk cache, then the
// cache peers, then a pool-limited training run. The bool reports whether
// the Result is safely on disk — the precondition for memo eviction.
func (e *Engine) execute(job Job, fp string, c *call) (*core.Result, bool, error) {
	if e.cache != nil {
		if res, ok := e.cache.Load(fp); ok {
			e.mu.Lock()
			e.stats.CacheHits++
			e.mu.Unlock()
			if e.onEvent != nil {
				ev := Event{Kind: EventCacheHit, Label: job.Label, Fingerprint: fp,
					SimSeconds: res.SimSeconds, CacheAgeSeconds: e.cache.Age(fp), Stats: e.Stats()}
				e.onEvent(ev)
			}
			e.logf("engine: %-32s %s cache hit", job.Label, fp)
			return res, true, nil
		}
	}
	if len(e.peers) > 0 {
		if res, ok := e.consultPeers(job, fp); ok {
			// Write through to the local cache so the entry is served
			// from disk next time, and so the memo entry is evictable.
			persisted := false
			if e.cache != nil {
				if err := e.cache.Store(fp, res); err != nil {
					e.logf("engine: %-32s %s cache store failed: %v", job.Label, fp, err)
				} else {
					persisted = true
				}
			}
			return res, persisted, nil
		}
	}

	// Local and peer misses exhausted: commit to training. The latch tells
	// the peer server this call is now a promise remote instances may wait
	// on (see peer.go).
	close(c.training)
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	e.emit(EventTrainStart, job.Label, fp, 0, nil)
	e.logf("engine: %-32s %s training (%s/%s, %d epochs, world %d)",
		job.Label, fp, job.Config.ModelName, job.Config.Scheme, job.Config.Epochs, job.Config.World)
	// execute owns a by-value copy of the config, so relaying heartbeats to
	// the observer never mutates the caller's job. A callback the caller
	// installed keeps firing first.
	cfg := job.Config
	if e.onEvent != nil {
		callerCB := cfg.OnProgress
		cfg.OnProgress = func(p core.Progress) {
			if callerCB != nil {
				callerCB(p)
			}
			e.onEvent(Event{Kind: EventProgress, Label: job.Label, Fingerprint: fp,
				SimSeconds: p.SimSeconds, Progress: &p, Stats: e.Stats()})
		}
	}
	res, err := runConfig(cfg)
	if err != nil {
		err = fmt.Errorf("engine: job %s (%s): %w", job.Label, fp, err)
		e.emit(EventTrainDone, job.Label, fp, 0, err)
		return nil, false, err
	}
	e.mu.Lock()
	e.stats.Trained++
	e.mu.Unlock()
	persisted := false
	if e.cache != nil {
		if err := e.cache.Store(fp, res); err != nil {
			e.logf("engine: %-32s %s cache store failed: %v", job.Label, fp, err)
		} else {
			persisted = true
		}
	}
	e.emit(EventTrainDone, job.Label, fp, res.SimSeconds, nil)
	return res, persisted, nil
}

// runConfig shields the scheduler from panicking training code (e.g. a
// config whose world exceeds the topology): the panic becomes a job error,
// so long-running callers like the serve subsystem fail one job instead of
// crashing the process.
func runConfig(cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("training panicked: %v", r)
		}
	}()
	return core.Run(cfg)
}

// RunAll executes jobs concurrently (bounded by Parallelism) and returns
// their results in submission order. The first error aborts the return but
// every job is waited for, so partial work never leaks goroutines.
func (e *Engine) RunAll(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			results[i], errs[i] = e.Run(job)
		}(i, job)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SweepCache removes stale and corrupt entries from the on-disk cache (see
// Cache.Sweep); an engine without a sweepable cache sweeps nothing.
func (e *Engine) SweepCache() (SweepResult, error) {
	if s, ok := e.cache.(interface{ Sweep() (SweepResult, error) }); ok {
		return s.Sweep()
	}
	return SweepResult{}, nil
}

// Summary renders the counters as one progress line.
func (s Stats) Summary() string {
	base := fmt.Sprintf("%d jobs submitted: %d trained, %d deduplicated, %d cache hits",
		s.Submitted, s.Trained, s.Deduped, s.CacheHits)
	if s.PeerHits+s.PeerMisses+s.PeerErrors > 0 {
		base += fmt.Sprintf(", %d peer hits (%d misses, %d errors)",
			s.PeerHits, s.PeerMisses, s.PeerErrors)
	}
	return base
}

func (e *Engine) logf(format string, args ...any) {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	fmt.Fprintf(e.log, format+"\n", args...)
}
