package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCacheConcurrentStoreLoadSweep hammers one cache with concurrent
// writers, readers, and a sweeping goroutine (run under -race by the normal
// test invocation). The sharpest interleaving it targets: a stale entry
// exists under some name, a Store renames fresh valid bytes over it, and a
// concurrent Sweep that already judged the name stale must not delete the
// fresh bytes. Every fingerprint stored during the run must load afterward.
func TestCacheConcurrentStoreLoadSweep(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := NewCache(dir)
	res := testResult()

	const writers = 4
	const iters = 25

	// Seed every name the writers will use with a stale (version-skewed)
	// entry, so sweeps constantly have deletions pending on names that
	// concurrent Stores are overwriting with fresh bytes.
	for w := 0; w < writers; w++ {
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("fp%d%d", w, i)
			writeFile(t, filepath.Join(dir, name+".json"), `{"version":0,"result":{}}`)
		}
	}

	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Sweep(); err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fp := fmt.Sprintf("fp%d%d", w, i)
				if err := c.Store(fp, res); err != nil {
					t.Errorf("store %s: %v", fp, err)
					return
				}
				// A just-stored entry may race a sweep that deletes the
				// stale seed — but never the fresh bytes, so a load after
				// Store returns must always hit.
				if _, ok := c.Load(fp); !ok {
					t.Errorf("entry %s unreadable immediately after store", fp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()

	// Every stored entry survived the sweeps.
	for w := 0; w < writers; w++ {
		for i := 0; i < iters; i++ {
			fp := fmt.Sprintf("fp%d%d", w, i)
			if _, ok := c.Load(fp); !ok {
				t.Fatalf("entry %s lost after concurrent sweeps", fp)
			}
		}
	}
	// And a final sweep agrees: all current, nothing to delete.
	sr, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * iters; sr.Kept != want || sr.Swept != 0 {
		t.Fatalf("final sweep %+v, want %d kept / 0 swept", sr, want)
	}
}

// TestCacheStoreConcurrentSameFingerprint: concurrent stores of the same
// fingerprint (two processes finishing the same training would do this via
// rename; in-process the mutex serializes them) leave one valid entry.
func TestCacheStoreConcurrentSameFingerprint(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := NewCache(dir)
	res := testResult()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Store("samefp", res); err != nil {
				t.Errorf("store: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, ok := c.Load("samefp"); !ok {
		t.Fatal("entry unreadable after concurrent same-key stores")
	}
	// No temp files may leak from the concurrent writers.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files left in cache dir, want exactly the entry", len(entries))
	}
}
