package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pactrain/internal/core"
)

// cacheVersion invalidates stored entries whenever the Result schema or the
// fingerprint's coverage changes; bump it on either.
const cacheVersion = 1

// CacheBackend abstracts the engine's result store: anything that can
// resolve a config fingerprint to a recorded Result. The content-addressed
// on-disk Cache is the canonical implementation; the cache-peer protocol
// (peer.go) is layered on top of whatever backend an engine owns, serving
// its entries — and its in-flight trainings — to sibling instances.
// Implementations must be safe for concurrent use.
type CacheBackend interface {
	// Load fetches the Result for a fingerprint; ok is false on any miss.
	Load(fp string) (*core.Result, bool)
	// Store persists a Result under a fingerprint.
	Store(fp string, res *core.Result) error
	// Age reports how many seconds ago the entry was written (0 when
	// unknown) — telemetry only, never a correctness input.
	Age(fp string) float64
}

// Cache persists training Results as one JSON file per config fingerprint.
// A hit returns the Result of a previous process's identical run, which the
// experiments then re-cost under whatever bandwidths they need — the same
// train-once/re-cost economy the harness applies within a process, extended
// across processes.
//
// Entries are written atomically (temp file + rename), so a cache directory
// shared by concurrent processes serves at worst a miss, never a torn read.
// The in-process mutex serializes Store against Sweep: without it a sweep
// scanning a stale entry could delete the fresh bytes a concurrent Store
// renamed into place between the sweep's read and its remove.
type Cache struct {
	mu  sync.Mutex
	dir string
}

// Cache is the canonical CacheBackend.
var _ CacheBackend = (*Cache)(nil)

// cacheEntry is the on-disk envelope.
type cacheEntry struct {
	Version int          `json:"version"`
	Result  *core.Result `json:"result"`
}

// NewCache returns a cache rooted at dir; the directory is created lazily on
// first store.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// entryCurrent reports whether a stored Result carries everything current
// consumers need. Recorded logs from before the per-rank timeline refactor
// lack the bucket geometry (CommLog.BucketElems) the timeline re-coster
// requires (DESIGN.md §9) — their fingerprints still match, but serving
// them would panic a straggler-grid or overlap re-cost downstream. Such
// entries are treated as misses (and swept), so they retrain once and
// rewrite with the full schema; results recorded without a comm log stay
// valid.
func entryCurrent(res *core.Result) bool {
	return res.CommLog == nil || len(res.CommLog.BucketElems) > 0
}

// encodeEntry marshals a Result into the on-disk (and on-wire, peer.go)
// envelope. Wall time is a property of the recording process, so it is
// zeroed: an entry must read back the same whether it was written by this
// process, another process, or served over the peer protocol.
func encodeEntry(res *core.Result) ([]byte, error) {
	cp := *res
	cp.WallSeconds = 0
	return json.Marshal(cacheEntry{Version: cacheVersion, Result: &cp})
}

// decodeEntry unmarshals an envelope; ok is false on corrupt bytes, version
// skew, or an entry missing data the current schema records.
func decodeEntry(raw []byte) (*core.Result, bool) {
	var entry cacheEntry
	if err := json.Unmarshal(raw, &entry); err != nil || entry.Version != cacheVersion ||
		entry.Result == nil || !entryCurrent(entry.Result) {
		return nil, false
	}
	entry.Result.WallSeconds = 0
	return entry.Result, true
}

// Load fetches the Result for a fingerprint; ok is false on miss, version
// skew, a corrupt entry, or an entry missing data the current schema
// records (all treated as misses).
func (c *Cache) Load(fp string) (*core.Result, bool) {
	raw, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, false
	}
	return decodeEntry(raw)
}

// Age returns how many seconds ago the entry for a fingerprint was
// written, or 0 when the entry (or its mtime) is unavailable — telemetry
// for the cache-hit-age histogram, never a correctness input.
func (c *Cache) Age(fp string) float64 {
	info, err := os.Stat(c.path(fp))
	if err != nil {
		return 0
	}
	if age := time.Since(info.ModTime()).Seconds(); age > 0 {
		return age
	}
	return 0
}

// Store persists a Result under a fingerprint.
func (c *Cache) Store(fp string, res *core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	raw, err := encodeEntry(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, fp+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, c.path(fp))
}

// SweepResult counts what a cache sweep examined and removed.
type SweepResult struct {
	// Scanned is the number of entries and temp files examined.
	Scanned int `json:"scanned"`
	// Swept is the number of stale/corrupt entries and orphaned temp files
	// deleted.
	Swept int `json:"swept"`
	// Kept is the number of valid current-version entries left in place.
	Kept int `json:"kept"`
}

// String renders the sweep outcome as one log line.
func (s SweepResult) String() string {
	return fmt.Sprintf("swept %d of %d cache entries (%d kept)", s.Swept, s.Scanned, s.Kept)
}

// sweepTmpGrace is how old a temp file must be before a sweep treats it as
// orphaned. A temp file younger than this may belong to a live writer — in
// another process, or (pre-mutex) this one — and deleting it would fail that
// writer's rename, losing a freshly trained Result from the cache.
const sweepTmpGrace = 10 * time.Minute

// Sweep deletes entries that can never hit again — version skew from an
// older cacheVersion, corrupt or truncated JSON, and recorded logs missing
// the current schema's bucket geometry (entryCurrent) — plus temp files
// orphaned by a crashed writer (older than sweepTmpGrace; younger ones may
// have a live writer behind them). Without it stale entries accumulate
// forever, since Load treats them as silent misses. A missing cache
// directory sweeps nothing. The cache mutex is held throughout, so an
// in-process Store can never interleave with the scan.
func (c *Cache) Sweep() (SweepResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sr SweepResult
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return sr, nil
		}
		return sr, err
	}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(c.dir, name)
		if strings.Contains(name, ".tmp-") {
			sr.Scanned++
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) < sweepTmpGrace {
				// A live writer (another process) may still hold this temp
				// file; leave it for a later sweep.
				sr.Kept++
				continue
			}
			if err := os.Remove(path); err != nil {
				return sr, err
			}
			sr.Swept++
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		sr.Scanned++
		raw, readErr := os.ReadFile(path)
		var entry cacheEntry
		if readErr == nil && json.Unmarshal(raw, &entry) == nil &&
			entry.Version == cacheVersion && entry.Result != nil && entryCurrent(entry.Result) {
			sr.Kept++
			continue
		}
		if err := os.Remove(path); err != nil {
			return sr, err
		}
		sr.Swept++
	}
	return sr, nil
}
