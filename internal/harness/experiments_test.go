package harness

import "testing"

func TestExperimentRegistry(t *testing.T) {
	t.Parallel()
	defs := Experiments()
	if len(defs) == 0 {
		t.Fatal("empty experiment registry")
	}
	ids := ExperimentIDs()
	if len(ids) != len(defs) {
		t.Fatalf("%d ids for %d definitions", len(ids), len(defs))
	}
	seen := make(map[string]bool)
	for i, def := range defs {
		if def.ID == "" || def.Title == "" || def.Run == nil {
			t.Fatalf("incomplete definition %+v", def)
		}
		if seen[def.ID] {
			t.Fatalf("duplicate experiment id %q", def.ID)
		}
		seen[def.ID] = true
		if ids[i] != def.ID {
			t.Fatalf("ids[%d] = %q, want %q", i, ids[i], def.ID)
		}
		got, ok := ExperimentByID(def.ID)
		if !ok || got.ID != def.ID {
			t.Fatalf("lookup %q failed", def.ID)
		}
	}
	if _, ok := ExperimentByID("no-such-experiment"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestOptionsNormalizedAppliesDefaults(t *testing.T) {
	t.Parallel()
	got := Options{Quick: true}.Normalized()
	if got.World != 8 || got.Samples != 320 || got.Seed != 1 {
		t.Fatalf("normalized quick options %+v", got)
	}
	full := Options{}.Normalized()
	if full.Samples != 768 {
		t.Fatalf("normalized full options %+v", full)
	}
	// Normalization is what the serve subsystem coalesces by: an explicit
	// default and an omitted field must produce the same key fields.
	explicit := Options{Quick: true, World: 8, Samples: 320, Seed: 1}.Normalized()
	if explicit.Quick != got.Quick || explicit.World != got.World ||
		explicit.Samples != got.Samples || explicit.Seed != got.Seed {
		t.Fatalf("explicit defaults normalize differently: %+v vs %+v", explicit, got)
	}
}
