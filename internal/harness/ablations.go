package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/core"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// AblationMTRow is one mask-tracker window measurement.
type AblationMTRow struct {
	Window         int
	StableFraction float64
	TTASeconds     float64
	Reached        bool
	FinalAcc       float64
}

// AblationMTResult sweeps the Mask Tracker stability window (§III-C leaves
// it unspecified; DESIGN.md calls out the choice).
type AblationMTResult struct {
	Rows  []AblationMTRow
	Model string
}

// RunAblationMT measures how the stability window trades compact-path
// coverage against robustness.
func RunAblationMT(opt Options) (*AblationMTResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &AblationMTResult{Model: w.Model}
	opt.logf("Ablation: Mask Tracker stability window on %s", w.Model)
	windows := []int{1, 2, 4, 8}
	var jobs []engine.Job
	for _, window := range windows {
		cfg := baseConfig(w, "pactrain", opt)
		cfg.StableWindow = window
		jobs = append(jobs, engine.Job{
			Label:  fmt.Sprintf("ablation-mt %s/w%d", w.Model, window),
			Config: cfg,
		})
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("ablation-mt: %w", err)
	}
	opt.traceRuns(jobs, results)
	for wi, window := range windows {
		res := results[wi]
		tta, reached := res.Curve.TTA(w.TargetAcc)
		out.Rows = append(out.Rows, AblationMTRow{
			Window: window, StableFraction: res.StableFraction,
			TTASeconds: tta, Reached: reached, FinalAcc: res.FinalAcc,
		})
		opt.logf("  window %d: stable fraction %.3f, final acc %.3f", window, res.StableFraction, res.FinalAcc)
	}
	return out, nil
}

// Render prints the sweep.
func (r *AblationMTResult) Render() string {
	tb := metrics.NewTable(fmt.Sprintf("Ablation — Mask Tracker stability window (%s)", r.Model),
		"window", "compact-path fraction", "TTA", "final acc")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%d", row.Window), fmt.Sprintf("%.3f", row.StableFraction),
			metrics.FormatSeconds(row.TTASeconds), fmt.Sprintf("%.3f", row.FinalAcc))
	}
	return tb.String()
}

// AblationTernaryRow compares PacTrain with and without the ternary stage
// at one bandwidth.
type AblationTernaryRow struct {
	BandwidthBps float64
	PlainTTA     float64
	TernaryTTA   float64
	PlainAcc     float64
	TernaryAcc   float64
}

// AblationTernaryResult isolates the contribution of §III-D's ternary
// quantization on top of mask-compact communication.
type AblationTernaryResult struct {
	Rows  []AblationTernaryRow
	Model string
}

// RunAblationTernary trains pactrain and pactrain-ternary once each and
// re-costs both across the Fig. 3 bandwidths.
func RunAblationTernary(opt Options) (*AblationTernaryResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &AblationTernaryResult{Model: w.Model}
	opt.logf("Ablation: ternary stage on %s", w.Model)

	jobs := []engine.Job{
		trainJob("ablation-tern", w, "pactrain", opt),
		trainJob("ablation-tern", w, "pactrain-ternary", opt),
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("ablation-tern: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("ablation-tern", map[string]any{"bandwidths": len(Fig3Bandwidths())})
	plainRes, plainCfg := results[0], jobs[0].Config
	ternRes, ternCfg := results[1], jobs[1].Config
	for _, bw := range Fig3Bandwidths() {
		pt, _ := recostTTA(plainRes, &plainCfg, bw, w.TargetAcc)
		tt, _ := recostTTA(ternRes, &ternCfg, bw, w.TargetAcc)
		out.Rows = append(out.Rows, AblationTernaryRow{
			BandwidthBps: bw, PlainTTA: pt, TernaryTTA: tt,
			PlainAcc: plainRes.FinalAcc, TernaryAcc: ternRes.FinalAcc,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationTernaryResult) Render() string {
	tb := metrics.NewTable(fmt.Sprintf("Ablation — pruning-only vs pruning+ternary (%s)", r.Model),
		"bandwidth", "PacTrain TTA", "PacTrain+ternary TTA", "ternary gain")
	for _, row := range r.Rows {
		tb.AddRow(bandwidthLabel(row.BandwidthBps),
			metrics.FormatSeconds(row.PlainTTA), metrics.FormatSeconds(row.TernaryTTA),
			fmt.Sprintf("%.2f×", row.PlainTTA/row.TernaryTTA))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	if len(r.Rows) > 0 {
		fmt.Fprintf(&b, "final acc: plain %.3f, ternary %.3f\n", r.Rows[0].PlainAcc, r.Rows[0].TernaryAcc)
	}
	return b.String()
}

// AblationTopoRow compares topologies at equal bottleneck bandwidth.
type AblationTopoRow struct {
	Topology string
	Scheme   string
	TTA      float64
	Reached  bool
}

// AblationTopoResult isolates the effect of Fig. 4's chained-switch
// bottleneck versus a flat single-switch network of the same link speed.
type AblationTopoResult struct {
	Rows []AblationTopoRow
}

// RunAblationTopo re-costs recorded all-reduce and PacTrain runs on the
// Fig. 4 topology versus a flat switch at 500 Mbps.
func RunAblationTopo(opt Options) (*AblationTopoResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &AblationTopoResult{}
	opt.logf("Ablation: topology sensitivity on %s", w.Model)
	bw := 500 * netsim.Mbps
	schemes := []string{"all-reduce", "pactrain-ternary"}
	var jobs []engine.Job
	for _, scheme := range schemes {
		jobs = append(jobs, trainJob("ablation-topo", w, scheme, opt))
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("ablation-topo: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("ablation-topo", map[string]any{"topologies": []any{"fig4", "flat"}})
	for si, scheme := range schemes {
		res, cfg := results[si], jobs[si].Config
		// Fig. 4 at bw bottleneck.
		fig4TTA, reached4 := recostTTA(res, &cfg, bw, w.TargetAcc)
		out.Rows = append(out.Rows, AblationTopoRow{Topology: "fig4", Scheme: scheme, TTA: fig4TTA, Reached: reached4})
		// Flat switch: every link at bw.
		flatTTA, reachedF := recostOnTopology(res, &cfg, netsim.FlatTopology(cfg.World, bw, 1e-4), w.TargetAcc)
		out.Rows = append(out.Rows, AblationTopoRow{Topology: "flat", Scheme: scheme, TTA: flatTTA, Reached: reachedF})
	}
	return out, nil
}

// recostOnTopology generalizes recostTTA to an arbitrary topology. It
// refuses fabric-sensitive configs (multi-candidate adaptive runs), whose
// logs only replay exactly on the fabric they were recorded under.
func recostOnTopology(res *core.Result, cfg *core.Config, topo *netsim.Topology, target float64) (float64, bool) {
	rejectFabricSensitive(cfg)
	cum := recostCum(res, cfg, netsim.NewFabric(topo))
	return ttaFromCum(res, cum, target)
}

// Render prints the grid.
func (r *AblationTopoResult) Render() string {
	tb := metrics.NewTable("Ablation — Fig. 4 chained switches vs flat switch (equal link speed)",
		"topology", "scheme", "TTA", "reached")
	for _, row := range r.Rows {
		tb.AddRow(row.Topology, DisplayName(row.Scheme), metrics.FormatSeconds(row.TTA),
			fmt.Sprintf("%v", row.Reached))
	}
	return tb.String()
}
