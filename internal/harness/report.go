package harness

import (
	"encoding/json"
	"fmt"
)

// JSONReport is the machine-readable envelope around one experiment result,
// emitted alongside the human-readable Render() text. Report is the
// experiment's full result struct (Fig3Result, Table1Result, ...), so every
// measured number in the text tables is available to external tooling
// without re-parsing.
type JSONReport struct {
	// Experiment is the experiment id ("table1", "fig3", ...).
	Experiment string `json:"experiment"`
	// Seed is the seed the grid ran under.
	Seed uint64 `json:"seed"`
	// Quick records whether the fast preset was used.
	Quick bool `json:"quick"`
	// Collective records a non-default collective algorithm; omitted for
	// the ring default so historical report bytes are unchanged.
	Collective string `json:"collective,omitempty"`
	// Overlap records a non-default backward-overlap model; omitted for the
	// serialized default so historical report bytes are unchanged.
	Overlap string `json:"overlap,omitempty"`
	// Report is the experiment's result struct.
	Report any `json:"report"`
}

// ReportJSON serializes an experiment result as an indented JSON document.
func ReportJSON(id string, opt Options, report any) ([]byte, error) {
	opt.defaults()
	raw, err := json.MarshalIndent(JSONReport{
		Experiment: id,
		Seed:       opt.Seed,
		Quick:      opt.Quick,
		Collective: opt.Collective,
		Overlap:    opt.Overlap,
		Report:     report,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("harness: marshal %s report: %w", id, err)
	}
	return raw, nil
}
