package harness

import (
	"math"

	"pactrain/internal/adaptive"
	"pactrain/internal/audit"
	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/ddp"
	"pactrain/internal/harness/engine"
	"pactrain/internal/netsim"
	"pactrain/internal/obs"
	"pactrain/internal/simclock"
)

// This file converts recorded training results into obs spans. Traces are
// *derived* — the replay below walks a Result's CommLog with exactly the
// per-rank arithmetic of replayTimeline — rather than collected from live
// trainer callbacks, for the same reason re-costing replays logs instead of
// re-running training: the recorded log is the deterministic ground truth,
// so the exported trace is byte-identical across runs, parallelism budgets,
// and cache states, and tracing costs nothing when disabled (DESIGN.md §11).

// TraceRun replays one recorded run into the tracer's span model on the
// fabric the run's config describes (Topology defaulting to the Fig. 4
// fabric at the config's bottleneck, bandwidth traces applied) — the same
// fabric the trainer priced it on, which is the only fabric an adaptive
// log replays exactly (DESIGN.md §8). A nil tracer, a nil result, or an
// unrecorded run (Config.RecordComm false) is a no-op.
func TraceRun(tr *obs.Tracer, label string, cfg core.Config, res *core.Result) {
	if tr == nil || res == nil || res.CommLog == nil {
		return
	}
	if cfg.Topology == nil {
		bw := cfg.BottleneckBps
		if bw <= 0 {
			bw = 1 * netsim.Gbps
		}
		cfg.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bw})
	}
	fabric := netsim.NewFabric(cfg.Topology)
	for _, t := range cfg.Traces {
		fabric.SetTrace(t)
	}
	traceRunOn(tr, label, cfg.Fingerprint(), cfg, res, fabric)
}

// traceRunOn is TraceRun with the replay fabric and dedup key explicit: the
// experiment re-cost paths trace their replays on the fabric the cell
// prices (which the config does not name), keyed by label instead of
// fingerprint so a cell replay never collides with the base run's trace.
func traceRunOn(tr *obs.Tracer, label, dedupKey string, cfg core.Config, res *core.Result, fabric *netsim.Fabric) {
	if tr == nil || res == nil || res.CommLog == nil {
		return
	}
	if cfg.Compute.DeviceFLOPS == 0 {
		cfg.Compute = ddp.A40ComputeModel(cfg.Profile.FLOPsPerSample)
	}
	run := tr.StartRun(label, dedupKey, cfg.World, res.CommLog.BucketElems)
	if run == nil {
		return // already traced (same fingerprint under another experiment)
	}
	traceReplay(run, collective.MustAlgorithm(cfg.Collective), res, &cfg, fabric)
}

// traceRuns traces every job of a completed grid, deduplicated by config
// fingerprint so a run shared between experiments (or repeated within one)
// is traced once, under its first label — deterministic because
// experiments run their grids in submission order.
func (o *Options) traceRuns(jobs []engine.Job, results []*core.Result) {
	if o.Tracer == nil {
		return
	}
	for i, job := range jobs {
		if i < len(results) {
			TraceRun(o.Tracer, job.Label, job.Config, results[i])
		}
	}
}

// traceRecost drops a harness-level instant marking a re-costing pass (the
// cells that reuse a recorded run instead of training). Full span replays
// of every cell would dwarf the training traces, so cells are marked and
// only selected ones (see RunStragglers) get replayed in full.
func (o *Options) traceRecost(experiment string, args map[string]any) {
	if o.Tracer == nil {
		return
	}
	full := map[string]any{"experiment": experiment}
	for k, v := range args {
		full[k] = v
	}
	o.Tracer.AddMark("recost", full)
}

// traceReplay walks a recorded log with the per-rank arithmetic of
// replayTimeline — same schedules, same barrier, same in-order stream, same
// coster (live pricing, no memo) — and emits spans instead of accumulating
// a clock. For homogeneous configs this is bit-identical to the scalar fast
// path (a max over equal floats is that float; fwd*1.0 == fwd), so span
// edges equal the re-costed clock exactly (TestTraceMatchesRecost).
func traceReplay(run *obs.RunTrace, alg collective.Algorithm, res *core.Result, cfg *core.Config, fabric *netsim.Fabric) {
	log := res.CommLog
	hosts := fabric.Topo.Hosts()[:cfg.World]
	coster := newOpCoster(alg, fabric, hosts, false)
	var prefix []float64
	if cfg.Overlap == ddp.OverlapBackward && len(log.BucketElems) > 0 {
		prefix = simclock.PrefixShares(log.BucketElems)
	}
	fwd := cfg.Compute.ForwardSeconds(cfg.BatchSize)
	bwd := cfg.Compute.BackwardSeconds(cfg.BatchSize)
	quoter := newDecisionQuoter(cfg, fabric, hosts, log.BucketElems)

	tl := simclock.NewTimeline(cfg.World)
	scheds := make([]simclock.IterSchedule, cfg.World)
	comp := simclock.NewIterComposer(scheds)
	for k, ops := range log.Iters {
		for r := range scheds {
			scale := cfg.RankCompute.Scale(r, k)
			scheds[r] = simclock.NewIterSchedule(tl.Clock(r), fwd*scale, bwd*scale, prefix)
			run.Compute(r, k, tl.Clock(r), fwd*scale, bwd*scale)
		}
		comp.Reset()
		commEnd := math.Inf(-1)
		for _, op := range ops {
			launch := comp.Barrier(op.Bucket)
			if commEnd > launch {
				launch = commEnd
			}
			// The stream-free floor for wait spans is the previous op's end;
			// the first op of an iteration sees an idle (-inf) stream.
			streamFree := commEnd
			end := launch + coster.cost(op, launch)
			name, args := opSpan(op)
			format, quoteArgs := quoter.decide(op, launch)
			for r := range scheds {
				from, dur := scheds[r].WaitInterval(op.Bucket, streamFree, launch)
				if dur > 0 {
					run.BarrierWait(r, op.Bucket, k, from, launch)
				}
				run.Collective(r, op.Bucket, k, name, launch, end, args)
				if r == 0 {
					// The candidate quotes are replica-identical; carrying
					// them on rank 0 only keeps the trace compact.
					run.Decision(r, op.Bucket, k, launch, format, quoteArgs)
				} else {
					run.Decision(r, op.Bucket, k, launch, format, nil)
				}
			}
			commEnd = end
		}
		comp.FinishInto(tl, commEnd)
	}
}

// opSpan names a recorded op and assembles its collective-span args.
func opSpan(op core.CommOp) (string, map[string]any) {
	args := map[string]any{"wire": op.Wire.Name}
	name := "collective"
	switch op.Kind {
	case core.OpAllReduce:
		name = "all-reduce"
		args["elems"] = op.Elements
	case core.OpAllGather:
		name = "all-gather"
		total := 0
		for _, s := range op.Sizes {
			total += s
		}
		args["elems"] = total
	case core.OpPS:
		name = "ps-aggregate"
		args["elems"] = op.Elements
	case core.OpBlockSparse:
		name = "block-sparse"
		args["elems"] = op.Union * op.BlockSz
	case core.OpBitmapBroadcast:
		name = "bitmap-broadcast"
		args["elems"] = op.Elements
	}
	return name, args
}

// decisionQuoter reprices a recorded adaptive round's candidate set at the
// replayed launch time on a pricing clone of the replay fabric — on the
// recorded fabric that reproduces the quote vector the controller actually
// weighed (the formats' relative costs, adaptive.PriceQuotes). For static
// schemes the wire format itself is the (frozen) decision.
type decisionQuoter struct {
	algo        collective.Algorithm
	pricing     *netsim.Fabric
	hosts       []netsim.NodeID
	candidates  []string
	bucketElems []int
	// nnzs carries each bucket's most recent retained-coordinate count
	// forward (audit.NNZTracker): dense rounds do not encode the mask's NNZ
	// on the wire, so a dense decision is quoted with the last compact
	// round's NNZ (or not at all, before the first one).
	nnzs *audit.NNZTracker
}

func newDecisionQuoter(cfg *core.Config, fabric *netsim.Fabric, hosts []netsim.NodeID, bucketElems []int) *decisionQuoter {
	cands, err := adaptive.CanonicalCandidates(cfg.AdaptCandidates)
	if err != nil {
		cands = adaptive.Formats()
	}
	return &decisionQuoter{
		algo:        collective.MustAlgorithm(cfg.Collective),
		pricing:     fabric.PricingClone(),
		hosts:       hosts,
		candidates:  cands,
		bucketElems: bucketElems,
		nnzs:        audit.NewNNZTracker(),
	}
}

// decide returns the decision instant's format and, for adaptive rounds
// with a known mask size, the repriced candidate quotes.
func (q *decisionQuoter) decide(op core.CommOp, launch float64) (string, map[string]any) {
	if op.Decision == "" {
		return op.Wire.Name, nil
	}
	nnz, ok := q.nnzs.Observe(op)
	n := 0
	if op.Bucket < len(q.bucketElems) {
		n = q.bucketElems[op.Bucket]
	}
	if !ok || n == 0 {
		return op.Decision, nil
	}
	quotes := adaptive.PriceQuotes(q.algo, q.pricing, q.hosts, audit.WireScaleFromOp(op),
		q.candidates, n, nnz, launch)
	m := make(map[string]any, len(quotes))
	for _, quote := range quotes {
		m[quote.Format] = quote.CostSeconds
	}
	return op.Decision, map[string]any{"quotes": m, "nnz": nnz}
}
