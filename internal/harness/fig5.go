package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// Fig5Series is one accuracy-vs-time curve of Fig. 5.
type Fig5Series struct {
	Scheme     string
	Curve      metrics.Curve
	TTASeconds float64
	Reached    bool
}

// Fig5Result reproduces Fig. 5: ResNet152, 1 Gbps, target accuracy, with
// the speedup ratios the paper quotes (5.64× vs all-reduce, 3.28× vs fp16).
type Fig5Result struct {
	Model     string
	TargetAcc float64
	Series    []Fig5Series

	SpeedupVsAllReduce float64
	SpeedupVsFP16      float64
}

// RunFig5 regenerates Fig. 5. The paper picks ResNet152 on CIFAR-10 at
// 1 Gbps "due to its representative slow convergence"; quick mode uses the
// MLP twin. The accuracy target is the calibrated ResNet152 workload
// target (the paper's 84% threshold re-based to the synthetic task, see
// DESIGN.md §3).
func RunFig5(opt Options) (*Fig5Result, error) {
	opt.defaults()
	eng := opt.engine()
	w := PaperWorkloads()[2] // ResNet152
	if opt.Quick {
		w = QuickWorkloads()[0]
	}
	schemes := []string{"pactrain-ternary", "topk-0.01", "all-reduce", "fp16", "topk-0.1"}
	out := &Fig5Result{Model: w.Model, TargetAcc: w.TargetAcc}
	opt.logf("Fig. 5: time-to-accuracy curves, %s @ 1 Gbps, target %.0f%%", w.Model, w.TargetAcc*100)

	var jobs []engine.Job
	for _, scheme := range schemes {
		job := trainJob("fig5", w, scheme, opt)
		job.Config.BottleneckBps = 1 * netsim.Gbps
		job.Config.Topology = nil // rebuilt by validate at the 1 Gbps bottleneck
		jobs = append(jobs, job)
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	opt.traceRuns(jobs, results)

	ttas := map[string]float64{}
	for si, scheme := range schemes {
		res := results[si]
		tta, reached := res.Curve.TTA(w.TargetAcc)
		ttas[scheme] = tta
		out.Series = append(out.Series, Fig5Series{
			Scheme: scheme, Curve: res.Curve, TTASeconds: tta, Reached: reached,
		})
		opt.logf("  %s / %s: best acc %.3f, TTA %s (reached=%v)",
			w.Model, DisplayName(scheme), res.BestAcc, metrics.FormatSeconds(tta), reached)
	}
	out.SpeedupVsAllReduce = metrics.Speedup(ttas["pactrain-ternary"], ttas["all-reduce"])
	out.SpeedupVsFP16 = metrics.Speedup(ttas["pactrain-ternary"], ttas["fp16"])
	return out, nil
}

// Render prints the per-scheme TTA summary and each curve.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	tb := metrics.NewTable(
		fmt.Sprintf("Fig. 5 — Time-to-accuracy, %s @ 1 Gbps (target %.0f%%)", r.Model, r.TargetAcc*100),
		"scheme", "TTA", "reached", "final acc")
	for _, s := range r.Series {
		tb.AddRow(DisplayName(s.Scheme), metrics.FormatSeconds(s.TTASeconds),
			fmt.Sprintf("%v", s.Reached), fmt.Sprintf("%.3f", s.Curve.FinalAcc()))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nPacTrain reaches the target %.2f× faster than all-reduce and %.2f× faster than fp16\n",
		r.SpeedupVsAllReduce, r.SpeedupVsFP16)
	fmt.Fprintf(&b, "(paper, real CIFAR-10 testbed: 5.64× and 3.28×)\n\n")
	for _, s := range r.Series {
		b.WriteString(tableFromCurve(fmt.Sprintf("curve: %s", DisplayName(s.Scheme)), &s.Curve).String())
		b.WriteString("\n")
	}
	return b.String()
}
