package harness

import (
	"math"
	"testing"

	"pactrain/internal/core"
	"pactrain/internal/netsim"
)

// TestRecostReproducesTraining is the exactness contract the whole
// train-once/re-cost economy rests on: rebuilding a recorded run's clock on
// a fabric identical to the training fabric must reproduce the recorded
// SimSeconds and every curve point's SimTime bit-for-bit, because training
// prices collectives with the same cost functions at the same absolute
// times.
func TestRecostReproducesTraining(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	for _, scheme := range []string{"all-reduce", "pactrain-ternary", "topk-0.1", "omnireduce"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			cfg := baseConfig(w, scheme, opt)
			res, err := testEngine.Run(trainJob("recost-test", w, scheme, opt))
			if err != nil {
				t.Fatal(err)
			}
			topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
			cum := recostCum(res, &cfg, netsim.NewFabric(topo))
			if got := cum[len(cum)-1]; got != res.SimSeconds {
				t.Fatalf("re-costed end time %v != recorded SimSeconds %v (Δ %g)",
					got, res.SimSeconds, got-res.SimSeconds)
			}
			for _, p := range res.Curve.Points {
				if cum[p.Iter] != p.SimTime {
					t.Fatalf("re-costed time at iter %d = %v, recorded %v",
						p.Iter, cum[p.Iter], p.SimTime)
				}
			}
			// And the TTA read off the rebuilt clock matches the recorded one.
			wantTTA, wantReached := res.Curve.TTA(cfg.TargetAcc)
			gotTTA, gotReached := ttaFromCum(res, cum, cfg.TargetAcc)
			if gotTTA != wantTTA || gotReached != wantReached {
				t.Fatalf("re-costed TTA (%v,%v) != recorded (%v,%v)",
					gotTTA, gotReached, wantTTA, wantReached)
			}
		})
	}
}

// TestRecostExactForOddSampleCounts guards the full-batch invariant: a
// sample count that does not divide into World×BatchSize chunks is padded
// by baseConfig, because a short final batch would be priced by its actual
// size during training but at full-batch compute by recostCum.
func TestRecostExactForOddSampleCounts(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.Samples = 100 // 100/(4 workers × batch 8) does not divide; padded to 128
	opt.defaults()
	w := QuickWorkloads()[0]
	cfg := baseConfig(w, "fp16", opt)
	if shard := cfg.Data.Samples / cfg.World; shard%cfg.BatchSize != 0 {
		t.Fatalf("shard size %d not a multiple of batch %d", shard, cfg.BatchSize)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
	cum := recostCum(res, &cfg, netsim.NewFabric(topo))
	if got := cum[len(cum)-1]; got != res.SimSeconds {
		t.Fatalf("re-costed end time %v != recorded SimSeconds %v (Δ %g)",
			got, res.SimSeconds, got-res.SimSeconds)
	}
}

// TestRecostReproducesTrainingWithTraces extends the exactness contract to
// traced fabrics: a run trained under oscillating bottleneck bandwidth is
// reproduced exactly by re-costing the equivalent untraced run on a traced
// fabric, which is what lets RunAblationVarBW skip three trainings.
func TestRecostReproducesTrainingWithTraces(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	cfg := baseConfig(w, "pactrain-ternary", opt)
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
	var traces []*netsim.BandwidthTrace
	for _, li := range topo.InterSwitchLinks() {
		traces = append(traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: []netsim.TraceSegment{
			{UntilSec: 2, Scale: 1},
			{UntilSec: 4, Scale: 0.1},
			{UntilSec: math.Inf(1), Scale: 1},
		}})
	}
	tracedCfg := cfg
	tracedCfg.Topology = topo
	tracedCfg.Traces = traces
	traced, err := core.Run(tracedCfg)
	if err != nil {
		t.Fatal(err)
	}

	untraced, err := testEngine.Run(trainJob("recost-test", w, "pactrain-ternary", opt))
	if err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric(netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps}))
	for _, tr := range traces {
		fabric.SetTrace(tr)
	}
	cum := recostCum(untraced, &cfg, fabric)
	if got := cum[len(cum)-1]; got != traced.SimSeconds {
		t.Fatalf("re-costed end time %v != traced SimSeconds %v (Δ %g)",
			got, traced.SimSeconds, got-traced.SimSeconds)
	}
	for _, p := range traced.Curve.Points {
		if cum[p.Iter] != p.SimTime {
			t.Fatalf("re-costed time at iter %d = %v, traced run recorded %v",
				p.Iter, cum[p.Iter], p.SimTime)
		}
	}
}
