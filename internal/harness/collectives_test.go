package harness

import (
	"math"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/netsim"
)

func TestRunCollectivesQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunCollectives(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(res.Algorithms) * len(res.Schemes) * len(res.Bandwidths)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	for _, bw := range res.Bandwidths {
		for _, scheme := range res.Schemes {
			c, ok := res.Cell("ring", scheme, bw)
			if !ok || c.SpeedupVsRing != 1.0 {
				t.Fatalf("ring baseline for %s@%v = %+v, want speedup 1.0", scheme, bw, c)
			}
		}
	}
	// The acceptance invariant: hierarchical all-reduce beats the flat ring
	// on the bottlenecked two-rack fabric.
	hc, ok := res.Cell("hierarchical", "all-reduce", 100*netsim.Mbps)
	if !ok {
		t.Fatal("missing hierarchical all-reduce cell")
	}
	if hc.SpeedupVsRing <= 1.0 {
		t.Fatalf("hierarchical all-reduce speedup %v, want > 1.0 on bottlenecked two-rack fabric", hc.SpeedupVsRing)
	}
	if res.HierarchicalSpeedup("all-reduce") < hc.SpeedupVsRing {
		t.Fatal("HierarchicalSpeedup missed the 100 Mbps cell")
	}
	if r := res.Render(); len(r) == 0 {
		t.Fatal("empty render")
	}
}

// TestTrainingUnderEveryAlgorithm trains one quick run per algorithm and
// checks the two-plane contract: the convergence plane (accuracy curve,
// weight checksums) is algorithm-independent, while the cost plane (the
// simulated clock) moves with the algorithm.
func TestTrainingUnderEveryAlgorithm(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	sims := map[string]float64{}
	var refAcc float64
	var refChecksum float64
	for _, algo := range collective.AlgorithmNames() {
		cfg := baseConfig(w, "all-reduce", opt)
		cfg.Collective = algo
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Collective != algo {
			t.Fatalf("result records collective %q, want %q", res.Collective, algo)
		}
		sims[algo] = res.SimSeconds
		if algo == "ring" {
			refAcc = res.FinalAcc
			refChecksum = res.WeightChecksums[0]
			continue
		}
		if res.FinalAcc != refAcc {
			t.Fatalf("%s: final acc %v differs from ring %v — the data plane moved", algo, res.FinalAcc, refAcc)
		}
		if res.WeightChecksums[0] != refChecksum {
			t.Fatalf("%s: weight checksum differs from ring — the data plane moved", algo)
		}
	}
	if sims["tree"] == sims["ring"] || sims["hierarchical"] == sims["ring"] {
		t.Fatalf("algorithms did not move the clock on Fig. 4: %v", sims)
	}
}

// TestRecostExactPerAlgorithm extends the bit-exact re-costing contract to
// every registered algorithm: a run trained under algorithm X on fabric F
// is reproduced exactly by re-costing any equivalent recorded run under X
// on F — the recorded operations are algorithm-independent.
func TestRecostExactPerAlgorithm(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	for _, algo := range []string{"tree", "hierarchical"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := baseConfig(w, "pactrain-ternary", opt)
			cfg.Collective = algo
			trained, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Re-cost the ring-trained twin (shared via the engine) under
			// this algorithm on an identical fabric.
			ringRun, err := testEngine.Run(trainJob("recost-algo-test", w, "pactrain-ternary", opt))
			if err != nil {
				t.Fatal(err)
			}
			topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
			cum := recostCumWith(collective.MustAlgorithm(algo), ringRun, &cfg, netsim.NewFabric(topo))
			if got := cum[len(cum)-1]; got != trained.SimSeconds {
				t.Fatalf("re-costed end time %v != trained SimSeconds %v (Δ %g)",
					got, trained.SimSeconds, got-trained.SimSeconds)
			}
			for _, p := range trained.Curve.Points {
				if cum[p.Iter] != p.SimTime {
					t.Fatalf("re-costed time at iter %d = %v, trained run recorded %v",
						p.Iter, cum[p.Iter], p.SimTime)
				}
			}
		})
	}
}

// TestRecostExactPerAlgorithmWithTraces is the variable-bandwidth version
// of the exactness contract: training under an oscillating bottleneck with
// a non-ring algorithm is reproduced bit-exactly by re-costing the untraced
// recorded run on a traced fabric — the path RunAblationVarBW rides.
func TestRecostExactPerAlgorithmWithTraces(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	for _, algo := range []string{"tree", "hierarchical"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := baseConfig(w, "fp16", opt)
			cfg.Collective = algo
			topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
			var traces []*netsim.BandwidthTrace
			for _, li := range topo.InterSwitchLinks() {
				traces = append(traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: []netsim.TraceSegment{
					{UntilSec: 1, Scale: 1},
					{UntilSec: 3, Scale: 0.1},
					{UntilSec: math.Inf(1), Scale: 1},
				}})
			}
			tracedCfg := cfg
			tracedCfg.Topology = topo
			tracedCfg.Traces = traces
			traced, err := core.Run(tracedCfg)
			if err != nil {
				t.Fatal(err)
			}

			untracedCfg := cfg
			untraced, err := core.Run(untracedCfg)
			if err != nil {
				t.Fatal(err)
			}
			fabric := netsim.NewFabric(netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps}))
			for _, tr := range traces {
				fabric.SetTrace(tr)
			}
			cum := recostCum(untraced, &untracedCfg, fabric)
			if got := cum[len(cum)-1]; got != traced.SimSeconds {
				t.Fatalf("re-costed end time %v != traced SimSeconds %v (Δ %g)",
					got, traced.SimSeconds, got-traced.SimSeconds)
			}
			for _, p := range traced.Curve.Points {
				if cum[p.Iter] != p.SimTime {
					t.Fatalf("re-costed time at iter %d = %v, traced run recorded %v",
						p.Iter, cum[p.Iter], p.SimTime)
				}
			}
		})
	}
}

// TestOptionsCollectiveThreading checks the config plumbing: the option
// reaches every job config, "ring" normalizes to the empty default, and
// ring/empty share fingerprints while tree splits them.
func TestOptionsCollectiveThreading(t *testing.T) {
	t.Parallel()
	opt := quickOpts()
	opt.Collective = "tree"
	opt.defaults()
	w := QuickWorkloads()[0]
	cfg := baseConfig(w, "all-reduce", opt)
	if cfg.Collective != "tree" {
		t.Fatalf("baseConfig dropped the collective: %q", cfg.Collective)
	}

	ringOpt := quickOpts()
	ringOpt.Collective = "ring"
	if norm := ringOpt.Normalized(); norm.Collective != "" {
		t.Fatalf("Normalized kept %q, want empty (the canonical default)", norm.Collective)
	}

	base := baseConfig(w, "all-reduce", quickOpts().Normalized())
	ringCfg := base
	ringCfg.Collective = "ring"
	if base.Fingerprint() != ringCfg.Fingerprint() {
		t.Fatal("\"\" and \"ring\" split the fingerprint — existing cache keys broken")
	}
	treeCfg := base
	treeCfg.Collective = "tree"
	if base.Fingerprint() == treeCfg.Fingerprint() {
		t.Fatal("tree shares the ring fingerprint — cache would serve a wrong clock")
	}
}
