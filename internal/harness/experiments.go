package harness

// Report is a rendered experiment result; every experiment runner returns
// one alongside its concrete result struct.
type Report interface {
	Render() string
}

// Definition couples an experiment id with the artifact it regenerates and
// its runner. The table returned by Experiments is the single registry
// behind `pactrain-bench -exp`, the pactrain facade, and the serve
// subsystem's POST /v1/experiments — one list to extend when an experiment
// is added, one id vocabulary everywhere.
type Definition struct {
	// ID is the stable identifier ("table1", "fig3", ...).
	ID string
	// Title names the paper artifact the experiment regenerates.
	Title string
	// Run executes the experiment's job grid under the given options.
	Run func(Options) (Report, error)
}

// Experiments lists every runnable experiment in canonical order (the
// order `-exp all` executes them).
func Experiments() []Definition {
	return []Definition{
		{"table1", "Table 1 — method-property matrix",
			func(o Options) (Report, error) { return RunTable1(o) }},
		{"fig3", "Fig. 3 — relative TTA across WAN bandwidths",
			func(o Options) (Report, error) { return RunFig3(o) }},
		{"fig5", "Fig. 5 — accuracy-vs-time curves",
			func(o Options) (Report, error) { return RunFig5(o) }},
		{"fig6", "Fig. 6 — final accuracy vs pruning ratio",
			func(o Options) (Report, error) { return RunFig6(o) }},
		{"ablation-mt", "Mask Tracker stability-window sweep",
			func(o Options) (Report, error) { return RunAblationMT(o) }},
		{"ablation-tern", "pruning-only vs pruning+ternary",
			func(o Options) (Report, error) { return RunAblationTernary(o) }},
		{"ablation-topo", "Fig. 4 chained switches vs flat switch",
			func(o Options) (Report, error) { return RunAblationTopo(o) }},
		{"ablation-varbw", "variable-constrained bottleneck bandwidth",
			func(o Options) (Report, error) { return RunAblationVarBW(o) }},
		{"collectives", "collective-algorithm grid (ring / tree / hierarchical, two-rack fabric)",
			func(o Options) (Report, error) { return RunCollectives(o) }},
		{"adaptive", "online compression controller vs static wire formats (WAN fabrics)",
			func(o Options) (Report, error) { return RunAdaptive(o) }},
		{"stragglers", "heterogeneous-compute straggler grid (scheme × overlap × severity, Fig. 4 fabric)",
			func(o Options) (Report, error) { return RunStragglers(o) }},
		{"largescale", "cluster-scale pricing — 4,096 ranks on a 64-rack hierarchical fabric with one slow rack",
			func(o Options) (Report, error) { return RunLargeScale(o) }},
	}
}

// ExperimentByID looks an experiment up in the registry.
func ExperimentByID(id string) (Definition, bool) {
	for _, def := range Experiments() {
		if def.ID == id {
			return def, true
		}
	}
	return Definition{}, false
}

// ExperimentIDs lists the registry's identifiers in canonical order.
func ExperimentIDs() []string {
	defs := Experiments()
	ids := make([]string, len(defs))
	for i, def := range defs {
		ids[i] = def.ID
	}
	return ids
}
