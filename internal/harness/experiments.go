package harness

// Report is a rendered experiment result; every experiment runner returns
// one alongside its concrete result struct.
type Report interface {
	Render() string
}

// Definition couples an experiment id with the artifact it regenerates and
// its runner. The table returned by Experiments is the single registry
// behind `pactrain-bench -exp`, the pactrain facade, and the serve
// subsystem's POST /v1/experiments — one list to extend when an experiment
// is added, one id vocabulary everywhere.
type Definition struct {
	// ID is the stable identifier ("table1", "fig3", ...).
	ID string
	// Title names the paper artifact the experiment regenerates.
	Title string
	// FabricSensitive marks grids whose configs retrain per operating point
	// (core.Config.FabricSensitive): the controller-driven experiments whose
	// recorded logs cannot be re-costed across fabrics. These are the
	// heaviest submissions, so the serve subsystem queues them at low
	// priority by default.
	FabricSensitive bool
	// RecostOnly marks experiments that train nothing — they price
	// synthesized or recorded logs. These finish in milliseconds, so the
	// serve subsystem queues them at high priority by default.
	RecostOnly bool
	// Run executes the experiment's job grid under the given options.
	Run func(Options) (Report, error)
}

// Experiments lists every runnable experiment in canonical order (the
// order `-exp all` executes them).
func Experiments() []Definition {
	return []Definition{
		{ID: "table1", Title: "Table 1 — method-property matrix",
			Run: func(o Options) (Report, error) { return RunTable1(o) }},
		{ID: "fig3", Title: "Fig. 3 — relative TTA across WAN bandwidths",
			Run: func(o Options) (Report, error) { return RunFig3(o) }},
		{ID: "fig5", Title: "Fig. 5 — accuracy-vs-time curves",
			Run: func(o Options) (Report, error) { return RunFig5(o) }},
		{ID: "fig6", Title: "Fig. 6 — final accuracy vs pruning ratio",
			Run: func(o Options) (Report, error) { return RunFig6(o) }},
		{ID: "ablation-mt", Title: "Mask Tracker stability-window sweep",
			Run: func(o Options) (Report, error) { return RunAblationMT(o) }},
		{ID: "ablation-tern", Title: "pruning-only vs pruning+ternary",
			Run: func(o Options) (Report, error) { return RunAblationTernary(o) }},
		{ID: "ablation-topo", Title: "Fig. 4 chained switches vs flat switch",
			Run: func(o Options) (Report, error) { return RunAblationTopo(o) }},
		{ID: "ablation-varbw", Title: "variable-constrained bottleneck bandwidth",
			Run: func(o Options) (Report, error) { return RunAblationVarBW(o) }},
		{ID: "collectives", Title: "collective-algorithm grid (ring / tree / hierarchical, two-rack fabric)",
			Run: func(o Options) (Report, error) { return RunCollectives(o) }},
		{ID: "adaptive", Title: "online compression controller vs static wire formats (WAN fabrics)",
			FabricSensitive: true,
			Run:             func(o Options) (Report, error) { return RunAdaptive(o) }},
		{ID: "stragglers", Title: "heterogeneous-compute straggler grid (scheme × overlap × severity, Fig. 4 fabric)",
			Run: func(o Options) (Report, error) { return RunStragglers(o) }},
		{ID: "largescale", Title: "cluster-scale pricing — 4,096 ranks on a 64-rack hierarchical fabric with one slow rack",
			RecostOnly: true,
			Run:        func(o Options) (Report, error) { return RunLargeScale(o) }},
	}
}

// ExperimentByID looks an experiment up in the registry.
func ExperimentByID(id string) (Definition, bool) {
	for _, def := range Experiments() {
		if def.ID == id {
			return def, true
		}
	}
	return Definition{}, false
}

// ExperimentIDs lists the registry's identifiers in canonical order.
func ExperimentIDs() []string {
	defs := Experiments()
	ids := make([]string, len(defs))
	for i, def := range defs {
		ids[i] = def.ID
	}
	return ids
}
