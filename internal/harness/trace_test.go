package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"testing"

	"pactrain/internal/core"
	"pactrain/internal/harness/engine"
	"pactrain/internal/obs"
)

// decodedTrace pulls the fields the tests assert on out of exported JSON.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, raw []byte) decodedTrace {
	t.Helper()
	var doc decodedTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return doc
}

// TestTraceRunEndMatchesSimSeconds anchors the replayed spans to the
// recorded clock: the latest span edge in a run's trace is the run's
// SimSeconds (the replay is replayTimeline's arithmetic, so the only slack
// is the seconds→microseconds conversion).
func TestTraceRunEndMatchesSimSeconds(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	job := trainJob("trace-test", w, "pactrain-ternary", opt)
	res, err := testEngine.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	TraceRun(tr, job.Label, job.Config, res)
	if tr.Runs() != 1 {
		t.Fatalf("runs traced = %d, want 1", tr.Runs())
	}
	raw, err := tr.Build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(raw); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}

	latest := 0.0
	cats := map[string]bool{}
	for _, ev := range decodeTrace(t, raw).TraceEvents {
		cats[ev.Ph+"/"+ev.Cat] = true
		if ev.Ph == "X" && ev.Ts+ev.Dur > latest {
			latest = ev.Ts + ev.Dur
		}
	}
	for _, want := range []string{"X/compute", "X/collective", "i/decision"} {
		if !cats[want] {
			t.Errorf("trace missing %s events", want)
		}
	}
	want := res.SimSeconds * 1e6
	if math.Abs(latest-want) > 1e-6*want {
		t.Fatalf("latest span edge %v µs, recorded SimSeconds %v µs", latest, want)
	}
}

// TestTraceDeterministicAcrossParallelism is satellite 3's contract: the
// same experiment traced under different engine budgets exports
// byte-identical JSON, and tracing never perturbs the report.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	build := func(par int, traced bool) ([]byte, *StragglersResult) {
		opt := quickOpts()
		opt.Engine = engine.New(engine.Options{Parallelism: par})
		if traced {
			opt.Tracer = obs.NewTracer()
		}
		out, err := RunStragglers(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !traced {
			return nil, out
		}
		raw, err := opt.Tracer.Build().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw, out
	}

	serialJSON, serialOut := build(1, true)
	parJSON, parOut := build(runtime.GOMAXPROCS(0), true)
	if !bytes.Equal(serialJSON, parJSON) {
		t.Fatal("trace JSON differs between -parallel budgets")
	}
	if err := obs.Validate(serialJSON); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	if !reflect.DeepEqual(serialOut, parOut) {
		t.Fatal("report differs between -parallel budgets")
	}
	_, untracedOut := build(1, false)
	if !reflect.DeepEqual(serialOut, untracedOut) {
		t.Fatal("tracing perturbed the report")
	}

	// The straggler cell replays must show wait spans on more than one rank
	// (the fast ranks blocked at the slow rank's barrier).
	waitPids := map[int]bool{}
	for _, ev := range decodeTrace(t, serialJSON).TraceEvents {
		if ev.Cat == "barrier" {
			waitPids[ev.Pid] = true
		}
	}
	if len(waitPids) < 2 {
		t.Fatalf("barrier waits on %d pids, want ≥ 2 (straggler exposure)", len(waitPids))
	}
}

// TestTraceAdaptiveDecisionsCarryQuotes checks the adaptive replay path:
// decision instants appear on every rank, and the compact rounds carry the
// repriced candidate quotes (one per canonical format) on rank 0.
func TestTraceAdaptiveDecisionsCarryQuotes(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	cfg := baseConfig(w, core.SchemeAdaptive, opt)
	res, err := testEngine.Run(engine.Job{Label: "trace-adaptive", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	TraceRun(tr, "trace-adaptive", cfg, res)
	raw, err := tr.Build().JSON()
	if err != nil {
		t.Fatal(err)
	}

	decisionPids := map[int]bool{}
	quoted := 0
	for _, ev := range decodeTrace(t, raw).TraceEvents {
		if ev.Cat != "decision" {
			continue
		}
		decisionPids[ev.Pid] = true
		if q, ok := ev.Args["quotes"].(map[string]any); ok {
			if len(q) != 4 {
				t.Fatalf("decision instant quotes %d formats, want 4: %v", len(q), q)
			}
			quoted++
		}
	}
	if len(decisionPids) != cfg.World {
		t.Fatalf("decision instants on %d pids, want world %d", len(decisionPids), cfg.World)
	}
	if quoted == 0 {
		t.Fatal("no decision instant carries candidate quotes")
	}
}
