package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/ddp"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// The largescale experiment prices PacTrain at the cluster sizes the paper's
// 8-worker testbed cannot reach: a 64-rack / 4,096-rank job on a two-level
// racked fabric, with one thermally degraded rack. Training a 4,096-way lite
// twin is neither feasible nor needed — the question at this scale is purely
// a pricing one (what does each scheme's steady-state wire traffic cost on a
// hierarchical collective, and how much does a slow rack hurt?), so the
// experiment synthesizes each scheme's steady-state operation log directly
// from its wire formats and replays it on per-rank event timelines with
// memoized op pricing (opCoster). This is the one path that exercises every
// cluster-scale mechanism at once: the racked topology's path cache, the
// hierarchical collective over 64 racks, the timeline composer's
// homogeneous and per-bucket barrier shortcuts, and signature memoization —
// without them the grid takes minutes; with them, seconds.

// LargeScaleCell is one (scheme, severity) cell of the grid.
type LargeScaleCell struct {
	Scheme string
	// Severity is the slow rack's compute-time multiplier (1 = uniform).
	Severity float64
	// IterSeconds is the steady-state simulated iteration time (warm-up
	// iteration excluded).
	IterSeconds float64
	// Degradation is IterSeconds / IterSeconds(severity 1) for the scheme.
	Degradation float64
}

// LargeScaleResult is the cluster-scale pricing grid.
type LargeScaleResult struct {
	Cells      []LargeScaleCell
	Schemes    []string
	Severities []float64
	// Racks × HostsPerRack = World ranks on the racked fabric.
	Racks, HostsPerRack, World int
	// Iterations is the synthesized log length; Params the model size whose
	// buckets the log carries.
	Iterations int
	Params     int
	Collective string
}

// LargeScaleSchemes lists the priced schemes: the dense baseline, the
// cheapest dense compression, and PacTrain's steady state.
func LargeScaleSchemes() []string {
	return []string{"all-reduce", "fp16", "pactrain-ternary"}
}

// LargeScaleSeverities lists the slow rack's compute multipliers.
func LargeScaleSeverities() []float64 { return []float64{1, 2, 4} }

// largeScaleLog synthesizes a scheme's steady-state communication log over
// the given bucket geometry: what the trainer's hooks record once PacTrain's
// masks are stable (DESIGN.md §4), with iteration 0 modelling the warm-up
// (full-precision sync plus the bitmap re-share that establishes the mask).
// Dense schemes record the same op every iteration, so their warm-up is
// identical to steady state.
func largeScaleLog(scheme string, buckets []int, iters int) *core.CommLog {
	log := &core.CommLog{}
	log.SetBuckets(buckets)
	for k := 0; k < iters; k++ {
		log.StartIter()
		for b, n := range buckets {
			switch scheme {
			case "all-reduce":
				log.Record(core.CommOp{Kind: core.OpAllReduce, Elements: n,
					Wire: collective.WireFP32, Bucket: b})
			case "fp16":
				log.Record(core.CommOp{Kind: core.OpAllReduce, Elements: n,
					Wire: collective.WireFP16, Bucket: b})
			case "pactrain-ternary":
				if k == 0 {
					log.Record(core.CommOp{Kind: core.OpAllReduce, Elements: n,
						Wire: collective.WireFP32, Bucket: b})
					log.Record(core.CommOp{Kind: core.OpBitmapBroadcast, Elements: n,
						Bucket: b})
					continue
				}
				// Stable steady state: mask-compact ternary all-reduce over
				// the retained coordinates (50% pruning → half the elements,
				// widened to int8 so ring partial sums don't overflow —
				// exactly MaskCompact.Wire()).
				log.Record(core.CommOp{Kind: core.OpAllReduce, Elements: n / 2,
					Wire: collective.WireInt8, Bucket: b})
			default:
				panic("harness: largescale has no log synthesizer for scheme " + scheme)
			}
		}
	}
	return log
}

// largeScaleBuckets is a 25.5M-parameter bucket geometry (ResNet50-class):
// ten uniform 2.5M-element DDP buckets plus a 0.5M tail. Uniform buckets
// are deliberate — they keep the grid's distinct cost signatures (and hence
// live hierarchical pricings, ~500k link transfers each at 4,096 ranks) to
// a handful per scheme.
func largeScaleBuckets() []int {
	buckets := make([]int, 11)
	for i := range buckets {
		buckets[i] = 2_500_000
	}
	buckets[10] = 500_000
	return buckets
}

// largeScaleCompute prices compute on a datacenter accelerator (A100-class
// tensor throughput at realistic utilization) with a per-rank batch of 256
// — heavy enough that a 4× slow rack is visible next to compressed traffic,
// light enough that dense traffic still dominates it.
func largeScaleCompute() ddp.ComputeModel {
	return ddp.ComputeModel{
		FLOPsPerSample: 4_100_000_000, // ResNet50 forward
		DeviceFLOPS:    125e12,
		Efficiency:     0.35,
		BackwardFactor: 2,
	}
}

const largeScaleIters = 24

// RunLargeScale prices the grid. Quick mode shrinks the fabric to
// 32 racks × 32 hosts (1,024 ranks); the full grid runs 64 × 64 (4,096).
func RunLargeScale(opt Options) (*LargeScaleResult, error) {
	opt.defaults()
	racks, hosts := 64, 64
	if opt.Quick {
		racks, hosts = 32, 32
	}
	out := &LargeScaleResult{
		Schemes:    LargeScaleSchemes(),
		Severities: LargeScaleSeverities(),
		Racks:      racks, HostsPerRack: hosts, World: racks * hosts,
		Iterations: largeScaleIters,
		Collective: "hierarchical",
	}
	buckets := largeScaleBuckets()
	for _, n := range buckets {
		out.Params += n
	}
	opt.logf("LargeScale: %d schemes × %d severities at %d ranks (%d racks × %d hosts, hierarchical)",
		len(out.Schemes), len(out.Severities), out.World, racks, hosts)
	// Deliberately untraced: a span replay at 4,096 ranks emits on the
	// order of a million events per cell, which no viewer loads. The cells
	// leave a harness mark instead; use the stragglers experiment for a
	// viewable per-rank picture of the same straggler mechanics.
	opt.traceRecost("largescale", map[string]any{"world": out.World})

	topo := netsim.RackedTopology(netsim.RackedOptions{Racks: racks, HostsPerRack: hosts})
	alg := collective.MustAlgorithm(out.Collective)
	for _, scheme := range out.Schemes {
		log := largeScaleLog(scheme, buckets, largeScaleIters)
		res := &core.Result{Scheme: scheme, CommLog: log}
		uniformIter := 0.0
		for _, sev := range out.Severities {
			cfg := core.Config{
				World:      out.World,
				BatchSize:  256,
				Compute:    largeScaleCompute(),
				Overlap:    ddp.OverlapBackward,
				Collective: out.Collective,
			}
			if sev != 1 {
				cfg.RankCompute = ddp.RankCompute{
					Multipliers: netsim.OneSlowRack(racks, hosts, sev),
				}
			}
			// Fresh fabric per cell: byte accounting is meaningless under
			// memoized pricing and must not leak across cells.
			cum := replayTimeline(alg, res, &cfg, netsim.NewFabric(topo), true)
			// Steady state excludes the warm-up iteration (PacTrain's full
			// sync + bitmap re-share).
			iter := (cum[len(cum)-1] - cum[1]) / float64(largeScaleIters-1)
			if sev == 1 {
				uniformIter = iter
			}
			out.Cells = append(out.Cells, LargeScaleCell{
				Scheme: scheme, Severity: sev, IterSeconds: iter,
				Degradation: metrics.RelativeTTA(iter, uniformIter),
			})
		}
	}
	return out, nil
}

// Cell fetches one grid entry.
func (r *LargeScaleResult) Cell(scheme string, sev float64) (LargeScaleCell, bool) {
	for _, c := range r.Cells {
		if c.Scheme == scheme && c.Severity == sev {
			return c, true
		}
	}
	return LargeScaleCell{}, false
}

// Render prints the grid (rows = schemes, columns = slow-rack severities,
// cells = steady-state iteration time with degradation vs the uniform
// cluster) plus the two headline observations.
func (r *LargeScaleResult) Render() string {
	headers := []string{"scheme \\ slow-rack ×"}
	for _, sev := range r.Severities {
		headers = append(headers, fmt.Sprintf("%g×", sev))
	}
	tb := metrics.NewTable(fmt.Sprintf(
		"LargeScale — steady-state iteration time at %d ranks (%d racks × %d, hierarchical, one slow rack; ×degradation vs uniform)",
		r.World, r.Racks, r.HostsPerRack), headers...)
	for _, scheme := range r.Schemes {
		row := []string{DisplayName(scheme)}
		for _, sev := range r.Severities {
			if c, ok := r.Cell(scheme, sev); ok {
				row = append(row, fmt.Sprintf("%s (%.3f×)",
					metrics.FormatSeconds(c.IterSeconds), c.Degradation))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	pac, okP := r.Cell("pactrain-ternary", 1)
	dense, okD := r.Cell("all-reduce", 1)
	if okP && okD {
		fmt.Fprintf(&b, "Uniform cluster: PacTrain %s/iter vs dense %s/iter (%.2f× faster at %d ranks)\n",
			metrics.FormatSeconds(pac.IterSeconds), metrics.FormatSeconds(dense.IterSeconds),
			metrics.Speedup(pac.IterSeconds, dense.IterSeconds), r.World)
	}
	worst := r.Severities[len(r.Severities)-1]
	pacW, okP := r.Cell("pactrain-ternary", worst)
	denseW, okD := r.Cell("all-reduce", worst)
	if okP && okD {
		fmt.Fprintf(&b, "%g× slow rack: degradation %.3f× (PacTrain) vs %.3f× (dense) — compression exposes stragglers that dense traffic hides\n",
			worst, pacW.Degradation, denseW.Degradation)
	}
	return b.String()
}
