package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"pactrain/internal/compress"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/par"
	"pactrain/internal/simclock"
	"pactrain/internal/tensor"
)

// The perf lane is the proof layer of the cluster-scale work: a pinned
// macro-benchmark grid whose wall times are written to BENCH_<grid>.json and
// diffed against a committed baseline, so a change that silently re-inflates
// re-costing from seconds back to minutes fails CI instead of landing. Wall
// times are machine-dependent, so every report carries a calibration entry —
// a fixed scalar spin — and comparisons normalize by the calibration ratio
// before applying the tolerance (DESIGN.md §10).

// BenchEntry is one pinned benchmark's best-of-Runs wall time.
type BenchEntry struct {
	Name string
	// Seconds is the fastest of Runs executions (minimum, not mean: the
	// minimum is the least noisy estimator of a benchmark's true cost).
	Seconds float64
	Runs    int
}

// BenchReport is the grid's result set, serialized to BENCH_<grid>.json.
type BenchReport struct {
	// Grid is "quick" or "full".
	Grid       string
	GoMaxProcs int
	Entries    []BenchEntry
}

// Entry fetches a benchmark by name.
func (r *BenchReport) Entry(name string) (BenchEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return BenchEntry{}, false
}

// BenchCalibration names the normalization entry present in every grid.
const BenchCalibration = "calibrate-spin"

// BenchTolerance is the normalized slowdown CI fails on (>10%).
const BenchTolerance = 0.10

// PerfOptions configures a perf-lane run.
type PerfOptions struct {
	// Quick selects the small grid (1,024-rank cluster entries).
	Quick bool
	// Log receives per-entry progress lines; nil discards them.
	Log io.Writer
	// Extra appends caller-supplied benchmarks after the built-in grid —
	// the hook subsystems outside the harness (the serve load generator)
	// use to land their entries in the same BENCH_*.json under the same
	// regression gate. Extra entries run last, in order.
	Extra []PerfCase
}

// benchSink defeats dead-code elimination of benchmark bodies.
var benchSink uint64

// PerfCase is one pinned benchmark: setup runs untimed, Fn is timed, and
// the fastest of Runs executions is recorded.
type PerfCase struct {
	Name string
	Runs int
	Fn   func()
	// Value, when non-nil, switches the entry to value mode: each run
	// records Value()'s return instead of Fn's wall time (minimum across
	// Runs, like wall entries). This is how measurements computed inside a
	// benchmark body — a latency quantile, a work ratio — enter the report
	// under the same normalization and tolerance as wall times. Fn is
	// ignored in value mode.
	Value func() float64
}

// calibrateSpin is a fixed, allocation-free, single-core integer spin. Its
// wall time tracks the host's scalar speed, which is what every other entry
// is bounded by, so cur/base calibration ratios transport a baseline across
// machines.
func calibrateSpin() {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 40_000_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	benchSink = x
}

// composeCase replays largeScaleIters-style iterations of per-bucket barrier
// composition at the given world size with one slow rank (heterogeneity
// forces the per-rank path) — the pure incremental-timeline cost
// (IterComposer + Timeline), no collective pricing. This is the loop that
// was O(world × ops) before the composer.
func composeCase(world, iters int) func() {
	buckets := largeScaleBuckets()
	prefix := simclock.PrefixShares(buckets)
	rc := ddp.RankCompute{Multipliers: netsim.OneSlowRank(world, 2)}
	fwd, bwd := 0.006, 0.012
	return func() {
		tl := simclock.NewTimeline(world)
		scheds := make([]simclock.IterSchedule, world)
		comp := simclock.NewIterComposer(scheds)
		var acc float64
		for k := 0; k < iters; k++ {
			for r := range scheds {
				scale := rc.Scale(r, k)
				scheds[r] = simclock.NewIterSchedule(tl.Clock(r), fwd*scale, bwd*scale, prefix)
			}
			comp.Reset()
			commEnd := math.Inf(-1)
			for b := range buckets {
				launch := comp.Barrier(b)
				if commEnd > launch {
					launch = commEnd
				}
				commEnd = launch + 0.003
			}
			comp.FinishInto(tl, commEnd)
			acc = tl.Clock(0)
		}
		benchSink += uint64(acc)
	}
}

// encodeCases exercises the parallel compression kernels on a 2.5M-element
// bucket: TopK's quickselect sparsification and PacTrain's mask-compact
// ternary encode.
func encodeCases() []PerfCase {
	const n = 2_500_000
	grad := make([]float32, n)
	rng := tensor.NewRNG(7)
	for i := range grad {
		grad[i] = float32(rng.Float64()*2 - 1)
	}
	topk := compress.NewTopK(0.01)
	mc := compress.NewMaskCompact(true, 11)
	mask := make([]int32, 0, n/2)
	for i := int32(0); i < n; i += 2 {
		mask = append(mask, i)
	}
	mc.SetMask(mask, n)
	var buf []float32
	return []PerfCase{
		{Name: "encode-topk-2.5M", Runs: 3, Fn: func() {
			p := topk.Encode(grad)
			benchSink += uint64(len(p.Indices))
		}},
		{Name: "encode-ternary-2.5M", Runs: 3, Fn: func() {
			buf = mc.EncodeInto(grad, buf)
			benchSink += uint64(len(buf))
		}},
	}
}

// withBudget wraps a benchmark body so it runs under an explicit kernel
// budget and restores the previous budget afterwards. Entries pin their
// budget rather than inherit the ambient one because both the experiment
// engine (engine.go) and sibling entries mutate the process-global budget.
func withBudget(budget int, fn func()) func() {
	return func() {
		prev := par.Budget()
		par.SetBudget(budget)
		defer par.SetBudget(prev)
		fn()
	}
}

// matmulCase times iters square C = A·B products through the blocked,
// row-chunked MatMulInto kernel under the full kernel budget.
func matmulCase(size, iters int) func() {
	rng := tensor.NewRNG(13)
	a := tensor.Randn(rng, 1, size, size)
	b := tensor.Randn(rng, 1, size, size)
	c := tensor.New(size, size)
	return withBudget(runtime.GOMAXPROCS(0), func() {
		for i := 0; i < iters; i++ {
			tensor.MatMulInto(c, a, b)
		}
		benchSink += uint64(len(c.Data()))
	})
}

// im2colConvCase times the convolution inner loop as Conv2D.Forward runs
// it — Im2ColInto into a reused column buffer, then the patch × kernel
// matmul — on a VGG-ish shape (batch 8, 16→32 channels, 32×32, 3×3 s1 p1).
func im2colConvCase(iters int) func() {
	const (
		batch, inC, outC = 8, 16, 32
		img, k           = 32, 3
	)
	rng := tensor.NewRNG(17)
	x := tensor.Randn(rng, 1, batch, inC, img, img)
	w := tensor.Randn(rng, 0.1, inC*k*k, outC)
	out := tensor.ConvOutSize(img, k, 1, 1)
	cols := tensor.New(batch*out*out, inC*k*k)
	y := tensor.New(batch*out*out, outC)
	return withBudget(runtime.GOMAXPROCS(0), func() {
		for i := 0; i < iters; i++ {
			tensor.Im2ColInto(cols, x, k, k, 1, 1)
			tensor.MatMulInto(y, cols, w)
		}
		benchSink += uint64(len(y.Data()))
	})
}

// trainStepCase times steps full optimizer steps (ZeroGrad, forward, loss,
// backward, SGD) of a lite-twin model at the given kernel budget. The b1/bN
// twin entries make the budget-scaling of the model-compute path visible in
// the report: on a multi-core host the bN entry runs the same byte-identical
// computation across cores, and on any host the pair pins the chunked
// kernels' overhead at budget 1.
func trainStepCase(build func() *nn.Model, steps, budget int) func() {
	const batch = 8
	m := build()
	rng := tensor.NewRNG(29)
	x := tensor.Randn(rng, 1, batch, 3, 16, 16)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	opt := nn.NewSGD(0.05, 0.9, 5e-4)
	return withBudget(budget, func() {
		for s := 0; s < steps; s++ {
			m.ZeroGrad()
			logits := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(logits, labels)
			m.Backward(grad)
			opt.Step(m.Params())
		}
		benchSink += uint64(len(m.Params()))
	})
}

// modelComputeCases pins the model-compute kernel path: blocked matmuls,
// the im2col convolution loop, and end-to-end train steps of the MLP and
// attention lite twins at kernel budgets 1 and GOMAXPROCS.
func modelComputeCases(quick bool) []PerfCase {
	nproc := runtime.GOMAXPROCS(0)
	mlp := func() *nn.Model { return nn.NewMLP(nn.DefaultLiteConfig(10, 1), 64) }
	cases := []PerfCase{
		{Name: "matmul-256", Runs: 3, Fn: matmulCase(256, 10)},
		{Name: "im2col-conv", Runs: 3, Fn: im2colConvCase(10)},
		{Name: "trainstep-mlp-b1", Runs: 3, Fn: trainStepCase(mlp, 20, 1)},
		{Name: "trainstep-mlp", Runs: 3, Fn: trainStepCase(mlp, 20, nproc)},
	}
	if !quick {
		vit := func() *nn.Model {
			cfg := nn.DefaultLiteConfig(10, 1)
			return nn.NewViTLite(cfg, 4*cfg.Width, 4, 2)
		}
		cases = append(cases,
			PerfCase{Name: "matmul-1024", Runs: 3, Fn: matmulCase(1024, 1)},
			PerfCase{Name: "trainstep-attn-b1", Runs: 3, Fn: trainStepCase(vit, 8, 1)},
			PerfCase{Name: "trainstep-attn", Runs: 3, Fn: trainStepCase(vit, 8, nproc)},
		)
	}
	return cases
}

// RunPerf executes the pinned grid and returns its report.
func RunPerf(opt PerfOptions) *BenchReport {
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	grid := "full"
	composeWorlds := []int{64, 1024, 4096}
	if opt.Quick {
		grid = "quick"
		composeWorlds = []int{64, 1024}
	}
	cases := []PerfCase{{Name: BenchCalibration, Runs: 5, Fn: calibrateSpin}}
	for _, w := range composeWorlds {
		// Iterations scale inversely with world so every compose entry does
		// similar total work — a sub-millisecond entry would gate the 10%
		// tolerance on timer noise instead of on the composer.
		iters := 50
		if scaled := 200_000 / w; scaled > iters {
			iters = scaled
		}
		cases = append(cases, PerfCase{Name: fmt.Sprintf("compose-%d", w), Runs: 3, Fn: composeCase(w, iters)})
	}
	cases = append(cases, encodeCases()...)
	cases = append(cases, modelComputeCases(opt.Quick)...)
	cases = append(cases, PerfCase{Name: "largescale", Runs: 3, Fn: func() {
		if _, err := RunLargeScale(Options{Quick: opt.Quick}); err != nil {
			panic(err)
		}
	}})
	cases = append(cases, opt.Extra...)

	report := &BenchReport{Grid: grid, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, c := range cases {
		runs := c.Runs
		if runs < 1 {
			runs = 1
		}
		best := math.Inf(1)
		for r := 0; r < runs; r++ {
			if c.Value != nil {
				if v := c.Value(); v < best {
					best = v
				}
				continue
			}
			start := time.Now()
			c.Fn()
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		if c.Value != nil {
			logf("perf: %-22s %8.4f (best of %d)", c.Name, best, runs)
		} else {
			logf("perf: %-22s %8.1fms (best of %d)", c.Name, best*1e3, runs)
		}
		report.Entries = append(report.Entries, BenchEntry{Name: c.Name, Seconds: best, Runs: runs})
	}
	return report
}

// BenchPath is the canonical baseline location for a grid.
func BenchPath(grid string) string { return "BENCH_" + grid + ".json" }

// WriteBench serializes a report to path.
func WriteBench(path string, r *BenchReport) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadBench reads a baseline report.
func LoadBench(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareBench diffs cur against base and returns one line per regression:
// entries whose calibration-normalized wall time grew by more than tol.
// Entries missing from either report are ignored (new benchmarks must not
// fail against old baselines). The caller treats a non-empty result as a CI
// failure.
func CompareBench(base, cur *BenchReport, tol float64) []string {
	norm := 1.0
	if b, okB := base.Entry(BenchCalibration); okB && b.Seconds > 0 {
		if c, okC := cur.Entry(BenchCalibration); okC && c.Seconds > 0 {
			norm = c.Seconds / b.Seconds
		}
	}
	var regressions []string
	for _, c := range cur.Entries {
		if c.Name == BenchCalibration {
			continue
		}
		b, ok := base.Entry(c.Name)
		if !ok || b.Seconds <= 0 {
			continue
		}
		allowed := b.Seconds * norm * (1 + tol)
		if c.Seconds > allowed {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1fms vs baseline %.1fms (%.2f× normalized, tolerance %.2f×)",
				c.Name, c.Seconds*1e3, b.Seconds*1e3,
				c.Seconds/(b.Seconds*norm), 1+tol))
		}
	}
	return regressions
}
