package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"pactrain/internal/compress"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/simclock"
	"pactrain/internal/tensor"
)

// The perf lane is the proof layer of the cluster-scale work: a pinned
// macro-benchmark grid whose wall times are written to BENCH_<grid>.json and
// diffed against a committed baseline, so a change that silently re-inflates
// re-costing from seconds back to minutes fails CI instead of landing. Wall
// times are machine-dependent, so every report carries a calibration entry —
// a fixed scalar spin — and comparisons normalize by the calibration ratio
// before applying the tolerance (DESIGN.md §10).

// BenchEntry is one pinned benchmark's best-of-Runs wall time.
type BenchEntry struct {
	Name string
	// Seconds is the fastest of Runs executions (minimum, not mean: the
	// minimum is the least noisy estimator of a benchmark's true cost).
	Seconds float64
	Runs    int
}

// BenchReport is the grid's result set, serialized to BENCH_<grid>.json.
type BenchReport struct {
	// Grid is "quick" or "full".
	Grid       string
	GoMaxProcs int
	Entries    []BenchEntry
}

// Entry fetches a benchmark by name.
func (r *BenchReport) Entry(name string) (BenchEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return BenchEntry{}, false
}

// BenchCalibration names the normalization entry present in every grid.
const BenchCalibration = "calibrate-spin"

// BenchTolerance is the normalized slowdown CI fails on (>10%).
const BenchTolerance = 0.10

// PerfOptions configures a perf-lane run.
type PerfOptions struct {
	// Quick selects the small grid (1,024-rank cluster entries).
	Quick bool
	// Log receives per-entry progress lines; nil discards them.
	Log io.Writer
}

// benchSink defeats dead-code elimination of benchmark bodies.
var benchSink uint64

// perfCase is one pinned benchmark: setup runs untimed, fn is timed.
type perfCase struct {
	name string
	runs int
	fn   func()
}

// calibrateSpin is a fixed, allocation-free, single-core integer spin. Its
// wall time tracks the host's scalar speed, which is what every other entry
// is bounded by, so cur/base calibration ratios transport a baseline across
// machines.
func calibrateSpin() {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 40_000_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	benchSink = x
}

// composeCase replays largeScaleIters-style iterations of per-bucket barrier
// composition at the given world size with one slow rank (heterogeneity
// forces the per-rank path) — the pure incremental-timeline cost
// (IterComposer + Timeline), no collective pricing. This is the loop that
// was O(world × ops) before the composer.
func composeCase(world, iters int) func() {
	buckets := largeScaleBuckets()
	prefix := simclock.PrefixShares(buckets)
	rc := ddp.RankCompute{Multipliers: netsim.OneSlowRank(world, 2)}
	fwd, bwd := 0.006, 0.012
	return func() {
		tl := simclock.NewTimeline(world)
		scheds := make([]simclock.IterSchedule, world)
		comp := simclock.NewIterComposer(scheds)
		var acc float64
		for k := 0; k < iters; k++ {
			for r := range scheds {
				scale := rc.Scale(r, k)
				scheds[r] = simclock.NewIterSchedule(tl.Clock(r), fwd*scale, bwd*scale, prefix)
			}
			comp.Reset()
			commEnd := math.Inf(-1)
			for b := range buckets {
				launch := comp.Barrier(b)
				if commEnd > launch {
					launch = commEnd
				}
				commEnd = launch + 0.003
			}
			comp.FinishInto(tl, commEnd)
			acc = tl.Clock(0)
		}
		benchSink += uint64(acc)
	}
}

// encodeCases exercises the parallel compression kernels on a 2.5M-element
// bucket: TopK's quickselect sparsification and PacTrain's mask-compact
// ternary encode.
func encodeCases() []perfCase {
	const n = 2_500_000
	grad := make([]float32, n)
	rng := tensor.NewRNG(7)
	for i := range grad {
		grad[i] = float32(rng.Float64()*2 - 1)
	}
	topk := compress.NewTopK(0.01)
	mc := compress.NewMaskCompact(true, 11)
	mask := make([]int32, 0, n/2)
	for i := int32(0); i < n; i += 2 {
		mask = append(mask, i)
	}
	mc.SetMask(mask, n)
	var buf []float32
	return []perfCase{
		{"encode-topk-2.5M", 3, func() {
			p := topk.Encode(grad)
			benchSink += uint64(len(p.Indices))
		}},
		{"encode-ternary-2.5M", 3, func() {
			buf = mc.EncodeInto(grad, buf)
			benchSink += uint64(len(buf))
		}},
	}
}

// RunPerf executes the pinned grid and returns its report.
func RunPerf(opt PerfOptions) *BenchReport {
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	grid := "full"
	composeWorlds := []int{64, 1024, 4096}
	if opt.Quick {
		grid = "quick"
		composeWorlds = []int{64, 1024}
	}
	cases := []perfCase{{BenchCalibration, 5, calibrateSpin}}
	for _, w := range composeWorlds {
		// Iterations scale inversely with world so every compose entry does
		// similar total work — a sub-millisecond entry would gate the 10%
		// tolerance on timer noise instead of on the composer.
		iters := 50
		if scaled := 200_000 / w; scaled > iters {
			iters = scaled
		}
		cases = append(cases, perfCase{fmt.Sprintf("compose-%d", w), 3, composeCase(w, iters)})
	}
	cases = append(cases, encodeCases()...)
	cases = append(cases, perfCase{"largescale", 3, func() {
		if _, err := RunLargeScale(Options{Quick: opt.Quick}); err != nil {
			panic(err)
		}
	}})

	report := &BenchReport{Grid: grid, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, c := range cases {
		best := math.Inf(1)
		for r := 0; r < c.runs; r++ {
			start := time.Now()
			c.fn()
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		logf("perf: %-22s %8.1fms (best of %d)", c.name, best*1e3, c.runs)
		report.Entries = append(report.Entries, BenchEntry{Name: c.name, Seconds: best, Runs: c.runs})
	}
	return report
}

// BenchPath is the canonical baseline location for a grid.
func BenchPath(grid string) string { return "BENCH_" + grid + ".json" }

// WriteBench serializes a report to path.
func WriteBench(path string, r *BenchReport) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadBench reads a baseline report.
func LoadBench(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareBench diffs cur against base and returns one line per regression:
// entries whose calibration-normalized wall time grew by more than tol.
// Entries missing from either report are ignored (new benchmarks must not
// fail against old baselines). The caller treats a non-empty result as a CI
// failure.
func CompareBench(base, cur *BenchReport, tol float64) []string {
	norm := 1.0
	if b, okB := base.Entry(BenchCalibration); okB && b.Seconds > 0 {
		if c, okC := cur.Entry(BenchCalibration); okC && c.Seconds > 0 {
			norm = c.Seconds / b.Seconds
		}
	}
	var regressions []string
	for _, c := range cur.Entries {
		if c.Name == BenchCalibration {
			continue
		}
		b, ok := base.Entry(c.Name)
		if !ok || b.Seconds <= 0 {
			continue
		}
		allowed := b.Seconds * norm * (1 + tol)
		if c.Seconds > allowed {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1fms vs baseline %.1fms (%.2f× normalized, tolerance %.2f×)",
				c.Name, c.Seconds*1e3, b.Seconds*1e3,
				c.Seconds/(b.Seconds*norm), 1+tol))
		}
	}
	return regressions
}
