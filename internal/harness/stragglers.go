package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/ddp"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// StragglerCell is one (scheme, overlap, severity) TTA measurement on the
// Fig. 4 fabric at the constrained bandwidth.
type StragglerCell struct {
	Scheme string
	// Overlap is the backward-overlap model ("none" or "backward").
	Overlap string
	// Severity is the slow rank's compute-time multiplier (1 = uniform
	// cluster, 2 = the last rank runs at half speed).
	Severity   float64
	TTASeconds float64
	Reached    bool
	// Degradation is TTASeconds / TTA(severity 1) for the same scheme and
	// overlap mode — how much the straggler costs this configuration.
	Degradation float64
}

// StragglersResult is the straggler grid: scheme × overlap × one-slow-rank
// severity, all priced on the paper's Fig. 4 fabric at its most constrained
// bandwidth. It is the first experiment that exercises the per-rank event
// timeline end to end: severities diverge the rank clocks, the overlap axis
// prices each bucket's collective at its gradient-ready barrier, and every
// cell is re-costed from one recording per scheme — the timeline re-coster
// derives per-rank launches from the config, so the train-once economy
// extends across straggler profiles exactly as it does across bandwidths.
type StragglersResult struct {
	Cells      []StragglerCell
	Model      string
	Schemes    []string
	Overlaps   []string
	Severities []float64
	// BandwidthBps is the Fig. 4 bottleneck speed the grid is priced at.
	BandwidthBps float64
}

// StragglerSchemes lists the grid's schemes: the dense baseline, the
// cheapest dense compression, and PacTrain.
func StragglerSchemes() []string {
	return []string{"all-reduce", "fp16", "pactrain-ternary"}
}

// StragglerSeverities lists the one-slow-rank compute multipliers swept.
func StragglerSeverities() []float64 { return []float64{1, 1.5, 2} }

// stragglerBandwidth is the Fig. 4 bottleneck the grid prices at — the
// paper's most constrained operating point, where compression matters most.
const stragglerBandwidth = 100 * netsim.Mbps

// StragglerComputeModel prices compute on an edge-grade accelerator
// (~0.23 TFLOP/s fp32, Jetson-class) instead of the A40 default. The
// heterogeneous-cluster setting the experiment models — mixed or embedded
// hardware behind a WAN bottleneck — is exactly where compute is a
// meaningful fraction of the iteration, so a straggler's 2× compute factor
// is visible next to the communication phase; on A40-class workers at
// 100 Mbps the clock is so communication-dominated that any compute
// multiplier vanishes in the third decimal.
func StragglerComputeModel(flopsPerSample int64) ddp.ComputeModel {
	return ddp.ComputeModel{
		FLOPsPerSample: flopsPerSample,
		DeviceFLOPS:    0.23e12,
		Efficiency:     0.35,
		BackwardFactor: 2,
	}
}

// RunStragglers regenerates the straggler grid. Each scheme trains exactly
// once, on the default uniform serialized configuration — byte-identical to
// Fig. 3's jobs, so an engine shared across experiments pays nothing extra
// — and every (overlap, severity) cell re-prices the recorded log on
// per-rank timelines under the edge-grade compute model: the op sequence a
// static scheme records depends only on gradient values, never on clocks,
// so one recording is exact under every compute model, straggler profile,
// and overlap mode (TestStragglerRecostReproducesTraining pins this against
// real heterogeneous trainings).
func RunStragglers(opt Options) (*StragglersResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &StragglersResult{
		Model:        w.Model,
		Schemes:      StragglerSchemes(),
		Overlaps:     ddp.OverlapNames(),
		Severities:   StragglerSeverities(),
		BandwidthBps: stragglerBandwidth,
	}
	opt.logf("Stragglers: %d schemes × %d overlap modes × %d severities on %s (Fig. 4 at %s)",
		len(out.Schemes), len(out.Overlaps), len(out.Severities), w.Model,
		bandwidthLabel(out.BandwidthBps))

	var jobs []engine.Job
	for _, scheme := range out.Schemes {
		jobs = append(jobs, trainJob("stragglers", w, scheme, opt))
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("stragglers: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("stragglers", map[string]any{
		"overlaps": len(out.Overlaps), "severities": len(out.Severities),
	})

	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: out.BandwidthBps})
	maxSev := out.Severities[len(out.Severities)-1]
	for si, scheme := range out.Schemes {
		res := results[si]
		for _, overlap := range out.Overlaps {
			uniformTTA := 0.0
			for _, sev := range out.Severities {
				cfg := jobs[si].Config
				cfg.Compute = StragglerComputeModel(cfg.Profile.FLOPsPerSample)
				cfg.Overlap = ddp.MustOverlap(overlap)
				if sev != 1 {
					cfg.RankCompute = ddp.RankCompute{
						Multipliers: netsim.OneSlowRank(cfg.World, sev),
					}
				}
				cum := recostCum(res, &cfg, netsim.NewFabric(topo))
				tta, reached := ttaFromCum(res, cum, w.TargetAcc)
				if opt.Tracer != nil && sev == maxSev {
					// Replay the worst-severity cells in full: the wait
					// spans on the slow rank's peers are the experiment's
					// whole story. The milder cells stay as marks —
					// tracing the full grid would dwarf the training runs.
					label := fmt.Sprintf("stragglers cell %s/%s sev %g",
						DisplayName(scheme), overlap, sev)
					traceRunOn(opt.Tracer, label, "", cfg, res, netsim.NewFabric(topo))
				}
				if sev == 1 {
					uniformTTA = tta
				}
				out.Cells = append(out.Cells, StragglerCell{
					Scheme: scheme, Overlap: overlap, Severity: sev,
					TTASeconds: tta, Reached: reached,
					Degradation: metrics.RelativeTTA(tta, uniformTTA),
				})
			}
		}
	}
	return out, nil
}

// Cell fetches one grid entry.
func (r *StragglersResult) Cell(scheme, overlap string, sev float64) (StragglerCell, bool) {
	for _, c := range r.Cells {
		if c.Scheme == scheme && c.Overlap == overlap && c.Severity == sev {
			return c, true
		}
	}
	return StragglerCell{}, false
}

// Render prints one table per overlap mode (rows = schemes, columns =
// severities, cells = TTA with the degradation over the uniform cluster).
func (r *StragglersResult) Render() string {
	var b strings.Builder
	for _, overlap := range r.Overlaps {
		headers := []string{"scheme \\ slow-rank ×"}
		for _, sev := range r.Severities {
			headers = append(headers, fmt.Sprintf("%g×", sev))
		}
		tb := metrics.NewTable(fmt.Sprintf(
			"Stragglers — TTA with one slow rank (%s; Fig. 4 at %s; overlap=%s; ×degradation vs uniform)",
			r.Model, bandwidthLabel(r.BandwidthBps), overlap), headers...)
		for _, scheme := range r.Schemes {
			row := []string{DisplayName(scheme)}
			for _, sev := range r.Severities {
				if c, ok := r.Cell(scheme, overlap, sev); ok {
					cell := fmt.Sprintf("%s (%.3f×)", metrics.FormatSeconds(c.TTASeconds), c.Degradation)
					if !c.Reached {
						cell = ">" + cell
					}
					row = append(row, cell)
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	for _, overlap := range r.Overlaps {
		pac, okP := r.Cell("pactrain-ternary", overlap, 2)
		dense, okD := r.Cell("all-reduce", overlap, 2)
		if okP && okD {
			fmt.Fprintf(&b, "2× straggler, overlap=%s: PacTrain %s vs dense %s (%.2f× faster)\n",
				overlap, metrics.FormatSeconds(pac.TTASeconds),
				metrics.FormatSeconds(dense.TTASeconds),
				metrics.Speedup(pac.TTASeconds, dense.TTASeconds))
		}
	}
	return b.String()
}
