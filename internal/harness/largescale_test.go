package harness

import (
	"math"
	"strings"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
)

// TestMemoizedReplayMatchesLive pins the opCoster contract: on a
// time-invariant fabric, memoized pricing agrees with live per-op pricing to
// accumulation roundoff (the memo replays a duration computed at one launch
// time at other launch times — see opCoster's doc comment for why that is
// ulp-level, not exact).
func TestMemoizedReplayMatchesLive(t *testing.T) {
	t.Parallel()
	const racks, hosts = 4, 4
	topo := netsim.RackedTopology(netsim.RackedOptions{Racks: racks, HostsPerRack: hosts})
	alg := collective.MustAlgorithm("hierarchical")
	buckets := []int{300_000, 300_000, 100_000}
	for _, scheme := range LargeScaleSchemes() {
		res := &core.Result{Scheme: scheme, CommLog: largeScaleLog(scheme, buckets, 6)}
		cfg := core.Config{
			World:      racks * hosts,
			BatchSize:  256,
			Compute:    largeScaleCompute(),
			Overlap:    ddp.OverlapBackward,
			Collective: "hierarchical",
			RankCompute: ddp.RankCompute{
				Multipliers: netsim.OneSlowRack(racks, hosts, 3),
			},
		}
		live := replayTimeline(alg, res, &cfg, netsim.NewFabric(topo), false)
		memo := replayTimeline(alg, res, &cfg, netsim.NewFabric(topo), true)
		if len(live) != len(memo) {
			t.Fatalf("%s: cum lengths differ: %d vs %d", scheme, len(live), len(memo))
		}
		for k := range live {
			if diff := math.Abs(live[k] - memo[k]); diff > 1e-9*math.Max(1, live[k]) {
				t.Fatalf("%s iter %d: live %v vs memoized %v (diff %g)",
					scheme, k, live[k], memo[k], diff)
			}
		}
	}
}

func TestRunLargeScaleQuick(t *testing.T) {
	t.Parallel()
	res, err := RunLargeScale(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.World != 1024 || res.Racks != 32 || res.HostsPerRack != 32 {
		t.Fatalf("quick grid sized %d ranks (%d×%d), want 1024 (32×32)",
			res.World, res.Racks, res.HostsPerRack)
	}
	if want := len(res.Schemes) * len(res.Severities); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}
	for _, scheme := range res.Schemes {
		base, ok := res.Cell(scheme, 1)
		if !ok || base.IterSeconds <= 0 {
			t.Fatalf("%s: missing or non-positive uniform cell", scheme)
		}
		if base.Degradation != 1 {
			t.Fatalf("%s: uniform degradation %v, want exactly 1", scheme, base.Degradation)
		}
		prev := base.IterSeconds
		for _, sev := range res.Severities[1:] {
			c, ok := res.Cell(scheme, sev)
			if !ok {
				t.Fatalf("%s: missing severity %g", scheme, sev)
			}
			if c.IterSeconds < prev {
				t.Fatalf("%s: iteration time shrank as the slow rack worsened (%g× → %v)",
					scheme, sev, c.IterSeconds)
			}
			if c.Degradation < 1 {
				t.Fatalf("%s severity %g: degradation %v < 1", scheme, sev, c.Degradation)
			}
			prev = c.IterSeconds
		}
	}
	// The headline claims: compression wins on a uniform cluster, and the
	// slow rack hurts the compressed scheme relatively more (compute is a
	// larger share of its iteration).
	pac, _ := res.Cell("pactrain-ternary", 1)
	dense, _ := res.Cell("all-reduce", 1)
	if pac.IterSeconds >= dense.IterSeconds {
		t.Fatalf("PacTrain (%v) not faster than dense (%v) on the uniform cluster",
			pac.IterSeconds, dense.IterSeconds)
	}
	worst := res.Severities[len(res.Severities)-1]
	pacW, _ := res.Cell("pactrain-ternary", worst)
	denseW, _ := res.Cell("all-reduce", worst)
	if pacW.Degradation <= denseW.Degradation {
		t.Fatalf("expected compression to expose the slow rack: pactrain %v vs dense %v",
			pacW.Degradation, denseW.Degradation)
	}
	rendered := res.Render()
	for _, want := range []string{"1024 ranks", "PacTrain", "slow rack"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered grid missing %q:\n%s", want, rendered)
		}
	}
}
