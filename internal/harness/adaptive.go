package harness

import (
	"fmt"
	"math"
	"strings"

	"pactrain/internal/adaptive"
	"pactrain/internal/core"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// AdaptiveSchemeName labels the online controller's row in the adaptive
// experiment; static format baselines are labelled StaticSchemeName(f).
const AdaptiveSchemeName = core.SchemeAdaptive

// StaticSchemeName labels a single-format baseline row: the adaptive
// pipeline with its candidate set pinned to one wire format, which is the
// apples-to-apples static counterpart (same pruning, same GSE, same Mask
// Tracker — only the format choice is frozen).
func StaticSchemeName(format string) string { return "static:" + format }

// AdaptiveCell is one (fabric, scheme, bandwidth) TTA measurement of the
// adaptive experiment.
type AdaptiveCell struct {
	// Fabric is the operating environment: "varbw" (Fig. 4 WAN with the
	// oscillating bottleneck trace) or "two-rack" (two clusters behind one
	// bottleneck link).
	Fabric       string
	Scheme       string
	BandwidthBps float64
	TTASeconds   float64
	Reached      bool
	FinalAcc     float64
	// Decisions summarizes the controller's format choices for adaptive
	// cells ("mask-compact-ternary:70 index-list:31"); empty for statics.
	Decisions string `json:",omitempty"`
	// Switches counts completed format switches for adaptive cells.
	Switches int `json:",omitempty"`
}

// AdaptiveExpResult is the adaptive-controller experiment: the online
// cost-model controller against every static wire format, across bandwidth
// operating points on two WAN-latency fabrics. The headline invariant —
// asserted by TestRunAdaptiveQuick — is that the adaptive scheme's TTA is
// at or below the best static format at every operating point: the
// controller matches whichever format the regime favors without being told
// which regime it is in.
type AdaptiveExpResult struct {
	Cells   []AdaptiveCell
	Model   string
	Formats []string
	// VarBWBandwidths and TwoRackBandwidths are the operating points of the
	// two fabric parts.
	VarBWBandwidths   []float64
	TwoRackBandwidths []float64
	// LatencySec is the per-link one-way latency of both fabrics — WAN
	// scale, which is what makes the format ranking bandwidth-dependent
	// (the index-list's fewer ring steps matter only when latency counts).
	LatencySec float64
	// DipScale and PeriodsSec describe the varbw part's oscillation (one
	// period per varbw bandwidth, sized from the ternary baseline's run).
	DipScale   float64
	PeriodsSec []float64
}

// adaptiveWANLatency is the per-link latency of the experiment's fabrics.
// At Fig. 4's LAN default (100 µs) the byte volume dominates every format
// quote and mask-compact-ternary wins everywhere; at WAN latency the
// latency term makes the index-list all-gather (half the ring steps)
// overtake it when bandwidth is plentiful — the regime dependence the
// controller exists to exploit.
const adaptiveWANLatency = 5e-3

// adaptiveTwoRackBandwidths lists the two-rack part's operating points.
func adaptiveTwoRackBandwidths() []float64 {
	return []float64{100 * netsim.Mbps, 1 * netsim.Gbps}
}

// oscillatingTraces builds the alternating full/dip bandwidth traces for
// every inter-switch link of a topology, as the varbw ablation does.
func oscillatingTraces(topo *netsim.Topology, period, dip float64) []*netsim.BandwidthTrace {
	var traces []*netsim.BandwidthTrace
	for _, li := range topo.InterSwitchLinks() {
		var segs []netsim.TraceSegment
		for k := 0; k < 4096; k++ {
			scale := 1.0
			if k%2 == 1 {
				scale = dip
			}
			segs = append(segs, netsim.TraceSegment{UntilSec: float64(k+1) * period, Scale: scale})
		}
		segs = append(segs, netsim.TraceSegment{UntilSec: math.Inf(1), Scale: 1})
		traces = append(traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: segs})
	}
	return traces
}

// RunAdaptive regenerates the adaptive-controller experiment.
//
// The four static baselines train once each on the default fabric: a
// single-candidate controller makes fabric-independent decisions
// (Config.FabricSensitive is false), so their recorded logs re-cost
// exactly onto every operating point, like any static scheme. The adaptive
// cells are the opposite — the controller's decisions consult the live
// fabric, so each operating point trains its own run with the fabric (and
// trace) in the config; re-costing an adaptive log across bandwidths would
// replay decisions the controller would not have made there (DESIGN.md §8).
func RunAdaptive(opt Options) (*AdaptiveExpResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &AdaptiveExpResult{
		Model:             w.Model,
		Formats:           adaptive.Formats(),
		VarBWBandwidths:   Fig3Bandwidths(),
		TwoRackBandwidths: adaptiveTwoRackBandwidths(),
		LatencySec:        adaptiveWANLatency,
		DipScale:          0.1,
	}
	opt.logf("Adaptive: controller vs %d static formats × %d operating points on %s (WAN latency %s)",
		len(out.Formats), len(out.VarBWBandwidths)+len(out.TwoRackBandwidths), w.Model,
		metrics.FormatSeconds(out.LatencySec))

	// Static format baselines: train once, re-cost everywhere.
	var staticJobs []engine.Job
	for _, f := range out.Formats {
		cfg := baseConfig(w, core.SchemeAdaptive, opt)
		cfg.AdaptCandidates = []string{f}
		staticJobs = append(staticJobs, engine.Job{
			Label:  fmt.Sprintf("adaptive %s/%s", w.Model, StaticSchemeName(f)),
			Config: cfg,
		})
	}
	staticRes, err := eng.RunAll(staticJobs)
	if err != nil {
		return nil, fmt.Errorf("adaptive statics: %w", err)
	}
	opt.traceRuns(staticJobs, staticRes)
	if err := opt.auditRuns(staticJobs, staticRes); err != nil {
		return nil, fmt.Errorf("adaptive statics: %w", err)
	}

	// Operating-point fabrics. The varbw oscillation period is sized per
	// bandwidth from the ternary baseline re-costed on the untraced WAN
	// fabric, so every run sees several dips before finishing.
	ternIdx := -1
	for i, f := range out.Formats {
		if f == adaptive.FormatCompactTernary {
			ternIdx = i
		}
	}
	type point struct {
		fabric string
		bw     float64
		topo   *netsim.Topology
		traces []*netsim.BandwidthTrace
	}
	var points []point
	for _, bw := range out.VarBWBandwidths {
		topo := netsim.Fig4Topology(netsim.Fig4Options{
			BottleneckBps: bw, LatencySec: out.LatencySec,
		})
		ternCfg := staticJobs[ternIdx].Config
		cum := recostCum(staticRes[ternIdx], &ternCfg, netsim.NewFabric(topo))
		period := cum[len(cum)-1] / 6
		if period <= 0 {
			period = 1
		}
		out.PeriodsSec = append(out.PeriodsSec, period)
		points = append(points, point{
			fabric: "varbw", bw: bw, topo: topo,
			traces: oscillatingTraces(topo, period, out.DipScale),
		})
	}
	for _, bw := range out.TwoRackBandwidths {
		points = append(points, point{
			fabric: "two-rack", bw: bw,
			topo: netsim.TwoRackTopology(netsim.TwoRackOptions{
				Hosts: opt.World, BottleneckBps: bw, EdgeBps: 10 * netsim.Gbps,
				LatencySec: out.LatencySec,
			}),
		})
	}

	// Adaptive cells: one training per operating point, fabric in config.
	var adaptiveJobs []engine.Job
	for _, p := range points {
		cfg := baseConfig(w, core.SchemeAdaptive, opt)
		cfg.Topology = p.topo
		cfg.Traces = p.traces
		adaptiveJobs = append(adaptiveJobs, engine.Job{
			Label:  fmt.Sprintf("adaptive %s/%s@%s", w.Model, p.fabric, bandwidthLabel(p.bw)),
			Config: cfg,
		})
	}
	adaptiveRes, err := eng.RunAll(adaptiveJobs)
	if err != nil {
		return nil, fmt.Errorf("adaptive cells: %w", err)
	}
	// The adaptive cells carry their operating-point fabric in the config
	// (Topology + Traces), so TraceRun replays each on its recorded fabric
	// — the only fabric an adaptive log replays exactly (DESIGN.md §8) —
	// with repriced candidate quotes on every decision instant.
	opt.traceRuns(adaptiveJobs, adaptiveRes)
	opt.traceRecost("adaptive", map[string]any{"points": len(points), "formats": len(out.Formats)})
	// Audits replay each adaptive cell on its recorded fabric (in the
	// config, like the trace replays) — counterfactual quotes are only
	// truthful where the controller actually priced (DESIGN.md §8).
	if err := opt.auditRuns(adaptiveJobs, adaptiveRes); err != nil {
		return nil, fmt.Errorf("adaptive audit: %w", err)
	}

	for pi, p := range points {
		for fi, f := range out.Formats {
			fabric := netsim.NewFabric(p.topo)
			for _, tr := range p.traces {
				fabric.SetTrace(tr)
			}
			cfg := staticJobs[fi].Config
			cum := recostCum(staticRes[fi], &cfg, fabric)
			tta, reached := ttaFromCum(staticRes[fi], cum, w.TargetAcc)
			out.Cells = append(out.Cells, AdaptiveCell{
				Fabric: p.fabric, Scheme: StaticSchemeName(f), BandwidthBps: p.bw,
				TTASeconds: tta, Reached: reached, FinalAcc: staticRes[fi].FinalAcc,
			})
		}
		res := adaptiveRes[pi]
		tta, reached := res.Curve.TTA(w.TargetAcc)
		out.Cells = append(out.Cells, AdaptiveCell{
			Fabric: p.fabric, Scheme: AdaptiveSchemeName, BandwidthBps: p.bw,
			TTASeconds: tta, Reached: reached, FinalAcc: res.FinalAcc,
			Decisions: adaptive.SummarizeCounts(res.AdaptiveDecisions),
			Switches:  res.AdaptiveSwitches,
		})
	}
	return out, nil
}

// Cell fetches one grid entry.
func (r *AdaptiveExpResult) Cell(fabric, scheme string, bw float64) (AdaptiveCell, bool) {
	for _, c := range r.Cells {
		if c.Fabric == fabric && c.Scheme == scheme && c.BandwidthBps == bw {
			return c, true
		}
	}
	return AdaptiveCell{}, false
}

// BestStaticTTA returns the lowest static-format TTA at an operating
// point. Formats that never reached the target are skipped: their
// TTASeconds is a truncated end-of-run lower bound, not a time-to-accuracy
// it would be meaningful to call "best".
func (r *AdaptiveExpResult) BestStaticTTA(fabric string, bw float64) (float64, bool) {
	best, found := math.Inf(1), false
	for _, f := range r.Formats {
		if c, ok := r.Cell(fabric, StaticSchemeName(f), bw); ok && c.Reached && c.TTASeconds < best {
			best, found = c.TTASeconds, true
		}
	}
	return best, found
}

// bandwidths returns the operating points of one fabric part.
func (r *AdaptiveExpResult) bandwidths(fabric string) []float64 {
	if fabric == "varbw" {
		return r.VarBWBandwidths
	}
	return r.TwoRackBandwidths
}

// Render prints one TTA table per fabric part plus the controller's
// decision log summary.
func (r *AdaptiveExpResult) Render() string {
	var b strings.Builder
	parts := []struct{ id, title string }{
		{"varbw", fmt.Sprintf("Fig. 4 WAN, bottleneck oscillating 1.0↔%.1f×", r.DipScale)},
		{"two-rack", "two-rack WAN, single bottleneck link"},
	}
	for _, part := range parts {
		bws := r.bandwidths(part.id)
		headers := []string{"scheme \\ bandwidth"}
		for _, bw := range bws {
			headers = append(headers, bandwidthLabel(bw))
		}
		tb := metrics.NewTable(fmt.Sprintf("Adaptive — TTA on %s (%s; %s/link latency; best static vs controller)",
			part.title, r.Model, metrics.FormatSeconds(r.LatencySec)), headers...)
		schemes := []string{AdaptiveSchemeName}
		for _, f := range r.Formats {
			schemes = append(schemes, StaticSchemeName(f))
		}
		for _, scheme := range schemes {
			row := []string{scheme}
			for _, bw := range bws {
				if c, ok := r.Cell(part.id, scheme, bw); ok {
					cell := metrics.FormatSeconds(c.TTASeconds)
					if !c.Reached {
						cell = ">" + cell
					}
					if best, ok := r.BestStaticTTA(part.id, bw); ok && scheme == AdaptiveSchemeName {
						cell += fmt.Sprintf(" (%.2f× best static)", metrics.Speedup(c.TTASeconds, best))
					}
					row = append(row, cell)
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("controller decisions (rounds per format, completed switches):\n")
	for _, part := range parts {
		for _, bw := range r.bandwidths(part.id) {
			if c, ok := r.Cell(part.id, AdaptiveSchemeName, bw); ok {
				fmt.Fprintf(&b, "  %-9s %-9s %s, %d switches\n",
					part.id, bandwidthLabel(bw), c.Decisions, c.Switches)
			}
		}
	}
	return b.String()
}
