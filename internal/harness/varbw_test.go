package harness

import (
	"strings"
	"testing"
)

func TestAblationVarBWQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunAblationVarBW(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if res.PeriodSec <= 0 {
		t.Fatal("oscillation period not derived")
	}
	// PacTrain's small payloads must ride out the dips better than the
	// full-size baseline.
	var base, pac float64
	for _, row := range res.Rows {
		switch row.Scheme {
		case "all-reduce":
			base = row.TTASeconds
		case "pactrain-ternary":
			pac = row.TTASeconds
		}
	}
	if pac >= base {
		t.Fatalf("PacTrain TTA %v should beat all-reduce %v under variable bandwidth", pac, base)
	}
	if !strings.Contains(res.Render(), "variable-constrained") {
		t.Fatal("render malformed")
	}
}
