package harness

import (
	"fmt"
	"math"

	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
)

// VarBWRow is one scheme's result under the oscillating-bandwidth trace.
type VarBWRow struct {
	Scheme     string
	TTASeconds float64
	Reached    bool
	FinalAcc   float64
}

// VarBWResult reproduces the paper's "variable-constrained network
// bandwidth" scenario (§I, §IV): the two inter-switch bottleneck links of
// Fig. 4 oscillate between full speed and a deep dip, as WAN links between
// small clusters do. Schemes with smaller payloads ride out the dips;
// full-size all-reduce stalls in them.
type VarBWResult struct {
	Rows      []VarBWRow
	Model     string
	PeriodSec float64
	DipScale  float64
}

// RunAblationVarBW measures TTA for the Fig. 3 schemes under an
// oscillating bottleneck: full bandwidth and a 10× dip alternating with a
// period sized to the baseline's run length, so every run experiences
// several dips.
//
// No scheme trains under the oscillation: convergence is bandwidth-
// independent (synchronization is bit-exact at any link speed), so each
// scheme's recorded untraced run — typically already trained by another
// experiment sharing the engine — is re-costed on a traced fabric, which
// reproduces a traced training's clock exactly
// (TestRecostReproducesTrainingWithTraces).
func RunAblationVarBW(opt Options) (*VarBWResult, error) {
	opt.defaults()
	eng := opt.engine()
	w := opt.workloads()[0]
	out := &VarBWResult{Model: w.Model, DipScale: 0.1}
	opt.logf("Ablation: variable-constrained bandwidth on %s", w.Model)

	// Size the oscillation period from an untraced baseline run. The probe
	// is the plain all-reduce job, so any experiment sharing the engine has
	// already paid for it.
	probe, err := eng.Run(trainJob("ablation-varbw probe", w, "all-reduce", opt))
	if err != nil {
		return nil, fmt.Errorf("varbw probe: %w", err)
	}
	period := probe.SimSeconds / 6
	if period <= 0 {
		period = 1
	}
	out.PeriodSec = period

	mkTraces := func(topo *netsim.Topology) []*netsim.BandwidthTrace {
		var traces []*netsim.BandwidthTrace
		for _, li := range topo.InterSwitchLinks() {
			var segs []netsim.TraceSegment
			// Alternate full/dip windows long enough to outlast any run.
			for k := 0; k < 4096; k++ {
				scale := 1.0
				if k%2 == 1 {
					scale = out.DipScale
				}
				segs = append(segs, netsim.TraceSegment{UntilSec: float64(k+1) * period, Scale: scale})
			}
			segs = append(segs, netsim.TraceSegment{UntilSec: math.Inf(1), Scale: 1})
			traces = append(traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: segs})
		}
		return traces
	}

	schemes := []string{"all-reduce", "fp16", "pactrain-ternary"}
	var jobs []engine.Job
	for _, scheme := range schemes {
		jobs = append(jobs, trainJob("ablation-varbw", w, scheme, opt))
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("varbw: %w", err)
	}
	opt.traceRuns(jobs, results)
	opt.traceRecost("ablation-varbw", map[string]any{"period_sec": period})
	for si, scheme := range schemes {
		res, cfg := results[si], jobs[si].Config
		topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: cfg.BottleneckBps})
		fabric := netsim.NewFabric(topo)
		for _, tr := range mkTraces(topo) {
			fabric.SetTrace(tr)
		}
		cum := recostCum(res, &cfg, fabric)
		tta, reached := ttaFromCum(res, cum, w.TargetAcc)
		out.Rows = append(out.Rows, VarBWRow{
			Scheme: scheme, TTASeconds: tta, Reached: reached, FinalAcc: res.FinalAcc,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *VarBWResult) Render() string {
	tb := metrics.NewTable(
		fmt.Sprintf("Ablation — variable-constrained bandwidth (%s; bottleneck oscillates 1.0↔%.1f× every %s)",
			r.Model, r.DipScale, metrics.FormatSeconds(r.PeriodSec)),
		"scheme", "TTA", "reached", "final acc", "speedup")
	var base float64
	for _, row := range r.Rows {
		if row.Scheme == "all-reduce" {
			base = row.TTASeconds
		}
	}
	for _, row := range r.Rows {
		tb.AddRow(DisplayName(row.Scheme), metrics.FormatSeconds(row.TTASeconds),
			fmt.Sprintf("%v", row.Reached), fmt.Sprintf("%.3f", row.FinalAcc),
			fmt.Sprintf("%.2f×", metrics.Speedup(row.TTASeconds, base)))
	}
	return tb.String()
}
