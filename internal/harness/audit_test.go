package harness

import (
	"strings"
	"testing"

	"pactrain/internal/audit"
	"pactrain/internal/core"
	"pactrain/internal/harness/engine"
)

// TestAuditRunAdaptiveQuick audits the full adaptive experiment grid: every
// adaptive cell and every static baseline collects one report, the adaptive
// ledgers reproduce the experiment's headline invariant (chosen at or below
// best static, up to the hysteresis margin bound) from the recorded logs
// alone, and the single-candidate statics show zero regret by construction.
func TestAuditRunAdaptiveQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.Auditor = audit.NewCollector()
	res, err := RunAdaptive(opt)
	if err != nil {
		t.Fatal(err)
	}
	reports := opt.Auditor.Reports()
	points := len(res.VarBWBandwidths) + len(res.TwoRackBandwidths)
	if want := points + len(res.Formats); len(reports) != want {
		t.Fatalf("collected %d audit reports, want %d (every cell and baseline)", len(reports), want)
	}
	statics, adaptives := 0, 0
	for _, rep := range reports {
		if rep.DecidedRounds == 0 {
			t.Fatalf("%s: empty ledger", rep.Label)
		}
		if rep.MaxCalibrationError() != 0 {
			t.Fatalf("%s: calibration error %v at zero staleness", rep.Label, rep.MaxCalibrationError())
		}
		if len(rep.Candidates) == 1 {
			statics++
			// One candidate: chosen, oracle, and best static coincide.
			if rep.OracleRegretSec != 0 || rep.StaticRegretSec != 0 || len(rep.Switches) != 0 {
				t.Fatalf("%s: single-candidate ledger has regret: %+v", rep.Label, rep)
			}
			continue
		}
		adaptives++
		if rep.ChosenSec > rep.BestStaticSec*rep.MarginBound*(1+1e-12) {
			t.Fatalf("%s: chosen %v exceeds best static %v beyond margin bound %v",
				rep.Label, rep.ChosenSec, rep.BestStaticSec, rep.MarginBound)
		}
		if rep.OracleSec > rep.ChosenSec {
			t.Fatalf("%s: oracle %v above chosen %v", rep.Label, rep.OracleSec, rep.ChosenSec)
		}
	}
	if statics != len(res.Formats) || adaptives != points {
		t.Fatalf("report mix %d static / %d adaptive, want %d / %d", statics, adaptives, len(res.Formats), points)
	}
	// On the oscillating fabrics the controller beats every static season
	// somewhere — the ledger-side echo of the TTA headline.
	beat := false
	for _, rep := range reports {
		if len(rep.Candidates) > 1 && rep.StaticRegretSec < 0 {
			beat = true
		}
	}
	if !beat {
		t.Fatal("no adaptive ledger beat its best static counterfactual")
	}
	if !strings.Contains(audit.Summary(reports), "counterfactual ledger") {
		t.Fatal("summary missing ledger tables")
	}
}

// TestAuditArtifactIdenticalAcrossEngineParallelism pins the acceptance
// criterion: the serialized audit artifact of the adaptive experiment is
// byte-identical whether the grid trains serially or four jobs at a time.
func TestAuditArtifactIdenticalAcrossEngineParallelism(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	artifact := func(parallelism int) ([]byte, string) {
		opt := quickOpts()
		opt.Engine = nil
		opt.Parallelism = parallelism
		opt.Auditor = audit.NewCollector()
		rep, err := RunAdaptive(opt)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := audit.MarshalReports(opt.Auditor.Reports())
		if err != nil {
			t.Fatal(err)
		}
		js, err := ReportJSON("adaptive", opt, rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw, string(js)
	}
	a1, r1 := artifact(1)
	a4, r4 := artifact(4)
	if string(a1) != string(a4) {
		t.Fatalf("audit artifact differs across engine parallelism (%d vs %d bytes)", len(a1), len(a4))
	}
	// The experiment report itself must also be untouched by auditing.
	if r1 != r4 {
		t.Fatal("experiment report differs across engine parallelism with auditor attached")
	}
}

// TestAuditObservationOnly pins the zero-perturbation contract: running the
// adaptive experiment with and without an auditor yields byte-identical
// reports, and the audit never changes a config fingerprint.
func TestAuditObservationOnly(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	run := func(audited bool) string {
		opt := quickOpts()
		opt.Engine = engine.New(engine.Options{Parallelism: 1})
		if audited {
			opt.Auditor = audit.NewCollector()
		}
		rep, err := RunAdaptive(opt)
		if err != nil {
			t.Fatal(err)
		}
		js, err := ReportJSON("adaptive", opt, rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(js)
	}
	if run(false) != run(true) {
		t.Fatal("auditing perturbed the experiment report")
	}
}

// TestAuditRunLabel covers the single-run entry point the CLIs use.
func TestAuditRunLabel(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	cfg := adaptiveWANConfig(quickOpts(), 2)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AuditRun("wan dip", cfg, res, audit.Options{IncludeRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "wan dip" {
		t.Fatalf("label %q", rep.Label)
	}
	if rep.DecidedRounds == 0 || len(rep.Rounds) == 0 {
		t.Fatal("empty ledger for adaptive WAN run")
	}
}
