package harness

import (
	"math"
	"strings"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/simclock"
)

// stragglerTrainConfig builds a config that trains with every timeline
// feature on: edge-grade compute, a 2× one-slow-rank straggler, jitter, and
// per-bucket overlap, on the Fig. 4 fabric at 100 Mbps.
func stragglerTrainConfig(w Workload, scheme string, opt Options) core.Config {
	cfg := baseConfig(w, scheme, opt)
	cfg.Compute = StragglerComputeModel(cfg.Profile.FLOPsPerSample)
	cfg.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: stragglerBandwidth})
	cfg.BottleneckBps = stragglerBandwidth
	cfg.Overlap = ddp.OverlapBackward
	cfg.RankCompute = ddp.RankCompute{
		Multipliers: netsim.OneSlowRank(opt.World, 2.0),
		JitterFrac:  0.1,
		JitterSeed:  11,
	}
	return cfg
}

// TestStragglerRecostReproducesTraining extends the exactness contract to
// per-rank logs: a run trained with heterogeneous rank clocks (straggler
// multipliers plus jitter) and per-bucket backward overlap must be
// reproduced bit-for-bit — SimSeconds and every curve point — by the
// timeline re-coster on an identical fabric, because training and re-cost
// evaluate the same simclock expressions at the same absolute times.
func TestStragglerRecostReproducesTraining(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	for _, scheme := range []string{"all-reduce", "pactrain-ternary"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			cfg := stragglerTrainConfig(w, scheme, opt)
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: stragglerBandwidth})
			cum := recostCum(res, &cfg, netsim.NewFabric(topo))
			if got := cum[len(cum)-1]; got != res.SimSeconds {
				t.Fatalf("re-costed end time %v != recorded SimSeconds %v (Δ %g)",
					got, res.SimSeconds, got-res.SimSeconds)
			}
			for _, p := range res.Curve.Points {
				if cum[p.Iter] != p.SimTime {
					t.Fatalf("re-costed time at iter %d = %v, recorded %v",
						p.Iter, cum[p.Iter], p.SimTime)
				}
			}
		})
	}
}

// TestStragglerRecostCrossProfile is the train-once economy extended across
// straggler profiles: a log recorded on the uniform serialized
// configuration, re-costed under a straggler-and-overlap config, must
// reproduce a real training under that config bit-for-bit — the recorded op
// sequence depends only on gradient values, never on clocks, so one
// recording prices every cell of the straggler grid (this is what lets
// RunStragglers share its trainings with Fig. 3).
func TestStragglerRecostCrossProfile(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]

	straggler := stragglerTrainConfig(w, "pactrain-ternary", opt)
	trained, err := core.Run(straggler)
	if err != nil {
		t.Fatal(err)
	}

	uniform, err := testEngine.Run(trainJob("straggler-cross", w, "pactrain-ternary", opt))
	if err != nil {
		t.Fatal(err)
	}
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: stragglerBandwidth})
	cum := recostCum(uniform, &straggler, netsim.NewFabric(topo))
	if got := cum[len(cum)-1]; got != trained.SimSeconds {
		t.Fatalf("uniform log re-costed under straggler profile = %v, straggler training recorded %v (Δ %g)",
			got, trained.SimSeconds, got-trained.SimSeconds)
	}
	for _, p := range trained.Curve.Points {
		if cum[p.Iter] != p.SimTime {
			t.Fatalf("re-costed time at iter %d = %v, straggler training recorded %v",
				p.Iter, cum[p.Iter], p.SimTime)
		}
	}
}

// TestStragglerRecostMatchesRecordedLaunches cross-checks the two views of
// a per-rank log: the re-coster *derives* every op's launch from the config
// (so it can re-price under other profiles), while training *recorded* the
// synchronized launch each op actually started at. Replaying the ops at
// their recorded launch times must land on the same final clock.
func TestStragglerRecostMatchesRecordedLaunches(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	opt := quickOpts()
	opt.defaults()
	w := QuickWorkloads()[0]
	cfg := stragglerTrainConfig(w, "all-reduce", opt)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: stragglerBandwidth})
	fabric := netsim.NewFabric(topo)
	hosts := topo.Hosts()[:cfg.World]
	alg := collective.MustAlgorithm(cfg.Collective)
	prefix := simclock.PrefixShares(res.CommLog.BucketElems)
	fwd := cfg.Compute.ForwardSeconds(cfg.BatchSize)
	bwd := cfg.Compute.BackwardSeconds(cfg.BatchSize)

	// Rank 0's clock, advanced with recorded launches instead of derived
	// ones.
	t0 := 0.0
	for k, ops := range res.CommLog.Iters {
		s := cfg.RankCompute.Scale(0, k)
		sched := simclock.NewIterSchedule(t0, fwd*s, bwd*s, prefix)
		commEnd := math.Inf(-1)
		for _, op := range ops {
			if op.LaunchAt < commEnd {
				t.Fatalf("iter %d: recorded launch %v before previous op end %v", k, op.LaunchAt, commEnd)
			}
			commEnd = op.LaunchAt + core.CostOp(op, alg, fabric, hosts, op.LaunchAt)
		}
		t0 = sched.Finish(commEnd)
	}
	if t0 != res.SimSeconds {
		t.Fatalf("recorded-launch replay = %v, training recorded %v (Δ %g)",
			t0, res.SimSeconds, t0-res.SimSeconds)
	}
}

// TestRunStragglersQuick runs the experiment grid and asserts its headline:
// under a 2× one-slow-rank straggler at 100 Mbps, PacTrain's degraded TTA
// stays strictly below dense-fp32's — the compression advantage survives
// compute heterogeneity in both overlap modes.
func TestRunStragglersQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunStragglers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(res.Schemes) * len(res.Overlaps) * len(res.Severities)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	for _, overlap := range res.Overlaps {
		// Acceptance: PacTrain degrades strictly less than dense-fp32 under
		// the 2× straggler — its TTA under heterogeneity stays strictly
		// below the dense baseline's.
		pac, ok1 := res.Cell("pactrain-ternary", overlap, 2)
		dense, ok2 := res.Cell("all-reduce", overlap, 2)
		if !ok1 || !ok2 {
			t.Fatalf("missing 2× cells for overlap=%s", overlap)
		}
		if pac.TTASeconds >= dense.TTASeconds {
			t.Fatalf("overlap=%s: PacTrain TTA %v must stay strictly below dense %v under the 2× straggler",
				overlap, pac.TTASeconds, dense.TTASeconds)
		}
		// A straggler can only slow a run: TTA grows strictly with severity.
		for _, scheme := range res.Schemes {
			prev := 0.0
			for _, sev := range res.Severities {
				c, ok := res.Cell(scheme, overlap, sev)
				if !ok {
					t.Fatalf("missing cell %s/%s/%v", scheme, overlap, sev)
				}
				if c.TTASeconds <= prev {
					t.Fatalf("%s overlap=%s: TTA %v at %g× not above %v",
						scheme, overlap, c.TTASeconds, sev, prev)
				}
				if c.Degradation < 1 {
					t.Fatalf("%s overlap=%s %g×: degradation %v < 1", scheme, overlap, sev, c.Degradation)
				}
				prev = c.TTASeconds
			}
		}
	}
	// Overlap can only help: each scheme's 2× cell is no worse overlapped.
	for _, scheme := range res.Schemes {
		serial, _ := res.Cell(scheme, "none", 2)
		overlapped, _ := res.Cell(scheme, "backward", 2)
		if overlapped.TTASeconds > serial.TTASeconds {
			t.Fatalf("%s: overlap worsened the 2× straggler TTA (%v > %v)",
				scheme, overlapped.TTASeconds, serial.TTASeconds)
		}
	}
	out := res.Render()
	for _, want := range []string{"Stragglers", "PacTrain", "overlap=backward", "100 Mbps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkStragglersGrid regenerates the straggler experiment at reduced
// scale, keeping the timeline re-coster on the bench-smoke radar alongside
// the other experiment benchmarks (bench_test.go).
func BenchmarkStragglersGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunStragglers(Options{Quick: true, World: 4, Samples: 256, Seed: 2, Engine: testEngine})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("empty grid")
		}
	}
}
