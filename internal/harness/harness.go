// Package harness drives the experiments that regenerate every table and
// figure of the PacTrain paper's evaluation (§IV): the method-property
// matrix (Table 1), end-to-end relative TTA across bandwidths (Fig. 3),
// accuracy-vs-time curves for ResNet152 (Fig. 5), the pruning-ratio sweep
// (Fig. 6), and the design-choice ablations listed in DESIGN.md §3.
//
// Each experiment trains lite-twin models for real and costs communication
// through the simulated Fig. 4 fabric. Because the convergence trajectory
// is bandwidth-independent (the synchronization is bit-exact regardless of
// link speed), bandwidth sweeps train once per (model, scheme) pair and
// re-cost the recorded per-iteration communication under each bandwidth —
// producing identical results to re-running at a fraction of the wall
// time.
package harness

import (
	"fmt"
	"io"

	"pactrain/internal/core"
	"pactrain/internal/data"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
)

// Workload couples a paper model with its calibrated training recipe and
// target accuracy. Targets are per-model, as in the paper's TTA definition
// (Fig. 5 names 84% for ResNet152), and sit comfortably below what the
// *pruned* twin reaches — the paper's own targets likewise sit well under
// the models' final accuracies. Width sets the lite twin's base channel
// count: wide enough that 50% pruning costs little accuracy, mirroring the
// overcapacity of the real 11M–144M-parameter models (DESIGN.md §1).
type Workload struct {
	Model     string
	LR        float64
	TargetAcc float64
	Epochs    int
	Width     int
}

// PaperWorkloads lists the four evaluation models with recipes calibrated
// on the synthetic task (see DESIGN.md §1 on the substitution).
func PaperWorkloads() []Workload {
	return []Workload{
		{Model: "VGG19", LR: 0.05, TargetAcc: 0.80, Epochs: 10, Width: 12},
		{Model: "ResNet18", LR: 0.10, TargetAcc: 0.60, Epochs: 12, Width: 10},
		{Model: "ResNet152", LR: 0.10, TargetAcc: 0.68, Epochs: 12, Width: 10},
		{Model: "ViT-Base-16", LR: 0.05, TargetAcc: 0.50, Epochs: 12, Width: 12},
	}
}

// QuickWorkloads is a fast subset for smoke runs: the MLP twin stands in
// for every profile so a full experiment finishes in seconds.
func QuickWorkloads() []Workload {
	return []Workload{
		{Model: "MLP", LR: 0.05, TargetAcc: 0.70, Epochs: 6, Width: 8},
	}
}

// Options configures an experiment run.
type Options struct {
	// Quick substitutes the fast workload set and smaller sweeps.
	Quick bool
	// World is the worker count (default 8, the paper's testbed size).
	World int
	// Samples is the synthetic training-set size (default 1024).
	Samples int
	// Seed drives all randomness.
	Seed uint64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (o *Options) defaults() {
	if o.World == 0 {
		o.World = 8
	}
	if o.Samples == 0 {
		if o.Quick {
			o.Samples = 320
		} else {
			o.Samples = 768
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

func (o *Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

func (o *Options) workloads() []Workload {
	if o.Quick {
		return QuickWorkloads()
	}
	return PaperWorkloads()
}

// baseConfig builds the core training configuration for a workload/scheme
// pair. Batch sizes divide the shards exactly so every iteration has the
// same batch size, which keeps re-costing exact.
func baseConfig(w Workload, scheme string, opt Options) core.Config {
	cfg := core.DefaultConfig(w.Model, scheme)
	cfg.World = opt.World
	if w.Width > 0 {
		cfg.Lite.Width = w.Width
	}
	cfg.Data = data.CIFAR10Like(opt.Samples, 11+opt.Seed)
	cfg.TestSamples = 200
	cfg.Epochs = w.Epochs
	if opt.Quick {
		cfg.Epochs = min(w.Epochs, 6)
	}
	cfg.BatchSize = 8
	cfg.LR = w.LR
	cfg.TargetAcc = w.TargetAcc
	cfg.Seed = opt.Seed
	cfg.RecordComm = true
	cfg.BottleneckBps = 1 * netsim.Gbps
	// Evaluate twice per epoch so TTA crossings resolve at sub-epoch
	// granularity.
	itersPerEpoch := cfg.Data.Samples / (cfg.World * cfg.BatchSize)
	if itersPerEpoch > 1 {
		cfg.EvalEvery = itersPerEpoch / 2
	}
	return cfg
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig3Schemes lists the aggregation schemes of Fig. 3 in plot order. The
// paper's "PacTrain" bar is the pruning+ternary configuration of §III-D.
func Fig3Schemes() []string {
	return []string{"all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain-ternary"}
}

// DisplayName maps scheme identifiers to the labels used in the paper's
// figures.
func DisplayName(scheme string) string {
	switch scheme {
	case "pactrain-ternary", "pactrain":
		return "PacTrain"
	case "terngrad":
		return "Terngrad"
	case "thc":
		return "THC"
	case "dgc-0.01":
		return "DGC"
	case "omnireduce":
		return "OmniReduce"
	case "zen":
		return "Zen"
	}
	return scheme
}

// recostTTA recomputes a recorded run's accuracy-vs-time curve under a
// different bottleneck bandwidth and returns the time to target. The
// convergence trajectory (accuracy per iteration) is reused; only the
// clock is rebuilt from compute time plus the re-priced communication ops.
func recostTTA(res *core.Result, cfg *core.Config, bottleneck float64, target float64) (float64, bool) {
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bottleneck})
	fabric := netsim.NewFabric(topo)
	hosts := topo.Hosts()[:cfg.World]
	computeIter := cfg.Compute.IterSeconds(cfg.BatchSize)

	// Cumulative simulated time per iteration.
	cum := make([]float64, len(res.CommLog.Iters)+1)
	t := 0.0
	for i, ops := range res.CommLog.Iters {
		t += computeIter
		t += core.CostIter(ops, fabric, hosts, t)
		cum[i+1] = t
	}
	for _, p := range res.Curve.Points {
		if p.Acc >= target {
			if p.Iter < len(cum) {
				return cum[p.Iter], true
			}
			return cum[len(cum)-1], true
		}
	}
	return cum[len(cum)-1], false
}

// trainOnce runs one (workload, scheme) training with communication
// recording, logging progress.
func trainOnce(w Workload, scheme string, opt Options) (*core.Result, core.Config, error) {
	cfg := baseConfig(w, scheme, opt)
	opt.logf("  training %s / %s (%d epochs, world %d)...", w.Model, DisplayName(scheme), cfg.Epochs, cfg.World)
	res, err := core.Run(cfg)
	if err != nil {
		return nil, cfg, err
	}
	opt.logf("    best acc %.3f, %d iters, stable fraction %.2f",
		res.BestAcc, res.Iterations, res.StableFraction)
	return res, cfg, nil
}

// renderRelTTA formats a relative-TTA cell, flagging runs that never
// reached the target the way the paper's log-scale bars saturate.
func renderRelTTA(rel float64, reached bool) string {
	if !reached {
		return fmt.Sprintf(">%.3f", rel)
	}
	return fmt.Sprintf("%.3f", rel)
}

// bandwidthLabel pretty-prints a link speed.
func bandwidthLabel(bps float64) string {
	if bps >= netsim.Gbps {
		return fmt.Sprintf("%g Gbps", bps/netsim.Gbps)
	}
	return fmt.Sprintf("%g Mbps", bps/netsim.Mbps)
}

// profileFor fetches the communication profile for table rendering.
func profileFor(model string) nn.CommProfile {
	p, err := nn.ProfileByName(model)
	if err != nil {
		return nn.CommProfile{Name: model, Params: 1_000_000, FLOPsPerSample: 100_000_000}
	}
	return p
}

// tableFromCurve renders a curve as a two-column table (time, accuracy).
func tableFromCurve(title string, c *metrics.Curve) *metrics.Table {
	tb := metrics.NewTable(title, "sim time", "accuracy")
	for _, p := range c.Points {
		tb.AddRow(metrics.FormatSeconds(p.SimTime), fmt.Sprintf("%.3f", p.Acc))
	}
	return tb
}
