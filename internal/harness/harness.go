// Package harness drives the experiments that regenerate every table and
// figure of the PacTrain paper's evaluation (§IV): the method-property
// matrix (Table 1), end-to-end relative TTA across bandwidths (Fig. 3),
// accuracy-vs-time curves for ResNet152 (Fig. 5), the pruning-ratio sweep
// (Fig. 6), and the design-choice ablations listed in DESIGN.md §3.
//
// Each experiment trains lite-twin models for real and costs communication
// through the simulated Fig. 4 fabric. Because the convergence trajectory
// is bandwidth-independent (the synchronization is bit-exact regardless of
// link speed), bandwidth sweeps train once per (model, scheme) pair and
// re-cost the recorded per-iteration communication under each bandwidth —
// producing identical results to re-running at a fraction of the wall
// time.
//
// Every experiment expresses its grid as declarative jobs submitted to the
// shared scheduler in internal/harness/engine, which deduplicates identical
// (model, scheme, seed) trainings across experiments, bounds parallelism,
// and optionally caches results on disk (Options.Parallelism, CacheDir,
// Engine). Jobs are submitted and assembled in a fixed order, so reports
// are byte-identical to the historical serial path at any parallelism.
package harness

import (
	"fmt"
	"io"
	"math"

	"pactrain/internal/audit"
	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/obs"
	"pactrain/internal/simclock"
)

// Workload couples a paper model with its calibrated training recipe and
// target accuracy. Targets are per-model, as in the paper's TTA definition
// (Fig. 5 names 84% for ResNet152), and sit comfortably below what the
// *pruned* twin reaches — the paper's own targets likewise sit well under
// the models' final accuracies. Width sets the lite twin's base channel
// count: wide enough that 50% pruning costs little accuracy, mirroring the
// overcapacity of the real 11M–144M-parameter models (DESIGN.md §1).
type Workload struct {
	Model     string
	LR        float64
	TargetAcc float64
	Epochs    int
	Width     int
}

// PaperWorkloads lists the four evaluation models with recipes calibrated
// on the synthetic task (see DESIGN.md §1 on the substitution).
func PaperWorkloads() []Workload {
	return []Workload{
		{Model: "VGG19", LR: 0.05, TargetAcc: 0.80, Epochs: 10, Width: 12},
		{Model: "ResNet18", LR: 0.10, TargetAcc: 0.60, Epochs: 12, Width: 10},
		{Model: "ResNet152", LR: 0.10, TargetAcc: 0.68, Epochs: 12, Width: 10},
		{Model: "ViT-Base-16", LR: 0.05, TargetAcc: 0.50, Epochs: 12, Width: 12},
	}
}

// QuickWorkloads is a fast subset for smoke runs: the MLP twin stands in
// for every profile so a full experiment finishes in seconds.
func QuickWorkloads() []Workload {
	return []Workload{
		{Model: "MLP", LR: 0.05, TargetAcc: 0.70, Epochs: 6, Width: 8},
	}
}

// Options configures an experiment run.
type Options struct {
	// Quick substitutes the fast workload set and smaller sweeps.
	Quick bool
	// World is the worker count (default 8, the paper's testbed size).
	World int
	// Samples is the synthetic training-set size (default 768, or 320 in
	// Quick mode).
	Samples int
	// Seed drives all randomness.
	Seed uint64
	// Collective selects the collective algorithm every job config trains
	// and re-costs under ("ring", "tree", "hierarchical"; empty = ring, the
	// paper's flat ring and the historical behavior). "ring" normalizes to
	// empty so both spellings share cache keys and coalesce in the service.
	Collective string
	// Overlap selects the backward-overlap model every job config trains
	// and re-costs under ("none", "backward"; empty = none, the historical
	// serialized clock). "none" normalizes to empty so both spellings share
	// cache keys and coalesce in the service. "backward" prices each DDP
	// bucket's collective at its per-rank gradient-ready barrier (DESIGN.md
	// §9).
	Overlap string
	// Log receives progress lines; nil discards them.
	Log io.Writer

	// Parallelism bounds concurrent training jobs (default 1, the serial
	// pre-engine behavior). Reports are byte-identical at any setting: jobs
	// are keyed deterministically and assembled in submission order.
	Parallelism int
	// CacheDir enables the on-disk result cache when non-empty, so repeated
	// invocations re-cost recorded runs instead of re-training them.
	CacheDir string
	// Engine, when non-nil, is the shared scheduler to submit jobs to;
	// sharing one engine across experiments deduplicates identical
	// (model, scheme, seed) trainings between them. When nil, each
	// experiment builds a private engine from Parallelism/CacheDir/Log.
	Engine *engine.Engine

	// Tracer, when non-nil, receives a per-rank span replay of every run an
	// experiment trains or re-costs (trace.go). Observation-only: reports
	// and fingerprints are byte-identical with or without it, and serve's
	// coalescing key ignores it (pointer field, like Engine).
	Tracer *obs.Tracer

	// Auditor, when non-nil, collects a counterfactual decision audit of
	// every controller-driven run an experiment trains (audit.go; currently
	// the adaptive experiment's cells and static baselines). Observation-only
	// like Tracer: reports and fingerprints are byte-identical with or
	// without it, and serve's coalescing key ignores it.
	Auditor *audit.Collector
	// AuditStaleness ages the audit's controller-view pricing by this many
	// seconds (audit.Options.StalenessSec): 0 prices at launch, where the
	// calibration error is exactly zero on the recorded fabric.
	AuditStaleness float64
}

// Normalized returns the options with every default applied — the
// canonical form under which two Options describe the same experiment
// grid. The serve subsystem coalesces identical submissions by comparing
// the value fields (Quick, World, Samples, Seed, Collective) of normalized
// options.
func (o Options) Normalized() Options {
	o.defaults()
	return o
}

func (o *Options) defaults() {
	if o.World == 0 {
		o.World = 8
	}
	if o.Samples == 0 {
		if o.Quick {
			o.Samples = 320
		} else {
			o.Samples = 768
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Collective == collective.DefaultAlgorithm {
		o.Collective = ""
	}
	if o.Overlap == ddp.OverlapNone.String() {
		o.Overlap = ""
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
}

// NewEngine builds the scheduler an Options describes. The experiment
// drivers (cmd/pactrain-bench, tests) construct one and set Options.Engine
// so every experiment in the process shares its dedup table and cache.
func NewEngine(opt Options) *engine.Engine {
	opt.defaults()
	return engine.New(engine.Options{
		Parallelism: opt.Parallelism,
		CacheDir:    opt.CacheDir,
		Log:         opt.Log,
	})
}

// engine returns the shared scheduler, or a private one for a standalone
// experiment call.
func (o *Options) engine() *engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return NewEngine(*o)
}

func (o *Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

func (o *Options) workloads() []Workload {
	if o.Quick {
		return QuickWorkloads()
	}
	return PaperWorkloads()
}

// baseConfig builds the core training configuration for a workload/scheme
// pair. Batch sizes divide the shards exactly so every iteration has the
// same batch size, which keeps re-costing exact.
func baseConfig(w Workload, scheme string, opt Options) core.Config {
	cfg := core.DefaultConfig(w.Model, scheme)
	cfg.World = opt.World
	if w.Width > 0 {
		cfg.Lite.Width = w.Width
	}
	cfg.Data = data.CIFAR10Like(opt.Samples, 11+opt.Seed)
	cfg.TestSamples = 200
	cfg.Epochs = w.Epochs
	if opt.Quick {
		cfg.Epochs = min(w.Epochs, 6)
	}
	cfg.BatchSize = 8
	// Round the dataset up so every shard divides into full batches. This
	// is the invariant the comment above promises: training prices a short
	// final batch by its actual size while recostCum charges the constant
	// full-batch compute time, so a non-dividing sample count would break
	// re-costing exactness. The presets (768/320/test sizes) already
	// divide; only odd -samples values are padded.
	chunk := cfg.World * cfg.BatchSize
	cfg.Data.Samples = ((cfg.Data.Samples + chunk - 1) / chunk) * chunk
	cfg.LR = w.LR
	cfg.TargetAcc = w.TargetAcc
	cfg.Seed = opt.Seed
	cfg.Collective = opt.Collective
	// Options.Overlap was validated by every public entry point (the CLIs
	// exit 2, the service rejects with 400); MustOverlap flags programmer
	// error on the direct-API path.
	cfg.Overlap = ddp.MustOverlap(opt.Overlap)
	cfg.RecordComm = true
	cfg.BottleneckBps = 1 * netsim.Gbps
	// Evaluate twice per epoch so TTA crossings resolve at sub-epoch
	// granularity.
	itersPerEpoch := cfg.Data.Samples / (cfg.World * cfg.BatchSize)
	if itersPerEpoch > 1 {
		cfg.EvalEvery = itersPerEpoch / 2
	}
	return cfg
}

// Fig3Schemes lists the aggregation schemes of Fig. 3 in plot order. The
// paper's "PacTrain" bar is the pruning+ternary configuration of §III-D.
func Fig3Schemes() []string {
	return []string{"all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain-ternary"}
}

// DisplayName maps scheme identifiers to the labels used in the paper's
// figures.
func DisplayName(scheme string) string {
	switch scheme {
	case "pactrain-ternary", "pactrain":
		return "PacTrain"
	case "terngrad":
		return "Terngrad"
	case "thc":
		return "THC"
	case "dgc-0.01":
		return "DGC"
	case "omnireduce":
		return "OmniReduce"
	case "zen":
		return "Zen"
	}
	return scheme
}

// recostCum rebuilds a recorded run's cumulative simulated clock on an
// arbitrary fabric (bandwidth traces included): cum[i] is the simulated time
// after i iterations of compute plus re-priced communication, under the
// collective algorithm the run's config names. Because training prices
// collectives with the same cost functions at the same absolute times,
// re-costing on a fabric identical to the training fabric reproduces the
// recorded clock exactly (see TestRecostReproducesTraining).
func recostCum(res *core.Result, cfg *core.Config, fabric *netsim.Fabric) []float64 {
	return recostCumWith(collective.MustAlgorithm(cfg.Collective), res, cfg, fabric)
}

// recostCumWith is recostCum under an explicit collective algorithm — the
// recorded operations are algorithm-independent, so the collectives
// experiment prices one training under every algorithm. Configs using the
// per-rank timeline features (compute heterogeneity, per-bucket overlap)
// route through the timeline re-coster; everything else keeps the
// historical serial arithmetic, bit-identical to every cached run.
func recostCumWith(alg collective.Algorithm, res *core.Result, cfg *core.Config, fabric *netsim.Fabric) []float64 {
	if cfg.TimelineActive() {
		return recostCumTimeline(alg, res, cfg, fabric)
	}
	hosts := fabric.Topo.Hosts()[:cfg.World]
	computeIter := cfg.Compute.IterSeconds(cfg.BatchSize)
	cum := make([]float64, len(res.CommLog.Iters)+1)
	t := 0.0
	for i, ops := range res.CommLog.Iters {
		t += computeIter
		t += core.CostIter(ops, alg, fabric, hosts, t)
		cum[i+1] = t
	}
	return cum
}

// recostCumTimeline replays a recorded log on per-rank event timelines
// (DESIGN.md §9): every rank's clock advances by its own heterogeneity- and
// jitter-scaled compute, each op launches at the barrier over the ranks'
// bucket-ready times (max of ready clocks — a straggler holds the ring),
// and each iteration ends at rank 0's compute floor or the last
// collective's completion, whichever is later. The launches are *derived*
// from cfg — the same simclock/ddp expressions the trainer evaluates — not
// read from the recorded LaunchAt, so a log recorded under one straggler
// profile and overlap mode re-prices exactly under any other (the recorded
// op sequence is compute-independent for every fabric-insensitive scheme,
// like it is bandwidth-independent). cum[i] is rank 0's clock after i
// iterations; on the recorded configuration it reproduces the training
// clock bit-for-bit (TestStragglerRecostReproducesTraining).
func recostCumTimeline(alg collective.Algorithm, res *core.Result, cfg *core.Config, fabric *netsim.Fabric) []float64 {
	return replayTimeline(alg, res, cfg, fabric, false)
}

// replayTimeline is recostCumTimeline with the pricing strategy explicit:
// memoize engages per-signature cost memoization (see opCoster), which the
// replay contract forbids for recorded runs and the cluster-scale pricing
// path requires. Two structural shortcuts keep cluster-scale replays cheap
// without touching any float:
//
//   - homogeneous ranks (RankCompute disabled — Scale returns exactly 1):
//     every rank's schedule and clock are identical by induction, so the
//     whole timeline collapses to rank 0's scalar clock and the O(world)
//     barrier scans disappear;
//   - heterogeneous ranks: an IterComposer computes each bucket's barrier
//     once per iteration (O(world × buckets)) instead of once per op query.
func replayTimeline(alg collective.Algorithm, res *core.Result, cfg *core.Config, fabric *netsim.Fabric, memoize bool) []float64 {
	log := res.CommLog
	hosts := fabric.Topo.Hosts()[:cfg.World]
	coster := newOpCoster(alg, fabric, hosts, memoize)
	var prefix []float64
	if cfg.Overlap == ddp.OverlapBackward {
		if len(log.BucketElems) == 0 {
			panic("harness: per-bucket overlap re-costing needs a log with bucket geometry (recorded pre-timeline?)")
		}
		prefix = simclock.PrefixShares(log.BucketElems)
	}
	fwd := cfg.Compute.ForwardSeconds(cfg.BatchSize)
	bwd := cfg.Compute.BackwardSeconds(cfg.BatchSize)
	cum := make([]float64, len(log.Iters)+1)

	if !cfg.RankCompute.Enabled() {
		// Homogeneous fast path. Scale is exactly 1 for every (rank, iter),
		// so all ranks share one schedule and one clock; the barrier over
		// identical ready times is that ready time, and every rank finishes
		// at the same instant. Bit-identical to the per-rank replay (a max
		// over equal floats is that float; fwd*1.0 == fwd).
		clock := 0.0
		for k, ops := range log.Iters {
			sched := simclock.NewIterSchedule(clock, fwd, bwd, prefix)
			commEnd := math.Inf(-1)
			for _, op := range ops {
				launch := sched.ReadyAt(op.Bucket)
				if commEnd > launch {
					// One in-order communication stream: an op never
					// launches before the previous one completed.
					launch = commEnd
				}
				commEnd = launch + coster.cost(op, launch)
			}
			clock = sched.Finish(commEnd)
			cum[k+1] = clock
		}
		return cum
	}

	tl := simclock.NewTimeline(cfg.World)
	scheds := make([]simclock.IterSchedule, cfg.World)
	comp := simclock.NewIterComposer(scheds)
	for k, ops := range log.Iters {
		for r := range scheds {
			scale := cfg.RankCompute.Scale(r, k)
			scheds[r] = simclock.NewIterSchedule(tl.Clock(r), fwd*scale, bwd*scale, prefix)
		}
		comp.Reset()
		commEnd := math.Inf(-1)
		for _, op := range ops {
			// Barrier is exactly tl.LaunchTime over the ranks' ReadyAt,
			// computed once per bucket per iteration.
			launch := comp.Barrier(op.Bucket)
			if commEnd > launch {
				// One in-order communication stream: an op never launches
				// before the previous one completed (within a bucket, the
				// follow-up op's ready times are already past the first's
				// end, so this max is exactly the trainer's).
				launch = commEnd
			}
			commEnd = launch + coster.cost(op, launch)
		}
		comp.FinishInto(tl, commEnd)
		cum[k+1] = tl.Clock(0)
	}
	return cum
}

// ttaFromCum reads the time-to-target off a rebuilt clock: the re-costed
// time of the first curve point at or above target.
func ttaFromCum(res *core.Result, cum []float64, target float64) (float64, bool) {
	for _, p := range res.Curve.Points {
		if p.Acc >= target {
			if p.Iter < len(cum) {
				return cum[p.Iter], true
			}
			return cum[len(cum)-1], true
		}
	}
	return cum[len(cum)-1], false
}

// recostTTA recomputes a recorded run's accuracy-vs-time curve under a
// different bottleneck bandwidth and returns the time to target. The
// convergence trajectory (accuracy per iteration) is reused; only the
// clock is rebuilt from compute time plus the re-priced communication ops.
func recostTTA(res *core.Result, cfg *core.Config, bottleneck float64, target float64) (float64, bool) {
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bottleneck})
	return recostOnTopology(res, cfg, topo, target)
}

// rejectFabricSensitive makes Config.FabricSensitive load-bearing on the
// cross-network sweep paths: a multi-candidate adaptive log replays
// decisions the controller would not have made on a different fabric, so
// re-costing it across networks silently produces wrong clocks (DESIGN.md
// §8). Experiments must retrain such cells per operating point, as
// RunAdaptive does. Same-fabric replay (recostCum on the recorded fabric)
// remains valid and is not guarded.
func rejectFabricSensitive(cfg *core.Config) {
	if cfg.FabricSensitive() {
		panic(fmt.Sprintf("harness: %q run is fabric-sensitive; retrain per operating point instead of re-costing across networks (DESIGN.md §8)", cfg.Scheme))
	}
}

// trainJob builds the engine job for one (workload, scheme) training with
// communication recording.
func trainJob(exp string, w Workload, scheme string, opt Options) engine.Job {
	return engine.Job{
		Label:  fmt.Sprintf("%s %s/%s", exp, w.Model, DisplayName(scheme)),
		Config: baseConfig(w, scheme, opt),
	}
}

// renderRelTTA formats a relative-TTA cell, flagging runs that never
// reached the target the way the paper's log-scale bars saturate.
func renderRelTTA(rel float64, reached bool) string {
	if !reached {
		return fmt.Sprintf(">%.3f", rel)
	}
	return fmt.Sprintf("%.3f", rel)
}

// bandwidthLabel pretty-prints a link speed.
func bandwidthLabel(bps float64) string {
	if bps >= netsim.Gbps {
		return fmt.Sprintf("%g Gbps", bps/netsim.Gbps)
	}
	return fmt.Sprintf("%g Mbps", bps/netsim.Mbps)
}

// profileFor fetches the communication profile for table rendering.
func profileFor(model string) nn.CommProfile {
	p, err := nn.ProfileByName(model)
	if err != nil {
		return nn.CommProfile{Name: model, Params: 1_000_000, FLOPsPerSample: 100_000_000}
	}
	return p
}

// tableFromCurve renders a curve as a two-column table (time, accuracy).
func tableFromCurve(title string, c *metrics.Curve) *metrics.Table {
	tb := metrics.NewTable(title, "sim time", "accuracy")
	for _, p := range c.Points {
		tb.AddRow(metrics.FormatSeconds(p.SimTime), fmt.Sprintf("%.3f", p.Acc))
	}
	return tb
}
