package harness

import (
	"fmt"
	"strings"

	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
)

// Fig6Point is one (model, pruning ratio) final-accuracy measurement.
type Fig6Point struct {
	Model    string
	Ratio    float64
	FinalAcc float64
	BestAcc  float64
}

// Fig6Result reproduces Fig. 6: final accuracy versus pruning ratio for the
// four models on the CIFAR-10-like task. The paper's finding: accuracy
// degradation stays minimal below 80% pruning and falls off a cliff at
// 0.9–0.99.
type Fig6Result struct {
	Points []Fig6Point
	Ratios []float64
	Models []string
}

// Fig6Ratios returns the pruning ratios swept along the paper's x-axis
// (the paper samples eleven points; the full preset keeps the seven that
// define the plateau-and-cliff shape, quick mode three).
func Fig6Ratios(quick bool) []float64 {
	if quick {
		return []float64{0.0, 0.5, 0.9}
	}
	return []float64{0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.99}
}

// RunFig6 regenerates Fig. 6 by training the PacTrain configuration to
// completion at each pruning ratio and recording final accuracy.
func RunFig6(opt Options) (*Fig6Result, error) {
	opt.defaults()
	eng := opt.engine()
	ratios := Fig6Ratios(opt.Quick)
	out := &Fig6Result{Ratios: ratios}
	workloads := opt.workloads()
	opt.logf("Fig. 6: pruning ratio vs final accuracy, %d models × %d ratios",
		len(workloads), len(ratios))

	var jobs []engine.Job
	for _, w := range workloads {
		for _, ratio := range ratios {
			cfg := baseConfig(w, "pactrain", opt)
			cfg.PruneRatio = ratio
			// Final accuracy plateaus before the full TTA budget; a shorter
			// fixed budget keeps the sweep affordable without moving the
			// plateau/cliff shape.
			cfg.Epochs = min(w.Epochs, 8)
			if opt.Quick {
				cfg.Epochs = min(w.Epochs, 6)
			}
			if ratio == 0 {
				// Ratio 0 is the unpruned reference; run the plain scheme.
				cfg.Scheme = "all-reduce"
			}
			jobs = append(jobs, engine.Job{
				Label:  fmt.Sprintf("fig6 %s@%.2f", w.Model, ratio),
				Config: cfg,
			})
		}
	}
	results, err := eng.RunAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	opt.traceRuns(jobs, results)

	for wi, w := range workloads {
		out.Models = append(out.Models, w.Model)
		for ri, ratio := range ratios {
			res := results[wi*len(ratios)+ri]
			opt.logf("  %s @ ratio %.2f: final acc %.3f", w.Model, ratio, res.FinalAcc)
			out.Points = append(out.Points, Fig6Point{
				Model: w.Model, Ratio: ratio,
				FinalAcc: res.FinalAcc, BestAcc: res.BestAcc,
			})
		}
	}
	return out, nil
}

// Point fetches one measurement.
func (r *Fig6Result) Point(model string, ratio float64) (Fig6Point, bool) {
	for _, p := range r.Points {
		if p.Model == model && p.Ratio == ratio {
			return p, true
		}
	}
	return Fig6Point{}, false
}

// AccuracyDrop returns final-accuracy loss at the given ratio relative to
// the unpruned run (paper: <2% for ResNet152 up to ratio 0.8).
func (r *Fig6Result) AccuracyDrop(model string, ratio float64) (float64, bool) {
	base, ok1 := r.Point(model, 0)
	at, ok2 := r.Point(model, ratio)
	if !ok1 || !ok2 {
		return 0, false
	}
	return base.FinalAcc - at.FinalAcc, true
}

// Render prints the ratio × model accuracy grid.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	headers := append([]string{"pruning ratio"}, r.Models...)
	tb := metrics.NewTable("Fig. 6 — Final accuracy vs pruning ratio (CIFAR-10-like)", headers...)
	for _, ratio := range r.Ratios {
		row := []string{fmt.Sprintf("%.2f", ratio)}
		for _, model := range r.Models {
			if p, ok := r.Point(model, ratio); ok {
				row = append(row, fmt.Sprintf("%.3f", p.FinalAcc))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.String())
	for _, model := range r.Models {
		if drop, ok := r.AccuracyDrop(model, 0.8); ok {
			fmt.Fprintf(&b, "%s: accuracy drop at ratio 0.8 = %.3f\n", model, drop)
		}
	}
	return b.String()
}
