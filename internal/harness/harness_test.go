package harness

import (
	"runtime"
	"strings"
	"testing"

	"pactrain/internal/harness/engine"
	"pactrain/internal/netsim"
)

// testEngine is shared by every test in the package: experiments submitting
// identical (model, scheme, seed) jobs — and tests re-running the same
// experiment — train once and share the Result, exactly as `pactrain-bench
// -exp all` does in production.
var testEngine = engine.New(engine.Options{Parallelism: runtime.GOMAXPROCS(0)})

// quickOpts keeps harness tests fast: MLP twin, 4 workers, small dataset,
// jobs deduplicated through the shared engine.
func quickOpts() Options {
	return Options{Quick: true, World: 4, Samples: 320, Seed: 3, Engine: testEngine}
}

// skipIfShort gates the full-fidelity experiment tests out of `go test
// -short ./...` (the CI fast lane); the engine and fingerprint unit tests
// still cover the scheduling machinery there.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping full-fidelity harness experiment in -short mode")
	}
}

func TestRunFig3Quick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(res.Models) * len(res.Schemes) * len(res.Bandwidths)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	// The all-reduce baseline must be exactly 1.0 at every bandwidth.
	for _, bw := range res.Bandwidths {
		c, ok := res.Cell(res.Models[0], "all-reduce", bw)
		if !ok {
			t.Fatal("missing baseline cell")
		}
		if c.RelTTA != 1.0 {
			t.Fatalf("baseline RelTTA %v, want 1.0", c.RelTTA)
		}
	}
	// PacTrain must beat the baseline at the most constrained bandwidth.
	pc, ok := res.Cell(res.Models[0], "pactrain-ternary", 100*netsim.Mbps)
	if !ok {
		t.Fatal("missing pactrain cell")
	}
	if pc.RelTTA >= 1.0 {
		t.Fatalf("PacTrain RelTTA %v at 100 Mbps, want < 1.0", pc.RelTTA)
	}
	out := res.Render()
	for _, want := range []string{"Fig. 3", "PacTrain", "100 Mbps", "1 Gbps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig3SpeedupGrowsAsBandwidthShrinks(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	model := res.Models[0]
	c100, _ := res.Cell(model, "pactrain-ternary", 100*netsim.Mbps)
	c1g, _ := res.Cell(model, "pactrain-ternary", 1*netsim.Gbps)
	if c100.Speedup < c1g.Speedup {
		t.Fatalf("speedup at 100 Mbps (%v) should be ≥ at 1 Gbps (%v): compression matters more when the network is the bottleneck",
			c100.Speedup, c1g.Speedup)
	}
}

func TestRunFig5Quick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunFig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("got %d series, want 5", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Curve.Points) < 3 {
			t.Fatalf("series %s has too few points (%d)", s.Scheme, len(s.Curve.Points))
		}
	}
	if res.SpeedupVsAllReduce <= 0 {
		t.Fatal("missing speedup vs all-reduce")
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "PacTrain") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestRunFig6Quick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunFig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(res.Models) * len(res.Ratios)
	if len(res.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(res.Points), wantPoints)
	}
	// Accuracy at moderate pruning must stay near the unpruned level, and
	// extreme pruning must hurt (the Fig. 6 trade-off shape).
	model := res.Models[0]
	base, _ := res.Point(model, 0)
	mid, _ := res.Point(model, 0.5)
	hi, _ := res.Point(model, 0.9)
	if base.FinalAcc < 0.5 {
		t.Fatalf("unpruned baseline failed to learn: %v", base.FinalAcc)
	}
	if mid.FinalAcc < base.FinalAcc-0.15 {
		t.Fatalf("ratio 0.5 dropped accuracy too much: %v vs %v", mid.FinalAcc, base.FinalAcc)
	}
	if hi.FinalAcc > mid.FinalAcc+0.05 {
		// Extreme pruning should not beat moderate pruning.
		t.Logf("note: ratio 0.9 acc %v vs 0.5 acc %v", hi.FinalAcc, mid.FinalAcc)
	}
	if !strings.Contains(res.Render(), "Fig. 6") {
		t.Fatal("render malformed")
	}
}

func TestRunTable1Quick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunTable1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table1Schemes()) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(Table1Schemes()))
	}
	if err := res.VerifyAgainstPaper(); err != nil {
		t.Fatal(err)
	}
	var pac *Table1Row
	for i := range res.Rows {
		if res.Rows[i].Scheme == "pactrain-ternary" {
			pac = &res.Rows[i]
		}
	}
	if pac == nil {
		t.Fatal("missing PacTrain row")
	}
	if !pac.AllReduceCompatible {
		t.Fatal("PacTrain must be all-reduce compatible")
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "OmniReduce") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestAblationMTQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunAblationMT(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Larger windows cannot increase the compact-path fraction.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].StableFraction > res.Rows[i-1].StableFraction+1e-9 {
			t.Fatalf("stable fraction grew with window: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Render(), "stability window") {
		t.Fatal("render malformed")
	}
}

func TestAblationTernaryQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunAblationTernary(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// At the most constrained bandwidth the ternary stage must not lose.
	if res.Rows[0].TernaryTTA > res.Rows[0].PlainTTA*1.05 {
		t.Fatalf("ternary TTA %v worse than plain %v at 100 Mbps",
			res.Rows[0].TernaryTTA, res.Rows[0].PlainTTA)
	}
	if !strings.Contains(res.Render(), "ternary") {
		t.Fatal("render malformed")
	}
}

func TestAblationTopoQuick(t *testing.T) {
	skipIfShort(t)
	t.Parallel()
	res, err := RunAblationTopo(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// The chained-switch topology must be no faster than the flat one for
	// the all-reduce scheme (the ring crosses bottleneck links).
	var fig4, flat float64
	for _, row := range res.Rows {
		if row.Scheme == "all-reduce" {
			if row.Topology == "fig4" {
				fig4 = row.TTA
			} else {
				flat = row.TTA
			}
		}
	}
	if fig4 < flat {
		t.Fatalf("fig4 all-reduce TTA %v should be ≥ flat %v", fig4, flat)
	}
	if !strings.Contains(res.Render(), "flat") {
		t.Fatal("render malformed")
	}
}

func TestDisplayNames(t *testing.T) {
	t.Parallel()
	if DisplayName("pactrain-ternary") != "PacTrain" {
		t.Fatal("PacTrain display name wrong")
	}
	if DisplayName("topk-0.1") != "topk-0.1" {
		t.Fatal("passthrough display name wrong")
	}
}

func TestWorkloadPresets(t *testing.T) {
	t.Parallel()
	ws := PaperWorkloads()
	if len(ws) != 4 {
		t.Fatalf("paper workloads %d, want 4", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Model] = true
		if w.TargetAcc <= 0 || w.TargetAcc >= 1 {
			t.Fatalf("%s target %v out of range", w.Model, w.TargetAcc)
		}
	}
	for _, want := range []string{"VGG19", "ResNet18", "ResNet152", "ViT-Base-16"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
		// Every workload needs a widened twin: 50% pruning must cost
		// little accuracy, which requires overcapacity (DESIGN.md §1).
		for _, w := range ws {
			if w.Model == want && w.Width <= 8 {
				t.Fatalf("%s twin width %d; paper-scale overcapacity needs > 8", want, w.Width)
			}
		}
	}
}
