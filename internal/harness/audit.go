package harness

import (
	"pactrain/internal/audit"
	"pactrain/internal/core"
	"pactrain/internal/harness/engine"
)

// This file hangs the decision-audit layer (internal/audit) off the
// experiment harness the same way trace.go hangs the tracer: audits are
// derived from recorded results after the grid completes, in submission
// order, so the collected artifact is deterministic at any engine
// parallelism and the experiment reports are byte-identical with or without
// an auditor attached.

// AuditRun audits one recorded run on the fabric its config describes (see
// audit.Replay). label names the report; empty keeps the model/scheme
// default.
func AuditRun(label string, cfg core.Config, res *core.Result, opt audit.Options) (*audit.Report, error) {
	rep, err := audit.Replay(cfg, res, opt)
	if err != nil {
		return nil, err
	}
	rep.Label = label
	return rep, nil
}

// auditRuns audits every controller-driven job of a completed grid into
// Options.Auditor, deduplicated by config fingerprint (the collector keeps
// the first label, like the tracer). Runs without controller decisions are
// skipped silently — a grid of static schemes collects nothing. When a
// tracer is also attached, each collected report drops an "audit" mark into
// the trace export so the regret headline rides along the Perfetto timeline.
func (o *Options) auditRuns(jobs []engine.Job, results []*core.Result) error {
	if o.Auditor == nil {
		return nil
	}
	for i, job := range jobs {
		if i >= len(results) || results[i] == nil || results[i].CommLog == nil {
			continue
		}
		rep, err := AuditRun(job.Label, job.Config, results[i], audit.Options{
			StalenessSec: o.AuditStaleness,
		})
		if err != nil {
			return err
		}
		if rep.DecidedRounds == 0 {
			continue
		}
		if !o.Auditor.Add(rep) {
			continue // same training already audited under an earlier label
		}
		if o.Tracer != nil {
			o.Tracer.AddMark("audit", map[string]any{
				"label":             rep.Label,
				"rounds":            rep.DecidedRounds,
				"oracle_regret_sec": rep.OracleRegretSec,
				"static_regret_sec": rep.StaticRegretSec,
				"max_calib_error":   rep.MaxCalibrationError(),
			})
		}
	}
	return nil
}
