// Package prof is the CLI profiling plumbing shared by pactrain-bench and
// pactrain-train: -cpuprofile / -memprofile flags backed by runtime/pprof,
// the standard entry point for hunting regressions the perf lane flags.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile to memPath (when
// non-empty). The stop function is idempotent; callers must invoke it before
// os.Exit, which skips defers.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
