// Package masktracker implements the Mask Tracker mechanism of §III-C.
//
// DDP frameworks flatten gradients into opaque one-dimensional bucket
// tensors before invoking the communication hook: parameter names are gone
// and the order is rearranged, so the hook cannot consult the pruning mask
// directly. The Mask Tracker instead recovers the mask from the gradients
// themselves: with GSE in force (Eq. 2), pruned coordinates are *exactly
// zero every iteration*, while retained coordinates are non-zero almost
// every iteration. The tracker therefore maintains the union of observed
// supports — a coordinate is considered retained once it has ever been
// non-zero — and declares the pattern stable when the union has stopped
// growing for a configurable number of consecutive iterations. The union
// form is immune to incidental zeros (momentarily dead units, ternary
// quantization zeros) that would make exact pattern matching flap, and its
// monotone growth guarantees stabilization whenever GSE bounds the support.
// Only once stable does PacTrain switch from full synchronization to
// mask-compact communication.
package masktracker

// Tracker monitors one flattened gradient bucket.
type Tracker struct {
	// StableAfter is the number of consecutive growth-free observations
	// (beyond the first) required to deem the pattern stable. The paper
	// leaves the window unspecified; 2 is the default and the ablation
	// `ablation-mt` sweeps it.
	StableAfter int

	union       []bool // coordinates ever observed non-zero
	consecutive int
	observed    bool
}

// New returns a tracker requiring stableAfter consecutive identical masks.
func New(stableAfter int) *Tracker {
	if stableAfter < 1 {
		stableAfter = 1
	}
	return &Tracker{StableAfter: stableAfter}
}

// Observation is the result of feeding one bucket gradient to the tracker.
type Observation struct {
	// Mask is the keep-mask (true where the gradient has ever been
	// non-zero). The slice is owned by the tracker and valid until the next
	// Observe.
	Mask []bool
	// Changed reports whether the union grew this iteration (always true
	// on the first observation).
	Changed bool
	// Stable reports whether the union has now been growth-free for at
	// least StableAfter consecutive iterations.
	Stable bool
	// NNZ is the current union size (retained coordinate count).
	NNZ int
}

// Observe folds the support of a flattened gradient into the union mask and
// reports stability. Exact zeros are treated as masked, matching what GSE
// produces.
func (t *Tracker) Observe(flat []float32) Observation {
	if t.union == nil || len(t.union) != len(flat) {
		t.union = make([]bool, len(flat))
		t.observed = false
		t.consecutive = 0
	}
	grew := !t.observed
	for i, v := range flat {
		if v != 0 && !t.union[i] {
			t.union[i] = true
			grew = true
		}
	}
	t.observed = true
	if grew {
		t.consecutive = 0
	} else {
		t.consecutive++
	}
	nnz := 0
	for _, k := range t.union {
		if k {
			nnz++
		}
	}
	return Observation{
		Mask:    t.union,
		Changed: grew,
		Stable:  t.consecutive >= t.StableAfter,
		NNZ:     nnz,
	}
}

// Stable reports whether the last observed pattern is stable.
func (t *Tracker) Stable() bool { return t.observed && t.consecutive >= t.StableAfter }

// Indices returns the ascending retained coordinate indices of the current
// mask, the form MaskCompact consumes. It returns nil before the first
// observation.
func (t *Tracker) Indices() []int32 {
	if !t.observed {
		return nil
	}
	var idx []int32
	for i, k := range t.union {
		if k {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// Reset forgets all state, e.g. after a DDP bucket rebuild changes the
// flattening.
func (t *Tracker) Reset() {
	t.union = nil
	t.consecutive = 0
	t.observed = false
}
