package masktracker

import (
	"testing"
	"testing/quick"

	"pactrain/internal/tensor"
)

func TestFirstObservationUnstable(t *testing.T) {
	tr := New(2)
	obs := tr.Observe([]float32{1, 0, 2})
	if !obs.Changed || obs.Stable {
		t.Fatalf("first observation: %+v", obs)
	}
	if obs.NNZ != 2 {
		t.Fatalf("NNZ = %d", obs.NNZ)
	}
}

func TestStabilityAfterWindow(t *testing.T) {
	tr := New(2)
	pattern := []float32{1, 0, 2, 0}
	tr.Observe(pattern)
	o2 := tr.Observe(pattern)
	if o2.Changed || o2.Stable {
		t.Fatalf("second identical observation should be unchanged but not yet stable: %+v", o2)
	}
	o3 := tr.Observe(pattern)
	if !o3.Stable {
		t.Fatalf("third identical observation should be stable: %+v", o3)
	}
	if !tr.Stable() {
		t.Fatal("Tracker.Stable() disagrees")
	}
}

func TestChangeResetsStability(t *testing.T) {
	tr := New(1)
	tr.Observe([]float32{1, 0})
	tr.Observe([]float32{1, 0})
	if !tr.Stable() {
		t.Fatal("should be stable")
	}
	obs := tr.Observe([]float32{1, 1}) // support grew
	if !obs.Changed || obs.Stable {
		t.Fatalf("growth must reset: %+v", obs)
	}
	// Values changing while support constant is NOT a change.
	tr2 := New(1)
	tr2.Observe([]float32{1, 0, 3})
	obs2 := tr2.Observe([]float32{5, 0, -2})
	if obs2.Changed {
		t.Fatal("same support with different values must not count as change")
	}
}

// TestFlickeringZerosDoNotReset captures the union semantics: coordinates
// already in the mask going momentarily to zero (dead units, ternary
// quantization) must not destabilize the tracker.
func TestFlickeringZerosDoNotReset(t *testing.T) {
	tr := New(1)
	tr.Observe([]float32{1, 2, 0})
	tr.Observe([]float32{1, 2, 0})
	if !tr.Stable() {
		t.Fatal("should be stable")
	}
	obs := tr.Observe([]float32{1, 0, 0}) // coord 1 flickers to zero
	if obs.Changed || !obs.Stable {
		t.Fatalf("flicker inside the union must not reset: %+v", obs)
	}
	if obs.NNZ != 2 {
		t.Fatalf("union NNZ %d, want 2", obs.NNZ)
	}
}

func TestIndices(t *testing.T) {
	tr := New(1)
	if tr.Indices() != nil {
		t.Fatal("Indices before observation must be nil")
	}
	tr.Observe([]float32{0, 1, 0, 2, 3})
	idx := tr.Indices()
	want := []int32{1, 3, 4}
	if len(idx) != len(want) {
		t.Fatalf("indices %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices %v, want %v", idx, want)
		}
	}
}

func TestLengthChangeResets(t *testing.T) {
	tr := New(1)
	tr.Observe([]float32{1, 0})
	tr.Observe([]float32{1, 0})
	obs := tr.Observe([]float32{1, 0, 5}) // bucket rebuilt with new size
	if !obs.Changed || obs.Stable {
		t.Fatalf("length change must reset: %+v", obs)
	}
}

func TestReset(t *testing.T) {
	tr := New(1)
	tr.Observe([]float32{1})
	tr.Observe([]float32{1})
	tr.Reset()
	if tr.Stable() {
		t.Fatal("Reset must clear stability")
	}
	obs := tr.Observe([]float32{1})
	if !obs.Changed {
		t.Fatal("first observation after Reset must count as changed")
	}
}

func TestMinimumWindow(t *testing.T) {
	tr := New(0) // clamped to 1
	tr.Observe([]float32{1, 0})
	obs := tr.Observe([]float32{1, 0})
	if !obs.Stable {
		t.Fatal("window 1: second identical observation should be stable")
	}
}

// Property: a constant pattern always becomes stable after exactly
// StableAfter+1 observations, and Indices agrees with the pattern.
func TestPropertyStabilityConvergence(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + r.Intn(64)
		window := 1 + r.Intn(4)
		flat := make([]float32, n)
		nnz := 0
		for i := range flat {
			if r.Float64() < 0.5 {
				flat[i] = float32(r.NormFloat64()) + 1 // guaranteed non-zero
				nnz++
			}
		}
		tr := New(window)
		for i := 0; i < window; i++ {
			if obs := tr.Observe(flat); obs.Stable {
				return false // too early
			}
		}
		obs := tr.Observe(flat)
		if !obs.Stable || obs.NNZ != nnz {
			return false
		}
		return len(tr.Indices()) == nnz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
