// Package gse implements Gradient Sparsity Enforcement, Eq. 2 of the
// PacTrain paper:
//
//	Gradient = (Weight ≠ 0) ⊙ Gradient
//
// Pruning zeroes weights once, but gradients at those coordinates would
// resurrect them on the next optimizer step. GSE zeroes the gradients of
// pruned coordinates every iteration, which (a) keeps the model weights
// sparse for the lifetime of training and (b) makes the *gradient* sparsity
// pattern equal to the weight sparsity pattern — the global knowledge that
// PacTrain's mask-compact compression exploits.
package gse

import (
	"pactrain/internal/nn"
	"pactrain/internal/prune"
)

// Enforce applies Eq. 2 to every parameter of the model using an explicit
// mask: gradients of pruned coordinates are set to exactly zero.
func Enforce(m *nn.Model, mask *prune.Mask) {
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		if keep == nil {
			continue
		}
		g := p.Grad.Data()
		for i := range g {
			if !keep[i] {
				g[i] = 0
			}
		}
	}
}

// EnforceByWeight applies the literal form of Eq. 2 — masking by the
// current weight values rather than a stored mask. On the prunable weight
// tensors it is equivalent to Enforce immediately after Mask.Apply. Note
// the literal rule also freezes any incidentally zero weight (e.g.
// zero-initialized biases), so the mask-based Enforce is preferred when a
// mask is available; this function exists for opaque-hook settings where it
// is not.
func EnforceByWeight(m *nn.Model) {
	for _, p := range m.Params() {
		w := p.W.Data()
		g := p.Grad.Data()
		for i := range g {
			if w[i] == 0 {
				g[i] = 0
			}
		}
	}
}

// EnforceFlat applies a flat keep-mask to a flattened gradient bucket, the
// form the DDP communication hook operates on.
func EnforceFlat(grad []float32, keep []bool) {
	if len(grad) != len(keep) {
		panic("gse: flat mask length mismatch")
	}
	for i := range grad {
		if !keep[i] {
			grad[i] = 0
		}
	}
}

// ZeroVelocity clears optimizer momentum on pruned coordinates so stale
// velocity cannot push pruned weights away from zero after the mask is
// applied.
func ZeroVelocity(opt *nn.SGD, m *nn.Model, mask *prune.Mask) {
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		v := opt.Velocity(p.Name)
		if keep == nil || v == nil {
			continue
		}
		vd := v.Data()
		for i := range vd {
			if !keep[i] {
				vd[i] = 0
			}
		}
	}
}
