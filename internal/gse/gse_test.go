package gse

import (
	"testing"
	"testing/quick"

	"pactrain/internal/nn"
	"pactrain/internal/prune"
	"pactrain/internal/tensor"
)

func testModel(seed uint64) *nn.Model {
	return nn.NewMLP(nn.LiteConfig{InChannels: 1, ImageSize: 4, Classes: 3, Seed: seed}, 16)
}

func backprop(m *nn.Model, seed uint64) {
	r := tensor.NewRNG(seed)
	x := tensor.Randn(r, 1, 4, 1, 4, 4)
	out := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(out, []int{0, 1, 2, 0})
	m.ZeroGrad()
	m.Backward(grad)
}

func TestEnforceZeroesPrunedGrads(t *testing.T) {
	m := testModel(1)
	mask, _ := prune.MagnitudePrune(m, 0.5, prune.GlobalMagnitude)
	mask.Apply(m)
	backprop(m, 2)
	Enforce(m, mask)
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		for i, g := range p.Grad.Data() {
			if !keep[i] && g != 0 {
				t.Fatalf("grad %s[%d] = %v after GSE", p.Name, i, g)
			}
		}
	}
}

// TestEq2Invariant is the paper's Eq. 2 property: after GSE,
// support(grad) ⊆ support(weight), and this holds across optimizer steps.
func TestEq2Invariant(t *testing.T) {
	m := testModel(3)
	mask, _ := prune.MagnitudePrune(m, 0.6, prune.GlobalMagnitude)
	mask.Apply(m)
	opt := nn.NewSGD(0.05, 0.9, 0)
	for step := 0; step < 5; step++ {
		backprop(m, uint64(10+step))
		Enforce(m, mask)
		opt.Step(m.Params())
		ZeroVelocity(opt, m, mask)
		// Pruned weights must remain exactly zero forever.
		for _, p := range m.Params() {
			keep := mask.Of(p.Name)
			for i, w := range p.W.Data() {
				if !keep[i] && w != 0 {
					t.Fatalf("step %d: pruned weight %s[%d] = %v resurrected", step, p.Name, i, w)
				}
			}
		}
	}
}

// TestWithoutGSEWeightsResurrect documents why GSE is necessary: without
// it, pruned weights become non-zero after one step.
func TestWithoutGSEWeightsResurrect(t *testing.T) {
	m := testModel(4)
	mask, _ := prune.MagnitudePrune(m, 0.6, prune.GlobalMagnitude)
	mask.Apply(m)
	opt := nn.NewSGD(0.05, 0, 0)
	backprop(m, 20)
	opt.Step(m.Params())
	resurrected := 0
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		for i, w := range p.W.Data() {
			if !keep[i] && w != 0 {
				resurrected++
			}
		}
	}
	if resurrected == 0 {
		t.Fatal("expected pruned weights to resurrect without GSE")
	}
}

func TestEnforceByWeightMatchesEnforce(t *testing.T) {
	a, b := testModel(5), testModel(5)
	mask, _ := prune.MagnitudePrune(a, 0.5, prune.GlobalMagnitude)
	mask.Apply(a)
	mask.Apply(b)
	backprop(a, 6)
	backprop(b, 6)
	Enforce(a, mask)
	EnforceByWeight(b)
	// The two forms agree on prunable weight tensors; the literal rule
	// additionally freezes zero-initialized biases (documented divergence).
	for i, p := range a.Params() {
		if p.W.Rank() < 2 {
			continue
		}
		pb := b.Params()[i]
		for j := range p.Grad.Data() {
			if p.Grad.Data()[j] != pb.Grad.Data()[j] {
				t.Fatalf("Enforce and EnforceByWeight diverge at %s[%d]", p.Name, j)
			}
		}
	}
}

func TestEnforceFlat(t *testing.T) {
	g := []float32{1, 2, 3, 4}
	EnforceFlat(g, []bool{true, false, true, false})
	want := []float32{1, 0, 3, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("EnforceFlat = %v", g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	EnforceFlat(g, []bool{true})
}

// Property: GSE is idempotent and support(grad) ⊆ keep after enforcement.
func TestPropertyGSEIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 5 + r.Intn(50)
		g := make([]float32, n)
		keep := make([]bool, n)
		for i := range g {
			g[i] = float32(r.NormFloat64())
			keep[i] = r.Float64() < 0.5
		}
		EnforceFlat(g, keep)
		snapshot := append([]float32(nil), g...)
		EnforceFlat(g, keep)
		for i := range g {
			if g[i] != snapshot[i] {
				return false
			}
			if !keep[i] && g[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
