package netsim

import "testing"

func TestRackedTopologyStructure(t *testing.T) {
	t.Parallel()
	topo := RackedTopology(RackedOptions{Racks: 4, HostsPerRack: 3})
	hosts := topo.Hosts()
	if len(hosts) != 12 {
		t.Fatalf("%d hosts, want 12", len(hosts))
	}
	// Rank-major by rack: rank r's host attaches to the ToR of rack r/3, so
	// the hierarchical collective's rack grouping matches the physical racks.
	torOfRack := make(map[int]NodeID)
	for r, h := range hosts {
		tor, ok := topo.AttachedSwitch(h)
		if !ok {
			t.Fatalf("host %d has no switch", r)
		}
		rack := r / 3
		if prev, seen := torOfRack[rack]; seen && prev != tor {
			t.Fatalf("host %d: rack %d split across switches %v and %v", r, rack, prev, tor)
		}
		torOfRack[rack] = tor
	}
	if len(torOfRack) != 4 {
		t.Fatalf("%d racks, want 4", len(torOfRack))
	}
	distinct := make(map[NodeID]bool)
	for _, tor := range torOfRack {
		distinct[tor] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("racks share ToR switches: %v", torOfRack)
	}
	// Two-tier: every cross-rack path is host → ToR → spine → ToR → host.
	if path := topo.Path(hosts[0], hosts[11]); len(path) != 4 {
		t.Fatalf("cross-rack path has %d links, want 4", len(path))
	}
	if intra := topo.Path(hosts[0], hosts[1]); len(intra) != 2 {
		t.Fatalf("intra-rack path has %d links, want 2", len(intra))
	}
}

func TestOneSlowRackProfile(t *testing.T) {
	t.Parallel()
	ms := OneSlowRack(4, 3, 2)
	if len(ms) != 12 {
		t.Fatalf("%d multipliers, want 12", len(ms))
	}
	for r, m := range ms {
		want := 1.0
		if r >= 9 { // last rack's three ranks
			want = 2
		}
		if m != want {
			t.Fatalf("rank %d multiplier %v, want %v", r, m, want)
		}
	}
	if OneSlowRack(0, 3, 2) != nil {
		t.Fatal("empty cluster should yield nil")
	}
}

func TestPathCacheConsistency(t *testing.T) {
	t.Parallel()
	topo := RackedTopology(RackedOptions{Racks: 2, HostsPerRack: 2})
	hosts := topo.Hosts()
	first := topo.Path(hosts[0], hosts[3])
	if first == nil {
		t.Fatal("no path between hosts")
	}
	second := topo.Path(hosts[0], hosts[3])
	if len(first) != len(second) {
		t.Fatalf("cached path %v differs from first %v", second, first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached path %v differs from first %v", second, first)
		}
	}
	// Mutating the graph must invalidate cached paths: a direct link
	// between the two hosts becomes the new shortest path.
	topo.AddLink(hosts[0], hosts[3], Gbps, 1e-6)
	if short := topo.Path(hosts[0], hosts[3]); len(short) != 1 {
		t.Fatalf("post-AddLink path has %d links, want 1 (stale cache?)", len(short))
	}
}
