package netsim

import (
	"math"
	"testing"
)

func TestFig4OptionDefaults(t *testing.T) {
	topo := Fig4Topology(Fig4Options{})
	f := NewFabric(topo)
	hosts := topo.Hosts()
	// Default bottleneck is 1 Gbps, edges 10 Gbps.
	q, err := f.Quote(hosts[0], hosts[4], 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.BottleneckBps != 1*Gbps {
		t.Fatalf("default bottleneck %v, want 1 Gbps", q.BottleneckBps)
	}
	q2, _ := f.Quote(hosts[0], hosts[1], 0)
	if q2.BottleneckBps != 10*Gbps {
		t.Fatalf("default edge %v, want 10 Gbps", q2.BottleneckBps)
	}
}

func TestTraceScaleAtEdges(t *testing.T) {
	tr := &BandwidthTrace{Segments: []TraceSegment{
		{UntilSec: 5, Scale: 0.5},
		{UntilSec: 10, Scale: 0.25},
	}}
	cases := map[float64]float64{
		0:    0.5,
		4.99: 0.5,
		5:    0.25,
		9:    0.25,
		100:  0.25, // last segment extends forever
	}
	for at, want := range cases {
		if got := tr.scaleAt(at); got != want {
			t.Fatalf("scaleAt(%v) = %v, want %v", at, got, want)
		}
	}
	empty := &BandwidthTrace{}
	if empty.scaleAt(3) != 1 {
		t.Fatal("empty trace must scale by 1")
	}
}

func TestQuoteSelf(t *testing.T) {
	topo := FlatTopology(2, Gbps, 0)
	f := NewFabric(topo)
	q, err := f.Quote(topo.Hosts()[0], topo.Hosts()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q.BottleneckBps, 1) || q.LatencySec != 0 {
		t.Fatalf("self quote %+v", q)
	}
}

func TestPathUnreachableNil(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a", Host)
	b := topo.AddNode("b", Host)
	if topo.Path(a, b) != nil {
		t.Fatal("disconnected nodes must have nil path")
	}
}
