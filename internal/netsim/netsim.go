// Package netsim models the evaluation network of the PacTrain paper: an
// alpha-beta (latency + bandwidth) fabric with an explicit topology of hosts
// and switches, bottleneck inter-switch links, and optional time-varying
// bandwidth. The collective-communication layer quotes every transfer
// through this fabric, so time-to-accuracy under 100 Mbps / 500 Mbps /
// 1 Gbps constraints can be reproduced without physical hardware.
//
// All times are in seconds and all rates in bits per second, matching the
// units the paper reports.
package netsim

import (
	"fmt"
	"math"
	"sync"
)

// Common bandwidth constants in bits per second.
const (
	Mbps = 1e6
	Gbps = 1e9
)

// NodeID identifies a node (host or switch) in a topology.
type NodeID int

// NodeKind distinguishes traffic endpoints from forwarding elements.
type NodeKind int

// Node kinds.
const (
	Host NodeKind = iota
	Switch
)

// Node is a vertex in the fabric graph.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// Link is a full-duplex edge with a nominal bandwidth and one-way latency.
type Link struct {
	A, B         NodeID
	BandwidthBps float64
	LatencySec   float64
}

// Topology is an undirected graph of nodes and links.
type Topology struct {
	Nodes []Node
	Links []Link

	adj map[NodeID][]int // node → indices into Links

	// pathCache memoizes Path results. Every transfer of every collective
	// step resolves a path, so at cluster scale (thousands of hosts, millions
	// of transfers per costed op) the per-call BFS with its map allocations
	// dominates the whole simulation; the graph is static once built, so the
	// deterministic BFS result can be computed once per (src, dst). The map
	// is concurrency-safe because one topology may be shared by several
	// fabrics (PricingClone, engine jobs reusing a config's topology).
	pathCache *sync.Map // packed (src,dst) → []int, treated as immutable
}

// NewTopology builds an empty topology.
func NewTopology() *Topology {
	return &Topology{adj: make(map[NodeID][]int), pathCache: &sync.Map{}}
}

// AddNode appends a node and returns its ID.
func (t *Topology) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Name: name, Kind: kind})
	return id
}

// AddLink connects two nodes with the given bandwidth and latency. It panics
// on unknown nodes or non-positive bandwidth.
func (t *Topology) AddLink(a, b NodeID, bandwidthBps, latencySec float64) int {
	if int(a) >= len(t.Nodes) || int(b) >= len(t.Nodes) || a == b {
		panic(fmt.Sprintf("netsim: invalid link %d-%d", a, b))
	}
	if bandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	idx := len(t.Links)
	t.Links = append(t.Links, Link{A: a, B: b, BandwidthBps: bandwidthBps, LatencySec: latencySec})
	t.adj[a] = append(t.adj[a], idx)
	t.adj[b] = append(t.adj[b], idx)
	// Construction invalidates memoized paths. Topologies are built
	// single-threaded before any fabric prices transfers against them.
	t.pathCache = &sync.Map{}
	return idx
}

// Hosts returns the IDs of all host nodes in insertion order.
func (t *Topology) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range t.Nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// Path returns the minimum-hop link-index path from src to dst using BFS,
// or nil if unreachable. Results are memoized per (src, dst); callers must
// not mutate the returned slice.
func (t *Topology) Path(src, dst NodeID) []int {
	if src == dst {
		return []int{}
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if t.pathCache != nil {
		if p, ok := t.pathCache.Load(key); ok {
			return p.([]int)
		}
	}
	path := t.pathBFS(src, dst)
	if t.pathCache != nil {
		t.pathCache.Store(key, path)
	}
	return path
}

// pathBFS is the uncached breadth-first search behind Path.
func (t *Topology) pathBFS(src, dst NodeID) []int {
	prev := make(map[NodeID]int) // node → link index used to reach it
	visited := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, li := range t.adj[cur] {
			l := t.Links[li]
			next := l.A
			if next == cur {
				next = l.B
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = li
			if next == dst {
				// Reconstruct.
				var path []int
				for n := dst; n != src; {
					li := prev[n]
					path = append([]int{li}, path...)
					l := t.Links[li]
					if l.A == n {
						n = l.B
					} else {
						n = l.A
					}
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// BandwidthTrace scales a link's bandwidth over time, modelling the
// "variable-constrained network bandwidth" scenario in the paper. Segments
// apply in order; the last segment extends to infinity.
type BandwidthTrace struct {
	LinkIndex int
	Segments  []TraceSegment
}

// TraceSegment holds a bandwidth multiplier active until the given time.
type TraceSegment struct {
	UntilSec float64
	Scale    float64
}

// scaleAt returns the multiplier active at time t.
func (b *BandwidthTrace) scaleAt(t float64) float64 {
	for _, s := range b.Segments {
		if t < s.UntilSec {
			return s.Scale
		}
	}
	if n := len(b.Segments); n > 0 {
		return b.Segments[n-1].Scale
	}
	return 1
}

// Fabric couples a topology with traffic accounting and bandwidth traces.
// A Fabric is driven by the collective layer; methods are not safe for
// concurrent use and callers serialize through the cluster rendezvous.
type Fabric struct {
	Topo *Topology

	traces map[int]*BandwidthTrace

	// BytesOnLink accumulates payload bytes crossing each link.
	BytesOnLink []float64
	// TotalBytes accumulates payload bytes across all transfers (counted
	// once per transfer, not per hop).
	TotalBytes float64
}

// NewFabric wraps a topology.
func NewFabric(t *Topology) *Fabric {
	return &Fabric{Topo: t, traces: make(map[int]*BandwidthTrace),
		BytesOnLink: make([]float64, len(t.Links))}
}

// SetTrace installs a bandwidth trace on a link.
func (f *Fabric) SetTrace(tr *BandwidthTrace) {
	f.traces[tr.LinkIndex] = tr
}

// TimeInvariant reports whether link bandwidths are independent of the
// simulated clock — true exactly when no bandwidth trace is installed. On a
// time-invariant fabric a collective's cost depends only on the payload and
// algorithm, never on when it launches, which licenses the re-costing
// layer's per-op-signature memoization (internal/harness).
func (f *Fabric) TimeInvariant() bool { return len(f.traces) == 0 }

// linkBandwidthAt returns the effective bandwidth of a link at time t.
func (f *Fabric) linkBandwidthAt(li int, t float64) float64 {
	bw := f.Topo.Links[li].BandwidthBps
	if tr := f.traces[li]; tr != nil {
		bw *= tr.scaleAt(t)
	}
	return bw
}

// LinkBandwidthAt returns the effective (trace-scaled) bandwidth of link li
// at time t — the per-link view contention-aware collective costers need.
func (f *Fabric) LinkBandwidthAt(li int, t float64) float64 {
	return f.linkBandwidthAt(li, t)
}

// PathQuote describes the cost of a transfer path at a point in time.
type PathQuote struct {
	BottleneckBps float64
	LatencySec    float64
	Hops          int
}

// Quote resolves the path from src to dst at time t and returns its
// bottleneck bandwidth and cumulative latency. It returns an error when the
// nodes are disconnected.
func (f *Fabric) Quote(src, dst NodeID, t float64) (PathQuote, error) {
	if src == dst {
		return PathQuote{BottleneckBps: math.Inf(1)}, nil
	}
	path := f.Topo.Path(src, dst)
	if path == nil {
		return PathQuote{}, fmt.Errorf("netsim: no path from %d to %d", src, dst)
	}
	q := PathQuote{BottleneckBps: math.Inf(1), Hops: len(path)}
	for _, li := range path {
		bw := f.linkBandwidthAt(li, t)
		if bw < q.BottleneckBps {
			q.BottleneckBps = bw
		}
		q.LatencySec += f.Topo.Links[li].LatencySec
	}
	return q, nil
}

// TransferTime returns the time to move payloadBytes from src to dst
// starting at time t, and records the bytes on every traversed link.
func (f *Fabric) TransferTime(src, dst NodeID, payloadBytes float64, t float64) (float64, error) {
	if src == dst {
		return 0, nil
	}
	path := f.Topo.Path(src, dst)
	if path == nil {
		return 0, fmt.Errorf("netsim: no path from %d to %d", src, dst)
	}
	bottleneck := math.Inf(1)
	latency := 0.0
	for _, li := range path {
		bw := f.linkBandwidthAt(li, t)
		if bw < bottleneck {
			bottleneck = bw
		}
		latency += f.Topo.Links[li].LatencySec
		f.BytesOnLink[li] += payloadBytes
	}
	f.TotalBytes += payloadBytes
	return latency + payloadBytes*8/bottleneck, nil
}

// PricingClone returns a fabric over the same topology and traces with
// fresh byte accounting — a scratch instrument for what-if pricing. The
// collective cost functions record payload bytes on every link they touch,
// so a caller that merely wants to *quote* a hypothetical transfer (the
// adaptive compression controller prices every candidate wire format each
// round) must run them against a clone, or the accounting of transfers that
// never happened would pollute the real fabric.
func (f *Fabric) PricingClone() *Fabric {
	nf := NewFabric(f.Topo)
	for li, tr := range f.traces {
		nf.traces[li] = tr
	}
	return nf
}

// BottleneckBandwidthAt returns the minimum effective (trace-scaled)
// bandwidth over the topology's inter-switch links at time t — the scalar
// "current network speed" an online controller keys its decisions on. A
// topology without inter-switch links (flat, point-to-point) quotes the
// minimum over all links instead.
func (f *Fabric) BottleneckBandwidthAt(t float64) float64 {
	links := f.Topo.InterSwitchLinks()
	if len(links) == 0 {
		links = make([]int, len(f.Topo.Links))
		for i := range links {
			links[i] = i
		}
	}
	bw := math.Inf(1)
	for _, li := range links {
		if b := f.linkBandwidthAt(li, t); b < bw {
			bw = b
		}
	}
	return bw
}

// ResetAccounting zeroes the byte counters.
func (f *Fabric) ResetAccounting() {
	for i := range f.BytesOnLink {
		f.BytesOnLink[i] = 0
	}
	f.TotalBytes = 0
}

// --- Straggler presets ------------------------------------------------------
//
// The cluster scenarios the paper's related work targets (hierarchical and
// heterogeneous deployments) rarely have uniform workers. These presets
// return per-rank compute-time multipliers for ddp.RankCompute.Multipliers;
// netsim hosts them next to the topology presets so an experiment picks its
// fabric and its straggler profile from one vocabulary.

// OneSlowRank returns multipliers for a world of n ranks where the last
// rank runs factor× slower (factor 2 = half speed) and every other rank is
// nominal — the canonical single-straggler scenario. factor 1 models the
// uniform cluster.
func OneSlowRank(n int, factor float64) []float64 {
	if n <= 0 {
		return nil
	}
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = 1
	}
	ms[n-1] = factor
	return ms
}

// OneSlowRack returns multipliers for a racked cluster of racks×hostsPerRack
// ranks (rank-major by rack, the RackedTopology host order) where every rank
// in the last rack runs factor× slower — the shared-failure-domain straggler
// profile of the largescale experiment: one rack on degraded hardware or
// thermal throttle drags the whole job. factor 1 models the uniform cluster.
func OneSlowRack(racks, hostsPerRack int, factor float64) []float64 {
	n := racks * hostsPerRack
	if n <= 0 {
		return nil
	}
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = 1
	}
	for i := (racks - 1) * hostsPerRack; i < n; i++ {
		ms[i] = factor
	}
	return ms
}

// RampRanks returns multipliers that ramp linearly from 1 (rank 0) to
// maxFactor (last rank) — a mixed-hardware cluster where each generation is
// a bit slower than the last.
func RampRanks(n int, maxFactor float64) []float64 {
	if n <= 0 {
		return nil
	}
	ms := make([]float64, n)
	for i := range ms {
		if n == 1 {
			ms[i] = maxFactor
			continue
		}
		ms[i] = 1 + (maxFactor-1)*float64(i)/float64(n-1)
	}
	return ms
}

// --- Topology presets -------------------------------------------------------

// Fig4Options configures the paper's evaluation topology.
type Fig4Options struct {
	// BottleneckBps is the bandwidth of the two inter-switch links whose
	// speed the paper varies (100 Mbps, 500 Mbps, 1 Gbps).
	BottleneckBps float64
	// EdgeBps is the host-to-switch bandwidth (defaults to 10 Gbps).
	EdgeBps float64
	// LatencySec is the per-link one-way latency (defaults to 100 µs).
	LatencySec float64
}

// Fig4Topology builds the evaluation topology of the paper's Fig. 4: eight
// GPU servers spread across three virtual switches chained in a line, with
// the two inter-switch links forming the bandwidth bottleneck.
//
//	S1 S2 S3      S4 S5 S6     S7 S8
//	  \ | /        \ | /        \ /
//	   sw0 ——————— sw1 ——————— sw2
//	       (bottleneck)  (bottleneck)
func Fig4Topology(opt Fig4Options) *Topology {
	if opt.BottleneckBps <= 0 {
		opt.BottleneckBps = 1 * Gbps
	}
	if opt.EdgeBps <= 0 {
		opt.EdgeBps = 10 * Gbps
	}
	if opt.LatencySec <= 0 {
		opt.LatencySec = 100e-6
	}
	t := NewTopology()
	sw := make([]NodeID, 3)
	for i := range sw {
		sw[i] = t.AddNode(fmt.Sprintf("vswitch%d", i), Switch)
	}
	groups := [][]int{{1, 2, 3}, {4, 5, 6}, {7, 8}}
	for g, servers := range groups {
		for _, s := range servers {
			h := t.AddNode(fmt.Sprintf("S%d", s), Host)
			t.AddLink(h, sw[g], opt.EdgeBps, opt.LatencySec)
		}
	}
	t.AddLink(sw[0], sw[1], opt.BottleneckBps, opt.LatencySec)
	t.AddLink(sw[1], sw[2], opt.BottleneckBps, opt.LatencySec)
	return t
}

// FlatTopology builds n hosts on a single switch with uniform bandwidth,
// used by the ablation that isolates the bottleneck-link effect.
func FlatTopology(n int, bandwidthBps, latencySec float64) *Topology {
	t := NewTopology()
	sw := t.AddNode("switch", Switch)
	for i := 0; i < n; i++ {
		h := t.AddNode(fmt.Sprintf("S%d", i+1), Host)
		t.AddLink(h, sw, bandwidthBps, latencySec)
	}
	return t
}

// TwoRackOptions configures the two-rack fabric used by the collective-
// algorithm experiments: two switches joined by a single bottleneck link,
// hosts split as evenly as possible between them.
type TwoRackOptions struct {
	// Hosts is the total host count (defaults to 8, split 4+4).
	Hosts int
	// BottleneckBps is the inter-switch link speed.
	BottleneckBps float64
	// EdgeBps is the host-to-switch bandwidth (defaults to 10 Gbps).
	EdgeBps float64
	// LatencySec is the per-link one-way latency (defaults to 100 µs).
	LatencySec float64
}

// TwoRackTopology builds the minimal hierarchical fabric: two racks of
// hosts, each behind its own switch, with one inter-switch link as the only
// bottleneck. It is the cleanest stage for topology-aware collectives —
// every inter-rack byte must cross the same slow link.
//
//	S1..Sk        Sk+1..Sn
//	  \|/            \|/
//	  sw0 —————————— sw1
//	      (bottleneck)
func TwoRackTopology(opt TwoRackOptions) *Topology {
	if opt.Hosts <= 0 {
		opt.Hosts = 8
	}
	if opt.BottleneckBps <= 0 {
		opt.BottleneckBps = 1 * Gbps
	}
	if opt.EdgeBps <= 0 {
		opt.EdgeBps = 10 * Gbps
	}
	if opt.LatencySec <= 0 {
		opt.LatencySec = 100e-6
	}
	t := NewTopology()
	sw0 := t.AddNode("rack0", Switch)
	sw1 := t.AddNode("rack1", Switch)
	firstRack := (opt.Hosts + 1) / 2
	for i := 0; i < opt.Hosts; i++ {
		h := t.AddNode(fmt.Sprintf("S%d", i+1), Host)
		sw := sw0
		if i >= firstRack {
			sw = sw1
		}
		t.AddLink(h, sw, opt.EdgeBps, opt.LatencySec)
	}
	t.AddLink(sw0, sw1, opt.BottleneckBps, opt.LatencySec)
	return t
}

// RackedOptions configures the cluster-scale fabric of the largescale
// experiment: many racks of hosts, each behind its own top-of-rack switch,
// all ToR switches joined through a single spine.
type RackedOptions struct {
	// Racks is the rack count (defaults to 64).
	Racks int
	// HostsPerRack is the host count behind each ToR switch (defaults to 64).
	HostsPerRack int
	// BottleneckBps is the ToR-to-spine uplink speed.
	BottleneckBps float64
	// EdgeBps is the host-to-ToR bandwidth (defaults to 10 Gbps).
	EdgeBps float64
	// LatencySec is the per-link one-way latency (defaults to 100 µs).
	LatencySec float64
}

// RackedTopology builds a two-tier (ToR + spine) cluster fabric with
// Racks×HostsPerRack hosts numbered rack-major, so rank r lives in rack
// r/HostsPerRack and the hierarchical collective's Racks grouping matches
// the physical racks. Every inter-rack byte crosses two uplinks through the
// spine; the uplinks are the bottleneck.
//
//	S1..Sk   Sk+1..S2k      ...
//	  \|/       \|/
//	 rack0     rack1   ...  rackN
//	     \       |         /
//	      —————spine——————
//	       (bottleneck uplinks)
func RackedTopology(opt RackedOptions) *Topology {
	if opt.Racks <= 0 {
		opt.Racks = 64
	}
	if opt.HostsPerRack <= 0 {
		opt.HostsPerRack = 64
	}
	if opt.BottleneckBps <= 0 {
		opt.BottleneckBps = 10 * Gbps
	}
	if opt.EdgeBps <= 0 {
		opt.EdgeBps = 10 * Gbps
	}
	if opt.LatencySec <= 0 {
		opt.LatencySec = 100e-6
	}
	t := NewTopology()
	spine := t.AddNode("spine", Switch)
	host := 0
	for r := 0; r < opt.Racks; r++ {
		tor := t.AddNode(fmt.Sprintf("rack%d", r), Switch)
		t.AddLink(tor, spine, opt.BottleneckBps, opt.LatencySec)
		for h := 0; h < opt.HostsPerRack; h++ {
			host++
			id := t.AddNode(fmt.Sprintf("S%d", host), Host)
			t.AddLink(id, tor, opt.EdgeBps, opt.LatencySec)
		}
	}
	return t
}

// AttachedSwitch returns the first switch adjacent to the node, in link
// insertion order — the "rack" a host belongs to. ok is false for nodes
// with no switch neighbor (e.g. hosts wired point-to-point).
func (t *Topology) AttachedSwitch(n NodeID) (NodeID, bool) {
	for _, li := range t.adj[n] {
		l := t.Links[li]
		other := l.A
		if other == n {
			other = l.B
		}
		if t.Nodes[other].Kind == Switch {
			return other, true
		}
	}
	return 0, false
}

// InterSwitchLinks returns the indices of links whose endpoints are both
// switches — the bottleneck candidates in Fig. 4.
func (t *Topology) InterSwitchLinks() []int {
	var out []int
	for i, l := range t.Links {
		if t.Nodes[l.A].Kind == Switch && t.Nodes[l.B].Kind == Switch {
			out = append(out, i)
		}
	}
	return out
}
