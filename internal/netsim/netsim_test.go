package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFig4Shape(t *testing.T) {
	topo := Fig4Topology(Fig4Options{BottleneckBps: 100 * Mbps})
	hosts := topo.Hosts()
	if len(hosts) != 8 {
		t.Fatalf("Fig4 has %d hosts, want 8", len(hosts))
	}
	switches := 0
	for _, n := range topo.Nodes {
		if n.Kind == Switch {
			switches++
		}
	}
	if switches != 3 {
		t.Fatalf("Fig4 has %d switches, want 3", switches)
	}
	if inter := topo.InterSwitchLinks(); len(inter) != 2 {
		t.Fatalf("Fig4 has %d inter-switch links, want 2", len(inter))
	}
}

func TestPathWithinAndAcrossSwitches(t *testing.T) {
	topo := Fig4Topology(Fig4Options{BottleneckBps: 100 * Mbps})
	hosts := topo.Hosts()
	// S1→S2 share vswitch0: 2 hops.
	if p := topo.Path(hosts[0], hosts[1]); len(p) != 2 {
		t.Fatalf("same-switch path has %d hops, want 2", len(p))
	}
	// S1→S8 crosses both bottlenecks: 4 hops.
	if p := topo.Path(hosts[0], hosts[7]); len(p) != 4 {
		t.Fatalf("cross path has %d hops, want 4", len(p))
	}
	if p := topo.Path(hosts[0], hosts[0]); len(p) != 0 {
		t.Fatal("self path should be empty")
	}
}

func TestQuoteBottleneck(t *testing.T) {
	topo := Fig4Topology(Fig4Options{BottleneckBps: 100 * Mbps, EdgeBps: 10 * Gbps, LatencySec: 1e-4})
	f := NewFabric(topo)
	hosts := topo.Hosts()
	// Same switch: bottleneck is the 10 Gbps edge.
	q, err := f.Quote(hosts[0], hosts[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.BottleneckBps != 10*Gbps {
		t.Fatalf("same-switch bottleneck %v, want 10G", q.BottleneckBps)
	}
	// Across switches: the 100 Mbps inter-switch link dominates.
	q, err = f.Quote(hosts[0], hosts[4], 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.BottleneckBps != 100*Mbps {
		t.Fatalf("cross-switch bottleneck %v, want 100M", q.BottleneckBps)
	}
	if math.Abs(q.LatencySec-3e-4) > 1e-12 {
		t.Fatalf("latency %v, want 3e-4 (3 hops)", q.LatencySec)
	}
}

func TestTransferTimePhysics(t *testing.T) {
	topo := FlatTopology(2, 1*Gbps, 0)
	f := NewFabric(topo)
	hosts := topo.Hosts()
	// 1 Gbit payload over 1 Gbps = 1 second.
	bytes := 1e9 / 8
	dt, err := f.TransferTime(hosts[0], hosts[1], bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dt-1) > 1e-9 {
		t.Fatalf("transfer time %v, want 1s", dt)
	}
	if f.TotalBytes != bytes {
		t.Fatalf("TotalBytes = %v", f.TotalBytes)
	}
	// Two links traversed (host-switch-host), each counted.
	counted := 0
	for _, b := range f.BytesOnLink {
		if b == bytes {
			counted++
		}
	}
	if counted != 2 {
		t.Fatalf("bytes recorded on %d links, want 2", counted)
	}
}

func TestTransferSelfIsFree(t *testing.T) {
	topo := FlatTopology(2, 1*Gbps, 1e-3)
	f := NewFabric(topo)
	hosts := topo.Hosts()
	dt, err := f.TransferTime(hosts[0], hosts[0], 1e9, 0)
	if err != nil || dt != 0 {
		t.Fatalf("self transfer: dt=%v err=%v", dt, err)
	}
}

func TestDisconnectedIsError(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a", Host)
	b := topo.AddNode("b", Host)
	f := NewFabric(topo)
	if _, err := f.TransferTime(a, b, 1, 0); err == nil {
		t.Fatal("expected error for disconnected nodes")
	}
}

func TestBandwidthTrace(t *testing.T) {
	topo := FlatTopology(2, 1*Gbps, 0)
	f := NewFabric(topo)
	hosts := topo.Hosts()
	// Halve bandwidth for the first 10 seconds on both host links.
	f.SetTrace(&BandwidthTrace{LinkIndex: 0, Segments: []TraceSegment{{UntilSec: 10, Scale: 0.5}, {UntilSec: math.Inf(1), Scale: 1}}})
	f.SetTrace(&BandwidthTrace{LinkIndex: 1, Segments: []TraceSegment{{UntilSec: 10, Scale: 0.5}, {UntilSec: math.Inf(1), Scale: 1}}})
	bytes := 1e9 / 8
	early, _ := f.TransferTime(hosts[0], hosts[1], bytes, 0)
	late, _ := f.TransferTime(hosts[0], hosts[1], bytes, 20)
	if math.Abs(early-2) > 1e-9 {
		t.Fatalf("early transfer %v, want 2s at half bandwidth", early)
	}
	if math.Abs(late-1) > 1e-9 {
		t.Fatalf("late transfer %v, want 1s at full bandwidth", late)
	}
}

func TestResetAccounting(t *testing.T) {
	topo := FlatTopology(2, 1*Gbps, 0)
	f := NewFabric(topo)
	hosts := topo.Hosts()
	if _, err := f.TransferTime(hosts[0], hosts[1], 100, 0); err != nil {
		t.Fatal(err)
	}
	f.ResetAccounting()
	if f.TotalBytes != 0 {
		t.Fatal("TotalBytes not reset")
	}
	for _, b := range f.BytesOnLink {
		if b != 0 {
			t.Fatal("BytesOnLink not reset")
		}
	}
}

func TestAddLinkValidation(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a", Host)
	b := topo.AddNode("b", Host)
	for _, fn := range []func(){
		func() { topo.AddLink(a, a, 1, 0) },
		func() { topo.AddLink(a, b, 0, 0) },
		func() { topo.AddLink(a, NodeID(99), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: transfer time is monotone in payload size and inversely monotone
// in bottleneck bandwidth.
func TestPropertyTransferMonotonicity(t *testing.T) {
	f := func(kb uint16, mbps uint8) bool {
		bw := (float64(mbps%100) + 1) * Mbps
		topo := FlatTopology(2, bw, 1e-4)
		fab := NewFabric(topo)
		hosts := topo.Hosts()
		small := float64(kb%1000+1) * 1000
		big := small * 2
		t1, err1 := fab.TransferTime(hosts[0], hosts[1], small, 0)
		t2, err2 := fab.TransferTime(hosts[0], hosts[1], big, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		if t2 <= t1 {
			return false
		}
		topo2 := FlatTopology(2, bw*2, 1e-4)
		fab2 := NewFabric(topo2)
		t3, err3 := fab2.TransferTime(topo2.Hosts()[0], topo2.Hosts()[1], small, 0)
		if err3 != nil {
			return false
		}
		return t3 < t1 || small == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatTopology(t *testing.T) {
	topo := FlatTopology(4, 1*Gbps, 0)
	if len(topo.Hosts()) != 4 {
		t.Fatal("FlatTopology host count wrong")
	}
	if len(topo.InterSwitchLinks()) != 0 {
		t.Fatal("FlatTopology should have no inter-switch links")
	}
}

func TestStragglerPresets(t *testing.T) {
	ms := OneSlowRank(4, 2.0)
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("OneSlowRank(4, 2) = %v, want %v", ms, want)
		}
	}
	if OneSlowRank(0, 2) != nil {
		t.Fatal("OneSlowRank with no ranks must be nil")
	}
	ramp := RampRanks(3, 2.0)
	if ramp[0] != 1 || ramp[1] != 1.5 || ramp[2] != 2 {
		t.Fatalf("RampRanks(3, 2) = %v, want [1 1.5 2]", ramp)
	}
	if one := RampRanks(1, 3.0); one[0] != 3 {
		t.Fatalf("single-rank ramp = %v, want [3]", one)
	}
}
