package netsim

import (
	"math"
	"testing"
)

// TestScaleAtEdgeCases pins BandwidthTrace.scaleAt's boundary semantics:
// segments apply while t < UntilSec (a boundary time belongs to the *next*
// segment), the last segment extends to infinity, and a trace with no
// segments scales by 1.
func TestScaleAtEdgeCases(t *testing.T) {
	t.Parallel()

	empty := &BandwidthTrace{LinkIndex: 0}
	if got := empty.scaleAt(0); got != 1 {
		t.Fatalf("empty trace at t=0: scale %v, want 1", got)
	}
	if got := empty.scaleAt(1e9); got != 1 {
		t.Fatalf("empty trace far future: scale %v, want 1", got)
	}

	tr := &BandwidthTrace{LinkIndex: 0, Segments: []TraceSegment{
		{UntilSec: 2, Scale: 1.0},
		{UntilSec: 4, Scale: 0.1},
		{UntilSec: 6, Scale: 0.5},
	}}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 1.0},
		{1.999, 1.0},
		{2, 0.1}, // exact boundary: strictly-less, so the next segment
		{3.5, 0.1},
		{4, 0.5}, // exact boundary again
		{5.999, 0.5},
		{6, 0.5}, // past the last boundary: the final segment extends
		{1e12, 0.5},
	}
	for _, c := range cases {
		if got := tr.scaleAt(c.t); got != c.want {
			t.Fatalf("scaleAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}

	// An infinite final segment behaves identically to running off the end.
	inf := &BandwidthTrace{LinkIndex: 0, Segments: []TraceSegment{
		{UntilSec: 1, Scale: 0.2},
		{UntilSec: math.Inf(1), Scale: 0.7},
	}}
	if got := inf.scaleAt(1e12); got != 0.7 {
		t.Fatalf("infinite segment: scale %v, want 0.7", got)
	}

	// A single-segment trace holds its scale forever, before and after its
	// nominal end.
	single := &BandwidthTrace{LinkIndex: 0, Segments: []TraceSegment{{UntilSec: 5, Scale: 0.3}}}
	if got := single.scaleAt(4); got != 0.3 {
		t.Fatalf("single segment active window: %v", got)
	}
	if got := single.scaleAt(5); got != 0.3 {
		t.Fatalf("single segment past its end: %v, want the last scale to extend", got)
	}
}

// TestPricingCloneSharesTracesNotAccounting: the clone quotes identically
// to the original — traces included — but its byte accounting is disjoint.
func TestPricingCloneSharesTracesNotAccounting(t *testing.T) {
	t.Parallel()
	topo := Fig4Topology(Fig4Options{BottleneckBps: 1 * Gbps})
	f := NewFabric(topo)
	li := topo.InterSwitchLinks()[0]
	f.SetTrace(&BandwidthTrace{LinkIndex: li, Segments: []TraceSegment{
		{UntilSec: 10, Scale: 0.5},
		{UntilSec: math.Inf(1), Scale: 1},
	}})

	clone := f.PricingClone()
	hosts := topo.Hosts()
	want, err := f.TransferTime(hosts[0], hosts[7], 1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := clone.TransferTime(hosts[0], hosts[7], 1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clone quotes %v, original %v — traces not shared", got, want)
	}
	// One transfer each: the accounting must not be shared.
	if f.TotalBytes != 1<<20 || clone.TotalBytes != 1<<20 {
		t.Fatalf("accounting crossed the clone boundary: original %v, clone %v",
			f.TotalBytes, clone.TotalBytes)
	}
	clone.ResetAccounting()
	if f.TotalBytes != 1<<20 {
		t.Fatal("resetting the clone touched the original's counters")
	}
}

func TestBottleneckBandwidthAt(t *testing.T) {
	t.Parallel()
	topo := Fig4Topology(Fig4Options{BottleneckBps: 500 * Mbps})
	f := NewFabric(topo)
	if got := f.BottleneckBandwidthAt(0); got != 500*Mbps {
		t.Fatalf("untraced bottleneck %v, want 500 Mbps", got)
	}
	f.SetTrace(&BandwidthTrace{LinkIndex: topo.InterSwitchLinks()[0], Segments: []TraceSegment{
		{UntilSec: 2, Scale: 1},
		{UntilSec: math.Inf(1), Scale: 0.1},
	}})
	if got := f.BottleneckBandwidthAt(1); got != 500*Mbps {
		t.Fatalf("pre-dip bottleneck %v", got)
	}
	if got := f.BottleneckBandwidthAt(3); got != 50*Mbps {
		t.Fatalf("dipped bottleneck %v, want 50 Mbps", got)
	}

	// No inter-switch links: the minimum over all links stands in.
	flat := FlatTopology(4, 2*Gbps, 1e-4)
	if got := NewFabric(flat).BottleneckBandwidthAt(0); got != 2*Gbps {
		t.Fatalf("flat bottleneck %v, want the edge speed", got)
	}
}
