package ddp

import (
	"math"
	"testing"

	"pactrain/internal/nn"
	"pactrain/internal/prune"
	"pactrain/internal/tensor"
)

func testModel(seed uint64) *nn.Model {
	return nn.NewMLP(nn.LiteConfig{InChannels: 1, ImageSize: 4, Classes: 3, Seed: seed}, 16)
}

func TestBucketsCoverAllParamsOnce(t *testing.T) {
	m := testModel(1)
	buckets := BuildBuckets(m, 1024)
	seen := map[string]int{}
	total := 0
	for _, b := range buckets {
		total += b.Elements()
		for _, p := range b.Params {
			seen[p.Name]++
		}
	}
	if total != m.NumParameters() {
		t.Fatalf("buckets cover %d scalars, want %d", total, m.NumParameters())
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("param %s in %d buckets", name, n)
		}
	}
}

func TestBucketsReverseOrder(t *testing.T) {
	m := testModel(2)
	buckets := BuildBuckets(m, 1<<30) // one big bucket
	if len(buckets) != 1 {
		t.Fatalf("expected 1 bucket, got %d", len(buckets))
	}
	params := m.Params()
	b := buckets[0]
	if b.Params[0].Name != params[len(params)-1].Name {
		t.Fatalf("first bucket param %s, want last registered %s",
			b.Params[0].Name, params[len(params)-1].Name)
	}
	if b.Params[len(b.Params)-1].Name != params[0].Name {
		t.Fatal("last bucket param should be first registered")
	}
}

func TestBucketByteCap(t *testing.T) {
	m := testModel(3)
	capBytes := 512
	buckets := BuildBuckets(m, capBytes)
	if len(buckets) < 2 {
		t.Fatalf("expected multiple buckets under %dB cap, got %d", capBytes, len(buckets))
	}
	for _, b := range buckets {
		if len(b.Params) > 1 && b.Elements()*4 > capBytes {
			t.Fatalf("bucket %d exceeds cap with %d bytes", b.Index, b.Elements()*4)
		}
	}
}

func TestOversizeParamGetsOwnBucket(t *testing.T) {
	m := testModel(4)
	buckets := BuildBuckets(m, 8) // smaller than any tensor
	for _, b := range buckets {
		if len(b.Params) != 1 {
			t.Fatalf("bucket %d has %d params, want 1", b.Index, len(b.Params))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := testModel(5)
	r := tensor.NewRNG(9)
	for _, p := range m.Params() {
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = float32(r.NormFloat64())
		}
	}
	orig := map[string][]float32{}
	for _, p := range m.Params() {
		orig[p.Name] = append([]float32(nil), p.Grad.Data()...)
	}
	buckets := BuildBuckets(m, 1024)
	for _, b := range buckets {
		b.Gather()
	}
	m.ZeroGrad()
	for _, b := range buckets {
		b.Scatter()
	}
	for _, p := range m.Params() {
		for i, v := range p.Grad.Data() {
			if v != orig[p.Name][i] {
				t.Fatalf("round trip lost %s[%d]", p.Name, i)
			}
		}
	}
}

func TestScale(t *testing.T) {
	m := testModel(6)
	buckets := BuildBuckets(m, 1<<30)
	b := buckets[0]
	for i := range b.Flat {
		b.Flat[i] = 8
	}
	b.Scale(0.125)
	for _, v := range b.Flat {
		if v != 1 {
			t.Fatalf("scale wrong: %v", v)
		}
	}
}

func TestFlatKeepMaskAlignsWithGSE(t *testing.T) {
	m := testModel(7)
	mask, _ := prune.MagnitudePrune(m, 0.5, prune.GlobalMagnitude)
	mask.Apply(m)
	// Build gradients, apply GSE via mask, flatten; the flat zero pattern
	// must match FlatKeepMask (on prunable coordinates gradients may also
	// be incidentally zero, so check one direction: !keep ⇒ zero).
	r := tensor.NewRNG(3)
	x := tensor.Randn(r, 1, 4, 1, 4, 4)
	out := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(out, []int{0, 1, 2, 0})
	m.ZeroGrad()
	m.Backward(grad)
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		g := p.Grad.Data()
		for i := range g {
			if !keep[i] {
				g[i] = 0
			}
		}
	}
	buckets := BuildBuckets(m, 1<<30)
	b := buckets[0]
	b.Gather()
	keep := b.FlatKeepMask(mask)
	for i, v := range b.Flat {
		if !keep[i] && v != 0 {
			t.Fatalf("flat[%d] = %v where mask says pruned", i, v)
		}
	}
}

func TestComputeModelPhysics(t *testing.T) {
	c := A40ComputeModel(1e9) // 1 GFLOP/sample
	fwd := c.ForwardSeconds(32)
	want := 1e9 * 32 / (37.4e12 * 0.35)
	if math.Abs(fwd-want)/want > 1e-9 {
		t.Fatalf("forward %v, want %v", fwd, want)
	}
	if c.BackwardSeconds(32) != 2*fwd {
		t.Fatal("backward should be 2× forward")
	}
	if c.IterSeconds(32) != 3*fwd {
		t.Fatal("iteration should be 3× forward")
	}
}

func TestIterationTimeOverlap(t *testing.T) {
	c := A40ComputeModel(1e9)
	comm := 1.0
	serial := IterationTime(c, 32, comm, OverlapNone)
	if math.Abs(serial-(c.IterSeconds(32)+comm)) > 1e-12 {
		t.Fatal("OverlapNone must serialize")
	}
	// Huge comm: overlapped time = fwd + comm.
	big := IterationTime(c, 32, comm, OverlapBackward)
	if math.Abs(big-(c.ForwardSeconds(32)+comm)) > 1e-12 {
		t.Fatal("OverlapBackward with large comm should pay fwd+comm")
	}
	// Tiny comm: fully hidden.
	small := IterationTime(c, 32, 1e-9, OverlapBackward)
	if math.Abs(small-c.IterSeconds(32)) > 1e-10 {
		t.Fatal("OverlapBackward with tiny comm should pay compute only")
	}
	if OverlapNone.String() != "none" || OverlapBackward.String() != "backward" {
		t.Fatal("Overlap.String broken")
	}
}
