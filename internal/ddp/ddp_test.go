package ddp

import (
	"math"
	"strings"
	"testing"

	"pactrain/internal/nn"
	"pactrain/internal/prune"
	"pactrain/internal/tensor"
)

func testModel(seed uint64) *nn.Model {
	return nn.NewMLP(nn.LiteConfig{InChannels: 1, ImageSize: 4, Classes: 3, Seed: seed}, 16)
}

func TestBucketsCoverAllParamsOnce(t *testing.T) {
	m := testModel(1)
	buckets := BuildBuckets(m, 1024)
	seen := map[string]int{}
	total := 0
	for _, b := range buckets {
		total += b.Elements()
		for _, p := range b.Params {
			seen[p.Name]++
		}
	}
	if total != m.NumParameters() {
		t.Fatalf("buckets cover %d scalars, want %d", total, m.NumParameters())
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("param %s in %d buckets", name, n)
		}
	}
}

func TestBucketsReverseOrder(t *testing.T) {
	m := testModel(2)
	buckets := BuildBuckets(m, 1<<30) // one big bucket
	if len(buckets) != 1 {
		t.Fatalf("expected 1 bucket, got %d", len(buckets))
	}
	params := m.Params()
	b := buckets[0]
	if b.Params[0].Name != params[len(params)-1].Name {
		t.Fatalf("first bucket param %s, want last registered %s",
			b.Params[0].Name, params[len(params)-1].Name)
	}
	if b.Params[len(b.Params)-1].Name != params[0].Name {
		t.Fatal("last bucket param should be first registered")
	}
}

func TestBucketByteCap(t *testing.T) {
	m := testModel(3)
	capBytes := 512
	buckets := BuildBuckets(m, capBytes)
	if len(buckets) < 2 {
		t.Fatalf("expected multiple buckets under %dB cap, got %d", capBytes, len(buckets))
	}
	for _, b := range buckets {
		if len(b.Params) > 1 && b.Elements()*4 > capBytes {
			t.Fatalf("bucket %d exceeds cap with %d bytes", b.Index, b.Elements()*4)
		}
	}
}

func TestOversizeParamGetsOwnBucket(t *testing.T) {
	m := testModel(4)
	buckets := BuildBuckets(m, 8) // smaller than any tensor
	for _, b := range buckets {
		if len(b.Params) != 1 {
			t.Fatalf("bucket %d has %d params, want 1", b.Index, len(b.Params))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := testModel(5)
	r := tensor.NewRNG(9)
	for _, p := range m.Params() {
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = float32(r.NormFloat64())
		}
	}
	orig := map[string][]float32{}
	for _, p := range m.Params() {
		orig[p.Name] = append([]float32(nil), p.Grad.Data()...)
	}
	buckets := BuildBuckets(m, 1024)
	for _, b := range buckets {
		b.Gather()
	}
	m.ZeroGrad()
	for _, b := range buckets {
		b.Scatter()
	}
	for _, p := range m.Params() {
		for i, v := range p.Grad.Data() {
			if v != orig[p.Name][i] {
				t.Fatalf("round trip lost %s[%d]", p.Name, i)
			}
		}
	}
}

func TestScale(t *testing.T) {
	m := testModel(6)
	buckets := BuildBuckets(m, 1<<30)
	b := buckets[0]
	for i := range b.Flat {
		b.Flat[i] = 8
	}
	b.Scale(0.125)
	for _, v := range b.Flat {
		if v != 1 {
			t.Fatalf("scale wrong: %v", v)
		}
	}
}

func TestFlatKeepMaskAlignsWithGSE(t *testing.T) {
	m := testModel(7)
	mask, _ := prune.MagnitudePrune(m, 0.5, prune.GlobalMagnitude)
	mask.Apply(m)
	// Build gradients, apply GSE via mask, flatten; the flat zero pattern
	// must match FlatKeepMask (on prunable coordinates gradients may also
	// be incidentally zero, so check one direction: !keep ⇒ zero).
	r := tensor.NewRNG(3)
	x := tensor.Randn(r, 1, 4, 1, 4, 4)
	out := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(out, []int{0, 1, 2, 0})
	m.ZeroGrad()
	m.Backward(grad)
	for _, p := range m.Params() {
		keep := mask.Of(p.Name)
		g := p.Grad.Data()
		for i := range g {
			if !keep[i] {
				g[i] = 0
			}
		}
	}
	buckets := BuildBuckets(m, 1<<30)
	b := buckets[0]
	b.Gather()
	keep := b.FlatKeepMask(mask)
	for i, v := range b.Flat {
		if !keep[i] && v != 0 {
			t.Fatalf("flat[%d] = %v where mask says pruned", i, v)
		}
	}
}

func TestComputeModelPhysics(t *testing.T) {
	c := A40ComputeModel(1e9) // 1 GFLOP/sample
	fwd := c.ForwardSeconds(32)
	want := 1e9 * 32 / (37.4e12 * 0.35)
	if math.Abs(fwd-want)/want > 1e-9 {
		t.Fatalf("forward %v, want %v", fwd, want)
	}
	if c.BackwardSeconds(32) != 2*fwd {
		t.Fatal("backward should be 2× forward")
	}
	if c.IterSeconds(32) != 3*fwd {
		t.Fatal("iteration should be 3× forward")
	}
}

func TestIterationTimeOverlap(t *testing.T) {
	c := A40ComputeModel(1e9)
	comm := 1.0
	serial := IterationTime(c, 32, comm, OverlapNone)
	if math.Abs(serial-(c.IterSeconds(32)+comm)) > 1e-12 {
		t.Fatal("OverlapNone must serialize")
	}
	// Huge comm: overlapped time = fwd + comm.
	big := IterationTime(c, 32, comm, OverlapBackward)
	if math.Abs(big-(c.ForwardSeconds(32)+comm)) > 1e-12 {
		t.Fatal("OverlapBackward with large comm should pay fwd+comm")
	}
	// Tiny comm: fully hidden.
	small := IterationTime(c, 32, 1e-9, OverlapBackward)
	if math.Abs(small-c.IterSeconds(32)) > 1e-10 {
		t.Fatal("OverlapBackward with tiny comm should pay compute only")
	}
	if OverlapNone.String() != "none" || OverlapBackward.String() != "backward" {
		t.Fatal("Overlap.String broken")
	}
}

func TestOverlapParseRoundTrip(t *testing.T) {
	for _, o := range []Overlap{OverlapNone, OverlapBackward} {
		got, err := ParseOverlap(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseOverlap(%q) = %v, %v; want %v", o.String(), got, err, o)
		}
	}
	if got, err := ParseOverlap(""); err != nil || got != OverlapNone {
		t.Fatalf("empty selector = %v, %v; want OverlapNone", got, err)
	}
	if _, err := ParseOverlap("sideways"); err == nil {
		t.Fatal("unknown overlap mode must error")
	} else if !strings.Contains(err.Error(), "none") || !strings.Contains(err.Error(), "backward") {
		t.Fatalf("error should list the vocabulary: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustOverlap must panic on unknown names")
		}
	}()
	MustOverlap("sideways")
}

func TestIdealOverlapIsTheClosedForm(t *testing.T) {
	c := A40ComputeModel(1e9)
	for _, comm := range []float64{1e-9, 1e-4, 1.0} {
		got := IdealOverlapIterationTime(c, 32, comm)
		want := c.ForwardSeconds(32) + math.Max(c.BackwardSeconds(32), comm)
		if got != want {
			t.Fatalf("comm %v: ideal overlap %v, want fwd+max(bwd,comm) = %v", comm, got, want)
		}
		if IterationTime(c, 32, comm, OverlapBackward) != got {
			t.Fatal("IterationTime(OverlapBackward) must delegate to the ideal-overlap form")
		}
	}
}

func TestRankComputeScale(t *testing.T) {
	var rc RankCompute
	if rc.Enabled() {
		t.Fatal("zero RankCompute must be disabled")
	}
	if s := rc.Scale(3, 17); s != 1.0 {
		t.Fatalf("disabled Scale = %v, want exactly 1", s)
	}
	rc = RankCompute{Multipliers: []float64{1, 1, 2}}
	if rc.Scale(2, 0) != 2 || rc.Scale(0, 0) != 1 || rc.Scale(5, 0) != 1 {
		t.Fatal("multiplier lookup broken (ranks past the slice run at 1)")
	}
	// Jitter is deterministic in (seed, rank, iter) and bounded by the
	// fraction.
	j := RankCompute{JitterFrac: 0.25, JitterSeed: 9}
	for rank := 0; rank < 3; rank++ {
		for iter := 0; iter < 5; iter++ {
			a, b := j.Scale(rank, iter), j.Scale(rank, iter)
			if a != b {
				t.Fatalf("jitter not deterministic at (%d,%d): %v vs %v", rank, iter, a, b)
			}
			if a < 0.75 || a >= 1.25 {
				t.Fatalf("jitter scale %v outside [0.75, 1.25)", a)
			}
		}
	}
	if j.Scale(0, 1) == j.Scale(0, 2) && j.Scale(0, 2) == j.Scale(0, 3) {
		t.Fatal("jitter constant across iterations")
	}
	if j.Scale(0, 1) == j.Scale(1, 1) && j.Scale(1, 1) == j.Scale(2, 1) {
		t.Fatal("jitter constant across ranks")
	}
}

func TestRankComputeCanonicalAndValidate(t *testing.T) {
	rc := RankCompute{Multipliers: []float64{1, 2, 1, 1}, JitterSeed: 99}
	canon := rc.Canonical()
	if len(canon.Multipliers) != 2 || canon.Multipliers[1] != 2 {
		t.Fatalf("trailing unit multipliers not trimmed: %v", canon.Multipliers)
	}
	if canon.JitterSeed != 0 {
		t.Fatal("jitter seed is dead without jitter and must zero")
	}
	all1 := RankCompute{Multipliers: []float64{1, 1}}
	if c := all1.Canonical(); c.Enabled() {
		t.Fatalf("all-unit multipliers must canonicalize to disabled: %+v", c)
	}
	if err := (RankCompute{Multipliers: []float64{1, -2}}).Validate(4); err == nil {
		t.Fatal("negative multiplier must fail validation")
	}
	if err := (RankCompute{Multipliers: []float64{1, 1, 1}}).Validate(2); err == nil {
		t.Fatal("more multipliers than ranks must fail validation")
	}
	if err := (RankCompute{JitterFrac: 1}).Validate(2); err == nil {
		t.Fatal("jitter 1 must fail validation")
	}
	if err := (RankCompute{Multipliers: []float64{2, 0.5}, JitterFrac: 0.1}).Validate(2); err != nil {
		t.Fatalf("valid heterogeneity rejected: %v", err)
	}
}
