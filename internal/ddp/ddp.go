// Package ddp reproduces the slice of PyTorch DistributedDataParallel that
// PacTrain interacts with: gradient bucketing and the communication-hook
// interface.
//
// DDP flattens parameter gradients into fixed-capacity one-dimensional
// buckets, in *reverse registration order* (gradients become ready roughly
// in reverse order during backward), and hands each bucket to a
// communication hook as an opaque flat tensor. Parameter names and
// boundaries are invisible to the hook — the abstraction gap that motivates
// the paper's Mask Tracker (§III-C). This package reproduces that shape
// faithfully: hooks receive flat float32 slices, and anything mask-aware
// must recover structure from the values alone.
//
// The package also carries the compute-time model that converts the paper's
// full-size model profiles (params, FLOPs) into simulated per-iteration
// compute seconds (DESIGN.md §1).
package ddp

import (
	"fmt"
	"strings"

	"pactrain/internal/nn"
	"pactrain/internal/prune"
	"pactrain/internal/simclock"
	"pactrain/internal/tensor"
)

// DefaultBucketBytes mirrors PyTorch DDP's 25 MiB default bucket size.
const DefaultBucketBytes = 25 << 20

// Bucket is one flattened gradient bucket.
type Bucket struct {
	Index int
	// Params lists the parameters in bucket-internal order (reverse
	// registration order).
	Params []*nn.Parameter
	// Flat is the flattened gradient storage, len = Σ param elements.
	Flat []float32

	offsets []int
}

// Elements returns the number of gradient scalars in the bucket.
func (b *Bucket) Elements() int { return len(b.Flat) }

// Gather copies the current parameter gradients into Flat.
func (b *Bucket) Gather() {
	for i, p := range b.Params {
		copy(b.Flat[b.offsets[i]:b.offsets[i]+p.NumElements()], p.Grad.Data())
	}
}

// Scatter copies Flat back into the parameter gradients.
func (b *Bucket) Scatter() {
	for i, p := range b.Params {
		copy(p.Grad.Data(), b.Flat[b.offsets[i]:b.offsets[i]+p.NumElements()])
	}
}

// Scale multiplies the flat gradient by alpha (used to average after a sum
// all-reduce).
func (b *Bucket) Scale(alpha float32) {
	for i := range b.Flat {
		b.Flat[i] *= alpha
	}
}

// FlatKeepMask flattens a pruning mask into bucket order, with true for
// parameters absent from the mask (never pruned). This helper exists for
// verification; the PacTrain hook itself does not use it — it recovers the
// pattern via the Mask Tracker, as the paper's hook must.
func (b *Bucket) FlatKeepMask(mask *prune.Mask) []bool {
	keep := make([]bool, len(b.Flat))
	for i, p := range b.Params {
		off := b.offsets[i]
		pk := mask.Of(p.Name)
		for j := 0; j < p.NumElements(); j++ {
			if pk == nil {
				keep[off+j] = true
			} else {
				keep[off+j] = pk[j]
			}
		}
	}
	return keep
}

// BuildBuckets partitions the model's parameters into buckets of at most
// capBytes bytes (fp32), in reverse registration order. A parameter larger
// than capBytes gets its own bucket.
func BuildBuckets(m *nn.Model, capBytes int) []*Bucket {
	if capBytes <= 0 {
		capBytes = DefaultBucketBytes
	}
	params := m.Params()
	var buckets []*Bucket
	cur := &Bucket{}
	curBytes := 0
	flush := func() {
		if len(cur.Params) == 0 {
			return
		}
		total := 0
		cur.offsets = make([]int, len(cur.Params))
		for i, p := range cur.Params {
			cur.offsets[i] = total
			total += p.NumElements()
		}
		cur.Flat = make([]float32, total)
		cur.Index = len(buckets)
		buckets = append(buckets, cur)
		cur = &Bucket{}
		curBytes = 0
	}
	for i := len(params) - 1; i >= 0; i-- {
		p := params[i]
		pb := p.NumElements() * 4
		if curBytes > 0 && curBytes+pb > capBytes {
			flush()
		}
		cur.Params = append(cur.Params, p)
		curBytes += pb
	}
	flush()
	return buckets
}

// Hook is the communication-hook interface: Sync must replace b.Flat with
// the *average* of all workers' bucket gradients and return the
// synchronized completion time. Implementations live in internal/core.
type Hook interface {
	Name() string
	Sync(rank int, b *Bucket, localTime float64) float64
}

// ComputeModel converts a model profile into simulated compute seconds. The
// defaults approximate the paper's A40 workers.
type ComputeModel struct {
	// FLOPsPerSample is the forward-pass cost of one sample.
	FLOPsPerSample int64
	// DeviceFLOPS is the accelerator's peak throughput (fp32 FLOP/s).
	DeviceFLOPS float64
	// Efficiency is the achieved fraction of peak (0,1].
	Efficiency float64
	// BackwardFactor scales backward relative to forward (standard ≈ 2×).
	BackwardFactor float64
}

// A40ComputeModel returns the default device model: an NVIDIA A40 at
// 37.4 TFLOP/s fp32 (with TF32 paths) achieving 35% of peak on
// training-sized kernels.
func A40ComputeModel(flopsPerSample int64) ComputeModel {
	return ComputeModel{
		FLOPsPerSample: flopsPerSample,
		DeviceFLOPS:    37.4e12,
		Efficiency:     0.35,
		BackwardFactor: 2,
	}
}

// ForwardSeconds returns the simulated forward time for a batch.
func (c ComputeModel) ForwardSeconds(batch int) float64 {
	return float64(c.FLOPsPerSample) * float64(batch) / (c.DeviceFLOPS * c.Efficiency)
}

// BackwardSeconds returns the simulated backward time for a batch.
func (c ComputeModel) BackwardSeconds(batch int) float64 {
	return c.ForwardSeconds(batch) * c.BackwardFactor
}

// IterSeconds returns the total compute time of one iteration.
func (c ComputeModel) IterSeconds(batch int) float64 {
	return c.ForwardSeconds(batch) + c.BackwardSeconds(batch)
}

// RankCompute describes per-rank compute heterogeneity: stragglers, mixed
// hardware, and per-iteration noise. The zero value models the historical
// homogeneous cluster. All fields scale compute *time* — a multiplier of 2
// means the rank runs twice as slowly.
type RankCompute struct {
	// Multipliers holds per-rank compute-time factors (rank r uses
	// Multipliers[r]; ranks past the end run at 1.0). netsim carries presets
	// such as OneSlowRank.
	Multipliers []float64
	// JitterFrac adds deterministic per-(rank, iteration) noise: each
	// iteration's compute is scaled by 1 + JitterFrac·u with u drawn
	// uniformly from [-1, 1) by a splitmix64 stream keyed on (JitterSeed,
	// rank, iteration). Must sit in [0, 1).
	JitterFrac float64
	// JitterSeed seeds the jitter stream; two runs with equal seeds see
	// identical jitter, which is what keeps re-costing exact.
	JitterSeed uint64
}

// Enabled reports whether any heterogeneity is configured. A disabled
// RankCompute leaves every compute time bit-identical to the homogeneous
// model (Scale returns exactly 1).
func (rc RankCompute) Enabled() bool {
	return len(rc.Multipliers) > 0 || rc.JitterFrac > 0
}

// Canonical normalizes equivalent spellings onto one value so they share a
// fingerprint: trailing unit multipliers are trimmed (ranks past the slice
// already run at 1.0), an all-unit slice collapses to nil, and the jitter
// seed is zeroed when jitter is off (a dead field must not split cache
// keys).
func (rc RankCompute) Canonical() RankCompute {
	ms := rc.Multipliers
	for len(ms) > 0 && ms[len(ms)-1] == 1 {
		ms = ms[:len(ms)-1]
	}
	if len(ms) == 0 {
		rc.Multipliers = nil
	} else {
		rc.Multipliers = append([]float64(nil), ms...)
	}
	if rc.JitterFrac <= 0 {
		rc.JitterFrac, rc.JitterSeed = 0, 0
	}
	return rc
}

// Validate rejects non-positive multipliers, more multipliers than ranks,
// and jitter outside [0, 1).
func (rc RankCompute) Validate(world int) error {
	if len(rc.Multipliers) > world {
		return fmt.Errorf("ddp: %d rank-compute multipliers for %d ranks", len(rc.Multipliers), world)
	}
	for r, m := range rc.Multipliers {
		if m <= 0 {
			return fmt.Errorf("ddp: rank %d compute multiplier %v must be positive", r, m)
		}
	}
	if rc.JitterFrac < 0 || rc.JitterFrac >= 1 {
		return fmt.Errorf("ddp: compute jitter %v outside [0,1)", rc.JitterFrac)
	}
	return nil
}

// Scale returns the compute-time factor for one rank's iteration:
// multiplier × (1 + jitter). It is a pure function of (rc, rank, iter), so
// the trainer and the re-costing path (harness) reconstruct identical
// per-rank clocks — the bit-exactness contract extends to heterogeneous
// runs. When rc is disabled it returns exactly 1, and multiplying by it
// leaves every float bit-identical.
func (rc RankCompute) Scale(rank, iter int) float64 {
	s := 1.0
	if rank < len(rc.Multipliers) {
		s = rc.Multipliers[rank]
	}
	if rc.JitterFrac > 0 {
		// One splitmix64 draw keyed on (seed, rank, iter); odd multipliers
		// keep distinct (rank, iter) pairs from colliding.
		r := tensor.NewRNG(rc.JitterSeed*0x9E3779B97F4A7C15 +
			uint64(rank)*0xBF58476D1CE4E5B9 + uint64(iter)*0x94D049BB133111EB + 1)
		u := 2*r.Float64() - 1
		s *= 1 + rc.JitterFrac*u
	}
	return s
}

// Overlap selects how bucket communication interleaves with backward
// compute when composing iteration time.
type Overlap int

// Overlap modes.
const (
	// OverlapNone serializes compute then communication — the conservative
	// model used for the headline results (the paper's bottleneck regimes
	// are communication-dominated, where overlap barely matters).
	OverlapNone Overlap = iota
	// OverlapBackward hides communication under backward compute: each
	// bucket's collective launches once its gradient is ready (forward plus
	// the bucket's prefix share of backward, reverse-registration order) and
	// the iteration cannot finish before backward does — the exact
	// per-bucket timeline model (simclock, DESIGN.md §9).
	OverlapBackward
)

// String implements fmt.Stringer. The names round-trip through
// ParseOverlap.
func (o Overlap) String() string {
	switch o {
	case OverlapNone:
		return "none"
	case OverlapBackward:
		return "backward"
	}
	return "unknown"
}

// OverlapNames lists the selector vocabulary ParseOverlap accepts, in mode
// order.
func OverlapNames() []string { return []string{"none", "backward"} }

// ParseOverlap resolves a CLI/API selector to an Overlap mode. The empty
// string means OverlapNone (the historical default); unknown names error
// with the valid vocabulary.
func ParseOverlap(name string) (Overlap, error) {
	switch name {
	case "", OverlapNone.String():
		return OverlapNone, nil
	case OverlapBackward.String():
		return OverlapBackward, nil
	}
	return 0, fmt.Errorf("ddp: unknown overlap mode %q (have %s)",
		name, strings.Join(OverlapNames(), ", "))
}

// MustOverlap is ParseOverlap for callers whose input was already
// validated; it panics on unknown names.
func MustOverlap(name string) Overlap {
	o, err := ParseOverlap(name)
	if err != nil {
		panic(err)
	}
	return o
}

// IterationTime composes one iteration's simulated duration from compute
// and a single communication total under the given overlap model.
// OverlapBackward delegates to the per-bucket timeline composition
// (simclock.ComposeIteration) with one bucket that is ready the moment
// forward finishes — the ideal-overlap closed form; see
// IdealOverlapIterationTime for why that is a bound, not the exact
// schedule.
func IterationTime(c ComputeModel, batch int, commSeconds float64, o Overlap) float64 {
	switch o {
	case OverlapNone:
		return c.IterSeconds(batch) + commSeconds
	case OverlapBackward:
		return IdealOverlapIterationTime(c, batch, commSeconds)
	}
	panic(fmt.Sprintf("ddp: unknown overlap mode %d", o))
}

// IdealOverlapIterationTime is the pre-timeline closed form, forward +
// max(backward, comm): communication behaves as a single bucket launched
// the moment forward completes, with every byte free to overlap backward.
// Real DDP buckets become ready only as backward produces them, so this is
// an upper bound on achievable overlap — equivalently a lower bound on the
// true iteration time. The trainer prices the exact per-bucket schedule
// instead (simclock.IterSchedule); keep this helper for scalar-comm
// estimates and as the documented best case.
func IdealOverlapIterationTime(c ComputeModel, batch int, commSeconds float64) float64 {
	s := simclock.NewIterSchedule(0, c.ForwardSeconds(batch), c.BackwardSeconds(batch), []float64{0})
	return simclock.ComposeIteration(s, 1, func(int, float64) float64 { return commSeconds })
}
