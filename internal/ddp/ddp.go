// Package ddp reproduces the slice of PyTorch DistributedDataParallel that
// PacTrain interacts with: gradient bucketing and the communication-hook
// interface.
//
// DDP flattens parameter gradients into fixed-capacity one-dimensional
// buckets, in *reverse registration order* (gradients become ready roughly
// in reverse order during backward), and hands each bucket to a
// communication hook as an opaque flat tensor. Parameter names and
// boundaries are invisible to the hook — the abstraction gap that motivates
// the paper's Mask Tracker (§III-C). This package reproduces that shape
// faithfully: hooks receive flat float32 slices, and anything mask-aware
// must recover structure from the values alone.
//
// The package also carries the compute-time model that converts the paper's
// full-size model profiles (params, FLOPs) into simulated per-iteration
// compute seconds (DESIGN.md §1).
package ddp

import (
	"fmt"

	"pactrain/internal/nn"
	"pactrain/internal/prune"
)

// DefaultBucketBytes mirrors PyTorch DDP's 25 MiB default bucket size.
const DefaultBucketBytes = 25 << 20

// Bucket is one flattened gradient bucket.
type Bucket struct {
	Index int
	// Params lists the parameters in bucket-internal order (reverse
	// registration order).
	Params []*nn.Parameter
	// Flat is the flattened gradient storage, len = Σ param elements.
	Flat []float32

	offsets []int
}

// Elements returns the number of gradient scalars in the bucket.
func (b *Bucket) Elements() int { return len(b.Flat) }

// Gather copies the current parameter gradients into Flat.
func (b *Bucket) Gather() {
	for i, p := range b.Params {
		copy(b.Flat[b.offsets[i]:b.offsets[i]+p.NumElements()], p.Grad.Data())
	}
}

// Scatter copies Flat back into the parameter gradients.
func (b *Bucket) Scatter() {
	for i, p := range b.Params {
		copy(p.Grad.Data(), b.Flat[b.offsets[i]:b.offsets[i]+p.NumElements()])
	}
}

// Scale multiplies the flat gradient by alpha (used to average after a sum
// all-reduce).
func (b *Bucket) Scale(alpha float32) {
	for i := range b.Flat {
		b.Flat[i] *= alpha
	}
}

// FlatKeepMask flattens a pruning mask into bucket order, with true for
// parameters absent from the mask (never pruned). This helper exists for
// verification; the PacTrain hook itself does not use it — it recovers the
// pattern via the Mask Tracker, as the paper's hook must.
func (b *Bucket) FlatKeepMask(mask *prune.Mask) []bool {
	keep := make([]bool, len(b.Flat))
	for i, p := range b.Params {
		off := b.offsets[i]
		pk := mask.Of(p.Name)
		for j := 0; j < p.NumElements(); j++ {
			if pk == nil {
				keep[off+j] = true
			} else {
				keep[off+j] = pk[j]
			}
		}
	}
	return keep
}

// BuildBuckets partitions the model's parameters into buckets of at most
// capBytes bytes (fp32), in reverse registration order. A parameter larger
// than capBytes gets its own bucket.
func BuildBuckets(m *nn.Model, capBytes int) []*Bucket {
	if capBytes <= 0 {
		capBytes = DefaultBucketBytes
	}
	params := m.Params()
	var buckets []*Bucket
	cur := &Bucket{}
	curBytes := 0
	flush := func() {
		if len(cur.Params) == 0 {
			return
		}
		total := 0
		cur.offsets = make([]int, len(cur.Params))
		for i, p := range cur.Params {
			cur.offsets[i] = total
			total += p.NumElements()
		}
		cur.Flat = make([]float32, total)
		cur.Index = len(buckets)
		buckets = append(buckets, cur)
		cur = &Bucket{}
		curBytes = 0
	}
	for i := len(params) - 1; i >= 0; i-- {
		p := params[i]
		pb := p.NumElements() * 4
		if curBytes > 0 && curBytes+pb > capBytes {
			flush()
		}
		cur.Params = append(cur.Params, p)
		curBytes += pb
	}
	flush()
	return buckets
}

// Hook is the communication-hook interface: Sync must replace b.Flat with
// the *average* of all workers' bucket gradients and return the
// synchronized completion time. Implementations live in internal/core.
type Hook interface {
	Name() string
	Sync(rank int, b *Bucket, localTime float64) float64
}

// ComputeModel converts a model profile into simulated compute seconds. The
// defaults approximate the paper's A40 workers.
type ComputeModel struct {
	// FLOPsPerSample is the forward-pass cost of one sample.
	FLOPsPerSample int64
	// DeviceFLOPS is the accelerator's peak throughput (fp32 FLOP/s).
	DeviceFLOPS float64
	// Efficiency is the achieved fraction of peak (0,1].
	Efficiency float64
	// BackwardFactor scales backward relative to forward (standard ≈ 2×).
	BackwardFactor float64
}

// A40ComputeModel returns the default device model: an NVIDIA A40 at
// 37.4 TFLOP/s fp32 (with TF32 paths) achieving 35% of peak on
// training-sized kernels.
func A40ComputeModel(flopsPerSample int64) ComputeModel {
	return ComputeModel{
		FLOPsPerSample: flopsPerSample,
		DeviceFLOPS:    37.4e12,
		Efficiency:     0.35,
		BackwardFactor: 2,
	}
}

// ForwardSeconds returns the simulated forward time for a batch.
func (c ComputeModel) ForwardSeconds(batch int) float64 {
	return float64(c.FLOPsPerSample) * float64(batch) / (c.DeviceFLOPS * c.Efficiency)
}

// BackwardSeconds returns the simulated backward time for a batch.
func (c ComputeModel) BackwardSeconds(batch int) float64 {
	return c.ForwardSeconds(batch) * c.BackwardFactor
}

// IterSeconds returns the total compute time of one iteration.
func (c ComputeModel) IterSeconds(batch int) float64 {
	return c.ForwardSeconds(batch) + c.BackwardSeconds(batch)
}

// Overlap selects how bucket communication interleaves with backward
// compute when composing iteration time.
type Overlap int

// Overlap modes.
const (
	// OverlapNone serializes compute then communication — the conservative
	// model used for the headline results (the paper's bottleneck regimes
	// are communication-dominated, where overlap barely matters).
	OverlapNone Overlap = iota
	// OverlapBackward hides communication under backward compute: the
	// iteration pays forward + max(backward, comm), DDP's best case.
	OverlapBackward
)

// String implements fmt.Stringer.
func (o Overlap) String() string {
	switch o {
	case OverlapNone:
		return "none"
	case OverlapBackward:
		return "backward"
	}
	return "unknown"
}

// IterationTime composes one iteration's simulated duration from compute
// and communication seconds under the given overlap model.
func IterationTime(c ComputeModel, batch int, commSeconds float64, o Overlap) float64 {
	switch o {
	case OverlapNone:
		return c.IterSeconds(batch) + commSeconds
	case OverlapBackward:
		bw := c.BackwardSeconds(batch)
		if commSeconds > bw {
			return c.ForwardSeconds(batch) + commSeconds
		}
		return c.IterSeconds(batch)
	}
	panic(fmt.Sprintf("ddp: unknown overlap mode %d", o))
}
