package compress

import (
	"fmt"

	"pactrain/internal/collective"
	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// decodeSumSparse accumulates a sparse payload into out in parallel. The
// indices within one payload are unique, so chunks write disjoint
// coordinates and each out[j] receives exactly one add — bit-identical to
// the scalar loop for any chunking.
func decodeSumSparse(p collective.SparsePayload, out []float32) {
	par.For(len(p.Indices), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[p.Indices[i]] += p.Values[i]
		}
	})
}

// TopK transmits the k = ratio·n largest-magnitude coordinates as
// (value,index) pairs [Aji & Heafield 2017]. Selections differ per worker,
// so aggregation requires all-gather (Table 1: incompatible with
// all-reduce). Use WrapErrorFeedback to add the residual accumulation that
// makes TopK converge.
type TopK struct {
	Ratio float64

	sel topKSelector
}

// NewTopK returns a TopK compressor with the given keep ratio.
func NewTopK(ratio float64) *TopK {
	if ratio <= 0 || ratio > 1 {
		panic(fmt.Sprintf("compress: invalid TopK ratio %v", ratio))
	}
	return &TopK{Ratio: ratio}
}

// Name implements Compressor.
func (t *TopK) Name() string { return fmt.Sprintf("topk-%g", t.Ratio) }

// Transport implements Compressor.
func (*TopK) Transport() Transport { return TransportAllGather }

// Wire implements Compressor.
func (*TopK) Wire() collective.WireFormat { return collective.WireSparse }

// Lossless implements Compressor.
func (*TopK) Lossless() bool { return false }

// Encode implements SparseCompressor.
func (t *TopK) Encode(grad []float32) collective.SparsePayload {
	k := ratioCount(len(grad), t.Ratio)
	idx := t.sel.topKIndices(grad, k)
	vals := make([]float32, len(idx))
	par.For(len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = grad[idx[i]]
		}
	})
	return collective.SparsePayload{Values: vals, Indices: idx}
}

// DecodeSum implements SparseCompressor.
func (*TopK) DecodeSum(p collective.SparsePayload, out []float32) {
	decodeSumSparse(p, out)
}

// RandomK transmits a random subset of coordinates, the unbiased (but
// higher-variance) cousin of TopK.
type RandomK struct {
	Ratio float64
	rng   *tensor.RNG
}

// NewRandomK returns a RandomK compressor seeded deterministically.
func NewRandomK(ratio float64, seed uint64) *RandomK {
	if ratio <= 0 || ratio > 1 {
		panic(fmt.Sprintf("compress: invalid RandomK ratio %v", ratio))
	}
	return &RandomK{Ratio: ratio, rng: tensor.NewRNG(seed)}
}

// Name implements Compressor.
func (r *RandomK) Name() string { return fmt.Sprintf("randomk-%g", r.Ratio) }

// Transport implements Compressor.
func (*RandomK) Transport() Transport { return TransportAllGather }

// Wire implements Compressor.
func (*RandomK) Wire() collective.WireFormat { return collective.WireSparse }

// Lossless implements Compressor.
func (*RandomK) Lossless() bool { return false }

// Encode implements SparseCompressor.
func (r *RandomK) Encode(grad []float32) collective.SparsePayload {
	k := ratioCount(len(grad), r.Ratio)
	perm := r.rng.Perm(len(grad))
	idx := make([]int32, k)
	for i := 0; i < k; i++ {
		idx[i] = int32(perm[i])
	}
	// Scale kept coordinates by n/k to stay unbiased in expectation.
	scale := float32(float64(len(grad)) / float64(k))
	vals := make([]float32, k)
	for i, j := range idx {
		vals[i] = grad[j] * scale
	}
	return collective.SparsePayload{Values: vals, Indices: idx}
}

// DecodeSum implements SparseCompressor.
func (*RandomK) DecodeSum(p collective.SparsePayload, out []float32) {
	decodeSumSparse(p, out)
}

// DGC is Deep Gradient Compression [Lin et al. 2018]: TopK sparsification
// with momentum correction and gradient accumulation. Unselected
// coordinates accumulate locally (in velocity u and accumulator v) until
// they win the top-k selection, preserving convergence at aggressive ratios.
type DGC struct {
	Ratio    float64
	Momentum float64

	u []float32 // momentum-corrected velocity
	v []float32 // local gradient accumulator

	sel topKSelector
}

// NewDGC returns a DGC compressor.
func NewDGC(ratio, momentum float64) *DGC {
	if ratio <= 0 || ratio > 1 {
		panic(fmt.Sprintf("compress: invalid DGC ratio %v", ratio))
	}
	return &DGC{Ratio: ratio, Momentum: momentum}
}

// Name implements Compressor.
func (d *DGC) Name() string { return fmt.Sprintf("dgc-%g", d.Ratio) }

// Transport implements Compressor.
func (*DGC) Transport() Transport { return TransportAllGather }

// Wire implements Compressor.
func (*DGC) Wire() collective.WireFormat { return collective.WireSparse }

// Lossless implements Compressor.
func (*DGC) Lossless() bool { return false }

// Encode implements SparseCompressor: momentum correction (u ← m·u + g),
// accumulation (v ← v + u), top-k selection on v, and clearing of the
// transmitted coordinates.
func (d *DGC) Encode(grad []float32) collective.SparsePayload {
	n := len(grad)
	if d.u == nil {
		d.u = make([]float32, n)
		d.v = make([]float32, n)
	}
	if len(d.u) != n {
		panic("compress: DGC gradient length changed between iterations")
	}
	m := float32(d.Momentum)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.u[i] = m*d.u[i] + grad[i]
			d.v[i] += d.u[i]
		}
	})
	k := ratioCount(n, d.Ratio)
	idx := d.sel.topKIndices(d.v, k)
	vals := make([]float32, len(idx))
	for i, j := range idx {
		vals[i] = d.v[j]
		d.v[j] = 0
		d.u[j] = 0 // momentum factor masking
	}
	return collective.SparsePayload{Values: vals, Indices: idx}
}

// DecodeSum implements SparseCompressor.
func (*DGC) DecodeSum(p collective.SparsePayload, out []float32) {
	decodeSumSparse(p, out)
}

// Reset clears accumulated state (used between experiments).
func (d *DGC) Reset() { d.u, d.v = nil, nil }

// ErrorFeedback wraps a sparse compressor with residual accumulation
// (error feedback): coordinates not transmitted this round are added back
// into the next gradient, turning one-shot truncation error into delay.
type ErrorFeedback struct {
	Inner    SparseCompressor
	residual []float32
}

// WrapErrorFeedback wraps inner with an error-feedback residual.
func WrapErrorFeedback(inner SparseCompressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+ef" }

// Transport implements Compressor.
func (e *ErrorFeedback) Transport() Transport { return e.Inner.Transport() }

// Wire implements Compressor.
func (e *ErrorFeedback) Wire() collective.WireFormat { return e.Inner.Wire() }

// Lossless implements Compressor.
func (e *ErrorFeedback) Lossless() bool { return false }

// Encode implements SparseCompressor.
func (e *ErrorFeedback) Encode(grad []float32) collective.SparsePayload {
	n := len(grad)
	if e.residual == nil {
		e.residual = make([]float32, n)
	}
	if len(e.residual) != n {
		panic("compress: ErrorFeedback gradient length changed")
	}
	corrected := make([]float32, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			corrected[i] = grad[i] + e.residual[i]
		}
	})
	p := e.Inner.Encode(corrected)
	// Residual = corrected − transmitted.
	copy(e.residual, corrected)
	for _, j := range p.Indices {
		e.residual[j] = 0
	}
	// DGC manages its own accumulation; its Encode already consumed the
	// corrected gradient, so sent coordinates are simply cleared above.
	return p
}

// DecodeSum implements SparseCompressor.
func (e *ErrorFeedback) DecodeSum(p collective.SparsePayload, out []float32) {
	e.Inner.DecodeSum(p, out)
}

// Reset clears the residual.
func (e *ErrorFeedback) Reset() { e.residual = nil }

// COOBytes returns the wire size of a coordinate-list encoding of k
// non-zeros (value + 32-bit index per entry), the format whose overhead the
// paper cites as a reason plain sparse encodings underperform at moderate
// sparsity (§II-B).
func COOBytes(k int) float64 { return collective.WireSparse.MessageBytes(k) }

// DenseBytes returns the wire size of a dense fp32 encoding of n elements.
func DenseBytes(n int) float64 { return collective.WireFP32.MessageBytes(n) }

// COOBeatsDense reports whether a COO encoding of k non-zeros out of n
// elements is smaller than the dense encoding — true only below 50%
// density, which is why pruning alone (30–80% sparsity) does not make COO
// pay off and PacTrain compacts against a shared mask instead.
func COOBeatsDense(k, n int) bool { return COOBytes(k) < DenseBytes(n) }
