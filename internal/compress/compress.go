// Package compress implements the gradient compression schemes evaluated in
// the PacTrain paper: the lossless fp32 baseline, FP16 quantization, TopK
// and RandomK sparsification, DGC (Deep Gradient Compression with momentum
// correction), TernGrad ternary quantization, QSGD-style stochastic
// quantization, a THC-style homomorphic lattice, and PacTrain's own
// mask-compact compressor (plain and ternary).
//
// Compressors are classified by the transport they require (Table 1's
// compatibility column):
//
//   - TransportAllReduce: the encoded payload of different workers can be
//     summed elementwise, so ring all-reduce applies directly.
//   - TransportAllGather: workers select different coordinates, so payloads
//     must be exchanged wholesale and summed locally.
//   - TransportPS: the scheme was designed around a centralized aggregator.
package compress

import (
	"fmt"
	"math"
	"sort"

	"pactrain/internal/collective"
	"pactrain/internal/par"
)

// Transport describes which collective a compressor's payloads support.
type Transport int

// Transport values.
const (
	TransportAllReduce Transport = iota
	TransportAllGather
	TransportPS
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportAllReduce:
		return "all-reduce"
	case TransportAllGather:
		return "all-gather"
	case TransportPS:
		return "parameter-server"
	}
	return "unknown"
}

// Compressor is the common surface of all schemes.
type Compressor interface {
	Name() string
	Transport() Transport
	// Wire returns the on-wire representation of payload elements.
	Wire() collective.WireFormat
	// Lossless reports whether decode(aggregate(encode)) is exact.
	Lossless() bool
}

// DenseCompressor produces payloads that aggregate by elementwise sum
// (all-reduce compatible, or PS for THC).
type DenseCompressor interface {
	Compressor
	// Encode transforms a gradient into its dense wire payload. The payload
	// length may differ from len(grad) (PacTrain compacts it).
	Encode(grad []float32) []float32
	// Decode writes the aggregated payload back into a full-size gradient.
	Decode(payload []float32, out []float32)
}

// SparseCompressor produces per-worker coordinate selections that must be
// exchanged via all-gather.
type SparseCompressor interface {
	Compressor
	Encode(grad []float32) collective.SparsePayload
	// DecodeSum accumulates one worker's payload into out (out += payload).
	DecodeSum(p collective.SparsePayload, out []float32)
}

// ReusableEncoder is implemented by dense compressors whose Encode can write
// into a caller-provided buffer. EncodeInto(grad, buf) returns the payload,
// reusing buf's backing array when it is large enough; the trainer holds one
// buffer per bucket so steady-state iterations allocate nothing on this
// path. EncodeInto(grad, nil) is exactly Encode(grad).
type ReusableEncoder interface {
	EncodeInto(grad, buf []float32) []float32
}

// grow returns buf resized to n elements, reallocating only when the backing
// array is too small. Contents are unspecified; callers overwrite every
// element (or zero explicitly).
func grow(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// maxAbs returns max_i |v[i]| — the shared scale factor of the quantizers —
// reduced in parallel. Partial chunk maxima combine in chunk order; float
// max is exactly associative, so the result is bit-identical to the scalar
// scan for any chunking.
func maxAbs(v []float32) float32 {
	var s float32
	if len(v) < par.MinWork || par.Budget() <= 1 {
		for _, x := range v {
			if a := abs32(x); a > s {
				s = a
			}
		}
		return s
	}
	partial := make([]float32, par.Budget())
	n := par.ForChunks(len(v), func(chunk, lo, hi int) {
		var m float32
		for _, x := range v[lo:hi] {
			if a := abs32(x); a > m {
				m = a
			}
		}
		partial[chunk] = m
	})
	for _, m := range partial[:n] {
		if m > s {
			s = m
		}
	}
	return s
}

// --- FP32 (no compression) --------------------------------------------------

// FP32 is the lossless identity baseline ("all-reduce" in the figures).
type FP32 struct{}

// NewFP32 returns the identity compressor.
func NewFP32() *FP32 { return &FP32{} }

// Name implements Compressor.
func (*FP32) Name() string { return "all-reduce" }

// Transport implements Compressor.
func (*FP32) Transport() Transport { return TransportAllReduce }

// Wire implements Compressor.
func (*FP32) Wire() collective.WireFormat { return collective.WireFP32 }

// Lossless implements Compressor.
func (*FP32) Lossless() bool { return true }

// Encode implements DenseCompressor.
func (c *FP32) Encode(grad []float32) []float32 { return c.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder.
func (*FP32) EncodeInto(grad, buf []float32) []float32 {
	out := grow(buf, len(grad))
	copy(out, grad)
	return out
}

// Decode implements DenseCompressor.
func (*FP32) Decode(payload []float32, out []float32) { copy(out, payload) }

// --- FP16 -------------------------------------------------------------------

// FP16 rounds every gradient element through IEEE-754 binary16, halving the
// wire volume. Aggregation still sums in float32, as NCCL does for fp16
// all-reduce with fp32 accumulation.
type FP16 struct{}

// NewFP16 returns the fp16 compressor.
func NewFP16() *FP16 { return &FP16{} }

// Name implements Compressor.
func (*FP16) Name() string { return "fp16" }

// Transport implements Compressor.
func (*FP16) Transport() Transport { return TransportAllReduce }

// Wire implements Compressor.
func (*FP16) Wire() collective.WireFormat { return collective.WireFP16 }

// Lossless implements Compressor.
func (*FP16) Lossless() bool { return false }

// Encode implements DenseCompressor.
func (c *FP16) Encode(grad []float32) []float32 { return c.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder. The conversion is elementwise, so
// the chunked parallel loop is bit-identical to the scalar one.
func (*FP16) EncodeInto(grad, buf []float32) []float32 {
	out := grow(buf, len(grad))
	par.For(len(grad), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = HalfToFloat32(Float32ToHalf(grad[i]))
		}
	})
	return out
}

// Decode implements DenseCompressor.
func (*FP16) Decode(payload []float32, out []float32) { copy(out, payload) }

// --- IEEE-754 binary16 conversion -------------------------------------------

// Float32ToHalf converts a float32 to IEEE-754 binary16 bits with
// round-to-nearest.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32((bits>>23)&0xff) - 127 + 15
	man := bits & 0x7fffff

	if (bits>>23)&0xff == 0xff { // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	}
	if exp >= 31 { // overflow → Inf
		return sign | 0x7c00
	}
	if exp <= 0 { // subnormal half or zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(man >> shift)
		if man>>(shift-1)&1 != 0 { // round half up
			half++
		}
		return sign | half
	}
	half := sign | uint16(exp)<<10 | uint16(man>>13)
	if man&0x1000 != 0 {
		half++ // rounding may carry into the exponent, which is still valid
	}
	return half
}

// HalfToFloat32 converts IEEE-754 binary16 bits to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		f := float32(man) / (1 << 24)
		if sign != 0 {
			return -f
		}
		return f
	case 31:
		if man != 0 {
			return float32(math.NaN())
		}
		if sign != 0 {
			return float32(math.Inf(-1))
		}
		return float32(math.Inf(1))
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// NMSE computes the normalized mean squared error ‖x−x̂‖²/‖x‖² used by the
// paper (§III-D) to quantify compression distortion.
func NMSE(x, xhat []float32) float64 {
	if len(x) != len(xhat) {
		panic("compress: NMSE length mismatch")
	}
	var num, den float64
	for i := range x {
		d := float64(x[i] - xhat[i])
		num += d * d
		den += float64(x[i]) * float64(x[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// --- Registry ---------------------------------------------------------------

// topKSelector owns the scratch index slice quickselect partitions. Sparse
// compressors embed one and reuse it across calls, removing the per-bucket
// per-iteration allocation the historical sort-based selection paid.
// Selectors are not safe for concurrent use; each rank's compressor instance
// is driven serially, which is the only way the trainer calls them.
type topKSelector struct {
	scratch []int32
}

// topKIndices returns the indices of the k largest |v| entries, ascending.
// Ties between equal magnitudes break toward the lower index — the same
// total order (|v| descending, index ascending) the original full sort used,
// so quickselect returns the identical index set.
func (s *topKSelector) topKIndices(v []float32, k int) []int32 {
	n := len(v)
	if cap(s.scratch) < n {
		s.scratch = make([]int32, n)
	}
	idx := s.scratch[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	if k > n {
		k = n
	}
	if k < n {
		quickselectTopK(v, idx, k)
	}
	out := append([]int32(nil), idx[:k]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// topKIndices is the selector without scratch reuse, for one-shot callers.
func topKIndices(v []float32, k int) []int32 {
	var s topKSelector
	return s.topKIndices(v, k)
}

// topKLess is the strict total order selection runs under: larger magnitude
// first, lower index first among equal magnitudes. The index tiebreak makes
// every pair of distinct indices comparable, so the order has no duplicates.
func topKLess(v []float32, a, b int32) bool {
	va, vb := abs32(v[a]), abs32(v[b])
	if va != vb {
		return va > vb
	}
	return a < b
}

// quickselectTopK partially orders idx so idx[:k] holds the first k entries
// under topKLess — the k largest-magnitude coordinates with deterministic
// tie-breaks, in O(n) expected time. The pivot is a median of three, which
// is deterministic (no RNG to perturb reproducibility) and defeats the
// sorted/reversed inputs that degrade a fixed-pivot quickselect.
func quickselectTopK(v []float32, idx []int32, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		if topKLess(v, idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if topKLess(v, idx[hi-1], idx[lo]) {
			idx[hi-1], idx[lo] = idx[lo], idx[hi-1]
		}
		if topKLess(v, idx[hi-1], idx[mid]) {
			idx[hi-1], idx[mid] = idx[mid], idx[hi-1]
		}
		pivot := idx[mid]
		i, j := lo-1, hi
		for {
			for {
				i++
				if !topKLess(v, idx[i], pivot) {
					break
				}
			}
			for {
				j--
				if !topKLess(v, pivot, idx[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			idx[i], idx[j] = idx[j], idx[i]
		}
		// Hoare invariant: every entry of [lo, j] precedes every entry of
		// (j, hi) under topKLess. Recurse into whichever side straddles k.
		switch {
		case k <= j:
			hi = j + 1
		case k > j+1:
			lo = j + 1
		default:
			return
		}
	}
	// Small windows finish by insertion sort, which also handles the
	// already-partitioned prefix exactly.
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && topKLess(v, idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// ratioCount converts a compression ratio to a coordinate count, keeping at
// least one coordinate for non-empty gradients.
func ratioCount(n int, ratio float64) int {
	k := int(math.Round(float64(n) * ratio))
	if k < 1 && n > 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// ByName constructs a compressor from its evaluation-figure name, e.g.
// "all-reduce", "fp16", "topk-0.1", "topk-0.01", "randomk-0.1", "terngrad",
// "qsgd", "thc", "dgc-0.01".
func ByName(name string, seed uint64) (Compressor, error) {
	switch {
	case name == "all-reduce" || name == "fp32" || name == "none":
		return NewFP32(), nil
	case name == "fp16":
		return NewFP16(), nil
	case name == "terngrad":
		return NewTernGrad(seed), nil
	case name == "qsgd":
		return NewQSGD(256, seed), nil
	case name == "thc":
		return NewTHC(256), nil
	case name == "topk-0.1":
		return NewTopK(0.1), nil
	case name == "topk-0.01":
		return NewTopK(0.01), nil
	case name == "randomk-0.1":
		return NewRandomK(0.1, seed), nil
	case name == "randomk-0.01":
		return NewRandomK(0.01, seed), nil
	case name == "dgc-0.1":
		return NewDGC(0.1, 0.9), nil
	case name == "dgc-0.01":
		return NewDGC(0.01, 0.9), nil
	}
	return nil, fmt.Errorf("compress: unknown compressor %q", name)
}
