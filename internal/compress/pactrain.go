package compress

import (
	"fmt"

	"pactrain/internal/collective"
	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// MaskCompact is PacTrain's compression scheme (§III-C): because every
// worker shares global knowledge of the gradient sparsity pattern (the
// pruning mask), the sparse gradient can be reformatted into a
// low-dimensional *dense* tensor containing only the non-masked coordinates
// — no indices on the wire, elementwise summation still valid, hence fully
// all-reduce compatible and lossless on the retained coordinates.
//
// The mask is installed by the Mask Tracker once the sparsity pattern is
// stable; until then the caller must fall back to full synchronization
// (Algorithm 1, lines 11–12).
type MaskCompact struct {
	indices []int32 // retained coordinates, ascending
	fullLen int
	maskSet bool

	// Ternary optionally applies TernGrad quantization to the compacted
	// gradient (§III-D), shrinking the wire further.
	Ternary bool
	rng     *tensor.RNG
}

// NewMaskCompact returns a compressor without a mask; SetMask must be called
// before Encode.
func NewMaskCompact(ternary bool, seed uint64) *MaskCompact {
	return &MaskCompact{Ternary: ternary, rng: tensor.NewRNG(seed)}
}

// SetMask installs the shared sparsity pattern: the ascending indices of
// retained (non-pruned) coordinates within a gradient of fullLen elements.
func (m *MaskCompact) SetMask(indices []int32, fullLen int) {
	for i := 1; i < len(indices); i++ {
		if indices[i] <= indices[i-1] {
			panic("compress: MaskCompact indices must be strictly ascending")
		}
	}
	if len(indices) > 0 && int(indices[len(indices)-1]) >= fullLen {
		panic("compress: MaskCompact index out of range")
	}
	m.indices = indices
	m.fullLen = fullLen
	m.maskSet = true
}

// HasMask reports whether a mask is installed. A fully pruned (empty) mask
// is valid: it encodes to an empty payload.
func (m *MaskCompact) HasMask() bool { return m.maskSet }

// NNZ returns the retained coordinate count.
func (m *MaskCompact) NNZ() int { return len(m.indices) }

// Name implements Compressor.
func (m *MaskCompact) Name() string {
	if m.Ternary {
		return "pactrain-ternary"
	}
	return "pactrain"
}

// Transport implements Compressor.
func (*MaskCompact) Transport() Transport { return TransportAllReduce }

// Wire implements Compressor.
func (m *MaskCompact) Wire() collective.WireFormat {
	if m.Ternary {
		return collective.WireInt8
	}
	return collective.WireFP32
}

// Lossless implements Compressor. The compaction itself is lossless on the
// retained support (the paper's "non-lossy compression scheme"); the
// optional ternary stage is not.
func (m *MaskCompact) Lossless() bool { return !m.Ternary }

// Encode implements DenseCompressor: gather the retained coordinates into a
// compact dense vector of length NNZ.
func (m *MaskCompact) Encode(grad []float32) []float32 { return m.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder. The gather is parallel (mask
// indices are strictly ascending, so chunks read and write disjoint ranges);
// the optional ternary stage consumes a sequential RNG stream and stays
// scalar to preserve bit-exact reproducibility.
func (m *MaskCompact) EncodeInto(grad, buf []float32) []float32 {
	if !m.maskSet {
		panic("compress: MaskCompact.Encode before SetMask")
	}
	if len(grad) != m.fullLen {
		panic(fmt.Sprintf("compress: gradient length %d does not match mask domain %d", len(grad), m.fullLen))
	}
	out := grow(buf, len(m.indices))
	par.For(len(m.indices), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = grad[m.indices[i]]
		}
	})
	if m.Ternary {
		Ternarize(m.rng, out, out)
	}
	return out
}

// Decode implements DenseCompressor: scatter the aggregated compact vector
// back to full size; masked coordinates stay zero, exactly reproducing the
// GSE-enforced gradient support.
func (m *MaskCompact) Decode(payload []float32, out []float32) {
	if len(payload) != len(m.indices) {
		panic("compress: MaskCompact.Decode payload length mismatch")
	}
	par.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 0
		}
	})
	par.For(len(m.indices), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[m.indices[i]] = payload[i]
		}
	})
}

// EncodeSparse gathers the retained coordinates as a COO (values, indices)
// pair — the index-list wire format the adaptive controller can pick when
// latency, not bytes, bounds the round. The index slice is the installed
// mask and must not be mutated; values include in-mask zeros, so the
// payload length is always NNZ (replica-identical, and exactly what the
// controller's quote priced).
func (m *MaskCompact) EncodeSparse(grad []float32) ([]float32, []int32) {
	if !m.maskSet {
		panic("compress: MaskCompact.EncodeSparse before SetMask")
	}
	if len(grad) != m.fullLen {
		panic(fmt.Sprintf("compress: gradient length %d does not match mask domain %d", len(grad), m.fullLen))
	}
	vals := make([]float32, len(m.indices))
	par.For(len(m.indices), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = grad[m.indices[i]]
		}
	})
	return vals, m.indices
}

// CompressionRatio returns wire bytes relative to dense fp32 for the
// installed mask.
func (m *MaskCompact) CompressionRatio() float64 {
	if m.fullLen == 0 {
		return 1
	}
	return m.Wire().MessageBytes(len(m.indices)) / collective.WireFP32.MessageBytes(m.fullLen)
}

// MaskIndices converts a boolean keep-mask into the ascending index list
// MaskCompact consumes.
func MaskIndices(keep []bool) []int32 {
	var idx []int32
	for i, k := range keep {
		if k {
			idx = append(idx, int32(i))
		}
	}
	return idx
}
