package compress

import (
	"fmt"
	"sort"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// testGrad builds a deterministic gradient with repeated magnitudes (ties
// exercise the quickselect total order) and exact negative mirrors.
func testGrad(n int, seed uint64) []float32 {
	rng := tensor.NewRNG(seed)
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Float64()*2 - 1)
	}
	for i := 0; i+8 < n; i += 8 {
		v[i+3] = v[i]  // exact duplicate magnitude
		v[i+5] = -v[i] // |x| tie with opposite sign
	}
	return v
}

// withBudget runs f under the given kernel budget, restoring the old one.
func withBudget(budget int, f func()) {
	old := par.Budget()
	par.SetBudget(budget)
	defer par.SetBudget(old)
	f()
}

// referenceTopK is the historical full-sort selection: every index ordered
// by (|v| desc, index asc), first k kept, ascending.
func referenceTopK(v []float32, k int) []int32 {
	idx := make([]int32, len(v))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return topKLess(v, idx[a], idx[b]) })
	out := append([]int32(nil), idx[:k]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestQuickselectMatchesReferenceSort(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 17, 100, 4096} {
		v := testGrad(n, uint64(n)+3)
		for _, k := range []int{1, 2, n / 10, n / 2, n - 1, n} {
			if k < 1 || k > n {
				continue
			}
			got := topKIndices(v, k)
			want := referenceTopK(v, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: %d indices, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: index[%d] = %d, want %d", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSelectorScratchReuseIsStable(t *testing.T) {
	t.Parallel()
	var sel topKSelector
	v := testGrad(10000, 9)
	first := sel.topKIndices(v, 100)
	for round := 0; round < 3; round++ {
		got := sel.topKIndices(v, 100)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("round %d: index[%d] = %d, want %d", round, i, got[i], first[i])
			}
		}
	}
}

// TestParallelKernelsBitExact pins the tentpole contract: every parallel
// kernel produces byte-identical output at any worker budget, because the
// chunked loops are elementwise (chunk boundaries cannot change any float)
// and the reductions preserve the scalar evaluation order.
func TestParallelKernelsBitExact(t *testing.T) {
	const n = par.MinWork*3 + 1234
	grad := testGrad(n, 42)

	mask := make([]int32, 0, n/2)
	for i := int32(0); i < n; i += 2 {
		mask = append(mask, i)
	}

	type kernel struct {
		name string
		run  func() any
	}
	kernels := []kernel{
		{"fp16-encode", func() any { return NewFP16().Encode(grad) }},
		{"maxabs", func() any { return maxAbs(grad) }},
		{"topk-encode", func() any { return NewTopK(0.01).Encode(grad) }},
		{"dgc-encode", func() any {
			d := NewDGC(0.01, 0.9)
			var payloads []collective.SparsePayload
			for i := 0; i < 3; i++ { // momentum state evolves across calls
				payloads = append(payloads, d.Encode(grad))
			}
			return payloads
		}},
		{"topk-decodesum", func() any {
			p := NewTopK(0.05).Encode(grad)
			out := make([]float32, n)
			NewTopK(0.05).DecodeSum(p, out)
			return out
		}},
		{"thc-encode", func() any { return NewTHC(16).Encode(grad) }},
		{"maskcompact-roundtrip", func() any {
			mc := NewMaskCompact(false, 7)
			mc.SetMask(mask, n)
			payload := mc.Encode(grad)
			out := make([]float32, n)
			mc.Decode(payload, out)
			vals, idx := mc.EncodeSparse(grad)
			return []any{payload, out, vals, idx}
		}},
	}

	for _, k := range kernels {
		var scalar, parallel any
		withBudget(1, func() { scalar = k.run() })
		withBudget(8, func() { parallel = k.run() })
		if fmt.Sprintf("%v", scalar) != fmt.Sprintf("%v", parallel) {
			t.Errorf("%s: budget-8 output differs from scalar", k.name)
		}
	}
}

func BenchmarkEncodeSparse(b *testing.B) {
	for _, n := range []int{64 << 10, 1024 << 10, 4096 << 10} {
		b.Run(fmt.Sprintf("n=%dk", n>>10), func(b *testing.B) {
			grad := testGrad(n, 5)
			mc := NewMaskCompact(true, 3)
			mask := make([]int32, 0, n/2)
			for i := int32(0); i < int32(n); i += 2 {
				mask = append(mask, i)
			}
			mc.SetMask(mask, n)
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, idx := mc.EncodeSparse(grad)
				_ = vals
				_ = idx
			}
		})
	}
}

func BenchmarkTopKEncode(b *testing.B) {
	grad := testGrad(2_500_000, 5)
	topk := NewTopK(0.01)
	b.SetBytes(int64(len(grad)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topk.Encode(grad)
	}
}
