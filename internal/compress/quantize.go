package compress

import (
	"fmt"
	"math"

	"pactrain/internal/collective"
	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// TernGrad quantizes each gradient coordinate to s·{−1, 0, +1} where
// s = max|g| and P(±s) = |g|/s [Wen et al. 2017]. The quantization is
// unbiased in expectation (Eq. 3 of the PacTrain paper). Sums of ternary
// payloads remain integer multiples of the scales, so aggregation is
// all-reduce compatible; the wire carries one byte per element to allow the
// widening that summation across eight workers requires.
type TernGrad struct {
	rng *tensor.RNG
}

// NewTernGrad returns a TernGrad compressor with a deterministic stream.
func NewTernGrad(seed uint64) *TernGrad {
	return &TernGrad{rng: tensor.NewRNG(seed)}
}

// Name implements Compressor.
func (*TernGrad) Name() string { return "terngrad" }

// Transport implements Compressor.
func (*TernGrad) Transport() Transport { return TransportAllReduce }

// Wire implements Compressor.
func (*TernGrad) Wire() collective.WireFormat { return collective.WireInt8 }

// Lossless implements Compressor.
func (*TernGrad) Lossless() bool { return false }

// Encode implements DenseCompressor.
func (t *TernGrad) Encode(grad []float32) []float32 { return t.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder. The ternary draw consumes a
// sequential RNG stream, so the quantization loop itself stays scalar; only
// the buffer is reused.
func (t *TernGrad) EncodeInto(grad, buf []float32) []float32 {
	out := grow(buf, len(grad))
	Ternarize(t.rng, grad, out)
	return out
}

// Decode implements DenseCompressor.
func (*TernGrad) Decode(payload []float32, out []float32) { copy(out, payload) }

// Ternarize writes the ternary quantization of grad into out (which may
// alias grad): out[i] ∈ {−s, 0, +s} with E[out] = grad. It is exported so
// PacTrain can reuse it on compacted gradients (§III-D).
func Ternarize(rng *tensor.RNG, grad []float32, out []float32) {
	s := maxAbs(grad)
	if s == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for i, v := range grad {
		p := float64(abs32(v) / s)
		if rng.Float64() < p {
			if v >= 0 {
				out[i] = s
			} else {
				out[i] = -s
			}
		} else {
			out[i] = 0
		}
	}
}

// QSGD performs stochastic uniform quantization with L levels per sign
// [Alistarh et al. 2017-style]: coordinates round stochastically to the
// nearest lattice point of s·{0, 1/L, …, 1}, remaining unbiased. With
// L = 256 the wire cost is one byte per element.
type QSGD struct {
	Levels int
	rng    *tensor.RNG
}

// NewQSGD returns a QSGD compressor.
func NewQSGD(levels int, seed uint64) *QSGD {
	if levels < 2 {
		panic(fmt.Sprintf("compress: QSGD needs ≥2 levels, got %d", levels))
	}
	return &QSGD{Levels: levels, rng: tensor.NewRNG(seed)}
}

// Name implements Compressor.
func (q *QSGD) Name() string { return fmt.Sprintf("qsgd-%d", q.Levels) }

// Transport implements Compressor.
func (*QSGD) Transport() Transport { return TransportAllReduce }

// Wire implements Compressor.
func (q *QSGD) Wire() collective.WireFormat {
	bits := math.Ceil(math.Log2(float64(q.Levels))) + 1 // + sign bit
	return collective.WireFormat{Name: q.Name(), BytesPerElement: bits / 8, HeaderBytes: 8}
}

// Lossless implements Compressor.
func (*QSGD) Lossless() bool { return false }

// Encode implements DenseCompressor.
func (q *QSGD) Encode(grad []float32) []float32 { return q.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder. Like TernGrad, the stochastic
// rounding consumes a sequential RNG stream and stays scalar.
func (q *QSGD) EncodeInto(grad, buf []float32) []float32 {
	out := grow(buf, len(grad))
	s := maxAbs(grad)
	if s == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	L := float64(q.Levels)
	for i, v := range grad {
		x := float64(abs32(v)) / float64(s) * L
		lo := math.Floor(x)
		frac := x - lo
		level := lo
		if q.rng.Float64() < frac {
			level++
		}
		val := float32(level / L * float64(s))
		if v < 0 {
			val = -val
		}
		out[i] = val
	}
	return out
}

// Decode implements DenseCompressor.
func (*QSGD) Decode(payload []float32, out []float32) { copy(out, payload) }

// THC is a THC-style homomorphic lattice quantizer [Li et al. 2024]: all
// workers quantize onto a shared uniform lattice so the aggregator can sum
// quantized values without decompressing. The published system performs the
// aggregation on a parameter server / programmable switch, which is why
// Table 1 marks it incompatible with all-reduce; its transport here is PS.
type THC struct {
	Levels int
}

// NewTHC returns a THC-style compressor.
func NewTHC(levels int) *THC {
	if levels < 2 {
		panic(fmt.Sprintf("compress: THC needs ≥2 levels, got %d", levels))
	}
	return &THC{Levels: levels}
}

// Name implements Compressor.
func (*THC) Name() string { return "thc" }

// Transport implements Compressor.
func (*THC) Transport() Transport { return TransportPS }

// Wire implements Compressor.
func (t *THC) Wire() collective.WireFormat {
	bits := math.Ceil(math.Log2(float64(t.Levels)))
	return collective.WireFormat{Name: "thc", BytesPerElement: bits / 8, HeaderBytes: 16}
}

// Lossless implements Compressor.
func (*THC) Lossless() bool { return false }

// Encode implements DenseCompressor: deterministic rounding onto the shared
// lattice spanning [−s, s].
func (t *THC) Encode(grad []float32) []float32 { return t.EncodeInto(grad, nil) }

// EncodeInto implements ReusableEncoder. The rounding is deterministic and
// elementwise, so both the max reduction and the lattice loop parallelize
// bit-exactly.
func (t *THC) EncodeInto(grad, buf []float32) []float32 {
	out := grow(buf, len(grad))
	s := maxAbs(grad)
	if s == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	L := float64(t.Levels - 1)
	step := 2 * float64(s) / L
	par.For(len(grad), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q := math.Round((float64(grad[i]) + float64(s)) / step)
			out[i] = float32(q*step - float64(s))
		}
	})
	return out
}

// Decode implements DenseCompressor.
func (*THC) Decode(payload []float32, out []float32) { copy(out, payload) }
