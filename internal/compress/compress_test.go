package compress

import (
	"math"
	"testing"
	"testing/quick"

	"pactrain/internal/tensor"
)

func randGrad(seed uint64, n int) []float32 {
	r := tensor.NewRNG(seed)
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(r.NormFloat64())
	}
	return g
}

func TestFP32RoundTrip(t *testing.T) {
	c := NewFP32()
	g := randGrad(1, 100)
	enc := c.Encode(g)
	out := make([]float32, 100)
	c.Decode(enc, out)
	for i := range g {
		if out[i] != g[i] {
			t.Fatal("fp32 must be exact")
		}
	}
	if !c.Lossless() || c.Transport() != TransportAllReduce {
		t.Fatal("fp32 properties wrong")
	}
}

func TestHalfConversionKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // max half
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Fatalf("Float32ToHalf(%v) = %#x, want %#x", c.f, got, c.h)
		}
		if got := HalfToFloat32(c.h); got != c.f {
			t.Fatalf("HalfToFloat32(%#x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestHalfSpecials(t *testing.T) {
	if h := Float32ToHalf(float32(math.Inf(1))); h != 0x7c00 {
		t.Fatalf("+inf = %#x", h)
	}
	if h := Float32ToHalf(float32(math.Inf(-1))); h != 0xfc00 {
		t.Fatalf("-inf = %#x", h)
	}
	if !math.IsNaN(float64(HalfToFloat32(Float32ToHalf(float32(math.NaN()))))) {
		t.Fatal("NaN must round-trip to NaN")
	}
	if h := Float32ToHalf(1e20); h != 0x7c00 {
		t.Fatalf("overflow should produce inf, got %#x", h)
	}
	// Subnormal half round-trips approximately.
	small := float32(3e-6)
	back := HalfToFloat32(Float32ToHalf(small))
	if math.Abs(float64(back-small))/float64(small) > 0.2 {
		t.Fatalf("subnormal round-trip %v → %v", small, back)
	}
}

// Property: fp16 round-trip error is within half-precision ULP for normal
// values.
func TestPropertyHalfRoundTripPrecision(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		v := float32(r.NormFloat64())
		back := HalfToFloat32(Float32ToHalf(v))
		if v == 0 {
			return back == 0
		}
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		return rel < 1.0/1024 // 2^-10 mantissa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFP16EncodeIsHalfPrecision(t *testing.T) {
	c := NewFP16()
	g := []float32{1.0002441, 3.14159, -2.71828}
	enc := c.Encode(g)
	for i, v := range enc {
		rel := math.Abs(float64(v-g[i])) / math.Abs(float64(g[i]))
		if rel > 1.0/1024 {
			t.Fatalf("fp16 error too large at %d: %v", i, rel)
		}
	}
	if NMSE(g, enc) == 0 {
		t.Fatal("fp16 should introduce some quantization error")
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	c := NewTopK(0.4)
	g := []float32{0.1, -5, 0.2, 3, -0.05}
	p := c.Encode(g)
	if len(p.Values) != 2 {
		t.Fatalf("topk-0.4 of 5 should keep 2, got %d", len(p.Values))
	}
	// Largest magnitudes are -5 (idx 1) and 3 (idx 3); indices ascending.
	if p.Indices[0] != 1 || p.Indices[1] != 3 {
		t.Fatalf("indices %v", p.Indices)
	}
	if p.Values[0] != -5 || p.Values[1] != 3 {
		t.Fatalf("values %v", p.Values)
	}
	out := make([]float32, 5)
	c.DecodeSum(p, out)
	if out[1] != -5 || out[3] != 3 || out[0] != 0 {
		t.Fatalf("decode %v", out)
	}
}

func TestTopKKeepsAtLeastOne(t *testing.T) {
	c := NewTopK(0.001)
	p := c.Encode([]float32{1, 2, 3})
	if len(p.Values) != 1 {
		t.Fatalf("expected 1 kept coordinate, got %d", len(p.Values))
	}
}

func TestTopKInvalidRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(0)
}

func TestRandomKUnbiasedInExpectation(t *testing.T) {
	n := 50
	g := randGrad(3, n)
	sum := make([]float64, n)
	trials := 3000
	c := NewRandomK(0.2, 7)
	for tr := 0; tr < trials; tr++ {
		p := c.Encode(g)
		for i, j := range p.Indices {
			sum[j] += float64(p.Values[i])
		}
	}
	for i := range g {
		mean := sum[i] / float64(trials)
		if math.Abs(mean-float64(g[i])) > 0.25 {
			t.Fatalf("randomk biased at %d: mean %v vs true %v", i, mean, g[i])
		}
	}
}

func TestDGCAccumulatesUnsent(t *testing.T) {
	c := NewDGC(0.2, 0.0) // no momentum: v accumulates raw gradients
	g1 := []float32{10, 1, 1, 1, 1}
	p1 := c.Encode(g1)
	if len(p1.Values) != 1 || p1.Indices[0] != 0 {
		t.Fatalf("first round should send coordinate 0: %+v", p1)
	}
	// Coordinate 0 was cleared; others accumulated. After enough rounds a
	// small coordinate must eventually win.
	won := false
	for i := 0; i < 20; i++ {
		p := c.Encode([]float32{0.1, 1, 1, 1, 1})
		if p.Indices[0] != 0 {
			won = true
			break
		}
	}
	if !won {
		t.Fatal("DGC accumulation never promoted small coordinates")
	}
}

func TestDGCLengthChangePanics(t *testing.T) {
	c := NewDGC(0.5, 0.9)
	c.Encode([]float32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Encode([]float32{1, 2, 3})
}

func TestErrorFeedbackPreservesMass(t *testing.T) {
	inner := NewTopK(0.25)
	c := WrapErrorFeedback(inner)
	g := []float32{4, 3, 2, 1}
	// Round 1 sends {4}; residual keeps 3,2,1.
	p1 := c.Encode(g)
	if len(p1.Values) != 1 || p1.Values[0] != 4 {
		t.Fatalf("round 1: %+v", p1)
	}
	// Round 2 with zero grad: residual 3 should now be sent.
	p2 := c.Encode([]float32{0, 0, 0, 0})
	if len(p2.Values) != 1 || p2.Values[0] != 3 || p2.Indices[0] != 1 {
		t.Fatalf("round 2 should send the residual 3: %+v", p2)
	}
	// Total transmitted over many zero rounds approaches the original mass.
	total := float64(p1.Values[0] + p2.Values[0])
	for i := 0; i < 10; i++ {
		p := c.Encode([]float32{0, 0, 0, 0})
		for _, v := range p.Values {
			total += float64(v)
		}
	}
	if math.Abs(total-10) > 1e-5 {
		t.Fatalf("error feedback lost mass: transmitted %v of 10", total)
	}
}

// TestTernGradUnbiased verifies Eq. 3: E[ternarize(g)] = g.
func TestTernGradUnbiased(t *testing.T) {
	g := []float32{0.8, -0.3, 0.05, -0.9, 0.0}
	rng := tensor.NewRNG(123)
	n := len(g)
	sum := make([]float64, n)
	trials := 20000
	out := make([]float32, n)
	for tr := 0; tr < trials; tr++ {
		Ternarize(rng, g, out)
		for i, v := range out {
			sum[i] += float64(v)
		}
	}
	for i := range g {
		mean := sum[i] / float64(trials)
		if math.Abs(mean-float64(g[i])) > 0.02 {
			t.Fatalf("ternary biased at %d: mean %v vs %v", i, mean, g[i])
		}
	}
}

func TestTernGradValuesAreTernary(t *testing.T) {
	c := NewTernGrad(5)
	g := randGrad(9, 200)
	enc := c.Encode(g)
	var s float32
	for _, v := range g {
		if a := abs32(v); a > s {
			s = a
		}
	}
	for _, v := range enc {
		if v != 0 && v != s && v != -s {
			t.Fatalf("non-ternary value %v (scale %v)", v, s)
		}
	}
}

func TestTernarizeZeroVector(t *testing.T) {
	out := []float32{1, 2, 3}
	Ternarize(tensor.NewRNG(1), []float32{0, 0, 0}, out)
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero gradient must ternarize to zero")
		}
	}
}

func TestQSGDUnbiasedAndQuantized(t *testing.T) {
	c := NewQSGD(4, 11)
	g := []float32{0.5, -0.25, 1.0}
	sum := make([]float64, 3)
	trials := 20000
	for tr := 0; tr < trials; tr++ {
		enc := c.Encode(g)
		for i, v := range enc {
			sum[i] += float64(v)
		}
	}
	for i := range g {
		mean := sum[i] / float64(trials)
		if math.Abs(mean-float64(g[i])) > 0.02 {
			t.Fatalf("qsgd biased at %d: %v vs %v", i, mean, g[i])
		}
	}
}

func TestTHCSharedLattice(t *testing.T) {
	c := NewTHC(16)
	g := []float32{0.5, -0.5, 0.33, -0.99, 1.0}
	enc := c.Encode(g)
	// All outputs must lie on the lattice spanning [-1, 1] with 15 steps.
	step := 2.0 / 15
	for _, v := range enc {
		q := (float64(v) + 1) / step
		if math.Abs(q-math.Round(q)) > 1e-5 {
			t.Fatalf("value %v not on lattice", v)
		}
	}
	if c.Transport() != TransportPS {
		t.Fatal("THC transport should be PS (Table 1 incompatibility)")
	}
}

func TestMaskCompactRoundTrip(t *testing.T) {
	m := NewMaskCompact(false, 1)
	keep := []bool{true, false, false, true, true, false}
	m.SetMask(MaskIndices(keep), 6)
	g := []float32{1, 99, 98, 4, 5, 97} // pruned coords carry garbage
	enc := m.Encode(g)
	if len(enc) != 3 {
		t.Fatalf("compact length %d, want 3", len(enc))
	}
	if enc[0] != 1 || enc[1] != 4 || enc[2] != 5 {
		t.Fatalf("compact values %v", enc)
	}
	out := make([]float32, 6)
	m.Decode(enc, out)
	want := []float32{1, 0, 0, 4, 5, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("decode %v, want %v", out, want)
		}
	}
	if !m.Lossless() {
		t.Fatal("plain mask compaction is lossless on the retained support")
	}
}

func TestMaskCompactEncodeSparse(t *testing.T) {
	m := NewMaskCompact(false, 1)
	keep := []bool{true, false, false, true, true, false}
	m.SetMask(MaskIndices(keep), 6)
	vals, idx := m.EncodeSparse([]float32{1, 99, 98, 0, 5, 97})
	if len(vals) != 3 || len(idx) != 3 {
		t.Fatalf("COO lengths %d/%d, want 3/3", len(vals), len(idx))
	}
	// In-mask zeros ride along: the payload length is always NNZ, so every
	// replica ships the same size and the controller's quote is exact.
	if vals[0] != 1 || vals[1] != 0 || vals[2] != 5 {
		t.Fatalf("COO values %v", vals)
	}
	if idx[0] != 0 || idx[1] != 3 || idx[2] != 4 {
		t.Fatalf("COO indices %v", idx)
	}
}

func TestMaskCompactCompressionRatio(t *testing.T) {
	m := NewMaskCompact(false, 1)
	keep := make([]bool, 1000)
	for i := 0; i < 500; i++ {
		keep[i] = true
	}
	m.SetMask(MaskIndices(keep), 1000)
	if r := m.CompressionRatio(); math.Abs(r-0.5) > 0.01 {
		t.Fatalf("ratio %v, want ≈0.5 at 50%% pruning", r)
	}
	mt := NewMaskCompact(true, 1)
	mt.SetMask(MaskIndices(keep), 1000)
	if r := mt.CompressionRatio(); r > 0.2 {
		t.Fatalf("ternary compact ratio %v, want ≤ 1/8 of dense", r)
	}
}

// TestMaskCompactEmptyMask covers fully pruned buckets: an empty mask is
// valid, encodes to an empty payload, and decodes to all zeros.
func TestMaskCompactEmptyMask(t *testing.T) {
	m := NewMaskCompact(false, 1)
	m.SetMask(nil, 4)
	if !m.HasMask() {
		t.Fatal("empty mask must count as installed")
	}
	enc := m.Encode([]float32{1, 2, 3, 4})
	if len(enc) != 0 {
		t.Fatalf("empty mask payload %v", enc)
	}
	out := []float32{9, 9, 9, 9}
	m.Decode(enc, out)
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty mask must decode to zeros")
		}
	}
}

func TestMaskCompactValidation(t *testing.T) {
	m := NewMaskCompact(false, 1)
	for _, fn := range []func(){
		func() { m.SetMask([]int32{3, 1}, 6) },             // not ascending
		func() { m.SetMask([]int32{1, 9}, 6) },             // out of range
		func() { m.Encode([]float32{1, 2}) },               // no mask
		func() { m.SetMask([]int32{0}, 3); m.Encode(nil) }, // wrong length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMaskCompactTernaryStaysOnSupport(t *testing.T) {
	m := NewMaskCompact(true, 42)
	keep := []bool{true, false, true, false}
	m.SetMask(MaskIndices(keep), 4)
	g := []float32{0.9, 0.5, -0.2, 0.7}
	enc := m.Encode(g)
	out := make([]float32, 4)
	m.Decode(enc, out)
	if out[1] != 0 || out[3] != 0 {
		t.Fatal("pruned coordinates must stay zero after ternary decode")
	}
}

func TestCOOBeatsDenseOnlyBelowHalfDensity(t *testing.T) {
	if COOBeatsDense(600, 1000) {
		t.Fatal("COO should lose at 60% density")
	}
	if !COOBeatsDense(100, 1000) {
		t.Fatal("COO should win at 10% density")
	}
}

func TestNMSE(t *testing.T) {
	x := []float32{1, 2}
	if NMSE(x, x) != 0 {
		t.Fatal("identical vectors have NMSE 0")
	}
	if v := NMSE(x, []float32{0, 0}); math.Abs(v-1) > 1e-9 {
		t.Fatalf("zero estimate NMSE %v, want 1", v)
	}
	if !math.IsInf(NMSE([]float32{0}, []float32{1}), 1) {
		t.Fatal("NMSE of zero reference with error should be +inf")
	}
}

func TestByNameRegistry(t *testing.T) {
	names := []string{"all-reduce", "fp16", "terngrad", "qsgd", "thc",
		"topk-0.1", "topk-0.01", "randomk-0.1", "dgc-0.01"}
	for _, n := range names {
		c, err := ByName(n, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if c.Name() == "" {
			t.Fatalf("%s: empty name", n)
		}
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

// Property: MaskCompact Encode∘Decode is a projection onto the mask support.
func TestPropertyMaskCompactProjection(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 5 + r.Intn(50)
		keep := make([]bool, n)
		kept := 0
		for i := range keep {
			if r.Float64() < 0.5 {
				keep[i] = true
				kept++
			}
		}
		if kept == 0 {
			keep[0] = true
		}
		m := NewMaskCompact(false, seed)
		m.SetMask(MaskIndices(keep), n)
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(r.NormFloat64())
		}
		out := make([]float32, n)
		m.Decode(m.Encode(g), out)
		for i := range g {
			if keep[i] && out[i] != g[i] {
				return false
			}
			if !keep[i] && out[i] != 0 {
				return false
			}
		}
		// Idempotence: projecting again changes nothing.
		out2 := make([]float32, n)
		m.Decode(m.Encode(out), out2)
		for i := range out {
			if out2[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopK payload magnitudes dominate all unselected magnitudes.
func TestPropertyTopKDominance(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 10 + r.Intn(100)
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(r.NormFloat64())
		}
		c := NewTopK(0.2)
		p := c.Encode(g)
		selected := make(map[int32]bool)
		minSel := float32(math.Inf(1))
		for i, j := range p.Indices {
			selected[j] = true
			if a := abs32(p.Values[i]); a < minSel {
				minSel = a
			}
		}
		for i, v := range g {
			if !selected[int32(i)] && abs32(v) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
