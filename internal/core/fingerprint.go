package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/ddp"
)

// Fingerprint returns a deterministic hex digest identifying everything
// about a run that can influence its Result. Two configs with equal
// fingerprints produce bit-identical results from Run, so the experiment
// engine may train one and share the Result.
//
// The digest is computed over a canonical field-by-field serialization of a
// normalized copy of the config:
//
//   - defaults are applied first (the same normalization Run performs), so a
//     zero field and its explicit default collapse to one key;
//   - fields that the selected scheme provably never reads (the PacTrain
//     pruning knobs on non-PacTrain schemes) are canonicalized away, letting
//     e.g. Fig. 6's ratio-0 all-reduce reference deduplicate against the
//     plain all-reduce baseline;
//   - the topology is serialized structurally (nodes, links, bandwidths,
//     latencies), not by pointer, so independently constructed equal
//     topologies match.
func (c *Config) Fingerprint() string {
	cp := *c
	// Normalize exactly as Run will; an invalid config is fingerprinted
	// as-is (Run will reject it regardless of what the engine does).
	_ = cp.validate()
	if !cp.IsPacTrain() {
		// Only the PacTrain hook and its mask construction read these
		// (see buildHook and the pruning step in runWorker).
		cp.PruneRatio = 0
		cp.PruneMethod = 0
		cp.PretrainEpochs = 0
		cp.StableWindow = 0
	}
	if cp.Scheme != SchemeAdaptive {
		// Only the adaptive controller reads these; see also the key
		// emission below — non-adaptive configs never write them, so every
		// pre-adaptive fingerprint (and warm disk cache) is unchanged.
		cp.AdaptMargin = 0
		cp.AdaptDwell = 0
		cp.AdaptCandidates = nil
	}

	var b strings.Builder
	w := func(key string, v any) {
		fmt.Fprintf(&b, "%s=%v\n", key, v)
	}
	w("model", cp.ModelName)
	w("lite", cp.Lite)
	w("data", cp.Data)
	w("test_samples", cp.TestSamples)
	w("world", cp.World)
	w("scheme", cp.Scheme)
	// The collective algorithm changes only the simulated clock, but the
	// clock is part of the Result, so it keys the cache. validate already
	// canonicalized "" to "ring"; the ring default is omitted entirely so
	// pre-existing fingerprints (and warm disk caches) survive unchanged.
	if cp.Collective != "" && cp.Collective != collective.DefaultAlgorithm {
		w("collective", cp.Collective)
	}
	w("prune_ratio", cp.PruneRatio)
	w("prune_method", int(cp.PruneMethod))
	w("pretrain_epochs", cp.PretrainEpochs)
	w("stable_window", cp.StableWindow)
	if cp.Scheme == SchemeAdaptive {
		// validate already normalized the knobs (defaults applied,
		// candidates canonicalized), so equivalent spellings collapse.
		w("adapt_margin", cp.AdaptMargin)
		w("adapt_dwell", cp.AdaptDwell)
		w("adapt_candidates", strings.Join(cp.AdaptCandidates, ","))
	}
	w("epochs", cp.Epochs)
	w("batch", cp.BatchSize)
	w("lr", cp.LR)
	w("momentum", cp.Momentum)
	w("weight_decay", cp.WeightDecay)
	w("target_acc", cp.TargetAcc)
	w("eval_every", cp.EvalEvery)
	w("bucket_bytes", cp.BucketBytes)
	w("profile", cp.Profile)
	w("compute", cp.Compute)
	w("overlap", int(cp.Overlap))
	if cp.Overlap == ddp.OverlapBackward {
		// The per-bucket timeline replaced the single-floor overlap
		// approximation; this marker retires any pre-timeline
		// overlap-backward digest (whose clock the old closed form priced)
		// without touching the serialized default, whose key above is
		// byte-identical to every historical fingerprint.
		w("overlap_model", "per-bucket")
	}
	if cp.RankCompute.Enabled() {
		// Emitted only when heterogeneity is on (validate canonicalized the
		// knobs first), so homogeneous fingerprints — and every warm disk
		// cache — are untouched.
		w("rank_mult", cp.RankCompute.Multipliers)
		w("rank_jitter", cp.RankCompute.JitterFrac)
		w("rank_jitter_seed", cp.RankCompute.JitterSeed)
	}
	w("seed", cp.Seed)
	w("record_comm", cp.RecordComm)

	if cp.Topology != nil {
		fmt.Fprintf(&b, "topo_nodes=%d\n", len(cp.Topology.Nodes))
		for _, n := range cp.Topology.Nodes {
			fmt.Fprintf(&b, "node=%d,%d\n", n.ID, n.Kind)
		}
		for i, l := range cp.Topology.Links {
			fmt.Fprintf(&b, "link=%d,%d,%d,%v,%v\n", i, l.A, l.B, l.BandwidthBps, l.LatencySec)
		}
	}
	for _, tr := range cp.Traces {
		fmt.Fprintf(&b, "trace=%d\n", tr.LinkIndex)
		for _, s := range tr.Segments {
			fmt.Fprintf(&b, "seg=%v,%v\n", s.UntilSec, s.Scale)
		}
	}

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}
