package core

import (
	"testing"

	"pactrain/internal/par"
)

// TestTrainingBitExactAcrossKernelBudgets pins the PR's headline contract at
// the system level: an entire training run — forward/backward, compression
// kernels, collective pricing, accuracy curve — is byte-identical whether the
// parallel kernels run on one worker or eight. Not mark-parallel: the kernel
// budget is process-global.
func TestTrainingBitExactAcrossKernelBudgets(t *testing.T) {
	defer par.SetBudget(par.Budget())
	for _, scheme := range []string{"pactrain-ternary", "topk-0.1"} {
		cfg := tinyConfig(scheme)
		cfg.Epochs = 2

		par.SetBudget(1)
		scalar, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par.SetBudget(8)
		parallel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		if scalar.FinalAcc != parallel.FinalAcc || scalar.BestAcc != parallel.BestAcc {
			t.Fatalf("%s: accuracy differs across budgets: %v/%v vs %v/%v",
				scheme, scalar.FinalAcc, scalar.BestAcc, parallel.FinalAcc, parallel.BestAcc)
		}
		if scalar.SimSeconds != parallel.SimSeconds {
			t.Fatalf("%s: simulated time differs across budgets: %v vs %v",
				scheme, scalar.SimSeconds, parallel.SimSeconds)
		}
		if len(scalar.WeightChecksums) != len(parallel.WeightChecksums) {
			t.Fatalf("%s: world size changed", scheme)
		}
		for r := range scalar.WeightChecksums {
			if scalar.WeightChecksums[r] != parallel.WeightChecksums[r] {
				t.Fatalf("%s: rank %d weights differ across budgets: %v vs %v",
					scheme, r, scalar.WeightChecksums[r], parallel.WeightChecksums[r])
			}
		}
		for i, p := range scalar.Curve.Points {
			if p != parallel.Curve.Points[i] {
				t.Fatalf("%s: curve point %d differs across budgets: %+v vs %+v",
					scheme, i, p, parallel.Curve.Points[i])
			}
		}
	}
}
