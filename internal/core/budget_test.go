package core

import (
	"testing"

	"pactrain/internal/par"
)

// TestTrainingBitExactAcrossKernelBudgets pins the PR's headline contract at
// the system level: an entire training run — forward/backward through every
// layer kind (MLP, conv+batchnorm+pool, attention+layernorm), compression
// kernels, collective pricing, accuracy curve — is byte-identical whether
// the parallel kernels run on one worker or eight. Not mark-parallel: the
// kernel budget is process-global.
func TestTrainingBitExactAcrossKernelBudgets(t *testing.T) {
	defer par.SetBudget(par.Budget())
	cases := []struct {
		model, scheme string
		heavy         bool // skipped under -short, run in the full/race CI lanes
	}{
		{model: "", scheme: "pactrain-ternary"}, // tinyConfig default (MLP)
		{model: "", scheme: "topk-0.1"},
		{model: "VGG19", scheme: "pactrain-ternary", heavy: true},
		{model: "ViT-Base-16", scheme: "pactrain-ternary", heavy: true},
	}
	for _, tc := range cases {
		name := tc.model
		if name == "" {
			name = "MLP"
		}
		if tc.heavy && testing.Short() {
			continue
		}
		cfg := tinyConfig(tc.scheme)
		cfg.Epochs = 2
		if tc.model != "" {
			cfg.ModelName = tc.model
		}

		par.SetBudget(1)
		scalar, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par.SetBudget(8)
		parallel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		if scalar.FinalAcc != parallel.FinalAcc || scalar.BestAcc != parallel.BestAcc {
			t.Fatalf("%s/%s: accuracy differs across budgets: %v/%v vs %v/%v",
				name, tc.scheme, scalar.FinalAcc, scalar.BestAcc, parallel.FinalAcc, parallel.BestAcc)
		}
		if scalar.SimSeconds != parallel.SimSeconds {
			t.Fatalf("%s/%s: simulated time differs across budgets: %v vs %v",
				name, tc.scheme, scalar.SimSeconds, parallel.SimSeconds)
		}
		if len(scalar.WeightChecksums) != len(parallel.WeightChecksums) {
			t.Fatalf("%s/%s: world size changed", name, tc.scheme)
		}
		for r := range scalar.WeightChecksums {
			if scalar.WeightChecksums[r] != parallel.WeightChecksums[r] {
				t.Fatalf("%s/%s: rank %d weights differ across budgets: %v vs %v",
					name, tc.scheme, r, scalar.WeightChecksums[r], parallel.WeightChecksums[r])
			}
		}
		for i, p := range scalar.Curve.Points {
			if p != parallel.Curve.Points[i] {
				t.Fatalf("%s/%s: curve point %d differs across budgets: %+v vs %+v",
					name, tc.scheme, i, p, parallel.Curve.Points[i])
			}
		}
	}
}
