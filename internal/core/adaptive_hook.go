package core

import (
	"pactrain/internal/adaptive"
	"pactrain/internal/collective"
	"pactrain/internal/compress"
	"pactrain/internal/ddp"
	"pactrain/internal/masktracker"
)

// adaptiveHook is the "adaptive" scheme: PacTrain's pruning pipeline with a
// cost-model-driven controller (internal/adaptive) choosing the wire format
// per bucket per round instead of a fixed compact path. While a bucket's
// sparsity pattern is unstable it behaves exactly like pacTrainHook (full
// fp32 sync plus the bitmap re-share on pattern moves); once stable, every
// round prices dense fp32, mask-compact fp32, mask-compact ternary, and the
// COO index-list against the live fabric and takes the cheapest with
// hysteresis.
//
// Lockstep: every input to a decision — bucket size, the tracker's mask
// (driven by aggregated gradients), and the synchronized simulated clock —
// is replica-identical, so all ranks pick the same format with zero
// consensus traffic.
type adaptiveHook struct {
	env  *hookEnv
	ctrl *adaptive.Controller
	seed uint64

	window   int
	trackers map[int]*masktracker.Tracker
	compacts map[int]*compress.MaskCompact
	// pendingBitmap marks buckets whose mask changed last iteration and owe
	// a bitmap broadcast with the next full sync.
	pendingBitmap map[int]bool
	observed      map[int]bool

	// bufs holds per-bucket compact payload buffers (same safety argument as
	// denseHook.bufs).
	bufs map[int][]float32

	// Telemetry.
	CompactSyncs int // controller-driven rounds
	FullSyncs    int // forced full syncs while unstable
}

func newAdaptiveHook(env *hookEnv, cfg *Config, seed uint64) *adaptiveHook {
	ctrl := adaptive.New(adaptive.Options{
		Margin:     cfg.AdaptMargin,
		Dwell:      cfg.AdaptDwell,
		Candidates: cfg.AdaptCandidates,
		Algorithm:  env.cluster.Algorithm(),
		Fabric:     env.cluster.Fabric(),
		Hosts:      env.cluster.Hosts(),
		WireScale:  env.wireScale,
	})
	return &adaptiveHook{
		env: env, ctrl: ctrl, seed: seed, window: cfg.StableWindow,
		trackers:      make(map[int]*masktracker.Tracker),
		compacts:      make(map[int]*compress.MaskCompact),
		pendingBitmap: make(map[int]bool),
		observed:      make(map[int]bool),
	}
}

// Name implements ddp.Hook.
func (*adaptiveHook) Name() string { return SchemeAdaptive }

// Sync implements ddp.Hook.
func (h *adaptiveHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	tr := h.trackers[b.Index]
	if tr == nil {
		tr = masktracker.New(h.window)
		h.trackers[b.Index] = tr
	}

	if tr.Stable() {
		mc := h.compacts[b.Index]
		if mc == nil || !mc.HasMask() {
			mc = compress.NewMaskCompact(false, h.seed*131+uint64(b.Index))
			mc.SetMask(tr.Indices(), b.Elements())
			h.compacts[b.Index] = mc
		}
		// localTime is the bucket's true launch time: under the per-rank
		// timeline (heterogeneity or per-bucket overlap) the trainer resolves
		// the launch barrier before calling Sync, so every rank prices the
		// candidates at the same synchronized instant even though their
		// compute clocks have diverged — lockstep is preserved by
		// construction, not by assuming homogeneous clocks.
		dec := h.ctrl.Decide(b.Index, b.Elements(), mc.NNZ(), localTime)
		h.CompactSyncs++
		switch dec.Format {
		case adaptive.FormatDense:
			wire := h.env.scaleWire(collective.WireFP32)
			end := h.env.cluster.AllReduceSum(rank, b.Flat, wire, localTime)
			h.env.record(CommOp{Kind: OpAllReduce, Elements: b.Elements(), Wire: wire,
				Decision: dec.Format, Bucket: b.Index, LaunchAt: localTime})
			return end

		case adaptive.FormatCompact, adaptive.FormatCompactTernary:
			mc.Ternary = dec.Format == adaptive.FormatCompactTernary
			if h.bufs == nil {
				h.bufs = make(map[int][]float32)
			}
			payload := mc.EncodeInto(b.Flat, h.bufs[b.Index])
			h.bufs[b.Index] = payload
			wire := h.env.scaleWire(mc.Wire())
			end := h.env.cluster.AllReduceSum(rank, payload, wire, localTime)
			mc.Decode(payload, b.Flat)
			h.env.record(CommOp{Kind: OpAllReduce, Elements: len(payload), Wire: wire,
				Decision: dec.Format, Bucket: b.Index, LaunchAt: localTime})
			return end

		case adaptive.FormatIndexList:
			// Ship exactly the in-mask coordinates (zeros included): the
			// payload size is then replica-identical and equal to the NNZ
			// count the controller priced, so the quote matches the charge.
			vals, idx := mc.EncodeSparse(b.Flat)
			wire := h.env.scaleWire(collective.WireSparse)
			all, end := h.env.cluster.AllGatherSparse(rank,
				collective.SparsePayload{Values: vals, Indices: idx}, wire, localTime)
			for i := range b.Flat {
				b.Flat[i] = 0
			}
			sizes := make([]int, len(all))
			for i, p := range all {
				sizes[i] = len(p.Values)
				for j, id := range p.Indices {
					b.Flat[id] += p.Values[j]
				}
			}
			h.env.record(CommOp{Kind: OpAllGather, Sizes: sizes, Wire: wire,
				Decision: dec.Format, Bucket: b.Index, LaunchAt: localTime})
			return end
		}
		panic("core: adaptive controller returned unknown format " + dec.Format)
	}

	// Unstable: the same forced full synchronization as the pactrain hook
	// (unstableFullSync). These rounds are forced, not decided, so they
	// carry no Decision tag.
	end, obs := unstableFullSync(h.env, tr, rank, b, h.pendingBitmap[b.Index], localTime)
	h.compacts[b.Index] = nil
	h.FullSyncs++
	h.pendingBitmap[b.Index] = obs.Changed && h.observed[b.Index]
	h.observed[b.Index] = true
	return end
}

// NotifyMaskInvalidated discards tracker, compaction, and controller state
// at the pruning step, mirroring pacTrainHook.NotifyMaskInvalidated: the
// densities the incumbents were chosen under are about to change.
func (h *adaptiveHook) NotifyMaskInvalidated() {
	for _, tr := range h.trackers {
		tr.Reset()
	}
	h.compacts = make(map[int]*compress.MaskCompact)
	h.pendingBitmap = make(map[int]bool)
	h.observed = make(map[int]bool)
	h.ctrl.Reset()
}

// StableFraction reports the fraction of bucket syncs the controller drove.
func (h *adaptiveHook) StableFraction() float64 {
	total := h.CompactSyncs + h.FullSyncs
	if total == 0 {
		return 0
	}
	return float64(h.CompactSyncs) / float64(total)
}

// FormatCounts reports how many controller rounds landed on each format.
func (h *adaptiveHook) FormatCounts() map[string]int { return h.ctrl.Counts() }

// FormatSwitches reports the number of completed format switches.
func (h *adaptiveHook) FormatSwitches() int { return h.ctrl.Switches() }

// CurrentFormat implements formatReporter for progress heartbeats.
func (h *adaptiveHook) CurrentFormat() string { return h.ctrl.Current() }
