package core

import (
	"math"
	"testing"

	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
)

func TestOverlapBackwardNoSlowerThanSerial(t *testing.T) {
	mk := func(overlap ddp.Overlap) *Result {
		cfg := tinyConfig("all-reduce")
		cfg.Overlap = overlap
		cfg.Epochs = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(ddp.OverlapNone)
	overlapped := mk(ddp.OverlapBackward)
	if overlapped.SimSeconds > serial.SimSeconds {
		t.Fatalf("overlap (%v) must not be slower than serial (%v)",
			overlapped.SimSeconds, serial.SimSeconds)
	}
	// Convergence must be identical — overlap only changes the clock.
	if overlapped.FinalAcc != serial.FinalAcc {
		t.Fatalf("overlap changed convergence: %v vs %v",
			overlapped.FinalAcc, serial.FinalAcc)
	}
}

func TestBandwidthTraceSlowsRun(t *testing.T) {
	base := tinyConfig("all-reduce")
	base.Epochs = 2
	topoA := netsim.FlatTopology(4, netsim.Gbps, 1e-5)
	base.Topology = topoA
	resA, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := tinyConfig("all-reduce")
	cfg.Epochs = 2
	topoB := netsim.FlatTopology(4, netsim.Gbps, 1e-5)
	cfg.Topology = topoB
	// Throttle every link to 10% for the whole run.
	for li := range topoB.Links {
		cfg.Traces = append(cfg.Traces, &netsim.BandwidthTrace{
			LinkIndex: li,
			Segments:  []netsim.TraceSegment{{UntilSec: math.Inf(1), Scale: 0.1}},
		})
	}
	resB, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Stats.SimSeconds <= resA.Stats.SimSeconds*5 {
		t.Fatalf("10%% bandwidth should ≈10× comm time: traced %v vs base %v",
			resB.Stats.SimSeconds, resA.Stats.SimSeconds)
	}
	// Convergence unchanged — traces affect the clock only.
	if resB.FinalAcc != resA.FinalAcc {
		t.Fatal("bandwidth trace must not change convergence")
	}
}

func TestPSSchemeSlowerThanAllReduce(t *testing.T) {
	mk := func(scheme string) *Result {
		cfg := tinyConfig(scheme)
		cfg.World = 8
		cfg.Topology = netsim.FlatTopology(8, netsim.Gbps, 1e-5)
		cfg.Epochs = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ar := mk("all-reduce")
	ps := mk("ps")
	if ps.Stats.SimSeconds <= ar.Stats.SimSeconds {
		t.Fatalf("PS comm (%v) should exceed ring all-reduce (%v): incast",
			ps.Stats.SimSeconds, ar.Stats.SimSeconds)
	}
}

func TestCIFAR100LikeWorkload(t *testing.T) {
	cfg := tinyConfig("pactrain")
	cfg.Data = data.CIFAR100Like(320, 5)
	cfg.Lite.Classes = 20
	cfg.Epochs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 1.0/20 {
		t.Fatalf("20-class task: accuracy %v at chance level", res.FinalAcc)
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged on CIFAR-100-like task", rank)
		}
	}
}

func TestBitmapBroadcastRecordedAtMaskChange(t *testing.T) {
	cfg := tinyConfig("pactrain")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bitmaps := 0
	for _, ops := range res.CommLog.Iters {
		for _, op := range ops {
			if op.Kind == OpBitmapBroadcast {
				bitmaps++
			}
		}
	}
	if bitmaps == 0 {
		t.Fatal("pruning must trigger at least one bitmap re-share")
	}
	// At most a handful: one per bucket per mask change, not per iteration.
	if bitmaps > res.Iterations {
		t.Fatalf("bitmap storms: %d broadcasts over %d iterations", bitmaps, res.Iterations)
	}
}

func TestPruneRatioZeroKeepsDenseBehaviour(t *testing.T) {
	cfg := tinyConfig("pactrain")
	cfg.PruneRatio = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An all-keep mask still stabilizes and compacts (compaction is then
	// the identity, costing full fp32) — accuracy must match plain
	// training closely.
	if res.MaskSparsity != 0 {
		t.Fatalf("ratio 0 produced sparsity %v", res.MaskSparsity)
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("ratio-0 PacTrain failed to learn: %v", res.FinalAcc)
	}
}

func TestHighPruneRatioHurtsAccuracy(t *testing.T) {
	run := func(ratio float64) float64 {
		cfg := tinyConfig("pactrain")
		cfg.PruneRatio = ratio
		cfg.Epochs = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAcc
	}
	moderate := run(0.5)
	extreme := run(0.99)
	if extreme >= moderate {
		t.Fatalf("99%% pruning (acc %v) should underperform 50%% (acc %v) — the Fig. 6 cliff",
			extreme, moderate)
	}
}
