package core

// Progress is one live heartbeat from rank 0 of a running training,
// emitted at every evaluation point (the Curve's cadence: EvalEvery
// iterations, or end of epoch). It exists for observers — the serve SSE
// stream and structured logs relay it verbatim — and carries no state the
// Result does not already record.
type Progress struct {
	// Iter and Epoch locate the heartbeat in the run.
	Iter  int `json:"iter"`
	Epoch int `json:"epoch"`
	// SimSeconds is rank 0's simulated clock at the heartbeat.
	SimSeconds float64 `json:"sim_seconds"`
	// Acc and Loss are the evaluation accuracy and last training loss.
	Acc  float64 `json:"acc"`
	Loss float64 `json:"loss"`
	// Format is the wire format the current scheme is sending — the
	// adaptive controller's current choice, or empty for static schemes.
	Format string `json:"format,omitempty"`
}

// formatReporter is implemented by hooks that can name the wire format
// they are currently sending (the adaptive controller); heartbeats carry
// it so observers can watch format switches live.
type formatReporter interface{ CurrentFormat() string }

// emitProgress builds and delivers a heartbeat; no-op without a callback.
func emitProgress(cfg *Config, hook any, iter, epoch int, simTime, acc, loss float64) {
	if cfg.OnProgress == nil {
		return
	}
	p := Progress{Iter: iter, Epoch: epoch, SimSeconds: simTime, Acc: acc, Loss: loss}
	if fr, ok := hook.(formatReporter); ok {
		p.Format = fr.CurrentFormat()
	}
	cfg.OnProgress(p)
}
