package core

import (
	"math"
	"testing"

	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
)

// stragglerConfig returns a tiny heterogeneous configuration: 4 workers,
// the last one running slower by factor, with optional per-iteration
// jitter.
func stragglerConfig(scheme string, factor, jitter float64) Config {
	cfg := tinyConfig(scheme)
	cfg.RankCompute = ddp.RankCompute{
		Multipliers: netsim.OneSlowRank(cfg.World, factor),
		JitterFrac:  jitter,
		JitterSeed:  7,
	}
	return cfg
}

// TestStragglerClocksKeepWeightsLockstep is the tentpole's core invariant:
// heterogeneity diverges the per-rank clocks — the straggler's compute is
// slower every iteration — but the data plane still averages identically,
// so the replicas' weights must never diverge.
func TestStragglerClocksKeepWeightsLockstep(t *testing.T) {
	for _, scheme := range []string{"all-reduce", "pactrain-ternary"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			uniform, err := Run(tinyConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(stragglerConfig(scheme, 2.0, 0.1))
			if err != nil {
				t.Fatal(err)
			}
			for rank, cs := range res.WeightChecksums {
				if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
					t.Fatalf("replica %d diverged under straggler clocks: %v vs %v",
						rank, cs, res.WeightChecksums[0])
				}
			}
			// Convergence is clock-independent; only simulated time moves.
			if res.FinalAcc != uniform.FinalAcc {
				t.Fatalf("straggler changed convergence: %v vs %v", res.FinalAcc, uniform.FinalAcc)
			}
			if res.SimSeconds <= uniform.SimSeconds {
				t.Fatalf("a 2× straggler must slow the cluster: %v vs uniform %v",
					res.SimSeconds, uniform.SimSeconds)
			}
		})
	}
}

// TestStragglerRunIsDeterministic pins the jitter stream: identical configs
// (multipliers, jitter fraction, jitter seed) reproduce identical clocks.
func TestStragglerRunIsDeterministic(t *testing.T) {
	a, err := Run(stragglerConfig("all-reduce", 1.7, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(stragglerConfig("all-reduce", 1.7, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if a.SimSeconds != b.SimSeconds || a.FinalAcc != b.FinalAcc {
		t.Fatalf("straggler run not reproducible: time %v/%v acc %v/%v",
			a.SimSeconds, b.SimSeconds, a.FinalAcc, b.FinalAcc)
	}
	c, err := Run(stragglerConfig("all-reduce", 1.7, 0.2000001))
	if err != nil {
		t.Fatal(err)
	}
	if c.SimSeconds == a.SimSeconds {
		t.Fatal("changing the jitter fraction must move the clock")
	}
}

// TestStragglerPerBucketOverlap checks the exact overlap model end to end:
// overlapping communication with backward can only help, never below the
// compute floor, and never changes convergence.
func TestStragglerPerBucketOverlap(t *testing.T) {
	mk := func(overlap ddp.Overlap, factor float64) *Result {
		cfg := tinyConfig("all-reduce")
		if factor > 1 {
			cfg.RankCompute = ddp.RankCompute{Multipliers: netsim.OneSlowRank(cfg.World, factor)}
		}
		cfg.Overlap = overlap
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, factor := range []float64{1, 2} {
		serial := mk(ddp.OverlapNone, factor)
		overlapped := mk(ddp.OverlapBackward, factor)
		if overlapped.SimSeconds >= serial.SimSeconds {
			t.Fatalf("factor %v: per-bucket overlap (%v) must beat the serialized clock (%v)",
				factor, overlapped.SimSeconds, serial.SimSeconds)
		}
		if overlapped.FinalAcc != serial.FinalAcc {
			t.Fatalf("overlap changed convergence: %v vs %v", overlapped.FinalAcc, serial.FinalAcc)
		}
		// Overlap hides communication under backward; it cannot hide the
		// compute itself. The slowest rank's compute alone floors the run.
		cfg := tinyConfig("all-reduce")
		floor := float64(overlapped.Iterations) * cfg.Compute.IterSeconds(cfg.BatchSize) * factor
		if overlapped.SimSeconds < floor {
			t.Fatalf("factor %v: clock %v below the straggler's compute floor %v",
				factor, overlapped.SimSeconds, floor)
		}
	}
}

// TestStragglerAdaptiveLockstep drives the adaptive controller under
// diverged rank clocks and per-bucket overlap: the trainer's launch barrier
// hands every rank the same synchronized decision time, so the controller
// must stay in lockstep (divergence would deadlock the rendezvous or split
// the weights).
func TestStragglerAdaptiveLockstep(t *testing.T) {
	cfg := stragglerConfig(SchemeAdaptive, 2.0, 0.1)
	cfg.Overlap = ddp.OverlapBackward
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged under adaptive straggler run", rank)
		}
	}
	if res.StableFraction <= 0 {
		t.Fatal("adaptive run never reached the controller-driven path")
	}
	if len(res.AdaptiveDecisions) == 0 {
		t.Fatal("no controller decisions recorded")
	}
}

// TestStragglerValidation rejects malformed heterogeneity knobs.
func TestStragglerValidation(t *testing.T) {
	cfg := tinyConfig("all-reduce")
	cfg.RankCompute.Multipliers = []float64{1, 1, 1, 1, 1} // 5 multipliers, 4 ranks
	if _, err := Run(cfg); err == nil {
		t.Fatal("more multipliers than ranks must fail")
	}
	cfg = tinyConfig("all-reduce")
	cfg.RankCompute.Multipliers = []float64{0, 1, 1, 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero multiplier must fail")
	}
	cfg = tinyConfig("all-reduce")
	cfg.RankCompute.JitterFrac = 1.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("jitter ≥ 1 must fail")
	}
}

// TestStragglerLogCarriesBucketGeometry checks the recorded log has what
// the timeline re-coster needs: bucket element counts and per-op bucket
// indices with launch times.
func TestStragglerLogCarriesBucketGeometry(t *testing.T) {
	cfg := stragglerConfig("pactrain-ternary", 2.0, 0)
	cfg.Overlap = ddp.OverlapBackward
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CommLog.BucketElems) == 0 {
		t.Fatal("log missing bucket geometry")
	}
	total := 0
	for _, n := range res.CommLog.BucketElems {
		total += n
	}
	if total == 0 {
		t.Fatal("empty bucket geometry")
	}
	prevLaunch := 0.0
	for _, ops := range res.CommLog.Iters {
		for _, op := range ops {
			if op.Bucket < 0 || op.Bucket >= len(res.CommLog.BucketElems) {
				t.Fatalf("op bucket %d out of range", op.Bucket)
			}
			if op.LaunchAt < prevLaunch {
				t.Fatalf("launch times must be monotone: %v after %v", op.LaunchAt, prevLaunch)
			}
			prevLaunch = op.LaunchAt
		}
	}
	if prevLaunch <= 0 {
		t.Fatal("no launch times recorded")
	}
}
