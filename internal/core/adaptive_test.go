package core

import (
	"math"
	"testing"

	"pactrain/internal/adaptive"
)

func TestAdaptiveSchemeRuns(t *testing.T) {
	cfg := tinyConfig(SchemeAdaptive)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 0.3 {
		t.Fatalf("adaptive scheme failed to learn: acc %v", res.FinalAcc)
	}
	// Lockstep: every rank must have made the same decisions, or the
	// replicas diverge.
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged under the adaptive scheme", rank)
		}
	}
	if res.StableFraction <= 0 {
		t.Fatal("controller never drove a sync (mask never stabilized)")
	}
	// Decision telemetry and the comm-record decision log must agree that
	// controller rounds happened.
	if len(res.AdaptiveDecisions) == 0 {
		t.Fatal("missing AdaptiveDecisions telemetry")
	}
	tagged := 0
	for _, ops := range res.CommLog.Iters {
		for _, op := range ops {
			if op.Decision != "" {
				tagged++
			}
		}
	}
	if tagged == 0 {
		t.Fatal("no decision-tagged ops in the comm record")
	}
	var rounds int
	for _, n := range res.AdaptiveDecisions {
		rounds += n
	}
	// Rank 0 records every op; each controller round issues exactly one
	// tagged op, so the record and the telemetry must match.
	if tagged != rounds {
		t.Fatalf("comm record has %d decision-tagged ops, telemetry counted %d rounds", tagged, rounds)
	}
}

// TestAdaptiveSingleCandidateMatchesPacTrainTernary pins the scheme
// plumbing: a controller restricted to the mask-compact-ternary format must
// reproduce the pactrain-ternary scheme exactly — same warm-up, same
// tracker schedule, same compressor seeds, hence bit-identical convergence
// and clock.
func TestAdaptiveSingleCandidateMatchesPacTrainTernary(t *testing.T) {
	ternCfg := tinyConfig("pactrain-ternary")
	tern, err := Run(ternCfg)
	if err != nil {
		t.Fatal(err)
	}
	adCfg := tinyConfig(SchemeAdaptive)
	adCfg.AdaptCandidates = []string{adaptive.FormatCompactTernary}
	ad, err := Run(adCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ad.FinalAcc != tern.FinalAcc {
		t.Fatalf("convergence diverged: adaptive %v vs pactrain-ternary %v", ad.FinalAcc, tern.FinalAcc)
	}
	if ad.SimSeconds != tern.SimSeconds {
		t.Fatalf("clock diverged: adaptive %v vs pactrain-ternary %v", ad.SimSeconds, tern.SimSeconds)
	}
	if ad.StableFraction != tern.StableFraction {
		t.Fatalf("compact-path fraction diverged: %v vs %v", ad.StableFraction, tern.StableFraction)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	t.Parallel()
	bad := tinyConfig(SchemeAdaptive)
	bad.AdaptCandidates = []string{"carrier-pigeon"}
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown candidate format accepted")
	}
	dup := tinyConfig(SchemeAdaptive)
	dup.AdaptCandidates = []string{adaptive.FormatDense, adaptive.FormatDense}
	if _, err := Run(dup); err == nil {
		t.Fatal("duplicate candidate format accepted")
	}
	wide := tinyConfig(SchemeAdaptive)
	wide.AdaptMargin = 1.5
	if _, err := Run(wide); err == nil {
		t.Fatal("margin ≥ 1 accepted")
	}
	// Only exactly-zero knobs take the defaults; negatives are errors, not
	// silent coercions.
	neg := tinyConfig(SchemeAdaptive)
	neg.AdaptMargin = -0.1
	if _, err := Run(neg); err == nil {
		t.Fatal("negative margin accepted")
	}
	negDwell := tinyConfig(SchemeAdaptive)
	negDwell.AdaptDwell = -2
	if _, err := Run(negDwell); err == nil {
		t.Fatal("negative dwell accepted")
	}
}

func TestFabricSensitive(t *testing.T) {
	t.Parallel()
	multi := tinyConfig(SchemeAdaptive)
	if !multi.FabricSensitive() {
		t.Fatal("multi-candidate adaptive config must be fabric-sensitive")
	}
	single := tinyConfig(SchemeAdaptive)
	single.AdaptCandidates = []string{adaptive.FormatIndexList}
	if single.FabricSensitive() {
		t.Fatal("single-candidate adaptive config is fabric-independent")
	}
	static := tinyConfig("pactrain-ternary")
	if static.FabricSensitive() {
		t.Fatal("static schemes are never fabric-sensitive")
	}
}
