package core

import (
	"fmt"

	"pactrain/internal/compress"
	"pactrain/internal/ddp"
)

// schemeDef is one row of the scheme registry: the canonical name the
// Config.Scheme vocabulary exposes, accepted aliases, a one-line
// description for the catalog endpoints, and the hook constructor.
type schemeDef struct {
	name    string
	aliases []string
	about   string
	build   func(cfg *Config, env *hookEnv, seed uint64) ddp.Hook
}

// schemeTable lists every aggregation scheme Run accepts, in the canonical
// order Schemes reports. It is the single place a new scheme is added;
// buildHook, Schemes, SchemeCatalog, `pactrain-bench -list-schemes`, and
// the service's GET /v1/schemes all read it.
func schemeTable() []schemeDef {
	return []schemeDef{
		{name: "all-reduce", aliases: []string{"fp32", "none"},
			about: "uncompressed fp32 ring all-reduce (the baseline)",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewFP32()}
			}},
		{name: "fp16",
			about: "half-precision dense all-reduce",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewFP16()}
			}},
		{name: "terngrad",
			about: "TernGrad stochastic ternary quantization over all-reduce",
			build: func(_ *Config, env *hookEnv, seed uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewTernGrad(seed)}
			}},
		{name: "qsgd",
			about: "QSGD stochastic uniform quantization (256 levels)",
			build: func(_ *Config, env *hookEnv, seed uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewQSGD(256, seed)}
			}},
		{name: "thc",
			about: "THC homomorphic uniform quantization (all-reducible)",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewTHC(256)}
			}},
		{name: "ps",
			about: "uncompressed fp32 through a parameter server (incast baseline)",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &denseHook{env: env, comp: compress.NewFP32(), forcePS: true}
			}},
		{name: "topk-0.1",
			about: "top 10% magnitude selection with error feedback, sparse all-gather",
			build: sparseBuilder(func(_ uint64) compress.SparseCompressor {
				return compress.WrapErrorFeedback(compress.NewTopK(0.1))
			})},
		{name: "topk-0.01",
			about: "top 1% magnitude selection with error feedback, sparse all-gather",
			build: sparseBuilder(func(_ uint64) compress.SparseCompressor {
				return compress.WrapErrorFeedback(compress.NewTopK(0.01))
			})},
		{name: "randomk-0.1",
			about: "random 10% selection with error feedback, sparse all-gather",
			build: sparseBuilder(func(seed uint64) compress.SparseCompressor {
				return compress.WrapErrorFeedback(compress.NewRandomK(0.1, seed))
			})},
		{name: "dgc-0.1",
			about: "Deep Gradient Compression at 10% density (momentum correction)",
			build: sparseBuilder(func(_ uint64) compress.SparseCompressor {
				return compress.NewDGC(0.1, 0.9)
			})},
		{name: "dgc-0.01",
			about: "Deep Gradient Compression at 1% density (momentum correction)",
			build: sparseBuilder(func(_ uint64) compress.SparseCompressor {
				return compress.NewDGC(0.01, 0.9)
			})},
		{name: "omnireduce",
			about: "OmniReduce-style streaming non-zero-block aggregation",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &omniReduceHook{env: env, blockSize: 256}
			}},
		{name: "zen",
			about: "Zen-style exact non-zero coordinate all-gather",
			build: func(_ *Config, env *hookEnv, _ uint64) ddp.Hook {
				return &zenHook{env: env}
			}},
		{name: "pactrain",
			about: "PacTrain pruning + GSE + Mask Tracker mask-compact all-reduce",
			build: func(cfg *Config, env *hookEnv, seed uint64) ddp.Hook {
				return newPacTrainHook(env, cfg, false, seed)
			}},
		{name: "pactrain-ternary",
			about: "PacTrain with the §III-D ternary stage on the compact path",
			build: func(cfg *Config, env *hookEnv, seed uint64) ddp.Hook {
				return newPacTrainHook(env, cfg, true, seed)
			}},
		{name: SchemeAdaptive,
			about: "PacTrain pipeline with a cost-model controller picking the wire format per bucket per round",
			build: func(cfg *Config, env *hookEnv, seed uint64) ddp.Hook {
				return newAdaptiveHook(env, cfg, seed)
			}},
	}
}

// sparseBuilder adapts a per-bucket SparseCompressor factory into a scheme
// constructor (TopK, RandomK, DGC all ride the sparse all-gather hook).
func sparseBuilder(mk func(seed uint64) compress.SparseCompressor) func(*Config, *hookEnv, uint64) ddp.Hook {
	return func(_ *Config, env *hookEnv, seed uint64) ddp.Hook {
		return newSparseHook(env, func() compress.SparseCompressor { return mk(seed) })
	}
}

// schemeByName resolves a canonical name or alias to its registry row.
func schemeByName(name string) (schemeDef, bool) {
	for _, def := range schemeTable() {
		if def.name == name {
			return def, true
		}
		for _, alias := range def.aliases {
			if alias == name {
				return def, true
			}
		}
	}
	return schemeDef{}, false
}

// Schemes lists the canonical scheme names in registry order — the
// vocabulary Config.Scheme accepts (aliases excluded).
func Schemes() []string {
	defs := schemeTable()
	out := make([]string, len(defs))
	for i, def := range defs {
		out[i] = def.name
	}
	return out
}

// SchemeInfo is one catalog entry for the scheme listing surfaces
// (`pactrain-bench -list-schemes`, GET /v1/schemes).
type SchemeInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Aliases     []string `json:"aliases,omitempty"`
}

// SchemeCatalog lists every scheme with its description and aliases, in
// registry order.
func SchemeCatalog() []SchemeInfo {
	defs := schemeTable()
	out := make([]SchemeInfo, len(defs))
	for i, def := range defs {
		out[i] = SchemeInfo{Name: def.name, Description: def.about, Aliases: def.aliases}
	}
	return out
}

// buildHook constructs the per-worker communication hook for the config's
// scheme via the registry.
func buildHook(cfg *Config, env *hookEnv) (ddp.Hook, error) {
	def, ok := schemeByName(cfg.Scheme)
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q (have %v)", cfg.Scheme, Schemes())
	}
	seed := cfg.Seed*1009 + uint64(env.rank)*31 + 7
	return def.build(cfg, env, seed), nil
}
