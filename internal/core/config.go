// Package core implements PacTrain, the paper's contribution: Algorithm 1's
// worker loop combining unstructured pruning, Gradient Sparsity Enforcement
// (Eq. 2), the Mask Tracker, adaptive mask-compact compression over
// all-reduce, and optional ternary quantization (§III-D) — plus the
// baseline communication hooks the paper evaluates against (fp32 all-reduce,
// FP16, TopK, DGC, TernGrad, QSGD, THC, parameter server, OmniReduce-style
// block-sparse and Zen-style sparse all-gather).
package core

import (
	"fmt"

	"pactrain/internal/collective"
	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/prune"
)

// Config fully describes one distributed training run.
type Config struct {
	// ModelName selects both the lite twin (trained for real) and the
	// communication profile (used for simulated time): "VGG19", "ResNet18",
	// "ResNet152", "ViT-Base-16", or "MLP" (tests).
	ModelName string
	// Lite geometry for the trainable twin.
	Lite nn.LiteConfig
	// Data configures the synthetic dataset. TestSamples are generated
	// separately for evaluation.
	Data        data.Config
	TestSamples int

	// World is the number of distributed workers.
	World int
	// Topology hosts the workers; defaults to the paper's Fig. 4 at
	// BottleneckBps if nil.
	Topology      *netsim.Topology
	BottleneckBps float64
	// Traces optionally scale link bandwidths over simulated time,
	// modelling the paper's variable-constrained WAN scenario.
	Traces []*netsim.BandwidthTrace

	// Scheme names the aggregation scheme: "all-reduce", "fp16",
	// "topk-0.1", "topk-0.01", "dgc-0.01", "terngrad", "qsgd", "thc", "ps",
	// "omnireduce", "zen", "pactrain", "pactrain-ternary".
	Scheme string

	// Collective selects the collective algorithm pricing the symmetric
	// collectives: "ring" (flat ring, the paper's setup and the default for
	// the empty string), "tree" (recursive halving/doubling), or
	// "hierarchical" (two-level, racks derived from the topology's switch
	// structure). The convergence trajectory is algorithm-independent — the
	// data plane sums identically — so only simulated time changes.
	Collective string

	// PacTrain parameters (§III).
	PruneRatio     float64
	PruneMethod    prune.Method
	PretrainEpochs int // dense epochs before pruning (the "pre-trained model")
	StableWindow   int // Mask Tracker consecutive-iteration window

	// Optimization.
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64

	// TargetAcc defines TTA; EvalEvery is the evaluation cadence in
	// iterations (0 = once per epoch).
	TargetAcc float64
	EvalEvery int

	// BucketBytes caps DDP gradient buckets (0 = 25 MiB default).
	BucketBytes int
	// Profile and Compute drive the simulated clock.
	Profile nn.CommProfile
	Compute ddp.ComputeModel
	Overlap ddp.Overlap

	// Seed determines everything: weights, data, shuffles, quantization.
	Seed uint64

	// RecordComm enables per-iteration communication logging on rank 0 for
	// bandwidth re-costing.
	RecordComm bool
}

// DefaultConfig returns a small-but-realistic configuration for the given
// paper workload and scheme, used by the experiment harness and examples.
func DefaultConfig(modelName, scheme string) Config {
	profile, err := nn.ProfileByName(modelName)
	if err != nil {
		// MLP and custom models fall back to a small synthetic profile.
		profile = nn.CommProfile{Name: modelName, Params: 1_000_000, FLOPsPerSample: 100_000_000}
	}
	return Config{
		ModelName:      modelName,
		Lite:           nn.DefaultLiteConfig(10, 1),
		Data:           data.CIFAR10Like(512, 11),
		TestSamples:    256,
		World:          8,
		BottleneckBps:  1 * netsim.Gbps,
		Scheme:         scheme,
		PruneRatio:     0.5,
		PruneMethod:    prune.GlobalMagnitude,
		PretrainEpochs: 1,
		StableWindow:   2,
		Epochs:         10,
		BatchSize:      16,
		LR:             0.05,
		Momentum:       0.9,
		WeightDecay:    5e-4,
		TargetAcc:      0.80,
		BucketBytes:    1 << 16,
		Profile:        profile,
		Compute:        ddp.A40ComputeModel(profile.FLOPsPerSample),
		Overlap:        ddp.OverlapNone,
		Seed:           1,
		RecordComm:     true,
	}
}

// validate normalizes and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.World < 1 {
		return fmt.Errorf("core: world size %d < 1", c.World)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("core: epochs %d < 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size %d < 1", c.BatchSize)
	}
	if c.PruneRatio < 0 || c.PruneRatio >= 1 {
		return fmt.Errorf("core: prune ratio %v outside [0,1)", c.PruneRatio)
	}
	if c.Scheme == "" {
		return fmt.Errorf("core: scheme must be set")
	}
	canon, err := collective.CanonicalAlgorithm(c.Collective)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.Collective = canon
	if c.Topology == nil {
		bw := c.BottleneckBps
		if bw <= 0 {
			bw = 1 * netsim.Gbps
		}
		c.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bw})
	}
	if len(c.Topology.Hosts()) < c.World {
		return fmt.Errorf("core: topology has %d hosts for %d workers", len(c.Topology.Hosts()), c.World)
	}
	if c.StableWindow < 1 {
		c.StableWindow = 2
	}
	if c.TestSamples <= 0 {
		c.TestSamples = 256
	}
	if c.Compute.DeviceFLOPS == 0 {
		c.Compute = ddp.A40ComputeModel(c.Profile.FLOPsPerSample)
	}
	return nil
}

// IsPacTrain reports whether the scheme is one of PacTrain's own modes.
func (c *Config) IsPacTrain() bool {
	return c.Scheme == "pactrain" || c.Scheme == "pactrain-ternary"
}
