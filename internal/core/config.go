// Package core implements PacTrain, the paper's contribution: Algorithm 1's
// worker loop combining unstructured pruning, Gradient Sparsity Enforcement
// (Eq. 2), the Mask Tracker, adaptive mask-compact compression over
// all-reduce, and optional ternary quantization (§III-D) — plus the
// baseline communication hooks the paper evaluates against (fp32 all-reduce,
// FP16, TopK, DGC, TernGrad, QSGD, THC, parameter server, OmniReduce-style
// block-sparse and Zen-style sparse all-gather).
package core

import (
	"fmt"

	"pactrain/internal/adaptive"
	"pactrain/internal/collective"
	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/prune"
)

// Config fully describes one distributed training run.
type Config struct {
	// ModelName selects both the lite twin (trained for real) and the
	// communication profile (used for simulated time): "VGG19", "ResNet18",
	// "ResNet152", "ViT-Base-16", or "MLP" (tests).
	ModelName string
	// Lite geometry for the trainable twin.
	Lite nn.LiteConfig
	// Data configures the synthetic dataset. TestSamples are generated
	// separately for evaluation.
	Data        data.Config
	TestSamples int

	// World is the number of distributed workers.
	World int
	// Topology hosts the workers; defaults to the paper's Fig. 4 at
	// BottleneckBps if nil.
	Topology      *netsim.Topology
	BottleneckBps float64
	// Traces optionally scale link bandwidths over simulated time,
	// modelling the paper's variable-constrained WAN scenario.
	Traces []*netsim.BandwidthTrace

	// Scheme names the aggregation scheme: "all-reduce", "fp16",
	// "topk-0.1", "topk-0.01", "dgc-0.01", "terngrad", "qsgd", "thc", "ps",
	// "omnireduce", "zen", "pactrain", "pactrain-ternary", "adaptive".
	Scheme string

	// Collective selects the collective algorithm pricing the symmetric
	// collectives: "ring" (flat ring, the paper's setup and the default for
	// the empty string), "tree" (recursive halving/doubling), or
	// "hierarchical" (two-level, racks derived from the topology's switch
	// structure). The convergence trajectory is algorithm-independent — the
	// data plane sums identically — so only simulated time changes.
	Collective string

	// PacTrain parameters (§III).
	PruneRatio     float64
	PruneMethod    prune.Method
	PretrainEpochs int // dense epochs before pruning (the "pre-trained model")
	StableWindow   int // Mask Tracker consecutive-iteration window

	// Adaptive-controller knobs, read only by the "adaptive" scheme
	// (internal/adaptive). AdaptMargin is the hysteresis win margin
	// (fraction in [0,1); exactly 0 takes the package default, negatives
	// error), AdaptDwell the consecutive winning rounds a challenger needs
	// before a switch (0 takes the default, negatives error), and
	// AdaptCandidates restricts the candidate wire formats (nil = all of
	// adaptive.Formats()). Like the pruning knobs on non-pruning schemes,
	// they are canonicalized away from the fingerprint when another scheme
	// is selected.
	AdaptMargin     float64
	AdaptDwell      int
	AdaptCandidates []string

	// Optimization.
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64

	// TargetAcc defines TTA; EvalEvery is the evaluation cadence in
	// iterations (0 = once per epoch).
	TargetAcc float64
	EvalEvery int

	// BucketBytes caps DDP gradient buckets (0 = 25 MiB default).
	BucketBytes int
	// Profile and Compute drive the simulated clock.
	Profile nn.CommProfile
	Compute ddp.ComputeModel
	// Overlap selects how bucket communication interleaves with backward
	// compute: OverlapNone serializes them (the historical scalar clock);
	// OverlapBackward launches each bucket's collective as its gradient
	// becomes ready, the exact per-bucket timeline model (DESIGN.md §9).
	Overlap ddp.Overlap
	// RankCompute introduces per-rank compute heterogeneity — straggler
	// multipliers and deterministically seeded per-iteration jitter. The
	// zero value is the homogeneous cluster; netsim.OneSlowRank and
	// netsim.RampRanks build the Multipliers presets. Heterogeneity moves
	// only the simulated clocks: the data plane still averages identically,
	// so replicas stay in lockstep (TestStragglerClocksKeepWeightsLockstep).
	RankCompute ddp.RankCompute

	// Seed determines everything: weights, data, shuffles, quantization.
	Seed uint64

	// RecordComm enables per-iteration communication logging on rank 0 for
	// bandwidth re-costing.
	RecordComm bool

	// OnProgress, when non-nil, receives rank 0's evaluation heartbeats as
	// the run advances (progress.go). Observation-only and excluded from
	// the fingerprint: a callback cannot change the trajectory, so two
	// configs differing only here are the same run.
	OnProgress func(Progress) `json:"-"`
}

// DefaultConfig returns a small-but-realistic configuration for the given
// paper workload and scheme, used by the experiment harness and examples.
func DefaultConfig(modelName, scheme string) Config {
	profile, err := nn.ProfileByName(modelName)
	if err != nil {
		// MLP and custom models fall back to a small synthetic profile.
		profile = nn.CommProfile{Name: modelName, Params: 1_000_000, FLOPsPerSample: 100_000_000}
	}
	return Config{
		ModelName:      modelName,
		Lite:           nn.DefaultLiteConfig(10, 1),
		Data:           data.CIFAR10Like(512, 11),
		TestSamples:    256,
		World:          8,
		BottleneckBps:  1 * netsim.Gbps,
		Scheme:         scheme,
		PruneRatio:     0.5,
		PruneMethod:    prune.GlobalMagnitude,
		PretrainEpochs: 1,
		StableWindow:   2,
		Epochs:         10,
		BatchSize:      16,
		LR:             0.05,
		Momentum:       0.9,
		WeightDecay:    5e-4,
		TargetAcc:      0.80,
		BucketBytes:    1 << 16,
		Profile:        profile,
		Compute:        ddp.A40ComputeModel(profile.FLOPsPerSample),
		Overlap:        ddp.OverlapNone,
		Seed:           1,
		RecordComm:     true,
	}
}

// validate normalizes and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.World < 1 {
		return fmt.Errorf("core: world size %d < 1", c.World)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("core: epochs %d < 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size %d < 1", c.BatchSize)
	}
	if c.PruneRatio < 0 || c.PruneRatio >= 1 {
		return fmt.Errorf("core: prune ratio %v outside [0,1)", c.PruneRatio)
	}
	if c.Scheme == "" {
		return fmt.Errorf("core: scheme must be set")
	}
	if c.Scheme == SchemeAdaptive {
		cands, err := adaptive.CanonicalCandidates(c.AdaptCandidates)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		c.AdaptCandidates = cands
		if c.AdaptMargin < 0 || c.AdaptMargin >= 1 {
			return fmt.Errorf("core: adaptive margin %v outside [0,1)", c.AdaptMargin)
		}
		if c.AdaptMargin == 0 {
			c.AdaptMargin = adaptive.DefaultMargin
		}
		if c.AdaptDwell < 0 {
			return fmt.Errorf("core: adaptive dwell %d negative", c.AdaptDwell)
		}
		if c.AdaptDwell == 0 {
			c.AdaptDwell = adaptive.DefaultDwell
		}
	}
	canon, err := collective.CanonicalAlgorithm(c.Collective)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.Collective = canon
	if c.Topology == nil {
		bw := c.BottleneckBps
		if bw <= 0 {
			bw = 1 * netsim.Gbps
		}
		c.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bw})
	}
	if len(c.Topology.Hosts()) < c.World {
		return fmt.Errorf("core: topology has %d hosts for %d workers", len(c.Topology.Hosts()), c.World)
	}
	if c.StableWindow < 1 {
		c.StableWindow = 2
	}
	if c.TestSamples <= 0 {
		c.TestSamples = 256
	}
	if c.Compute.DeviceFLOPS == 0 {
		c.Compute = ddp.A40ComputeModel(c.Profile.FLOPsPerSample)
	}
	if err := c.RankCompute.Validate(c.World); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.RankCompute = c.RankCompute.Canonical()
	return nil
}

// TimelineActive reports whether the run uses the per-rank event-timeline
// features — compute heterogeneity or per-bucket backward overlap. When
// false, the trainer's clock arithmetic is bit-identical to the historical
// scalar model, and so are every fingerprint and recorded result.
func (c *Config) TimelineActive() bool {
	return c.RankCompute.Enabled() || c.Overlap == ddp.OverlapBackward
}

// SchemeAdaptive names the cost-model-driven online compression scheme
// (internal/adaptive): PacTrain's pruning pipeline with a per-bucket
// controller choosing the wire format each round.
const SchemeAdaptive = "adaptive"

// IsPacTrain reports whether the scheme is one of PacTrain's own modes —
// the ones that prune, enforce gradient sparsity, and run the Mask Tracker.
func (c *Config) IsPacTrain() bool {
	return c.Scheme == "pactrain" || c.Scheme == "pactrain-ternary" || c.Scheme == SchemeAdaptive
}

// FabricSensitive reports whether the run's recorded communication depends
// on the fabric itself: the adaptive controller prices candidates against
// live bandwidth, so its decision sequence — and therefore the recorded op
// log — can change with the network. Re-costing such a log is exact only
// under the fabric it was recorded on (DESIGN.md §8); the harness retrains
// fabric-sensitive configs per operating point instead. A controller
// restricted to a single candidate always picks it, making the log
// fabric-independent again.
//
// The same sensitivity extends to the clock inputs of a decision: the
// controller prices at the bucket's launch time, which moves with
// Config.Compute, RankCompute, and Overlap — so a multi-candidate adaptive
// log is only valid under the compute profile it was recorded with, too.
// Static schemes and single-candidate controllers record op sequences that
// depend on gradient values alone, which is what lets the stragglers
// experiment re-cost one recording across every straggler profile and
// overlap mode (DESIGN.md §9).
func (c *Config) FabricSensitive() bool {
	if c.Scheme != SchemeAdaptive {
		return false
	}
	cands, err := adaptive.CanonicalCandidates(c.AdaptCandidates)
	if err != nil {
		return true // invalid lists are rejected by validate anyway
	}
	return len(cands) > 1
}
