package core

import (
	"fmt"
	"sync"
	"time"

	"pactrain/internal/collective"
	"pactrain/internal/data"
	"pactrain/internal/ddp"
	"pactrain/internal/gse"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/prune"
	"pactrain/internal/simclock"
	"pactrain/internal/tensor"
)

// Result summarizes one distributed training run.
type Result struct {
	Scheme string
	Model  string
	// Collective is the canonical collective-algorithm name the run's
	// simulated clock was priced under ("ring" unless configured otherwise).
	Collective string

	// Curve holds rank 0's evaluation trajectory against simulated time.
	Curve metrics.Curve
	// FinalAcc and BestAcc summarize the trajectory.
	FinalAcc float64
	BestAcc  float64
	// TTASeconds is the simulated time to reach Config.TargetAcc; if
	// ReachedTarget is false it is the end-of-run time (a lower bound).
	TTASeconds    float64
	ReachedTarget bool

	Iterations int
	EpochsRun  int
	// SimSeconds is the total simulated training time.
	SimSeconds float64
	// WallSeconds is the host wall-clock cost of the run.
	WallSeconds float64

	// Stats aggregates the cluster's communication accounting.
	Stats collective.Stats
	// CommLog holds rank 0's per-iteration operation log when
	// Config.RecordComm is set, enabling bandwidth re-costing.
	CommLog *CommLog

	// StableFraction is the fraction of PacTrain bucket syncs that used the
	// compact path — for the adaptive scheme, the controller-driven
	// fraction (0 for other schemes).
	StableFraction float64
	// MaskSparsity is the fraction of pruned weights (0 when not pruning).
	MaskSparsity float64

	// AdaptiveDecisions counts, for the adaptive scheme, how many
	// controller rounds landed on each candidate wire format (nil for
	// every other scheme); AdaptiveSwitches counts completed format
	// switches. The per-round decisions themselves are in CommLog.
	AdaptiveDecisions map[string]int `json:",omitempty"`
	AdaptiveSwitches  int            `json:",omitempty"`

	// WeightChecksums holds one end-of-training weight checksum per rank;
	// equal values certify that the replicas never diverged.
	WeightChecksums []float64
}

// Run executes one distributed training run: cfg.World worker goroutines
// train identical model replicas on disjoint shards, synchronizing through
// the configured scheme over the simulated fabric, while rank 0 evaluates
// against simulated time.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Equal shard sizes keep every worker's collective sequence in
	// lockstep, as DistributedSampler's padding does.
	cfg.Data.Samples = ((cfg.Data.Samples + cfg.World - 1) / cfg.World) * cfg.World

	start := time.Now()
	fabric := netsim.NewFabric(cfg.Topology)
	for _, tr := range cfg.Traces {
		fabric.SetTrace(tr)
	}
	algo, err := collective.AlgorithmByName(cfg.Collective)
	if err != nil {
		return nil, err
	}
	cluster := collective.NewClusterWith(cfg.World, fabric, algo)

	// Train and test splits must share class prototypes, so generate one
	// dataset and split off the tail for evaluation.
	fullCfg := cfg.Data
	fullCfg.Samples = cfg.Data.Samples + cfg.TestSamples
	full := data.Generate(fullCfg)
	trainSet, testSet := data.Split(full, cfg.TestSamples)

	res := &Result{Scheme: cfg.Scheme, Model: cfg.ModelName, Collective: cfg.Collective,
		WeightChecksums: make([]float64, cfg.World)}
	var log *CommLog
	if cfg.RecordComm {
		log = &CommLog{}
		res.CommLog = log
	}

	errs := make([]error, cfg.World)
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.World; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = runWorker(&cfg, rank, cluster, trainSet, testSet, log, res)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res.Stats = cluster.Stats()
	res.FinalAcc = res.Curve.FinalAcc()
	res.BestAcc = res.Curve.BestAcc()
	res.TTASeconds, res.ReachedTarget = res.Curve.TTA(cfg.TargetAcc)
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// runWorker is the per-rank training loop (Algorithm 1).
func runWorker(cfg *Config, rank int, cluster *collective.Cluster,
	trainSet, testSet *data.Dataset, log *CommLog, res *Result) error {

	model, err := nn.NewLiteByName(cfg.ModelName, cfg.Lite)
	if err != nil {
		return err
	}
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	shard := data.ShardDataset(trainSet, rank, cfg.World)
	buckets := ddp.BuildBuckets(model, cfg.BucketBytes)

	// The per-rank timeline model (DESIGN.md §9). Under per-bucket overlap
	// each bucket's collective launches once its gradient is ready — forward
	// plus the bucket's prefix share of backward, in reverse-registration
	// order. With heterogeneity or overlap active, a clock-only rendezvous
	// (LaunchBarrier) resolves every bucket's launch time before the hook
	// runs, so lockstep decisions and the recorded log see the true
	// synchronized start; when inactive, the arithmetic below reduces
	// bit-exactly to the historical scalar clock.
	timeline := cfg.TimelineActive()
	elems := make([]int, len(buckets))
	for i, b := range buckets {
		elems[i] = b.Elements()
	}
	var prefix []float64
	if cfg.Overlap == ddp.OverlapBackward {
		prefix = simclock.PrefixShares(elems)
	}

	// Price the lite twin's buckets as slices of the full-size model's
	// gradient: each logical element carries Profile.Params/liteParams
	// wire elements (DESIGN.md §1).
	wireScale := 1.0
	if cfg.Profile.Params > 0 && model.NumParameters() > 0 {
		wireScale = float64(cfg.Profile.Params) / float64(model.NumParameters())
	}
	env := &hookEnv{cluster: cluster, rank: rank, world: cfg.World, wireScale: wireScale}
	if rank == 0 {
		env.log = log
		if log != nil {
			log.SetBuckets(elems)
		}
	}
	hook, err := buildHook(cfg, env)
	if err != nil {
		return err
	}

	var mask *prune.Mask
	simTime := 0.0
	iter := 0
	lastLoss := 0.0
	invWorld := 1 / float32(cfg.World)

	evalNow := func(endOfEpoch bool) bool {
		if rank != 0 {
			return false
		}
		if cfg.EvalEvery > 0 {
			return iter%cfg.EvalEvery == 0
		}
		return endOfEpoch
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = nn.CosineLR(cfg.LR, cfg.LR*0.1, epoch, cfg.Epochs)

		// Algorithm 1 line 2: prune once the warm-up ("pre-trained model")
		// phase completes. The mask derives deterministically from state all
		// replicas share, so it is identical everywhere without extra
		// communication; the Mask Tracker still pays the bitmap re-share
		// when it sees the pattern move.
		if cfg.IsPacTrain() && mask == nil && epoch == cfg.PretrainEpochs {
			mask, err = buildMask(cfg, model, trainSet)
			if err != nil {
				return err
			}
			mask.Apply(model)
			gse.ZeroVelocity(opt, model, mask)
			if mr, ok := hook.(maskResetter); ok {
				mr.NotifyMaskInvalidated()
			}
			if rank == 0 {
				res.MaskSparsity = mask.Sparsity()
			}
		}

		rng := tensor.NewRNG(cfg.Seed*7919 + uint64(rank)*101 + uint64(epoch))
		next := shard.Batches(cfg.BatchSize, rng)
		for {
			x, labels, ok := next()
			if !ok {
				break
			}
			if env.log != nil {
				env.log.StartIter()
			}

			out := model.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(out, labels)
			lastLoss = loss
			model.ZeroGrad()
			model.Backward(grad)
			if mask != nil {
				gse.Enforce(model, mask) // Eq. 2, every iteration
			}

			// Simulated compute, then bucket-by-bucket synchronization on
			// this rank's timeline. The Scale/ready/Finish expressions are
			// shared with the harness re-coster (simclock.IterSchedule,
			// ddp.RankCompute.Scale), which is what keeps re-costing
			// bit-exact for per-rank logs.
			scale := cfg.RankCompute.Scale(rank, iter)
			fwd := cfg.Compute.ForwardSeconds(len(labels)) * scale
			bwd := cfg.Compute.BackwardSeconds(len(labels)) * scale
			sched := simclock.NewIterSchedule(simTime, fwd, bwd, prefix)
			commEnd := sched.Start
			for i, b := range buckets {
				b.Gather()
				// Launch no earlier than this rank's bucket-ready time and
				// never before the previous collective completed (one
				// in-order communication stream, as real DDP schedules).
				t := sched.ReadyAt(i)
				if commEnd > t {
					t = commEnd
				}
				if timeline {
					t = cluster.LaunchBarrier(rank, t)
				}
				commEnd = hook.Sync(rank, b, t)
			}
			simTime = sched.Finish(commEnd)
			for _, b := range buckets {
				b.Scale(invWorld)
				b.Scatter()
			}
			if mask != nil {
				gse.Enforce(model, mask)
			}
			opt.Step(model.Params())
			iter++

			if evalNow(false) {
				acc := evaluate(model, testSet)
				res.Curve.Add(metrics.Point{Iter: iter, Epoch: epoch, SimTime: simTime, Acc: acc, Loss: lastLoss})
				emitProgress(cfg, hook, iter, epoch, simTime, acc, lastLoss)
			}
		}
		if evalNow(true) && cfg.EvalEvery == 0 {
			acc := evaluate(model, testSet)
			res.Curve.Add(metrics.Point{Iter: iter, Epoch: epoch, SimTime: simTime, Acc: acc, Loss: lastLoss})
			emitProgress(cfg, hook, iter, epoch, simTime, acc, lastLoss)
		}
	}

	var checksum float64
	for _, p := range model.Params() {
		checksum += p.W.Sum()
	}
	res.WeightChecksums[rank] = checksum

	if rank == 0 {
		res.Iterations = iter
		res.EpochsRun = cfg.Epochs
		res.SimSeconds = simTime
		if sr, ok := hook.(stableReporter); ok {
			res.StableFraction = sr.StableFraction()
		}
		if ar, ok := hook.(adaptiveReporter); ok {
			res.AdaptiveDecisions = ar.FormatCounts()
			res.AdaptiveSwitches = ar.FormatSwitches()
		}
	}
	return nil
}

// maskResetter is implemented by hooks whose per-bucket state derives from
// the sparsity pattern; the trainer resets them at the pruning step.
type maskResetter interface{ NotifyMaskInvalidated() }

// stableReporter exposes the compact-path fraction of the PacTrain-family
// hooks.
type stableReporter interface{ StableFraction() float64 }

// adaptiveReporter exposes the adaptive controller's decision telemetry.
type adaptiveReporter interface {
	FormatCounts() map[string]int
	FormatSwitches() int
}

// buildMask derives the pruning mask per the configured method. Magnitude
// methods depend only on the (replica-identical) weights; GraSP uses a probe
// batch drawn deterministically from the shared dataset so that every
// worker computes the same mask.
func buildMask(cfg *Config, model *nn.Model, trainSet *data.Dataset) (*prune.Mask, error) {
	switch cfg.PruneMethod {
	case prune.GlobalMagnitude, prune.LayerMagnitude:
		return prune.MagnitudePrune(model, cfg.PruneRatio, cfg.PruneMethod)
	case prune.GraSP:
		probeN := 64
		if probeN > trainSet.Len() {
			probeN = trainSet.Len()
		}
		x, labels := trainSet.Batch(0, probeN)
		computeGrads := func() {
			model.ZeroGrad()
			out := model.Forward(x, true)
			_, g := nn.SoftmaxCrossEntropy(out, labels)
			model.Backward(g)
		}
		mask, err := prune.GraSPPrune(model, cfg.PruneRatio, computeGrads)
		model.ZeroGrad()
		return mask, err
	}
	return nil, fmt.Errorf("core: unsupported prune method %v", cfg.PruneMethod)
}

// evaluate computes test accuracy in chunks (eval compute is excluded from
// the simulated clock, matching how the paper reports training time).
func evaluate(model *nn.Model, testSet *data.Dataset) float64 {
	const chunk = 64
	correct := 0.0
	total := 0
	for from := 0; from < testSet.Len(); from += chunk {
		x, labels := testSet.Batch(from, chunk)
		out := model.Forward(x, false)
		correct += nn.Accuracy(out, labels) * float64(len(labels))
		total += len(labels)
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}
