package core

import (
	"pactrain/internal/collective"
	"pactrain/internal/compress"
	"pactrain/internal/ddp"
	"pactrain/internal/masktracker"
)

// hookEnv is the per-worker context hooks operate in. Hooks issue
// collectives against the cluster, which prices them under the config's
// collective algorithm (Config.Collective); the hook code itself is
// algorithm-agnostic. buildHook (schemes.go) constructs hooks from the
// scheme registry.
type hookEnv struct {
	cluster *collective.Cluster
	rank    int
	world   int
	log     *CommLog // non-nil only on rank 0 when recording

	// wireScale prices each logical bucket element as wireScale wire
	// elements, so a lite-twin bucket costs what the corresponding slice of
	// the full-size model's gradient would cost (DESIGN.md §1: convergence
	// comes from the lite twin, bytes-on-wire from the paper's model).
	wireScale float64
}

func (e *hookEnv) record(op CommOp) {
	if e.log != nil {
		e.log.Record(op)
	}
}

// scaleWire applies the profile scale to a wire format's per-element cost;
// fixed per-message headers are left untouched.
func (e *hookEnv) scaleWire(w collective.WireFormat) collective.WireFormat {
	if e.wireScale > 0 && e.wireScale != 1 {
		w.BytesPerElement *= e.wireScale
	}
	return w
}

// --- Dense hooks (all-reduce / PS transports) --------------------------------

// denseHook aggregates via a DenseCompressor: encode, sum payloads through
// the compressor's transport, decode.
type denseHook struct {
	env     *hookEnv
	comp    compress.DenseCompressor
	forcePS bool

	// bufs holds one payload buffer per bucket so steady-state iterations
	// reuse instead of allocate. Reuse is safe: every rank's payload is only
	// read inside the collective's rendezvous compute, which completes before
	// any rank can reach its next Sync of the same bucket.
	bufs map[int][]float32
}

// encode produces the bucket's payload, reusing the per-bucket buffer when
// the compressor supports it.
func (h *denseHook) encode(b *ddp.Bucket) []float32 {
	re, ok := h.comp.(compress.ReusableEncoder)
	if !ok {
		return h.comp.Encode(b.Flat)
	}
	if h.bufs == nil {
		h.bufs = make(map[int][]float32)
	}
	out := re.EncodeInto(b.Flat, h.bufs[b.Index])
	h.bufs[b.Index] = out
	return out
}

// Name implements ddp.Hook.
func (h *denseHook) Name() string {
	if h.forcePS {
		return "ps"
	}
	return h.comp.Name()
}

// Sync implements ddp.Hook.
func (h *denseHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	payload := h.encode(b)
	wire := h.env.scaleWire(h.comp.Wire())
	var end float64
	if h.forcePS || h.comp.Transport() == compress.TransportPS {
		end = h.env.cluster.PSAggregateSum(rank, payload, wire, localTime)
		h.env.record(CommOp{Kind: OpPS, Elements: len(payload), Wire: wire,
			Bucket: b.Index, LaunchAt: localTime})
	} else {
		end = h.env.cluster.AllReduceSum(rank, payload, wire, localTime)
		h.env.record(CommOp{Kind: OpAllReduce, Elements: len(payload), Wire: wire,
			Bucket: b.Index, LaunchAt: localTime})
	}
	h.comp.Decode(payload, b.Flat)
	return end
}

// --- Sparse hooks (all-gather transport) -------------------------------------

// sparseHook aggregates via a SparseCompressor: each worker's selection is
// exchanged wholesale with all-gather and summed locally — the transport
// TopK and DGC require (Table 1).
type sparseHook struct {
	env     *hookEnv
	mk      func() compress.SparseCompressor
	perBkt  map[int]compress.SparseCompressor
	nameStr string

	// sizesBuf is reused for the per-rank payload-size scratch on ranks that
	// do not record (the comm log retains the slice it is handed, so rank 0
	// keeps allocating).
	sizesBuf []int
}

// sizesScratch returns an n-element size slice, reused when recording is off.
func (h *sparseHook) sizesScratch(n int) []int {
	if h.env.log != nil {
		return make([]int, n)
	}
	if cap(h.sizesBuf) < n {
		h.sizesBuf = make([]int, n)
	}
	return h.sizesBuf[:n]
}

func newSparseHook(env *hookEnv, mk func() compress.SparseCompressor) *sparseHook {
	h := &sparseHook{env: env, mk: mk, perBkt: make(map[int]compress.SparseCompressor)}
	h.nameStr = mk().Name()
	return h
}

// Name implements ddp.Hook.
func (h *sparseHook) Name() string { return h.nameStr }

// Sync implements ddp.Hook.
func (h *sparseHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	comp := h.perBkt[b.Index]
	if comp == nil {
		comp = h.mk()
		h.perBkt[b.Index] = comp
	}
	payload := comp.Encode(b.Flat)
	wire := h.env.scaleWire(comp.Wire())
	all, end := h.env.cluster.AllGatherSparse(rank, payload, wire, localTime)
	for i := range b.Flat {
		b.Flat[i] = 0
	}
	sizes := h.sizesScratch(len(all))
	for i, p := range all {
		sizes[i] = len(p.Values)
		comp.DecodeSum(p, b.Flat)
	}
	h.env.record(CommOp{Kind: OpAllGather, Sizes: sizes, Wire: wire,
		Bucket: b.Index, LaunchAt: localTime})
	return end
}

// --- SCC baseline hooks -------------------------------------------------------

// omniReduceHook streams non-zero gradient blocks through an aggregator
// (OmniReduce-style, §II). Effective only when blocks are actually zero —
// i.e. under pruning+GSE — and still pays per-block headers and the union
// fan-out.
type omniReduceHook struct {
	env       *hookEnv
	blockSize int
}

// Name implements ddp.Hook.
func (*omniReduceHook) Name() string { return "omnireduce" }

// Sync implements ddp.Hook.
func (h *omniReduceHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	scale := h.env.wireScale
	if scale <= 0 {
		scale = 1
	}
	own, union, end := h.env.cluster.AllReduceBlockSparse(rank, b.Flat, h.blockSize, scale, localTime)
	_ = own
	blocks := make([]int, h.env.world)
	for i := range blocks {
		blocks[i] = union // conservative per-worker record; exact counts live in cluster stats
	}
	h.env.record(CommOp{Kind: OpBlockSparse, Blocks: blocks, Union: union, BlockSz: h.blockSize,
		Scale: scale, Bucket: b.Index, LaunchAt: localTime})
	return end
}

// zenHook exchanges each worker's exact non-zero coordinates via a balanced
// sparse all-gather (Zen-style, §II). Wire cost is COO (8 B/non-zero), so
// it beats dense only below 50% density.
type zenHook struct {
	env *hookEnv
}

// Name implements ddp.Hook.
func (*zenHook) Name() string { return "zen" }

// Sync implements ddp.Hook.
func (h *zenHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	var vals []float32
	var idx []int32
	for i, v := range b.Flat {
		if v != 0 {
			vals = append(vals, v)
			idx = append(idx, int32(i))
		}
	}
	payload := collective.SparsePayload{Values: vals, Indices: idx}
	wire := h.env.scaleWire(collective.WireSparse)
	all, end := h.env.cluster.AllGatherSparse(rank, payload, wire, localTime)
	for i := range b.Flat {
		b.Flat[i] = 0
	}
	sizes := make([]int, len(all))
	for i, p := range all {
		sizes[i] = len(p.Values)
		for j, id := range p.Indices {
			b.Flat[id] += p.Values[j]
		}
	}
	h.env.record(CommOp{Kind: OpAllGather, Sizes: sizes, Wire: wire,
		Bucket: b.Index, LaunchAt: localTime})
	return end
}

// --- The PacTrain hook --------------------------------------------------------

// unstableFullSync is the synchronization step the PacTrain-family hooks
// (pacTrainHook, adaptiveHook) share while a bucket's sparsity pattern is
// unstable (Algorithm 1 lines 11–12): pay the owed bitmap re-share, run a
// full fp32 all-reduce, and feed the tracker with the aggregated gradient —
// identical bytes on every worker keep the trackers, and therefore the
// stable/unstable branch, in lockstep across ranks. Both hooks delegate
// here so the bit-exactness contract between them
// (TestAdaptiveSingleCandidateMatchesPacTrainTernary) is structural, not
// copy-discipline.
func unstableFullSync(env *hookEnv, tr *masktracker.Tracker, rank int, b *ddp.Bucket,
	payBitmap bool, localTime float64) (float64, masktracker.Observation) {
	var end float64
	if payBitmap {
		bitWire := env.scaleWire(collective.BitmapWire)
		end = env.cluster.BroadcastScaledBitmap(rank, 0, b.Elements(), bitWire, localTime)
		env.record(CommOp{Kind: OpBitmapBroadcast, Elements: b.Elements(), Wire: bitWire,
			Bucket: b.Index, LaunchAt: localTime})
		localTime = end
	}
	fullWire := env.scaleWire(collective.WireFP32)
	end = env.cluster.AllReduceSum(rank, b.Flat, fullWire, localTime)
	env.record(CommOp{Kind: OpAllReduce, Elements: b.Elements(), Wire: fullWire,
		Bucket: b.Index, LaunchAt: localTime})
	return end, tr.Observe(b.Flat)
}

// pacTrainHook implements Algorithm 1's synchronization step. Per bucket it
// maintains a Mask Tracker fed with the *aggregated* gradient (identical on
// every worker, so all workers take the same branch without extra
// consensus traffic):
//
//   - while the sparsity pattern is unstable → full fp32 all-reduce, plus a
//     one-off bitmap broadcast whenever the pattern changed (re-sharing the
//     global mask knowledge);
//   - once stable → reformat the sparse gradient into a compact dense
//     tensor via the shared mask and all-reduce only the NNZ coordinates
//     (optionally ternarized, §III-D).
type pacTrainHook struct {
	env     *hookEnv
	ternary bool
	seed    uint64
	window  int

	trackers map[int]*masktracker.Tracker
	compacts map[int]*compress.MaskCompact
	// pendingBitmap marks buckets whose mask changed last iteration and owe
	// a bitmap broadcast with the next full sync.
	pendingBitmap map[int]bool
	observed      map[int]bool

	// bufs holds per-bucket compact payload buffers (same safety argument as
	// denseHook.bufs).
	bufs map[int][]float32

	// Telemetry.
	CompactSyncs int
	FullSyncs    int
}

// compactPayload encodes through the installed mask into the bucket's
// reusable buffer.
func (h *pacTrainHook) compactPayload(mc *compress.MaskCompact, b *ddp.Bucket) []float32 {
	if h.bufs == nil {
		h.bufs = make(map[int][]float32)
	}
	out := mc.EncodeInto(b.Flat, h.bufs[b.Index])
	h.bufs[b.Index] = out
	return out
}

func newPacTrainHook(env *hookEnv, cfg *Config, ternary bool, seed uint64) *pacTrainHook {
	return &pacTrainHook{
		env: env, ternary: ternary, seed: seed, window: cfg.StableWindow,
		trackers:      make(map[int]*masktracker.Tracker),
		compacts:      make(map[int]*compress.MaskCompact),
		pendingBitmap: make(map[int]bool),
		observed:      make(map[int]bool),
	}
}

// Name implements ddp.Hook.
func (h *pacTrainHook) Name() string {
	if h.ternary {
		return "pactrain-ternary"
	}
	return "pactrain"
}

// Sync implements ddp.Hook.
func (h *pacTrainHook) Sync(rank int, b *ddp.Bucket, localTime float64) float64 {
	tr := h.trackers[b.Index]
	if tr == nil {
		tr = masktracker.New(h.window)
		h.trackers[b.Index] = tr
	}

	if tr.Stable() {
		mc := h.compacts[b.Index]
		if mc == nil || !mc.HasMask() {
			mc = compress.NewMaskCompact(h.ternary, h.seed*131+uint64(b.Index))
			mc.SetMask(tr.Indices(), b.Elements())
			h.compacts[b.Index] = mc
		}
		payload := h.compactPayload(mc, b)
		wire := h.env.scaleWire(mc.Wire())
		end := h.env.cluster.AllReduceSum(rank, payload, wire, localTime)
		mc.Decode(payload, b.Flat)
		h.env.record(CommOp{Kind: OpAllReduce, Elements: len(payload), Wire: wire,
			Bucket: b.Index, LaunchAt: localTime})
		h.CompactSyncs++
		// On the compact path the support is the mask by construction —
		// GSE pins local supports inside it and Decode reproduces exactly
		// it — so there is nothing new to observe. (Observing the decoded
		// values would be wrong under ternary quantization, which zeroes
		// in-mask coordinates at random.)
		return end
	}

	// Unstable: full synchronization, paying the mask re-share if the
	// pattern moved last iteration (unstableFullSync).
	end, obs := unstableFullSync(h.env, tr, rank, b, h.pendingBitmap[b.Index], localTime)
	h.compacts[b.Index] = nil // any cached mask is now suspect
	h.FullSyncs++
	h.pendingBitmap[b.Index] = obs.Changed && h.observed[b.Index]
	h.observed[b.Index] = true
	return end
}

// NotifyMaskInvalidated discards all tracker and compaction state. The
// trainer calls it at the pruning step (Algorithm 1 line 2): the gradient
// support is about to shrink, so unions learned from dense warm-up
// gradients no longer describe the sparsity pattern. Every worker calls it
// at the same iteration, so the branch lockstep is preserved, and the next
// stabilization pays the bitmap re-share as usual.
func (h *pacTrainHook) NotifyMaskInvalidated() {
	for _, tr := range h.trackers {
		tr.Reset()
	}
	h.compacts = make(map[int]*compress.MaskCompact)
	h.pendingBitmap = make(map[int]bool)
	h.observed = make(map[int]bool)
}

// StableFraction reports the fraction of bucket syncs that used the compact
// path.
func (h *pacTrainHook) StableFraction() float64 {
	total := h.CompactSyncs + h.FullSyncs
	if total == 0 {
		return 0
	}
	return float64(h.CompactSyncs) / float64(total)
}
