package core

import (
	"math"
	"testing"

	"pactrain/internal/collective"
	"pactrain/internal/data"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
)

// tinyConfig returns a fast configuration for integration tests: MLP twin,
// small synthetic dataset, 4 workers on a flat gigabit switch.
func tinyConfig(scheme string) Config {
	cfg := DefaultConfig("MLP", scheme)
	cfg.World = 4
	cfg.Topology = netsim.FlatTopology(4, netsim.Gbps, 1e-5)
	cfg.Data = data.CIFAR10Like(320, 5)
	cfg.TestSamples = 100
	cfg.Epochs = 3
	cfg.BatchSize = 8
	cfg.PretrainEpochs = 1
	cfg.TargetAcc = 0.5
	cfg.BucketBytes = 1 << 14
	cfg.Profile = nn.CommProfile{Name: "MLP", Params: 1_000_000, FLOPsPerSample: 50_000_000}
	return cfg
}

func TestRunAllReduceBaseline(t *testing.T) {
	res, err := Run(tinyConfig("all-reduce"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.SimSeconds <= 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("expected 3 eval points (per epoch), got %d", len(res.Curve.Points))
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("model failed to learn: acc %v", res.FinalAcc)
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged: %v vs %v", rank, cs, res.WeightChecksums[0])
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := Run(tinyConfig("all-reduce"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig("all-reduce"))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.SimSeconds != b.SimSeconds {
		t.Fatalf("same config must reproduce: acc %v/%v time %v/%v",
			a.FinalAcc, b.FinalAcc, a.SimSeconds, b.SimSeconds)
	}
}

func TestRunAllSchemesTrainAndStayConsistent(t *testing.T) {
	schemes := []string{"fp16", "terngrad", "qsgd", "thc", "ps",
		"topk-0.1", "dgc-0.1", "omnireduce", "zen"}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := tinyConfig(scheme)
			cfg.Epochs = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for rank, cs := range res.WeightChecksums {
				if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
					t.Fatalf("%s: replica %d diverged", scheme, rank)
				}
			}
			if res.Stats.SimSeconds <= 0 {
				t.Fatalf("%s: no communication time accrued", scheme)
			}
		})
	}
}

func TestRunPacTrain(t *testing.T) {
	cfg := tinyConfig("pactrain")
	cfg.PruneRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskSparsity < 0.3 || res.MaskSparsity > 0.6 {
		t.Fatalf("mask sparsity %v, want ≈0.5 over prunable weights", res.MaskSparsity)
	}
	if res.StableFraction <= 0 {
		t.Fatal("PacTrain never reached the compact path")
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("pruned model failed to learn: %v", res.FinalAcc)
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged", rank)
		}
	}
}

func TestRunPacTrainTernary(t *testing.T) {
	cfg := tinyConfig("pactrain-ternary")
	cfg.PruneRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StableFraction <= 0 {
		t.Fatal("ternary PacTrain never reached the compact path")
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged", rank)
		}
	}
}

// TestPacTrainCheaperThanAllReduceUnderBottleneck is the paper's core
// claim in miniature: with a constrained link, PacTrain's per-iteration
// communication is cheaper, so the same number of iterations finishes
// sooner in simulated time.
func TestPacTrainCheaperThanAllReduceUnderBottleneck(t *testing.T) {
	mk := func(scheme string) Config {
		cfg := tinyConfig(scheme)
		cfg.World = 8
		cfg.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 100 * netsim.Mbps})
		cfg.Epochs = 3
		cfg.PretrainEpochs = 1
		return cfg
	}
	base, err := Run(mk("all-reduce"))
	if err != nil {
		t.Fatal(err)
	}
	pac, err := Run(mk("pactrain-ternary"))
	if err != nil {
		t.Fatal(err)
	}
	if pac.SimSeconds >= base.SimSeconds {
		t.Fatalf("PacTrain (%v s) should beat all-reduce (%v s) at 100 Mbps",
			pac.SimSeconds, base.SimSeconds)
	}
}

func TestCommLogRecostMatchesInSitu(t *testing.T) {
	cfg := tinyConfig("pactrain")
	cfg.Epochs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommLog == nil || len(res.CommLog.Iters) != res.Iterations {
		t.Fatalf("comm log has %d iterations, want %d", len(res.CommLog.Iters), res.Iterations)
	}
	// Re-cost the log on an identical fresh fabric: with constant
	// bandwidths the total must equal the in-situ communication time.
	topo := netsim.FlatTopology(4, netsim.Gbps, 1e-5)
	fabric := netsim.NewFabric(topo)
	hosts := topo.Hosts()
	alg := collective.MustAlgorithm(res.Collective)
	var total float64
	for _, ops := range res.CommLog.Iters {
		total += CostIter(ops, alg, fabric, hosts, total)
	}
	if math.Abs(total-res.Stats.SimSeconds)/res.Stats.SimSeconds > 1e-6 {
		t.Fatalf("recost %v vs in-situ %v", total, res.Stats.SimSeconds)
	}
}

func TestWireBytesPerWorkerShrinkWithPacTrain(t *testing.T) {
	base, err := Run(tinyConfig("all-reduce"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig("pactrain-ternary")
	cfg.Epochs = 3
	pac, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare last-iteration wire volume (PacTrain is on the compact path
	// by then).
	lastBase := base.CommLog.Iters[len(base.CommLog.Iters)-1]
	lastPac := pac.CommLog.Iters[len(pac.CommLog.Iters)-1]
	bb := WireBytesPerWorker(lastBase, 4)
	pb := WireBytesPerWorker(lastPac, 4)
	if pb >= bb/4 {
		t.Fatalf("pactrain-ternary last-iteration bytes %v, want < 1/4 of baseline %v", pb, bb)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := tinyConfig("all-reduce")
	cfg.World = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("world 0 must fail")
	}
	cfg = tinyConfig("nope")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	cfg = tinyConfig("all-reduce")
	cfg.PruneRatio = 1.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid prune ratio must fail")
	}
}

func TestEvalEveryCadence(t *testing.T) {
	cfg := tinyConfig("all-reduce")
	cfg.EvalEvery = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Iterations / 2
	if len(res.Curve.Points) != want {
		t.Fatalf("eval points %d, want %d", len(res.Curve.Points), want)
	}
}

func TestGraSPPruneMethodRuns(t *testing.T) {
	cfg := tinyConfig("pactrain")
	cfg.PruneMethod = 2 // prune.GraSP
	cfg.Epochs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskSparsity <= 0 {
		t.Fatal("GraSP produced an empty mask")
	}
	for rank, cs := range res.WeightChecksums {
		if math.Abs(cs-res.WeightChecksums[0]) > 1e-6 {
			t.Fatalf("replica %d diverged under GraSP pruning", rank)
		}
	}
}
