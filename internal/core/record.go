package core

import (
	"pactrain/internal/collective"
	"pactrain/internal/netsim"
)

// OpKind identifies a recorded communication operation.
type OpKind int

// Recorded operation kinds.
const (
	OpAllReduce OpKind = iota
	OpAllGather
	OpPS
	OpBlockSparse
	OpBitmapBroadcast
)

// CommOp describes one collective invocation precisely enough to re-cost it
// under a different network without re-running training.
type CommOp struct {
	Kind     OpKind
	Elements int                   // all-reduce / PS / bitmap element count
	Sizes    []int                 // all-gather per-origin element counts
	Blocks   []int                 // block-sparse per-worker block counts
	Union    int                   // block-sparse union block count
	BlockSz  int                   // block-sparse block size
	Scale    float64               // block-sparse wire scale (1 if unset)
	Wire     collective.WireFormat // wire format of the payload (pre-scaled)
	// Decision names the wire format the adaptive controller chose when
	// this op was controller-driven ("" for static schemes and for the
	// adaptive scheme's forced full syncs). The op's Kind/Elements/Wire
	// already encode the decision's *consequences*, so CostIter replays an
	// adaptive log without interpreting this field — but only on the fabric
	// the log was recorded under, because a different fabric would have
	// produced different decisions (Config.FabricSensitive, DESIGN.md §8).
	Decision string `json:",omitempty"`
	// Bucket is the DDP bucket index the op synchronized. Together with the
	// log's BucketElems it lets the timeline re-coster rebuild the op's
	// per-rank ready times (forward + the bucket's prefix share of
	// backward) on any fabric and under any straggler profile.
	Bucket int `json:",omitempty"`
	// LaunchAt is the synchronized launch time the op actually started at
	// during training — the max of the participants' ready clocks. It is a
	// recorded observation for verification and per-rank log analysis; the
	// timeline re-coster *derives* launches from the config instead (so it
	// can re-price under other fabrics and straggler profiles) and
	// TestStragglerRecostMatchesRecordedLaunches pins that the two agree.
	LaunchAt float64 `json:",omitempty"`
}

// CommLog records the operations of every iteration on rank 0.
type CommLog struct {
	// BucketElems holds each DDP bucket's element count in bucket order
	// (reverse registration order) — the geometry behind the per-bucket
	// backward ready model. Empty on logs recorded before the timeline
	// refactor.
	BucketElems []int `json:",omitempty"`
	Iters       [][]CommOp
}

// SetBuckets records the bucket geometry (once, at training start).
func (l *CommLog) SetBuckets(elems []int) {
	l.BucketElems = elems
}

// StartIter opens a new iteration record.
func (l *CommLog) StartIter() {
	l.Iters = append(l.Iters, nil)
}

// Record appends an operation to the current iteration.
func (l *CommLog) Record(op CommOp) {
	if len(l.Iters) == 0 {
		l.StartIter()
	}
	l.Iters[len(l.Iters)-1] = append(l.Iters[len(l.Iters)-1], op)
}

// CostIter prices one recorded iteration's communication on the given
// fabric, starting at time t (bandwidth traces see absolute time). alg
// prices the symmetric collectives; re-costing with the algorithm the run
// trained under reproduces its clock bit-exactly, and re-costing with a
// different algorithm reproduces what a training under that algorithm would
// have recorded — the logged operations (element counts, wire formats) are
// algorithm-independent. The PS and block-sparse transports are scheme
// topologies of their own and always price the same way.
func CostIter(ops []CommOp, alg collective.Algorithm, f *netsim.Fabric, hosts []netsim.NodeID, t float64) float64 {
	start := t
	for _, op := range ops {
		t += CostOp(op, alg, f, hosts, t)
	}
	return t - start
}

// CostOp prices one recorded operation starting at absolute time t — the
// per-op unit CostIter serializes and the timeline re-coster launches at
// reconstructed per-rank barrier times.
func CostOp(op CommOp, alg collective.Algorithm, f *netsim.Fabric, hosts []netsim.NodeID, t float64) float64 {
	switch op.Kind {
	case OpAllReduce:
		return alg.AllReduce(f, hosts, op.Elements, op.Wire, t)
	case OpAllGather:
		return alg.AllGather(f, hosts, op.Sizes, op.Wire, t)
	case OpPS:
		return collective.CostPSAggregate(f, hosts, op.Elements, op.Wire, t)
	case OpBlockSparse:
		return collective.CostBlockSparseAggregate(f, hosts, op.Blocks, op.Union, op.BlockSz, op.Scale, t)
	case OpBitmapBroadcast:
		wire := op.Wire
		if wire.BytesPerElement == 0 {
			wire = collective.BitmapWire
		}
		return alg.Broadcast(f, hosts, 0, wire.MessageBytes(op.Elements), t)
	}
	return 0
}

// WireBytesPerWorker returns the payload bytes one worker puts on the wire
// for the recorded iteration (the per-iteration communication volume the
// paper's compression ratios describe).
func WireBytesPerWorker(ops []CommOp, world int) float64 {
	var total float64
	for _, op := range ops {
		switch op.Kind {
		case OpAllReduce:
			total += op.Wire.MessageBytes(op.Elements) * 2 * float64(world-1) / float64(world)
		case OpAllGather:
			for _, s := range op.Sizes {
				total += op.Wire.MessageBytes(s) * float64(world-1) / float64(world)
			}
		case OpPS:
			total += op.Wire.MessageBytes(op.Elements)
		case OpBlockSparse:
			scale := op.Scale
			if scale <= 0 {
				scale = 1
			}
			for _, b := range op.Blocks {
				total += (float64(b*op.BlockSz)*4*scale + float64(b)*collective.BlockSparseHeaderBytes) / float64(world)
			}
		case OpBitmapBroadcast:
			wire := op.Wire
			if wire.BytesPerElement == 0 {
				wire = collective.BitmapWire
			}
			total += wire.MessageBytes(op.Elements) / float64(world)
		}
	}
	return total
}
