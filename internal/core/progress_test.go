package core

import (
	"reflect"
	"testing"
)

// TestProgressHeartbeatsMatchCurve checks that rank 0 emits exactly one
// heartbeat per curve point, in order, carrying the same iteration, clock,
// and accuracy the Result records.
func TestProgressHeartbeatsMatchCurve(t *testing.T) {
	cfg := tinyConfig("all-reduce")
	var beats []Progress
	cfg.OnProgress = func(p Progress) { beats = append(beats, p) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) != len(res.Curve.Points) {
		t.Fatalf("%d heartbeats, %d curve points", len(beats), len(res.Curve.Points))
	}
	for i, p := range res.Curve.Points {
		b := beats[i]
		if b.Iter != p.Iter || b.Epoch != p.Epoch || b.SimSeconds != p.SimTime ||
			b.Acc != p.Acc || b.Loss != p.Loss {
			t.Fatalf("heartbeat %d = %+v, curve point %+v", i, b, p)
		}
		if b.Format != "" {
			t.Fatalf("static scheme heartbeat names a format: %q", b.Format)
		}
	}
}

// TestProgressReportsAdaptiveFormat checks that adaptive runs stamp
// heartbeats with the controller's current wire format once it has
// decided anything.
func TestProgressReportsAdaptiveFormat(t *testing.T) {
	cfg := tinyConfig(SchemeAdaptive)
	var formats []string
	cfg.OnProgress = func(p Progress) { formats = append(formats, p.Format) }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(formats) == 0 {
		t.Fatal("no heartbeats")
	}
	named := false
	for _, f := range formats {
		if f != "" {
			named = true
		}
	}
	if !named {
		t.Fatal("no heartbeat carried the adaptive controller's format")
	}
}

// TestProgressCallbackIsObservationOnly pins the tentpole's invariant: a
// progress callback changes neither the fingerprint nor any recorded
// outcome of the run.
func TestProgressCallbackIsObservationOnly(t *testing.T) {
	plain := tinyConfig("pactrain-ternary")
	hooked := tinyConfig("pactrain-ternary")
	hooked.OnProgress = func(Progress) {}
	if plain.Fingerprint() != hooked.Fingerprint() {
		t.Fatal("OnProgress changed the fingerprint")
	}
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hooked)
	if err != nil {
		t.Fatal(err)
	}
	a.WallSeconds, b.WallSeconds = 0, 0 // host wall-clock, not simulated state
	if !reflect.DeepEqual(a, b) {
		t.Fatal("OnProgress changed the Result")
	}
}
