package core

import (
	"testing"

	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
)

func fpConfig() Config {
	cfg := DefaultConfig("MLP", "pactrain-ternary")
	cfg.World = 2
	cfg.Epochs = 1
	cfg.Data.Samples = 64
	cfg.TestSamples = 32
	return cfg
}

func TestFingerprintStable(t *testing.T) {
	t.Parallel()
	a, b := fpConfig(), fpConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configs fingerprint differently")
	}
	// Fingerprinting is a pure function: repeated calls agree and the
	// config is not mutated (validate runs on a copy).
	if a.Topology != nil {
		t.Fatal("Fingerprint materialized the caller's topology")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint unstable across calls")
	}
}

// TestFingerprintNormalizesDefaults checks that a zero field and its
// explicit default collapse to one key, so equivalent configs built through
// different paths deduplicate.
func TestFingerprintNormalizesDefaults(t *testing.T) {
	t.Parallel()
	implicit := fpConfig() // Topology nil → Fig. 4 at BottleneckBps
	explicit := fpConfig()
	explicit.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: explicit.BottleneckBps})
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("implicit and explicit default topology fingerprint differently")
	}

	// Pruning knobs are dead fields on non-PacTrain schemes and must not
	// split the key (Fig. 6's ratio-0 reference deduplicates against the
	// plain all-reduce baseline)...
	ar1, ar2 := fpConfig(), fpConfig()
	ar1.Scheme, ar2.Scheme = "all-reduce", "all-reduce"
	ar2.PruneRatio = 0
	ar2.StableWindow = 5
	if ar1.Fingerprint() != ar2.Fingerprint() {
		t.Fatal("pruning knobs split the key for a non-pruning scheme")
	}
	// ...but remain significant for PacTrain schemes.
	pt1, pt2 := fpConfig(), fpConfig()
	pt2.PruneRatio = 0.9
	if pt1.Fingerprint() == pt2.Fingerprint() {
		t.Fatal("prune ratio ignored for a PacTrain scheme")
	}

	// The ring default is canonicalized away: "", "ring", and the pre-
	// refactor digests (which had no collective line at all) share one key,
	// so warm caches survive the collective-algorithm layer.
	ring1, ring2 := fpConfig(), fpConfig()
	ring2.Collective = "ring"
	if ring1.Fingerprint() != ring2.Fingerprint() {
		t.Fatal("\"\" and \"ring\" collective fingerprint differently")
	}

	// The adaptive knobs are dead fields on every other scheme — and their
	// keys are not even emitted there, so pre-adaptive fingerprints (and
	// warm disk caches) are untouched.
	ad1, ad2 := fpConfig(), fpConfig()
	ad2.AdaptMargin = 0.2
	ad2.AdaptDwell = 5
	ad2.AdaptCandidates = []string{"index-list"}
	if ad1.Fingerprint() != ad2.Fingerprint() {
		t.Fatal("adaptive knobs split the key for a non-adaptive scheme")
	}
	// Heterogeneity knobs move the digest only when enabled: an all-unit
	// multiplier slice and zero jitter are the homogeneous cluster spelled
	// explicitly, and the keys are not even emitted there, so every
	// pre-timeline fingerprint (and warm disk cache) is untouched.
	rc1, rc2 := fpConfig(), fpConfig()
	rc2.RankCompute.Multipliers = []float64{1, 1}
	rc2.RankCompute.JitterSeed = 42 // dead without jitter
	if rc1.Fingerprint() != rc2.Fingerprint() {
		t.Fatal("explicit homogeneous RankCompute split the key")
	}
	trim1, trim2 := fpConfig(), fpConfig()
	trim1.RankCompute.Multipliers = []float64{2}
	trim2.RankCompute.Multipliers = []float64{2, 1}
	if trim1.Fingerprint() != trim2.Fingerprint() {
		t.Fatal("trailing unit multiplier split the key")
	}
	if trim1.Fingerprint() == rc1.Fingerprint() {
		t.Fatal("an enabled straggler multiplier must move the digest")
	}

	// For the adaptive scheme, a nil candidate list and the explicit full
	// set normalize to one key...
	full1, full2 := fpConfig(), fpConfig()
	full1.Scheme, full2.Scheme = SchemeAdaptive, SchemeAdaptive
	full2.AdaptCandidates = []string{"dense-fp32", "mask-compact", "mask-compact-ternary", "index-list"}
	if full1.Fingerprint() != full2.Fingerprint() {
		t.Fatal("nil and explicit-full candidate sets fingerprint differently")
	}
	// ...and candidate order canonicalizes.
	ord1, ord2 := fpConfig(), fpConfig()
	ord1.Scheme, ord2.Scheme = SchemeAdaptive, SchemeAdaptive
	ord1.AdaptCandidates = []string{"index-list", "dense-fp32"}
	ord2.AdaptCandidates = []string{"dense-fp32", "index-list"}
	if ord1.Fingerprint() != ord2.Fingerprint() {
		t.Fatal("candidate order split the key")
	}
}

// TestFingerprintDistinguishesResultChangingFields flips every config field
// that changes training output and asserts the key moves.
func TestFingerprintDistinguishesResultChangingFields(t *testing.T) {
	t.Parallel()
	baseCfg := fpConfig()
	base := baseCfg.Fingerprint()
	mutations := map[string]func(*Config){
		"model":        func(c *Config) { c.ModelName = "VGG19" },
		"width":        func(c *Config) { c.Lite.Width = 12 },
		"data_seed":    func(c *Config) { c.Data.Seed++ },
		"samples":      func(c *Config) { c.Data.Samples += 64 },
		"test_samples": func(c *Config) { c.TestSamples += 32 },
		"world":        func(c *Config) { c.World = 4 },
		"scheme":       func(c *Config) { c.Scheme = "pactrain" },
		"prune_ratio":  func(c *Config) { c.PruneRatio = 0.7 },
		"pretrain":     func(c *Config) { c.PretrainEpochs++ },
		"window":       func(c *Config) { c.StableWindow++ },
		"epochs":       func(c *Config) { c.Epochs++ },
		"batch":        func(c *Config) { c.BatchSize *= 2 },
		"lr":           func(c *Config) { c.LR *= 2 },
		"momentum":     func(c *Config) { c.Momentum = 0.8 },
		"weight_decay": func(c *Config) { c.WeightDecay *= 2 },
		"target":       func(c *Config) { c.TargetAcc = 0.5 },
		"eval_every":   func(c *Config) { c.EvalEvery = 3 },
		"buckets":      func(c *Config) { c.BucketBytes = 1 << 12 },
		"profile":      func(c *Config) { c.Profile.Params *= 2 },
		"compute":      func(c *Config) { c.Compute.DeviceFLOPS *= 2 },
		"seed":         func(c *Config) { c.Seed++ },
		"record":       func(c *Config) { c.RecordComm = false },
		"bottleneck":   func(c *Config) { c.BottleneckBps = 100 * netsim.Mbps },
		"trace": func(c *Config) {
			c.Traces = []*netsim.BandwidthTrace{{LinkIndex: 0, Segments: []netsim.TraceSegment{{UntilSec: 1, Scale: 0.5}}}}
		},
		"topology":   func(c *Config) { c.Topology = netsim.FlatTopology(8, netsim.Gbps, 1e-4) },
		"collective": func(c *Config) { c.Collective = "hierarchical" },
		"overlap":    func(c *Config) { c.Overlap = ddp.OverlapBackward },
		"rank_mult":  func(c *Config) { c.RankCompute.Multipliers = netsim.OneSlowRank(c.World, 2) },
		"rank_jitter": func(c *Config) {
			c.RankCompute.JitterFrac = 0.1
		},
		"rank_jitter_seed": func(c *Config) {
			c.RankCompute.JitterFrac = 0.1
			c.RankCompute.JitterSeed = 5
		},
	}
	// The adaptive knobs change training output for the adaptive scheme.
	adaptiveMutations := map[string]func(*Config){
		"adapt_margin":     func(c *Config) { c.AdaptMargin = 0.3 },
		"adapt_dwell":      func(c *Config) { c.AdaptDwell = 7 },
		"adapt_candidates": func(c *Config) { c.AdaptCandidates = []string{"mask-compact-ternary"} },
	}
	adBase := fpConfig()
	adBase.Scheme = SchemeAdaptive
	adBaseFP := adBase.Fingerprint()
	for name, mutate := range adaptiveMutations {
		cfg := fpConfig()
		cfg.Scheme = SchemeAdaptive
		mutate(&cfg)
		if cfg.Fingerprint() == adBaseFP {
			t.Errorf("mutation %q did not change the adaptive fingerprint", name)
		}
	}
	for name, mutate := range mutations {
		cfg := fpConfig()
		mutate(&cfg)
		if cfg.Fingerprint() == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}
