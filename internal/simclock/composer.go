package simclock

import "math"

// IterComposer batches one iteration's bucket-barrier queries across ranks —
// the incremental form of calling Timeline.LaunchTime once per recorded op.
// The naive replay is O(world) per op; at cluster scale (thousands of ranks,
// tens of ops per iteration, hundreds of iterations) that scan dominates
// re-costing. The composer exploits the two structures real iterations have:
//
//   - identical schedules (no heterogeneity, no jitter): the barrier over
//     identical ready times *is* rank 0's ready time, so every O(world) scan
//     collapses to O(1);
//   - serialized schedules (nil prefix): every bucket is ready at
//     ComputeDone, so one barrier serves every op of the iteration;
//   - otherwise each bucket's barrier is computed once and memoized, so an
//     iteration costs O(world × buckets) instead of O(world × ops).
//
// All three paths evaluate the same float expressions as the naive scan in
// the same operand order (a max over identical values is that value), so
// composition stays bit-exact — the repo's re-costing contract.
//
// The composer reads the schedule slice it was built over; callers rewrite
// the slice in place each iteration and call Reset.
type IterComposer struct {
	scheds []IterSchedule

	// homog marks iterations whose rank schedules are all identical
	// (including sharing the prefix slice), detected with one O(world) pass
	// per Reset.
	homog bool
	// serialized marks nil-prefix schedules, where all buckets share one
	// barrier (allReady, computed on first use).
	serialized bool
	allReady   float64
	haveAll    bool

	barriers []float64
	have     []bool
}

// NewIterComposer builds a composer over scheds (retained, not copied).
func NewIterComposer(scheds []IterSchedule) *IterComposer {
	c := &IterComposer{scheds: scheds}
	c.Reset()
	return c
}

// samePrefix reports whether two schedules share the same prefix slice
// (both nil, or the same backing array and length).
func samePrefix(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// Reset re-reads the (rewritten) schedules for a new iteration.
func (c *IterComposer) Reset() {
	c.haveAll = false
	for i := range c.have {
		c.have[i] = false
	}
	s0 := c.scheds[0]
	c.serialized = s0.prefix == nil
	c.homog = true
	for _, s := range c.scheds[1:] {
		if s.Start != s0.Start || s.Fwd != s0.Fwd || s.Bwd != s0.Bwd || !samePrefix(s.prefix, s0.prefix) {
			c.homog = false
			break
		}
	}
}

// Barrier returns the launch barrier for bucket — the maximum of the ranks'
// ReadyAt(bucket), exactly Timeline.LaunchTime over the schedules.
func (c *IterComposer) Barrier(bucket int) float64 {
	if c.homog {
		return c.scheds[0].ReadyAt(bucket)
	}
	if c.serialized {
		if !c.haveAll {
			c.allReady = c.scan(0)
			c.haveAll = true
		}
		return c.allReady
	}
	if bucket >= len(c.have) {
		grown := make([]bool, bucket+1)
		copy(grown, c.have)
		c.have = grown
		gb := make([]float64, bucket+1)
		copy(gb, c.barriers)
		c.barriers = gb
	}
	if !c.have[bucket] {
		c.barriers[bucket] = c.scan(bucket)
		c.have[bucket] = true
	}
	return c.barriers[bucket]
}

// scan is the uncached O(world) barrier: max ready time across ranks, with
// the same -inf seed and strict-greater comparison as Timeline.LaunchTime.
func (c *IterComposer) scan(bucket int) float64 {
	m := math.Inf(-1)
	for r := range c.scheds {
		if v := c.scheds[r].ReadyAt(bucket); v > m {
			m = v
		}
	}
	return m
}

// FinishInto sets every rank's clock to its schedule's Finish(commEnd) —
// the per-rank end-of-iteration update the replay loop would otherwise
// write by hand.
func (c *IterComposer) FinishInto(tl *Timeline, commEnd float64) {
	for r := range c.scheds {
		tl.Set(r, c.scheds[r].Finish(commEnd))
	}
}
