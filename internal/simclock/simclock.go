// Package simclock is the per-rank event-timeline core of the simulated
// cost plane. The original trainer advanced one scalar clock shared by all
// ranks, which cannot express the two scenarios where gradient compression
// matters most in practice: communication hidden under backward compute
// (DGC's motivating overlap argument) and heterogeneous or straggling
// workers. This package replaces the scalar with events on per-rank
// timelines:
//
//   - a Timeline holds one simulated clock per rank;
//   - an IterSchedule describes one rank's compute for one iteration —
//     forward, backward, and the per-bucket gradient ready times under
//     DDP's reverse-registration model (bucket i becomes ready once forward
//     plus its prefix share of backward has run);
//   - a collective's launch time is a barrier: the maximum of the
//     participants' ready times (LaunchTime), because a straggler holds the
//     whole ring;
//   - ComposeIteration serializes a rank's bucket collectives against the
//     schedule, reproducing the single in-order communication stream real
//     DDP launches NCCL work on.
//
// The trainer (internal/core) realizes the launch barrier through the
// cluster rendezvous while workers run concurrently; the re-costing path
// (internal/harness) replays the same arithmetic sequentially over a
// recorded log. Both paths evaluate the expressions below with identical
// operand order, which is what makes re-costing bit-exact (DESIGN.md §9).
package simclock

import "math"

// Timeline holds one simulated clock per rank. The zero clock is time zero;
// clocks only ever move forward.
type Timeline struct {
	clocks []float64

	// maxv caches the running maximum so Max is O(1) on the (overwhelmingly
	// common) forward-only update pattern; maxDirty forces an O(world)
	// rescan after an update that may have lowered the previous maximum.
	maxv     float64
	maxDirty bool
}

// NewTimeline builds a timeline for world ranks, all at time zero.
func NewTimeline(world int) *Timeline {
	return &Timeline{clocks: make([]float64, world), maxDirty: true}
}

// World returns the number of ranks.
func (t *Timeline) World() int { return len(t.clocks) }

// Clock returns rank's current simulated time.
func (t *Timeline) Clock(rank int) float64 { return t.clocks[rank] }

// Set moves rank's clock to v.
func (t *Timeline) Set(rank int, v float64) {
	if !t.maxDirty {
		if v >= t.maxv {
			t.maxv = v
		} else if t.clocks[rank] == t.maxv {
			// The rank being lowered may have been the sole maximum holder.
			t.maxDirty = true
		}
	}
	t.clocks[rank] = v
}

// Advance moves rank's clock forward by d and returns the new time.
func (t *Timeline) Advance(rank int, d float64) float64 {
	t.Set(rank, t.clocks[rank]+d)
	return t.clocks[rank]
}

// Max returns the latest clock — the time at which a full barrier would
// release.
func (t *Timeline) Max() float64 {
	if t.maxDirty {
		m := math.Inf(-1)
		for _, c := range t.clocks {
			if c > m {
				m = c
			}
		}
		t.maxv = m
		t.maxDirty = false
	}
	return t.maxv
}

// LaunchTime returns the synchronization barrier for a collective whose
// per-rank ready times are given by ready: the launch is the maximum ready
// time across ranks. This is the event-timeline form of the cluster
// rendezvous — no rank's bytes move before the slowest rank's gradient
// exists.
func (t *Timeline) LaunchTime(ready func(rank int) float64) float64 {
	launch := math.Inf(-1)
	for r := range t.clocks {
		if v := ready(r); v > launch {
			launch = v
		}
	}
	return launch
}

// PrefixShares converts DDP bucket element counts (in bucket order, which is
// reverse registration order) into cumulative backward shares: shares[i] is
// the fraction of backward compute that has run once bucket i's gradients
// exist. Backward produces gradients in reverse registration order — bucket
// 0 first — and each bucket's slice of backward is proportional to its
// element count, the same proxy DDP's bucket sizing uses. The last share is
// exactly 1.
func PrefixShares(sizes []int) []float64 {
	total := 0
	for _, n := range sizes {
		total += n
	}
	shares := make([]float64, len(sizes))
	if total == 0 {
		for i := range shares {
			shares[i] = 1
		}
		return shares
	}
	cum := 0
	for i, n := range sizes {
		cum += n
		shares[i] = float64(cum) / float64(total)
	}
	shares[len(shares)-1] = 1
	return shares
}

// IterSchedule describes one rank's compute for one iteration: when it
// started, how long forward and backward take on this rank (heterogeneity
// and jitter already applied), and — under per-bucket overlap — the prefix
// shares that time each bucket's gradient becoming ready.
type IterSchedule struct {
	// Start is the rank's clock when the iteration began.
	Start float64
	// Fwd and Bwd are this rank's forward and backward durations.
	Fwd, Bwd float64

	// prefix holds the per-bucket cumulative backward shares; nil models the
	// serialized (no-overlap) clock where every bucket waits for the full
	// backward pass.
	prefix []float64
}

// NewIterSchedule builds a schedule. prefix is the PrefixShares of the
// bucket sizes when communication overlaps backward, or nil for the
// serialized model.
func NewIterSchedule(start, fwd, bwd float64, prefix []float64) IterSchedule {
	return IterSchedule{Start: start, Fwd: fwd, Bwd: bwd, prefix: prefix}
}

// ComputeDone returns when this rank's compute for the iteration finishes.
// The operand order (start + (fwd + bwd)) is load-bearing: it matches the
// historical scalar clock bit-for-bit, so serialized homogeneous runs keep
// their exact simulated times.
func (s IterSchedule) ComputeDone() float64 {
	return s.Start + (s.Fwd + s.Bwd)
}

// ReadyAt returns when bucket i's gradient is ready on this rank — the
// earliest time the rank could contribute it to a collective. Without
// overlap every bucket waits for the full backward pass; with overlap,
// bucket i is ready after forward plus its prefix share of backward
// (reverse-registration order, bucket 0 first).
func (s IterSchedule) ReadyAt(i int) float64 {
	if s.prefix == nil {
		return s.ComputeDone()
	}
	return s.Start + s.Fwd + s.Bwd*s.prefix[i]
}

// WaitInterval returns the interval this rank spends blocked before a
// bucket's collective launches: from the moment the rank could contribute —
// its gradient ready, the communication stream free (streamFree is the
// previous collective's end on the shared in-order stream) — until the
// launch barrier releases. A non-positive duration means the rank did not
// wait (it was itself the barrier holder, or arrived exactly on time).
// Observation-only: the trace exporter draws these spans; no cost path
// consumes them.
func (s IterSchedule) WaitInterval(bucket int, streamFree, launch float64) (from, dur float64) {
	from = s.ReadyAt(bucket)
	if streamFree > from {
		from = streamFree
	}
	return from, launch - from
}

// Finish returns the rank's end-of-iteration clock: the later of its
// compute floor and the last collective's completion. This is the floor
// logic the trainer used to inline — communication may hide under backward,
// but the optimizer step cannot run before backward itself finishes.
func (s IterSchedule) Finish(commEnd float64) float64 {
	if done := s.ComputeDone(); done > commEnd {
		return done
	}
	return commEnd
}

// ComposeIteration serializes n bucket collectives against a single rank's
// schedule: bucket i launches at max(previous bucket's end, ReadyAt(i)),
// pays cost(i, launch), and the iteration ends at Finish(last end). It is
// the one-rank closed form of the timeline model — the trainer realizes the
// same composition across concurrent workers via the cluster rendezvous.
func ComposeIteration(s IterSchedule, n int, cost func(bucket int, launch float64) float64) float64 {
	end := s.Start
	for i := 0; i < n; i++ {
		launch := s.ReadyAt(i)
		if end > launch {
			launch = end
		}
		end = launch + cost(i, launch)
	}
	return s.Finish(end)
}
