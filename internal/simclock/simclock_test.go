package simclock

import (
	"math"
	"testing"
)

func TestPrefixShares(t *testing.T) {
	t.Parallel()
	shares := PrefixShares([]int{10, 30, 60})
	want := []float64{0.1, 0.4, 1}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Fatalf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
	if last := shares[len(shares)-1]; last != 1 {
		t.Fatalf("final prefix share %v, want exactly 1", last)
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1] {
			t.Fatalf("prefix shares not monotone: %v", shares)
		}
	}
	// Degenerate empty buckets still produce a valid (all-ready-at-end)
	// schedule.
	for _, s := range PrefixShares([]int{0, 0}) {
		if s != 1 {
			t.Fatalf("zero-element shares = %v, want all 1", s)
		}
	}
}

func TestIterScheduleReadyAndFinish(t *testing.T) {
	t.Parallel()
	prefix := PrefixShares([]int{1, 1, 2})
	s := NewIterSchedule(10, 2, 4, prefix)
	if got := s.ComputeDone(); got != 16 {
		t.Fatalf("ComputeDone %v, want 16", got)
	}
	// Bucket 0 is ready after forward + 1/4 of backward.
	if got := s.ReadyAt(0); got != 13 {
		t.Fatalf("ReadyAt(0) = %v, want 13", got)
	}
	if got := s.ReadyAt(2); got != 16 {
		t.Fatalf("ReadyAt(2) = %v, want 16 (last bucket waits for full backward)", got)
	}
	// The serialized model: every bucket waits for all of backward.
	serial := NewIterSchedule(10, 2, 4, nil)
	for i := 0; i < 3; i++ {
		if serial.ReadyAt(i) != 16 {
			t.Fatalf("serialized ReadyAt(%d) = %v, want 16", i, serial.ReadyAt(i))
		}
	}
	// Finish floors at the compute end: hidden communication cannot finish
	// an iteration before backward does.
	if got := s.Finish(14); got != 16 {
		t.Fatalf("Finish(14) = %v, want compute floor 16", got)
	}
	if got := s.Finish(20); got != 20 {
		t.Fatalf("Finish(20) = %v, want 20", got)
	}
}

func TestComposeIterationSerializesAgainstReadyTimes(t *testing.T) {
	t.Parallel()
	prefix := PrefixShares([]int{1, 1, 2})
	s := NewIterSchedule(0, 2, 4, prefix)
	// Bucket costs chosen so bucket 1 must wait on bucket 0's collective
	// (single in-order stream) while bucket 2 waits on its own gradient.
	costs := []float64{2, 0.5, 1}
	end := ComposeIteration(s, 3, func(i int, _ float64) float64 { return costs[i] })
	// ready = [3, 4, 6]; b0: launch 3 end 5; b1: launch max(5,4)=5 end 5.5;
	// b2: launch max(5.5,6)=6 end 7; floor 6 → 7.
	if end != 7 {
		t.Fatalf("ComposeIteration = %v, want 7", end)
	}
	// Cheap communication hides under backward except for the last bucket,
	// which becomes ready only when backward completes — its cost always
	// trails the compute floor.
	cheap := ComposeIteration(s, 3, func(int, float64) float64 { return 0.01 })
	if want := s.ComputeDone() + 0.01; cheap != want {
		t.Fatalf("hidden comm end %v, want floor + last bucket = %v", cheap, want)
	}
}

// TestComposeIterationSingleBucketClosedForm pins the equivalence ddp's
// ideal-overlap helper relies on: one bucket ready the moment forward
// finishes reproduces the fwd + max(bwd, comm) closed form exactly.
func TestComposeIterationSingleBucketClosedForm(t *testing.T) {
	t.Parallel()
	for _, comm := range []float64{0.5, 3, 7} {
		s := NewIterSchedule(0, 2, 4, []float64{0})
		got := ComposeIteration(s, 1, func(int, float64) float64 { return comm })
		want := 2 + math.Max(4, comm)
		if got != want {
			t.Fatalf("comm %v: ComposeIteration = %v, want %v", comm, got, want)
		}
	}
}

func TestTimelineLaunchBarrier(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(3)
	tl.Set(0, 1)
	tl.Advance(1, 5)
	tl.Set(2, 3)
	if got := tl.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	// The straggler (rank 1) holds the launch for everyone.
	launch := tl.LaunchTime(func(r int) float64 { return tl.Clock(r) + 1 })
	if launch != 6 {
		t.Fatalf("LaunchTime = %v, want 6", launch)
	}
	if tl.World() != 3 {
		t.Fatalf("World = %d, want 3", tl.World())
	}
}

func TestWaitInterval(t *testing.T) {
	t.Parallel()
	// Overlap schedule: forward 2s, backward 4s, bucket 0 ready halfway
	// through backward (prefix 0.5) at t=4, bucket 1 at t=6.
	s := NewIterSchedule(0, 2, 4, []float64{0.5, 1})

	// Idle stream, launch held by a slower rank at t=7: wait [4, 7).
	from, dur := s.WaitInterval(0, 0, 7)
	if from != 4 || dur != 3 {
		t.Fatalf("WaitInterval = (%v, %v), want (4, 3)", from, dur)
	}
	// Busy stream: the wait cannot start before the stream frees at t=5.
	from, dur = s.WaitInterval(0, 5, 7)
	if from != 5 || dur != 2 {
		t.Fatalf("WaitInterval(busy) = (%v, %v), want (5, 2)", from, dur)
	}
	// The barrier holder itself: launch equals its own ready time, no wait.
	from, dur = s.WaitInterval(1, 0, 6)
	if from != 6 || dur != 0 {
		t.Fatalf("WaitInterval(holder) = (%v, %v), want (6, 0)", from, dur)
	}
	// A launch in the past (stream freed after the barrier) is negative.
	if _, dur = s.WaitInterval(0, 8, 7); dur >= 0 {
		t.Fatalf("WaitInterval(past launch) dur = %v, want negative", dur)
	}
}
