package simclock

import (
	"fmt"
	"math"
	"testing"

	"pactrain/internal/tensor"
)

// naiveBarrier is the pre-composer arithmetic: Timeline.LaunchTime over the
// ranks' ReadyAt.
func naiveBarrier(tl *Timeline, scheds []IterSchedule, bucket int) float64 {
	return tl.LaunchTime(func(r int) float64 { return scheds[r].ReadyAt(bucket) })
}

func randomScheds(world int, prefix []float64, seed uint64, homogeneous bool) []IterSchedule {
	rng := tensor.NewRNG(seed)
	scheds := make([]IterSchedule, world)
	base := IterSchedule{Start: rng.Float64(), Fwd: rng.Float64(), Bwd: rng.Float64(), prefix: prefix}
	for r := range scheds {
		if homogeneous {
			scheds[r] = base
			continue
		}
		scheds[r] = NewIterSchedule(rng.Float64()*10, rng.Float64(), rng.Float64()*2, prefix)
	}
	return scheds
}

func TestComposerBarrierMatchesNaiveScan(t *testing.T) {
	t.Parallel()
	prefix := PrefixShares([]int{4, 3, 2, 1})
	for _, tc := range []struct {
		name        string
		prefix      []float64
		homogeneous bool
	}{
		{"heterogeneous-overlap", prefix, false},
		{"heterogeneous-serialized", nil, false},
		{"homogeneous-overlap", prefix, true},
		{"homogeneous-serialized", nil, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, world := range []int{1, 2, 5, 64} {
				tl := NewTimeline(world)
				scheds := randomScheds(world, tc.prefix, uint64(world)+7, tc.homogeneous)
				comp := NewIterComposer(scheds)
				buckets := 4
				if tc.prefix == nil {
					buckets = 1 // ReadyAt ignores the bucket when serialized
				}
				// Query out of order and repeatedly: memoization must not
				// change any value.
				for _, b := range []int{buckets - 1, 0, buckets - 1, buckets / 2, 0} {
					got := comp.Barrier(b)
					want := naiveBarrier(tl, scheds, b)
					if got != want {
						t.Fatalf("world %d bucket %d: composer %v, naive %v", world, b, got, want)
					}
				}
			}
		})
	}
}

func TestComposerResetRereadsSchedules(t *testing.T) {
	t.Parallel()
	prefix := PrefixShares([]int{2, 1})
	scheds := randomScheds(8, prefix, 3, false)
	comp := NewIterComposer(scheds)
	before := comp.Barrier(1)
	// Rewrite schedules in place — the composer must serve stale barriers
	// until Reset, then the fresh ones (the harness calls Reset per iter).
	for r := range scheds {
		scheds[r] = NewIterSchedule(scheds[r].Start+100, scheds[r].Fwd, scheds[r].Bwd, prefix)
	}
	if got := comp.Barrier(1); got != before {
		t.Fatalf("cached barrier changed without Reset: %v vs %v", got, before)
	}
	comp.Reset()
	tl := NewTimeline(8)
	if got, want := comp.Barrier(1), naiveBarrier(tl, scheds, 1); got != want {
		t.Fatalf("post-Reset barrier %v, want %v", got, want)
	}
}

func TestComposerFinishInto(t *testing.T) {
	t.Parallel()
	scheds := randomScheds(6, nil, 11, false)
	comp := NewIterComposer(scheds)
	tl := NewTimeline(6)
	commEnd := 42.0
	comp.FinishInto(tl, commEnd)
	for r := range scheds {
		if got, want := tl.Clock(r), scheds[r].Finish(commEnd); got != want {
			t.Fatalf("rank %d clock %v, want %v", r, got, want)
		}
	}
}

func TestTimelineMaxIncremental(t *testing.T) {
	t.Parallel()
	rescan := func(tl *Timeline) float64 {
		m := math.Inf(-1)
		for r := 0; r < tl.World(); r++ {
			if c := tl.Clock(r); c > m {
				m = c
			}
		}
		return m
	}
	tl := NewTimeline(5)
	if got := tl.Max(); got != 0 {
		t.Fatalf("fresh timeline max %v", got)
	}
	rng := tensor.NewRNG(13)
	for step := 0; step < 200; step++ {
		r := int(rng.Uint64() % 5)
		switch step % 3 {
		case 0:
			tl.Advance(r, rng.Float64())
		case 1:
			tl.Set(r, rng.Float64()*20)
		case 2:
			// Lower the current maximum holder — the dirty path.
			maxRank := 0
			for i := 1; i < 5; i++ {
				if tl.Clock(i) > tl.Clock(maxRank) {
					maxRank = i
				}
			}
			tl.Set(maxRank, tl.Clock(maxRank)/2)
		}
		if got, want := tl.Max(), rescan(tl); got != want {
			t.Fatalf("step %d: cached max %v, rescan %v", step, got, want)
		}
	}
}

func BenchmarkComposeIteration(b *testing.B) {
	for _, world := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("world=%d", world), func(b *testing.B) {
			buckets := []int{4, 3, 2, 1, 4, 3, 2, 1, 4, 3, 2}
			prefix := PrefixShares(buckets)
			mult := make([]float64, world)
			for r := range mult {
				mult[r] = 1 + float64(r%7)/10
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tl := NewTimeline(world)
				scheds := make([]IterSchedule, world)
				comp := NewIterComposer(scheds)
				for k := 0; k < 10; k++ {
					for r := range scheds {
						scheds[r] = NewIterSchedule(tl.Clock(r), 0.006*mult[r], 0.012*mult[r], prefix)
					}
					comp.Reset()
					commEnd := math.Inf(-1)
					for bkt := range buckets {
						launch := comp.Barrier(bkt)
						if commEnd > launch {
							launch = commEnd
						}
						commEnd = launch + 0.003
					}
					comp.FinishInto(tl, commEnd)
				}
				benchSink = tl.Max()
			}
		})
	}
}

var benchSink float64
