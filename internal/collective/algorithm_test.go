package collective

import (
	"math"
	"testing"

	"pactrain/internal/netsim"
)

func TestAlgorithmRegistry(t *testing.T) {
	names := AlgorithmNames()
	want := []string{"ring", "tree", "hierarchical"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("registry order %v, want %v", names, want)
		}
	}
	for _, name := range append([]string{""}, want...) {
		a, err := AlgorithmByName(name)
		if err != nil {
			t.Fatalf("AlgorithmByName(%q): %v", name, err)
		}
		if name != "" && a.Name() != name {
			t.Fatalf("AlgorithmByName(%q).Name() = %q", name, a.Name())
		}
	}
	if a, _ := AlgorithmByName(""); a.Name() != DefaultAlgorithm {
		t.Fatalf("empty selector resolved to %q, want %q", a.Name(), DefaultAlgorithm)
	}
	if canon, err := CanonicalAlgorithm(""); err != nil || canon != "ring" {
		t.Fatalf("CanonicalAlgorithm(\"\") = %q, %v", canon, err)
	}
	if _, err := CanonicalAlgorithm("butterfly"); err == nil {
		t.Fatal("unknown algorithm name did not error")
	}
}

// TestRingAlgorithmBitExact pins the refactoring contract: dispatching
// through the registry's ring algorithm must reproduce the original cost
// functions bit-for-bit, because every pre-existing fingerprint, cached
// result, and report was priced through them.
func TestRingAlgorithmBitExact(t *testing.T) {
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 500 * netsim.Mbps})
	hosts := topo.Hosts()
	ring := MustAlgorithm("ring")
	for _, n := range []int{1, 7, 1 << 10, 1 << 18} {
		a := ring.AllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 1.5)
		b := CostRingAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 1.5)
		if a != b {
			t.Fatalf("ring AllReduce(%d) = %v, legacy %v", n, a, b)
		}
	}
	sizes := []int{3, 0, 99, 1 << 12, 5, 1, 2, 64}
	if a, b := ring.AllGather(netsim.NewFabric(topo), hosts, sizes, WireSparse, 0),
		CostRingAllGather(netsim.NewFabric(topo), hosts, sizes, WireSparse, 0); a != b {
		t.Fatalf("ring AllGather = %v, legacy %v", a, b)
	}
	if a, b := ring.Broadcast(netsim.NewFabric(topo), hosts, 0, 1<<20, 2),
		CostBinomialBroadcast(netsim.NewFabric(topo), hosts, 0, 1<<20, 2); a != b {
		t.Fatalf("ring Broadcast = %v, legacy %v", a, b)
	}
}

// TestTreeMatchesRingOnUniformFabric is the issue's sanity invariant: on a
// uniform single-switch fabric with negligible latency, recursive
// halving/doubling moves the same 2n(w-1)/w bytes per host as the ring at
// the same per-step bandwidth, so the two algorithms agree within
// tolerance.
func TestTreeMatchesRingOnUniformFabric(t *testing.T) {
	topo := netsim.FlatTopology(8, netsim.Gbps, 0)
	hosts := topo.Hosts()
	n := 1 << 18 // divisible by 8: all chunk splits are exact
	ring := CostRingAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	tree := CostTreeAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	if ring <= 0 || tree <= 0 {
		t.Fatalf("degenerate costs: ring %v, tree %v", ring, tree)
	}
	if rel := math.Abs(tree-ring) / ring; rel > 1e-9 {
		t.Fatalf("tree %v vs ring %v on uniform fabric (rel diff %v)", tree, ring, rel)
	}
}

// TestHierarchicalBeatsRingOnTwoRackBottleneck is the tentpole's headline
// invariant: with a 10× slower inter-switch link, two-level aggregation —
// which crosses the bottleneck once per rack stream instead of on nearly
// every ring step — must be strictly faster than the flat ring.
func TestHierarchicalBeatsRingOnTwoRackBottleneck(t *testing.T) {
	topo := netsim.TwoRackTopology(netsim.TwoRackOptions{
		Hosts: 8, BottleneckBps: netsim.Gbps, EdgeBps: 10 * netsim.Gbps,
	})
	hosts := topo.Hosts()
	n := 1 << 18
	ring := CostRingAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	hier := CostHierarchicalAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	if hier >= ring {
		t.Fatalf("hierarchical %v not faster than flat ring %v on bottlenecked two-rack fabric", hier, ring)
	}
}

// TestAlgorithmCostMonotone sweeps every registered algorithm on a flat, a
// Fig. 4, and a two-rack fabric: each primitive's cost must be
// non-decreasing in the element count.
func TestAlgorithmCostMonotone(t *testing.T) {
	topos := map[string]*netsim.Topology{
		"flat":    netsim.FlatTopology(8, netsim.Gbps, 1e-5),
		"fig4":    netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 500 * netsim.Mbps}),
		"tworack": netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: 8, BottleneckBps: 100 * netsim.Mbps}),
	}
	ladder := []int{0, 1, 2, 17, 256, 4096, 65536, 1 << 20}
	for _, name := range AlgorithmNames() {
		alg := MustAlgorithm(name)
		for tn, topo := range topos {
			hosts := topo.Hosts()
			prevAR, prevAG, prevBC := -1.0, -1.0, -1.0
			for _, n := range ladder {
				f := netsim.NewFabric(topo)
				ar := alg.AllReduce(f, hosts, n, WireFP32, 0)
				sizes := make([]int, len(hosts))
				for i := range sizes {
					sizes[i] = n
				}
				ag := alg.AllGather(netsim.NewFabric(topo), hosts, sizes, WireSparse, 0)
				bc := alg.Broadcast(netsim.NewFabric(topo), hosts, 0, float64(n)*4, 0)
				if ar < prevAR || ag < prevAG || bc < prevBC {
					t.Fatalf("%s on %s not monotone at n=%d: allreduce %v<%v, allgather %v<%v, broadcast %v<%v",
						name, tn, n, ar, prevAR, ag, prevAG, bc, prevBC)
				}
				prevAR, prevAG, prevBC = ar, ag, bc
			}
		}
	}
}

// TestRacksDerivation checks the rack-grouping rule on the three preset
// topologies: groups follow the switch structure, rank order is preserved,
// and a flat switch collapses to one rack.
func TestRacksDerivation(t *testing.T) {
	fig4 := netsim.Fig4Topology(netsim.Fig4Options{})
	racks := Racks(fig4, fig4.Hosts())
	wantFig4 := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}}
	if len(racks) != len(wantFig4) {
		t.Fatalf("fig4 racks %v, want %v", racks, wantFig4)
	}
	for i := range wantFig4 {
		if len(racks[i]) != len(wantFig4[i]) {
			t.Fatalf("fig4 racks %v, want %v", racks, wantFig4)
		}
		for j := range wantFig4[i] {
			if racks[i][j] != wantFig4[i][j] {
				t.Fatalf("fig4 racks %v, want %v", racks, wantFig4)
			}
		}
	}
	flat := netsim.FlatTopology(6, netsim.Gbps, 0)
	if r := Racks(flat, flat.Hosts()); len(r) != 1 || len(r[0]) != 6 {
		t.Fatalf("flat racks %v, want one rack of 6", r)
	}
	two := netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: 7})
	if r := Racks(two, two.Hosts()); len(r) != 2 || len(r[0]) != 4 || len(r[1]) != 3 {
		t.Fatalf("two-rack racks %v, want 4+3", r)
	}
}

// TestClusterCorrectUnderEveryAlgorithm runs the live data plane under each
// algorithm — including a non-power-of-two world to exercise the tree's
// fold/unfold — and checks that the sums, gathers, and broadcasts are
// unchanged: the algorithm moves the clock, never the bytes' values.
func TestClusterCorrectUnderEveryAlgorithm(t *testing.T) {
	for _, name := range AlgorithmNames() {
		for _, world := range []int{4, 6} {
			topo := netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: world, BottleneckBps: netsim.Gbps})
			c := NewClusterWith(world, netsim.NewFabric(topo), MustAlgorithm(name))
			ends := make([]float64, world)
			runWorkers(world, func(rank int) {
				vec := []float32{float32(rank + 1), 1}
				ends[rank] = c.AllReduceSum(rank, vec, WireFP32, 0)
				wantSum := float32(world*(world+1)) / 2
				if vec[0] != wantSum || vec[1] != float32(world) {
					t.Errorf("%s world %d: sum = %v, want [%v %v]", name, world, vec, wantSum, world)
					return
				}
				p := SparsePayload{Values: []float32{float32(rank)}, Indices: []int32{int32(rank)}}
				all, _ := c.AllGatherSparse(rank, p, WireSparse, ends[rank])
				for r, got := range all {
					if len(got.Values) != 1 || got.Values[0] != float32(r) {
						t.Errorf("%s world %d: gather payload %d corrupted: %+v", name, world, r, got)
						return
					}
				}
				b := make([]float32, 3)
				if rank == 1 {
					copy(b, []float32{5, 6, 7})
				}
				c.Broadcast(rank, 1, b, WireFP32, 0)
				if b[0] != 5 || b[2] != 7 {
					t.Errorf("%s world %d: broadcast corrupted: %v", name, world, b)
				}
			})
			for _, e := range ends {
				if e != ends[0] {
					t.Fatalf("%s: ranks observed different completion times %v", name, ends)
				}
			}
			if world > 1 && ends[0] <= 0 {
				t.Fatalf("%s: all-reduce completion time %v, want > 0", name, ends[0])
			}
			if st := c.Stats(); st.AllReduceOps != 1 || st.AllGatherOps != 1 || st.BroadcastOps != 1 {
				t.Fatalf("%s: stats %+v", name, st)
			}
		}
	}
}

// TestTreeContentionChargesSharedLinks pins the contention model: on the
// two-rack fabric the tree's widest exchange puts world/2 same-direction
// transfers on the bottleneck link, so it must cost strictly more than the
// flat ring, which never shares a directed link within a step.
func TestTreeContentionChargesSharedLinks(t *testing.T) {
	topo := netsim.TwoRackTopology(netsim.TwoRackOptions{
		Hosts: 8, BottleneckBps: 100 * netsim.Mbps, EdgeBps: 10 * netsim.Gbps,
	})
	hosts := topo.Hosts()
	n := 1 << 18
	ring := CostRingAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	tree := CostTreeAllReduce(netsim.NewFabric(topo), hosts, n, WireFP32, 0)
	if tree <= ring {
		t.Fatalf("tree %v should lose to ring %v on an oversubscribed inter-switch link", tree, ring)
	}
}
