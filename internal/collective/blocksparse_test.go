package collective

import (
	"testing"

	"pactrain/internal/netsim"
)

func TestBlockSparseSumCorrect(t *testing.T) {
	world := 3
	c := newTestCluster(world, netsim.Gbps)
	n := 1024
	results := make([][]float32, world)
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		// Each rank populates a different block plus one shared block.
		vec[rank*256] = float32(rank + 1)
		vec[768] = 1
		_, _, _ = 0, 0, 0
		own, union, _ := c.AllReduceBlockSparse(rank, vec, 256, 1, 0)
		if own != 2 {
			t.Errorf("rank %d own blocks %d, want 2", rank, own)
		}
		if union != 4 {
			t.Errorf("rank %d union %d, want 4", rank, union)
		}
		results[rank] = vec
	})
	for rank, vec := range results {
		if vec[0] != 1 || vec[256] != 2 || vec[512] != 3 {
			t.Fatalf("rank %d sums wrong: %v %v %v", rank, vec[0], vec[256], vec[512])
		}
		if vec[768] != 3 {
			t.Fatalf("rank %d shared block sum %v, want 3", rank, vec[768])
		}
	}
}

func TestBlockSparseCostScalesWithDensity(t *testing.T) {
	n := 256 * 64 // 64 blocks
	cost := func(denseBlocks int) float64 {
		topo := netsim.FlatTopology(4, netsim.Gbps, 0)
		c := NewCluster(4, netsim.NewFabric(topo))
		var end float64
		runWorkers(4, func(rank int) {
			vec := make([]float32, n)
			for b := 0; b < denseBlocks; b++ {
				vec[b*256] = 1
			}
			_, _, e := c.AllReduceBlockSparse(rank, vec, 256, 1, 0)
			if rank == 0 {
				end = e
			}
		})
		return end
	}
	sparse := cost(4)
	dense := cost(64)
	if dense <= sparse*4 {
		t.Fatalf("dense blocks (%v) should cost ≫ sparse blocks (%v)", dense, sparse)
	}
}

// TestBlockSparseLosesAtModerateSparsity verifies the paper's §II-B point:
// at pruning-level sparsity (~50%), block-sparse streaming through an
// aggregator costs more than plain ring all-reduce — OmniReduce needs ~1%
// density to win.
func TestBlockSparseLosesAtModerateSparsity(t *testing.T) {
	world := 8
	n := 256 * 128
	// Half the blocks non-zero.
	topoA := netsim.FlatTopology(world, netsim.Gbps, 0)
	ca := NewCluster(world, netsim.NewFabric(topoA))
	var bsEnd float64
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		for b := 0; b < 64; b++ {
			vec[b*2*256] = 1
		}
		_, _, e := ca.AllReduceBlockSparse(rank, vec, 256, 1, 0)
		if rank == 0 {
			bsEnd = e
		}
	})
	topoB := netsim.FlatTopology(world, netsim.Gbps, 0)
	cb := NewCluster(world, netsim.NewFabric(topoB))
	var arEnd float64
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		e := cb.AllReduceSum(rank, vec, WireFP32, 0)
		if rank == 0 {
			arEnd = e
		}
	})
	if bsEnd <= arEnd {
		t.Fatalf("block-sparse at 50%% density (%v) should lose to ring all-reduce (%v)", bsEnd, arEnd)
	}
}

func TestNonZeroBlocksEdges(t *testing.T) {
	// Tail block shorter than blockSize still detected.
	vec := make([]float32, 300)
	vec[299] = 1
	blocks := nonZeroBlocks(vec, 256)
	if len(blocks) != 1 || blocks[0] != 1 {
		t.Fatalf("blocks %v, want [1]", blocks)
	}
	if got := nonZeroBlocks(make([]float32, 300), 256); len(got) != 0 {
		t.Fatalf("all-zero vector has blocks %v", got)
	}
}
