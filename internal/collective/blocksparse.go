package collective

import "pactrain/internal/netsim"

// This file implements an OmniReduce-style streaming block-sparse
// aggregation [Fei et al., SIGCOMM'21], the sparse-collective-communication
// baseline the paper discusses in §II. Each worker streams only its
// non-zero blocks to an aggregator, which merges them and returns the union
// of non-zero result blocks. The scheme shines near 1% density and — as the
// paper points out — loses its advantage at the 30–80% sparsity that
// pruning provides, which the per-block headers and union fan-out make
// visible here.

// BlockSparseHeaderBytes is the per-block metadata (block id + length).
const BlockSparseHeaderBytes = 8

// nonZeroBlocks returns the indices of blocks of size blockSize containing
// at least one non-zero value.
func nonZeroBlocks(vec []float32, blockSize int) []int {
	var idx []int
	for b := 0; b*blockSize < len(vec); b++ {
		from := b * blockSize
		to := from + blockSize
		if to > len(vec) {
			to = len(vec)
		}
		for _, v := range vec[from:to] {
			if v != 0 {
				idx = append(idx, b)
				break
			}
		}
	}
	return idx
}

// blockBytes returns the wire size of k blocks of blockSize fp32 values,
// scaled by byteScale (the lite-twin→profile wire scale; 1 for raw use).
func blockBytes(k, blockSize int, byteScale float64) float64 {
	return float64(k) * (float64(blockSize)*4*byteScale + BlockSparseHeaderBytes)
}

// CostBlockSparseAggregate prices the streaming aggregation: serialized
// ingress of each worker's non-zero blocks into the aggregator (hosts[0]),
// then the union of non-zero result blocks fanned back out to every worker.
func CostBlockSparseAggregate(f *netsim.Fabric, hosts []netsim.NodeID, perWorkerBlocks []int, unionBlocks, blockSize int, byteScale, t float64) float64 {
	world := len(hosts)
	if world <= 1 {
		return 0
	}
	if byteScale <= 0 {
		byteScale = 1
	}
	start := t
	for i := 1; i < world; i++ {
		dt, err := f.TransferTime(hosts[i], hosts[0], blockBytes(perWorkerBlocks[i], blockSize, byteScale), t)
		if err != nil {
			panic(err)
		}
		t += dt
	}
	out := blockBytes(unionBlocks, blockSize, byteScale)
	for i := 1; i < world; i++ {
		dt, err := f.TransferTime(hosts[0], hosts[i], out, t)
		if err != nil {
			panic(err)
		}
		t += dt
	}
	return t - start
}

// AllReduceBlockSparse sums vec across workers by exchanging only non-zero
// blocks of blockSize elements through a streaming aggregator. vec is
// overwritten with the global sum; byteScale scales the per-value wire cost
// (1 for raw use). The returned block counts describe this rank's
// contribution and the union (for experiment accounting).
func (c *Cluster) AllReduceBlockSparse(rank int, vec []float32, blockSize int, byteScale, localTime float64) (ownBlocks, unionBlocks int, end float64) {
	type bsIn struct{ vec []float32 }
	type bsOut struct {
		sum       []float32
		perWorker []int
		union     int
	}
	res, endT := c.rendezvous(rank, bsIn{vec}, localTime, func(inputs []any, start float64) (any, float64) {
		n := len(vec)
		sum := make([]float32, n)
		perWorker := make([]int, c.world)
		unionSet := map[int]bool{}
		for i, in := range inputs {
			v := in.(bsIn).vec
			blocks := nonZeroBlocks(v, blockSize)
			perWorker[i] = len(blocks)
			for _, b := range blocks {
				unionSet[b] = true
			}
			for j, x := range v {
				sum[j] += x
			}
		}
		t := start + CostBlockSparseAggregate(c.fabric, c.hosts, perWorker, len(unionSet), blockSize, byteScale, start)
		var total float64
		for i := 1; i < c.world; i++ {
			total += blockBytes(perWorker[i], blockSize, byteScale)
			total += blockBytes(len(unionSet), blockSize, byteScale)
		}
		c.stats.PSOps++
		c.stats.PayloadBytes += total
		c.stats.SimSeconds += t - start
		return bsOut{sum: sum, perWorker: perWorker, union: len(unionSet)}, t
	})
	out := res.(bsOut)
	copy(vec, out.sum)
	return out.perWorker[rank], out.union, endT
}
