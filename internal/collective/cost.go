package collective

import "pactrain/internal/netsim"

// This file exposes the pure timing models behind each collective as
// standalone functions. The Cluster methods use them for in-situ timing, and
// the experiment harness re-uses them to re-cost a recorded training run
// under a different bandwidth without re-training (the convergence
// trajectory is bandwidth-independent; only the clock changes).

// ringStep costs one ring step in which host i sends bytes[i] to host i+1
// concurrently, recording bytes on the fabric.
func ringStep(f *netsim.Fabric, hosts []netsim.NodeID, bytes []float64, t float64) float64 {
	var step float64
	world := len(hosts)
	for i := 0; i < world; i++ {
		dst := (i + 1) % world
		dt, err := f.TransferTime(hosts[i], hosts[dst], bytes[i], t)
		if err != nil {
			panic(err)
		}
		if dt > step {
			step = dt
		}
	}
	return step
}

// CostRingAllReduce returns the duration of a ring all-reduce of n elements
// with the given wire format starting at time t.
func CostRingAllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 || n == 0 {
		return 0
	}
	start := t
	bytes := make([]float64, world)
	for s := 0; s < 2*(world-1); s++ {
		for i := 0; i < world; i++ {
			var ci int
			if s < world-1 {
				ci = ((i-s)%world + world) % world
			} else {
				ci = ((i+1-(s-(world-1)))%world + world) % world
			}
			from, to := chunkRange(ci, n, world)
			bytes[i] = wire.MessageBytes(to - from)
		}
		t += ringStep(f, hosts, bytes, t)
	}
	return t - start
}

// CostRingAllGather returns the duration of a ring all-gather in which each
// worker i contributes sizes[i] elements.
func CostRingAllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 {
		return 0
	}
	start := t
	bytes := make([]float64, world)
	for s := 0; s < world-1; s++ {
		for i := 0; i < world; i++ {
			origin := ((i-s)%world + world) % world
			bytes[i] = wire.MessageBytes(sizes[origin])
		}
		t += ringStep(f, hosts, bytes, t)
	}
	return t - start
}

// CostBinomialBroadcast returns the duration of a binomial-tree broadcast of
// msgBytes from root.
func CostBinomialBroadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64 {
	world := len(hosts)
	if world <= 1 || msgBytes <= 0 {
		return 0
	}
	start := t
	for span := 1; span < world; span *= 2 {
		var step float64
		for rel := 0; rel < span && rel+span < world; rel++ {
			from := (root + rel) % world
			to := (root + rel + span) % world
			dt, err := f.TransferTime(hosts[from], hosts[to], msgBytes, t)
			if err != nil {
				panic(err)
			}
			if dt > step {
				step = dt
			}
		}
		t += step
	}
	return t - start
}

// CostPSAggregate returns the duration of a parameter-server round trip for
// n elements: serialized ingress from every worker to the server, then
// serialized egress back. The serialization models the incast on the
// server's edge link.
func CostPSAggregate(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 || n == 0 {
		return 0
	}
	start := t
	msg := wire.MessageBytes(n)
	for i := 1; i < world; i++ {
		dt, err := f.TransferTime(hosts[i], hosts[0], msg, t)
		if err != nil {
			panic(err)
		}
		t += dt
	}
	for i := 1; i < world; i++ {
		dt, err := f.TransferTime(hosts[0], hosts[i], msg, t)
		if err != nil {
			panic(err)
		}
		t += dt
	}
	return t - start
}

// BitmapWire is the wire format of a sparsity bitmap (1 bit per element).
var BitmapWire = WireFormat{Name: "bitmap", BytesPerElement: 0.125, HeaderBytes: 8}
