package collective

import (
	"fmt"
	"testing"

	"pactrain/internal/netsim"
)

// BenchmarkAlgorithmAllReduceCost measures the pure pricing path of each
// registered algorithm on the two-rack fabric — the hot loop of bandwidth
// re-costing, which prices thousands of recorded collectives per sweep.
func BenchmarkAlgorithmAllReduceCost(b *testing.B) {
	topo := netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: 8, BottleneckBps: netsim.Gbps})
	hosts := topo.Hosts()
	n := 1 << 20
	for _, name := range AlgorithmNames() {
		alg := MustAlgorithm(name)
		b.Run(name, func(b *testing.B) {
			f := netsim.NewFabric(topo)
			b.SetBytes(int64(n * 4))
			for i := 0; i < b.N; i++ {
				alg.AllReduce(f, hosts, n, WireFP32, float64(i))
			}
		})
	}
}

// BenchmarkAlgorithmClusterAllReduce measures the live data plane (worker
// rendezvous + summation + pricing) under each algorithm.
func BenchmarkAlgorithmClusterAllReduce(b *testing.B) {
	const world = 8
	n := 1 << 18
	for _, name := range AlgorithmNames() {
		alg := MustAlgorithm(name)
		b.Run(name, func(b *testing.B) {
			topo := netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: world, BottleneckBps: netsim.Gbps})
			c := NewClusterWith(world, netsim.NewFabric(topo), alg)
			vecs := make([][]float32, world)
			for r := range vecs {
				vecs[r] = make([]float32, n)
			}
			b.SetBytes(int64(n * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan struct{})
				for r := 0; r < world; r++ {
					go func(rank int) {
						c.AllReduceSum(rank, vecs[rank], WireFP32, 0)
						done <- struct{}{}
					}(r)
				}
				for r := 0; r < world; r++ {
					<-done
				}
			}
		})
	}
}

// BenchmarkRackDerivation measures the per-call rack grouping hierarchical
// costing performs on every collective.
func BenchmarkRackDerivation(b *testing.B) {
	for _, hostsN := range []int{8, 64} {
		topo := netsim.TwoRackTopology(netsim.TwoRackOptions{Hosts: hostsN, BottleneckBps: netsim.Gbps})
		hosts := topo.Hosts()
		b.Run(fmt.Sprintf("hosts%d", hostsN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Racks(topo, hosts)
			}
		})
	}
}
