// Package collective implements the gradient-aggregation primitives the
// PacTrain paper builds on: all-reduce, all-gather for sparse (value,index)
// payloads, broadcast, a parameter-server aggregation baseline, and
// barriers — all executed for real across worker goroutines with every
// transfer costed through the netsim fabric. The symmetric collectives are
// priced by a pluggable Algorithm (ring, tree, hierarchical — see
// algorithm.go); the flat ring is the default and reproduces the paper's
// setup bit-exactly.
//
// Timing model. Each collective advances a simulated clock. A collective is
// a synchronization point, so it starts at the maximum of the participants'
// local clocks and every participant observes the same completion time. Ring
// steps are costed as the maximum of the concurrent neighbor transfers; on a
// full-duplex chain topology (Fig. 4) a unidirectional ring never puts two
// same-step transfers on the same directed link, so the max-of-transfers
// model is exact. Parameter-server ingress, by contrast, shares the server's
// edge link, so its transfers are serialized — reproducing the incast that
// makes PS aggregation scale worse than all-reduce (§I of the paper).
package collective

import (
	"fmt"
	"sync"

	"pactrain/internal/netsim"
	"pactrain/internal/par"
)

// WireFormat describes how a logical element is represented on the wire.
// Compressors choose the format; collectives only use it to cost transfers.
type WireFormat struct {
	Name string
	// BytesPerElement is the wire cost of one logical element (4 for fp32,
	// 2 for fp16, 0.25 for 2-bit ternary, 8 for value+index pairs...).
	BytesPerElement float64
	// HeaderBytes is a fixed per-message overhead (metadata, scale factors).
	HeaderBytes float64
}

// Standard wire formats.
var (
	WireFP32 = WireFormat{Name: "fp32", BytesPerElement: 4}
	WireFP16 = WireFormat{Name: "fp16", BytesPerElement: 2, HeaderBytes: 4}
	// WireTernary is TernGrad's packed 2-bit representation plus a scale.
	WireTernary = WireFormat{Name: "ternary", BytesPerElement: 0.25, HeaderBytes: 8}
	// WireInt8 is a byte-per-element representation used when ternary sums
	// must widen during all-reduce.
	WireInt8 = WireFormat{Name: "int8", BytesPerElement: 1, HeaderBytes: 8}
	// WireSparse is a COO (value,index) pair per element.
	WireSparse = WireFormat{Name: "coo", BytesPerElement: 8, HeaderBytes: 8}
)

// MessageBytes returns the wire size of a message carrying n elements.
func (w WireFormat) MessageBytes(n int) float64 {
	return float64(n)*w.BytesPerElement + w.HeaderBytes
}

// Stats accumulates per-cluster communication totals. The byte counters
// are the *logical* communication volume of each operation — the
// ring-equivalent bytes the paper's compression ratios describe — and are
// deliberately algorithm-independent, so a scheme's volume reads the same
// under ring, tree, or hierarchical pricing. The bytes a given algorithm
// actually pushes across each link (leaders send more than members under
// hierarchical, tree pays fold/unfold copies) live in the fabric's
// per-link accounting (Fabric.BytesOnLink, Fabric.TotalBytes).
type Stats struct {
	AllReduceOps  int
	AllGatherOps  int
	BroadcastOps  int
	PSOps         int
	BarrierOps    int
	SimSeconds    float64 // total time spent inside collectives
	PayloadBytes  float64 // logical payload bytes sent by all workers
	PerWorkerSent float64 // logical payload bytes per worker (symmetric ops)
}

// Cluster coordinates a fixed set of worker goroutines over a fabric. All
// workers must call the same sequence of collective operations (SPMD), as
// they would with NCCL. The configured Algorithm prices the symmetric
// collectives; the data plane (what the floats sum to) is identical under
// every algorithm.
type Cluster struct {
	world  int
	fabric *netsim.Fabric
	hosts  []netsim.NodeID
	algo   Algorithm

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	inputs  []any
	times   []float64
	result  any
	outTime float64

	// sumBuf is the reusable reduction buffer behind AllReduceSum and
	// PSAggregateSum, so steady-state iterations stop allocating a
	// full-payload slice per collective. Reuse is safe under the rendezvous
	// protocol: the buffer becomes c.result, every rank copies it out before
	// arriving at the next rendezvous, and the next compute closure (the only
	// writer) cannot run until all ranks have arrived.
	sumBuf []float32

	stats Stats
}

// scratchSum returns the zeroed n-element reduction buffer.
func (c *Cluster) scratchSum(n int) []float32 {
	if cap(c.sumBuf) < n {
		c.sumBuf = make([]float32, n)
	}
	s := c.sumBuf[:n]
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = 0
		}
	})
	return s
}

// NewCluster builds a cluster of world workers mapped in rank order onto the
// fabric's hosts, costed with the default ring algorithm. It panics if the
// topology has fewer hosts than workers.
func NewCluster(world int, fabric *netsim.Fabric) *Cluster {
	return NewClusterWith(world, fabric, MustAlgorithm(DefaultAlgorithm))
}

// NewClusterWith is NewCluster with an explicit collective algorithm.
func NewClusterWith(world int, fabric *netsim.Fabric, algo Algorithm) *Cluster {
	hosts := fabric.Topo.Hosts()
	if len(hosts) < world {
		panic(fmt.Sprintf("collective: topology has %d hosts for %d workers", len(hosts), world))
	}
	c := &Cluster{world: world, fabric: fabric, hosts: hosts[:world], algo: algo,
		inputs: make([]any, world), times: make([]float64, world)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// World returns the number of workers.
func (c *Cluster) World() int { return c.world }

// Algorithm returns the collective algorithm pricing this cluster.
func (c *Cluster) Algorithm() Algorithm { return c.algo }

// Fabric returns the underlying fabric (for accounting inspection).
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// Hosts returns the fabric hosts the workers are mapped onto, in rank
// order. The slice is a copy; callers pricing hypothetical collectives (the
// adaptive controller) may retain it.
func (c *Cluster) Hosts() []netsim.NodeID {
	out := make([]netsim.NodeID, len(c.hosts))
	copy(out, c.hosts)
	return out
}

// Stats returns a snapshot of the accumulated statistics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// rendezvous gathers one input per rank, lets the last arrival run compute
// exactly once over all inputs (with the synchronized start time), and
// returns compute's result and completion time to every rank. It is a
// reusable generation barrier.
func (c *Cluster) rendezvous(rank int, input any, localTime float64,
	compute func(inputs []any, start float64) (any, float64)) (any, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	c.inputs[rank] = input
	c.times[rank] = localTime
	c.arrived++
	if c.arrived == c.world {
		start := c.times[0]
		for _, t := range c.times[1:] {
			if t > start {
				start = t
			}
		}
		res, end := compute(c.inputs, start)
		c.result = res
		c.outTime = end
		c.arrived = 0
		c.gen++
		c.inputs = make([]any, c.world)
		c.cond.Broadcast()
		return res, c.outTime
	}
	for c.gen == gen {
		c.cond.Wait()
	}
	return c.result, c.outTime
}

// chunkRange returns the [from,to) element range of ring chunk idx when
// splitting n elements into world chunks.
func chunkRange(idx, n, world int) (int, int) {
	base := n / world
	rem := n % world
	from := idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return from, from + size
}

// AllReduceSum sums vec elementwise across all workers using a ring
// all-reduce (reduce-scatter followed by all-gather), overwriting vec with
// the global sum on every worker. wire selects the on-wire representation;
// the returned time is the synchronized completion time.
func (c *Cluster) AllReduceSum(rank int, vec []float32, wire WireFormat, localTime float64) float64 {
	type arIn struct{ vec []float32 }
	res, end := c.rendezvous(rank, arIn{vec}, localTime, func(inputs []any, start float64) (any, float64) {
		n := len(vec)
		vecs := make([][]float32, len(inputs))
		for r, in := range inputs {
			vecs[r] = in.(arIn).vec
			if len(vecs[r]) != n {
				panic("collective: AllReduceSum length mismatch across ranks")
			}
		}
		sum := c.scratchSum(n)
		// Each element accumulates contributions in rank order inside one
		// chunk, so the chunked reduction is bit-identical to the scalar one.
		par.For(n, func(lo, hi int) {
			for _, v := range vecs {
				for i := lo; i < hi; i++ {
					sum[i] += v[i]
				}
			}
		})
		t := start + c.algo.AllReduce(c.fabric, c.hosts, n, wire, start)
		if c.world > 1 && n > 0 {
			c.stats.PerWorkerSent += wire.MessageBytes(n) / float64(c.world) * 2 * float64(c.world-1)
			c.stats.PayloadBytes += wire.MessageBytes(n) / float64(c.world) * 2 * float64(c.world-1) * float64(c.world)
		}
		c.stats.AllReduceOps++
		c.stats.SimSeconds += t - start
		return sum, t
	})
	copy(vec, res.([]float32))
	return end
}

// SparsePayload carries one worker's sparse contribution to an all-gather.
type SparsePayload struct {
	Values  []float32
	Indices []int32
}

// AllGatherSparse exchanges every worker's (values, indices) lists so each
// worker holds all contributions, using a ring all-gather. This is the
// transport TopK and DGC must use — sparse selections differ across workers,
// so they cannot be summed in place by all-reduce (§I, Table 1).
func (c *Cluster) AllGatherSparse(rank int, payload SparsePayload, wire WireFormat, localTime float64) ([]SparsePayload, float64) {
	res, end := c.rendezvous(rank, payload, localTime, func(inputs []any, start float64) (any, float64) {
		all := make([]SparsePayload, c.world)
		for i, in := range inputs {
			all[i] = in.(SparsePayload)
		}
		sizes := make([]int, c.world)
		var total float64
		for i := range all {
			sizes[i] = len(all[i].Values)
			total += wire.MessageBytes(sizes[i]) * float64(c.world-1)
		}
		t := start + c.algo.AllGather(c.fabric, c.hosts, sizes, wire, start)
		if c.world > 1 {
			c.stats.PayloadBytes += total
			c.stats.PerWorkerSent += total / float64(c.world)
		}
		c.stats.AllGatherOps++
		c.stats.SimSeconds += t - start
		return all, t
	})
	return res.([]SparsePayload), end
}

// Broadcast sends root's vector to all workers via a binomial tree,
// overwriting vec on every non-root worker.
func (c *Cluster) Broadcast(rank, root int, vec []float32, wire WireFormat, localTime float64) float64 {
	type bcIn struct {
		rank int
		vec  []float32
	}
	res, end := c.rendezvous(rank, bcIn{rank, vec}, localTime, func(inputs []any, start float64) (any, float64) {
		var src []float32
		for _, in := range inputs {
			b := in.(bcIn)
			if b.rank == root {
				src = b.vec
			}
		}
		t := start
		if c.world > 1 && len(src) > 0 {
			msg := wire.MessageBytes(len(src))
			t += c.algo.Broadcast(c.fabric, c.hosts, root, msg, start)
			c.stats.PayloadBytes += msg * float64(c.world-1)
		}
		c.stats.BroadcastOps++
		c.stats.SimSeconds += t - start
		return src, t
	})
	if rank != root {
		copy(vec, res.([]float32))
	}
	return end
}

// PSAggregateSum implements the parameter-server baseline: every worker
// sends its vector to the server (rank 0's host), which sums and returns the
// result. Ingress transfers share the server's edge link and are therefore
// serialized, and the response fan-out likewise — the incast bottleneck that
// motivates all-reduce.
func (c *Cluster) PSAggregateSum(rank int, vec []float32, wire WireFormat, localTime float64) float64 {
	type psIn struct{ vec []float32 }
	res, end := c.rendezvous(rank, psIn{vec}, localTime, func(inputs []any, start float64) (any, float64) {
		n := len(vec)
		vecs := make([][]float32, len(inputs))
		for r, in := range inputs {
			vecs[r] = in.(psIn).vec
		}
		sum := c.scratchSum(n)
		par.For(n, func(lo, hi int) {
			for _, v := range vecs {
				for i := lo; i < hi; i++ {
					sum[i] += v[i]
				}
			}
		})
		t := start + CostPSAggregate(c.fabric, c.hosts, n, wire, start)
		c.stats.PayloadBytes += wire.MessageBytes(n) * 2 * float64(c.world-1)
		c.stats.PSOps++
		c.stats.SimSeconds += t - start
		return sum, t
	})
	copy(vec, res.([]float32))
	return end
}

// Barrier synchronizes clocks: every worker observes the maximum local time.
func (c *Cluster) Barrier(rank int, localTime float64) float64 {
	_, end := c.rendezvous(rank, nil, localTime, func(_ []any, start float64) (any, float64) {
		c.stats.BarrierOps++
		return nil, start
	})
	return end
}

// LaunchBarrier resolves the launch time of the next collective without
// issuing one: every worker observes the maximum local clock — the
// simclock.Timeline.LaunchTime barrier, realized across the live worker
// goroutines. Unlike Barrier it leaves the statistics untouched; it is the
// clock-only rendezvous the per-rank timeline model uses so that
// replica-lockstep decisions (the adaptive controller) and recorded launch
// times see the collective's true start even when rank clocks have
// diverged. It costs no simulated time.
func (c *Cluster) LaunchBarrier(rank int, localTime float64) float64 {
	_, end := c.rendezvous(rank, nil, localTime, func(_ []any, start float64) (any, float64) {
		return nil, start
	})
	return end
}

// BroadcastBitmap costs the distribution of a pruning/sparsity bitmap of n
// logical bits from root to all workers (1 bit per element on the wire).
// PacTrain pays this once per mask change (§III-C, DESIGN.md §4).
func (c *Cluster) BroadcastBitmap(rank, root, n int, localTime float64) float64 {
	return c.BroadcastScaledBitmap(rank, root, n, BitmapWire, localTime)
}

// BroadcastScaledBitmap is BroadcastBitmap with an explicit wire format, so
// callers pricing a scaled-up model can cost the bitmap consistently.
func (c *Cluster) BroadcastScaledBitmap(rank, root, n int, wire WireFormat, localTime float64) float64 {
	type bmIn struct{ rank int }
	_, end := c.rendezvous(rank, bmIn{rank}, localTime, func(_ []any, start float64) (any, float64) {
		t := start
		if c.world > 1 && n > 0 {
			msg := wire.MessageBytes(n)
			t += c.algo.Broadcast(c.fabric, c.hosts, root, msg, start)
			c.stats.PayloadBytes += msg * float64(c.world-1)
		}
		c.stats.BroadcastOps++
		c.stats.SimSeconds += t - start
		return nil, t
	})
	return end
}
