package collective

import (
	"math"
	"sync"
	"testing"

	"pactrain/internal/netsim"
)

// runWorkers executes fn on ranks 0..world-1 concurrently and waits.
func runWorkers(world int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func newTestCluster(world int, bw float64) *Cluster {
	topo := netsim.FlatTopology(world, bw, 1e-5)
	return NewCluster(world, netsim.NewFabric(topo))
}

func TestAllReduceSumCorrectness(t *testing.T) {
	world := 4
	c := newTestCluster(world, netsim.Gbps)
	n := 10
	results := make([][]float32, world)
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		for i := range vec {
			vec[i] = float32(rank + 1) // sum over ranks = 1+2+3+4 = 10
		}
		c.AllReduceSum(rank, vec, WireFP32, 0)
		results[rank] = vec
	})
	for rank, vec := range results {
		for i, v := range vec {
			if v != 10 {
				t.Fatalf("rank %d elem %d = %v, want 10", rank, i, v)
			}
		}
	}
}

func TestAllReduceUnevenLength(t *testing.T) {
	// n not divisible by world exercises uneven chunk ranges.
	world := 3
	c := newTestCluster(world, netsim.Gbps)
	n := 7
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		for i := range vec {
			vec[i] = 1
		}
		c.AllReduceSum(rank, vec, WireFP32, 0)
		for _, v := range vec {
			if v != 3 {
				t.Errorf("rank %d got %v, want 3", rank, v)
			}
		}
	})
}

func TestAllReduceTimeMatchesRingModel(t *testing.T) {
	// Homogeneous flat network: ring all-reduce of S bytes over n workers
	// takes 2(n-1)/n × S/B (each transfer crosses two 1 Gbps edge links,
	// bottleneck B = 1 Gbps) plus latency terms.
	world := 4
	bw := netsim.Gbps
	topo := netsim.FlatTopology(world, bw, 0)
	c := NewCluster(world, netsim.NewFabric(topo))
	n := 1 << 20 // 1Mi elements = 4 MiB fp32
	var end float64
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		e := c.AllReduceSum(rank, vec, WireFP32, 0)
		if rank == 0 {
			end = e
		}
	})
	s := float64(n) * 4 * 8 // bits
	want := 2 * float64(world-1) / float64(world) * s / bw
	if math.Abs(end-want)/want > 0.02 {
		t.Fatalf("allreduce time %v, want ≈%v", end, want)
	}
}

func TestAllReduceStartsAtMaxClock(t *testing.T) {
	world := 2
	c := newTestCluster(world, netsim.Gbps)
	ends := make([]float64, world)
	runWorkers(world, func(rank int) {
		vec := []float32{1}
		local := float64(rank) * 10 // rank1 arrives at t=10
		ends[rank] = c.AllReduceSum(rank, vec, WireFP32, local)
	})
	if ends[0] != ends[1] {
		t.Fatal("all workers must observe the same completion time")
	}
	if ends[0] < 10 {
		t.Fatalf("completion %v must be after the last arrival (10)", ends[0])
	}
}

func TestWireFormatScalesTime(t *testing.T) {
	world := 4
	n := 1 << 18
	timeFor := func(wire WireFormat) float64 {
		topo := netsim.FlatTopology(world, netsim.Gbps, 0)
		c := NewCluster(world, netsim.NewFabric(topo))
		var end float64
		runWorkers(world, func(rank int) {
			vec := make([]float32, n)
			e := c.AllReduceSum(rank, vec, wire, 0)
			if rank == 0 {
				end = e
			}
		})
		return end
	}
	t32 := timeFor(WireFP32)
	t16 := timeFor(WireFP16)
	if r := t32 / t16; r < 1.9 || r > 2.1 {
		t.Fatalf("fp16 should halve time; ratio %v", r)
	}
	ttern := timeFor(WireTernary)
	if r := t32 / ttern; r < 14 || r > 17 {
		t.Fatalf("ternary should be ≈16× cheaper; ratio %v", r)
	}
}

func TestAllGatherSparse(t *testing.T) {
	world := 3
	c := newTestCluster(world, netsim.Gbps)
	outs := make([][]SparsePayload, world)
	runWorkers(world, func(rank int) {
		p := SparsePayload{
			Values:  []float32{float32(rank), float32(rank * 2)},
			Indices: []int32{int32(rank), int32(rank + 10)},
		}
		all, _ := c.AllGatherSparse(rank, p, WireSparse, 0)
		outs[rank] = all
	})
	for rank, all := range outs {
		if len(all) != world {
			t.Fatalf("rank %d got %d payloads", rank, len(all))
		}
		for r, p := range all {
			if p.Values[0] != float32(r) || p.Indices[1] != int32(r+10) {
				t.Fatalf("rank %d payload %d corrupted: %+v", rank, r, p)
			}
		}
	}
}

func TestAllGatherCostGrowsWithWorld(t *testing.T) {
	// TopK's transport cost grows with worker count even at fixed K —
	// the congestion effect in §IV-C.
	k := 1 << 16
	cost := func(world int) float64 {
		topo := netsim.FlatTopology(world, netsim.Gbps, 0)
		c := NewCluster(world, netsim.NewFabric(topo))
		var end float64
		runWorkers(world, func(rank int) {
			p := SparsePayload{Values: make([]float32, k), Indices: make([]int32, k)}
			_, e := c.AllGatherSparse(rank, p, WireSparse, 0)
			if rank == 0 {
				end = e
			}
		})
		return end
	}
	c2, c8 := cost(2), cost(8)
	if c8 <= c2*2 {
		t.Fatalf("all-gather cost should grow with world size: world2=%v world8=%v", c2, c8)
	}
}

func TestBroadcast(t *testing.T) {
	world := 5
	c := newTestCluster(world, netsim.Gbps)
	results := make([][]float32, world)
	runWorkers(world, func(rank int) {
		vec := make([]float32, 4)
		if rank == 2 {
			copy(vec, []float32{9, 8, 7, 6})
		}
		c.Broadcast(rank, 2, vec, WireFP32, 0)
		results[rank] = vec
	})
	for rank, vec := range results {
		for i, want := range []float32{9, 8, 7, 6} {
			if vec[i] != want {
				t.Fatalf("rank %d elem %d = %v, want %v", rank, i, vec[i], want)
			}
		}
	}
}

func TestPSAggregateCorrectAndSlowerThanAllReduce(t *testing.T) {
	world := 8
	n := 1 << 18
	topoA := netsim.FlatTopology(world, netsim.Gbps, 0)
	ca := NewCluster(world, netsim.NewFabric(topoA))
	var psEnd float64
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		for i := range vec {
			vec[i] = 1
		}
		e := ca.PSAggregateSum(rank, vec, WireFP32, 0)
		if rank == 0 {
			psEnd = e
		}
		for _, v := range vec {
			if v != float32(world) {
				t.Errorf("PS sum = %v, want %d", v, world)
			}
		}
	})
	topoB := netsim.FlatTopology(world, netsim.Gbps, 0)
	cb := NewCluster(world, netsim.NewFabric(topoB))
	var arEnd float64
	runWorkers(world, func(rank int) {
		vec := make([]float32, n)
		e := cb.AllReduceSum(rank, vec, WireFP32, 0)
		if rank == 0 {
			arEnd = e
		}
	})
	if psEnd <= arEnd {
		t.Fatalf("PS (%v) should be slower than ring all-reduce (%v) due to incast", psEnd, arEnd)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	world := 3
	c := newTestCluster(world, netsim.Gbps)
	ends := make([]float64, world)
	runWorkers(world, func(rank int) {
		ends[rank] = c.Barrier(rank, float64(rank*5))
	})
	for _, e := range ends {
		if e != 10 {
			t.Fatalf("barrier end %v, want 10 (max clock)", e)
		}
	}
}

func TestBroadcastBitmapCost(t *testing.T) {
	world := 2
	topo := netsim.FlatTopology(world, netsim.Gbps, 0)
	c := NewCluster(world, netsim.NewFabric(topo))
	n := 8 << 20 // 8Mi elements → 1 MiB bitmap
	var end float64
	runWorkers(world, func(rank int) {
		e := c.BroadcastBitmap(rank, 0, n, 0)
		if rank == 0 {
			end = e
		}
	})
	// Path host→switch→host is costed at its bottleneck bandwidth (1 Gbps).
	want := (float64(n)*0.125 + 8) * 8 / netsim.Gbps
	if math.Abs(end-want)/want > 0.05 {
		t.Fatalf("bitmap broadcast time %v, want ≈%v", end, want)
	}
}

func TestFig4BottleneckDominatesAllReduce(t *testing.T) {
	world := 8
	n := 1 << 18
	run := func(bottleneck float64) float64 {
		topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bottleneck})
		c := NewCluster(world, netsim.NewFabric(topo))
		var end float64
		runWorkers(world, func(rank int) {
			vec := make([]float32, n)
			e := c.AllReduceSum(rank, vec, WireFP32, 0)
			if rank == 0 {
				end = e
			}
		})
		return end
	}
	slow := run(100 * netsim.Mbps)
	fast := run(1 * netsim.Gbps)
	if r := slow / fast; r < 5 || r > 12 {
		t.Fatalf("100Mbps/1Gbps ratio %v, want ≈10 (bottleneck-dominated)", r)
	}
}

func TestStatsAccumulate(t *testing.T) {
	world := 2
	c := newTestCluster(world, netsim.Gbps)
	runWorkers(world, func(rank int) {
		vec := []float32{1, 2, 3}
		c.AllReduceSum(rank, vec, WireFP32, 0)
		c.Barrier(rank, 0)
		c.Broadcast(rank, 0, vec, WireFP32, 0)
	})
	st := c.Stats()
	if st.AllReduceOps != 1 || st.BarrierOps != 1 || st.BroadcastOps != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.PayloadBytes <= 0 || st.SimSeconds <= 0 {
		t.Fatalf("stats should accumulate bytes/time: %+v", st)
	}
}

func TestClusterTooManyWorkersPanics(t *testing.T) {
	topo := netsim.FlatTopology(2, netsim.Gbps, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(4, netsim.NewFabric(topo))
}

func TestRepeatedOpsReuseCluster(t *testing.T) {
	// The generation barrier must be reusable across many sequential ops.
	world := 4
	c := newTestCluster(world, netsim.Gbps)
	runWorkers(world, func(rank int) {
		vec := []float32{1}
		for i := 0; i < 50; i++ {
			vec[0] = 1
			c.AllReduceSum(rank, vec, WireFP32, 0)
			if vec[0] != 4 {
				t.Errorf("iteration %d: got %v", i, vec[0])
				return
			}
		}
	})
}
