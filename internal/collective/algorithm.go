package collective

import (
	"fmt"
	"math"
	"sync"

	"pactrain/internal/netsim"
)

// Algorithm prices the three symmetric collective primitives — all-reduce,
// all-gather, broadcast — for one communication pattern over a fabric. The
// Cluster executes the data plane identically under every algorithm (the
// sum is the sum); only the clock differs, so a run recorded under one
// algorithm can be re-costed exactly under another (see core.CostIter).
//
// Every method returns a duration. Implementations must be pure functions
// of their arguments (plus the fabric's traces, which see absolute time t):
// training and re-costing call them with identical arguments at identical
// times, and the bit-exact re-costing contract (DESIGN.md §5) rests on the
// two paths agreeing to the last ulp. They must also be monotone in the
// element count (TestAlgorithmCostMonotone).
//
// The parameter-server and block-sparse transports are deliberately outside
// this interface: they are scheme-specific topologies of their own (incast
// onto one aggregator), not interchangeable patterns for the same logical
// operation.
type Algorithm interface {
	// Name is the registry identifier ("ring", "tree", "hierarchical").
	Name() string
	// Description is a one-line summary for the catalog surfaces
	// (`pactrain-bench -list-collectives`, GET /v1/collectives).
	Description() string
	// AllReduce prices summing n elements across hosts.
	AllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64
	// AllGather prices exchanging per-host payloads of sizes[i] elements so
	// every host holds all of them.
	AllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64
	// Broadcast prices distributing msgBytes from hosts[root] to all hosts.
	Broadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64
}

// DefaultAlgorithm is the algorithm an empty selector resolves to — the
// paper's flat ring, the behavior every pre-existing experiment was costed
// with.
const DefaultAlgorithm = "ring"

var (
	algoMu   sync.RWMutex
	algoByID = map[string]Algorithm{}
	algoIDs  []string // registration order
)

// RegisterAlgorithm adds an algorithm to the registry. It panics on a
// duplicate name; registration is expected at init time.
func RegisterAlgorithm(a Algorithm) {
	algoMu.Lock()
	defer algoMu.Unlock()
	name := a.Name()
	if _, dup := algoByID[name]; dup {
		panic(fmt.Sprintf("collective: algorithm %q registered twice", name))
	}
	algoByID[name] = a
	algoIDs = append(algoIDs, name)
}

// AlgorithmNames lists the registered algorithms in registration order
// (ring first, the default).
func AlgorithmNames() []string {
	algoMu.RLock()
	defer algoMu.RUnlock()
	out := make([]string, len(algoIDs))
	copy(out, algoIDs)
	return out
}

// AlgorithmInfo is one catalog entry for the algorithm listing surfaces,
// mirroring core.SchemeInfo for schemes.
type AlgorithmInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// AlgorithmCatalog lists every registered algorithm with its description,
// in registration order (ring first, the default).
func AlgorithmCatalog() []AlgorithmInfo {
	algoMu.RLock()
	defer algoMu.RUnlock()
	out := make([]AlgorithmInfo, len(algoIDs))
	for i, id := range algoIDs {
		out[i] = AlgorithmInfo{Name: id, Description: algoByID[id].Description()}
	}
	return out
}

// CanonicalAlgorithm normalizes an algorithm selector: the empty string
// canonicalizes to DefaultAlgorithm, known names pass through, and unknown
// names error with the valid vocabulary.
func CanonicalAlgorithm(name string) (string, error) {
	if name == "" {
		return DefaultAlgorithm, nil
	}
	algoMu.RLock()
	_, ok := algoByID[name]
	algoMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("collective: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	return name, nil
}

// AlgorithmByName resolves a selector to its implementation ("" means
// DefaultAlgorithm).
func AlgorithmByName(name string) (Algorithm, error) {
	canon, err := CanonicalAlgorithm(name)
	if err != nil {
		return nil, err
	}
	algoMu.RLock()
	defer algoMu.RUnlock()
	return algoByID[canon], nil
}

// MustAlgorithm is AlgorithmByName for selectors already validated upstream
// (config validation rejects unknown names before any run or re-cost).
func MustAlgorithm(name string) Algorithm {
	a, err := AlgorithmByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

func init() {
	RegisterAlgorithm(ringAlgorithm{})
	RegisterAlgorithm(treeAlgorithm{})
	RegisterAlgorithm(hierarchicalAlgorithm{})
}

// transferOrPanic wraps Fabric.TransferTime; a disconnected pair is a
// programming error everywhere the collective layer runs (config validation
// guarantees enough connected hosts).
func transferOrPanic(f *netsim.Fabric, src, dst netsim.NodeID, bytes, t float64) float64 {
	dt, err := f.TransferTime(src, dst, bytes, t)
	if err != nil {
		panic(err)
	}
	return dt
}

// xfer is one concurrent send within a collective step.
type xfer struct {
	src, dst netsim.NodeID
	bytes    float64
}

// concurrentStep costs a set of simultaneous transfers starting at time t,
// charging directed-link contention: a link direction carrying k of the
// step's transfers serves each at 1/k of its bandwidth. The flat ring never
// needs this (a unidirectional ring puts at most one same-step transfer on
// each directed link, so ringStep's max-of-transfers is already exact), but
// the tree pattern routinely stacks several pair exchanges onto one
// inter-switch link, where uncontended pricing would be fiction. Bytes are
// recorded on every traversed link, like TransferTime.
func concurrentStep(f *netsim.Fabric, xfers []xfer, t float64) float64 {
	type dlink struct {
		li  int
		fwd bool
	}
	paths := make([][]int, len(xfers))
	load := map[dlink]int{}
	for i, x := range xfers {
		if x.src == x.dst || x.bytes <= 0 {
			continue
		}
		path := f.Topo.Path(x.src, x.dst)
		if path == nil {
			panic(fmt.Sprintf("collective: no path from %d to %d", x.src, x.dst))
		}
		paths[i] = path
		cur := x.src
		for _, li := range path {
			l := f.Topo.Links[li]
			fwd := l.A == cur
			load[dlink{li, fwd}]++
			if fwd {
				cur = l.B
			} else {
				cur = l.A
			}
		}
	}
	var step float64
	for i, x := range xfers {
		if paths[i] == nil {
			continue
		}
		bottleneck := math.Inf(1)
		latency := 0.0
		cur := x.src
		for _, li := range paths[i] {
			l := f.Topo.Links[li]
			fwd := l.A == cur
			bw := f.LinkBandwidthAt(li, t) / float64(load[dlink{li, fwd}])
			if bw < bottleneck {
				bottleneck = bw
			}
			latency += l.LatencySec
			f.BytesOnLink[li] += x.bytes
			if fwd {
				cur = l.B
			} else {
				cur = l.A
			}
		}
		f.TotalBytes += x.bytes
		if dt := latency + x.bytes*8/bottleneck; dt > step {
			step = dt
		}
	}
	return step
}

// --- ring --------------------------------------------------------------------

// ringAlgorithm is the paper's flat ring: reduce-scatter + all-gather
// all-reduce, ring all-gather, binomial-tree broadcast. It delegates to the
// original cost functions in cost.go, so the default path is bit-exact with
// the pre-registry behavior.
type ringAlgorithm struct{}

func (ringAlgorithm) Name() string { return "ring" }

func (ringAlgorithm) Description() string {
	return "flat ring reduce-scatter + all-gather, the paper's setup and the default"
}

func (ringAlgorithm) AllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	return CostRingAllReduce(f, hosts, n, wire, t)
}

func (ringAlgorithm) AllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	return CostRingAllGather(f, hosts, sizes, wire, t)
}

func (ringAlgorithm) Broadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64 {
	return CostBinomialBroadcast(f, hosts, root, msgBytes, t)
}

// --- tree --------------------------------------------------------------------

// treeAlgorithm prices all-reduce as Rabenseifner's recursive
// halving/doubling and all-gather as a binomial gather to rank 0 followed by
// a binomial broadcast of the concatenation. On a uniform fabric it moves
// the same 2n(world-1)/world bytes per host as the ring in log₂(world)
// rounds instead of world-1, trading bandwidth balance for latency — the
// classic small-message regime.
type treeAlgorithm struct{}

func (treeAlgorithm) Name() string { return "tree" }

func (treeAlgorithm) Description() string {
	return "recursive halving/doubling all-reduce, binomial gather+broadcast (small-message regime)"
}

func (treeAlgorithm) AllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	return CostTreeAllReduce(f, hosts, n, wire, t)
}

func (treeAlgorithm) AllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	return CostTreeAllGather(f, hosts, sizes, wire, t)
}

func (treeAlgorithm) Broadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64 {
	return CostBinomialBroadcast(f, hosts, root, msgBytes, t)
}

// pow2Floor returns the largest power of two ≤ w (w ≥ 1).
func pow2Floor(w int) int {
	p := 1
	for p*2 <= w {
		p *= 2
	}
	return p
}

// CostTreeAllReduce prices a recursive halving/doubling all-reduce of n
// elements. Non-power-of-two worlds fold the trailing ranks onto partners
// before the exchange and unfold them after, as MPI implementations do.
// Steps are priced contention-aware (concurrentStep): unlike the ring, the
// tree's pair exchanges stack several same-direction transfers onto shared
// inter-switch links, which is exactly where the pattern loses to
// topology-aware alternatives.
func CostTreeAllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 || n == 0 {
		return 0
	}
	start := t
	pow := pow2Floor(world)
	extra := world - pow
	full := wire.MessageBytes(n)

	// Fold: rank pow+i contributes its full vector to rank i.
	if extra > 0 {
		xs := make([]xfer, 0, extra)
		for i := 0; i < extra; i++ {
			xs = append(xs, xfer{hosts[pow+i], hosts[i], full})
		}
		t += concurrentStep(f, xs, t)
	}

	// Recursive halving (reduce-scatter): each rank keeps half its active
	// range and ships the other half to its partner. Ranges are tracked
	// exactly so uneven element counts stay monotone and deterministic.
	lo := make([]int, pow)
	hi := make([]int, pow)
	for i := range hi {
		hi[i] = n
	}
	var halvings []int
	for span := pow / 2; span >= 1; span /= 2 {
		halvings = append(halvings, span)
	}
	for _, span := range halvings {
		xs := make([]xfer, 0, pow)
		nlo := make([]int, pow)
		nhi := make([]int, pow)
		for i := 0; i < pow; i++ {
			partner := i ^ span
			mid := lo[i] + (hi[i]-lo[i])/2
			var send int
			if i < partner {
				// Keep the lower half, send the upper.
				send = hi[i] - mid
				nlo[i], nhi[i] = lo[i], mid
			} else {
				send = mid - lo[i]
				nlo[i], nhi[i] = mid, hi[i]
			}
			if send > 0 {
				xs = append(xs, xfer{hosts[i], hosts[partner], wire.MessageBytes(send)})
			}
		}
		lo, hi = nlo, nhi
		t += concurrentStep(f, xs, t)
	}

	// Recursive doubling (all-gather): mirror the halving — each rank sends
	// its whole owned range, doubling it every round.
	for s := len(halvings) - 1; s >= 0; s-- {
		span := halvings[s]
		xs := make([]xfer, 0, pow)
		for i := 0; i < pow; i++ {
			partner := i ^ span
			if send := hi[i] - lo[i]; send > 0 {
				xs = append(xs, xfer{hosts[i], hosts[partner], wire.MessageBytes(send)})
			}
		}
		nlo := make([]int, pow)
		nhi := make([]int, pow)
		for i := 0; i < pow; i++ {
			partner := i ^ span
			nlo[i] = min(lo[i], lo[partner])
			nhi[i] = max(hi[i], hi[partner])
		}
		lo, hi = nlo, nhi
		t += concurrentStep(f, xs, t)
	}

	// Unfold: rank i returns the full result to rank pow+i.
	if extra > 0 {
		xs := make([]xfer, 0, extra)
		for i := 0; i < extra; i++ {
			xs = append(xs, xfer{hosts[i], hosts[pow+i], full})
		}
		t += concurrentStep(f, xs, t)
	}
	return t - start
}

// CostTreeAllGather prices a binomial gather of every host's payload onto
// hosts[0] followed by a binomial broadcast of the concatenation. sizes[i]
// is host i's element count.
func CostTreeAllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 {
		return 0
	}
	start := t
	// acc[i] is the element total host i has accumulated so far.
	acc := make([]int, world)
	copy(acc, sizes)
	for span := 1; span < world; span *= 2 {
		var xs []xfer
		for i := span; i < world; i += 2 * span {
			// Host i ships its accumulated block to i-span.
			if acc[i] > 0 {
				xs = append(xs, xfer{hosts[i], hosts[i-span], wire.MessageBytes(acc[i])})
			}
			acc[i-span] += acc[i]
			acc[i] = 0
		}
		t += concurrentStep(f, xs, t)
	}
	var total int
	for _, s := range sizes {
		total += s
	}
	t += CostBinomialBroadcast(f, hosts, 0, wire.MessageBytes(total), t)
	return t - start
}

// --- hierarchical ------------------------------------------------------------

// hierarchicalAlgorithm is the two-level, topology-aware pattern: hosts are
// grouped into racks by their attached switch (netsim.Topology structure,
// not configuration), heavy intra-rack traffic stays on fast edge links,
// and only one rack-aggregated stream per collective crosses the bottleneck
// inter-switch fabric. On a single-rack (flat) topology every phase
// degenerates and the pattern falls back to the flat ring.
type hierarchicalAlgorithm struct{}

func (hierarchicalAlgorithm) Name() string { return "hierarchical" }

func (hierarchicalAlgorithm) Description() string {
	return "two-level rack-aware aggregation: intra-rack rings, leaders-only across the bottleneck"
}

// Racks groups host ranks by attached switch, in first-appearance order;
// rank order is preserved inside each rack, and a host with no switch
// neighbor forms a singleton rack. The first member of each rack is its
// leader.
func Racks(topo *netsim.Topology, hosts []netsim.NodeID) [][]int {
	var order []netsim.NodeID
	byKey := map[netsim.NodeID][]int{}
	for rank, h := range hosts {
		key := h // singleton rack for switchless hosts
		if sw, ok := topo.AttachedSwitch(h); ok {
			key = sw
		}
		if _, seen := byKey[key]; !seen {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], rank)
	}
	racks := make([][]int, len(order))
	for i, key := range order {
		racks[i] = byKey[key]
	}
	return racks
}

func (hierarchicalAlgorithm) AllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	return CostHierarchicalAllReduce(f, hosts, n, wire, t)
}

func (hierarchicalAlgorithm) AllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	return CostHierarchicalAllGather(f, hosts, sizes, wire, t)
}

func (hierarchicalAlgorithm) Broadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64 {
	return CostHierarchicalBroadcast(f, hosts, root, msgBytes, t)
}

// rackHosts maps a rack's rank indices to its fabric hosts.
func rackHosts(hosts []netsim.NodeID, rack []int) []netsim.NodeID {
	out := make([]netsim.NodeID, len(rack))
	for i, r := range rack {
		out[i] = hosts[r]
	}
	return out
}

// leaders returns each rack's leader host (its first member).
func leaders(hosts []netsim.NodeID, racks [][]int) []netsim.NodeID {
	out := make([]netsim.NodeID, len(racks))
	for i, rack := range racks {
		out[i] = hosts[rack[0]]
	}
	return out
}

// CostHierarchicalAllReduce prices the two-level all-reduce of n elements:
//
//  1. intra-rack ring reduce-scatter, then the scattered chunks converge on
//     the rack leader (serialized on the leader's edge link — the same
//     incast model as the PS baseline, but confined to one fast rack);
//  2. inter-rack ring all-reduce of the rack sums across the leaders — the
//     only phase that crosses the bottleneck inter-switch links;
//  3. intra-rack binomial broadcast of the global sum from each leader.
//
// Racks proceed concurrently within phases 1 and 3 (their edge links are
// disjoint), so each phase costs the maximum over racks. A single-rack
// topology has no inter-rack phase and no rack structure worth paying for,
// so it falls back to the flat ring.
func CostHierarchicalAllReduce(f *netsim.Fabric, hosts []netsim.NodeID, n int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 || n == 0 {
		return 0
	}
	racks := Racks(f.Topo, hosts)
	if len(racks) <= 1 {
		return CostRingAllReduce(f, hosts, n, wire, t)
	}
	start := t

	// Phase 1: per-rack reduce-scatter + chunk gather onto the leader.
	var phase float64
	for _, rack := range racks {
		m := len(rack)
		if m <= 1 {
			continue
		}
		rh := rackHosts(hosts, rack)
		rt := t
		bytes := make([]float64, m)
		for s := 0; s < m-1; s++ {
			for i := 0; i < m; i++ {
				from, to := chunkRange(((i-s)%m+m)%m, n, m)
				bytes[i] = wire.MessageBytes(to - from)
			}
			rt += ringStep(f, rh, bytes, rt)
		}
		// Gather the scattered rack-sum chunks to the leader; ingress shares
		// the leader's edge link, so the transfers serialize.
		for i := 1; i < m; i++ {
			from, to := chunkRange(i, n, m)
			if to > from {
				rt += transferOrPanic(f, rh[i], rh[0], wire.MessageBytes(to-from), rt)
			}
		}
		if rt-t > phase {
			phase = rt - t
		}
	}
	t += phase

	// Phase 2: ring all-reduce of the full rack sums across leaders.
	t += CostRingAllReduce(f, leaders(hosts, racks), n, wire, t)

	// Phase 3: leaders broadcast the global sum inside their racks.
	phase = 0
	msg := wire.MessageBytes(n)
	for _, rack := range racks {
		if len(rack) <= 1 {
			continue
		}
		if dt := CostBinomialBroadcast(f, rackHosts(hosts, rack), 0, msg, t); dt > phase {
			phase = dt
		}
	}
	t += phase
	return t - start
}

// CostHierarchicalAllGather prices the two-level all-gather: per-rack
// payloads converge on the leader (serialized edge-link ingress), leaders
// ring-all-gather their rack aggregates across the bottleneck, and each
// leader broadcasts the full concatenation inside its rack.
func CostHierarchicalAllGather(f *netsim.Fabric, hosts []netsim.NodeID, sizes []int, wire WireFormat, t float64) float64 {
	world := len(hosts)
	if world <= 1 {
		return 0
	}
	racks := Racks(f.Topo, hosts)
	if len(racks) <= 1 {
		return CostRingAllGather(f, hosts, sizes, wire, t)
	}
	start := t

	// Phase 1: gather member payloads onto each rack leader.
	var phase float64
	rackTotals := make([]int, len(racks))
	for ri, rack := range racks {
		rt := t
		total := sizes[rack[0]]
		for _, r := range rack[1:] {
			if sizes[r] > 0 {
				rt += transferOrPanic(f, hosts[r], hosts[rack[0]], wire.MessageBytes(sizes[r]), rt)
			}
			total += sizes[r]
		}
		rackTotals[ri] = total
		if rt-t > phase {
			phase = rt - t
		}
	}
	t += phase

	// Phase 2: leaders exchange rack aggregates in a ring.
	t += CostRingAllGather(f, leaders(hosts, racks), rackTotals, wire, t)

	// Phase 3: broadcast the concatenation of everything inside each rack.
	var grand int
	for _, s := range sizes {
		grand += s
	}
	phase = 0
	msg := wire.MessageBytes(grand)
	for _, rack := range racks {
		if len(rack) <= 1 {
			continue
		}
		if dt := CostBinomialBroadcast(f, rackHosts(hosts, rack), 0, msg, t); dt > phase {
			phase = dt
		}
	}
	t += phase
	return t - start
}

// CostHierarchicalBroadcast prices the two-level broadcast: the root hands
// the message to its rack leader if it is not one, the leaders run a
// binomial broadcast among themselves (one bottleneck crossing per rack),
// and each leader fans out inside its rack concurrently.
func CostHierarchicalBroadcast(f *netsim.Fabric, hosts []netsim.NodeID, root int, msgBytes float64, t float64) float64 {
	world := len(hosts)
	if world <= 1 || msgBytes <= 0 {
		return 0
	}
	racks := Racks(f.Topo, hosts)
	if len(racks) <= 1 {
		return CostBinomialBroadcast(f, hosts, root, msgBytes, t)
	}
	start := t
	rootRack := 0
	for ri, rack := range racks {
		for _, r := range rack {
			if r == root {
				rootRack = ri
			}
		}
	}
	if racks[rootRack][0] != root {
		t += transferOrPanic(f, hosts[root], hosts[racks[rootRack][0]], msgBytes, t)
	}
	t += CostBinomialBroadcast(f, leaders(hosts, racks), rootRack, msgBytes, t)
	var phase float64
	for _, rack := range racks {
		if len(rack) <= 1 {
			continue
		}
		if dt := CostBinomialBroadcast(f, rackHosts(hosts, rack), 0, msgBytes, t); dt > phase {
			phase = dt
		}
	}
	t += phase
	return t - start
}
