package data

import "testing"

func TestSplitSharesPrototypes(t *testing.T) {
	full := Generate(CIFAR10Like(200, 9))
	train, test := Split(full, 50)
	if train.Len() != 150 || test.Len() != 50 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Views share storage with the parent.
	if &train.Images.Data()[0] != &full.Images.Data()[0] {
		t.Fatal("train split must view the parent storage")
	}
	// Class balance holds on both sides (labels cycle round-robin and both
	// sizes are multiples of the class count).
	counts := make([]int, test.Classes)
	for _, l := range test.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 5 {
			t.Fatalf("test class %d has %d samples, want 5", c, n)
		}
	}
}

func TestSplitInvalidSizesPanic(t *testing.T) {
	ds := Generate(CIFAR10Like(20, 1))
	for _, n := range []int{0, 20, 25} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%d) should panic", n)
				}
			}()
			Split(ds, n)
		}()
	}
}

func TestCIFAR100LikeShape(t *testing.T) {
	ds := Generate(CIFAR100Like(100, 3))
	if ds.Classes != 20 {
		t.Fatalf("CIFAR100Like classes %d, want 20", ds.Classes)
	}
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		seen[l] = true
	}
	if len(seen) != 20 {
		t.Fatalf("only %d distinct classes generated", len(seen))
	}
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Classes: 1, Samples: 10, Channels: 3, Size: 8})
}
