// Package data provides the synthetic image-classification datasets that
// stand in for CIFAR-10/CIFAR-100 in the PacTrain reproduction, plus the
// worker sharding machinery that mirrors a DistributedSampler.
//
// Each dataset is generated deterministically from a seed: every class gets
// a set of random prototype textures, and samples are noisy mixtures of
// their class prototypes. A difficulty knob (noise scale) controls how many
// epochs models need to converge, which is what the paper's time-to-accuracy
// experiments measure. Because the task is learnable but not trivial, lossy
// gradient compression shows the same qualitative convergence penalties the
// paper reports on CIFAR.
package data

import (
	"fmt"

	"pactrain/internal/tensor"
)

// Dataset is an in-memory labelled image set with CHW float32 samples.
type Dataset struct {
	Name     string
	Images   *tensor.Tensor // (N, C, H, W)
	Labels   []int
	Classes  int
	Channels int
	Size     int // spatial H == W
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Config controls synthetic dataset generation.
type Config struct {
	Name       string
	Classes    int
	Samples    int
	Channels   int
	Size       int
	Noise      float64 // per-pixel Gaussian noise std; higher is harder
	Prototypes int     // prototypes per class; higher is harder
	Seed       uint64
}

// CIFAR10Like returns the default 10-class configuration used across the
// experiment harness. The difficulty knobs are calibrated so a lite model
// crosses ~80% accuracy after a few epochs — far from instant, far from
// hopeless — which is the regime where the paper's TTA comparisons are
// informative.
func CIFAR10Like(samples int, seed uint64) Config {
	return Config{Name: "cifar10-like", Classes: 10, Samples: samples,
		Channels: 3, Size: 16, Noise: 1.0, Prototypes: 4, Seed: seed}
}

// CIFAR100Like returns a harder 100-class-style configuration (reduced to 20
// classes to keep lite-model heads small while preserving the many-class
// difficulty profile).
func CIFAR100Like(samples int, seed uint64) Config {
	return Config{Name: "cifar100-like", Classes: 20, Samples: samples,
		Channels: 3, Size: 16, Noise: 1.2, Prototypes: 4, Seed: seed}
}

// Generate synthesizes a dataset from the configuration.
func Generate(cfg Config) *Dataset {
	if cfg.Classes <= 1 || cfg.Samples <= 0 || cfg.Channels <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	if cfg.Prototypes <= 0 {
		cfg.Prototypes = 1
	}
	r := tensor.NewRNG(cfg.Seed)
	pix := cfg.Channels * cfg.Size * cfg.Size

	// Class prototypes: smooth random textures so convolutional models have
	// localized structure to detect.
	protos := make([][][]float32, cfg.Classes)
	for c := range protos {
		protos[c] = make([][]float32, cfg.Prototypes)
		for p := range protos[c] {
			protos[c][p] = smoothTexture(r, cfg.Channels, cfg.Size)
		}
	}

	images := tensor.New(cfg.Samples, cfg.Channels, cfg.Size, cfg.Size)
	labels := make([]int, cfg.Samples)
	id := images.Data()
	for i := 0; i < cfg.Samples; i++ {
		cls := i % cfg.Classes // balanced classes
		labels[i] = cls
		proto := protos[cls][r.Intn(cfg.Prototypes)]
		brightness := float32(1 + 0.2*(r.Float64()-0.5))
		dst := id[i*pix : (i+1)*pix]
		for j := 0; j < pix; j++ {
			dst[j] = proto[j]*brightness + float32(r.NormFloat64()*cfg.Noise)
		}
	}
	return &Dataset{Name: cfg.Name, Images: images, Labels: labels,
		Classes: cfg.Classes, Channels: cfg.Channels, Size: cfg.Size}
}

// smoothTexture builds a low-frequency random image by box-blurring white
// noise, giving each class a spatially structured signature.
func smoothTexture(r *tensor.RNG, channels, size int) []float32 {
	pix := channels * size * size
	raw := make([]float32, pix)
	for i := range raw {
		raw[i] = float32(r.NormFloat64())
	}
	out := make([]float32, pix)
	for c := 0; c < channels; c++ {
		base := c * size * size
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				var s float32
				var n float32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= size || xx < 0 || xx >= size {
							continue
						}
						s += raw[base+yy*size+xx]
						n++
					}
				}
				out[base+y*size+x] = s / n * 2
			}
		}
	}
	return out
}

// Split partitions a dataset into head (first n−testN samples) and tail
// (last testN samples) views sharing the class prototypes — the correct way
// to obtain a held-out test set, since generating a second dataset from a
// different seed would draw different prototypes and make evaluation
// meaningless. Because labels cycle round-robin, both splits stay
// class-balanced when sizes are multiples of the class count.
func Split(ds *Dataset, testN int) (train, test *Dataset) {
	if testN <= 0 || testN >= ds.Len() {
		panic(fmt.Sprintf("data: invalid split size %d of %d", testN, ds.Len()))
	}
	trainN := ds.Len() - testN
	pix := ds.Channels * ds.Size * ds.Size
	mk := func(from, n int) *Dataset {
		img := tensor.FromSlice(ds.Images.Data()[from*pix:(from+n)*pix], n, ds.Channels, ds.Size, ds.Size)
		return &Dataset{Name: ds.Name, Images: img, Labels: ds.Labels[from : from+n],
			Classes: ds.Classes, Channels: ds.Channels, Size: ds.Size}
	}
	return mk(0, trainN), mk(trainN, testN)
}

// Shard is a worker's view of a dataset: the subset of sample indices
// assigned to one rank, in round-robin order, mirroring PyTorch's
// DistributedSampler so that each rank sees a disjoint, balanced partition.
type Shard struct {
	ds      *Dataset
	indices []int
}

// ShardDataset returns rank's shard out of worldSize shards.
func ShardDataset(ds *Dataset, rank, worldSize int) *Shard {
	if rank < 0 || rank >= worldSize {
		panic(fmt.Sprintf("data: rank %d out of range for world size %d", rank, worldSize))
	}
	var idx []int
	for i := rank; i < ds.Len(); i += worldSize {
		idx = append(idx, i)
	}
	return &Shard{ds: ds, indices: idx}
}

// Len returns the number of samples in the shard.
func (s *Shard) Len() int { return len(s.indices) }

// Batches returns an iterator over mini-batches of up to batchSize samples,
// optionally shuffled with the given RNG (pass nil for sequential order).
// Each call to the returned function yields the next batch; ok is false
// after the last batch.
func (s *Shard) Batches(batchSize int, rng *tensor.RNG) func() (x *tensor.Tensor, labels []int, ok bool) {
	order := append([]int(nil), s.indices...)
	if rng != nil {
		perm := rng.Perm(len(order))
		shuffled := make([]int, len(order))
		for i, p := range perm {
			shuffled[i] = order[p]
		}
		order = shuffled
	}
	pix := s.ds.Channels * s.ds.Size * s.ds.Size
	src := s.ds.Images.Data()
	pos := 0
	return func() (*tensor.Tensor, []int, bool) {
		if pos >= len(order) {
			return nil, nil, false
		}
		end := pos + batchSize
		if end > len(order) {
			end = len(order)
		}
		n := end - pos
		x := tensor.New(n, s.ds.Channels, s.ds.Size, s.ds.Size)
		labels := make([]int, n)
		xd := x.Data()
		for i, sample := range order[pos:end] {
			copy(xd[i*pix:(i+1)*pix], src[sample*pix:(sample+1)*pix])
			labels[i] = s.ds.Labels[sample]
		}
		pos = end
		return x, labels, true
	}
}

// Batch materializes samples [from, from+n) of the full dataset, used for
// evaluation.
func (d *Dataset) Batch(from, n int) (*tensor.Tensor, []int) {
	if from+n > d.Len() {
		n = d.Len() - from
	}
	pix := d.Channels * d.Size * d.Size
	x := tensor.New(n, d.Channels, d.Size, d.Size)
	labels := make([]int, n)
	xd, src := x.Data(), d.Images.Data()
	for i := 0; i < n; i++ {
		copy(xd[i*pix:(i+1)*pix], src[(from+i)*pix:(from+i+1)*pix])
		labels[i] = d.Labels[from+i]
	}
	return x, labels
}
