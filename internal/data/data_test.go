package data

import (
	"testing"

	"pactrain/internal/tensor"
)

func TestGenerateShapes(t *testing.T) {
	ds := Generate(CIFAR10Like(100, 1))
	if ds.Len() != 100 {
		t.Fatalf("Len = %d", ds.Len())
	}
	sh := ds.Images.Shape()
	if sh[0] != 100 || sh[1] != 3 || sh[2] != 16 || sh[3] != 16 {
		t.Fatalf("image shape %v", sh)
	}
	for _, l := range ds.Labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(CIFAR10Like(50, 7))
	b := Generate(CIFAR10Like(50, 7))
	for i := range a.Images.Data() {
		if a.Images.Data()[i] != b.Images.Data()[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := Generate(CIFAR10Like(50, 8))
	diff := false
	for i := range a.Images.Data() {
		if a.Images.Data()[i] != c.Images.Data()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should generate different data")
	}
}

func TestClassBalance(t *testing.T) {
	ds := Generate(CIFAR10Like(1000, 3))
	counts := make([]int, 10)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestShardsDisjointAndComplete(t *testing.T) {
	ds := Generate(CIFAR10Like(101, 2))
	world := 4
	seen := map[int]int{}
	total := 0
	for rank := 0; rank < world; rank++ {
		s := ShardDataset(ds, rank, world)
		total += s.Len()
		for _, i := range s.indices {
			seen[i]++
		}
	}
	if total != 101 {
		t.Fatalf("shards cover %d samples, want 101", total)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d appears %d times", i, n)
		}
	}
}

func TestShardRankValidation(t *testing.T) {
	ds := Generate(CIFAR10Like(10, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid rank")
		}
	}()
	ShardDataset(ds, 4, 4)
}

func TestBatchesCoverShard(t *testing.T) {
	ds := Generate(CIFAR10Like(64, 5))
	s := ShardDataset(ds, 1, 2) // 32 samples
	next := s.Batches(10, nil)
	total := 0
	batches := 0
	for {
		x, labels, ok := next()
		if !ok {
			break
		}
		if x.Dim(0) != len(labels) {
			t.Fatal("batch size mismatch with labels")
		}
		total += len(labels)
		batches++
	}
	if total != 32 {
		t.Fatalf("batches covered %d samples, want 32", total)
	}
	if batches != 4 { // 10+10+10+2
		t.Fatalf("batches = %d, want 4", batches)
	}
}

func TestBatchesShuffleDeterministic(t *testing.T) {
	ds := Generate(CIFAR10Like(40, 5))
	s := ShardDataset(ds, 0, 1)
	collect := func(seed uint64) []int {
		next := s.Batches(40, tensor.NewRNG(seed))
		_, labels, _ := next()
		return labels
	}
	a, b := collect(9), collect(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same shuffle seed must give same order")
		}
	}
	c := collect(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different shuffle seeds should differ")
	}
}

func TestDatasetBatchBounds(t *testing.T) {
	ds := Generate(CIFAR10Like(10, 1))
	x, labels := ds.Batch(8, 5)
	if x.Dim(0) != 2 || len(labels) != 2 {
		t.Fatalf("Batch clamping wrong: %v, %d labels", x.Shape(), len(labels))
	}
}

// TestTaskIsLearnable verifies the synthetic data carries class signal: the
// class-mean images must be better separated than the within-class noise
// floor (otherwise no model could learn and every TTA experiment would be
// vacuous).
func TestTaskIsLearnable(t *testing.T) {
	ds := Generate(CIFAR10Like(500, 11))
	pix := ds.Channels * ds.Size * ds.Size
	means := make([][]float64, ds.Classes)
	counts := make([]int, ds.Classes)
	for c := range means {
		means[c] = make([]float64, pix)
	}
	id := ds.Images.Data()
	for i, l := range ds.Labels {
		counts[l]++
		for j := 0; j < pix; j++ {
			means[l][j] += float64(id[i*pix+j])
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	// Distance between class 0 and 1 means should clearly exceed zero.
	var dist float64
	for j := 0; j < pix; j++ {
		d := means[0][j] - means[1][j]
		dist += d * d
	}
	if dist < 1 {
		t.Fatalf("class means nearly identical (dist²=%v); task unlearnable", dist)
	}
}
