package prune

import (
	"math"
	"testing"
	"testing/quick"

	"pactrain/internal/nn"
	"pactrain/internal/tensor"
)

func testModel(seed uint64) *nn.Model {
	return nn.NewMLP(nn.LiteConfig{InChannels: 1, ImageSize: 4, Classes: 3, Seed: seed}, 16)
}

func TestNewMaskKeepsEverything(t *testing.T) {
	m := testModel(1)
	mk := NewMask(m)
	if mk.Sparsity() != 0 {
		t.Fatalf("fresh mask sparsity %v", mk.Sparsity())
	}
	kept, total := mk.Count()
	if kept != total || total != m.NumParameters() {
		t.Fatalf("count %d/%d vs %d params", kept, total, m.NumParameters())
	}
}

func TestGlobalMagnitudeRatio(t *testing.T) {
	m := testModel(2)
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		mk, err := MagnitudePrune(m, ratio, GlobalMagnitude)
		if err != nil {
			t.Fatal(err)
		}
		// Only weight matrices are prunable; sparsity is measured over all
		// params, so compute the prunable-only sparsity.
		prunedPrunable, totalPrunable := 0, 0
		for _, p := range m.Params() {
			if !prunable(p) {
				continue
			}
			for _, k := range mk.Keep[p.Name] {
				totalPrunable++
				if !k {
					prunedPrunable++
				}
			}
		}
		got := float64(prunedPrunable) / float64(totalPrunable)
		if math.Abs(got-ratio) > 0.02 {
			t.Fatalf("ratio %v: pruned %v of prunable weights", ratio, got)
		}
	}
}

func TestGlobalMagnitudePrunesSmallest(t *testing.T) {
	m := testModel(3)
	mk, err := MagnitudePrune(m, 0.5, GlobalMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	// Every pruned weight must be ≤ every kept weight in magnitude
	// (within the shared global threshold).
	var maxPruned, minKept float32 = 0, math.MaxFloat32
	for _, p := range m.Params() {
		if !prunable(p) {
			continue
		}
		keep := mk.Keep[p.Name]
		for i, v := range p.W.Data() {
			a := abs32(v)
			if keep[i] {
				if a < minKept {
					minKept = a
				}
			} else if a > maxPruned {
				maxPruned = a
			}
		}
	}
	if maxPruned > minKept {
		t.Fatalf("pruned weight %v exceeds kept weight %v", maxPruned, minKept)
	}
}

func TestLayerMagnitudeIndependentPerLayer(t *testing.T) {
	m := testModel(4)
	mk, err := MagnitudePrune(m, 0.5, LayerMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Params() {
		if !prunable(p) {
			continue
		}
		pruned := 0
		for _, k := range mk.Keep[p.Name] {
			if !k {
				pruned++
			}
		}
		got := float64(pruned) / float64(p.NumElements())
		if math.Abs(got-0.5) > 0.05 {
			t.Fatalf("param %s pruned %v, want ≈0.5", p.Name, got)
		}
	}
}

func TestBiasesExemptFromPruning(t *testing.T) {
	m := testModel(5)
	mk, err := MagnitudePrune(m, 0.9, GlobalMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Params() {
		if prunable(p) {
			continue
		}
		for i, k := range mk.Keep[p.Name] {
			if !k {
				t.Fatalf("non-prunable param %s pruned at %d", p.Name, i)
			}
		}
	}
}

func TestApplyZeroesWeights(t *testing.T) {
	m := testModel(6)
	mk, _ := MagnitudePrune(m, 0.5, GlobalMagnitude)
	mk.Apply(m)
	for _, p := range m.Params() {
		keep := mk.Keep[p.Name]
		for i, v := range p.W.Data() {
			if !keep[i] && v != 0 {
				t.Fatalf("pruned weight %s[%d] = %v, want 0", p.Name, i, v)
			}
		}
	}
}

func TestInvalidRatio(t *testing.T) {
	m := testModel(7)
	if _, err := MagnitudePrune(m, 1.0, GlobalMagnitude); err == nil {
		t.Fatal("ratio 1.0 must be rejected")
	}
	if _, err := MagnitudePrune(m, -0.1, GlobalMagnitude); err == nil {
		t.Fatal("negative ratio must be rejected")
	}
}

func TestDeterministicAcrossReplicas(t *testing.T) {
	a, b := testModel(8), testModel(8)
	ma, _ := MagnitudePrune(a, 0.6, GlobalMagnitude)
	mb, _ := MagnitudePrune(b, 0.6, GlobalMagnitude)
	for name, ka := range ma.Keep {
		kb := mb.Keep[name]
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("masks diverge at %s[%d]", name, i)
			}
		}
	}
}

// TestGraSPQuadratic validates the HVP finite-difference machinery on a
// model where the Hessian is known: for loss L = ½‖Wx‖² summed over a
// batch, the score of Eq. 4 is computable and must correlate strongly with
// the analytic value. Here we simply verify the scores are finite, not all
// equal, and that GraSPPrune respects the ratio.
func TestGraSPQuadratic(t *testing.T) {
	m := testModel(9)
	r := tensor.NewRNG(4)
	x := tensor.Randn(r, 1, 8, 1, 4, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	computeGrads := func() {
		m.ZeroGrad()
		out := m.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(out, labels)
		m.Backward(grad)
	}
	before := make(map[string][]float32)
	for _, p := range m.Params() {
		before[p.Name] = append([]float32(nil), p.W.Data()...)
	}
	scores := GraSPScores(m, computeGrads)
	// Weights must be restored exactly enough to continue training.
	for _, p := range m.Params() {
		for i, v := range p.W.Data() {
			if math.Abs(float64(v-before[p.Name][i])) > 1e-3 {
				t.Fatalf("GraSP did not restore %s[%d]: %v vs %v", p.Name, i, v, before[p.Name][i])
			}
		}
	}
	distinct := map[float64]bool{}
	for _, s := range scores {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite GraSP score")
			}
			distinct[v] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatal("GraSP scores suspiciously uniform")
	}

	mk, err := GraSPPrune(m, 0.5, computeGrads)
	if err != nil {
		t.Fatal(err)
	}
	pruned, total := 0, 0
	for _, p := range m.Params() {
		if !prunable(p) {
			continue
		}
		for _, k := range mk.Keep[p.Name] {
			total++
			if !k {
				pruned++
			}
		}
	}
	got := float64(pruned) / float64(total)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("GraSP pruned %v, want ≈0.5", got)
	}
}

func TestFilterPruneRemovesWholeRows(t *testing.T) {
	cfg := nn.DefaultLiteConfig(10, 3)
	m := nn.NewVGGLite(cfg)
	mk, err := FilterPrune(m, 0.25, L2)
	if err != nil {
		t.Fatal(err)
	}
	// For each rank-2 weight, every row must be fully kept or fully pruned.
	anyPruned := false
	for _, p := range m.Params() {
		if p.W.Rank() != 2 || p.W.Dim(0) < 2 {
			continue
		}
		out, in := p.W.Dim(0), p.W.Dim(1)
		keep := mk.Keep[p.Name]
		for f := 0; f < out; f++ {
			first := keep[f*in]
			for i := f*in + 1; i < (f+1)*in; i++ {
				if keep[i] != first {
					t.Fatalf("param %s filter %d partially pruned", p.Name, f)
				}
			}
			if !first {
				anyPruned = true
			}
		}
	}
	if !anyPruned {
		t.Fatal("FilterPrune(0.25) pruned nothing")
	}
}

func TestSnapshotRewind(t *testing.T) {
	m := testModel(10)
	snap := TakeSnapshot(m)
	orig := append([]float32(nil), m.Params()[0].W.Data()...)
	// Perturb.
	for _, p := range m.Params() {
		p.W.Fill(7)
	}
	mk, _ := MagnitudePrune(m, 0, GlobalMagnitude) // all-keep mask
	snap.Rewind(m, mk)
	for i, v := range m.Params()[0].W.Data() {
		if v != orig[i] {
			t.Fatalf("rewind mismatch at %d", i)
		}
	}
	// Rewind with a pruning mask applies the mask after restoring.
	mk2, _ := MagnitudePrune(m, 0.5, GlobalMagnitude)
	snap.Rewind(m, mk2)
	for _, p := range m.Params() {
		keep := mk2.Keep[p.Name]
		for i, v := range p.W.Data() {
			if !keep[i] && v != 0 {
				t.Fatal("rewind did not re-apply mask")
			}
		}
	}
}

// Property: higher pruning ratios produce monotonically sparser masks.
func TestPropertyRatioMonotone(t *testing.T) {
	m := testModel(11)
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		r1 := 0.1 + 0.4*r.Float64()
		r2 := r1 + 0.3
		m1, err1 := MagnitudePrune(m, r1, GlobalMagnitude)
		m2, err2 := MagnitudePrune(m, r2, GlobalMagnitude)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2.Sparsity() >= m1.Sparsity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruned masks are subsets — a weight pruned at a low ratio stays
// pruned at any higher ratio (threshold monotonicity of magnitude pruning).
func TestPropertyMaskNesting(t *testing.T) {
	m := testModel(12)
	lo, _ := MagnitudePrune(m, 0.3, GlobalMagnitude)
	hi, _ := MagnitudePrune(m, 0.7, GlobalMagnitude)
	for name, keepLo := range lo.Keep {
		keepHi := hi.Keep[name]
		for i := range keepLo {
			if !keepLo[i] && keepHi[i] {
				t.Fatalf("weight %s[%d] pruned at 0.3 but kept at 0.7", name, i)
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	if GlobalMagnitude.String() != "global-magnitude" ||
		LayerMagnitude.String() != "layer-magnitude" ||
		GraSP.String() != "grasp" {
		t.Fatal("Method.String broken")
	}
}
