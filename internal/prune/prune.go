// Package prune implements the neural-network pruning algorithms PacTrain
// builds on (§II-B, §III): global and layerwise unstructured magnitude
// pruning, GraSP gradient-flow scores (Eq. 4), L1/L2 filter-norm structured
// pruning, and lottery-ticket rewinding. A pruning pass produces a Mask —
// per-parameter boolean keep sets — which the GSE layer then enforces on
// gradients every iteration so the sparsity pattern stays global knowledge
// across distributed workers.
package prune

import (
	"fmt"
	"math"
	"sort"

	"pactrain/internal/nn"
	"pactrain/internal/tensor"
)

// Mask records, for every parameter, which coordinates are retained.
type Mask struct {
	Keep map[string][]bool
}

// NewMask allocates an all-keep mask covering the model's parameters.
func NewMask(m *nn.Model) *Mask {
	keep := make(map[string][]bool, len(m.Params()))
	for _, p := range m.Params() {
		k := make([]bool, p.NumElements())
		for i := range k {
			k[i] = true
		}
		keep[p.Name] = k
	}
	return &Mask{Keep: keep}
}

// Apply zeroes the pruned weights of the model in place.
func (mk *Mask) Apply(m *nn.Model) {
	for _, p := range m.Params() {
		keep, ok := mk.Keep[p.Name]
		if !ok {
			continue
		}
		w := p.W.Data()
		for i := range w {
			if !keep[i] {
				w[i] = 0
			}
		}
	}
}

// Sparsity returns the pruned fraction across all masked parameters.
func (mk *Mask) Sparsity() float64 {
	total, pruned := 0, 0
	for _, keep := range mk.Keep {
		for _, k := range keep {
			total++
			if !k {
				pruned++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pruned) / float64(total)
}

// Count returns (kept, total) coordinates.
func (mk *Mask) Count() (kept, total int) {
	for _, keep := range mk.Keep {
		for _, k := range keep {
			total++
			if k {
				kept++
			}
		}
	}
	return kept, total
}

// Of returns the keep slice for a parameter name (nil if absent).
func (mk *Mask) Of(name string) []bool { return mk.Keep[name] }

// prunable reports whether a parameter participates in unstructured
// pruning. Following standard practice (and the paper's use of unstructured
// weight pruning), biases and normalization affine parameters are exempt:
// they are tiny, and pruning them destabilizes training.
func prunable(p *nn.Parameter) bool {
	return p.W.Len() > 1 && p.W.Rank() >= 2
}

// Method selects the scoring criterion for unstructured pruning.
type Method int

// Supported pruning criteria.
const (
	// GlobalMagnitude ranks all prunable weights together by |w|.
	GlobalMagnitude Method = iota
	// LayerMagnitude applies the ratio within each parameter tensor.
	LayerMagnitude
	// GraSP ranks by the gradient-flow preservation score −θ⊙(H∇l).
	GraSP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case GlobalMagnitude:
		return "global-magnitude"
	case LayerMagnitude:
		return "layer-magnitude"
	case GraSP:
		return "grasp"
	}
	return "unknown"
}

// MagnitudePrune builds a mask that prunes the given fraction of prunable
// weights by magnitude. With GlobalMagnitude the threshold is shared across
// layers; with LayerMagnitude each tensor is pruned independently. The
// returned mask is deterministic given the weights, so identically
// initialized replicas derive identical masks without communication.
func MagnitudePrune(m *nn.Model, ratio float64, method Method) (*Mask, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("prune: ratio %v out of [0,1)", ratio)
	}
	mask := NewMask(m)
	if ratio == 0 {
		return mask, nil
	}
	switch method {
	case GlobalMagnitude:
		var all []float32
		for _, p := range m.Params() {
			if !prunable(p) {
				continue
			}
			for _, v := range p.W.Data() {
				all = append(all, abs32(v))
			}
		}
		if len(all) == 0 {
			return mask, nil
		}
		th := kthValue(all, int(float64(len(all))*ratio))
		for _, p := range m.Params() {
			if !prunable(p) {
				continue
			}
			keep := mask.Keep[p.Name]
			for i, v := range p.W.Data() {
				keep[i] = abs32(v) > th
			}
		}
	case LayerMagnitude:
		for _, p := range m.Params() {
			if !prunable(p) {
				continue
			}
			w := p.W.Data()
			mags := make([]float32, len(w))
			for i, v := range w {
				mags[i] = abs32(v)
			}
			th := kthValue(mags, int(float64(len(w))*ratio))
			keep := mask.Keep[p.Name]
			for i, v := range w {
				keep[i] = abs32(v) > th
			}
		}
	default:
		return nil, fmt.Errorf("prune: MagnitudePrune does not support method %v", method)
	}
	return mask, nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// kthValue returns the k-th smallest value (0-based: k elements are ≤ the
// returned threshold). Values equal to the threshold are kept by the strict
// > comparison at the call sites, so ties err toward keeping weights.
func kthValue(vals []float32, k int) float32 {
	if k <= 0 {
		return -1 // keep everything (all magnitudes are ≥ 0 > -1)
	}
	if k >= len(vals) {
		k = len(vals) - 1
	}
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[k]
}

// GraSPScores computes the gradient-flow score of Eq. 4, S = −θ ⊙ (H∇l),
// for every prunable parameter. computeGrads must zero the model gradients
// and run one forward/backward pass on a fixed probe batch; it is invoked
// twice to form the Hessian-vector product by finite differences:
//
//	H∇l ≈ (∇l(θ + ε·∇l) − ∇l(θ)) / ε
//
// Keeping the probe batch identical across distributed workers makes the
// resulting mask identical everywhere without extra communication.
func GraSPScores(m *nn.Model, computeGrads func()) map[string][]float64 {
	params := m.Params()

	// First gradient at θ.
	computeGrads()
	g0 := make(map[string][]float32, len(params))
	var gnorm float64
	for _, p := range params {
		g := append([]float32(nil), p.Grad.Data()...)
		g0[p.Name] = g
		for _, v := range g {
			gnorm += float64(v) * float64(v)
		}
	}
	gnorm = math.Sqrt(gnorm)
	eps := 1e-2
	if gnorm > 0 {
		eps = 1e-2 / gnorm * math.Sqrt(float64(m.NumParameters()))
		if eps > 1 {
			eps = 1
		}
	}

	// Perturb θ ← θ + ε·g and recompute gradients.
	for _, p := range params {
		w := p.W.Data()
		g := g0[p.Name]
		for i := range w {
			w[i] += float32(eps) * g[i]
		}
	}
	computeGrads()

	scores := make(map[string][]float64, len(params))
	for _, p := range params {
		w := p.W.Data()
		g := g0[p.Name]
		g1 := p.Grad.Data()
		s := make([]float64, len(w))
		for i := range w {
			hv := (float64(g1[i]) - float64(g[i])) / eps
			theta := float64(w[i]) - eps*float64(g[i]) // original weight
			s[i] = -theta * hv
		}
		scores[p.Name] = s
		// Restore θ.
		for i := range w {
			w[i] -= float32(eps) * g[i]
		}
	}
	return scores
}

// GraSPPrune builds a mask that keeps the (1−ratio) fraction of prunable
// weights with the highest gradient-flow scores (retaining the parameters
// "critical for maintaining essential gradient directions", §III-D).
func GraSPPrune(m *nn.Model, ratio float64, computeGrads func()) (*Mask, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("prune: ratio %v out of [0,1)", ratio)
	}
	mask := NewMask(m)
	if ratio == 0 {
		return mask, nil
	}
	scores := GraSPScores(m, computeGrads)
	var all []float64
	for _, p := range m.Params() {
		if !prunable(p) {
			continue
		}
		all = append(all, scores[p.Name]...)
	}
	if len(all) == 0 {
		return mask, nil
	}
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * ratio)
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	th := sorted[k]
	for _, p := range m.Params() {
		if !prunable(p) {
			continue
		}
		keep := mask.Keep[p.Name]
		s := scores[p.Name]
		for i := range keep {
			keep[i] = s[i] > th
		}
	}
	return mask, nil
}

// FilterNorm selects the norm used by structured filter pruning.
type FilterNorm int

// Norm choices for FilterPrune.
const (
	L1 FilterNorm = iota
	L2
)

// FilterPrune builds a structured mask that removes whole convolution
// filters (rows of the (outC, inC·kh·kw) weight matrix) with the smallest
// L1/L2 norms [Li et al. 2017]. Non-convolutional parameters are left
// intact.
func FilterPrune(m *nn.Model, ratio float64, norm FilterNorm) (*Mask, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("prune: ratio %v out of [0,1)", ratio)
	}
	mask := NewMask(m)
	for _, p := range m.Params() {
		if p.W.Rank() != 2 || p.W.Dim(0) < 2 {
			continue
		}
		out, in := p.W.Dim(0), p.W.Dim(1)
		w := p.W.Data()
		norms := make([]float64, out)
		for f := 0; f < out; f++ {
			row := w[f*in : (f+1)*in]
			var s float64
			for _, v := range row {
				if norm == L1 {
					s += math.Abs(float64(v))
				} else {
					s += float64(v) * float64(v)
				}
			}
			norms[f] = s
		}
		order := make([]int, out)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return norms[order[a]] < norms[order[b]] })
		drop := int(float64(out) * ratio)
		keep := mask.Keep[p.Name]
		for _, f := range order[:drop] {
			for i := f * in; i < (f+1)*in; i++ {
				keep[i] = false
			}
		}
	}
	return mask, nil
}

// Snapshot stores a copy of the model weights, enabling lottery-ticket
// rewinding (train → prune → rewind to early weights → retrain sparse).
type Snapshot struct {
	weights map[string]*tensor.Tensor
}

// TakeSnapshot copies the current weights.
func TakeSnapshot(m *nn.Model) *Snapshot {
	s := &Snapshot{weights: make(map[string]*tensor.Tensor, len(m.Params()))}
	for _, p := range m.Params() {
		s.weights[p.Name] = p.W.Clone()
	}
	return s
}

// Rewind restores the snapshot weights, then re-applies the mask so the
// rewound network is the masked sub-network at its early-training values
// (the lottery-ticket procedure).
func (s *Snapshot) Rewind(m *nn.Model, mask *Mask) {
	for _, p := range m.Params() {
		if w, ok := s.weights[p.Name]; ok {
			p.W.CopyFrom(w)
		}
	}
	if mask != nil {
		mask.Apply(m)
	}
}
