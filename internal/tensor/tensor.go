// Package tensor implements the dense float32 tensor substrate used by the
// PacTrain reproduction: shape/stride bookkeeping, elementwise kernels,
// matrix multiplication, im2col-based convolution support, reductions, and a
// deterministic random number generator so every experiment is replayable
// bit-for-bit.
//
// The package is intentionally minimal but complete: it contains exactly the
// operations the neural-network layers in internal/nn need for analytic
// forward and backward passes, with no hidden global state. All tensors own
// their backing storage; views are explicit.
package tensor

import (
	"fmt"
	"math"
	"strings"

	"pactrain/internal/par"
)

// Tensor is a dense, row-major float32 tensor. The zero value is not usable;
// construct tensors with New, Zeros, Full, FromSlice, or the RNG helpers.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a tensor with zero dimensions is a scalar holding
// one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// Zeros is an alias for New, provided for readability at call sites that
// emphasize the initial value.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not retain it. It panics if the
// length does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing storage. Mutating it mutates the tensor; this is
// the intended mechanism for kernels and for the communication layer, which
// flattens gradients into buckets.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Offset(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Offset(idx...)] = v }

// Offset converts a multi-index into a flat offset, panicking on
// out-of-range indices.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view with a new shape sharing the same storage. The new
// shape must have the same volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Rebind repoints the tensor at data without copying; len(data) must equal
// the tensor's volume. It exists so reusable view headers (e.g. per-sample
// slices of a batch tensor) can be retargeted across train steps without
// allocating a new header per view.
func (t *Tensor) Rebind(data []float32) {
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Rebind length %d does not match shape %v", len(data), t.shape))
	}
	t.data = data
}

// Zero sets every element to zero in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus leading values) for
// debugging; it never prints more than eight elements.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n > show {
		fmt.Fprintf(&b, " … +%d", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// --- Elementwise operations -------------------------------------------------

// AddInto computes dst = a + b elementwise. All three must share volume.
func AddInto(dst, a, b *Tensor) {
	checkSameLen3(dst, a, b)
	d, x, y := dst.data, a.data, b.data
	for i := range d {
		d[i] = x[i] + y[i]
	}
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSameLen3(dst, a, b)
	d, x, y := dst.data, a.data, b.data
	for i := range d {
		d[i] = x[i] - y[i]
	}
}

// MulInto computes dst = a ⊙ b elementwise.
func MulInto(dst, a, b *Tensor) {
	checkSameLen3(dst, a, b)
	d, x, y := dst.data, a.data, b.data
	for i := range d {
		d[i] = x[i] * y[i]
	}
}

// Add returns a + b as a new tensor shaped like a.
func Add(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	AddInto(out, a, b)
	return out
}

// Sub returns a - b as a new tensor shaped like a.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	SubInto(out, a, b)
	return out
}

// Mul returns a ⊙ b as a new tensor shaped like a.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	MulInto(out, a, b)
	return out
}

// AxpyInto computes dst += alpha * src.
func AxpyInto(dst *Tensor, alpha float32, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic("tensor: Axpy volume mismatch")
	}
	d, s := dst.data, src.data
	for i := range d {
		d[i] += alpha * s[i]
	}
}

// ScaleInPlace multiplies every element of t by alpha.
func (t *Tensor) ScaleInPlace(alpha float32) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Apply replaces each element x with f(x) in place.
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

func checkSameLen3(a, b, c *Tensor) {
	if len(a.data) != len(b.data) || len(b.data) != len(c.data) {
		panic(fmt.Sprintf("tensor: elementwise volume mismatch %d/%d/%d", len(a.data), len(b.data), len(c.data)))
	}
}

// --- Reductions ---------------------------------------------------------

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element and its flat index. It panics on an empty
// tensor.
func (t *Tensor) Max() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Min returns the minimum element and its flat index.
func (t *Tensor) Min() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// AbsMax returns max(|x|) over all elements, 0 for an empty tensor.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of the flattened tensor.
func (t *Tensor) Norm1() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// CountNonZero returns the number of elements that are exactly non-zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements that are exactly zero, in [0,1].
func (t *Tensor) Sparsity() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return 1 - float64(t.CountNonZero())/float64(len(t.data))
}

// Dot returns the inner product of the flattened tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot volume mismatch")
	}
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// --- Linear algebra -------------------------------------------------------

// MatMul computes C = A × B for A of shape (m,k) and B of shape (k,n),
// returning a new (m,n) tensor. The kernel is blocked over the inner
// dimension with the j-loop innermost so it vectorizes well.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch (%d,%d)×(%d,%d)", m, k, k2, n))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// checkMatMulShapes panics with the offending shapes when dst/a/b are not a
// valid (m,n) = (m,k) × (k,n) triple after the requested transpositions.
func checkMatMulShapes(op string, dst, a, b *Tensor, m, k, k2, n int) {
	if dst.Rank() != 2 || a.Rank() != 2 || b.Rank() != 2 || k != k2 ||
		dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s shape mismatch: dst%v, a%v, b%v", op, dst.shape, a.shape, b.shape))
	}
}

// MatMulInto computes dst = A × B, accumulating into a zeroed dst. dst must
// have shape (m,n).
//
// The kernel is chunked over output rows via the par budget: each output
// element is still the ascending-p sum of a[i,p]·b[p,j] (with the a==0 skip),
// so results are bit-identical at every budget.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	checkMatMulShapes("MatMulInto", dst, a, b, m, k, b.shape[0], n)
	if par.PlanChunks(m, m*k*n) == 1 {
		matMulRows(dst.data, a.data, b.data, k, n, 0, m)
		return
	}
	ad, bd, cd := a.data, b.data, dst.data
	par.ForChunksWork(m, m*k*n, func(_, lo, hi int) {
		matMulRows(cd, ad, bd, k, n, lo, hi)
	})
}

// matMulRows computes output rows [lo,hi) of C = A × B, zeroing them first.
// Rows are disjoint between chunks, so chunking is bit-exact by construction.
func matMulRows(cd, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := cd[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := 0; p < k; p++ {
			av := ad[i*k+p]
			if av == 0 {
				continue
			}
			bp := bd[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes dst = Aᵀ × B for A of shape (k,m) and B of shape
// (k,n); dst must be (m,n). Used by Linear backward for weight gradients.
//
// Chunking is over output rows i (columns of A) with the p-loop kept outer
// and ascending inside each chunk, so every dst element accumulates its
// a[p,i]·b[p,j] terms in exactly the scalar order. Splitting the p-loop into
// per-chunk partial sums instead would change float association and break
// the byte-identity contract.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	checkMatMulShapes("MatMulTransAInto", dst, a, b, m, k, b.shape[0], n)
	if par.PlanChunks(m, m*k*n) == 1 {
		matMulTransARows(dst.data, a.data, b.data, k, m, n, 0, m)
		return
	}
	ad, bd, cd := a.data, b.data, dst.data
	par.ForChunksWork(m, m*k*n, func(_, lo, hi int) {
		matMulTransARows(cd, ad, bd, k, m, n, lo, hi)
	})
}

// matMulTransARows computes output rows [lo,hi) of C = Aᵀ × B, zeroing them
// first. lo=0, hi=m is exactly the scalar kernel.
func matMulTransARows(cd, ad, bd []float32, k, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := cd[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
	}
	for p := 0; p < k; p++ {
		ap := ad[p*m : (p+1)*m]
		bp := bd[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := cd[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = A × Bᵀ for A of shape (m,k) and B of shape
// (n,k); dst must be (m,n). Used by Linear backward for input gradients.
//
// The inner kernel register-blocks four B rows (output columns) per pass:
// each of the four accumulators is still a plain ascending-p dot product, so
// the blocking does not change any element's float evaluation order.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	checkMatMulShapes("MatMulTransBInto", dst, a, b, m, k, b.shape[1], n)
	if par.PlanChunks(m, m*k*n) == 1 {
		matMulTransBRows(dst.data, a.data, b.data, k, n, 0, m)
		return
	}
	ad, bd, cd := a.data, b.data, dst.data
	par.ForChunksWork(m, m*k*n, func(_, lo, hi int) {
		matMulTransBRows(cd, ad, bd, k, n, lo, hi)
	})
}

// matMulTransBRows computes output rows [lo,hi) of C = A × Bᵀ. Each output
// element is an independent dot product, so rows need no zeroing and chunking
// is trivially bit-exact.
func matMulTransBRows(cd, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := ad[i*k : (i+1)*k]
		ci := cd[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bd[j*k : (j+1)*k]
			b1 := bd[(j+1)*k : (j+2)*k]
			b2 := bd[(j+2)*k : (j+3)*k]
			b3 := bd[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci[j] = s0
			ci[j+1] = s1
			ci[j+2] = s2
			ci[j+3] = s3
		}
		for ; j < n; j++ {
			bj := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
