package tensor

import "math"

// RNG is a deterministic splitmix64-based pseudo-random generator. Every
// stochastic component in the reproduction (weight init, data synthesis,
// TernGrad sampling, RandomK selection) draws from an explicitly seeded RNG
// so that distributed workers can reproduce each other's choices and every
// experiment is bit-for-bit replayable.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
	// Gaussian spare value (Box-Muller generates pairs).
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// Perm returns a pseudo-random permutation of [0,n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG whose stream is decorrelated from r but fully
// determined by r's current state and the given label. Workers use Fork to
// derive per-rank streams from a shared experiment seed.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label through one splitmix64 round of a copied state so the
	// parent stream is not advanced.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Randn fills a new tensor of the given shape with N(0, std²) samples.
func Randn(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor with U(lo, hi) samples.
func RandUniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = float32(lo + span*r.Float64())
	}
	return t
}

// KaimingInit fills a new tensor with Kaiming-He normal initialization for a
// layer with the given fan-in, the standard initialization for ReLU
// networks.
func KaimingInit(r *RNG, fanIn int, shape ...int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	return Randn(r, std, shape...)
}

// XavierInit fills a new tensor with Glorot/Xavier uniform initialization
// for a layer with the given fan-in and fan-out, used by attention and
// linear projection layers.
func XavierInit(r *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	if fanOut <= 0 {
		fanOut = 1
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(r, -limit, limit, shape...)
}
