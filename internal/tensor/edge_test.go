package tensor

import (
	"strings"
	"testing"
)

func TestStringTruncates(t *testing.T) {
	x := Ones(3, 4)
	s := x.String()
	if !strings.Contains(s, "+4") {
		t.Fatalf("expected truncation marker in %q", s)
	}
	if !strings.Contains(s, "[3 4]") {
		t.Fatalf("expected shape in %q", s)
	}
	short := FromSlice([]float32{1, 2}, 2).String()
	if strings.Contains(short, "+") {
		t.Fatalf("short tensor should not truncate: %q", short)
	}
}

func TestFullAndOnes(t *testing.T) {
	f := Full(2.5, 2, 2)
	for _, v := range f.Data() {
		if v != 2.5 {
			t.Fatal("Full wrong")
		}
	}
	o := Ones(3)
	if o.Sum() != 3 {
		t.Fatal("Ones wrong")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.CopyFrom(b)
}

func TestMinMaxEmptyPanics(t *testing.T) {
	empty := New(0)
	for _, fn := range []func(){
		func() { empty.Max() },
		func() { empty.Min() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	if empty.AbsMax() != 0 {
		t.Fatal("AbsMax of empty should be 0")
	}
	if empty.Sparsity() != 0 {
		t.Fatal("Sparsity of empty should be 0")
	}
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AxpyInto(New(2), 1, New(3))
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(New(2), New(3))
}

func TestIndexRankMismatchPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.At(1)
}

func TestTransposeNonMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transpose(New(2, 2, 2))
}

func TestRNGIntnInvalidPanics(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(4)
	u := RandUniform(r, -2, 3, 1000)
	mn, _ := u.Min()
	mx, _ := u.Max()
	if mn < -2 || mx > 3 {
		t.Fatalf("uniform out of range: [%v, %v]", mn, mx)
	}
	if mx-mn < 3 {
		t.Fatal("uniform suspiciously narrow")
	}
}
