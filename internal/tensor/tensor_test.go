package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len = %d, want 1", s.Len())
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if x.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", x.At(1, 2))
	}
	if x.Offset(1, 2) != 5 {
		t.Fatalf("Offset(1,2) = %d, want 5", x.Offset(1, 2))
	}
	if x.Data()[5] != 5 {
		t.Fatal("Set did not write row-major position")
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 4)
	y := x.Reshape(2, 2)
	y.Set(9, 0, 1)
	if x.Data()[1] != 9 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping to wrong volume")
		}
	}()
	x.Reshape(3)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	sum := Add(a, b)
	if sum.Data()[0] != 5 || sum.Data()[2] != 9 {
		t.Fatalf("Add wrong: %v", sum.Data())
	}
	diff := Sub(b, a)
	if diff.Data()[1] != 3 {
		t.Fatalf("Sub wrong: %v", diff.Data())
	}
	prod := Mul(a, b)
	if prod.Data()[2] != 18 {
		t.Fatalf("Mul wrong: %v", prod.Data())
	}
	AxpyInto(a, 2, b)
	if a.Data()[0] != 9 {
		t.Fatalf("Axpy wrong: %v", a.Data())
	}
}

func TestScaleApplyFillZero(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3}, 3)
	x.ScaleInPlace(2)
	if x.Data()[1] != -4 {
		t.Fatal("ScaleInPlace wrong")
	}
	x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if x.Data()[1] != 0 || x.Data()[2] != 6 {
		t.Fatal("Apply wrong")
	}
	x.Fill(7)
	if x.Data()[0] != 7 {
		t.Fatal("Fill wrong")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{3, -1, 4, -1, 5}, 5)
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if v, i := x.Max(); v != 5 || i != 4 {
		t.Fatalf("Max = %v@%d", v, i)
	}
	if v, i := x.Min(); v != -1 || i != 1 {
		t.Fatalf("Min = %v@%d", v, i)
	}
	if x.AbsMax() != 5 {
		t.Fatalf("AbsMax = %v", x.AbsMax())
	}
	if !almostEqual(x.Norm1(), 14, 1e-9) {
		t.Fatalf("Norm1 = %v", x.Norm1())
	}
	want := math.Sqrt(9 + 1 + 16 + 1 + 25)
	if !almostEqual(x.Norm2(), want, 1e-6) {
		t.Fatalf("Norm2 = %v want %v", x.Norm2(), want)
	}
}

func TestSparsityAndNonZero(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0, 2, 0}, 5)
	if x.CountNonZero() != 2 {
		t.Fatalf("CountNonZero = %d", x.CountNonZero())
	}
	if !almostEqual(x.Sparsity(), 0.6, 1e-12) {
		t.Fatalf("Sparsity = %v", x.Sparsity())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], v)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulTransposedVariants checks AᵀB and ABᵀ kernels against explicit
// transposes followed by plain MatMul.
func TestMatMulTransposedVariants(t *testing.T) {
	r := NewRNG(7)
	a := Randn(r, 1, 4, 3) // (k=4, m=3) for AᵀB
	b := Randn(r, 1, 4, 5) // (k=4, n=5)
	got := New(3, 5)
	MatMulTransAInto(got, a, b)
	want := MatMul(Transpose(a), b)
	for i := range want.Data() {
		if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
			t.Fatalf("TransA[%d] = %v want %v", i, got.Data()[i], want.Data()[i])
		}
	}

	a2 := Randn(r, 1, 3, 4) // (m=3, k=4) for ABᵀ
	b2 := Randn(r, 1, 5, 4) // (n=5, k=4)
	got2 := New(3, 5)
	MatMulTransBInto(got2, a2, b2)
	want2 := MatMul(a2, Transpose(b2))
	for i := range want2.Data() {
		if !almostEqual(float64(got2.Data()[i]), float64(want2.Data()[i]), 1e-4) {
			t.Fatalf("TransB[%d] = %v want %v", i, got2.Data()[i], want2.Data()[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("Transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no padding: Im2Col is a reshape.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 1 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	for i, v := range []float32{1, 2, 3, 4} {
		if cols.Data()[i] != v {
			t.Fatalf("cols[%d] = %v", i, cols.Data()[i])
		}
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad: 4 output positions.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cols := Im2Col(x, 2, 2, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 4 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	wantRow0 := []float32{1, 2, 4, 5}
	for i, v := range wantRow0 {
		if cols.At(0, i) != v {
			t.Fatalf("row0[%d] = %v want %v", i, cols.At(0, i), v)
		}
	}
	wantRow3 := []float32{5, 6, 8, 9}
	for i, v := range wantRow3 {
		if cols.At(3, i) != v {
			t.Fatalf("row3[%d] = %v want %v", i, cols.At(3, i), v)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := Ones(1, 1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1)
	// Output is 2x2 positions; the corner position (0,0) covers 4 padded
	// cells along the top/left border.
	if cols.Dim(0) != 4 || cols.Dim(1) != 9 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	// First row corresponds to center (0,0): padded row 0 and col 0 zero.
	row := cols.Data()[:9]
	wantZero := []int{0, 1, 2, 3, 6}
	for _, i := range wantZero {
		if row[i] != 0 {
			t.Fatalf("expected pad zero at %d, got %v", i, row[i])
		}
	}
	if row[4] != 1 || row[5] != 1 || row[7] != 1 || row[8] != 1 {
		t.Fatalf("expected ones in interior, got %v", row)
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the defining
// adjoint property that makes Col2Im the correct gradient of Im2Col.
func TestCol2ImAdjoint(t *testing.T) {
	r := NewRNG(42)
	n, c, h, w := 2, 3, 5, 5
	kh, kw, stride, pad := 3, 3, 2, 1
	x := Randn(r, 1, n, c, h, w)
	cols := Im2Col(x, kh, kw, stride, pad)
	y := Randn(r, 1, cols.Shape()...)
	lhs := Dot(cols, y)
	back := Col2Im(y, n, c, h, w, kh, kw, stride, pad)
	rhs := Dot(x, back)
	if !almostEqual(lhs, rhs, 1e-3*math.Max(1, math.Abs(lhs))) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(32, 3, 1, 1) != 32 {
		t.Fatal("same-pad conv should preserve size")
	}
	if ConvOutSize(32, 2, 2, 0) != 16 {
		t.Fatal("2x2 stride-2 pool should halve size")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(124)
	same := true
	a2 := NewRNG(123)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGForkDecorrelated(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
	// Forking must not advance the parent.
	r2 := NewRNG(9)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Fork must not advance parent stream")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(2024)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestKaimingXavierScale(t *testing.T) {
	r := NewRNG(11)
	w := KaimingInit(r, 100, 100, 100)
	std := math.Sqrt(w.Norm2() * w.Norm2() / float64(w.Len()))
	want := math.Sqrt(2.0 / 100)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("kaiming std = %v, want ≈%v", std, want)
	}
	x := XavierInit(r, 50, 50, 50, 50)
	limit := math.Sqrt(6.0 / 100)
	if mx := float64(x.AbsMax()); mx > limit+1e-6 {
		t.Fatalf("xavier exceeds limit: %v > %v", mx, limit)
	}
}

// Property: Add is commutative and Sub(Add(a,b), b) == a.
func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		// Keep values finite and modest to avoid float cancellation noise.
		for i := range vals {
			if math.IsNaN(float64(vals[i])) || math.IsInf(float64(vals[i]), 0) {
				vals[i] = 1
			}
			if vals[i] > 1e6 {
				vals[i] = 1e6
			}
			if vals[i] < -1e6 {
				vals[i] = -1e6
			}
		}
		a := FromSlice(append([]float32(nil), vals...), len(vals))
		b := FromSlice(append([]float32(nil), vals...), len(vals))
		b.ScaleInPlace(0.5)
		ab := Add(a, b)
		ba := Add(b, a)
		for i := range ab.Data() {
			if ab.Data()[i] != ba.Data()[i] {
				return false
			}
		}
		round := Sub(ab, b)
		for i := range round.Data() {
			if math.Abs(float64(round.Data()[i]-a.Data()[i])) > 1e-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) == AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		c := Randn(r, 1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data() {
			if math.Abs(float64(left.Data()[i]-right.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Im2Col/Col2Im adjointness holds for random geometries.
func TestPropertyIm2ColAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(2)
		c := 1 + r.Intn(3)
		h := 3 + r.Intn(4)
		w := 3 + r.Intn(4)
		kh := 1 + r.Intn(3)
		kw := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if h+2*pad < kh || w+2*pad < kw {
			return true
		}
		x := Randn(r, 1, n, c, h, w)
		cols := Im2Col(x, kh, kw, stride, pad)
		y := Randn(r, 1, cols.Shape()...)
		lhs := Dot(cols, y)
		rhs := Dot(x, Col2Im(y, n, c, h, w, kh, kw, stride, pad))
		return almostEqual(lhs, rhs, 1e-2*math.Max(1, math.Abs(lhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
