package tensor

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"pactrain/internal/par"
)

// bitsEqual reports whether two tensors are byte-identical (exact float bit
// patterns, not approximate equality).
func bitsEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Float32bits(a.data[i]) != math.Float32bits(b.data[i]) {
			return false
		}
	}
	return true
}

// TestMatMulBitExactAcrossBudgets pins the core kernel invariant: every
// matmul variant produces byte-identical output at par budgets 1 and 8, on
// shapes large enough to actually chunk (> par.MinWork of scalar work) and
// awkward enough to exercise ragged chunk boundaries and the register-block
// remainder columns.
func TestMatMulBitExactAcrossBudgets(t *testing.T) {
	defer par.SetBudget(par.Budget())
	rng := NewRNG(42)
	shapes := []struct{ m, k, n int }{
		{7, 5, 3},     // below MinWork: stays inline
		{67, 129, 31}, // chunked, ragged rows, n%4 != 0
		{128, 64, 64}, // chunked, aligned
	}
	for _, s := range shapes {
		a := Randn(rng, 1, s.m, s.k)
		b := Randn(rng, 1, s.k, s.n)
		at := Transpose(a) // (k,m)
		bt := Transpose(b) // (n,k)
		// Sprinkle exact zeros so the av==0 skip path is exercised.
		for i := 0; i < len(a.data); i += 5 {
			a.data[i] = 0
		}
		kernels := []struct {
			name string
			run  func(dst *Tensor)
		}{
			{"MatMulInto", func(dst *Tensor) { MatMulInto(dst, a, b) }},
			{"MatMulTransAInto", func(dst *Tensor) { MatMulTransAInto(dst, at, b) }},
			{"MatMulTransBInto", func(dst *Tensor) { MatMulTransBInto(dst, a, bt) }},
		}
		for _, kn := range kernels {
			par.SetBudget(1)
			want := New(s.m, s.n)
			kn.run(want)
			par.SetBudget(8)
			got := New(s.m, s.n)
			kn.run(got)
			if !bitsEqual(want, got) {
				t.Errorf("%s (%d,%d,%d): budget 8 differs from budget 1", kn.name, s.m, s.k, s.n)
			}
		}
	}
}

// TestMatMulIntoReusesDirtyBuffer pins that the Into kernels fully overwrite
// a dirty destination — required for scratch reuse across train steps.
func TestMatMulIntoReusesDirtyBuffer(t *testing.T) {
	rng := NewRNG(7)
	a := Randn(rng, 1, 9, 11)
	b := Randn(rng, 1, 11, 6)
	at := Transpose(a)
	cases := []struct {
		name string
		m, n int
		run  func(dst *Tensor)
	}{
		{"MatMulInto", 9, 6, func(dst *Tensor) { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", 9, 6, func(dst *Tensor) { MatMulTransAInto(dst, at, b) }},
		{"MatMulTransBInto", 9, 9, func(dst *Tensor) { MatMulTransBInto(dst, a, a) }},
	}
	for _, c := range cases {
		fresh := New(c.m, c.n)
		c.run(fresh)
		dirty := Full(float32(math.NaN()), c.m, c.n)
		c.run(dirty)
		if !bitsEqual(fresh, dirty) {
			t.Errorf("%s: dirty-buffer result differs from fresh-buffer result", c.name)
		}
	}
}

// TestIm2ColIntoBitExactAndDirtySafe covers the lowering kernels: budget
// independence and full overwrite of a reused buffer (padding rows must read
// zero again).
func TestIm2ColIntoBitExactAndDirtySafe(t *testing.T) {
	defer par.SetBudget(par.Budget())
	rng := NewRNG(3)
	x := Randn(rng, 1, 4, 3, 14, 14) // 4*12*12=576 rows × 27 cols, chunkable with pad
	const kh, kw, stride, pad = 3, 3, 1, 1
	par.SetBudget(1)
	want := Im2Col(x, kh, kw, stride, pad)
	par.SetBudget(8)
	got := Full(float32(math.NaN()), want.shape[0], want.shape[1])
	Im2ColInto(got, x, kh, kw, stride, pad)
	if !bitsEqual(want, got) {
		t.Fatal("Im2ColInto: dirty buffer at budget 8 differs from fresh at budget 1")
	}

	par.SetBudget(1)
	wantImg := Col2Im(want, 4, 3, 14, 14, kh, kw, stride, pad)
	par.SetBudget(8)
	gotImg := Full(float32(math.NaN()), 4, 3, 14, 14)
	Col2ImInto(gotImg, got, kh, kw, stride, pad)
	if !bitsEqual(wantImg, gotImg) {
		t.Fatal("Col2ImInto: dirty buffer at budget 8 differs from fresh at budget 1")
	}
}

// TestMatMulIntoShapePanicsIncludeShapes pins the satellite requirement that
// the Into matmul panics name the offending shapes.
func TestMatMulIntoShapePanicsIncludeShapes(t *testing.T) {
	cases := []struct {
		op  string
		run func()
	}{
		{"MatMulInto", func() { MatMulInto(New(2, 2), New(2, 3), New(4, 2)) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(New(2, 2), New(3, 2), New(4, 2)) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(New(2, 2), New(2, 3), New(2, 4)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: expected panic", c.op)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, c.op) || !strings.Contains(msg, "[2 3]") && !strings.Contains(msg, "[3 2]") {
					t.Errorf("%s: panic %q does not report the offending shapes", c.op, msg)
				}
			}()
			c.run()
		}()
	}
}

func benchmarkMatMul(b *testing.B, size, budget int) {
	defer par.SetBudget(par.Budget())
	par.SetBudget(budget)
	rng := NewRNG(1)
	x := Randn(rng, 1, size, size)
	y := Randn(rng, 1, size, size)
	dst := New(size, size)
	b.SetBytes(int64(size) * int64(size) * int64(size) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B)        { benchmarkMatMul(b, 256, 1) }
func BenchmarkMatMul256Budget8(b *testing.B) { benchmarkMatMul(b, 256, 8) }

func BenchmarkMatMulTransB256(b *testing.B) {
	rng := NewRNG(1)
	x := Randn(rng, 1, 256, 256)
	y := Randn(rng, 1, 256, 256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, x, y)
	}
}
