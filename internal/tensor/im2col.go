package tensor

// Im2Col lowers a batched image tensor into a matrix so that convolution
// becomes a single matrix multiplication, the standard approach used by
// CPU/GPU deep-learning kernels.
//
// Input x has shape (N, C, H, W). The result has shape
// (N*outH*outW, C*kh*kw): each row is the receptive field of one output
// position. Zero padding of size pad is applied on both spatial axes, and
// the kernel slides with the given stride.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(n*outH*outW, c*kh*kw)
	xd, cd := x.data, cols.data
	rowLen := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((img*outH+oy)*outW + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					colBase := row + ch*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue // row stays zero (padding)
						}
						srcRow := chBase + iy*w
						dstRow := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dstRow+kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a column matrix
// of shape (N*outH*outW, C*kh*kw) back into an image tensor of shape
// (N, C, H, W). Overlapping receptive fields sum, which is exactly the
// gradient of Im2Col, so Conv2D backward can reuse it directly.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	img := New(n, c, h, w)
	cd, xd := cols.data, img.data
	rowLen := c * kh * kw
	for im := 0; im < n; im++ {
		base := im * c * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((im*outH+oy)*outW + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					colBase := row + ch*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						dstRow := chBase + iy*w
						srcRow := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							xd[dstRow+ix] += cd[srcRow+kx]
						}
					}
				}
			}
		}
	}
	return img
}

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and padding over an input of size
// in.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
