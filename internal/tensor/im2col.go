package tensor

import (
	"fmt"

	"pactrain/internal/par"
)

// Im2Col lowers a batched image tensor into a matrix so that convolution
// becomes a single matrix multiplication, the standard approach used by
// CPU/GPU deep-learning kernels.
//
// Input x has shape (N, C, H, W). The result has shape
// (N*outH*outW, C*kh*kw): each row is the receptive field of one output
// position. Zero padding of size pad is applied on both spatial axes, and
// the kernel slides with the given stride.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(n*outH*outW, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-owned (N*outH*outW, C*kh*kw)
// matrix, so conv layers can reuse the (large) column buffer across steps.
// dst is fully overwritten; padding positions are re-zeroed.
//
// Each output row is an independent gather from x, so the kernel chunks rows
// over the par budget with bit-identical results at any budget.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	rows, rowLen := n*outH*outW, c*kh*kw
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Im2ColInto dst%v, want [%d %d] for x%v k=%dx%d stride=%d pad=%d",
			dst.shape, rows, rowLen, x.shape, kh, kw, stride, pad))
	}
	if par.PlanChunks(rows, rows*rowLen) == 1 {
		im2colRows(dst.data, x.data, c, h, w, outH, outW, kh, kw, stride, pad, 0, rows)
		return
	}
	cd, xd := dst.data, x.data
	par.ForChunksWork(rows, rows*rowLen, func(_, lo, hi int) {
		im2colRows(cd, xd, c, h, w, outH, outW, kh, kw, stride, pad, lo, hi)
	})
}

// im2colRows fills column-matrix rows [lo,hi), zeroing each row first so
// padding positions read zero even when the buffer is reused.
func im2colRows(cd, xd []float32, c, h, w, outH, outW, kh, kw, stride, pad, lo, hi int) {
	rowLen := c * kh * kw
	for r := lo; r < hi; r++ {
		row := r * rowLen
		for i := row; i < row+rowLen; i++ {
			cd[i] = 0
		}
		ox := r % outW
		oy := (r / outW) % outH
		img := r / (outW * outH)
		base := img * c * h * w
		iy0 := oy*stride - pad
		ix0 := ox*stride - pad
		for ch := 0; ch < c; ch++ {
			chBase := base + ch*h*w
			colBase := row + ch*kh*kw
			for ky := 0; ky < kh; ky++ {
				iy := iy0 + ky
				if iy < 0 || iy >= h {
					continue // row stays zero (padding)
				}
				srcRow := chBase + iy*w
				dstRow := colBase + ky*kw
				for kx := 0; kx < kw; kx++ {
					ix := ix0 + kx
					if ix < 0 || ix >= w {
						continue
					}
					cd[dstRow+kx] = xd[srcRow+ix]
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a column matrix
// of shape (N*outH*outW, C*kh*kw) back into an image tensor of shape
// (N, C, H, W). Overlapping receptive fields sum, which is exactly the
// gradient of Im2Col, so Conv2D backward can reuse it directly.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	img := New(n, c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, pad)
	return img
}

// Col2ImInto is Col2Im writing into a caller-owned (N, C, H, W) tensor,
// which is zeroed before accumulation.
//
// The scatter chunks over (image, channel) planes: every destination pixel
// lives in exactly one plane, and within a plane its overlapping
// contributions still arrive in ascending (oy, ox, ky, kx) order — the same
// float addition sequence as the scalar kernel — so results are
// bit-identical at any par budget.
func Col2ImInto(dst, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	rows, rowLen := n*outH*outW, c*kh*kw
	if cols.Rank() != 2 || cols.shape[0] != rows || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2ImInto cols%v, want [%d %d] for dst%v k=%dx%d stride=%d pad=%d",
			cols.shape, rows, rowLen, dst.shape, kh, kw, stride, pad))
	}
	planes := n * c
	work := rows * rowLen
	if par.PlanChunks(planes, work) == 1 {
		col2imPlanes(dst.data, cols.data, c, h, w, outH, outW, kh, kw, stride, pad, 0, planes)
		return
	}
	xd, cd := dst.data, cols.data
	par.ForChunksWork(planes, work, func(_, lo, hi int) {
		col2imPlanes(xd, cd, c, h, w, outH, outW, kh, kw, stride, pad, lo, hi)
	})
}

// col2imPlanes accumulates column-matrix contributions into (image, channel)
// planes [lo,hi) of the output, zeroing each plane first.
func col2imPlanes(xd, cd []float32, c, h, w, outH, outW, kh, kw, stride, pad, lo, hi int) {
	rowLen := c * kh * kw
	for plane := lo; plane < hi; plane++ {
		im := plane / c
		ch := plane % c
		chBase := (im*c + ch) * h * w
		for i := chBase; i < chBase+h*w; i++ {
			xd[i] = 0
		}
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((im*outH+oy)*outW + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				colBase := row + ch*kh*kw
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := chBase + iy*w
					srcRow := colBase + ky*kw
					for kx := 0; kx < kw; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						xd[dstRow+ix] += cd[srcRow+kx]
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and padding over an input of size
// in.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
