package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateRejectsCorruptTraces pins the -validate-trace error paths: a
// corrupt, truncated, or structurally broken trace file produces a
// diagnostic error — never a panic, never a silent pass.
func TestValidateRejectsCorruptTraces(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"not json", "perfetto says hi", "not a JSON trace document"},
		{"truncated", `{"traceEvents":[{"name":"compute","ph":"X","ts":0,`, "not a JSON trace document"},
		{"empty document", `{}`, "no traceEvents"},
		{"empty events", `{"traceEvents":[]}`, "no traceEvents"},
		{"nameless event", `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`, "has no name"},
		{"negative duration", `{"traceEvents":[{"name":"c","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`, "negative duration"},
		{"negative track", `{"traceEvents":[{"name":"c","ph":"X","ts":0,"dur":1,"pid":-1,"tid":0}]}`, "negative pid/tid"},
		{"unknown phase", `{"traceEvents":[{"name":"c","ph":"Q","ts":0,"pid":0,"tid":0}]}`, "unknown phase"},
		{"time reversal", `{"traceEvents":[` +
			`{"name":"a","ph":"X","ts":5,"dur":1,"pid":0,"tid":0},` +
			`{"name":"b","ph":"X","ts":2,"dur":1,"pid":0,"tid":0}]}`, "goes backwards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate([]byte(tc.raw))
			if err == nil {
				t.Fatalf("corrupt trace validated: %s", tc.raw)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q missing %q", err, tc.want)
			}
		})
	}
}

// TestValidateFileErrors covers the file-level wrapper: a missing path and
// an on-disk truncated document both surface as errors with context.
func TestValidateFileErrors(t *testing.T) {
	if err := ValidateFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file validated")
	}
	path := filepath.Join(t.TempDir(), "truncated.json")
	tr := NewTracer()
	run := tr.StartRun("run", "fp", 2, []int{4})
	run.Compute(0, 0, 0, 1e-3, 2e-3)
	raw, err := tr.Build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	err = ValidateFile(path)
	if err == nil {
		t.Fatal("truncated trace file validated")
	}
	if !strings.Contains(err.Error(), "not a JSON trace document") {
		t.Fatalf("diagnostic %q", err)
	}
}
