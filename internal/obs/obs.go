// Package obs is the observability layer of the PacTrain reproduction: a
// structured span model for simulated training runs, a Chrome trace-event
// JSON exporter (one pid per rank, one tid per DDP bucket) that opens
// directly in Perfetto, a validator for the exported format, and a terminal
// span-summary table.
//
// The package is deliberately generic: it knows about ranks, buckets,
// iterations, and simulated seconds, but nothing about configs, fabrics, or
// collectives. The experiment harness converts its recorded CommLogs and
// simclock timelines into spans (internal/harness/trace.go); that keeps obs
// dependency-free and the tracing path strictly observation-only — a nil
// *Tracer disables everything at zero cost.
//
// Determinism: spans are derived from recorded results, not live callbacks,
// so the exported JSON is byte-identical across runs and parallelism
// budgets (see DESIGN.md §11). Build emits events in insertion order and
// encodes args maps through encoding/json's sorted-key map marshaling.
package obs

import (
	"fmt"
	"sync"
)

// Span categories.
const (
	CatCompute    = "compute"
	CatBarrier    = "barrier"
	CatCollective = "collective"
	CatDecision   = "decision"
	CatMark       = "mark"
)

// Tracer accumulates per-run span sets plus tracer-level marks (recost
// events, cache notes). A nil Tracer is valid and ignores everything, so
// call sites need no conditionals.
type Tracer struct {
	mu    sync.Mutex
	runs  []*RunTrace
	seen  map[string]bool
	marks []mark
}

type mark struct {
	name string
	args map[string]any
}

// NewTracer builds an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{seen: make(map[string]bool)}
}

// Enabled reports whether tracing is on (the tracer is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// StartRun opens a span set for one training run. The dedupKey (normally
// the config fingerprint) collapses the same run traced by several
// experiments onto its first appearance: StartRun returns nil for a
// repeat, and every RunTrace method is nil-safe, so callers replay
// unconditionally. world is the rank count; buckets the per-bucket element
// counts (CommLog.BucketElems), which fix the tid layout.
func (t *Tracer) StartRun(label, dedupKey string, world int, buckets []int) *RunTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if dedupKey == "" {
		dedupKey = label
	}
	if t.seen[dedupKey] {
		return nil
	}
	t.seen[dedupKey] = true
	r := &RunTrace{label: label, world: world, buckets: buckets}
	t.runs = append(t.runs, r)
	return r
}

// AddMark records a tracer-level instant (a recost, a cache note) on the
// harness pseudo-process. Marks are ordered by insertion; their timestamps
// are sequence numbers, not simulated time.
func (t *Tracer) AddMark(name string, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.marks = append(t.marks, mark{name: name, args: args})
}

// Runs returns the number of span sets opened so far.
func (t *Tracer) Runs() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.runs)
}

// RunTrace is one training run's span set. Emission translates simulated
// seconds to trace microseconds; tid 0 is the rank's compute stream, tid
// b+1 its bucket-b communication stream. All methods are nil-safe.
type RunTrace struct {
	label   string
	world   int
	buckets []int
	events  []traceEvent
}

const usPerSec = 1e6

func tidForBucket(bucket int) int { return bucket + 1 }

// Compute records one iteration's forward and backward spans on a rank's
// compute stream.
func (r *RunTrace) Compute(rank, iter int, start, fwd, bwd float64) {
	if r == nil {
		return
	}
	r.events = append(r.events,
		traceEvent{Name: "forward", Cat: CatCompute, Ph: phSpan,
			Ts: start * usPerSec, Dur: fwd * usPerSec, Pid: rank, Tid: 0,
			Args: map[string]any{"iter": iter}},
		traceEvent{Name: "backward", Cat: CatCompute, Ph: phSpan,
			Ts: (start + fwd) * usPerSec, Dur: bwd * usPerSec, Pid: rank, Tid: 0,
			Args: map[string]any{"iter": iter}},
	)
}

// BarrierWait records the interval a rank spends blocked at a bucket's
// gradient-ready barrier: from the moment its own gradient is ready (and
// the communication stream free) until the collective launches. Zero and
// negative waits are skipped — on a homogeneous cluster every rank arrives
// together and the trace stays compact; under stragglers the fast ranks'
// waits are exactly the exposure the grid measures.
func (r *RunTrace) BarrierWait(rank, bucket, iter int, from, until float64) {
	if r == nil || until-from <= 0 {
		return
	}
	r.events = append(r.events, traceEvent{
		Name: "wait", Cat: CatBarrier, Ph: phSpan,
		Ts: from * usPerSec, Dur: (until - from) * usPerSec,
		Pid: rank, Tid: tidForBucket(bucket),
		Args: map[string]any{"iter": iter},
	})
}

// Collective records one bucket collective's launch-to-finish span on a
// rank's bucket stream. name is the operation ("all-reduce", "all-gather",
// ...); args carries wire format, element counts, and — for adaptive runs —
// the priced candidate quotes.
func (r *RunTrace) Collective(rank, bucket, iter int, name string, start, end float64, args map[string]any) {
	if r == nil {
		return
	}
	full := map[string]any{"iter": iter}
	for k, v := range args {
		full[k] = v
	}
	r.events = append(r.events, traceEvent{
		Name: name, Cat: CatCollective, Ph: phSpan,
		Ts: start * usPerSec, Dur: (end - start) * usPerSec,
		Pid: rank, Tid: tidForBucket(bucket),
		Args: full,
	})
}

// Decision records the wire-format decision taken for a bucket's round as
// an instant at launch time. format is the chosen wire format; args may
// carry the adaptive controller's candidate quotes.
func (r *RunTrace) Decision(rank, bucket, iter int, at float64, format string, args map[string]any) {
	if r == nil {
		return
	}
	full := map[string]any{"iter": iter, "format": format}
	for k, v := range args {
		full[k] = v
	}
	r.events = append(r.events, traceEvent{
		Name: format, Cat: CatDecision, Ph: phInstant, Scope: scopeThread,
		Ts: at * usPerSec, Pid: rank, Tid: tidForBucket(bucket),
		Args: full,
	})
}

// Build assembles the Chrome trace-event document: pid 0 is the harness
// pseudo-process carrying the tracer-level marks, and each run's ranks
// occupy a contiguous pid block after it, with process/thread metadata
// naming every rank and stream.
func (t *Tracer) Build() *Trace {
	tr := &Trace{}
	if t == nil {
		return tr
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	tr.add(traceEvent{Name: "process_name", Ph: phMeta, Pid: 0, Tid: 0,
		Args: map[string]any{"name": "harness"}})
	for i, m := range t.marks {
		tr.add(traceEvent{Name: m.name, Cat: CatMark, Ph: phInstant, Scope: scopeProcess,
			Ts: float64(i), Pid: 0, Tid: 0, Args: m.args})
	}

	base := 1
	for _, run := range t.runs {
		for rank := 0; rank < run.world; rank++ {
			pid := base + rank
			tr.add(traceEvent{Name: "process_name", Ph: phMeta, Pid: pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("%s rank %d", run.label, rank)}})
			tr.add(traceEvent{Name: "thread_name", Ph: phMeta, Pid: pid, Tid: 0,
				Args: map[string]any{"name": "compute"}})
			for b, elems := range run.buckets {
				tr.add(traceEvent{Name: "thread_name", Ph: phMeta, Pid: pid, Tid: tidForBucket(b),
					Args: map[string]any{"name": fmt.Sprintf("bucket %d (%d elems)", b, elems)}})
			}
		}
		for _, ev := range run.events {
			ev.Pid += base
			tr.add(ev)
		}
		base += run.world
	}
	return tr
}
