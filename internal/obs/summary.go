package obs

import (
	"fmt"

	"pactrain/internal/metrics"
)

// spanAgg aggregates one (run, category) cell of the summary.
type spanAgg struct {
	count int
	total float64 // microseconds
	max   float64
}

// summaryCategories fixes the row order within a run.
var summaryCategories = []string{CatCompute, CatBarrier, CatCollective, CatDecision}

// Summary renders the per-run span totals as a terminal table — the
// `-trace-summary` view for when a browser is out of reach. Durations are
// simulated time summed across all ranks, so a span category's total can
// exceed the run's makespan by up to a factor of the world size.
func (t *Tracer) Summary() string {
	if t == nil {
		return "(tracing disabled)\n"
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	tbl := metrics.NewTable("span summary (durations are simulated time, summed across ranks)",
		"run", "category", "spans", "total", "mean", "max")
	for _, run := range t.runs {
		aggs := make(map[string]*spanAgg)
		for _, ev := range run.events {
			if ev.Ph != phSpan && ev.Cat != CatDecision {
				continue
			}
			a := aggs[ev.Cat]
			if a == nil {
				a = &spanAgg{}
				aggs[ev.Cat] = a
			}
			a.count++
			a.total += ev.Dur
			if ev.Dur > a.max {
				a.max = ev.Dur
			}
		}
		label := run.label
		for _, cat := range summaryCategories {
			a := aggs[cat]
			if a == nil {
				continue
			}
			if cat == CatDecision {
				tbl.AddRow(label, cat, fmt.Sprintf("%d", a.count), "-", "-", "-")
			} else {
				tbl.AddRow(label, cat, fmt.Sprintf("%d", a.count),
					metrics.FormatSeconds(a.total/usPerSec),
					metrics.FormatSeconds(a.total/usPerSec/float64(a.count)),
					metrics.FormatSeconds(a.max/usPerSec))
			}
			label = "" // repeat the run label only on its first row
		}
	}
	if len(t.marks) > 0 {
		tbl.AddRow("(harness)", CatMark, fmt.Sprintf("%d", len(t.marks)), "-", "-", "-")
	}
	return tbl.String()
}
