package obs

import (
	"encoding/json"
	"os"
)

// Chrome trace-event phases (the subset the exporter emits).
const (
	phSpan    = "X" // complete duration event (ts + dur)
	phInstant = "i" // instant event
	phMeta    = "M" // metadata (process_name / thread_name)
)

// Instant-event scopes.
const (
	scopeThread  = "t"
	scopeProcess = "p"
)

// traceEvent is one entry of a Chrome trace-event document
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; here they carry simulated
// time, so one trace second is one simulated second.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object envelope Perfetto and chrome://tracing load.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace is an assembled trace-event document ready for export.
type Trace struct {
	events []traceEvent
}

func (t *Trace) add(ev traceEvent) { t.events = append(t.events, ev) }

// Events returns the number of events in the document.
func (t *Trace) Events() int { return len(t.events) }

// JSON serializes the document. The encoding is deterministic: events keep
// insertion order and encoding/json marshals args maps with sorted keys,
// so identical span sets yield byte-identical files.
func (t *Trace) JSON() ([]byte, error) {
	return json.Marshal(traceFile{TraceEvents: t.events, DisplayTimeUnit: "ms"})
}

// WriteFile serializes the document to path with a trailing newline.
func (t *Trace) WriteFile(path string) error {
	raw, err := t.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
