package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// Validate checks that raw is a well-formed Chrome trace-event document the
// exporter could have produced: a JSON object with a non-empty traceEvents
// array, every event carrying a name, a known phase, and non-negative
// pid/tid, duration events with non-negative durations, and — the property
// Perfetto's track builder relies on — per-(pid,tid) monotone non-decreasing
// timestamps for duration events in array order. CI's smoke lane runs this
// over a freshly generated quick-grid trace.
func Validate(raw []byte) error {
	var doc traceFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("trace: not a JSON trace document: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: no traceEvents")
	}
	type track struct{ pid, tid int }
	last := make(map[track]float64)
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.Pid < 0 || ev.Tid < 0 {
			return fmt.Errorf("trace: event %d (%q) has negative pid/tid %d/%d", i, ev.Name, ev.Pid, ev.Tid)
		}
		switch ev.Ph {
		case phSpan:
			if ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%q) has negative duration %g", i, ev.Name, ev.Dur)
			}
			key := track{ev.Pid, ev.Tid}
			if prev, ok := last[key]; ok && ev.Ts < prev {
				return fmt.Errorf("trace: event %d (%q) goes backwards on pid %d tid %d: ts %g after %g",
					i, ev.Name, ev.Pid, ev.Tid, ev.Ts, prev)
			}
			last[track{ev.Pid, ev.Tid}] = ev.Ts
		case phInstant, phMeta:
			// No ordering constraint.
		default:
			return fmt.Errorf("trace: event %d (%q) has unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	return nil
}

// ValidateFile runs Validate over a file on disk.
func ValidateFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return Validate(raw)
}
