package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// buildSample emits a small two-rank, two-bucket run with every span kind.
func buildSample() *Tracer {
	t := NewTracer()
	r := t.StartRun("demo MLP/all-reduce", "fp-1", 2, []int{100, 50})
	for iter := range 2 {
		base := float64(iter) * 10
		for rank := range 2 {
			r.Compute(rank, iter, base, 1, 2)
		}
		for rank := range 2 {
			r.BarrierWait(rank, 0, iter, base+2, base+3)
			r.Collective(rank, 0, iter, "all-reduce", base+3, base+4,
				map[string]any{"elems": 100, "wire": "fp32"})
			r.Decision(rank, 0, iter, base+3, "dense-fp32", nil)
			r.Collective(rank, 1, iter, "all-reduce", base+4, base+5, nil)
		}
	}
	t.AddMark("recost", map[string]any{"experiment": "demo"})
	return t
}

func TestBuildDeterministicAndValid(t *testing.T) {
	a, err := buildSample().Build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSample().Build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical span sets produced different JSON")
	}
	if err := Validate(a); err != nil {
		t.Fatalf("built trace fails validation: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// pid 0 is the harness; ranks occupy pids 1 and 2. Every category and
	// the metadata names must be present.
	want := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		want[ev.Ph+"/"+ev.Cat] = true
		if ev.Ph == "X" && (ev.Pid < 1 || ev.Pid > 2) {
			t.Errorf("span %q on unexpected pid %d", ev.Name, ev.Pid)
		}
	}
	for _, key := range []string{"X/compute", "X/barrier", "X/collective", "i/decision", "i/mark", "M/"} {
		if !want[key] {
			t.Errorf("trace missing %s events", key)
		}
	}
	// Seconds → microseconds: the first compute span of iteration 1 starts
	// at sim t=10s = 1e7 µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "forward" && ev.Ts == 1e7 {
			found = true
		}
	}
	if !found {
		t.Error("no forward span at ts 1e7 µs (sim 10 s)")
	}
}

func TestStartRunDedupsByKey(t *testing.T) {
	tr := NewTracer()
	if tr.StartRun("a", "k", 1, nil) == nil {
		t.Fatal("first StartRun returned nil")
	}
	if tr.StartRun("b", "k", 1, nil) != nil {
		t.Fatal("repeated dedup key was not collapsed")
	}
	if tr.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", tr.Runs())
	}
	// An empty dedup key falls back to the label.
	if tr.StartRun("a", "", 1, nil) == nil {
		t.Fatal("distinct label with empty key was deduped against fingerprints")
	}
	if tr.StartRun("a", "", 1, nil) != nil {
		t.Fatal("repeated label with empty key was not collapsed")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	r := tr.StartRun("x", "x", 4, []int{1})
	// All emission must be a no-op on the nil RunTrace.
	r.Compute(0, 0, 0, 1, 1)
	r.BarrierWait(0, 0, 0, 0, 1)
	r.Collective(0, 0, 0, "all-reduce", 0, 1, nil)
	r.Decision(0, 0, 0, 0, "dense-fp32", nil)
	tr.AddMark("recost", nil)
	if tr.Runs() != 0 {
		t.Fatal("nil tracer accumulated runs")
	}
	if !strings.Contains(tr.Summary(), "disabled") {
		t.Fatalf("nil summary = %q", tr.Summary())
	}
}

func TestZeroWaitsAreSkipped(t *testing.T) {
	tr := NewTracer()
	r := tr.StartRun("x", "x", 1, []int{1})
	r.BarrierWait(0, 0, 0, 5, 5) // zero wait
	r.BarrierWait(0, 0, 0, 5, 4) // negative wait
	r.BarrierWait(0, 0, 0, 5, 5.5)
	if n := len(r.events); n != 1 {
		t.Fatalf("events = %d, want only the positive wait", n)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no events":     `{"traceEvents":[]}`,
		"unnamed":       `{"traceEvents":[{"ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"negative pid":  `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":-1,"tid":1}]}`,
		"unknown phase": `{"traceEvents":[{"name":"a","ph":"Q","ts":0,"pid":1,"tid":1}]}`,
		"time reversal": `{"traceEvents":[
			{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}`,
	}
	for name, raw := range cases {
		if Validate([]byte(raw)) == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	// Reversals on distinct tracks are fine.
	ok := `{"traceEvents":[
		{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
		{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":2},
		{"name":"m","ph":"M","pid":1,"tid":1,"ts":0},
		{"name":"i","ph":"i","ts":0,"pid":1,"tid":1}]}`
	if err := Validate([]byte(ok)); err != nil {
		t.Errorf("multi-track trace rejected: %v", err)
	}
}

func TestWriteFileAndValidateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	if err := buildSample().Build().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatalf("written trace fails validation: %v", err)
	}
	if err := ValidateFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file validated")
	}
}

func TestSummaryAggregates(t *testing.T) {
	got := buildSample().Summary()
	for _, want := range []string{"demo MLP/all-reduce", "compute", "barrier", "collective", "decision", "mark"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// 2 iters × 2 ranks × 2 spans = 8 compute spans.
	if !strings.Contains(got, "8") {
		t.Errorf("summary missing compute span count:\n%s", got)
	}
}
