// Package par is the process-wide data-parallel worker budget shared by the
// simulator's hot kernels (internal/compress, internal/collective). It
// exists so goroutine-level parallelism inside a kernel composes with the
// job-level parallelism of the experiment engine instead of multiplying
// against it: the engine sizes the budget to GOMAXPROCS divided by its
// concurrent-job count, and every kernel chunks against that single number.
//
// Chunk boundaries are never allowed to influence results — callers may only
// parallelize loops whose iterations are independent (elementwise maps,
// gathers/scatters over disjoint indices) or whose reduction is exactly
// associative (float max). That is what keeps parallel runs bit-identical to
// scalar runs, the repo-wide reproducibility contract.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinWork is the element count below which a chunked dispatch costs more in
// scheduling than it saves in compute; smaller loops run inline.
const MinWork = 8192

var budget atomic.Int64

func init() { budget.Store(int64(runtime.GOMAXPROCS(0))) }

// SetBudget sets the maximum number of chunks a single For call fans out
// into. The experiment engine calls this with GOMAXPROCS/parallel-jobs so
// kernel parallelism does not oversubscribe the machine; values below 1
// clamp to 1 (fully inline execution).
func SetBudget(n int) {
	if n < 1 {
		n = 1
	}
	budget.Store(int64(n))
}

// Budget returns the current chunk budget.
func Budget() int { return int(budget.Load()) }

// pool is a fixed set of worker goroutines sized once to GOMAXPROCS; For
// feeds it chunks. A persistent pool keeps steady-state iterations free of
// goroutine churn. Chunk functions must not call For themselves: a nested
// dispatch from inside a worker could leave every worker waiting on work
// only workers can drain.
var (
	poolOnce sync.Once
	poolCh   chan poolTask
)

type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

func ensurePool() {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		poolCh = make(chan poolTask, 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for t := range poolCh {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// chunks returns how many contiguous ranges For splits n items into under
// the current budget: at most Budget(), and never so many that chunks drop
// below MinWork/2 elements.
func chunks(n int) int {
	w := Budget()
	if w <= 1 || n < MinWork {
		return 1
	}
	if max := n / (MinWork / 2); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn over [0, n) split into contiguous chunks executed on the
// worker pool. fn(lo, hi) must treat its iterations as independent of every
// other chunk's — results must not depend on chunk boundaries. Small n (or a
// budget of 1) runs inline on the caller's goroutine.
func For(n int, fn func(lo, hi int)) {
	ForChunks(n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunks is For with the chunk ordinal exposed, for callers that combine
// per-chunk partial results (e.g. an exact max reduction). It returns the
// number of chunks used; fn is called exactly once per chunk with ordinals
// 0..chunks-1 covering [0, n) in order.
func ForChunks(n int, fn func(chunk, lo, hi int)) int {
	c := chunks(n)
	if c == 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return 1
	}
	ensurePool()
	size := (n + c - 1) / c
	var wg sync.WaitGroup
	for i := 0; i < c-1; i++ {
		lo := i * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		chunk := i
		poolCh <- poolTask{fn: func(lo, hi int) { fn(chunk, lo, hi) }, lo: lo, hi: hi, wg: &wg}
	}
	// The caller's goroutine does the final chunk instead of idling at the
	// WaitGroup.
	lo := (c - 1) * size
	if lo > n {
		lo = n
	}
	fn(c-1, lo, n)
	wg.Wait()
	return c
}
