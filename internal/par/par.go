// Package par is the process-wide data-parallel worker budget shared by the
// simulator's hot kernels (internal/compress, internal/collective) and, since
// the model-compute work, the tensor/nn training kernels. It exists so
// goroutine-level parallelism inside a kernel composes with the job-level
// parallelism of the experiment engine and the trainer's per-rank goroutines
// instead of multiplying against them: the engine sizes the budget to
// GOMAXPROCS divided by its concurrent-job count, and every kernel chunks
// against that single number.
//
// Chunk boundaries are never allowed to influence results — callers may only
// parallelize loops whose iterations are independent (elementwise maps,
// gathers/scatters over disjoint indices, output-row partitions of a matmul)
// or whose reduction is exactly associative (float max). That is what keeps
// parallel runs bit-identical to scalar runs, the repo-wide reproducibility
// contract.
//
// Nested-dispatch policy: a chunk function may itself call For/ForChunks
// (an attention layer parallelized over samples calls matmul kernels that
// chunk over rows). A dispatch issued from a pool worker runs entirely
// inline on that worker — the partition is identical, only the placement
// changes — so workers never block feeding or waiting on the queue and the
// pool cannot deadlock or oversubscribe regardless of how rank goroutines ×
// engine jobs × kernels stack. Dispatches from non-worker goroutines that
// find the queue full likewise fall back to running the chunk inline, which
// keeps every caller wait-free except for joining chunks that workers are
// guaranteed to drain.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinWork is the scalar work (element count, or an explicit estimate via
// ForChunksWork) below which a chunked dispatch costs more in scheduling
// than it saves in compute; smaller loops run inline.
const MinWork = 8192

var budget atomic.Int64

func init() { budget.Store(int64(runtime.GOMAXPROCS(0))) }

// SetBudget sets the maximum number of chunks a single For call fans out
// into. The experiment engine calls this with GOMAXPROCS/parallel-jobs so
// kernel parallelism does not oversubscribe the machine; values below 1
// clamp to 1 (fully inline execution).
func SetBudget(n int) {
	if n < 1 {
		n = 1
	}
	budget.Store(int64(n))
}

// Budget returns the current chunk budget.
func Budget() int { return int(budget.Load()) }

// pool is a fixed set of worker goroutines sized once to GOMAXPROCS; For
// feeds it chunks. A persistent pool keeps steady-state iterations free of
// goroutine churn.
var (
	poolOnce sync.Once
	poolCh   chan poolTask
	// workerIDs holds the goroutine ids of the pool workers, so a dispatch
	// can detect that it is nested inside a chunk function and run inline.
	workerIDs sync.Map // uint64 → struct{}
)

type poolTask struct {
	// fn is the dispatch's chunk function itself (not a per-chunk closure),
	// so enqueueing c chunks allocates once per dispatch, not once per chunk.
	fn            func(chunk, lo, hi int)
	chunk, lo, hi int
	wg            *sync.WaitGroup
}

func ensurePool() {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		poolCh = make(chan poolTask, 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				workerIDs.Store(goid(), struct{}{})
				for t := range poolCh {
					t.fn(t.chunk, t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// goid parses the current goroutine's id from its stack header
// ("goroutine N [...]"). It costs well under a microsecond with a tiny
// truncated stack buffer, paid once per chunked dispatch — negligible next
// to the ≥MinWork of compute a dispatch covers.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const header = len("goroutine ")
	var id uint64
	for _, c := range buf[header:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// chunksFor returns how many contiguous ranges a dispatch splits n items of
// the given total scalar work into under the current budget: at most
// Budget(), never so many that chunks drop below MinWork/2 work, and never
// more than n. It is a pure function of (n, work, Budget()), which is what
// keeps chunk partitions — and therefore any per-chunk partial folds —
// deterministic at a fixed budget.
func chunksFor(n, work int) int {
	w := Budget()
	if w <= 1 || work < MinWork || n <= 1 {
		return 1
	}
	if max := work / (MinWork / 2); w > max {
		w = max
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PlanChunks reports how many chunks ForChunksWork(n, work, ·) would use at
// the current budget. Kernels call it to take an allocation-free scalar
// path when the answer is 1: passing a closure to ForChunksWork forces the
// closure to the heap even when it ends up running inline, and the budget-1
// train step is required to be allocation-free in steady state.
func PlanChunks(n, work int) int { return chunksFor(n, work) }

// For runs fn over [0, n) split into contiguous chunks executed on the
// worker pool. fn(lo, hi) must treat its iterations as independent of every
// other chunk's — results must not depend on chunk boundaries. Small n (or a
// budget of 1) runs inline on the caller's goroutine.
func For(n int, fn func(lo, hi int)) {
	ForChunks(n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunks is For with the chunk ordinal exposed, for callers that combine
// per-chunk partial results (e.g. an exact max reduction). It returns the
// number of chunks used; fn is called exactly once per chunk with ordinals
// 0..chunks-1 covering [0, n) in order.
func ForChunks(n int, fn func(chunk, lo, hi int)) int {
	return dispatch(n, chunksFor(n, n), fn)
}

// ForChunksWork is ForChunks with an explicit scalar-work estimate for the
// inline/chunk-count decision, for loops whose items are coarser than one
// element: matmul output rows (k·n flops each), im2col receptive-field rows,
// image planes, attention samples. n still bounds the chunk count; work
// only gates dispatch and granularity.
func ForChunksWork(n, work int, fn func(chunk, lo, hi int)) int {
	return dispatch(n, chunksFor(n, work), fn)
}

func dispatch(n, c int, fn func(chunk, lo, hi int)) int {
	if c == 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return 1
	}
	ensurePool()
	size := (n + c - 1) / c
	if _, nested := workerIDs.Load(goid()); nested {
		// Nested dispatch (a chunk function called a kernel): same
		// partition, executed inline on this worker. See the package comment.
		for i := 0; i < c; i++ {
			lo := i * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(i, lo, hi)
		}
		return c
	}
	var wg sync.WaitGroup
	for i := 0; i < c-1; i++ {
		lo := i * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		// Add before the send: a worker may run the task and Done it before
		// a post-send Add would execute.
		wg.Add(1)
		select {
		case poolCh <- poolTask{fn: fn, chunk: i, lo: lo, hi: hi, wg: &wg}:
		default:
			// Queue full (many rank goroutines dispatching at once): run the
			// chunk here rather than block the caller on the pool.
			fn(i, lo, hi)
			wg.Done()
		}
	}
	// The caller's goroutine does the final chunk instead of idling at the
	// WaitGroup.
	lo := (c - 1) * size
	if lo > n {
		lo = n
	}
	fn(c-1, lo, n)
	wg.Wait()
	return c
}
