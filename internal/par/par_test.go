package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	defer SetBudget(Budget())
	for _, budget := range []int{1, 2, 7, runtime.GOMAXPROCS(0) * 4} {
		for _, n := range []int{0, 1, MinWork - 1, MinWork, MinWork*3 + 17} {
			SetBudget(budget)
			hits := make([]int32, n)
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("budget %d n %d: index %d visited %d times", budget, n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartialsPartitionTheRange(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(8)
	n := MinWork * 4
	c := ForChunks(n, func(chunk, lo, hi int) {})
	if c < 1 {
		t.Fatalf("chunk count %d", c)
	}
	// Partial sums accumulated per chunk must combine to the scalar total.
	partial := make([]int64, c)
	got := ForChunks(n, func(chunk, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		partial[chunk] = s
	})
	if got != c {
		t.Fatalf("chunk count changed between identical calls: %d vs %d", got, c)
	}
	var total int64
	for _, s := range partial {
		total += s
	}
	want := int64(n) * int64(n-1) / 2
	if total != want {
		t.Fatalf("partials sum to %d, want %d", total, want)
	}
}

func TestSmallInputsStayInline(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(16)
	if c := ForChunks(MinWork-1, func(chunk, lo, hi int) {}); c != 1 {
		t.Fatalf("sub-MinWork input split into %d chunks", c)
	}
}

func TestSetBudgetClampsToOne(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(-3)
	if b := Budget(); b != 1 {
		t.Fatalf("budget %d after SetBudget(-3)", b)
	}
	if c := ForChunks(MinWork*8, func(chunk, lo, hi int) {}); c != 1 {
		t.Fatalf("budget 1 produced %d chunks", c)
	}
}
