package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	defer SetBudget(Budget())
	for _, budget := range []int{1, 2, 7, runtime.GOMAXPROCS(0) * 4} {
		for _, n := range []int{0, 1, MinWork - 1, MinWork, MinWork*3 + 17} {
			SetBudget(budget)
			hits := make([]int32, n)
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("budget %d n %d: index %d visited %d times", budget, n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartialsPartitionTheRange(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(8)
	n := MinWork * 4
	c := ForChunks(n, func(chunk, lo, hi int) {})
	if c < 1 {
		t.Fatalf("chunk count %d", c)
	}
	// Partial sums accumulated per chunk must combine to the scalar total.
	partial := make([]int64, c)
	got := ForChunks(n, func(chunk, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		partial[chunk] = s
	})
	if got != c {
		t.Fatalf("chunk count changed between identical calls: %d vs %d", got, c)
	}
	var total int64
	for _, s := range partial {
		total += s
	}
	want := int64(n) * int64(n-1) / 2
	if total != want {
		t.Fatalf("partials sum to %d, want %d", total, want)
	}
}

func TestSmallInputsStayInline(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(16)
	if c := ForChunks(MinWork-1, func(chunk, lo, hi int) {}); c != 1 {
		t.Fatalf("sub-MinWork input split into %d chunks", c)
	}
}

func TestSetBudgetClampsToOne(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(-3)
	if b := Budget(); b != 1 {
		t.Fatalf("budget %d after SetBudget(-3)", b)
	}
	if c := ForChunks(MinWork*8, func(chunk, lo, hi int) {}); c != 1 {
		t.Fatalf("budget 1 produced %d chunks", c)
	}
}

func TestForChunksWorkGatesOnWorkNotItems(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(8)
	// Few items but heavy per-item work: chunk count is bounded by items.
	if c := ForChunksWork(4, MinWork*100, func(chunk, lo, hi int) {}); c != 4 {
		t.Fatalf("4 heavy items split into %d chunks, want 4", c)
	}
	// Many items but sub-MinWork total work: stays inline.
	if c := ForChunksWork(MinWork*4, MinWork-1, func(chunk, lo, hi int) {}); c != 1 {
		t.Fatalf("light loop split into %d chunks, want 1", c)
	}
	// PlanChunks agrees with the dispatch decision.
	if p, c := PlanChunks(MinWork*4, MinWork*4), ForChunks(MinWork*4, func(chunk, lo, hi int) {}); p != c {
		t.Fatalf("PlanChunks %d != ForChunks %d", p, c)
	}
}

func TestNestedDispatchRunsInlineAndCoversRange(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(8)
	outer := MinWork * 2
	inner := MinWork * 2
	hits := make([]int32, inner)
	var nestedChunks int32
	// Outer dispatch lands on pool workers; the nested dispatch inside each
	// chunk must use the identical partition and complete without deadlock.
	For(outer, func(lo, hi int) {
		c := ForChunks(inner, func(chunk, lo2, hi2 int) {
			for i := lo2; i < hi2; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		atomic.StoreInt32(&nestedChunks, int32(c))
	})
	// Every outer chunk ran the nested loop once over the full range.
	outerChunks := PlanChunks(outer, outer)
	for i, h := range hits {
		if int(h) != outerChunks {
			t.Fatalf("index %d visited %d times, want %d", i, h, outerChunks)
		}
	}
	// The nested partition matches the non-nested plan at the same budget.
	if want := PlanChunks(inner, inner); int(nestedChunks) != want {
		t.Fatalf("nested dispatch used %d chunks, plan says %d", nestedChunks, want)
	}
}

func TestConcurrentDispatchesDrainWithoutDeadlock(t *testing.T) {
	defer SetBudget(Budget())
	SetBudget(8)
	// More concurrent dispatchers than pool workers forces the queue-full
	// inline fallback on a small machine and exercises the pool under
	// contention everywhere else.
	const dispatchers = 16
	var total atomic.Int64
	done := make(chan struct{})
	for d := 0; d < dispatchers; d++ {
		go func() {
			defer func() { done <- struct{}{} }()
			For(MinWork*4, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					local++
				}
				total.Add(local)
			})
		}()
	}
	for d := 0; d < dispatchers; d++ {
		<-done
	}
	if got, want := total.Load(), int64(dispatchers*MinWork*4); got != want {
		t.Fatalf("covered %d iterations, want %d", got, want)
	}
}
