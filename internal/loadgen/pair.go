package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"

	"pactrain/internal/serve"
)

// Pair is an in-process two-instance serving cluster wired as cache peers —
// the smallest deployment where the cross-instance paths (peer hits, peer
// singleflight) exist at all. Tests and the perf lane use it to measure a
// scaled-out service without containers or real networks.
type Pair struct {
	// Servers are the two serve instances, peer ids "peer0" and "peer1".
	Servers [2]*serve.Server
	// URLs are the instances' base URLs ("http://127.0.0.1:PORT").
	URLs []string

	https     [2]*http.Server
	listeners [2]net.Listener
}

// PairOptions shapes both instances of a Pair.
type PairOptions struct {
	// CacheDirs are the per-instance cache directories; empty strings run
	// both instances memo-only (peer serving still works from the memo).
	CacheDirs [2]string
	// Workers and QueueDepth apply to each instance (serve defaults when 0).
	Workers, QueueDepth int
	// Parallelism bounds each instance's engine (serve default when 0).
	Parallelism int
	// RateLimit and RateBurst configure each instance's per-client token
	// bucket (0 disables, as in serve.Options).
	RateLimit float64
	RateBurst int
	// Log receives both instances' progress lines; nil discards them.
	Log io.Writer
}

// NewPair boots both instances. Each instance needs the other's base URL
// before it exists, so the ports are reserved first — listen on :0 twice,
// read the bound addresses, then construct the servers against those URLs
// and serve on the already-open listeners.
func NewPair(opt PairOptions) (*Pair, error) {
	p := &Pair{}
	for i := range p.listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			p.close()
			return nil, fmt.Errorf("loadgen: reserve listener %d: %w", i, err)
		}
		p.listeners[i] = ln
		p.URLs = append(p.URLs, "http://"+ln.Addr().String())
	}
	for i := range p.Servers {
		s, err := serve.New(serve.Options{
			Parallelism: opt.Parallelism,
			CacheDir:    opt.CacheDirs[i],
			Workers:     opt.Workers,
			QueueDepth:  opt.QueueDepth,
			RateLimit:   opt.RateLimit,
			RateBurst:   opt.RateBurst,
			CachePeers:  []string{p.URLs[1-i]},
			PeerID:      fmt.Sprintf("peer%d", i),
			Log:         opt.Log,
		})
		if err != nil {
			p.close()
			return nil, err
		}
		p.Servers[i] = s
		p.https[i] = &http.Server{Handler: s.Handler()}
		go func(hs *http.Server, ln net.Listener) {
			// ErrServerClosed is the normal shutdown path; anything else
			// surfaces as request failures in the run's Result.
			_ = hs.Serve(ln)
		}(p.https[i], p.listeners[i])
	}
	return p, nil
}

// Shutdown drains both instances and closes their HTTP servers.
func (p *Pair) Shutdown(ctx context.Context) error {
	var first error
	for _, s := range p.Servers {
		if s == nil {
			continue
		}
		if err := s.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, hs := range p.https {
		if hs == nil {
			continue
		}
		// The drain above finished every job, so no peer consult or client
		// request can still be running; what remains on these servers is
		// idle keep-alives and transport-dialed-but-unused connections
		// (StateNew, which a graceful Shutdown waits 5 whole seconds to
		// reap). Hard-close is instant and loses nothing here.
		if err := hs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close releases whatever a failed NewPair already acquired.
func (p *Pair) close() {
	for _, ln := range p.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
}
