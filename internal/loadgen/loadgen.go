// Package loadgen drives a running pactrain-serve instance (or a pair of
// them) with an open-loop arrival process and measures what a client fleet
// would experience: submit-to-done latency quantiles, throughput, and how
// much of the arriving work the serving tier resolved without training.
//
// Open loop means arrivals are scheduled on the clock, not gated on
// completions — the generator keeps submitting at the configured rate even
// while the service is slow, which is what makes queue growth, 429
// backpressure, and admission behavior observable at all (a closed-loop
// client self-throttles and hides them).
//
// The submission mix is three kinds drawn deterministically from a seeded
// RNG:
//
//   - unique: a fresh seed, so a fingerprint the service has never seen —
//     this is the work that must train;
//   - duplicate: re-submission of an already-issued request while it may
//     still be in flight — exercises request coalescing and engine dedup;
//   - recost: re-submission of a request observed to complete — exercises
//     the cache paths (memo, disk, peer).
//
// Results are measured, not asserted: the perf lane (PerfCases) turns them
// into BENCH_* entries under the regression gate, and the serve-load CI
// smoke lane bounds them with explicit checks.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"pactrain/internal/serve"
)

// Profile shapes one load run.
type Profile struct {
	// Count is the total number of arrivals (min 1).
	Count int
	// Rate is the open-loop arrival rate in submissions per second (min 1).
	Rate float64
	// DupFrac and RecostFrac are the duplicate and recost shares of the
	// mix; the remainder is unique. Clamped so the three sum to at most 1.
	DupFrac, RecostFrac float64
	// Experiment is the submitted experiment id (default "ablation-tern",
	// the smallest grid that really trains).
	Experiment string
	// Quick selects quick grids (default true via DefaultProfile).
	Quick bool
	// World and Samples shape the grid (defaults 2 and 64: the smallest
	// honest training).
	World, Samples int
	// BaseSeed numbers the unique submissions' config seeds; arrival i of a
	// unique kind submits BaseSeed+i.
	BaseSeed uint64
	// RNGSeed seeds the mix draw, so a profile is reproducible.
	RNGSeed int64
	// Timeout bounds the whole run including waiting for completions
	// (default 2 minutes).
	Timeout time.Duration
	// Client overrides the HTTP client (default: 10s request timeout).
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// DefaultProfile is the quick profile the CI smoke lane and the perf grid
// run: 24 arrivals at 40/s, duplicate-heavy with a recost tail.
func DefaultProfile() Profile {
	return Profile{
		Count:      24,
		Rate:       40,
		DupFrac:    0.5,
		RecostFrac: 0.25,
		Experiment: "ablation-tern",
		Quick:      true,
		World:      2,
		Samples:    64,
		BaseSeed:   100,
		RNGSeed:    1,
		Timeout:    2 * time.Minute,
	}
}

func (p Profile) normalized() Profile {
	if p.Count < 1 {
		p.Count = 1
	}
	if p.Rate <= 0 {
		p.Rate = 1
	}
	if p.DupFrac < 0 {
		p.DupFrac = 0
	}
	if p.RecostFrac < 0 {
		p.RecostFrac = 0
	}
	if sum := p.DupFrac + p.RecostFrac; sum > 1 {
		p.DupFrac /= sum
		p.RecostFrac /= sum
	}
	if p.Experiment == "" {
		p.Experiment = "ablation-tern"
	}
	if p.World == 0 {
		p.World = 2
	}
	if p.Samples == 0 {
		p.Samples = 64
	}
	if p.Timeout <= 0 {
		p.Timeout = 2 * time.Minute
	}
	if p.Client == nil {
		p.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return p
}

// Result is what one load run measured.
type Result struct {
	// Arrivals is the number of submissions generated (the profile Count).
	Arrivals int `json:"arrivals"`
	// Unique, Duplicate, Recost split the arrivals by kind.
	Unique    int `json:"unique"`
	Duplicate int `json:"duplicate"`
	Recost    int `json:"recost"`
	// Accepted counts 202 responses; Coalesced the subset folded onto an
	// in-flight twin; Retried the submissions that hit at least one 429
	// before acceptance; Failed the arrivals that never completed.
	Accepted  int `json:"accepted"`
	Coalesced int `json:"coalesced"`
	Retried   int `json:"retried"`
	Failed    int `json:"failed"`
	// WallSeconds is the whole run, first submit to last completion.
	WallSeconds float64 `json:"wall_seconds"`
	// JobsPerSec is Arrivals/WallSeconds — delivered throughput.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50DoneSeconds / P99DoneSeconds are submit-to-done latency quantiles
	// over completed arrivals (submission time to observed done, polling).
	P50DoneSeconds float64 `json:"p50_done_seconds"`
	P99DoneSeconds float64 `json:"p99_done_seconds"`
	// TrainedDelta is the engine trainings the run caused, summed over
	// targets; TrainFraction is TrainedDelta/Arrivals — the measure of how
	// well coalescing, dedup, cache, and peers absorbed duplicate work.
	TrainedDelta  int     `json:"trained_delta"`
	TrainFraction float64 `json:"train_fraction"`
	// PeerHitsDelta sums the targets' peer-protocol hits caused by the run.
	PeerHitsDelta int `json:"peer_hits_delta"`
	// CacheHitRatio is the targets' final reported ratio (max across
	// targets — they converge as the pair warms).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// arrival tracks one generated submission end to end.
type arrival struct {
	req       serve.SubmitRequest
	target    string
	kind      string
	submitted time.Time
	jobID     string
	doneIn    float64
	retried   bool
	coalesced bool
	err       error
}

// Run drives the profile against one or more target base URLs, round-robin.
// It returns after every accepted arrival completes (or the profile timeout
// expires, counting stragglers as failed).
func Run(targets []string, p Profile) (*Result, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	p = p.normalized()
	logf := func(format string, args ...any) {
		if p.Log != nil {
			fmt.Fprintf(p.Log, format+"\n", args...)
		}
	}

	before := make([]serve.StatsView, len(targets))
	for i, tgt := range targets {
		st, err := fetchStats(p.Client, tgt)
		if err != nil {
			return nil, fmt.Errorf("loadgen: target %s: %w", tgt, err)
		}
		before[i] = st
	}

	rng := rand.New(rand.NewSource(p.RNGSeed))
	res := &Result{Arrivals: p.Count}
	arrivals := make([]*arrival, 0, p.Count)
	var (
		mu        sync.Mutex // guards issued/completed below
		issued    []serve.SubmitRequest
		completed []serve.SubmitRequest
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(p.Timeout)
	interval := time.Duration(float64(time.Second) / p.Rate)
	start := time.Now()
	nextSeed := p.BaseSeed

	for i := 0; i < p.Count; i++ {
		// Open loop: arrival i fires at start + i*interval regardless of
		// how previous arrivals are doing.
		if wait := time.Until(start.Add(time.Duration(i) * interval)); wait > 0 {
			time.Sleep(wait)
		}
		kind := "unique"
		switch draw := rng.Float64(); {
		case draw < p.DupFrac:
			kind = "duplicate"
		case draw < p.DupFrac+p.RecostFrac:
			kind = "recost"
		}
		mu.Lock()
		var req serve.SubmitRequest
		switch {
		case kind == "recost" && len(completed) > 0:
			req = completed[rng.Intn(len(completed))]
		case kind != "unique" && len(issued) > 0:
			// duplicate, or a recost before anything completed
			kind = "duplicate"
			req = issued[rng.Intn(len(issued))]
		default:
			kind = "unique"
			req = serve.SubmitRequest{
				Experiment: p.Experiment, Quick: p.Quick,
				World: p.World, Samples: p.Samples, Seed: nextSeed,
			}
			nextSeed++
		}
		issued = append(issued, req)
		mu.Unlock()

		a := &arrival{req: req, target: targets[i%len(targets)], kind: kind}
		arrivals = append(arrivals, a)
		switch kind {
		case "unique":
			res.Unique++
		case "duplicate":
			res.Duplicate++
		case "recost":
			res.Recost++
		}
		wg.Add(1)
		go func(a *arrival) {
			defer wg.Done()
			a.submitted = time.Now()
			runArrival(p.Client, a, deadline)
			if a.err == nil {
				mu.Lock()
				completed = append(completed, a.req)
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()

	var latencies []float64
	for _, a := range arrivals {
		if a.err != nil {
			res.Failed++
			logf("loadgen: %s %s failed: %v", a.kind, a.target, a.err)
			continue
		}
		res.Accepted++
		if a.coalesced {
			res.Coalesced++
		}
		if a.retried {
			res.Retried++
		}
		latencies = append(latencies, a.doneIn)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.P50DoneSeconds = quantile(latencies, 0.50)
		res.P99DoneSeconds = quantile(latencies, 0.99)
	}
	if res.WallSeconds > 0 {
		res.JobsPerSec = float64(res.Arrivals) / res.WallSeconds
	}

	for i, tgt := range targets {
		st, err := fetchStats(p.Client, tgt)
		if err != nil {
			return nil, fmt.Errorf("loadgen: target %s: %w", tgt, err)
		}
		res.TrainedDelta += st.Engine.Trained - before[i].Engine.Trained
		res.PeerHitsDelta += st.Engine.PeerHits - before[i].Engine.PeerHits
		if st.CacheHitRatio > res.CacheHitRatio {
			res.CacheHitRatio = st.CacheHitRatio
		}
	}
	res.TrainFraction = float64(res.TrainedDelta) / float64(res.Arrivals)
	logf("loadgen: %d arrivals (%d unique / %d dup / %d recost): %d trained, p50 %.2fs, p99 %.2fs, %.1f jobs/s",
		res.Arrivals, res.Unique, res.Duplicate, res.Recost,
		res.TrainedDelta, res.P50DoneSeconds, res.P99DoneSeconds, res.JobsPerSec)
	return res, nil
}

// runArrival submits one request (honoring Retry-After across 429s) and
// polls the job to completion.
func runArrival(client *http.Client, a *arrival, deadline time.Time) {
	raw, err := json.Marshal(a.req)
	if err != nil {
		a.err = err
		return
	}
	var jobID string
	for {
		if time.Now().After(deadline) {
			a.err = fmt.Errorf("deadline before acceptance")
			return
		}
		resp, err := client.Post(a.target+"/v1/experiments", "application/json", bytes.NewReader(raw))
		if err != nil {
			a.err = err
			return
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			a.err = err
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Admission control asked for backoff; honor its estimate.
			a.retried = true
			retry := 1
			if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
				retry = v
			}
			time.Sleep(time.Duration(retry) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			a.err = fmt.Errorf("submit status %d: %s", resp.StatusCode, body)
			return
		}
		var sub struct {
			JobID     string `json:"job_id"`
			Coalesced bool   `json:"coalesced"`
		}
		if err := json.Unmarshal(body, &sub); err != nil {
			a.err = err
			return
		}
		jobID, a.coalesced = sub.JobID, sub.Coalesced
		break
	}
	a.jobID = jobID

	for {
		if time.Now().After(deadline) {
			a.err = fmt.Errorf("deadline before completion of %s", jobID)
			return
		}
		resp, err := client.Get(a.target + "/v1/jobs/" + jobID)
		if err != nil {
			a.err = err
			return
		}
		var view serve.JobView
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&view)
		resp.Body.Close()
		if err != nil {
			a.err = err
			return
		}
		switch view.State {
		case serve.JobDone:
			a.doneIn = time.Since(a.submitted).Seconds()
			return
		case serve.JobFailed:
			a.err = fmt.Errorf("job %s failed: %s", jobID, view.Error)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// quantile reads q from sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func fetchStats(client *http.Client, base string) (serve.StatsView, error) {
	var st serve.StatsView
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st)
	return st, err
}
