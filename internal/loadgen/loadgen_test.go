package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pactrain/internal/serve"
)

// sameRequest is the one grid every cross-instance test submits: small
// enough to really train under -race in seconds.
func sameRequest() serve.SubmitRequest {
	return serve.SubmitRequest{Experiment: "ablation-tern", Quick: true, World: 2, Samples: 64, Seed: 5}
}

func newPair(t *testing.T) *Pair {
	t.Helper()
	pair, err := NewPair(PairOptions{
		CacheDirs: [2]string{t.TempDir(), t.TempDir()},
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := pair.Shutdown(ctx); err != nil {
			t.Errorf("pair shutdown: %v", err)
		}
	})
	return pair
}

func submit(t *testing.T, base string, req serve.SubmitRequest) string {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to %s: status %d: %s", base, resp.StatusCode, body)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	return sub.JobID
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var view serve.JobView
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case serve.JobDone:
			return
		case serve.JobFailed:
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

func resultBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// TestPairSameFingerprintTrainsOnce is the scaled-out correctness contract:
// the same submission racing into both instances of a peer pair trains
// exactly once across the cluster, and both instances serve report bytes
// identical to a single instance serving the same request alone.
func TestPairSameFingerprintTrainsOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real grids; run in the full or serve-load-smoke lane")
	}

	// Baseline: one isolated instance serving the request.
	single, err := serve.New(serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := single.Shutdown(ctx); err != nil {
			t.Errorf("single shutdown: %v", err)
		}
	}()
	id := submit(t, ts.URL, sameRequest())
	waitDone(t, ts.URL, id)
	want := resultBytes(t, ts.URL, id)
	wantTrained := single.EngineStats().Trained
	if wantTrained == 0 {
		t.Fatal("baseline trained nothing; the test would prove nothing")
	}

	// The pair: the same request races into both instances at once.
	pair := newPair(t)
	ids := make([]string, 2)
	var wg sync.WaitGroup
	for i, base := range pair.URLs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			ids[i] = submit(t, base, sameRequest())
		}(i, base)
	}
	wg.Wait()
	for i, base := range pair.URLs {
		waitDone(t, base, ids[i])
	}

	// Exactly one training across the cluster: the engine-level peer
	// singleflight resolved the race, whichever instance won it.
	trained := 0
	for _, s := range pair.Servers {
		trained += s.EngineStats().Trained
	}
	if trained != wantTrained {
		t.Fatalf("pair trained %d cells, want exactly the single-instance %d", trained, wantTrained)
	}

	// Byte-identity on every serving path.
	for i, base := range pair.URLs {
		got := resultBytes(t, base, ids[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("instance %d result differs from single-instance bytes:\n got %d bytes\nwant %d bytes", i, len(got), len(want))
		}
	}

	// The losing instance resolved over the wire, not by retraining.
	peerActivity := 0
	for _, s := range pair.Servers {
		st := s.EngineStats()
		peerActivity += st.PeerHits + st.PeerMisses
	}
	if peerActivity == 0 {
		t.Fatal("no peer-protocol activity recorded; the instances never consulted each other")
	}
}

// TestLoadgenQuickProfile is the serve-load smoke lane: the quick profile
// against an in-process pair must complete every arrival, produce sane
// quantiles, and show cross-instance dedup absorbing duplicate work.
func TestLoadgenQuickProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real grids; run in the full or serve-load-smoke lane")
	}
	pair := newPair(t)

	// Calibrate how many grid cells one submission of the profile's
	// experiment trains (seed 5 is disjoint from the profile's seed range,
	// so this warms nothing the load run uses).
	calID := submit(t, pair.URLs[0], sameRequest())
	waitDone(t, pair.URLs[0], calID)
	cellsPerGrid := 0
	for _, s := range pair.Servers {
		cellsPerGrid += s.EngineStats().Trained
	}
	if cellsPerGrid == 0 {
		t.Fatal("calibration submission trained nothing")
	}

	profile := DefaultProfile()
	profile.Count = 12 // smoke-sized: ~3 unique grids at the default mix
	profile.Log = testWriter{t}
	res, err := Run(pair.URLs, profile)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d of %d arrivals failed", res.Failed, res.Arrivals)
	}
	if res.Accepted != res.Arrivals {
		t.Fatalf("accepted %d of %d arrivals", res.Accepted, res.Arrivals)
	}
	if got := res.Unique + res.Duplicate + res.Recost; got != res.Arrivals {
		t.Fatalf("mix %d unique + %d dup + %d recost != %d arrivals", res.Unique, res.Duplicate, res.Recost, got)
	}
	if res.P50DoneSeconds <= 0 || res.P99DoneSeconds < res.P50DoneSeconds {
		t.Fatalf("quantiles p50 %.3fs p99 %.3fs are not sane", res.P50DoneSeconds, res.P99DoneSeconds)
	}
	if res.JobsPerSec <= 0 {
		t.Fatalf("jobs/sec %.3f", res.JobsPerSec)
	}
	if res.TrainedDelta == 0 {
		t.Fatal("the run trained nothing; unique arrivals must train")
	}
	// The acceptance contract: under a duplicate-heavy mix spread across
	// both instances, each unique fingerprint trains exactly once
	// cluster-wide — duplicates and recosts resolve via coalescing, the
	// engine memo, the disk cache, or the peer protocol, never by
	// retraining.
	if want := res.Unique * cellsPerGrid; res.TrainedDelta != want {
		t.Fatalf("trained %d cells for %d unique arrivals (%d cells/grid), want exactly %d",
			res.TrainedDelta, res.Unique, cellsPerGrid, want)
	}
	// Duplicates round-robin onto both instances, so the cross-instance
	// paths must have fired: either a peer served a result, or a duplicate
	// coalesced/deduped locally while its twin trained on the sibling.
	peerActivity := 0
	for _, s := range pair.Servers {
		st := s.EngineStats()
		peerActivity += st.PeerHits + st.PeerMisses + st.PeerErrors
	}
	if peerActivity == 0 {
		t.Fatal("no peer-protocol activity; the pair is not wired as peers")
	}
	if res.TrainFraction <= 0 {
		t.Fatalf("train fraction %.3f", res.TrainFraction)
	}
}

// testWriter adapts t.Logf so loadgen progress lands in the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}
