package loadgen

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"pactrain/internal/harness"
)

// PerfCases returns the serve-throughput entries for the perf-regression
// grid (harness.PerfOptions.Extra): one load run against a fresh in-process
// two-instance cache-peer pair, reported as four entries under the same
// calibration normalization and >10% tolerance as the kernel benchmarks.
//
//   - serve-loadgen: wall seconds of the whole run — submission, queueing,
//     training, and completion of every arrival (throughput, inverted:
//     arrivals/wall is the jobs/sec headline the run logs).
//   - serve-p50-done, serve-p99-done: submit-to-done latency quantiles.
//   - serve-train-fraction: engine trainings per arrival across the pair.
//     This entry pins the cross-instance dedup contract numerically: if the
//     peer-singleflight path breaks, duplicates submitted to the sibling
//     instance retrain and the fraction roughly doubles — far past the 10%
//     gate — so the regression fails CI deterministically without a
//     separate assertion.
//
// The quantile and fraction entries are value-mode cases reading the result
// the serve-loadgen entry captured; they cost nothing to "run". The pair's
// cross-instance cache-hit ratio is logged for the record but not gated
// (its healthy direction is up, and the train-fraction entry already gates
// the same failure).
//
// The serve-loadgen entry runs three times — a fresh pair each time — and
// the value entries fold per-metric minima across those runs. A single
// run's p50 swings with goroutine scheduling far past the 10% tolerance;
// the minimum of three is the same low-noise estimator every wall-time
// entry in the grid already uses.
func PerfCases(quick bool, log io.Writer) []harness.PerfCase {
	profile := DefaultProfile()
	profile.Log = log
	if !quick {
		// The full grid doubles the offered load: more arrivals at a higher
		// rate deepen the queues and sharpen the tail quantiles.
		profile.Count = 48
		profile.Rate = 80
	}
	var captured Result
	runs := 0
	run := func() {
		dirs := [2]string{}
		for i := range dirs {
			dir, err := os.MkdirTemp("", "pactrain-serve-perf-*")
			if err != nil {
				panic(fmt.Sprintf("loadgen perf: %v", err))
			}
			defer os.RemoveAll(dir)
			dirs[i] = dir
		}
		pair, err := NewPair(PairOptions{CacheDirs: dirs, Workers: 2, Log: log})
		if err != nil {
			panic(fmt.Sprintf("loadgen perf: %v", err))
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if err := pair.Shutdown(ctx); err != nil {
				panic(fmt.Sprintf("loadgen perf: shutdown: %v", err))
			}
		}()
		res, err := Run(pair.URLs, profile)
		if err != nil {
			panic(fmt.Sprintf("loadgen perf: %v", err))
		}
		if res.Failed > 0 {
			panic(fmt.Sprintf("loadgen perf: %d of %d arrivals failed", res.Failed, res.Arrivals))
		}
		if runs == 0 {
			captured = *res
		} else {
			captured.P50DoneSeconds = min(captured.P50DoneSeconds, res.P50DoneSeconds)
			captured.P99DoneSeconds = min(captured.P99DoneSeconds, res.P99DoneSeconds)
			captured.TrainFraction = min(captured.TrainFraction, res.TrainFraction)
		}
		runs++
		if log != nil {
			fmt.Fprintf(log, "perf: serve pair cache-hit ratio %.2f, %d peer hits\n",
				res.CacheHitRatio, res.PeerHitsDelta)
		}
	}
	return []harness.PerfCase{
		{Name: "serve-loadgen", Runs: 3, Fn: run},
		{Name: "serve-p50-done", Runs: 1, Value: func() float64 { return captured.P50DoneSeconds }},
		{Name: "serve-p99-done", Runs: 1, Value: func() float64 { return captured.P99DoneSeconds }},
		{Name: "serve-train-fraction", Runs: 1, Value: func() float64 { return captured.TrainFraction }},
	}
}
