// Package serve turns the experiment harness into a long-running service.
// Where cmd/pactrain-bench builds an engine, prints, and exits — taking its
// singleflight table and warmed cache with it — a serve.Server owns one
// shared harness/engine for its whole lifetime and serves experiment
// artifacts to many concurrent clients over HTTP/JSON:
//
//   - POST /v1/experiments submits any registered experiment grid
//     (harness.Experiments) and returns a job id; identical in-flight
//     submissions coalesce onto the same job, a request-level singleflight
//     stacked above the engine's config-level one.
//   - GET /v1/jobs/{id} polls status and per-job engine progress (derived
//     from the engine's event stream, not log scraping); GET
//     /v1/jobs/{id}/result returns the report bytes, identical to
//     `pactrain-bench -exp <id> -json` output for the same options.
//   - GET /v1/jobs/{id}/events streams the job's lifecycle transitions,
//     engine events, and trainer heartbeats as Server-Sent Events, with
//     exact Last-Event-ID replay from a bounded per-job ring.
//   - GET /healthz, GET /v1/stats, and GET /metrics expose liveness, the
//     engine counters, and a Prometheus-style text exposition.
//
// Jobs run on a bounded worker pool above the engine's own training
// parallelism; Shutdown drains the queue gracefully, finishing accepted
// jobs while rejecting new submissions.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"pactrain/internal/audit"
	"pactrain/internal/collective"
	"pactrain/internal/ddp"
	"pactrain/internal/harness"
	"pactrain/internal/harness/engine"
	"pactrain/internal/metrics"
)

// Submission failure modes the HTTP layer maps to status codes.
var (
	// ErrUnknownExperiment rejects ids missing from the registry (400).
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrUnknownCollective rejects collective-algorithm names missing from
	// the collective registry (400).
	ErrUnknownCollective = errors.New("unknown collective algorithm")
	// ErrUnknownOverlap rejects backward-overlap selectors outside the
	// ddp.OverlapNames vocabulary (400).
	ErrUnknownOverlap = errors.New("unknown overlap mode")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull rejects submissions when the job queue is at capacity
	// (429).
	ErrQueueFull = errors.New("job queue is full")
)

// Options configures a Server.
type Options struct {
	// Parallelism bounds concurrent trainings inside the engine (min 1).
	Parallelism int
	// CacheDir enables the engine's on-disk result cache; it is swept for
	// stale entries at startup.
	CacheDir string
	// MemoLimit bounds the engine's in-memory singleflight Result memo
	// (engine.Options.MemoLimit): 0 keeps every trained Result for the
	// process lifetime; with a limit and a CacheDir, the oldest
	// disk-persisted entries evict and re-queries round-trip through the
	// disk cache.
	MemoLimit int
	// Workers bounds concurrently running experiment jobs (default 2).
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs (default 64).
	QueueDepth int
	// RateLimit enables the per-client token bucket: each client may submit
	// this many requests per second sustained (RateBurst at once), beyond
	// which submissions 429 with a Retry-After. 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity per client (default 1 when
	// RateLimit is set).
	RateBurst int
	// CachePeers lists sibling instances' base URLs for the engine's
	// cache-peer protocol: a local cache miss consults each peer before
	// training (engine.Options.PeerURLs). The peer endpoint is served under
	// /cache/v1/ on this server's own Handler.
	CachePeers []string
	// PeerID names this instance in the peer protocol; required unique and
	// stable across the peer group when CachePeers is set (the protocol
	// breaks symmetric races by ID order).
	PeerID string
	// HistoryLimit bounds retained job records (default 256): once the
	// server holds more, the oldest finished jobs — and their report bytes
	// — are evicted, so a long-lived process does not grow without bound.
	// Queued and running jobs are never evicted.
	HistoryLimit int
	// Log receives engine and service progress lines; nil discards them.
	Log io.Writer
	// LogFormat selects the log shape: "" or "text" keeps the human
	// progress lines; "json" writes one JSON object per observable event
	// (the same EventPayload the SSE stream sends) and silences the
	// free-form engine lines.
	LogFormat string
	// PProf exposes net/http/pprof under /debug/pprof/ on the service
	// handler. Off by default: the profiling surface is for operators, not
	// API clients.
	PProf bool
}

// Server owns the shared engine and the async job queue. Construct with
// New, expose Handler over HTTP, and stop with Shutdown.
type Server struct {
	opt    Options
	engine *engine.Engine
	met    *serveMetrics
	sweep  engine.SweepResult
	start  time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string
	inflight  map[string]*job // submission key -> queued/running job
	running   map[string]*job // job id -> running job (event attribution)
	seq       int
	q         jobQueue
	qcond     *sync.Cond // signalled on push and close; waits under s.mu
	drain     drainEstimator
	limiter   *rateLimiter
	draining  bool
	recent    []engine.Event
	simServed float64
	// rateLimitedTotal counts submissions rejected by the token bucket.
	rateLimitedTotal int
	// Lifetime totals: unlike the per-state tallies over s.jobs, these
	// survive history eviction, so /v1/stats and /metrics agree forever.
	doneTotal, failedTotal, coalescedTotal int
	// auditCalibMax is the lifetime-high calibration error across every
	// audited run — the drift headline pactrain_audit_calibration_max_abs_error
	// reports.
	auditCalibMax float64

	wg sync.WaitGroup
}

// recentEvents bounds the event ring surfaced on /v1/stats.
const recentEvents = 32

// syncWriter serializes concurrent jobs' progress lines onto one writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// New builds a server, sweeps the on-disk cache, and starts the worker
// pool. Callers must eventually call Shutdown.
func New(opt Options) (*Server, error) {
	if opt.Parallelism < 1 {
		opt.Parallelism = 1
	}
	if opt.Workers < 1 {
		opt.Workers = 2
	}
	if opt.QueueDepth < 1 {
		opt.QueueDepth = 64
	}
	if opt.HistoryLimit < 1 {
		opt.HistoryLimit = 256
	}
	if opt.Log == nil {
		opt.Log = io.Discard
	}
	opt.Log = &syncWriter{w: opt.Log}

	s := &Server{
		opt:      opt,
		met:      newServeMetrics(),
		start:    time.Now(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		running:  make(map[string]*job),
		limiter:  newRateLimiter(opt.RateLimit, opt.RateBurst),
	}
	s.qcond = sync.NewCond(&s.mu)
	engineLog := opt.Log
	if opt.LogFormat == "json" {
		// Structured mode: every observable step is a JSON event line; the
		// engine's free-form progress lines would interleave garbage.
		engineLog = io.Discard
	}
	s.engine = engine.New(engine.Options{
		Parallelism: opt.Parallelism,
		CacheDir:    opt.CacheDir,
		MemoLimit:   opt.MemoLimit,
		Log:         engineLog,
		OnEvent:     s.onEngineEvent,
		PeerURLs:    opt.CachePeers,
		PeerID:      opt.PeerID,
	})

	sweep, err := s.engine.SweepCache()
	if err != nil {
		// A failed sweep leaves stale entries behind but the cache still
		// treats them as misses; serving beats dying.
		s.logf("serve: cache sweep failed: %v", err)
	}
	s.sweep = sweep
	if opt.CacheDir != "" {
		s.logf("serve: cache %s: %s", opt.CacheDir, sweep)
	}

	for range opt.Workers {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.nextJob()
				if !ok {
					return
				}
				s.run(j)
			}
		}()
	}
	return s, nil
}

// nextJob blocks until the admission queue yields a job (high priority
// first) or the drained queue closes.
func (s *Server) nextJob() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.q.depth() == 0 && !s.q.closed {
		s.qcond.Wait()
	}
	if j := s.q.pop(); j != nil {
		return j, true
	}
	return nil, false
}

// serveMetrics holds the server's typed instrument handles on one
// metrics.Registry. Every scalar is written by refreshDerived from the same
// locked state /v1/stats reads, so the two endpoints can never disagree;
// the histograms observe at event time (completions, cache hits).
type serveMetrics struct {
	reg *metrics.Registry

	jobsQueued      *metrics.Counter
	jobsRunning     *metrics.Counter
	jobsDone        *metrics.Counter
	jobsFailed      *metrics.Counter
	jobsCoalesced   *metrics.Counter
	engineSubmitted *metrics.Counter
	engineTrained   *metrics.Counter
	engineDeduped   *metrics.Counter
	engineCacheHits *metrics.Counter
	simServed       *metrics.Counter
	cacheSwept      *metrics.Counter
	draining        *metrics.Counter
	queueDepth      *metrics.Counter
	queueDepthHigh  *metrics.Counter
	queueDepthLow   *metrics.Counter
	cacheHitRatio   *metrics.Counter
	drainRate       *metrics.Counter
	rateLimited     *metrics.Counter
	peerHits        *metrics.Counter
	peerMisses      *metrics.Counter
	peerErrors      *metrics.Counter

	auditRuns         *metrics.Counter
	auditOracleRegret *metrics.Counter
	auditStaticRegret *metrics.Counter
	auditCalibMax     *metrics.Counter

	jobWall     *metrics.Histogram
	jobSim      *metrics.Histogram
	cacheHitAge *metrics.Histogram
}

func newServeMetrics() *serveMetrics {
	reg := metrics.NewRegistry()
	reg.Info("pactrain_build_info", "build identity of the serving binary", metrics.BuildInfoLabels())
	return &serveMetrics{
		reg:               reg,
		jobsQueued:        reg.Gauge("pactrain_serve_jobs_queued", "jobs accepted and waiting for a worker"),
		jobsRunning:       reg.Gauge("pactrain_serve_jobs_running", "jobs currently executing"),
		jobsDone:          reg.Counter("pactrain_serve_jobs_done_total", "jobs completed successfully"),
		jobsFailed:        reg.Counter("pactrain_serve_jobs_failed_total", "jobs that ended in error"),
		jobsCoalesced:     reg.Counter("pactrain_serve_jobs_coalesced_total", "submissions folded onto an identical in-flight job"),
		engineSubmitted:   reg.Counter("pactrain_engine_jobs_submitted_total", "grid cells submitted to the engine"),
		engineTrained:     reg.Counter("pactrain_engine_trainings_total", "trainings the engine actually executed"),
		engineDeduped:     reg.Counter("pactrain_engine_deduped_total", "grid cells satisfied by an identical in-process job"),
		engineCacheHits:   reg.Counter("pactrain_engine_cache_hits_total", "grid cells satisfied from the on-disk cache"),
		simServed:         reg.Counter("pactrain_serve_sim_seconds_served_total", "simulated training seconds delivered to clients"),
		cacheSwept:        reg.Counter("pactrain_serve_cache_swept_total", "stale or corrupt cache entries removed at startup"),
		draining:          reg.Gauge("pactrain_serve_draining", "1 while graceful shutdown is in progress"),
		queueDepth:        reg.Gauge("pactrain_serve_queue_depth", "submissions sitting in the accept queue"),
		queueDepthHigh:    reg.Gauge("pactrain_serve_queue_depth_high", "submissions waiting at high priority (recost/quick lane)"),
		queueDepthLow:     reg.Gauge("pactrain_serve_queue_depth_low", "submissions waiting at low priority (grid-training lane)"),
		cacheHitRatio:     reg.Gauge("pactrain_serve_cache_hit_ratio", "fraction of resolved grid cells served from cache (disk or peer) rather than trained"),
		drainRate:         reg.Gauge("pactrain_serve_drain_rate_jobs_per_sec", "observed job completion rate (EWMA), the basis for Retry-After"),
		rateLimited:       reg.Counter("pactrain_serve_rate_limited_total", "submissions rejected by the per-client rate limit"),
		peerHits:          reg.Counter("pactrain_cache_peer_hits", "grid cells satisfied over the cache-peer protocol"),
		peerMisses:        reg.Counter("pactrain_cache_peer_misses", "peer requests that answered no-entry"),
		peerErrors:        reg.Counter("pactrain_cache_peer_errors", "peer requests that failed outright"),
		auditRuns:         reg.Counter("pactrain_audit_runs_total", "training runs audited into counterfactual ledgers"),
		auditOracleRegret: reg.Counter("pactrain_audit_oracle_regret_seconds_total", "audited controller cost above the per-round oracle, summed over runs"),
		auditStaticRegret: reg.Gauge("pactrain_audit_static_regret_seconds_total", "audited controller cost versus the best static format, summed over runs (negative: the controller won)"),
		auditCalibMax:     reg.Gauge("pactrain_audit_calibration_max_abs_error", "largest |predicted-actual|/actual cost error observed across audited runs"),
		jobWall: reg.Histogram("pactrain_serve_job_wall_seconds", "wall-clock duration of completed jobs",
			metrics.ExponentialBuckets(0.1, 2, 12)),
		jobSim: reg.Histogram("pactrain_serve_job_sim_seconds", "simulated training seconds attributed to completed jobs",
			metrics.ExponentialBuckets(1, 4, 10)),
		cacheHitAge: reg.Histogram("pactrain_engine_cache_hit_age_seconds", "age of on-disk cache entries when served",
			metrics.ExponentialBuckets(1, 4, 10)),
	}
}

// Submit validates, coalesces, and enqueues a request. The bool reports
// whether the submission coalesced onto an existing in-flight job.
func (s *Server) Submit(req SubmitRequest) (JobView, bool, error) {
	def, ok := harness.ExperimentByID(req.Experiment)
	if !ok {
		return JobView{}, false, fmt.Errorf("%w: %q (valid ids: %s)",
			ErrUnknownExperiment, req.Experiment, strings.Join(harness.ExperimentIDs(), ", "))
	}
	if _, err := collective.CanonicalAlgorithm(req.Collective); err != nil {
		return JobView{}, false, fmt.Errorf("%w: %q (valid names: %s)",
			ErrUnknownCollective, req.Collective, strings.Join(collective.AlgorithmNames(), ", "))
	}
	if _, err := ddp.ParseOverlap(req.Overlap); err != nil {
		return JobView{}, false, fmt.Errorf("%w: %q (valid names: %s)",
			ErrUnknownOverlap, req.Overlap, strings.Join(ddp.OverlapNames(), ", "))
	}
	prio, override, err := parsePriority(req.Priority)
	if err != nil {
		return JobView{}, false, err
	}
	if !override {
		prio = inferPriority(def, req.Quick)
	}
	opts := harness.Options{
		Quick:      req.Quick,
		World:      req.World,
		Samples:    req.Samples,
		Seed:       req.Seed,
		Collective: req.Collective,
		Overlap:    req.Overlap,
	}.Normalized()
	key := submitKey(def.ID, opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, false, ErrDraining
	}
	if j, ok := s.inflight[key]; ok {
		j.coalesced++
		s.coalescedTotal++
		if prio == PriorityHigh && j.priority == PriorityLow && j.state == JobQueued {
			// The coalescing upgrade: a high-priority twin lends its
			// urgency to the queued job both now share.
			s.q.promote(j)
		}
		return j.view(), true, nil
	}
	if s.q.depth() >= s.opt.QueueDepth {
		return JobView{}, false, &TooBusyError{
			Err:           fmt.Errorf("%w (depth %d)", ErrQueueFull, s.opt.QueueDepth),
			RetryAfterSec: s.drain.retryAfter(s.q.depth()),
		}
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%06d", s.seq),
		key:      key,
		def:      def,
		opts:     opts,
		priority: prio,
		state:    JobQueued,
		created:  time.Now(),
	}
	s.q.push(j)
	s.qcond.Signal()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight[key] = j
	s.publishLocked(j, EventPayload{Type: "state", State: JobQueued})
	return j.view(), false, nil
}

// Admit spends one rate-limit token for a client, returning a TooBusyError
// wrapping ErrRateLimited when the bucket is empty. A server without a
// configured RateLimit admits everything.
func (s *Server) Admit(client string) error {
	if s.limiter == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, wait := s.limiter.allow(client, time.Now())
	if ok {
		return nil
	}
	s.rateLimitedTotal++
	return &TooBusyError{
		Err:           fmt.Errorf("%w (client %s)", ErrRateLimited, client),
		RetryAfterSec: wait,
	}
}

// run executes one job on a worker goroutine.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	s.running[j.id] = j
	s.publishLocked(j, EventPayload{Type: "state", State: JobRunning})
	s.mu.Unlock()
	s.logf("serve: job %s running (%s)", j.id, j.key)

	opts := j.opts
	opts.Engine = s.engine
	opts.Log = s.opt.Log
	if s.opt.LogFormat == "json" {
		// The harness narrates experiments in prose; structured mode keeps
		// the log pure event objects.
		opts.Log = io.Discard
	}
	opts.Parallelism = s.opt.Parallelism
	// Every job gets a fresh auditor: experiments wired for auditing (the
	// controller-driven grids) fill it, everything else leaves it empty.
	// Auditing is derived from recorded logs, so the report bytes stay
	// byte-identical to the CLI's un-audited output.
	auditor := audit.NewCollector()
	opts.Auditor = auditor
	rep, err := j.def.Run(opts)
	var raw []byte
	if err == nil {
		raw, err = harness.ReportJSON(j.def.ID, opts, rep)
	}
	var auditRaw []byte
	var audited []*audit.Report
	if err == nil {
		if audited = auditor.Reports(); len(audited) > 0 {
			auditRaw, err = audit.MarshalReports(audited)
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	// Feed the drain-rate estimate behind queue-full Retry-After while the
	// completion time is fresh.
	s.drain.observe(j.finished)
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
		s.failedTotal++
	} else {
		j.state = JobDone
		// Match the CLI byte-for-byte: pactrain-bench prints the report
		// followed by one newline.
		j.resultJSON = append(raw, '\n')
		j.auditJSON = auditRaw
		s.doneTotal++
		if len(audited) > 0 {
			var oracle, static, calib float64
			for _, r := range audited {
				oracle += r.OracleRegretSec
				static += r.StaticRegretSec
				if m := r.MaxCalibrationError(); m > calib {
					calib = m
				}
			}
			s.met.auditRuns.Add(float64(len(audited)))
			s.met.auditOracleRegret.Add(oracle)
			s.met.auditStaticRegret.Add(static)
			if calib > s.auditCalibMax {
				s.auditCalibMax = calib
				s.met.auditCalibMax.Set(calib)
			}
		}
	}
	s.met.jobWall.Observe(j.finished.Sub(j.started).Seconds())
	s.met.jobSim.Observe(j.simSeconds)
	s.publishLocked(j, EventPayload{Type: "state", State: j.state, Error: j.errMsg})
	// Terminal: end every live stream; late subscribers get pure replay.
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	delete(s.running, j.id)
	s.evictHistory()
	s.mu.Unlock()
	s.logf("serve: job %s %s (%.1fs wall)", j.id, j.state, j.finished.Sub(j.started).Seconds())
}

// evictHistory drops the oldest finished job records — report bytes
// included — once more than HistoryLimit are retained, so an always-on
// server's memory stays bounded. Queued and running jobs never evict.
// Callers hold s.mu.
func (s *Server) evictHistory() {
	if len(s.jobs) <= s.opt.HistoryLimit {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.opt.HistoryLimit && (j.state == JobDone || j.state == JobFailed) {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// onEngineEvent is the engine's observer: it feeds the per-job progress
// counters, the sim-seconds tally, the recent-event ring, the event-time
// histograms, and every matching job's SSE stream. It is called from
// scheduling goroutines concurrently, never with s.mu held.
func (s *Server) onEngineEvent(ev engine.Event) {
	expID, _, _ := strings.Cut(ev.Label, " ")
	delivered := ev.Err == ""
	if ev.Kind == engine.EventCacheHit && ev.CacheAgeSeconds > 0 {
		s.met.cacheHitAge.Observe(ev.CacheAgeSeconds)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Kind != engine.EventProgress {
		// Heartbeats would flood the 32-slot /v1/stats ring inside one
		// training; they live on the per-job SSE streams instead.
		s.recent = append(s.recent, ev)
		if len(s.recent) > recentEvents {
			s.recent = s.recent[len(s.recent)-recentEvents:]
		}
	}
	if delivered {
		switch ev.Kind {
		case engine.EventDeduped, engine.EventCacheHit, engine.EventTrainDone:
			s.simServed += ev.SimSeconds
		}
	}
	payload := EventPayload{
		Type:            ev.Kind.String(),
		Label:           ev.Label,
		Fingerprint:     ev.Fingerprint,
		SimSeconds:      ev.SimSeconds,
		CacheAgeSeconds: ev.CacheAgeSeconds,
		Error:           ev.Err,
		Progress:        ev.Progress,
	}
	claimed := false
	for _, j := range s.running {
		if j.def.ID != expID {
			continue
		}
		claimed = true
		switch ev.Kind {
		case engine.EventSubmitted:
			j.progress.Submitted++
		case engine.EventDeduped:
			j.progress.Deduped++
		case engine.EventCacheHit:
			j.progress.CacheHits++
		case engine.EventTrainDone:
			if delivered {
				j.progress.Trained++
			}
		}
		if delivered {
			switch ev.Kind {
			case engine.EventDeduped, engine.EventCacheHit, engine.EventTrainDone:
				j.simSeconds += ev.SimSeconds
			}
		}
		j.progress.LastEvent = fmt.Sprintf("%s %s", ev.Kind, ev.Label)
		s.publishLocked(j, payload)
	}
	if !claimed {
		s.logEventLocked(payload)
	}
}

// Job fetches a job snapshot by id.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Result returns a finished job's report bytes.
func (s *Server) Result(id string) ([]byte, JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobView{}, false
	}
	return j.resultJSON, j.view(), true
}

// Audit returns a finished job's counterfactual audit artifact.
func (s *Server) Audit(id string) ([]byte, JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobView{}, false
	}
	return j.auditJSON, j.view(), true
}

// EngineStats snapshots the shared engine's counters.
func (s *Server) EngineStats() engine.Stats { return s.engine.Stats() }

// StatsView is the body of GET /v1/stats.
type StatsView struct {
	// Build is the serving binary's identity (version, VCS revision, Go
	// toolchain) — the JSON face of the pactrain_build_info gauge.
	Build      map[string]string  `json:"build"`
	Engine     engine.Stats       `json:"engine"`
	CacheSweep engine.SweepResult `json:"cache_sweep"`
	Jobs       JobCounts          `json:"jobs"`
	// Queue is the admission queue's per-priority depth.
	Queue QueueCounts `json:"queue"`
	// CacheHitRatio is the fraction of resolved grid cells served from a
	// cache — disk or peer — rather than trained (0 before any resolution).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// DrainRatePerSec is the observed job completion rate (EWMA), the basis
	// for Retry-After on queue-full 429s; 0 until two completions.
	DrainRatePerSec float64 `json:"drain_rate_per_sec"`
	// RateLimited counts submissions rejected by the per-client rate limit.
	RateLimited int `json:"rate_limited"`
	// SimSecondsServed totals the simulated training seconds of every grid
	// cell delivered to a client (trained, deduplicated, or cache-hit).
	SimSecondsServed float64 `json:"sim_seconds_served"`
	Draining         bool    `json:"draining"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	// RecentEvents is the tail of the engine's event stream, newest last.
	RecentEvents []EventView `json:"recent_events"`
}

// JobCounts tallies jobs by lifecycle state. Queued and Running count live
// records; Done, Failed, and Coalesced are lifetime totals that survive
// history eviction, so the numbers never shrink as old jobs age out.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Coalesced int `json:"coalesced"`
}

// QueueCounts is the admission queue's depth by priority level.
type QueueCounts struct {
	High int `json:"high"`
	Low  int `json:"low"`
}

// EventView is the wire form of one engine event.
type EventView struct {
	Kind        string  `json:"kind"`
	Label       string  `json:"label"`
	Fingerprint string  `json:"fingerprint"`
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	Err         string  `json:"error,omitempty"`
}

// Stats assembles the service-wide status snapshot.
func (s *Server) Stats() StatsView {
	est := s.engine.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	v := StatsView{
		Build:            metrics.BuildInfoLabels(),
		Engine:           est,
		CacheSweep:       s.sweep,
		Queue:            QueueCounts{High: len(s.q.high), Low: len(s.q.low)},
		DrainRatePerSec:  s.drain.rate,
		RateLimited:      s.rateLimitedTotal,
		SimSecondsServed: s.simServed,
		Draining:         s.draining,
		UptimeSeconds:    time.Since(s.start).Seconds(),
	}
	if resolved := est.CacheHits + est.PeerHits + est.Trained; resolved > 0 {
		v.CacheHitRatio = float64(est.CacheHits+est.PeerHits) / float64(resolved)
	}
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			v.Jobs.Queued++
		case JobRunning:
			v.Jobs.Running++
		}
	}
	v.Jobs.Done = s.doneTotal
	v.Jobs.Failed = s.failedTotal
	v.Jobs.Coalesced = s.coalescedTotal
	v.RecentEvents = make([]EventView, len(s.recent))
	for i, ev := range s.recent {
		v.RecentEvents[i] = EventView{
			Kind:        ev.Kind.String(),
			Label:       ev.Label,
			Fingerprint: ev.Fingerprint,
			SimSeconds:  ev.SimSeconds,
			Err:         ev.Err,
		}
	}
	s.refreshDerivedLocked(v)
	return v
}

// refreshDerivedLocked writes every scalar instrument from the snapshot
// both /v1/stats and /metrics serve — one source of truth, so the JSON and
// Prometheus views of the same server state can never diverge. The
// histograms are not touched here; they observe at event time. Callers
// hold s.mu.
func (s *Server) refreshDerivedLocked(v StatsView) {
	m := s.met
	m.jobsQueued.Set(float64(v.Jobs.Queued))
	m.jobsRunning.Set(float64(v.Jobs.Running))
	m.jobsDone.Set(float64(v.Jobs.Done))
	m.jobsFailed.Set(float64(v.Jobs.Failed))
	m.jobsCoalesced.Set(float64(v.Jobs.Coalesced))
	m.engineSubmitted.Set(float64(v.Engine.Submitted))
	m.engineTrained.Set(float64(v.Engine.Trained))
	m.engineDeduped.Set(float64(v.Engine.Deduped))
	m.engineCacheHits.Set(float64(v.Engine.CacheHits))
	m.simServed.Set(v.SimSecondsServed)
	m.cacheSwept.Set(float64(s.sweep.Swept))
	m.queueDepth.Set(float64(v.Queue.High + v.Queue.Low))
	m.queueDepthHigh.Set(float64(v.Queue.High))
	m.queueDepthLow.Set(float64(v.Queue.Low))
	m.cacheHitRatio.Set(v.CacheHitRatio)
	m.drainRate.Set(v.DrainRatePerSec)
	m.rateLimited.Set(float64(v.RateLimited))
	m.peerHits.Set(float64(v.Engine.PeerHits))
	m.peerMisses.Set(float64(v.Engine.PeerMisses))
	m.peerErrors.Set(float64(v.Engine.PeerErrors))
	if v.Draining {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown begins a graceful drain: new submissions are rejected, every
// accepted job (running or queued) is finished, and the worker pool exits.
// It returns ctx.Err() if the context expires first; jobs then keep
// running to completion in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.q.closed = true
		s.qcond.Broadcast()
		s.met.draining.Set(1)
	}
	s.mu.Unlock()
	s.logf("serve: draining (finishing accepted jobs)")

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("serve: drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.LogFormat == "json" {
		// Structured mode: lifecycle is already on the event log as JSON
		// objects; free-form lines would break one-object-per-line.
		return
	}
	fmt.Fprintf(s.opt.Log, format+"\n", args...)
}
