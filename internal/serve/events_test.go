package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	ID    int
	Event string
	Data  string
}

// readSSE consumes an event stream until the server closes it (terminal
// job) and returns the frames; keepalive comments are skipped.
func readSSE(t *testing.T, url string, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events stream content type %q", ct)
	}

	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" || cur.Data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID)
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestJobEventStream follows one job live from submission to completion:
// the stream replays the queued transition, then delivers running, engine
// activity, trainer heartbeats, and a terminal done frame, with strictly
// increasing event ids, and then closes.
func TestJobEventStream(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Parallelism: 2, Workers: 1})

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	frames := readSSE(t, ts.URL+"/v1/jobs/"+sub.JobID+"/events", "")
	if len(frames) == 0 {
		t.Fatal("empty event stream")
	}
	states := map[JobState]bool{}
	progressBeats := 0
	for i, f := range frames {
		if f.ID != i+1 {
			t.Fatalf("frame %d has id %d, want %d (ids must be dense from 1)", i, f.ID, i+1)
		}
		var p EventPayload
		if err := json.Unmarshal([]byte(f.Data), &p); err != nil {
			t.Fatalf("frame %d data is not an EventPayload: %v\n%s", i, err, f.Data)
		}
		if p.Job != sub.JobID {
			t.Fatalf("frame %d names job %q, want %q", i, p.Job, sub.JobID)
		}
		if p.Type != f.Event {
			t.Fatalf("frame %d: event name %q, payload type %q", i, f.Event, p.Type)
		}
		if p.Type == "state" {
			states[p.State] = true
		}
		if p.Type == "progress" {
			if p.Progress == nil || p.Progress.Iter <= 0 {
				t.Fatalf("progress frame carries no heartbeat: %s", f.Data)
			}
			progressBeats++
		}
	}
	for _, want := range []JobState{JobQueued, JobRunning, JobDone} {
		if !states[want] {
			t.Fatalf("stream never delivered state %q (got %v)", want, states)
		}
	}
	if progressBeats == 0 {
		t.Fatal("stream delivered no trainer heartbeats")
	}
	last := frames[len(frames)-1]
	var terminal EventPayload
	if err := json.Unmarshal([]byte(last.Data), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Type != "state" || terminal.State != JobDone {
		t.Fatalf("stream did not end on the done transition: %s", last.Data)
	}
}

// TestSSELastEventIDReplay pins exact resume: reconnecting with
// Last-Event-ID must deliver precisely the frames after that id,
// byte-identical to the original stream's suffix, and a finished job's
// stream closes right after replay.
func TestSSELastEventIDReplay(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Parallelism: 2, Workers: 1})

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("fig5"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, sub.JobID, JobDone)

	url := ts.URL + "/v1/jobs/" + sub.JobID + "/events"
	full := readSSE(t, url, "")
	if len(full) < 3 {
		t.Fatalf("only %d frames buffered", len(full))
	}

	// Resume from the middle: the suffix must match the full stream's,
	// frame for frame and byte for byte.
	cut := len(full) / 2
	resumed := readSSE(t, url, fmt.Sprint(full[cut-1].ID))
	if len(resumed) != len(full)-cut {
		t.Fatalf("resume after id %d returned %d frames, want %d", full[cut-1].ID, len(resumed), len(full)-cut)
	}
	for i, f := range resumed {
		want := full[cut+i]
		if f != want {
			t.Fatalf("resumed frame %d = %+v, want %+v", i, f, want)
		}
	}

	// Resuming past the last id yields an empty, immediately closed stream.
	if tail := readSSE(t, url, fmt.Sprint(full[len(full)-1].ID)); len(tail) != 0 {
		t.Fatalf("resume past the end returned %d frames", len(tail))
	}

	notFound, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream status %d, want 404", notFound.StatusCode)
	}
}

// TestStatsMetricsStayCoherent pins the divergence fix: after history
// eviction drops finished job records, /v1/stats and /metrics must both
// still report every completion, and the completion histograms must have
// observed each job exactly once.
func TestStatsMetricsStayCoherent(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, HistoryLimit: 1})

	for _, exp := range []string{"ablation-tern", "fig5"} {
		resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest(exp))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var sub submitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		waitForState(t, ts.URL, sub.JobID, JobDone)
	}

	stats := getStats(t, ts.URL)
	if stats.Jobs.Done != 2 {
		t.Fatalf("stats.Jobs.Done = %d after eviction, want 2 (lifetime total)", stats.Jobs.Done)
	}

	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	text := body.String()
	for _, want := range []string{
		"pactrain_serve_jobs_done_total 2",
		"pactrain_serve_jobs_queued 0",
		"# TYPE pactrain_serve_queue_depth gauge",
		"# TYPE pactrain_serve_job_wall_seconds histogram",
		"pactrain_serve_job_wall_seconds_count 2",
		"pactrain_serve_job_sim_seconds_count 2",
		"pactrain_serve_job_sim_seconds_bucket{le=\"+Inf\"} 2",
		"# TYPE pactrain_engine_cache_hit_age_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "pactrain_serve_job_sim_seconds_sum 0\n") {
		t.Fatal("job_sim histogram observed no simulated seconds")
	}
}

// syncBuffer collects log output across goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJSONLogFormat runs a job under -log-format json and checks the log is
// pure machine-readable: every line is an EventPayload (the SSE schema),
// lifecycle and heartbeats included, with no free-form text interleaved.
func TestJSONLogFormat(t *testing.T) {
	t.Parallel()
	logBuf := &syncBuffer{}
	s, err := New(Options{Workers: 1, Log: logBuf, LogFormat: "json"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, sub.JobID, JobDone)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	var sawDone, sawProgress bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		var p EventPayload
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("log line is not an EventPayload: %v\n%s", err, line)
		}
		if p.Type == "" {
			t.Fatalf("log line has no type: %s", line)
		}
		if p.Type == "state" && p.State == JobDone {
			sawDone = true
		}
		if p.Type == "progress" && p.Progress != nil {
			sawProgress = true
		}
	}
	if !sawDone {
		t.Fatal("json log never recorded the done transition")
	}
	if !sawProgress {
		t.Fatal("json log carried no trainer heartbeats")
	}
}
