package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pactrain/internal/audit"
)

// TestAuditEndpoint covers GET /v1/jobs/{id}/audit: a controller-driven
// experiment finishes with a parseable counterfactual-audit artifact and
// feeds the audit gauges; an experiment with no controller runs finishes
// without one and 404s; unknown ids 404.
func TestAuditEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Parallelism: 4, Workers: 2})

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("adaptive"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("submit body: %v\n%s", err, raw)
	}
	waitForState(t, ts.URL, sub.JobID, JobDone)

	code, reports := getJSON[[]*audit.Report](t, ts.URL+"/v1/jobs/"+sub.JobID+"/audit")
	if code != http.StatusOK {
		t.Fatalf("audit status %d", code)
	}
	if len(reports) == 0 {
		t.Fatal("adaptive job produced no audit reports")
	}
	for _, rep := range reports {
		if rep.DecidedRounds == 0 {
			t.Fatalf("%s: empty ledger in served artifact", rep.Label)
		}
		if rep.ReplayEndSec <= 0 {
			t.Fatalf("%s: missing replay clock", rep.Label)
		}
	}

	// The audit gauges observed the completion.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "pactrain_audit_runs_total") {
		t.Fatal("metrics missing pactrain_audit_runs_total")
	}
	if strings.Contains(text, "pactrain_audit_runs_total 0\n") {
		t.Fatal("pactrain_audit_runs_total still zero after an audited job")
	}

	// A grid without controller decisions finishes with no artifact.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/experiments", testRequest("fig6"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp2.StatusCode, raw2)
	}
	var sub2 submitResponse
	if err := json.Unmarshal(raw2, &sub2); err != nil {
		t.Fatalf("submit body: %v\n%s", err, raw2)
	}
	waitForState(t, ts.URL, sub2.JobID, JobDone)
	code2, body2 := getJSON[map[string]string](t, ts.URL+"/v1/jobs/"+sub2.JobID+"/audit")
	if code2 != http.StatusNotFound {
		t.Fatalf("audit of non-controller job: status %d, want 404", code2)
	}
	if !strings.Contains(body2["error"], "no audit artifact") {
		t.Fatalf("audit 404 body %q missing diagnostic", body2["error"])
	}

	if code3, _ := getJSON[map[string]string](t, ts.URL+"/v1/jobs/nope/audit"); code3 != http.StatusNotFound {
		t.Fatalf("unknown job audit status %d, want 404", code3)
	}
}

// TestPProfOffByDefault pins the -pprof gate: the profiling surface is
// absent unless Options.PProf opts in.
func TestPProfOffByDefault(t *testing.T) {
	t.Parallel()
	_, off := newTestServer(t, Options{})
	offResp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	offResp.Body.Close()
	if offResp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status %d, want 404", offResp.StatusCode)
	}

	_, on := newTestServer(t, Options{PProf: true})
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index missing profile listing")
	}
}

// TestBuildInfoExposed pins satellite 2: the build-identity gauge is on
// /metrics and the same labels ride /v1/stats as the build field.
func TestBuildInfoExposed(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "pactrain_build_info{") {
		t.Fatal("metrics missing pactrain_build_info")
	}
	if !strings.Contains(text, `go_version="go`) {
		t.Fatal("pactrain_build_info missing go_version label")
	}

	code, stats := getJSON[StatsView](t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if !strings.HasPrefix(stats.Build["go_version"], "go") {
		t.Fatalf("stats build field %v missing go_version", stats.Build)
	}
	if stats.Build["version"] == "" || stats.Build["revision"] == "" {
		t.Fatalf("stats build field %v has empty identity entries", stats.Build)
	}
}
