package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/harness"
	"pactrain/internal/harness/engine"
)

// testRequest is a tiny grid (MLP twin, 2 workers, 64 samples) so the
// service tests — which really train — stay fast enough for the -short
// race lane.
func testRequest(exp string) SubmitRequest {
	return SubmitRequest{Experiment: exp, Quick: true, World: 2, Samples: 64, Seed: 5}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	var v T
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, v
}

// waitForState polls a job until it reaches want (or any terminal state).
func waitForState(t *testing.T, base, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, view := getJSON[JobView](t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job poll status %d", code)
		}
		if view.State == want || view.State == JobDone || view.State == JobFailed {
			if view.State != want {
				t.Fatalf("job %s reached %q (error %q), want %q", id, view.State, view.Error, want)
			}
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobView{}
}

// TestConcurrentIdenticalSubmissionsCoalesce is the tentpole contract:
// identical in-flight submissions share one job id, the report is
// byte-identical to a direct harness call (and so to `pactrain-bench
// -json` output), and a later identical job re-costs via the engine's
// dedup table instead of retraining.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Parallelism: 4, Workers: 2})

	req := testRequest("fig3")
	type submission struct {
		resp submitResponse
		code int
	}
	subs := make([]submission, 2)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/experiments", req)
			subs[i].code = resp.StatusCode
			if err := json.Unmarshal(raw, &subs[i].resp); err != nil {
				t.Errorf("unmarshal submit response: %v\n%s", err, raw)
			}
		}()
	}
	wg.Wait()
	for _, sub := range subs {
		if sub.code != http.StatusAccepted {
			t.Fatalf("submit status %d, want 202", sub.code)
		}
	}
	if subs[0].resp.JobID != subs[1].resp.JobID {
		t.Fatalf("identical submissions got distinct jobs: %q vs %q",
			subs[0].resp.JobID, subs[1].resp.JobID)
	}
	if subs[0].resp.Coalesced == subs[1].resp.Coalesced {
		t.Fatalf("exactly one submission must coalesce, got %v and %v",
			subs[0].resp.Coalesced, subs[1].resp.Coalesced)
	}
	id := subs[0].resp.JobID

	view := waitForState(t, ts.URL, id, JobDone)
	if view.Coalesced != 1 {
		t.Fatalf("coalesced clients = %d, want 1", view.Coalesced)
	}
	if view.Progress.Submitted == 0 {
		t.Fatalf("job progress never observed engine events: %+v", view.Progress)
	}

	// The served report must be byte-identical to the CLI's -json output:
	// ReportJSON from a direct harness call, plus the trailing newline the
	// CLI prints.
	opts := harness.Options{
		Quick: req.Quick, World: req.World, Samples: req.Samples, Seed: req.Seed,
		Engine: engine.New(engine.Options{Parallelism: 4}),
	}
	def, ok := harness.ExperimentByID("fig3")
	if !ok {
		t.Fatal("fig3 missing from registry")
	}
	rep, err := def.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.ReportJSON("fig3", opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	for range 2 {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("served report differs from direct harness call:\nserved: %s\ndirect: %s", got, want)
		}
	}

	// A second identical job after completion is a new job, but the shared
	// engine satisfies its whole grid from the dedup table: no new
	// trainings.
	before := getStats(t, ts.URL)
	resp2, raw2 := postJSON(t, ts.URL+"/v1/experiments", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d", resp2.StatusCode)
	}
	var again submitResponse
	if err := json.Unmarshal(raw2, &again); err != nil {
		t.Fatal(err)
	}
	if again.JobID == id {
		t.Fatal("completed job must not absorb new submissions")
	}
	waitForState(t, ts.URL, again.JobID, JobDone)
	after := getStats(t, ts.URL)
	if after.Engine.Trained != before.Engine.Trained {
		t.Fatalf("resubmission retrained: %d -> %d trainings",
			before.Engine.Trained, after.Engine.Trained)
	}
	if after.Engine.Deduped <= before.Engine.Deduped {
		t.Fatalf("resubmission not deduplicated: %+v -> %+v", before.Engine, after.Engine)
	}
}

func getStats(t *testing.T, base string) StatsView {
	t.Helper()
	code, v := getJSON[StatsView](t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	return v
}

func TestGracefulShutdownFinishesAcceptedJobs(t *testing.T) {
	t.Parallel()
	s, err := New(Options{Parallelism: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One running job plus one still queued behind the single worker: the
	// drain must finish both. fig3 (five trainings) keeps the first job
	// running long enough to observe.
	resp1, raw1 := postJSON(t, ts.URL+"/v1/experiments", testRequest("fig3"))
	resp2, raw2 := postJSON(t, ts.URL+"/v1/experiments", testRequest("fig5"))
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	var sub1, sub2 submitResponse
	if err := json.Unmarshal(raw1, &sub1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw2, &sub2); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, sub1.JobID, JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for _, id := range []string{sub1.JobID, sub2.JobID} {
		view, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if view.State != JobDone {
			t.Fatalf("job %s state %q after drain (error %q), want done", id, view.State, view.Error)
		}
	}
	// Results stay pollable after the drain.
	raw, view, ok := s.Result(sub1.JobID)
	if !ok || view.State != JobDone || len(raw) == 0 {
		t.Fatalf("drained job result unavailable: ok=%v state=%q len=%d", ok, view.State, len(raw))
	}
	// New submissions are refused and health reflects the drain.
	if _, _, err := s.Submit(testRequest("fig3")); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit during drain: %v, want draining error", err)
	}
	code, _ := getJSON[map[string]string](t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", code)
	}
}

func TestSubmitValidation(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", SubmitRequest{Experiment: "fig99"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment status %d, want 400", resp.StatusCode)
	}
	for _, id := range harness.ExperimentIDs() {
		if !strings.Contains(string(raw), id) {
			t.Fatalf("rejection does not list valid id %q: %s", id, raw)
		}
	}

	resp, _ = postJSON(t, ts.URL+"/v1/experiments", map[string]any{"experiment": "fig3", "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", resp.StatusCode)
	}

	req := testRequest("fig3")
	req.Collective = "butterfly"
	resp, raw = postJSON(t, ts.URL+"/v1/experiments", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown collective status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "hierarchical") {
		t.Fatalf("rejection does not list valid collective names: %s", raw)
	}

	req = testRequest("fig3")
	req.Overlap = "sideways"
	resp, raw = postJSON(t, ts.URL+"/v1/experiments", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown overlap status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "backward") {
		t.Fatalf("rejection does not list valid overlap modes: %s", raw)
	}
}

// TestOverlapSubmissionCoalescing covers the overlap dimension of the
// submission key: "none" and the empty default coalesce onto one job, while
// "backward" gets its own.
func TestOverlapSubmissionCoalescing(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	// Saturate the single worker so subsequent submissions stay queued and
	// coalescible while we compare their job ids.
	blocker, _ := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if blocker.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", blocker.StatusCode)
	}
	submit := func(overlap string) submitResponse {
		req := testRequest("ablation-topo")
		req.Overlap = overlap
		resp, raw := postJSON(t, ts.URL+"/v1/experiments", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit(overlap=%q) status %d: %s", overlap, resp.StatusCode, raw)
		}
		var sub submitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	def := submit("")
	none := submit("none")
	if none.JobID != def.JobID || !none.Coalesced {
		t.Fatalf("\"none\" did not coalesce onto the empty default: %+v vs %+v", none, def)
	}
	backward := submit("backward")
	if backward.JobID == def.JobID {
		t.Fatal("backward submission coalesced onto the serialized job")
	}
	if backward.Job.Options.Overlap != "backward" {
		t.Fatalf("job view lost the overlap mode: %+v", backward.Job.Options)
	}
	waitForState(t, ts.URL, backward.JobID, JobDone)
	waitForState(t, ts.URL, def.JobID, JobDone)
}

// TestSchemesEndpointAndCollectiveCoalescing covers the scheme catalog and
// the collective dimension of the submission key: "ring" and the empty
// default coalesce onto one job, while a distinct algorithm gets its own.
func TestSchemesEndpointAndCollectiveCoalescing(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	code, schemes := getJSON[[]core.SchemeInfo](t, ts.URL+"/v1/schemes")
	if code != http.StatusOK || len(schemes) != len(core.Schemes()) {
		t.Fatalf("schemes = %d entries (status %d), want %d", len(schemes), code, len(core.Schemes()))
	}
	for i, name := range core.Schemes() {
		if schemes[i].Name != name || schemes[i].Description == "" {
			t.Fatalf("scheme entry %d = %+v, want name %q with a description", i, schemes[i], name)
		}
	}

	// The collective catalog mirrors the scheme catalog's pattern.
	code, algos := getJSON[[]collective.AlgorithmInfo](t, ts.URL+"/v1/collectives")
	if code != http.StatusOK || len(algos) != len(collective.AlgorithmNames()) {
		t.Fatalf("collectives = %d entries (status %d), want %d", len(algos), code, len(collective.AlgorithmNames()))
	}
	for i, name := range collective.AlgorithmNames() {
		if algos[i].Name != name || algos[i].Description == "" {
			t.Fatalf("collective entry %d = %+v, want name %q with a description", i, algos[i], name)
		}
	}

	// Saturate the single worker so subsequent submissions stay queued and
	// coalescible while we compare their job ids. ablation-tern and
	// ablation-topo are the registry's lightest grids (two tiny trainings
	// each, one shared through the engine), keeping the race lane fast.
	blocker, _ := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if blocker.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", blocker.StatusCode)
	}
	submit := func(collective string) submitResponse {
		req := testRequest("ablation-topo")
		req.Collective = collective
		resp, raw := postJSON(t, ts.URL+"/v1/experiments", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit(collective=%q) status %d: %s", collective, resp.StatusCode, raw)
		}
		var sub submitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	def := submit("")
	ring := submit("ring")
	if ring.JobID != def.JobID || !ring.Coalesced {
		t.Fatalf("\"ring\" did not coalesce onto the empty default: %+v vs %+v", ring, def)
	}
	hier := submit("hierarchical")
	if hier.JobID == def.JobID {
		t.Fatal("hierarchical submission coalesced onto the ring job")
	}
	if hier.Job.Options.Collective != "hierarchical" {
		t.Fatalf("job view lost the collective: %+v", hier.Job.Options)
	}
	waitForState(t, ts.URL, hier.JobID, JobDone)
	waitForState(t, ts.URL, def.JobID, JobDone)
}

func TestQueueFullRejectsSubmission(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	var first submitResponse
	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("fig3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	// Once the worker picks up the first job, the depth-1 queue holds one
	// more and rejects the third.
	waitForState(t, ts.URL, first.JobID, JobRunning)
	resp, _ = postJSON(t, ts.URL+"/v1/experiments", testRequest("fig5"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/experiments", testRequest("fig6"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
}

func TestOperationalEndpoints(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, CacheDir: t.TempDir()})

	code, health := getJSON[map[string]string](t, ts.URL+"/healthz")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}

	code, exps := getJSON[[]experimentView](t, ts.URL+"/v1/experiments")
	if code != http.StatusOK || len(exps) != len(harness.ExperimentIDs()) {
		t.Fatalf("experiments = %d entries (status %d)", len(exps), code)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	// An unfinished job's result endpoint reports the state instead.
	httpResp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusOK {
		// The tiny job may already be done; only a non-terminal state must
		// yield 409.
		if _, view := getJSON[JobView](t, ts.URL+"/v1/jobs/"+sub.JobID); view.State != JobDone {
			t.Fatalf("result for unfinished job returned 200 (state %q)", view.State)
		}
	} else if httpResp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished result status %d, want 409", httpResp.StatusCode)
	}
	waitForState(t, ts.URL, sub.JobID, JobDone)

	stats := getStats(t, ts.URL)
	if stats.Engine.Trained == 0 || stats.Jobs.Done != 1 {
		t.Fatalf("stats after job: %+v", stats)
	}
	if stats.SimSecondsServed <= 0 {
		t.Fatalf("sim seconds served = %v, want > 0", stats.SimSecondsServed)
	}
	if len(stats.RecentEvents) == 0 {
		t.Fatal("no recent events surfaced")
	}

	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"pactrain_engine_trainings_total",
		"pactrain_serve_jobs_done_total 1",
		"pactrain_serve_sim_seconds_served_total",
		"# TYPE pactrain_serve_jobs_running gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	code, jobs := getJSON[[]JobView](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(jobs) != 1 || jobs[0].ID != sub.JobID {
		t.Fatalf("jobs listing = %+v (status %d)", jobs, code)
	}

	code, _ = getJSON[map[string]string](t, ts.URL+"/v1/jobs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
}

// TestHistoryEviction bounds the server's memory: finished job records
// (report bytes included) are evicted oldest-first past HistoryLimit.
func TestHistoryEviction(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, HistoryLimit: 1})

	ids := make([]string, 2)
	for i, exp := range []string{"ablation-tern", "fig5"} {
		resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest(exp))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var sub submitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.JobID
		waitForState(t, ts.URL, sub.JobID, JobDone)
	}

	code, _ := getJSON[map[string]string](t, ts.URL+"/v1/jobs/"+ids[0])
	if code != http.StatusNotFound {
		t.Fatalf("evicted job status %d, want 404", code)
	}
	code, jobs := getJSON[[]JobView](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(jobs) != 1 || jobs[0].ID != ids[1] {
		t.Fatalf("retained jobs = %+v (status %d), want only %s", jobs, code, ids[1])
	}
}

// TestFailedJobSurfacesError submits a grid that cannot train (world
// larger than the simulated fabric) and checks the failure is observable.
func TestFailedJobSurfacesError(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{Workers: 1})

	req := SubmitRequest{Experiment: "fig3", Quick: true, World: 99, Samples: 64, Seed: 5}
	view, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v, ok := s.Job(view.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if v.State == JobFailed {
			if v.Error == "" {
				t.Fatal("failed job carries no error")
			}
			break
		}
		if v.State == JobDone {
			t.Fatal("oversized world unexpectedly trained")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, view.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed job result status %d, want 500", resp.StatusCode)
	}
}
