package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"pactrain/internal/harness"
)

// TestJobQueuePriorityOrder: pops serve the high level first, submission
// order within a level, and promote moves a queued low job up.
func TestJobQueuePriorityOrder(t *testing.T) {
	t.Parallel()
	var q jobQueue
	lo1 := &job{id: "lo1", priority: PriorityLow}
	lo2 := &job{id: "lo2", priority: PriorityLow}
	hi1 := &job{id: "hi1", priority: PriorityHigh}
	q.push(lo1)
	q.push(hi1)
	q.push(lo2)
	if q.depth() != 3 {
		t.Fatalf("depth %d, want 3", q.depth())
	}
	if !q.promote(lo2) {
		t.Fatal("promote(lo2) failed")
	}
	if lo2.priority != PriorityHigh {
		t.Fatal("promotion did not update the job's priority")
	}
	if q.promote(hi1) {
		t.Fatal("promote of an already-high job must be a no-op")
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.id)
	}
	want := []string{"hi1", "lo2", "lo1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestInferPriority pins the inference table: recost-only and quick jump
// the queue, fabric-sensitive and full grids yield.
func TestInferPriority(t *testing.T) {
	t.Parallel()
	get := func(id string) harness.Definition {
		def, ok := harness.ExperimentByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		return def
	}
	for _, tc := range []struct {
		exp   string
		quick bool
		want  Priority
	}{
		{"largescale", false, PriorityHigh}, // recost-only: trains nothing
		{"adaptive", true, PriorityLow},     // fabric-sensitive beats quick
		{"fig3", true, PriorityHigh},
		{"fig3", false, PriorityLow},
	} {
		if got := inferPriority(get(tc.exp), tc.quick); got != tc.want {
			t.Errorf("inferPriority(%s, quick=%t) = %s, want %s", tc.exp, tc.quick, got, tc.want)
		}
	}
	if _, _, err := parsePriority("urgent"); err == nil {
		t.Fatal("parsePriority accepted an unknown level")
	}
}

// TestDrainEstimator: the EWMA tracks completions and the Retry-After
// estimate scales with queue depth under clamps.
func TestDrainEstimator(t *testing.T) {
	t.Parallel()
	var d drainEstimator
	if got := d.retryAfter(5); got != 6 {
		t.Fatalf("cold retryAfter(5) = %d, want 6 (1 job/s default)", got)
	}
	base := time.Now()
	for i := range 5 {
		d.observe(base.Add(time.Duration(i) * 2 * time.Second)) // 0.5 jobs/s
	}
	if d.rate < 0.45 || d.rate > 0.55 {
		t.Fatalf("rate %.3f, want ≈ 0.5", d.rate)
	}
	if got := d.retryAfter(4); got != 10 {
		t.Fatalf("retryAfter(4) at 0.5/s = %d, want 10", got)
	}
	if got := d.retryAfter(100000); got != 600 {
		t.Fatalf("retryAfter must clamp to 600, got %d", got)
	}
}

// TestRateLimiterBuckets: per-client accounting, refill, bounded table.
func TestRateLimiterBuckets(t *testing.T) {
	t.Parallel()
	rl := newRateLimiter(1, 2) // 1 token/s, burst 2
	now := time.Now()
	for i := range 2 {
		if ok, _ := rl.allow("a", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := rl.allow("a", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait < 1 {
		t.Fatalf("denied request advises %ds, want >= 1", wait)
	}
	// Another client is unaffected.
	if ok, _ := rl.allow("b", now); !ok {
		t.Fatal("independent client denied")
	}
	// One second refills one token.
	if ok, _ := rl.allow("a", now.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	// Disabled limiter admits everything.
	if off := newRateLimiter(0, 5); off != nil {
		t.Fatal("rate 0 must disable the limiter")
	}
}

// TestQueueFull429CarriesRetryAfter: the satellite contract — every
// queue-full 429 advises a backoff derived from the drain estimate.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	// The blocker trains (so the single worker stays busy); the queue
	// fillers are recost-only largescale runs with distinct seeds, which
	// cost nothing once they eventually run.
	var first submitResponse
	resp, raw := postJSON(t, ts.URL+"/v1/experiments", testRequest("ablation-tern"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, first.JobID, JobRunning)
	filler := testRequest("largescale")
	filler.Seed = 11
	if resp, _ = postJSON(t, ts.URL+"/v1/experiments", filler); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	filler.Seed = 12
	resp, _ = postJSON(t, ts.URL+"/v1/experiments", filler)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("queue-full 429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
}

// TestRateLimit429CarriesRetryAfter: a client that exhausts its bucket is
// rejected before parsing, with a Retry-After; a distinct client id is
// admitted; /v1/stats counts the rejection.
func TestRateLimit429CarriesRetryAfter(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{Workers: 2, RateLimit: 0.001, RateBurst: 2})

	post := func(client string) *http.Response {
		raw, err := json.Marshal(testRequest("largescale"))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-Id", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for i := range 2 {
		if resp := post("alice"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst request %d status %d", i, resp.StatusCode)
		}
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("rate-limit 429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	// A different client has its own bucket.
	if resp := post("bob"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("independent client status %d", resp.StatusCode)
	}
	code, stats := getJSON[StatsView](t, ts.URL+"/v1/stats")
	if code != http.StatusOK || stats.RateLimited != 1 {
		t.Fatalf("stats rate_limited = %d (status %d), want 1", stats.RateLimited, code)
	}
}

// TestPriorityOverrideAndPromotion: an explicit priority override sticks,
// an invalid one 400s, and a high-priority twin promotes its queued
// low-priority job.
func TestPriorityOverrideAndPromotion(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	// Invalid override is a 400.
	bad := testRequest("fig3")
	bad.Priority = "urgent"
	if resp, _ := postJSON(t, ts.URL+"/v1/experiments", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid priority status %d, want 400", resp.StatusCode)
	}

	// Occupy the single worker so later submissions stay queued.
	blocker, _, err := s.Submit(testRequest("ablation-tern"))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, blocker.ID, JobRunning)

	// A recost-only submission would infer high; an explicit low sticks.
	low := testRequest("largescale")
	low.Priority = string(PriorityLow)
	lowView, _, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	if lowView.Priority != PriorityLow {
		t.Fatalf("explicit low override produced %q", lowView.Priority)
	}

	// An identical high-priority twin coalesces and promotes the queued job.
	promo := low
	promo.Priority = string(PriorityHigh)
	promoView, coalesced, err := s.Submit(promo)
	if err != nil {
		t.Fatal(err)
	}
	if !coalesced || promoView.ID != lowView.ID {
		t.Fatalf("twin did not coalesce (id %s vs %s)", promoView.ID, lowView.ID)
	}
	if promoView.Priority != PriorityHigh {
		t.Fatalf("coalescing twin left priority %q, want promotion to high", promoView.Priority)
	}

	// Both queued-state views and the stats gauge agree on the queue split.
	code, stats := getJSON[StatsView](t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Queue.High != 1 || stats.Queue.Low != 0 {
		t.Fatalf("queue split %+v, want 1 high / 0 low", stats.Queue)
	}
	waitForState(t, ts.URL, lowView.ID, JobDone)
}
