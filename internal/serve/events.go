package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pactrain/internal/core"
)

// EventPayload is the one wire shape for everything the server reports
// about a job as it happens: the SSE stream's data frames and the
// `-log-format json` log lines are both exactly this, so a consumer parses
// one schema no matter how it listens.
type EventPayload struct {
	// Job names the job the event belongs to; empty on engine events no
	// running job claimed (log lines only — streams are always per-job).
	Job string `json:"job,omitempty"`
	// Type is "state" for job lifecycle transitions, otherwise the engine
	// event kind ("submitted", "train-done", "deduped", "cache-hit",
	// "progress").
	Type string `json:"type"`
	// State accompanies Type "state".
	State JobState `json:"state,omitempty"`
	// Label and Fingerprint identify the grid cell on engine events.
	Label       string  `json:"label,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	// CacheAgeSeconds rides on cache hits: how old the served on-disk entry
	// was.
	CacheAgeSeconds float64 `json:"cache_age_seconds,omitempty"`
	Error           string  `json:"error,omitempty"`
	// Progress carries a trainer heartbeat on Type "progress".
	Progress *core.Progress `json:"progress,omitempty"`
}

// eventRecord is one published event in a job's replay ring: the SSE frame
// fields, pre-marshaled once at publish time.
type eventRecord struct {
	seq  int
	name string
	data []byte
}

// jobEventRing bounds each job's replay ring. Sized to hold a quick grid's
// full event history; past it, the oldest events fall off and a reconnecting
// client's replay restarts from the oldest retained seq.
const jobEventRing = 256

// subBuffer is the per-subscriber channel depth; a consumer that falls this
// far behind is disconnected rather than allowed to block the publisher,
// and reconnects with Last-Event-ID.
const subBuffer = 64

// sseKeepalive is the idle-comment interval that keeps proxies from
// timing out a quiet stream.
const sseKeepalive = 15 * time.Second

// publishLocked appends one event to a job's replay ring, fans it out to
// live subscribers, and (in json log mode) writes the structured log line.
// A subscriber too slow to drain its buffer is dropped — its channel closes
// and the SSE client reconnects with Last-Event-ID — so a stuck reader can
// never block a worker. Callers hold s.mu.
func (s *Server) publishLocked(j *job, p EventPayload) {
	p.Job = j.id
	data, err := json.Marshal(p)
	if err != nil {
		return
	}
	j.eventSeq++
	rec := eventRecord{seq: j.eventSeq, name: p.Type, data: data}
	j.events = append(j.events, rec)
	if len(j.events) > jobEventRing {
		j.events = j.events[len(j.events)-jobEventRing:]
	}
	for ch := range j.subs {
		select {
		case ch <- rec:
		default:
			close(ch)
			delete(j.subs, ch)
		}
	}
	if s.opt.LogFormat == "json" {
		fmt.Fprintf(s.opt.Log, "%s\n", data)
	}
}

// logEventLocked writes the structured log line for an event that was not
// published to any job stream (engine activity no running job claimed).
// Callers hold s.mu.
func (s *Server) logEventLocked(p EventPayload) {
	if s.opt.LogFormat != "json" {
		return
	}
	data, err := json.Marshal(p)
	if err != nil {
		return
	}
	fmt.Fprintf(s.opt.Log, "%s\n", data)
}

// subscribe snapshots a job's replay (events with seq > after) and, unless
// the job already finished, registers a live channel. The replay and the
// registration happen under one lock acquisition, so no event can fall
// between them.
func (s *Server) subscribe(id string, after int) (replay []eventRecord, ch chan eventRecord, terminal, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, nil, false, false
	}
	for _, rec := range j.events {
		if rec.seq > after {
			replay = append(replay, rec)
		}
	}
	if j.state == JobDone || j.state == JobFailed {
		return replay, nil, true, true
	}
	ch = make(chan eventRecord, subBuffer)
	if j.subs == nil {
		j.subs = make(map[chan eventRecord]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch, false, true
}

// unsubscribe detaches a live channel; it is a no-op when the publisher or
// the job's terminal transition already closed it.
func (s *Server) unsubscribe(id string, ch chan eventRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	if _, live := j.subs[ch]; live {
		delete(j.subs, ch)
		close(ch)
	}
}

// handleJobEvents streams a job's events as Server-Sent Events: every frame
// carries an id (the job-local seq) and an EventPayload data line, so a
// client that reconnects with Last-Event-ID resumes exactly where it
// stopped. The stream closes after the terminal state event; a subscriber
// to an already-finished job gets the buffered replay and an immediate
// close.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	replay, ch, terminal, ok := s.subscribe(id, after)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	if ch != nil {
		defer s.unsubscribe(id, ch)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// The stream must outlive any server-wide write timeout.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	write := func(rec eventRecord) {
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", rec.seq, rec.name, rec.data)
	}
	for _, rec := range replay {
		write(rec)
	}
	flusher.Flush()
	if terminal {
		return
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case rec, open := <-ch:
			if !open {
				// Publisher dropped us (slow) or the job finished.
				return
			}
			write(rec)
			flusher.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}
