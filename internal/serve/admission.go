package serve

// Admission control: what stands between a burst of clients and the worker
// pool. Three mechanisms, layered in request order:
//
//  1. a per-client token bucket (Options.RateLimit/RateBurst) rejects
//     abusive clients before their requests are even parsed for validity;
//  2. a two-level priority queue replaces the old FIFO channel, so cheap
//     recost/audit submissions are not stuck behind fabric-sensitive grid
//     retrainings (priority inferred from the experiment Definition,
//     overridable per request);
//  3. queue-depth 429s carry a Retry-After derived from the observed drain
//     rate, so well-behaved clients back off for roughly as long as the
//     queue actually needs.
//
// Every 429 the service emits — rate-limit or queue-full — carries a
// Retry-After; TooBusyError is the typed carrier the HTTP layer reads.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pactrain/internal/harness"
)

// Admission failure modes beyond the queue capacity.
var (
	// ErrRateLimited rejects a client that exhausted its token bucket (429).
	ErrRateLimited = errors.New("client rate limit exceeded")
	// ErrUnknownPriority rejects priority strings outside {high, low} (400).
	ErrUnknownPriority = errors.New("unknown priority")
)

// TooBusyError wraps an admission rejection with the backoff the client
// should honor; the HTTP layer surfaces it as a Retry-After header on the
// 429. errors.Is sees through it to the underlying sentinel.
type TooBusyError struct {
	Err           error
	RetryAfterSec int
}

func (e *TooBusyError) Error() string {
	return fmt.Sprintf("%v (retry after %ds)", e.Err, e.RetryAfterSec)
}

func (e *TooBusyError) Unwrap() error { return e.Err }

// Priority is a submission's queue level.
type Priority string

// Queue levels, highest first.
const (
	PriorityHigh Priority = "high"
	PriorityLow  Priority = "low"
)

// parsePriority validates a request's priority override; empty means infer.
func parsePriority(s string) (Priority, bool, error) {
	switch Priority(s) {
	case "":
		return "", false, nil
	case PriorityHigh, PriorityLow:
		return Priority(s), true, nil
	}
	return "", false, fmt.Errorf("%w: %q (valid: %s, %s)", ErrUnknownPriority, s, PriorityHigh, PriorityLow)
}

// inferPriority maps an experiment to its default queue level. Recost-only
// experiments price recorded logs without training and quick grids train in
// seconds — both jump the queue. Fabric-sensitive grids retrain per
// operating point (core.Config.FabricSensitive), the heaviest work the
// service accepts, and full-size grids are the bulk lane; both yield.
func inferPriority(def harness.Definition, quick bool) Priority {
	switch {
	case def.RecostOnly:
		return PriorityHigh
	case def.FabricSensitive:
		return PriorityLow
	case quick:
		return PriorityHigh
	}
	return PriorityLow
}

// jobQueue is the two-level admission queue. Pops serve the high level
// first; within a level, submission order. Guarded by the server mutex.
type jobQueue struct {
	high, low []*job
	closed    bool
}

func (q *jobQueue) depth() int { return len(q.high) + len(q.low) }

func (q *jobQueue) push(j *job) {
	if j.priority == PriorityHigh {
		q.high = append(q.high, j)
	} else {
		q.low = append(q.low, j)
	}
}

// pop removes the next job, high level first; nil when empty.
func (q *jobQueue) pop() *job {
	if len(q.high) > 0 {
		j := q.high[0]
		q.high = q.high[1:]
		return j
	}
	if len(q.low) > 0 {
		j := q.low[0]
		q.low = q.low[1:]
		return j
	}
	return nil
}

// promote moves a still-queued low-priority job to the high level — the
// coalescing upgrade: when a high-priority submission folds onto a queued
// low-priority twin, the twin inherits the urgency.
func (q *jobQueue) promote(j *job) bool {
	for i, queued := range q.low {
		if queued == j {
			q.low = append(q.low[:i], q.low[i+1:]...)
			j.priority = PriorityHigh
			q.high = append(q.high, j)
			return true
		}
	}
	return false
}

// drainEstimator tracks the service's observed completion rate as an EWMA
// over inter-completion gaps, the basis for Retry-After on queue-full 429s.
// Guarded by the server mutex.
type drainEstimator struct {
	rate float64 // completions per second, 0 until two completions observed
	last time.Time
}

// drainAlpha weights the newest inter-completion gap; high enough to track
// a load shift within a few jobs, low enough to ride out one outlier.
const drainAlpha = 0.3

func (d *drainEstimator) observe(now time.Time) {
	if !d.last.IsZero() {
		if dt := now.Sub(d.last).Seconds(); dt > 0 {
			r := 1 / dt
			if d.rate == 0 {
				d.rate = r
			} else {
				d.rate = drainAlpha*r + (1-drainAlpha)*d.rate
			}
		}
	}
	d.last = now
}

// retryAfter estimates how many seconds until a queue currently holding
// depth jobs has room, clamped to [1s, 10min]. Before any completion has
// been observed the estimate assumes one job per second — wrong, but a
// bounded, honest default that still tells clients to back off.
func (d *drainEstimator) retryAfter(depth int) int {
	rate := d.rate
	if rate <= 0 {
		rate = 1
	}
	sec := math.Ceil(float64(depth+1) / rate)
	return int(math.Min(math.Max(sec, 1), 600))
}

// rateLimiter is a per-client token bucket table. Each client accrues
// rate tokens per second up to burst; a submission spends one. The table is
// bounded: past maxClients the oldest client state is evicted (that client
// simply starts over with a full bucket — forgiving, and bounded memory
// beats precise accounting for a key space an adversary controls).
type rateLimiter struct {
	rate    float64
	burst   float64
	clients map[string]*bucket
	order   []string
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the limiter table; at ~48 bytes a bucket this is a few
// hundred KB worst case.
const maxClients = 4096

// newRateLimiter returns nil when the limit is off (rate <= 0) — callers
// nil-check, and a nil limiter admits everything.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clients: make(map[string]*bucket),
	}
}

// allow spends one token for the client, reporting whether it was admitted
// and, when not, how long until the next token accrues. Guarded by the
// server mutex.
func (rl *rateLimiter) allow(client string, now time.Time) (bool, int) {
	if rl == nil {
		return true, 0
	}
	b, ok := rl.clients[client]
	if !ok {
		if len(rl.clients) >= maxClients {
			evict := rl.order[0]
			rl.order = rl.order[1:]
			delete(rl.clients, evict)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[client] = b
		rl.order = append(rl.order, client)
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := int(math.Ceil((1 - b.tokens) / rl.rate))
	if wait < 1 {
		wait = 1
	}
	return false, wait
}
