package serve

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/harness"
	"pactrain/internal/harness/engine"
)

// Handler routes the service API:
//
//	POST /v1/experiments      submit a job (202; coalesces onto in-flight twins)
//	GET  /v1/experiments      list the experiment registry
//	GET  /v1/schemes          list the aggregation-scheme catalog
//	GET  /v1/collectives      list the collective-algorithm catalog
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        job status + per-job engine progress
//	GET  /v1/jobs/{id}/result finished report bytes (CLI -json compatible)
//	GET  /v1/jobs/{id}/audit  finished counterfactual audit artifact
//	GET  /v1/jobs/{id}/events live SSE stream (Last-Event-ID replay)
//	GET  /v1/stats            engine counters, job tallies, recent events
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             Prometheus text exposition
//	GET  /cache/v1/entry/{fp} cache-peer protocol (engine/peer.go)
//
// With Options.PProf, net/http/pprof is additionally served under
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/collectives", s.handleCollectives)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The cache-peer protocol (engine/peer.go): sibling instances resolve
	// fingerprints against this server's cache and in-flight trainings.
	mux.Handle("/cache/v1/", engine.NewPeerServer(s.engine))
	if s.opt.PProf {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// submitResponse is the body of POST /v1/experiments.
type submitResponse struct {
	// JobID names the job to poll; identical in-flight submissions receive
	// the same id.
	JobID string `json:"job_id"`
	// Coalesced is true when this submission was folded onto an existing
	// in-flight job rather than creating one.
	Coalesced bool    `json:"coalesced"`
	Job       JobView `json:"job"`
}

// clientID identifies the caller for rate limiting: an explicit
// X-Client-Id header (trusted deployments put a stable identity here), else
// the remote IP (ports churn per connection and would defeat the bucket).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeTooBusy renders a 429. Every 429 the service emits carries a
// Retry-After: the typed estimate when the rejection supplied one, else a
// conservative 1s floor.
func writeTooBusy(w http.ResponseWriter, err error) {
	retry := 1
	var tb *TooBusyError
	if errors.As(err, &tb) && tb.RetryAfterSec > 0 {
		retry = tb.RetryAfterSec
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if err := s.Admit(clientID(r)); err != nil {
		writeTooBusy(w, err)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, coalesced, err := s.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownExperiment), errors.Is(err, ErrUnknownCollective),
			errors.Is(err, ErrUnknownOverlap), errors.Is(err, ErrUnknownPriority):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
			writeTooBusy(w, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{JobID: view.ID, Coalesced: coalesced, Job: view})
}

// experimentView is one registry entry on GET /v1/experiments.
type experimentView struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	defs := harness.Experiments()
	out := make([]experimentView, len(defs))
	for i, def := range defs {
		out[i] = experimentView{ID: def.ID, Title: def.Title}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSchemes serves the aggregation-scheme catalog — the same registry
// behind Config.Scheme validation and `pactrain-bench -list-schemes`.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, core.SchemeCatalog())
}

// handleCollectives serves the collective-algorithm catalog — the registry
// behind Config.Collective validation and `pactrain-bench
// -list-collectives`, mirroring the scheme catalog's shape.
func (s *Server) handleCollectives(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, collective.AlgorithmCatalog())
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, view, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	switch view.State {
	case JobDone:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, errors.New(view.Error))
	default:
		// Not finished: report the state so pollers can keep waiting.
		writeJSON(w, http.StatusConflict, view)
	}
}

// handleAudit serves a finished job's counterfactual audit artifact — the
// regret/calibration ledgers of every controller-driven run in the job's
// grid (audit.MarshalReports). Experiments with no controller runs finish
// without an artifact and 404.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	raw, view, ok := s.Audit(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	switch view.State {
	case JobDone:
		if raw == nil {
			writeError(w, http.StatusNotFound, errors.New("no audit artifact for this job (experiment has no controller-driven runs)"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, errors.New(view.Error))
	default:
		// Not finished: report the state so pollers can keep waiting.
		writeJSON(w, http.StatusConflict, view)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Stats() refreshes every scalar instrument from the same locked
	// snapshot /v1/stats serves, so the two endpoints cannot disagree; the
	// histograms observed at event time and render as-is.
	s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.met.reg.Render()))
}
