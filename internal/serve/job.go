package serve

import (
	"fmt"
	"time"

	"pactrain/internal/harness"
)

// SubmitRequest is the body of POST /v1/experiments: an experiment id plus
// the harness options that shape its grid. Zero values take the harness
// defaults (world 8, preset sample counts, seed 1), exactly as the
// pactrain-bench flags do.
type SubmitRequest struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	World      int    `json:"world"`
	Samples    int    `json:"samples"`
	Seed       uint64 `json:"seed"`
	// Collective selects the collective algorithm for every job in the grid
	// ("ring", "tree", "hierarchical"; empty = ring). "ring" and empty
	// coalesce onto the same job.
	Collective string `json:"collective,omitempty"`
	// Overlap selects the backward-overlap model for every job in the grid
	// ("none", "backward"; empty = none). "none" and empty coalesce onto
	// the same job.
	Overlap string `json:"overlap,omitempty"`
	// Priority overrides the admission queue level ("high" or "low");
	// empty infers it from the experiment: recost-only and quick
	// submissions queue high, fabric-sensitive and full grids queue low.
	// Priority never participates in coalescing — a high-priority twin
	// instead promotes the queued job both share.
	Priority string `json:"priority,omitempty"`
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states, in order.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Progress counts the engine activity attributed to a job while it runs:
// how many grid cells it submitted and how each was satisfied. Attribution
// is by experiment id (grid jobs are labelled "<id> ..."), so two
// concurrently running jobs of the same experiment under different options
// both observe the combined activity — exact whenever running jobs have
// distinct experiment ids, which request coalescing makes the common case.
type Progress struct {
	Submitted int    `json:"submitted"`
	Trained   int    `json:"trained"`
	Deduped   int    `json:"deduped"`
	CacheHits int    `json:"cache_hits"`
	LastEvent string `json:"last_event,omitempty"`
}

// job is the server-side record of one accepted submission.
type job struct {
	id  string
	key string
	def harness.Definition
	// opts is the normalized request; Engine and Log are injected at run
	// time so they never participate in the coalescing key.
	opts harness.Options

	state JobState
	// priority is the admission queue level the job waits at; a queued
	// low-priority job may be promoted by a coalescing high-priority twin.
	priority  Priority
	errMsg    string
	coalesced int // extra submissions folded onto this job
	progress  Progress

	// events is the bounded replay ring behind GET /v1/jobs/{id}/events;
	// eventSeq numbers this job's events from 1 and keeps counting past
	// ring eviction, so Last-Event-ID replay is exact whenever the
	// requested suffix is still buffered. subs holds the live stream
	// channels; simSeconds accumulates the simulated seconds of every grid
	// cell the engine delivered to this job (observed into the job_sim
	// histogram at completion).
	events     []eventRecord
	eventSeq   int
	subs       map[chan eventRecord]struct{}
	simSeconds float64

	created  time.Time
	started  time.Time
	finished time.Time

	resultJSON []byte
	// auditJSON is the job's counterfactual audit artifact
	// (audit.MarshalReports); nil when the experiment audited nothing
	// (no controller-driven runs in its grid).
	auditJSON []byte
}

// submitKey canonicalizes a request for coalescing: two requests with the
// same key describe byte-identical reports, so concurrent clients share
// one job.
func submitKey(id string, o harness.Options) string {
	return fmt.Sprintf("%s quick=%t world=%d samples=%d seed=%d collective=%s overlap=%s",
		id, o.Quick, o.World, o.Samples, o.Seed, o.Collective, o.Overlap)
}

// JobView is the wire representation of a job for the status endpoints.
type JobView struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	State      JobState `json:"state"`
	// Priority is the admission queue level the job was (or is) waiting at.
	Priority Priority `json:"priority"`
	// Coalesced counts submissions beyond the first that were folded onto
	// this job while it was in flight.
	Coalesced  int           `json:"coalesced"`
	Options    SubmitRequest `json:"options"`
	Progress   Progress      `json:"progress"`
	Error      string        `json:"error,omitempty"`
	QueuedAt   string        `json:"queued_at"`
	StartedAt  string        `json:"started_at,omitempty"`
	FinishedAt string        `json:"finished_at,omitempty"`
}

// view snapshots a job for the API; callers hold the server mutex.
func (j *job) view() JobView {
	v := JobView{
		ID:         j.id,
		Experiment: j.def.ID,
		State:      j.state,
		Priority:   j.priority,
		Coalesced:  j.coalesced,
		Options: SubmitRequest{
			Experiment: j.def.ID,
			Quick:      j.opts.Quick,
			World:      j.opts.World,
			Samples:    j.opts.Samples,
			Seed:       j.opts.Seed,
			Collective: j.opts.Collective,
			Overlap:    j.opts.Overlap,
		},
		Progress: j.progress,
		Error:    j.errMsg,
		QueuedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
