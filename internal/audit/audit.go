// Package audit derives a counterfactual decision audit from a recorded
// training run: it replays the run's CommLog with the per-rank arithmetic of
// the harness re-coster, and at every controller-driven round reprices the
// full candidate set with the same pricing arithmetic the adaptive
// controller used (adaptive.PriceQuotes on a PricingClone of the recorded
// fabric). The resulting ledger — the cost every candidate *would* have
// incurred, round by round — answers the question the decision log alone
// cannot: was each pick right, and by how much?
//
// Three summaries fall out of the ledger:
//
//   - regret: the chosen formats' total quoted cost against the per-round
//     oracle (the cheapest quote each round) and against the best static
//     format (the single candidate with the lowest total);
//   - switch efficiency: for every observed format change, whether the
//     quoted savings over the rounds the new format was held exceeded zero
//     — did the hysteresis-dwelled switch pay for itself;
//   - calibration: the controller's launch-time predicted cost against the
//     timeline-replayed actual cost per op, as signed-relative-error
//     histograms per format. Options.StalenessSec ages the predicted side's
//     bandwidth view, so a fabric that lies (a flap the controller prices
//     late) shows up as calibration drift before it shows up as lost TTA.
//
// Like internal/obs, the audit is *derived*: it reads only the recorded log
// and the run's config, prices on throwaway fabrics, and perturbs nothing —
// reports, fingerprints, and caches are byte-identical with or without it,
// and the audit artifact itself is byte-identical at any -parallel or
// kernel-budget setting. As a guard, Replay verifies the replayed clock
// reproduces the recorded SimSeconds bit-for-bit; a mismatch means the
// config/fabric handed in is not the one the log was recorded under
// (DESIGN.md §8), and the audit refuses rather than reporting fiction.
package audit

import (
	"errors"
	"fmt"
	"math"

	"pactrain/internal/adaptive"
	"pactrain/internal/collective"
	"pactrain/internal/core"
	"pactrain/internal/ddp"
	"pactrain/internal/netsim"
	"pactrain/internal/simclock"
)

// Options configures a replay audit.
type Options struct {
	// StalenessSec ages the controller-view bandwidth estimate: each decided
	// round's predicted cost (and the stale pick) is priced at
	// max(0, launch-StalenessSec) instead of the launch instant. Zero prices
	// at launch, where prediction and actual agree bit-for-bit on the
	// recorded fabric — the audit's calibration floor.
	StalenessSec float64
	// IncludeRounds keeps the full per-round ledger on the report (one entry
	// per decided round). Off, the report carries only the aggregates.
	IncludeRounds bool
}

// CalibrationEdges are the signed-relative-error bin boundaries of the
// calibration histograms: bin i counts errors in (edge[i-1], edge[i]], with
// an underflow bin below the first edge and an overflow bin above the last.
func CalibrationEdges() []float64 {
	return []float64{-0.5, -0.2, -0.1, -0.05, -0.01, 0.01, 0.05, 0.1, 0.2, 0.5}
}

// Round is one controller-driven bucket round of the counterfactual ledger.
type Round struct {
	// Iter and Bucket locate the round in the recorded log.
	Iter   int
	Bucket int
	// Format is the format the controller actually chose; NNZ the mask's
	// retained-coordinate count recovered from the wire; LaunchSec the
	// replayed launch instant.
	Format    string
	NNZ       int
	LaunchSec float64
	// Quotes is the full candidate ledger at the launch instant, in
	// canonical candidate order — exactly the quote vector the controller
	// weighed.
	Quotes []adaptive.Quote
	// PredictedSec is the chosen format's quote under the (possibly stale)
	// controller view; ActualSec the op's timeline-replayed duration.
	PredictedSec float64
	ActualSec    float64
	// OracleFormat is the cheapest candidate at launch; StaleFormat the
	// cheapest under the stale view (equal when StalenessSec is zero).
	OracleFormat string
	StaleFormat  string
}

// FormatTotal is one candidate's counterfactual season total: what the whole
// run's decided rounds would have cost had this format been used throughout.
type FormatTotal struct {
	Format   string
	QuoteSec float64
}

// Switch is one observed format change in the decision stream. A ledger
// switch is a *format change between consecutive decided rounds of a
// bucket*, which is a superset of the controller's completed hysteresis
// switches: a pruning-step mask reset re-picks incumbents from scratch, and
// a changed re-pick lands here too.
type Switch struct {
	Iter   int
	Bucket int
	From   string
	To     string
	// RoundsHeld counts the decided rounds the new format was held (this
	// bucket, until its next switch or end of run); SavedSec accumulates the
	// quoted saving quote(From)-quote(To) over those rounds. Paid means the
	// switch recovered more than it cost — SavedSec > 0.
	RoundsHeld int
	SavedSec   float64
	Paid       bool
}

// FormatCalibration is the predicted-vs-actual error distribution of one
// format's decided rounds: signed relative error (predicted-actual)/actual,
// binned by CalibrationEdges.
type FormatCalibration struct {
	Format          string
	Rounds          int
	MeanSignedError float64
	MaxAbsError     float64
	// Bins has len(CalibrationEdges())+1 counts: underflow, one per edge
	// interval, overflow.
	Bins []int
}

// Report is the audit of one recorded run. All slices are in deterministic
// order (candidates canonical, rounds and switches in replay order), so the
// serialized report is byte-identical across runs, parallelism budgets, and
// cache states.
type Report struct {
	// Label names the run in grid audits (the engine job label); empty for
	// direct single-run audits.
	Label string `json:",omitempty"`
	// Fingerprint is the run config's digest — the same identity the engine
	// dedups by, so one training audited under two labels is recognizable.
	Fingerprint string
	Scheme      string
	Model       string
	Collective  string
	World       int
	// Candidates is the controller's configured candidate set in canonical
	// order — the only formats the ledger prices.
	Candidates []string
	// MarginBound is the hysteresis guarantee 1/(1-margin): the chosen total
	// can never exceed the per-round oracle total by more than this factor.
	MarginBound  float64
	StalenessSec float64

	// Iters counts recorded iterations; DecidedRounds the ledger entries;
	// SkippedRounds decided ops whose mask NNZ was unrecoverable (dense
	// rounds before the bucket's first compact round); ForcedOps the
	// scheme's forced full syncs (unstable rounds, no Decision tag).
	Iters         int
	DecidedRounds int
	SkippedRounds int
	ForcedOps     int

	// ReplayEndSec is the replayed clock after the last iteration; Replay
	// verified it equals the recorded SimSeconds bit-for-bit.
	ReplayEndSec float64

	// ChosenSec totals the chosen formats' quotes over the ledger;
	// OracleSec the per-round cheapest quotes; ActualSec the decided ops'
	// timeline-replayed durations. OracleRegretSec = ChosenSec - OracleSec.
	ChosenSec       float64
	OracleSec       float64
	ActualSec       float64
	OracleRegretSec float64

	// Static holds every candidate's counterfactual total, in candidate
	// order; BestStatic* name the cheapest. StaticRegretSec =
	// ChosenSec - BestStaticSec: negative means the controller beat every
	// static format from the ledger alone.
	Static           []FormatTotal
	BestStaticFormat string
	BestStaticSec    float64
	StaticRegretSec  float64

	// Switches lists observed format changes in replay order; SwitchesPaid
	// counts those whose quoted savings were positive.
	Switches     []Switch
	SwitchesPaid int

	// MispickRounds counts rounds where the stale view's cheapest candidate
	// differs from the true oracle — the rounds a controller fed the stale
	// estimate would green-light the wrong format. Zero when StalenessSec
	// is zero.
	MispickRounds int

	// Calibration holds the per-format predicted-vs-actual distributions,
	// for formats with at least one decided round, in candidate order.
	Calibration []FormatCalibration

	// Rounds is the full ledger (Options.IncludeRounds).
	Rounds []Round `json:",omitempty"`
}

// MaxCalibrationError is the largest |signed relative error| across every
// format's calibration rows — the report's single-number drift headline.
func (r *Report) MaxCalibrationError() float64 {
	var m float64
	for _, c := range r.Calibration {
		if c.MaxAbsError > m {
			m = c.MaxAbsError
		}
	}
	return m
}

// calAccum accumulates one format's calibration statistics during replay.
type calAccum struct {
	rounds int
	sum    float64
	maxAbs float64
	bins   []int
}

func (a *calAccum) observe(err float64) {
	a.rounds++
	a.sum += err
	if abs := math.Abs(err); abs > a.maxAbs {
		a.maxAbs = abs
	}
	edges := CalibrationEdges()
	if a.bins == nil {
		a.bins = make([]int, len(edges)+1)
	}
	i := 0
	for i < len(edges) && err > edges[i] {
		i++
	}
	a.bins[i]++
}

// Replay audits one recorded run on the fabric its config describes
// (Topology defaulting to the Fig. 4 fabric at the config's bottleneck,
// bandwidth traces applied) — the fabric the controller priced on, which is
// the only fabric where the recorded decisions replay exactly (DESIGN.md
// §8). Runs recorded without controller decisions (static schemes) produce
// a report with zero DecidedRounds.
func Replay(cfg core.Config, res *core.Result, opt Options) (*Report, error) {
	if res == nil || res.CommLog == nil {
		return nil, errors.New("audit: run was not recorded (Config.RecordComm)")
	}
	if cfg.Topology == nil {
		bw := cfg.BottleneckBps
		if bw <= 0 {
			bw = 1 * netsim.Gbps
		}
		cfg.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bw})
	}
	if cfg.Compute.DeviceFLOPS == 0 {
		cfg.Compute = ddp.A40ComputeModel(cfg.Profile.FLOPsPerSample)
	}
	fabric := netsim.NewFabric(cfg.Topology)
	for _, t := range cfg.Traces {
		fabric.SetTrace(t)
	}
	cands, err := adaptive.CanonicalCandidates(cfg.AdaptCandidates)
	if err != nil {
		cands = adaptive.Formats()
	}
	collName, err := collective.CanonicalAlgorithm(cfg.Collective)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}

	rep := &Report{
		Fingerprint:  cfg.Fingerprint(),
		Scheme:       cfg.Scheme,
		Model:        cfg.ModelName,
		Collective:   collName,
		World:        cfg.World,
		Candidates:   cands,
		MarginBound:  adaptive.Regret(cfg.AdaptMargin),
		StalenessSec: opt.StalenessSec,
		Iters:        len(res.CommLog.Iters),
	}
	if err := replayLedger(rep, &cfg, res, fabric, opt); err != nil {
		return nil, err
	}
	finishReport(rep, opt)
	return rep, nil
}

// replayLedger walks the recorded log with the per-rank arithmetic of the
// harness timeline re-coster — same schedules, same barrier, same in-order
// stream, live pricing — accumulating the ledger instead of a trace.
func replayLedger(rep *Report, cfg *core.Config, res *core.Result, fabric *netsim.Fabric, opt Options) error {
	log := res.CommLog
	alg := collective.MustAlgorithm(cfg.Collective)
	hosts := fabric.Topo.Hosts()[:cfg.World]
	pricing := fabric.PricingClone()
	var prefix []float64
	if cfg.Overlap == ddp.OverlapBackward && len(log.BucketElems) > 0 {
		prefix = simclock.PrefixShares(log.BucketElems)
	}
	fwd := cfg.Compute.ForwardSeconds(cfg.BatchSize)
	bwd := cfg.Compute.BackwardSeconds(cfg.BatchSize)
	// The trainer prices compute on the actual mini-batch, and a shard whose
	// size doesn't divide by the batch ends each epoch on a ragged batch —
	// replaying every iteration at cfg.BatchSize would drift the clock there.
	plan := batchPlan(cfg.Data.Samples, cfg.World, cfg.BatchSize)

	nnzs := NewNNZTracker()
	// Only the sparse formats price by mask NNZ; a candidate set without
	// them (the dense-only static baseline) audits every round even though
	// a dense wire never reveals the mask size.
	needNNZ := false
	for _, f := range rep.Candidates {
		if f != adaptive.FormatDense {
			needNNZ = true
		}
	}
	statics := make(map[string]float64, len(rep.Candidates))
	cals := make(map[string]*calAccum, len(rep.Candidates))
	prevFormat := make(map[int]string) // bucket -> last decided format
	openSwitch := make(map[int]int)    // bucket -> index into rep.Switches

	tl := simclock.NewTimeline(cfg.World)
	scheds := make([]simclock.IterSchedule, cfg.World)
	comp := simclock.NewIterComposer(scheds)
	for k, ops := range log.Iters {
		for r := range scheds {
			scale := cfg.RankCompute.Scale(r, k)
			f, b := fwd, bwd
			if r < len(plan) && len(plan[r]) > 0 {
				if n := plan[r][k%len(plan[r])]; n != cfg.BatchSize {
					f = cfg.Compute.ForwardSeconds(n)
					b = cfg.Compute.BackwardSeconds(n)
				}
			}
			scheds[r] = simclock.NewIterSchedule(tl.Clock(r), f*scale, b*scale, prefix)
		}
		comp.Reset()
		commEnd := math.Inf(-1)
		for _, op := range ops {
			launch := comp.Barrier(op.Bucket)
			if commEnd > launch {
				launch = commEnd
			}
			actual := core.CostOp(op, alg, fabric, hosts, launch)
			commEnd = launch + actual

			if op.Decision == "" {
				rep.ForcedOps++
				continue
			}
			nnz, ok := nnzs.Observe(op)
			if !ok && !needNNZ {
				nnz, ok = 0, true
			}
			n := 0
			if op.Bucket < len(log.BucketElems) {
				n = log.BucketElems[op.Bucket]
			}
			if !ok || n == 0 {
				rep.SkippedRounds++
				continue
			}
			scale := WireScaleFromOp(op)
			truth := adaptive.PriceQuotes(alg, pricing, hosts, scale, rep.Candidates, n, nnz, launch)
			stale := truth
			if opt.StalenessSec > 0 {
				t := launch - opt.StalenessSec
				if t < 0 {
					t = 0
				}
				stale = adaptive.PriceQuotes(alg, pricing, hosts, scale, rep.Candidates, n, nnz, t)
			}
			chosen, okChosen := quoteFor(truth, op.Decision)
			predicted, okStale := quoteFor(stale, op.Decision)
			if !okChosen || !okStale {
				return fmt.Errorf("audit: recorded decision %q at iter %d bucket %d is outside the candidate set %v",
					op.Decision, k, op.Bucket, rep.Candidates)
			}
			oracle := cheapest(truth)
			stalePick := cheapest(stale)

			rep.DecidedRounds++
			rep.ChosenSec += chosen
			rep.OracleSec += oracle.CostSeconds
			rep.ActualSec += actual
			if stalePick.Format != oracle.Format {
				rep.MispickRounds++
			}
			for _, q := range truth {
				statics[q.Format] += q.CostSeconds
			}
			ca := cals[op.Decision]
			if ca == nil {
				ca = &calAccum{}
				cals[op.Decision] = ca
			}
			ca.observe((predicted - actual) / actual)

			// Switch bookkeeping: every decided round extends the bucket's
			// open switch by the saving its pick banked over the format it
			// abandoned; a format change closes the old switch and opens a
			// new one.
			if prev, seen := prevFormat[op.Bucket]; seen && prev != op.Decision {
				delete(openSwitch, op.Bucket)
				rep.Switches = append(rep.Switches, Switch{
					Iter: k, Bucket: op.Bucket, From: prev, To: op.Decision,
				})
				openSwitch[op.Bucket] = len(rep.Switches) - 1
			}
			if si, open := openSwitch[op.Bucket]; open {
				sw := &rep.Switches[si]
				sw.RoundsHeld++
				from, _ := quoteFor(truth, sw.From)
				sw.SavedSec += from - chosen
			}
			prevFormat[op.Bucket] = op.Decision

			if opt.IncludeRounds {
				rep.Rounds = append(rep.Rounds, Round{
					Iter: k, Bucket: op.Bucket, Format: op.Decision,
					NNZ: nnz, LaunchSec: launch,
					Quotes:       truth,
					PredictedSec: predicted, ActualSec: actual,
					OracleFormat: oracle.Format, StaleFormat: stalePick.Format,
				})
			}
		}
		comp.FinishInto(tl, commEnd)
	}

	rep.ReplayEndSec = tl.Clock(0)
	if rep.ReplayEndSec != res.SimSeconds {
		return fmt.Errorf("audit: replayed clock %v != recorded SimSeconds %v (Δ %g) — the config/fabric is not the one the log was recorded under (DESIGN.md §8)",
			rep.ReplayEndSec, res.SimSeconds, rep.ReplayEndSec-res.SimSeconds)
	}

	for _, f := range rep.Candidates {
		if ca := cals[f]; ca != nil {
			rep.Calibration = append(rep.Calibration, FormatCalibration{
				Format:          f,
				Rounds:          ca.rounds,
				MeanSignedError: ca.sum / float64(ca.rounds),
				MaxAbsError:     ca.maxAbs,
				Bins:            ca.bins,
			})
		}
		rep.Static = append(rep.Static, FormatTotal{Format: f, QuoteSec: statics[f]})
	}
	return nil
}

// finishReport derives the closing aggregates from the accumulated ledger.
func finishReport(rep *Report, _ Options) {
	rep.OracleRegretSec = rep.ChosenSec - rep.OracleSec
	if rep.DecidedRounds == 0 {
		rep.Static = nil
		return
	}
	best := rep.Static[0]
	for _, s := range rep.Static[1:] {
		if s.QuoteSec < best.QuoteSec {
			best = s
		}
	}
	rep.BestStaticFormat = best.Format
	rep.BestStaticSec = best.QuoteSec
	rep.StaticRegretSec = rep.ChosenSec - rep.BestStaticSec
	for i := range rep.Switches {
		if rep.Switches[i].SavedSec > 0 {
			rep.Switches[i].Paid = true
			rep.SwitchesPaid++
		}
	}
}

// batchPlan returns each rank's per-iteration sample counts over one epoch:
// round-robin sharding (data.ShardDataset) gives rank r every world-th
// sample, and Batches cuts the shard into full batches plus one ragged
// remainder. Shuffling permutes contents, never sizes, so the sequence is
// epoch-invariant. A nil plan (unknown sample count) falls back to
// cfg.BatchSize everywhere.
func batchPlan(samples, world, batch int) [][]int {
	if samples <= 0 || world <= 0 || batch <= 0 {
		return nil
	}
	plan := make([][]int, world)
	for r := range plan {
		shard := 0
		if samples > r {
			shard = (samples - r + world - 1) / world
		}
		for rem := shard; rem > 0; rem -= batch {
			b := batch
			if rem < batch {
				b = rem
			}
			plan[r] = append(plan[r], b)
		}
	}
	return plan
}

// quoteFor fetches one format's cost from a quote vector.
func quoteFor(quotes []adaptive.Quote, format string) (float64, bool) {
	for _, q := range quotes {
		if q.Format == format {
			return q.CostSeconds, true
		}
	}
	return 0, false
}

// cheapest returns the lowest quote; ties resolve to the earlier candidate
// (canonical order), matching the controller's own argmin.
func cheapest(quotes []adaptive.Quote) adaptive.Quote {
	best := quotes[0]
	for _, q := range quotes[1:] {
		if q.CostSeconds < best.CostSeconds {
			best = q
		}
	}
	return best
}

// NNZTracker recovers the mask's retained-coordinate count from recorded
// adaptive ops: the compact formats put exactly NNZ elements on the wire,
// the index list gathers NNZ coordinates per origin, and dense rounds fall
// back to the bucket's last known value (before a bucket's first compact
// round the NNZ is unrecoverable and Observe reports false).
type NNZTracker struct {
	last map[int]int
}

// NewNNZTracker returns an empty tracker.
func NewNNZTracker() *NNZTracker {
	return &NNZTracker{last: make(map[int]int)}
}

// Observe recovers the op's mask NNZ and advances the per-bucket carry.
func (t *NNZTracker) Observe(op core.CommOp) (int, bool) {
	switch op.Decision {
	case adaptive.FormatCompact, adaptive.FormatCompactTernary:
		t.last[op.Bucket] = op.Elements
		return op.Elements, true
	case adaptive.FormatIndexList:
		if len(op.Sizes) > 0 {
			t.last[op.Bucket] = op.Sizes[0]
			return op.Sizes[0], true
		}
	case adaptive.FormatDense:
		if v, ok := t.last[op.Bucket]; ok {
			return v, true
		}
	}
	return 0, false
}

// WireScaleFromOp recovers the lite-twin wire scale the hooks applied to a
// recorded op's format (DESIGN.md §1): the recorded BytesPerElement over the
// format's base width. Exact — the scale was applied by multiplication, and
// dividing by the power-of-two base widths loses no bits.
func WireScaleFromOp(op core.CommOp) float64 {
	var base float64
	switch op.Wire.Name {
	case "fp32":
		base = 4
	case "fp16":
		base = 2
	case "int8":
		base = 1
	case "coo":
		base = 8
	case "ternary":
		base = 0.25
	case "bitmap":
		base = 0.125
	}
	if base == 0 || op.Wire.BytesPerElement == 0 {
		return 1
	}
	return op.Wire.BytesPerElement / base
}
