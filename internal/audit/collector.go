package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Collector accumulates the audit reports of an experiment grid. It is safe
// for concurrent use, but the harness feeds it from the single assembly
// goroutine in submission order, so the collected sequence — and the
// serialized artifact — is deterministic at any engine parallelism.
// Identical runs (same config fingerprint) audited under several labels are
// kept once, under the first label, like the tracer's per-run dedup.
type Collector struct {
	mu      sync.Mutex
	seen    map[string]bool
	reports []*Report
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{seen: make(map[string]bool)}
}

// Add appends a report and reports whether it was kept; nil reports and
// fingerprint repeats are dropped.
func (c *Collector) Add(r *Report) bool {
	if c == nil || r == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[r.Fingerprint] {
		return false
	}
	c.seen[r.Fingerprint] = true
	c.reports = append(c.reports, r)
	return true
}

// Reports snapshots the collected reports in collection order.
func (c *Collector) Reports() []*Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Report, len(c.reports))
	copy(out, c.reports)
	return out
}

// MarshalReports serializes reports as an indented JSON array — the audit
// artifact format (one element per audited run, deterministic order).
func MarshalReports(reports []*Report) ([]byte, error) {
	if reports == nil {
		reports = []*Report{}
	}
	raw, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("audit: marshal reports: %w", err)
	}
	return append(raw, '\n'), nil
}

// WriteReports writes the audit artifact to path.
func WriteReports(path string, reports []*Report) error {
	raw, err := MarshalReports(reports)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("audit: write %s: %w", path, err)
	}
	return nil
}
