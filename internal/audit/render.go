package audit

import (
	"fmt"
	"strings"

	"pactrain/internal/metrics"
)

// Render prints one report as the human-readable regret table: headline
// totals, the per-candidate counterfactual season, per-format calibration,
// and the switch ledger.
func (r *Report) Render() string {
	var b strings.Builder
	name := r.Label
	if name == "" {
		name = fmt.Sprintf("%s %s", r.Model, r.Scheme)
	}
	fmt.Fprintf(&b, "audit %s (%s, world %d, staleness %s)\n",
		name, r.Collective, r.World, metrics.FormatSeconds(r.StalenessSec))
	fmt.Fprintf(&b, "  %d iters: %d decided rounds, %d forced syncs, %d skipped (NNZ unknown)\n",
		r.Iters, r.DecidedRounds, r.ForcedOps, r.SkippedRounds)
	if r.DecidedRounds == 0 {
		b.WriteString("  no controller decisions to audit\n")
		return b.String()
	}

	tb := metrics.NewTable(
		fmt.Sprintf("counterfactual ledger totals (%d rounds; chosen %s, oracle regret %s, vs best static %+.2f%%)",
			r.DecidedRounds, metrics.FormatSeconds(r.ChosenSec),
			metrics.FormatSeconds(r.OracleRegretSec), 100*r.StaticRegretSec/r.BestStaticSec),
		"candidate", "season total", "vs chosen")
	for _, s := range r.Static {
		mark := ""
		if s.Format == r.BestStaticFormat {
			mark = " (best static)"
		}
		tb.AddRow(s.Format,
			metrics.FormatSeconds(s.QuoteSec)+mark,
			fmt.Sprintf("%+.2f%%", 100*(s.QuoteSec-r.ChosenSec)/r.ChosenSec))
	}
	b.WriteString(tb.String())

	cal := metrics.NewTable(
		fmt.Sprintf("calibration: predicted vs actual per op (max |err| %.4f, %d stale mispick rounds)",
			r.MaxCalibrationError(), r.MispickRounds),
		"format", "rounds", "mean err", "max |err|")
	for _, c := range r.Calibration {
		cal.AddRow(c.Format, fmt.Sprintf("%d", c.Rounds),
			fmt.Sprintf("%+.4f", c.MeanSignedError), fmt.Sprintf("%.4f", c.MaxAbsError))
	}
	b.WriteString(cal.String())

	fmt.Fprintf(&b, "switches: %d observed, %d paid for themselves\n", len(r.Switches), r.SwitchesPaid)
	for _, sw := range r.Switches {
		verdict := "unpaid"
		if sw.Paid {
			verdict = "paid"
		}
		fmt.Fprintf(&b, "  iter %-4d bucket %-3d %s -> %s: %s over %d rounds (%s)\n",
			sw.Iter, sw.Bucket, sw.From, sw.To,
			metrics.FormatSeconds(sw.SavedSec), sw.RoundsHeld, verdict)
	}
	return b.String()
}

// Summary renders every report of a grid audit, in collection order.
func Summary(reports []*Report) string {
	if len(reports) == 0 {
		return "audit: no controller-driven runs collected\n"
	}
	var b strings.Builder
	for i, r := range reports {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.Render())
	}
	return b.String()
}
