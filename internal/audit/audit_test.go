package audit

import (
	"math"
	"strings"
	"sync"
	"testing"

	"pactrain/internal/adaptive"
	"pactrain/internal/core"
	"pactrain/internal/data"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
	"pactrain/internal/par"
)

// wanConfig builds a fast adaptive run on the WAN-latency Fig. 4 fabric —
// the regime where several wire formats are genuinely in play — with an
// optional oscillating bottleneck trace of the given period.
func wanConfig(periodSec float64, candidates ...string) core.Config {
	cfg := core.DefaultConfig("MLP", core.SchemeAdaptive)
	cfg.World = 4
	topo := netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 1 * netsim.Gbps, LatencySec: 5e-3})
	cfg.Topology = topo
	cfg.Data = data.CIFAR10Like(320, 5)
	cfg.TestSamples = 100
	cfg.Epochs = 3
	cfg.BatchSize = 8
	cfg.PretrainEpochs = 1
	cfg.TargetAcc = 0.5
	cfg.BucketBytes = 1 << 14
	cfg.Profile = nn.CommProfile{Name: "MLP", Params: 1_000_000, FLOPsPerSample: 50_000_000}
	cfg.AdaptCandidates = candidates
	if periodSec > 0 {
		for _, li := range topo.InterSwitchLinks() {
			var segs []netsim.TraceSegment
			for k := 0; k < 1024; k++ {
				scale := 1.0
				if k%2 == 1 {
					scale = 0.1
				}
				segs = append(segs, netsim.TraceSegment{UntilSec: float64(k+1) * periodSec, Scale: scale})
			}
			segs = append(segs, netsim.TraceSegment{UntilSec: math.Inf(1), Scale: 1})
			cfg.Traces = append(cfg.Traces, &netsim.BandwidthTrace{LinkIndex: li, Segments: segs})
		}
	}
	return cfg
}

// oscPeriod keeps the oscillation fast enough that a 3-epoch run sees
// several regime flips.
const oscPeriod = 0.2

var (
	trainOnce sync.Once
	trainCfg  core.Config
	trainRes  *core.Result
	trainErr  error
)

// trainedRun trains the shared oscillating-WAN adaptive run once per test
// process.
func trainedRun(t *testing.T) (core.Config, *core.Result) {
	t.Helper()
	trainOnce.Do(func() {
		trainCfg = wanConfig(oscPeriod)
		trainRes, trainErr = core.Run(trainCfg)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainCfg, trainRes
}

func TestAuditLedgerReplaysRecordedRun(t *testing.T) {
	cfg, res := trainedRun(t)
	rep, err := Replay(cfg, res, Options{IncludeRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedRounds == 0 {
		t.Fatal("adaptive run audited to zero decided rounds")
	}
	if rep.ReplayEndSec != res.SimSeconds {
		t.Fatalf("replay end %v != SimSeconds %v", rep.ReplayEndSec, res.SimSeconds)
	}
	if rep.Iters != len(res.CommLog.Iters) {
		t.Fatalf("iters %d != recorded %d", rep.Iters, len(res.CommLog.Iters))
	}
	if len(rep.Rounds) != rep.DecidedRounds {
		t.Fatalf("ledger has %d rounds, summary says %d", len(rep.Rounds), rep.DecidedRounds)
	}
	// The ledger's totals must re-derive from its own rounds.
	var chosen, oracle, actual float64
	for _, rd := range rep.Rounds {
		q, ok := quoteFor(rd.Quotes, rd.Format)
		if !ok {
			t.Fatalf("round iter %d bucket %d: chosen %q missing from quotes", rd.Iter, rd.Bucket, rd.Format)
		}
		chosen += q
		oracle += cheapest(rd.Quotes).CostSeconds
		actual += rd.ActualSec
	}
	if chosen != rep.ChosenSec || oracle != rep.OracleSec || actual != rep.ActualSec {
		t.Fatalf("ledger totals disagree with summary: chosen %v/%v oracle %v/%v actual %v/%v",
			chosen, rep.ChosenSec, oracle, rep.OracleSec, actual, rep.ActualSec)
	}
	if rep.OracleSec > rep.ChosenSec {
		t.Fatalf("oracle %v above chosen %v", rep.OracleSec, rep.ChosenSec)
	}
	if rep.OracleRegretSec != rep.ChosenSec-rep.OracleSec {
		t.Fatalf("oracle regret %v != %v", rep.OracleRegretSec, rep.ChosenSec-rep.OracleSec)
	}
	// Hysteresis guarantee: the chosen total can never exceed the oracle
	// total by more than the margin bound.
	if rep.ChosenSec > rep.OracleSec*rep.MarginBound*(1+1e-12) {
		t.Fatalf("chosen %v breaches margin bound %v × oracle %v", rep.ChosenSec, rep.MarginBound, rep.OracleSec)
	}
	if rep.BestStaticSec <= 0 || rep.BestStaticFormat == "" {
		t.Fatalf("no best static: %+v", rep)
	}
	if txt := rep.Render(); !strings.Contains(txt, "counterfactual ledger") {
		t.Fatalf("render missing ledger table:\n%s", txt)
	}
}

// TestAuditRegretAdaptiveAtMostBestStatic is the payoff assertion from the
// ledger side: on the oscillating fabric the controller's chosen total must
// sit at or below every single-format counterfactual season — PR 4's
// "adaptive ≤ best static" reproduced from recorded logs alone.
func TestAuditRegretAdaptiveAtMostBestStatic(t *testing.T) {
	cfg, res := trainedRun(t)
	rep, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StaticRegretSec > rep.BestStaticSec*(rep.MarginBound-1)*(1+1e-12) {
		t.Fatalf("chosen %v exceeds best static %v beyond the margin bound (regret %v)",
			rep.ChosenSec, rep.BestStaticSec, rep.StaticRegretSec)
	}
	for _, s := range rep.Static {
		if s.QuoteSec < rep.BestStaticSec {
			t.Fatalf("static %s total %v below best %v", s.Format, s.QuoteSec, rep.BestStaticSec)
		}
	}
}

// TestAuditCalibrationExactAtZeroStaleness pins the calibration floor: at
// staleness zero the predicted side prices the chosen format at the same
// launch instant on the same fabric as the timeline replay, so predicted and
// actual agree bit-for-bit and every error histogram is a spike at zero.
func TestAuditCalibrationExactAtZeroStaleness(t *testing.T) {
	cfg, res := trainedRun(t)
	rep, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxCalibrationError(); got != 0 {
		t.Fatalf("zero-staleness calibration error %v, want exactly 0", got)
	}
	if rep.MispickRounds != 0 {
		t.Fatalf("zero-staleness mispicks %d, want 0", rep.MispickRounds)
	}
	total := 0
	for _, c := range rep.Calibration {
		total += c.Rounds
		if c.MeanSignedError != 0 || c.MaxAbsError != 0 {
			t.Fatalf("format %s drifted at zero staleness: %+v", c.Format, c)
		}
	}
	if total != rep.DecidedRounds {
		t.Fatalf("calibration covers %d rounds of %d", total, rep.DecidedRounds)
	}
}

// TestAuditCalibrationWidensWithStaleness is the flap question made
// runnable: on the oscillating-bottleneck fabric, the further the
// controller's bandwidth view lags reality, the wider the predicted-vs-
// actual error grows — monotonically across staleness levels.
func TestAuditCalibrationWidensWithStaleness(t *testing.T) {
	cfg, res := trainedRun(t)
	stale := []float64{0, oscPeriod / 4, oscPeriod / 2}
	var errs []float64
	for _, s := range stale {
		rep, err := Replay(cfg, res, Options{StalenessSec: s})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, rep.MaxCalibrationError())
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] < errs[i-1] {
			t.Fatalf("calibration error shrank with staleness: %v at %v", errs, stale)
		}
	}
	if errs[len(errs)-1] <= 0 {
		t.Fatalf("stale view never drifted: %v", errs)
	}
}

// TestAuditRestrictedCandidates pins the ledger's candidate discipline:
// with AdaptCandidates restricted, every round's quote vector holds exactly
// the configured candidates, in canonical order.
func TestAuditRestrictedCandidates(t *testing.T) {
	cfg := wanConfig(0, adaptive.FormatIndexList, adaptive.FormatCompactTernary)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(cfg, res, Options{IncludeRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{adaptive.FormatCompactTernary, adaptive.FormatIndexList} // canonical order
	if len(rep.Candidates) != len(want) {
		t.Fatalf("candidates %v, want %v", rep.Candidates, want)
	}
	for i, f := range want {
		if rep.Candidates[i] != f {
			t.Fatalf("candidates %v, want %v", rep.Candidates, want)
		}
	}
	if rep.DecidedRounds == 0 {
		t.Fatal("no decided rounds")
	}
	for _, rd := range rep.Rounds {
		if len(rd.Quotes) != len(want) {
			t.Fatalf("round iter %d bucket %d quotes %v, want formats %v", rd.Iter, rd.Bucket, rd.Quotes, want)
		}
		for i, f := range want {
			if rd.Quotes[i].Format != f {
				t.Fatalf("round iter %d bucket %d quote order %v, want %v", rd.Iter, rd.Bucket, rd.Quotes, want)
			}
		}
	}
	if len(rep.Static) != len(want) {
		t.Fatalf("static totals %v, want one per candidate %v", rep.Static, want)
	}
}

// TestAuditDeterministicAcrossKernelBudgets pins the artifact's
// byte-identity: training and auditing under different parallel-kernel
// budgets produces the same serialized report.
func TestAuditDeterministicAcrossKernelBudgets(t *testing.T) {
	defer par.SetBudget(par.Budget())
	artifact := func(budget int) []byte {
		par.SetBudget(budget)
		cfg := wanConfig(oscPeriod)
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(cfg, res, Options{IncludeRounds: true, StalenessSec: oscPeriod / 4})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MarshalReports([]*Report{rep})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := artifact(1), artifact(8)
	if string(a) != string(b) {
		t.Fatalf("audit artifact differs across kernel budgets (%d vs %d bytes)", len(a), len(b))
	}
}

// TestAuditStaticSchemeHasNoLedger: a run without controller decisions
// audits to an empty ledger, not an error.
func TestAuditStaticSchemeHasNoLedger(t *testing.T) {
	cfg := wanConfig(0)
	cfg.Scheme = "pactrain-ternary"
	cfg.AdaptCandidates = nil
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedRounds != 0 || len(rep.Static) != 0 || len(rep.Switches) != 0 {
		t.Fatalf("static run grew a ledger: %+v", rep)
	}
	if !strings.Contains(rep.Render(), "no controller decisions") {
		t.Fatalf("render should flag the empty ledger:\n%s", rep.Render())
	}
}

// TestAuditRejectsUnrecordedRun and the fabric guard: auditing needs a
// CommLog, and a config describing a different fabric than the log was
// recorded under must refuse rather than fabricate a ledger.
func TestAuditRejectsUnrecordedRun(t *testing.T) {
	cfg, res := trainedRun(t)
	if _, err := Replay(cfg, &core.Result{}, Options{}); err == nil {
		t.Fatal("unrecorded run audited without error")
	}
	wrong := cfg
	wrong.Topology = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: 100 * netsim.Mbps, LatencySec: 5e-3})
	wrong.Traces = nil
	if _, err := Replay(wrong, res, Options{}); err == nil {
		t.Fatal("wrong-fabric audit did not detect clock divergence")
	} else if !strings.Contains(err.Error(), "DESIGN.md §8") {
		t.Fatalf("divergence error should cite the replay contract: %v", err)
	}
}

// TestAuditSwitchLedger sanity-checks the switch bookkeeping on a run with
// regime flips: every observed switch holds at least one round, and paid
// switches are exactly those with positive quoted savings.
func TestAuditSwitchLedger(t *testing.T) {
	cfg, res := trainedRun(t)
	rep, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paid := 0
	for _, sw := range rep.Switches {
		if sw.RoundsHeld < 1 {
			t.Fatalf("switch held zero rounds: %+v", sw)
		}
		if sw.From == sw.To {
			t.Fatalf("self-switch recorded: %+v", sw)
		}
		if sw.Paid != (sw.SavedSec > 0) {
			t.Fatalf("paid flag disagrees with savings: %+v", sw)
		}
		if sw.Paid {
			paid++
		}
	}
	if paid != rep.SwitchesPaid {
		t.Fatalf("paid count %d != summary %d", paid, rep.SwitchesPaid)
	}
}

func TestCollectorDedupsByFingerprint(t *testing.T) {
	cfg, res := trainedRun(t)
	rep1, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Replay(cfg, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	if !c.Add(rep1) {
		t.Fatal("first add dropped")
	}
	if c.Add(rep2) {
		t.Fatal("fingerprint repeat kept")
	}
	if c.Add(nil) {
		t.Fatal("nil report kept")
	}
	if got := c.Reports(); len(got) != 1 || got[0] != rep1 {
		t.Fatalf("collector holds %v", got)
	}
	if !strings.Contains(Summary(c.Reports()), "counterfactual ledger") {
		t.Fatal("summary missing ledger table")
	}
	if !strings.Contains(Summary(nil), "no controller-driven runs") {
		t.Fatal("empty summary missing notice")
	}
}
