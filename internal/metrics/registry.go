package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is the typed successor of CounterSet: counters, gauges, and
// fixed-bucket histograms behind one mutex, rendered in the Prometheus text
// exposition format in declaration order so an endpoint's output is
// deterministic. Instruments are declared once and then written through the
// returned handles, which keeps hot paths map-lookup-free and makes the set
// of exported series a compile-time property of the caller.
//
// CounterSet stays for callers that only need lazily named counters; serve
// and the engine observability migrate here for gauges and histograms.
type Registry struct {
	mu    sync.Mutex
	order []string
	insts map[string]instrument
}

type instrument interface {
	render(b *strings.Builder, name string)
	help() string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{insts: make(map[string]instrument)}
}

func (r *Registry) register(name string, inst instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.insts[name]; ok {
		panic(fmt.Sprintf("metrics: instrument %q declared twice", name))
	}
	r.insts[name] = inst
	r.order = append(r.order, name)
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu   *sync.Mutex
	h    string
	v    float64
	kind string
}

// Counter declares a counter and returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{mu: &r.mu, h: help, kind: "counter"}
	r.register(name, c)
	return c
}

// Gauge declares a gauge (a value that can go down) and returns its handle.
// A Gauge is a *Counter whose exposition TYPE is "gauge" and whose Set is
// meaningful.
func (r *Registry) Gauge(name, help string) *Counter {
	c := &Counter{mu: &r.mu, h: help, kind: "gauge"}
	r.register(name, c)
	return c
}

// Add increments the value. Counters must only ever receive non-negative
// deltas; gauges may move either way.
func (c *Counter) Add(delta float64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Set assigns the value (gauges; also used to sync counters from an
// authoritative snapshot).
func (c *Counter) Set(v float64) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

// Value reads the current value.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *Counter) help() string { return c.h }

func (c *Counter) render(b *strings.Builder, name string) {
	fmt.Fprintf(b, "# TYPE %s %s\n", name, c.kind)
	fmt.Fprintf(b, "%s %s\n", name, formatValue(c.v))
}

// Histogram is a fixed-bucket distribution. Observations land in the first
// bucket whose upper bound is >= the value; the exposition is cumulative
// per the Prometheus convention (each le bucket counts observations <= its
// bound, closed by le="+Inf").
type Histogram struct {
	mu     *sync.Mutex
	h      string
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow (+Inf) bucket
	sum    float64
	total  uint64
}

// Histogram declares a histogram with the given upper bounds (must be
// strictly increasing and non-empty) and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not increasing: %v", name, bounds))
	}
	h := &Histogram{
		mu:     &r.mu,
		h:      help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) help() string { return h.h }

func (h *Histogram) render(b *strings.Builder, name string) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(h.sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.total)
}

// Info is a constant-1 gauge carrying identity as labels — the Prometheus
// convention for build/version metadata (*_info series). The labels are
// fixed at declaration; the value is always 1.
type Info struct {
	h      string
	series string // pre-rendered {k="v",...} suffix, keys sorted
}

// Info declares an info gauge with the given label set and returns its
// handle (the handle carries no operations — the instrument is constant).
func (r *Registry) Info(name, help string, labels map[string]string) *Info {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	inst := &Info{h: help, series: b.String()}
	r.register(name, inst)
	return inst
}

func (i *Info) help() string { return i.h }

func (i *Info) render(b *strings.Builder, name string) {
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	fmt.Fprintf(b, "%s{%s} 1\n", name, i.series)
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor — the standard shape for latency and age histograms whose
// interesting range spans orders of magnitude.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid exponential buckets (start=%g factor=%g n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Render emits every instrument in the Prometheus text format, in
// declaration order.
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		inst := r.insts[name]
		if help := inst.help(); help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		inst.render(&b, name)
	}
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
