package metrics

import (
	"math"
	"strings"
	"testing"
)

func curveFixture() *Curve {
	c := &Curve{}
	c.Add(Point{Iter: 10, Epoch: 0, SimTime: 1, Acc: 0.3, Loss: 2.0})
	c.Add(Point{Iter: 20, Epoch: 1, SimTime: 2, Acc: 0.6, Loss: 1.2})
	c.Add(Point{Iter: 30, Epoch: 2, SimTime: 3, Acc: 0.55, Loss: 1.1})
	c.Add(Point{Iter: 40, Epoch: 3, SimTime: 4, Acc: 0.8, Loss: 0.7})
	return c
}

func TestTTA(t *testing.T) {
	c := curveFixture()
	tta, ok := c.TTA(0.6)
	if !ok || tta != 2 {
		t.Fatalf("TTA(0.6) = %v,%v", tta, ok)
	}
	tta, ok = c.TTA(0.9)
	if ok || tta != 4 {
		t.Fatalf("unreached TTA should return end time: %v,%v", tta, ok)
	}
	empty := &Curve{}
	if tta, ok := empty.TTA(0.5); ok || !math.IsInf(tta, 1) {
		t.Fatalf("empty curve TTA = %v,%v", tta, ok)
	}
}

func TestIterTo(t *testing.T) {
	c := curveFixture()
	it, ok := c.IterTo(0.8)
	if !ok || it != 40 {
		t.Fatalf("IterTo = %v,%v", it, ok)
	}
	if _, ok := c.IterTo(0.99); ok {
		t.Fatal("IterTo beyond best must fail")
	}
}

func TestAccSummaries(t *testing.T) {
	c := curveFixture()
	if c.FinalAcc() != 0.8 || c.BestAcc() != 0.8 || c.EndTime() != 4 {
		t.Fatalf("summaries wrong: %v %v %v", c.FinalAcc(), c.BestAcc(), c.EndTime())
	}
	// Best can exceed final on a regressing curve.
	c.Add(Point{Iter: 50, SimTime: 5, Acc: 0.7})
	if c.BestAcc() != 0.8 || c.FinalAcc() != 0.7 {
		t.Fatal("best/final distinction lost")
	}
}

func TestRelativeAndSpeedup(t *testing.T) {
	if RelativeTTA(5, 10) != 0.5 {
		t.Fatal("RelativeTTA wrong")
	}
	if Speedup(5, 10) != 2 {
		t.Fatal("Speedup wrong")
	}
	if !math.IsInf(RelativeTTA(1, 0), 1) || !math.IsInf(Speedup(0, 1), 1) {
		t.Fatal("degenerate cases wrong")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "a", "long-header")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4", "overflow-cell-dropped")
	out := tb.String()
	if !strings.Contains(out, "My Table") || !strings.Contains(out, "long-header") {
		t.Fatalf("table render:\n%s", out)
	}
	if strings.Contains(out, "overflow-cell-dropped") {
		t.Fatal("overflow cell should be dropped")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0.05: "50ms",
		2.5:  "2.5s",
		90:   "1.5m",
		7200: "2.0h",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Fatalf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatSeconds(math.Inf(1)) != "∞" {
		t.Fatal("inf formatting")
	}
	if FormatBytes(2048) != "2.00KiB" {
		t.Fatalf("FormatBytes wrong: %s", FormatBytes(2048))
	}
	if FormatBytes(3<<20) != "3.00MiB" {
		t.Fatal("MiB formatting")
	}
}

func TestCSV(t *testing.T) {
	c := curveFixture()
	out := c.CSV()
	if !strings.HasPrefix(out, "iter,epoch,sim_time,acc,loss\n") {
		t.Fatalf("csv header:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Fatal("csv row count")
	}
}
