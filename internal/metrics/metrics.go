// Package metrics collects training trajectories and renders the
// tables/series the PacTrain paper reports: accuracy-vs-time curves,
// time-to-accuracy (TTA), relative TTA normalized to the all-reduce
// baseline, and throughput summaries.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Point is one evaluation sample along a training run.
type Point struct {
	Iter    int
	Epoch   int
	SimTime float64 // simulated seconds since training start
	Acc     float64 // test accuracy in [0,1]
	Loss    float64 // training loss at the time of evaluation
}

// Curve is an accuracy trajectory ordered by time.
type Curve struct {
	Points []Point
}

// Add appends a point.
func (c *Curve) Add(p Point) { c.Points = append(c.Points, p) }

// TTA returns the simulated time at which accuracy first reaches target.
// ok is false if the run never reached it, in which case the returned time
// is the end-of-run time (a lower bound on the true TTA).
func (c *Curve) TTA(target float64) (t float64, ok bool) {
	for _, p := range c.Points {
		if p.Acc >= target {
			return p.SimTime, true
		}
	}
	if n := len(c.Points); n > 0 {
		return c.Points[n-1].SimTime, false
	}
	return math.Inf(1), false
}

// IterTo returns the iteration at which accuracy first reaches target.
func (c *Curve) IterTo(target float64) (int, bool) {
	for _, p := range c.Points {
		if p.Acc >= target {
			return p.Iter, true
		}
	}
	return 0, false
}

// FinalAcc returns the accuracy of the last point (0 if empty).
func (c *Curve) FinalAcc() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Acc
}

// BestAcc returns the maximum accuracy along the curve.
func (c *Curve) BestAcc() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Acc > best {
			best = p.Acc
		}
	}
	return best
}

// EndTime returns the simulated time of the last point.
func (c *Curve) EndTime() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].SimTime
}

// RelativeTTA returns tta/baselineTTA, the normalization used by Fig. 3
// (lower is better; the all-reduce baseline is 1.0).
func RelativeTTA(tta, baselineTTA float64) float64 {
	if baselineTTA == 0 {
		return math.Inf(1)
	}
	return tta / baselineTTA
}

// Speedup returns baselineTTA/tta (higher is better), the form quoted in
// the paper's abstract ("1.25–8.72×").
func Speedup(tta, baselineTTA float64) float64 {
	if tta == 0 {
		return math.Inf(1)
	}
	return baselineTTA / tta
}

// Table is a simple column-aligned table renderer for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable constructs a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table in GitHub-flavored markdown.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatSeconds renders a duration in the most readable unit.
func FormatSeconds(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "∞"
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	case s >= 1:
		return fmt.Sprintf("%.1fs", s)
	default:
		return fmt.Sprintf("%.0fms", s*1000)
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// CSV renders the curve as "iter,epoch,sim_time,acc,loss" lines for
// external plotting.
func (c *Curve) CSV() string {
	var b strings.Builder
	b.WriteString("iter,epoch,sim_time,acc,loss\n")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%d,%d,%.6f,%.4f,%.4f\n", p.Iter, p.Epoch, p.SimTime, p.Acc, p.Loss)
	}
	return b.String()
}
