package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetRendersInDeclarationOrder(t *testing.T) {
	t.Parallel()
	s := NewCounterSet()
	s.Declare("b_total", "second metric")
	s.DeclareGauge("a_current", "first gauge")
	s.Add("b_total", 2)
	s.Set("a_current", 1.5)

	out := s.Render()
	bi := strings.Index(out, "b_total 2")
	ai := strings.Index(out, "a_current 1.5")
	if bi < 0 || ai < 0 {
		t.Fatalf("missing metric lines:\n%s", out)
	}
	if bi > ai {
		t.Fatalf("declaration order not preserved:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE b_total counter") ||
		!strings.Contains(out, "# TYPE a_current gauge") ||
		!strings.Contains(out, "# HELP b_total second metric") {
		t.Fatalf("missing TYPE/HELP lines:\n%s", out)
	}
}

func TestCounterSetLazyRegistrationAndValue(t *testing.T) {
	t.Parallel()
	s := NewCounterSet()
	s.Add("lazy_total", 3)
	if got := s.Value("lazy_total"); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
	if got := s.Value("unknown"); got != 0 {
		t.Fatalf("unknown Value = %v, want 0", got)
	}
	if !strings.Contains(s.Render(), "lazy_total 3") {
		t.Fatalf("lazily registered metric not rendered:\n%s", s.Render())
	}
}

func TestCounterSetConcurrentAdds(t *testing.T) {
	t.Parallel()
	s := NewCounterSet()
	s.Declare("n_total", "contended counter")
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				s.Add("n_total", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Value("n_total"); got != 8000 {
		t.Fatalf("n_total = %v, want 8000", got)
	}
}
