package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRenderOrderAndTypes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs accepted")
	g := r.Gauge("queue_depth", "jobs waiting")
	h := r.Histogram("wall_seconds", "job wall latency", []float64{0.1, 1, 10})

	c.Add(3)
	g.Set(2)
	g.Add(-1)
	h.Observe(0.05)
	h.Observe(1) // lands on the le="1" bound (le is inclusive)
	h.Observe(100)

	got := r.Render()
	want := strings.Join([]string{
		"# HELP jobs_total jobs accepted",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# HELP queue_depth jobs waiting",
		"# TYPE queue_depth gauge",
		"queue_depth 1",
		"# HELP wall_seconds job wall latency",
		"# TYPE wall_seconds histogram",
		`wall_seconds_bucket{le="0.1"} 1`,
		`wall_seconds_bucket{le="1"} 2`,
		`wall_seconds_bucket{le="10"} 2`,
		`wall_seconds_bucket{le="+Inf"} 3`,
		"wall_seconds_sum 101.05",
		"wall_seconds_count 3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if v := c.Value(); v != 3 {
		t.Errorf("counter value = %v, want 3", v)
	}
	if h.Count() != 3 || h.Sum() != 101.05 {
		t.Errorf("histogram count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestRegistryDoubleDeclarePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("second declaration of the same name did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 3) },
		func() { ExponentialBuckets(1, 1, 3) },
		func() { ExponentialBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bucket spec did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestRegistryConcurrency exercises the shared-mutex instruments under the
// race detector.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 100 {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(float64(i % 3))
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Errorf("counter = %v, want 800", c.Value())
	}
	if h.Count() != 800 {
		t.Errorf("histogram count = %d, want 800", h.Count())
	}
}

// TestInfoInstrument pins the info-gauge exposition: constant 1, labels
// escaped and sorted by key, rendered in declaration order with the other
// instruments.
func TestInfoInstrument(t *testing.T) {
	r := NewRegistry()
	r.Info("build_info", "binary identity", map[string]string{
		"version":    "v1.2.3",
		"go_version": "go1.24",
		"odd":        `quote " and \ slash`,
	})
	r.Counter("after", "declared second")
	out := r.Render()
	want := "# HELP build_info binary identity\n" +
		"# TYPE build_info gauge\n" +
		"build_info{go_version=\"go1.24\",odd=\"quote \\\" and \\\\ slash\",version=\"v1.2.3\"} 1\n"
	if !strings.HasPrefix(out, want) {
		t.Fatalf("info exposition:\n%s\nwant prefix:\n%s", out, want)
	}
	if !strings.Contains(out, "# TYPE after counter\n") {
		t.Fatal("instrument declared after Info missing from render")
	}
}

// TestBuildInfoLabels pins the shape contract: every series label is
// present and non-empty regardless of how the binary was built.
func TestBuildInfoLabels(t *testing.T) {
	labels := BuildInfoLabels()
	for _, k := range []string{"version", "revision", "go_version"} {
		if labels[k] == "" {
			t.Fatalf("BuildInfoLabels missing %q: %v", k, labels)
		}
	}
	if !strings.HasPrefix(labels["go_version"], "go") {
		t.Fatalf("go_version %q", labels["go_version"])
	}
}
