package metrics

import (
	"runtime"
	"runtime/debug"
)

// BuildInfoLabels returns the binary's identity — module version, VCS
// revision when stamped, and Go toolchain — as a label map for a build-info
// gauge (Registry.Info) and for JSON stats views. Fields the build did not
// stamp come back as "unknown" so the series shape is stable across build
// modes (go build, go test, go run).
func BuildInfoLabels() map[string]string {
	labels := map[string]string{
		"version":    "unknown",
		"revision":   "unknown",
		"go_version": runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return labels
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		labels["version"] = v
	}
	rev, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev != "" {
		if modified {
			rev += "-dirty"
		}
		labels["revision"] = rev
	}
	return labels
}
