package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// CounterSet is a small concurrency-safe metric registry that renders in
// the Prometheus text exposition format. Declare fixes a metric's name,
// type, and help line up front; Add and Set move values afterwards.
// Render lists metrics in declaration order, so an exposition endpoint's
// output is deterministic.
type CounterSet struct {
	mu    sync.Mutex
	order []string
	m     map[string]*metric
}

type metric struct {
	help  string
	gauge bool
	value float64
}

// NewCounterSet builds an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]*metric)}
}

// Declare registers a monotonically increasing counter. Re-declaring a
// name updates its help text only.
func (s *CounterSet) Declare(name, help string) {
	s.declare(name, help, false)
}

// DeclareGauge registers a gauge (a value that can go down).
func (s *CounterSet) DeclareGauge(name, help string) {
	s.declare(name, help, true)
}

func (s *CounterSet) declare(name, help string, gauge bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.m[name]; ok {
		m.help = help
		return
	}
	s.m[name] = &metric{help: help, gauge: gauge}
	s.order = append(s.order, name)
}

// Add increments a metric; an undeclared name is registered as a counter.
func (s *CounterSet) Add(name string, delta float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.get(name).value += delta
}

// Set assigns a metric's value; an undeclared name is registered as a
// counter.
func (s *CounterSet) Set(name string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.get(name).value = v
}

// get fetches or lazily registers a metric; callers hold s.mu.
func (s *CounterSet) get(name string) *metric {
	if m, ok := s.m[name]; ok {
		return m
	}
	m := &metric{}
	s.m[name] = m
	s.order = append(s.order, name)
	return m
}

// Value reads a metric (0 for an unknown name).
func (s *CounterSet) Value(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.m[name]; ok {
		return m.value
	}
	return 0
}

// Render emits the registry in the Prometheus text format, metrics in
// declaration order.
func (s *CounterSet) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, name := range s.order {
		m := s.m[name]
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, m.help)
		}
		kind := "counter"
		if m.gauge {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		fmt.Fprintf(&b, "%s %s\n", name, strconv.FormatFloat(m.value, 'g', -1, 64))
	}
	return b.String()
}
