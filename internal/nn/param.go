// Package nn implements the neural-network substrate of the PacTrain
// reproduction: layers with analytic forward/backward passes, losses, the
// SGD optimizer, and the model zoo (VGG-lite, ResNet-lite, ViT-lite plus the
// communication profiles of the paper's full-size models).
//
// The design mirrors the parts of PyTorch that PacTrain interacts with:
// parameters carry stable registration names and a registration order, which
// the DDP layer in internal/ddp uses to build reverse-order gradient buckets
// — the exact abstraction whose opacity motivates the paper's Mask Tracker.
package nn

import (
	"fmt"

	"pactrain/internal/tensor"
)

// Parameter is a trainable tensor with its gradient accumulator. Name is
// stable across replicas built from the same seed, so distributed workers
// can refer to parameters consistently.
type Parameter struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParameter wraps a weight tensor in a Parameter with a zeroed gradient.
func NewParameter(name string, w *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, W: w, Grad: tensor.New(w.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// NumElements returns the number of scalar weights in the parameter.
func (p *Parameter) NumElements() int { return p.W.Len() }

// Layer is the building block of models. Forward caches whatever it needs so
// that a subsequent Backward can produce exact analytic gradients; Backward
// accumulates parameter gradients and returns the gradient with respect to
// the layer input. A layer is used by exactly one goroutine (its worker), so
// no internal locking is needed.
type Layer interface {
	// Forward computes the layer output. train selects training behaviour
	// (dropout active, batch-norm batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// dL/d(param) into each parameter's Grad.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters in registration
	// order; layers without parameters return nil.
	Params() []*Parameter
}

// Sequential chains layers, feeding each output into the next layer.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Parameter {
	var ps []*Parameter
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Model is a named network with a parameter registry. Parameters are listed
// in registration (construction) order, matching the order a framework like
// PyTorch would register them in, which in turn defines DDP bucket layout.
type Model struct {
	Name string
	Root Layer

	params []*Parameter
}

// NewModel wraps a root layer. Parameter names must already be assigned.
func NewModel(name string, root Layer) *Model {
	m := &Model{Name: name, Root: root, params: root.Params()}
	seen := make(map[string]bool, len(m.params))
	for _, p := range m.params {
		if p.Name == "" {
			panic("nn: parameter registered without a name")
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("nn: duplicate parameter name %q", p.Name))
		}
		seen[p.Name] = true
	}
	return m
}

// Forward runs the network.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Root.Forward(x, train)
}

// Backward back-propagates from the loss gradient.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return m.Root.Backward(grad)
}

// Params returns all parameters in registration order.
func (m *Model) Params() []*Parameter { return m.params }

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.params {
		p.ZeroGrad()
	}
}

// NumParameters returns the total scalar parameter count.
func (m *Model) NumParameters() int {
	n := 0
	for _, p := range m.params {
		n += p.NumElements()
	}
	return n
}

// CopyWeightsFrom copies all weights from src (matched by position). It
// panics if the models have different parameter layouts. Workers use this to
// start from identical replicas.
func (m *Model) CopyWeightsFrom(src *Model) {
	if len(m.params) != len(src.params) {
		panic("nn: CopyWeightsFrom parameter count mismatch")
	}
	for i, p := range m.params {
		p.W.CopyFrom(src.params[i].W)
	}
}
