package nn

import (
	"math"
	"testing"

	"pactrain/internal/tensor"
)

// lossOf runs a forward pass and returns a scalar pseudo-loss: the dot
// product of the output with a fixed random cotangent. Its analytic input
// gradient is Backward(cotangent), so comparing against finite differences
// validates the full backward pass.
func lossOf(l Layer, x *tensor.Tensor, cot *tensor.Tensor) float64 {
	out := l.Forward(x, true)
	return tensor.Dot(out, cot)
}

// gradCheckInput verifies dL/dx by central finite differences.
func gradCheckInput(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	r := tensor.NewRNG(99)
	out := l.Forward(x.Clone(), true)
	cot := tensor.Randn(r, 1, out.Shape()...)
	// Analytic gradient.
	l.Forward(x.Clone(), true)
	dx := l.Backward(cot)
	const eps = 1e-3
	xd := x.Data()
	checked := 0
	stride := len(xd)/25 + 1
	for i := 0; i < len(xd); i += stride {
		orig := xd[i]
		xd[i] = orig + eps
		lp := lossOf(l, x.Clone(), cot)
		xd[i] = orig - eps
		lm := lossOf(l, x.Clone(), cot)
		xd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dx.Data()[i])
		if diff := math.Abs(numeric - analytic); diff > tol*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("gradCheckInput checked nothing")
	}
}

// gradCheckParams verifies dL/dθ for every parameter by finite differences.
func gradCheckParams(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	r := tensor.NewRNG(77)
	out := l.Forward(x.Clone(), true)
	cot := tensor.Randn(r, 1, out.Shape()...)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.Forward(x.Clone(), true)
	l.Backward(cot)
	const eps = 1e-3
	for _, p := range l.Params() {
		wd := p.W.Data()
		stride := len(wd)/15 + 1
		for i := 0; i < len(wd); i += stride {
			orig := wd[i]
			wd[i] = orig + eps
			lp := lossOf(l, x.Clone(), cot)
			wd[i] = orig - eps
			lm := lossOf(l, x.Clone(), cot)
			wd[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data()[i])
			if diff := math.Abs(numeric - analytic); diff > tol*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewLinear("fc", r, 6, 4)
	x := tensor.Randn(r, 1, 3, 6)
	gradCheckInput(t, l, x, 0.02)
	gradCheckParams(t, l, x, 0.02)
}

func TestReLUGradients(t *testing.T) {
	r := tensor.NewRNG(2)
	l := NewReLU()
	// Keep values away from the kink at 0.
	x := tensor.Randn(r, 1, 4, 5)
	for i, v := range x.Data() {
		if math.Abs(float64(v)) < 0.05 {
			x.Data()[i] = 0.5
		}
	}
	gradCheckInput(t, l, x, 0.02)
}

func TestGELUGradients(t *testing.T) {
	r := tensor.NewRNG(3)
	l := NewGELU()
	x := tensor.Randn(r, 1, 4, 5)
	gradCheckInput(t, l, x, 0.02)
}

func TestConv2DGradients(t *testing.T) {
	r := tensor.NewRNG(4)
	l := NewConv2D("conv", r, 2, 3, 3, 1, 1)
	x := tensor.Randn(r, 1, 2, 2, 5, 5)
	gradCheckInput(t, l, x, 0.03)
	gradCheckParams(t, l, x, 0.03)
}

func TestConv2DStrideGradients(t *testing.T) {
	r := tensor.NewRNG(5)
	l := NewConv2D("conv", r, 2, 4, 3, 2, 1)
	x := tensor.Randn(r, 1, 2, 2, 6, 6)
	gradCheckInput(t, l, x, 0.03)
	gradCheckParams(t, l, x, 0.03)
}

func TestMaxPoolGradients(t *testing.T) {
	r := tensor.NewRNG(6)
	l := NewMaxPool2D(2, 2)
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	gradCheckInput(t, l, x, 0.02)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := tensor.NewRNG(7)
	l := NewGlobalAvgPool2D()
	x := tensor.Randn(r, 1, 2, 3, 4, 4)
	gradCheckInput(t, l, x, 0.02)
}

func TestBatchNormGradients(t *testing.T) {
	r := tensor.NewRNG(8)
	l := NewBatchNorm2D("bn", 3)
	// Scale gamma/beta away from identity to exercise all terms.
	l.Gamma.W.Data()[0] = 1.5
	l.Beta.W.Data()[1] = 0.3
	x := tensor.Randn(r, 1, 4, 3, 3, 3)
	gradCheckInput(t, l, x, 0.05)
	gradCheckParams(t, l, x, 0.05)
}

func TestLayerNormGradients(t *testing.T) {
	r := tensor.NewRNG(9)
	l := NewLayerNorm("ln", 8)
	l.Gamma.W.Data()[2] = 1.7
	x := tensor.Randn(r, 1, 3, 4, 8)
	gradCheckInput(t, l, x, 0.05)
	gradCheckParams(t, l, x, 0.05)
}

func TestResidualGradients(t *testing.T) {
	r := tensor.NewRNG(10)
	body := NewSequential(
		NewConv2D("c1", r, 2, 2, 3, 1, 1),
		NewBatchNorm2D("b1", 2),
	)
	l := NewResidual(body, nil)
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	gradCheckInput(t, l, x, 0.05)
	gradCheckParams(t, l, x, 0.05)
}

func TestResidualDownsampleGradients(t *testing.T) {
	r := tensor.NewRNG(11)
	l := basicBlock("blk", r, 2, 4, 2)
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	gradCheckInput(t, l, x, 0.05)
	gradCheckParams(t, l, x, 0.06)
}

func TestAttentionGradients(t *testing.T) {
	r := tensor.NewRNG(12)
	l := NewMultiHeadAttention("attn", r, 8, 2)
	x := tensor.Randn(r, 0.5, 2, 3, 8)
	gradCheckInput(t, l, x, 0.05)
	gradCheckParams(t, l, x, 0.05)
}

func TestPatchEmbedGradients(t *testing.T) {
	r := tensor.NewRNG(13)
	l := NewPatchEmbed("embed", r, 2, 4, 4, 2, 6)
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	gradCheckInput(t, l, x, 0.03)
	gradCheckParams(t, l, x, 0.03)
}

func TestTransformerBlockGradients(t *testing.T) {
	r := tensor.NewRNG(14)
	l := NewTransformerBlock("blk", r, 8, 2, 2)
	x := tensor.Randn(r, 0.5, 2, 3, 8)
	gradCheckInput(t, l, x, 0.06)
	gradCheckParams(t, l, x, 0.06)
}

func TestTokenPoolGradients(t *testing.T) {
	r := tensor.NewRNG(15)
	l := NewTokenPool()
	x := tensor.Randn(r, 1, 2, 4, 6)
	gradCheckInput(t, l, x, 0.02)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	r := tensor.NewRNG(16)
	logits := tensor.Randn(r, 1, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		ld[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		ld[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(grad.Data()[i])
		if math.Abs(numeric-analytic) > 0.01*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("loss grad[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	r := tensor.NewRNG(17)
	l := NewDropout(0.5, tensor.NewRNG(5))
	x := tensor.Randn(r, 1, 10, 10)
	evalOut := l.Forward(x, false)
	if evalOut != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	trainOut := l.Forward(x, true)
	zeros := 0
	for _, v := range trainOut.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Fatalf("dropout 0.5 zeroed %d/100, expected ≈50", zeros)
	}
	// Backward must zero exactly the dropped coordinates.
	g := tensor.Ones(10, 10)
	back := l.Backward(g)
	for i, v := range trainOut.Data() {
		if (v == 0) != (back.Data()[i] == 0) {
			// A surviving activation could be 0 only if the input was 0,
			// which Randn makes measure-zero.
			t.Fatalf("dropout backward mask mismatch at %d", i)
		}
	}
}
