package nn

import (
	"math"

	"pactrain/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, matching the optimizer used for the paper's CIFAR
// training runs.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[string]*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[string]*tensor.Tensor)}
}

// Step applies one update to every parameter using its accumulated gradient.
// Gradients are not cleared; call Model.ZeroGrad before the next backward.
func (s *SGD) Step(params []*Parameter) {
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for _, p := range params {
		g := p.Grad.Data()
		w := p.W.Data()
		if wd != 0 {
			for i := range g {
				g[i] += wd * w[i]
			}
		}
		if mom != 0 {
			v := s.velocity[p.Name]
			if v == nil {
				v = tensor.New(p.W.Shape()...)
				s.velocity[p.Name] = v
			}
			vd := v.Data()
			for i := range vd {
				vd[i] = mom*vd[i] + g[i]
				w[i] -= lr * vd[i]
			}
		} else {
			for i := range w {
				w[i] -= lr * g[i]
			}
		}
	}
}

// Velocity returns the momentum buffer for a parameter name, or nil. The
// pruning layer uses it to zero stale momentum on masked coordinates.
func (s *SGD) Velocity(name string) *tensor.Tensor { return s.velocity[name] }

// CosineLR returns the cosine-annealed learning rate for the given epoch out
// of total epochs, decaying from base to floor.
func CosineLR(base, floor float64, epoch, total int) float64 {
	if total <= 1 {
		return base
	}
	t := float64(epoch) / float64(total-1)
	if t > 1 {
		t = 1
	}
	return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*t))
}

// StepLR returns base decayed by gamma at each milestone epoch.
func StepLR(base float64, epoch int, milestones []int, gamma float64) float64 {
	lr := base
	for _, m := range milestones {
		if epoch >= m {
			lr *= gamma
		}
	}
	return lr
}
