package nn

import (
	"math"

	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// BatchNorm2D normalizes each channel of a (N, C, H, W) tensor over the
// batch and spatial dimensions, with learnable per-channel scale (gamma) and
// shift (beta). Running statistics are tracked for evaluation mode.
type BatchNorm2D struct {
	Gamma *Parameter
	Beta  *Parameter

	Eps      float64
	Momentum float64

	runningMean []float64
	runningVar  []float64

	// Caches for backward.
	lastXHat   *tensor.Tensor
	lastInvStd []float64
	lastShape  []int

	out *tensor.Tensor
	dx  *tensor.Tensor
}

// NewBatchNorm2D constructs a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		Gamma:       NewParameter(name+".weight", tensor.Ones(c)),
		Beta:        NewParameter(name+".bias", tensor.New(c)),
		Eps:         1e-5,
		Momentum:    0.1,
		runningMean: make([]float64, c),
		runningVar:  make([]float64, c),
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward implements Layer. Channels are fully independent (statistics,
// running averages, and output planes are all per-channel), so the loop
// chunks over channels with bit-identical results at any par budget.
func (l *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	area := h * w
	l.out = ensure4(l.out, n, c, h, w)
	l.lastXHat = ensureLike(l.lastXHat, x)
	if cap(l.lastInvStd) < c {
		l.lastInvStd = make([]float64, c)
	}
	l.lastInvStd = l.lastInvStd[:c]

	work := 2 * n * c * area
	if par.PlanChunks(c, work) == 1 {
		l.forwardChannels(x, train, n, area, 0, c)
	} else {
		par.ForChunksWork(c, work, func(_, lo, hi int) {
			l.forwardChannels(x, train, n, area, lo, hi)
		})
	}
	return l.out
}

// forwardChannels normalizes channels [lo,hi).
func (l *BatchNorm2D) forwardChannels(x *tensor.Tensor, train bool, n, area, lo, hi int) {
	c := l.lastShape[1]
	cnt := float64(n * area)
	xd, od, hd := x.Data(), l.out.Data(), l.lastXHat.Data()
	gd, bd := l.Gamma.W.Data(), l.Beta.W.Data()
	for ch := lo; ch < hi; ch++ {
		var mean, variance float64
		if train {
			var s, sq float64
			for img := 0; img < n; img++ {
				plane := xd[(img*c+ch)*area : (img*c+ch+1)*area]
				for _, v := range plane {
					fv := float64(v)
					s += fv
					sq += fv * fv
				}
			}
			mean = s / cnt
			variance = sq/cnt - mean*mean
			if variance < 0 {
				variance = 0
			}
			l.runningMean[ch] = (1-l.Momentum)*l.runningMean[ch] + l.Momentum*mean
			l.runningVar[ch] = (1-l.Momentum)*l.runningVar[ch] + l.Momentum*variance
		} else {
			mean = l.runningMean[ch]
			variance = l.runningVar[ch]
		}
		invStd := 1 / math.Sqrt(variance+l.Eps)
		l.lastInvStd[ch] = invStd
		g, b := gd[ch], bd[ch]
		for img := 0; img < n; img++ {
			off := (img*c + ch) * area
			for i := 0; i < area; i++ {
				xh := float32((float64(xd[off+i]) - mean) * invStd)
				hd[off+i] = xh
				od[off+i] = g*xh + b
			}
		}
	}
}

// Backward implements Layer. Uses the standard batch-norm gradient:
//
//	dx = (γ·invStd/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
//
// Like Forward, the loop chunks over channels: each channel's gamma/beta
// gradient is a single += and its dx plane is disjoint from every other
// channel's, so chunking is bit-exact.
func (l *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := l.lastShape[0], l.lastShape[1]
	area := l.lastShape[2] * l.lastShape[3]
	l.dx = ensure4(l.dx, l.lastShape[0], l.lastShape[1], l.lastShape[2], l.lastShape[3])

	work := 2 * n * c * area
	if par.PlanChunks(c, work) == 1 {
		l.backwardChannels(grad, n, area, 0, c)
	} else {
		par.ForChunksWork(c, work, func(_, lo, hi int) {
			l.backwardChannels(grad, n, area, lo, hi)
		})
	}
	return l.dx
}

// backwardChannels computes gradients for channels [lo,hi).
func (l *BatchNorm2D) backwardChannels(grad *tensor.Tensor, n, area, lo, hi int) {
	c := l.lastShape[1]
	m := float64(n * area)
	gd := grad.Data()
	hd := l.lastXHat.Data()
	dd := l.dx.Data()
	gg, gb := l.Gamma.Grad.Data(), l.Beta.Grad.Data()
	gw := l.Gamma.W.Data()
	for ch := lo; ch < hi; ch++ {
		var sumDy, sumDyXhat float64
		for img := 0; img < n; img++ {
			off := (img*c + ch) * area
			for i := 0; i < area; i++ {
				dy := float64(gd[off+i])
				sumDy += dy
				sumDyXhat += dy * float64(hd[off+i])
			}
		}
		gg[ch] += float32(sumDyXhat)
		gb[ch] += float32(sumDy)
		scale := float64(gw[ch]) * l.lastInvStd[ch] / m
		for img := 0; img < n; img++ {
			off := (img*c + ch) * area
			for i := 0; i < area; i++ {
				dy := float64(gd[off+i])
				xh := float64(hd[off+i])
				dd[off+i] = float32(scale * (m*dy - sumDy - xh*sumDyXhat))
			}
		}
	}
}

// Params implements Layer.
func (l *BatchNorm2D) Params() []*Parameter { return []*Parameter{l.Gamma, l.Beta} }

// LayerNorm normalizes over the last dimension of a (..., D) tensor with
// learnable scale and shift, as used in transformer blocks.
type LayerNorm struct {
	Gamma *Parameter
	Beta  *Parameter
	Eps   float64

	lastXHat   *tensor.Tensor
	lastInvStd []float64
	lastShape  []int

	out *tensor.Tensor
	dx  *tensor.Tensor
}

// NewLayerNorm constructs a layer norm over dimension d.
func NewLayerNorm(name string, d int) *LayerNorm {
	return &LayerNorm{
		Gamma: NewParameter(name+".weight", tensor.Ones(d)),
		Beta:  NewParameter(name+".bias", tensor.New(d)),
		Eps:   1e-5,
	}
}

// Forward implements Layer. Rows are independent (gamma/beta are read-only
// here), so the loop chunks over rows bit-exactly.
func (l *LayerNorm) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	d := x.Dim(x.Rank() - 1)
	rows := x.Len() / d
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	l.out = ensureLike(l.out, x)
	l.lastXHat = ensureLike(l.lastXHat, x)
	if cap(l.lastInvStd) < rows {
		l.lastInvStd = make([]float64, rows)
	}
	l.lastInvStd = l.lastInvStd[:rows]

	work := x.Len()
	if par.PlanChunks(rows, work) == 1 {
		l.forwardRows(x, d, 0, rows)
	} else {
		par.ForChunksWork(rows, work, func(_, lo, hi int) {
			l.forwardRows(x, d, lo, hi)
		})
	}
	return l.out
}

// forwardRows normalizes rows [lo,hi).
func (l *LayerNorm) forwardRows(x *tensor.Tensor, d, lo, hi int) {
	xd, od, hd := x.Data(), l.out.Data(), l.lastXHat.Data()
	gd, bd := l.Gamma.W.Data(), l.Beta.W.Data()
	for r := lo; r < hi; r++ {
		row := xd[r*d : (r+1)*d]
		var s, sq float64
		for _, v := range row {
			fv := float64(v)
			s += fv
			sq += fv * fv
		}
		mean := s / float64(d)
		variance := sq/float64(d) - mean*mean
		if variance < 0 {
			variance = 0
		}
		invStd := 1 / math.Sqrt(variance+l.Eps)
		l.lastInvStd[r] = invStd
		for i, v := range row {
			xh := float32((float64(v) - mean) * invStd)
			hd[r*d+i] = xh
			od[r*d+i] = gd[i]*xh + bd[i]
		}
	}
}

// Backward implements Layer. The dx rows are independent and chunk over the
// par budget; the gamma/beta gradients accumulate across rows, so they are
// folded in a separate serial pass that visits rows in ascending order —
// exactly the scalar accumulation sequence, keeping results bit-identical at
// any budget.
func (l *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := l.lastShape[len(l.lastShape)-1]
	rows := 1
	for _, s := range l.lastShape[:len(l.lastShape)-1] {
		rows *= s
	}
	l.dx = ensureLike(l.dx, grad)

	work := rows * d
	if par.PlanChunks(rows, work) == 1 {
		l.backwardRows(grad, d, 0, rows)
	} else {
		par.ForChunksWork(rows, work, func(_, lo, hi int) {
			l.backwardRows(grad, d, lo, hi)
		})
	}

	// Serial fold: gamma/beta gradients in ascending row order.
	gd := grad.Data()
	hd := l.lastXHat.Data()
	gg, gb := l.Gamma.Grad.Data(), l.Beta.Grad.Data()
	for r := 0; r < rows; r++ {
		for i := 0; i < d; i++ {
			dy := float64(gd[r*d+i])
			gg[i] += float32(dy * float64(hd[r*d+i]))
			gb[i] += float32(dy)
		}
	}
	return l.dx
}

// backwardRows computes dx rows [lo,hi).
func (l *LayerNorm) backwardRows(grad *tensor.Tensor, d, lo, hi int) {
	gd := grad.Data()
	hd := l.lastXHat.Data()
	dd := l.dx.Data()
	gw := l.Gamma.W.Data()
	df := float64(d)
	for r := lo; r < hi; r++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < d; i++ {
			dy := float64(gd[r*d+i]) * float64(gw[i])
			sumDy += dy
			sumDyXhat += dy * float64(hd[r*d+i])
		}
		for i := 0; i < d; i++ {
			dy := float64(gd[r*d+i])
			dyg := dy * float64(gw[i])
			xh := float64(hd[r*d+i])
			dd[r*d+i] = float32(l.lastInvStd[r] / df * (df*dyg - sumDy - xh*sumDyXhat))
		}
	}
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Parameter { return []*Parameter{l.Gamma, l.Beta} }
