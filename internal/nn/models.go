package nn

import (
	"fmt"

	"pactrain/internal/tensor"
)

// The evaluation in the paper trains VGG19, ResNet18, ResNet152 and
// ViT-Base-16 on CIFAR-10/100. Training models of that size in a pure-Go
// substrate is infeasible, so the zoo is two-tier (see DESIGN.md §1):
//
//   - Lite twins: real trainable networks with the same architectural shape
//     (VGG-style plain conv stacks, ResNet basic-block residual stages, a
//     ViT with patch embedding + transformer blocks). Convergence behaviour
//     — epochs to target accuracy under each compression scheme, pruning
//     accuracy cliffs — is measured on these.
//   - CommProfile: the full model's parameter count and per-sample FLOPs,
//     used by the DDP time model to cost computation and communication.

// CommProfile describes the communication-relevant size of a full model from
// the paper's workload set.
type CommProfile struct {
	Name string
	// Params is the number of scalar parameters (gradient elements).
	Params int64
	// FLOPsPerSample is the forward-pass FLOP count for one sample at the
	// training resolution (224×224, CIFAR upsampled, as required by
	// ViT-Base/16's patch size). Backward is costed at 2× forward.
	FLOPsPerSample int64
}

// GradBytes returns the fp32 gradient volume in bytes.
func (p CommProfile) GradBytes() int64 { return p.Params * 4 }

// Published profiles for the paper's four workloads. Parameter counts are
// the torchvision/timm ImageNet-head values; the ≤0.1% difference from a
// 10/100-class head is irrelevant to communication volume.
var (
	ProfileVGG19     = CommProfile{Name: "VGG19", Params: 143_667_240, FLOPsPerSample: 19_632_000_000}
	ProfileResNet18  = CommProfile{Name: "ResNet18", Params: 11_689_512, FLOPsPerSample: 1_824_000_000}
	ProfileResNet152 = CommProfile{Name: "ResNet152", Params: 60_192_808, FLOPsPerSample: 11_580_000_000}
	ProfileViTBase16 = CommProfile{Name: "ViT-Base-16", Params: 86_567_656, FLOPsPerSample: 17_580_000_000}
)

// ProfileByName returns the communication profile for a paper workload name.
func ProfileByName(name string) (CommProfile, error) {
	switch name {
	case "VGG19", "vgg19":
		return ProfileVGG19, nil
	case "ResNet18", "resnet18":
		return ProfileResNet18, nil
	case "ResNet152", "resnet152":
		return ProfileResNet152, nil
	case "ViT-Base-16", "vit-base-16", "vit", "ViT":
		return ProfileViTBase16, nil
	}
	return CommProfile{}, fmt.Errorf("nn: unknown model profile %q", name)
}

// Profiles lists all paper workloads in evaluation order.
func Profiles() []CommProfile {
	return []CommProfile{ProfileVGG19, ProfileResNet18, ProfileResNet152, ProfileViTBase16}
}

// LiteConfig selects the trainable twin geometry. Defaults target
// 16×16-pixel, 3-channel synthetic images.
type LiteConfig struct {
	InChannels int
	ImageSize  int
	Classes    int
	Width      int // base channel width
	Seed       uint64
}

// DefaultLiteConfig returns the geometry used across the experiment harness.
func DefaultLiteConfig(classes int, seed uint64) LiteConfig {
	return LiteConfig{InChannels: 3, ImageSize: 16, Classes: classes, Width: 8, Seed: seed}
}

// NewMLP builds a small multi-layer perceptron over flattened images; it is
// the cheapest trainable model and is used by unit tests and the
// quickstart example.
func NewMLP(cfg LiteConfig, hidden int) *Model {
	r := tensor.NewRNG(cfg.Seed)
	in := cfg.InChannels * cfg.ImageSize * cfg.ImageSize
	root := NewSequential(
		NewFlatten(),
		NewLinear("fc1", r, in, hidden),
		NewReLU(),
		NewLinear("fc2", r, hidden, hidden),
		NewReLU(),
		NewLinear("head", r, hidden, cfg.Classes),
	)
	return NewModel("MLP", root)
}

// NewVGGLite builds a VGG-shaped plain convolutional stack: conv-BN-ReLU
// pairs with max-pool downsampling and a small fully connected classifier.
// Like VGG19, it has no skip connections and a classifier-heavy tail.
func NewVGGLite(cfg LiteConfig) *Model {
	r := tensor.NewRNG(cfg.Seed)
	w := cfg.Width
	var layers []Layer
	in := cfg.InChannels
	size := cfg.ImageSize
	for stage, ch := range []int{w, 2 * w, 4 * w} {
		p := fmt.Sprintf("features.%d", stage)
		layers = append(layers,
			NewConv2D(p+".0", r, in, ch, 3, 1, 1),
			NewBatchNorm2D(p+".1", ch),
			NewReLU(),
			NewConv2D(p+".2", r, ch, ch, 3, 1, 1),
			NewBatchNorm2D(p+".3", ch),
			NewReLU(),
			NewMaxPool2D(2, 2),
		)
		in = ch
		size /= 2
	}
	flat := in * size * size
	layers = append(layers,
		NewFlatten(),
		NewLinear("classifier.0", r, flat, 4*w),
		NewReLU(),
		NewLinear("classifier.1", r, 4*w, cfg.Classes),
	)
	return NewModel("VGG19", NewSequential(layers...))
}

// basicBlock returns a ResNet basic block (two 3×3 convs with batch norm)
// with an optional 1×1 downsampling shortcut.
func basicBlock(name string, r *tensor.RNG, in, out, stride int) Layer {
	body := NewSequential(
		NewConv2D(name+".conv1", r, in, out, 3, stride, 1),
		NewBatchNorm2D(name+".bn1", out),
		NewReLU(),
		NewConv2D(name+".conv2", r, out, out, 3, 1, 1),
		NewBatchNorm2D(name+".bn2", out),
	)
	var shortcut Layer
	if stride != 1 || in != out {
		shortcut = NewSequential(
			NewConv2D(name+".down.conv", r, in, out, 1, stride, 0),
			NewBatchNorm2D(name+".down.bn", out),
		)
	}
	return NewResidual(body, shortcut)
}

// NewResNetLite builds a ResNet-shaped residual network with the given
// number of basic blocks per stage. blocks {2,2} with DefaultLiteConfig is
// the ResNet18 twin; {3,4} the (deeper, slower-converging) ResNet152 twin.
func NewResNetLite(name string, cfg LiteConfig, blocks []int) *Model {
	r := tensor.NewRNG(cfg.Seed)
	w := cfg.Width
	layers := []Layer{
		NewConv2D("stem.conv", r, cfg.InChannels, w, 3, 1, 1),
		NewBatchNorm2D("stem.bn", w),
		NewReLU(),
	}
	in := w
	for stage, n := range blocks {
		out := w << stage
		for b := 0; b < n; b++ {
			stride := 1
			if b == 0 && stage > 0 {
				stride = 2
			}
			layers = append(layers, basicBlock(fmt.Sprintf("layer%d.%d", stage+1, b), r, in, out, stride))
			in = out
		}
	}
	layers = append(layers,
		NewGlobalAvgPool2D(),
		NewLinear("fc", r, in, cfg.Classes),
	)
	return NewModel(name, NewSequential(layers...))
}

// NewResNet18Lite is the ResNet18 twin.
func NewResNet18Lite(cfg LiteConfig) *Model {
	return NewResNetLite("ResNet18", cfg, []int{2, 2})
}

// NewResNet152Lite is the ResNet152 twin: deeper stages so that, like the
// real model, it converges more slowly per epoch than the 18-layer variant.
func NewResNet152Lite(cfg LiteConfig) *Model {
	return NewResNetLite("ResNet152", cfg, []int{3, 4})
}

// NewViTLite builds the ViT-Base-16 twin: patch embedding, transformer
// encoder blocks with multi-head attention, class-token pooling and a
// linear head.
func NewViTLite(cfg LiteConfig, dim, heads, depth int) *Model {
	r := tensor.NewRNG(cfg.Seed)
	layers := []Layer{
		NewPatchEmbed("embed", r, cfg.InChannels, cfg.ImageSize, cfg.ImageSize, 4, dim),
	}
	for i := 0; i < depth; i++ {
		layers = append(layers, NewTransformerBlock(fmt.Sprintf("blocks.%d", i), r, dim, heads, 2))
	}
	layers = append(layers,
		NewLayerNorm("norm", dim),
		NewTokenPool(),
		NewLinear("head", r, dim, cfg.Classes),
	)
	return NewModel("ViT-Base-16", NewSequential(layers...))
}

// NewLiteByName builds the lite twin matching a paper workload name.
func NewLiteByName(name string, cfg LiteConfig) (*Model, error) {
	switch name {
	case "VGG19", "vgg19":
		return NewVGGLite(cfg), nil
	case "ResNet18", "resnet18":
		return NewResNet18Lite(cfg), nil
	case "ResNet152", "resnet152":
		return NewResNet152Lite(cfg), nil
	case "ViT-Base-16", "vit-base-16", "vit", "ViT":
		// Embedding width scales with the config width (dim = 4·Width) so
		// the ViT twin gains overcapacity alongside the conv twins.
		return NewViTLite(cfg, 4*cfg.Width, 4, 2), nil
	case "MLP", "mlp":
		return NewMLP(cfg, 64), nil
	}
	return nil, fmt.Errorf("nn: unknown lite model %q", name)
}
