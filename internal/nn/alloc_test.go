package nn

import (
	"testing"

	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// TestSteadyStateStepsAllocationFree pins the scratch-reuse contract: after a
// warm-up step sizes every buffer, a budget-1 forward+backward through each
// layer family allocates nothing. (Budget 1 is the meaningful case — at
// higher budgets the chunk dispatch itself allocates its closure, which is
// one small allocation per kernel call, not per element.)
func TestSteadyStateStepsAllocationFree(t *testing.T) {
	defer par.SetBudget(par.Budget())
	par.SetBudget(1)
	r := tensor.NewRNG(11)

	cases := []struct {
		name string
		step func()
	}{
		{"Linear", func() {
			l := NewLinear("l", r, 64, 32)
			x := tensor.Randn(r, 1, 8, 64)
			g := tensor.Randn(r, 1, 8, 32)
			stepAllocs(t, "Linear", func() {
				l.Forward(x, true)
				l.Backward(g)
			})
		}},
		{"Conv2D+BatchNorm", func() {
			c := NewConv2D("c", r, 3, 8, 3, 1, 1)
			bn := NewBatchNorm2D("bn", 8)
			relu := NewReLU()
			x := tensor.Randn(r, 1, 4, 3, 16, 16)
			g := tensor.Randn(r, 1, 4, 8, 16, 16)
			stepAllocs(t, "Conv2D+BatchNorm", func() {
				y := c.Forward(x, true)
				y = bn.Forward(y, true)
				y = relu.Forward(y, true)
				d := relu.Backward(g)
				d = bn.Backward(d)
				c.Backward(d)
			})
		}},
		{"TransformerBlock", func() {
			b := NewTransformerBlock("b", r, 16, 2, 2)
			x := tensor.Randn(r, 1, 2, 9, 16)
			g := tensor.Randn(r, 1, 2, 9, 16)
			stepAllocs(t, "TransformerBlock", func() {
				b.Forward(x, true)
				b.Backward(g)
			})
		}},
	}
	for _, c := range cases {
		c.step()
	}
}

// stepAllocs warms the layer's scratch, then asserts a steady-state step
// performs zero heap allocations.
func stepAllocs(t *testing.T, name string, step func()) {
	t.Helper()
	for i := 0; i < 3; i++ {
		step()
	}
	if n := testing.AllocsPerRun(10, step); n > 0 {
		t.Errorf("%s: steady-state step allocates %.1f times, want 0", name, n)
	}
}

func benchmarkTrainStep(b *testing.B, model *Model) {
	defer par.SetBudget(par.Budget())
	r := tensor.NewRNG(1)
	x := tensor.Randn(r, 1, 8, 3, 16, 16)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = r.Intn(10)
	}
	opt := NewSGD(0.05, 0.9, 5e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrad()
		logits := model.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
}

func BenchmarkTrainStepMLP(b *testing.B) {
	benchmarkTrainStep(b, NewMLP(DefaultLiteConfig(10, 1), 64))
}

func BenchmarkTrainStepVGG(b *testing.B) {
	benchmarkTrainStep(b, NewVGGLite(DefaultLiteConfig(10, 1)))
}

func BenchmarkTrainStepAttn(b *testing.B) {
	cfg := DefaultLiteConfig(10, 1)
	benchmarkTrainStep(b, NewViTLite(cfg, 4*cfg.Width, 4, 2))
}
