package nn

import "pactrain/internal/tensor"

// Scratch-buffer helpers. Layers keep their forward/backward temporaries
// alive across train steps and re-acquire them through these ensure*
// functions, which return the buffer unchanged when the shape still matches
// and allocate a fresh tensor only when the shape changed (first step, or a
// different batch size at eval time). The helpers are deliberately
// non-variadic: a `shape ...int` signature would allocate the shape slice on
// every call, and the steady-state train step is required to be
// allocation-free.
//
// Reuse safety relies on the layer-graph discipline that already holds for
// the lastInput caches: a layer's output buffer is consumed by the next
// layer within the same forward/backward pass, and no layer touches its own
// buffers again until its next Forward/Backward call. Buffers are fully
// overwritten on reuse (the *Into kernels zero or assign every element), so
// stale values can never leak between steps.

// ensure1 returns buf if it is a (n) tensor, else a new one.
func ensure1(buf *tensor.Tensor, n int) *tensor.Tensor {
	if buf != nil && buf.Rank() == 1 && buf.Dim(0) == n {
		return buf
	}
	return tensor.New(n)
}

// ensure2 returns buf if it is a (r, c) tensor, else a new one.
func ensure2(buf *tensor.Tensor, r, c int) *tensor.Tensor {
	if buf != nil && buf.Rank() == 2 && buf.Dim(0) == r && buf.Dim(1) == c {
		return buf
	}
	return tensor.New(r, c)
}

// ensure3 returns buf if it is a (a, b, c) tensor, else a new one.
func ensure3(buf *tensor.Tensor, a, b, c int) *tensor.Tensor {
	if buf != nil && buf.Rank() == 3 && buf.Dim(0) == a && buf.Dim(1) == b && buf.Dim(2) == c {
		return buf
	}
	return tensor.New(a, b, c)
}

// ensure4 returns buf if it is a (n, c, h, w) tensor, else a new one.
func ensure4(buf *tensor.Tensor, n, c, h, w int) *tensor.Tensor {
	if buf != nil && buf.Rank() == 4 && buf.Dim(0) == n && buf.Dim(1) == c && buf.Dim(2) == h && buf.Dim(3) == w {
		return buf
	}
	return tensor.New(n, c, h, w)
}

// ensureLike returns buf if it has exactly x's shape, else a new tensor of
// that shape.
func ensureLike(buf, x *tensor.Tensor) *tensor.Tensor {
	if buf != nil && buf.SameShape(x) {
		return buf
	}
	return tensor.New(x.Shape()...)
}
