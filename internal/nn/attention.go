package nn

import (
	"math"

	"pactrain/internal/tensor"
)

// MultiHeadAttention implements standard scaled-dot-product multi-head
// self-attention over (N, T, D) token tensors, the core of the ViT workload
// in the paper's evaluation. D must be divisible by the head count.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Parameter
	Bq, Bk, Bv, Bo *Parameter

	D, Heads, Dh int

	// Per-sample caches for backward.
	lastX    *tensor.Tensor
	lastQ    []*tensor.Tensor // per sample (T, D)
	lastK    []*tensor.Tensor
	lastV    []*tensor.Tensor
	lastAttn [][]*tensor.Tensor // [sample][head] (T, T)
	lastO    []*tensor.Tensor   // per sample concatenated head outputs (T, D)
}

// NewMultiHeadAttention constructs an attention layer with Xavier-initialized
// projections.
func NewMultiHeadAttention(name string, r *tensor.RNG, d, heads int) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: attention dim must be divisible by head count")
	}
	mk := func(suffix string) *Parameter {
		return NewParameter(name+"."+suffix, tensor.XavierInit(r, d, d, d, d))
	}
	mkb := func(suffix string) *Parameter {
		return NewParameter(name+"."+suffix, tensor.New(d))
	}
	return &MultiHeadAttention{
		Wq: mk("q.weight"), Wk: mk("k.weight"), Wv: mk("v.weight"), Wo: mk("out.weight"),
		Bq: mkb("q.bias"), Bk: mkb("k.bias"), Bv: mkb("v.bias"), Bo: mkb("out.bias"),
		D: d, Heads: heads, Dh: d / heads,
	}
}

// project computes X·W + b for X of shape (T, D).
func project(x *tensor.Tensor, w, b *Parameter) *tensor.Tensor {
	out := tensor.MatMul(x, w.W)
	t, d := out.Dim(0), out.Dim(1)
	od, bd := out.Data(), b.W.Data()
	for i := 0; i < t; i++ {
		row := od[i*d : (i+1)*d]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// colBlock copies columns [from,to) of a (T, D) matrix into a (T, to-from)
// matrix.
func colBlock(x *tensor.Tensor, from, to int) *tensor.Tensor {
	t, d := x.Dim(0), x.Dim(1)
	w := to - from
	out := tensor.New(t, w)
	xd, od := x.Data(), out.Data()
	for i := 0; i < t; i++ {
		copy(od[i*w:(i+1)*w], xd[i*d+from:i*d+to])
	}
	return out
}

// addColBlock accumulates a (T, w) matrix into columns [from,from+w) of dst.
func addColBlock(dst, src *tensor.Tensor, from int) {
	t, d := dst.Dim(0), dst.Dim(1)
	w := src.Dim(1)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < t; i++ {
		drow := dd[i*d+from : i*d+from+w]
		srow := sd[i*w : (i+1)*w]
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// sampleSlice views sample i of a (N, T, D) tensor as a (T, D) tensor
// sharing storage.
func sampleSlice(x *tensor.Tensor, i int) *tensor.Tensor {
	t, d := x.Dim(1), x.Dim(2)
	return tensor.FromSlice(x.Data()[i*t*d:(i+1)*t*d], t, d)
}

// Forward implements Layer.
func (l *MultiHeadAttention) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastX = x
	l.lastQ = make([]*tensor.Tensor, n)
	l.lastK = make([]*tensor.Tensor, n)
	l.lastV = make([]*tensor.Tensor, n)
	l.lastAttn = make([][]*tensor.Tensor, n)
	l.lastO = make([]*tensor.Tensor, n)
	out := tensor.New(n, t, d)
	scale := float32(1 / math.Sqrt(float64(l.Dh)))

	for s := 0; s < n; s++ {
		xs := sampleSlice(x, s)
		q := project(xs, l.Wq, l.Bq)
		k := project(xs, l.Wk, l.Bk)
		v := project(xs, l.Wv, l.Bv)
		l.lastQ[s], l.lastK[s], l.lastV[s] = q, k, v
		l.lastAttn[s] = make([]*tensor.Tensor, l.Heads)
		o := tensor.New(t, d)
		for h := 0; h < l.Heads; h++ {
			from := h * l.Dh
			qh := colBlock(q, from, from+l.Dh)
			kh := colBlock(k, from, from+l.Dh)
			vh := colBlock(v, from, from+l.Dh)
			scores := tensor.New(t, t)
			tensor.MatMulTransBInto(scores, qh, kh)
			scores.ScaleInPlace(scale)
			softmaxRows(scores)
			l.lastAttn[s][h] = scores
			oh := tensor.MatMul(scores, vh)
			addColBlock(o, oh, from)
		}
		l.lastO[s] = o
		y := project(o, l.Wo, l.Bo)
		copy(out.Data()[s*t*d:(s+1)*t*d], y.Data())
	}
	return out
}

// softmaxRows applies softmax to each row of a rank-2 tensor in place.
func softmaxRows(x *tensor.Tensor) {
	t, c := x.Dim(0), x.Dim(1)
	d := x.Data()
	for i := 0; i < t; i++ {
		row := d[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// Backward implements Layer.
func (l *MultiHeadAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := grad.Dim(0), grad.Dim(1), grad.Dim(2)
	dx := tensor.New(n, t, d)
	scale := float32(1 / math.Sqrt(float64(l.Dh)))

	for s := 0; s < n; s++ {
		gs := sampleSlice(grad, s)
		xs := sampleSlice(l.lastX, s)
		o := l.lastO[s]

		// Output projection: y = o·Wo + bo.
		dWo := tensor.New(d, d)
		tensor.MatMulTransAInto(dWo, o, gs)
		tensor.AxpyInto(l.Wo.Grad, 1, dWo)
		accumBias(l.Bo.Grad, gs)
		do := tensor.New(t, d)
		tensor.MatMulTransBInto(do, gs, l.Wo.W)

		dq := tensor.New(t, d)
		dk := tensor.New(t, d)
		dv := tensor.New(t, d)
		for h := 0; h < l.Heads; h++ {
			from := h * l.Dh
			doh := colBlock(do, from, from+l.Dh)
			attn := l.lastAttn[s][h]
			vh := colBlock(l.lastV[s], from, from+l.Dh)
			qh := colBlock(l.lastQ[s], from, from+l.Dh)
			kh := colBlock(l.lastK[s], from, from+l.Dh)

			// oh = attn · vh.
			dAttn := tensor.New(t, t)
			tensor.MatMulTransBInto(dAttn, doh, vh)
			dVh := tensor.New(t, l.Dh)
			tensor.MatMulTransAInto(dVh, attn, doh)

			// Softmax backward per row: ds = A ⊙ (dA − Σ(dA⊙A)).
			ad, dad := attn.Data(), dAttn.Data()
			for i := 0; i < t; i++ {
				var dot float64
				for j := 0; j < t; j++ {
					dot += float64(dad[i*t+j]) * float64(ad[i*t+j])
				}
				for j := 0; j < t; j++ {
					dad[i*t+j] = ad[i*t+j] * (dad[i*t+j] - float32(dot))
				}
			}
			dAttn.ScaleInPlace(scale)

			// scores = qh·khᵀ.
			dQh := tensor.MatMul(dAttn, kh)
			dKh := tensor.New(t, l.Dh)
			tensor.MatMulTransAInto(dKh, dAttn, qh)

			addColBlock(dq, dQh, from)
			addColBlock(dk, dKh, from)
			addColBlock(dv, dVh, from)
		}

		// Input projections: q = x·Wq + bq etc.
		dxs := sampleSlice(dx, s)
		backProject(l.Wq, l.Bq, xs, dq, dxs)
		backProject(l.Wk, l.Bk, xs, dk, dxs)
		backProject(l.Wv, l.Bv, xs, dv, dxs)
	}
	return dx
}

// backProject accumulates gradients for a projection y = x·W + b given dY,
// adding the input gradient into dxAccum.
func backProject(w, b *Parameter, x, dy, dxAccum *tensor.Tensor) {
	d := w.W.Dim(0)
	dW := tensor.New(d, w.W.Dim(1))
	tensor.MatMulTransAInto(dW, x, dy)
	tensor.AxpyInto(w.Grad, 1, dW)
	accumBias(b.Grad, dy)
	dxPart := tensor.New(x.Dim(0), d)
	tensor.MatMulTransBInto(dxPart, dy, w.W)
	tensor.AxpyInto(dxAccum, 1, dxPart)
}

// accumBias adds the column sums of a (T, D) gradient into a (D) bias grad.
func accumBias(biasGrad, dy *tensor.Tensor) {
	t, d := dy.Dim(0), dy.Dim(1)
	bg, gd := biasGrad.Data(), dy.Data()
	for i := 0; i < t; i++ {
		row := gd[i*d : (i+1)*d]
		for j := range row {
			bg[j] += row[j]
		}
	}
}

// Params implements Layer.
func (l *MultiHeadAttention) Params() []*Parameter {
	return []*Parameter{l.Wq, l.Bq, l.Wk, l.Bk, l.Wv, l.Bv, l.Wo, l.Bo}
}

// PatchEmbed splits an image into non-overlapping patches, projects each to
// an embedding, prepends a learnable class token, and adds positional
// embeddings: (N, C, H, W) → (N, T+1, D) with T = (H/ps)·(W/ps).
type PatchEmbed struct {
	Proj   *Parameter // (D, C*ps*ps)
	Bias   *Parameter // (D)
	Cls    *Parameter // (D)
	PosEmb *Parameter // (T+1, D)

	C, PS, D, T int

	lastCols  *tensor.Tensor
	lastShape []int
}

// NewPatchEmbed constructs the embedding for images of (c, h, w) with square
// patch size ps and embedding dimension d.
func NewPatchEmbed(name string, r *tensor.RNG, c, h, w, ps, d int) *PatchEmbed {
	if h%ps != 0 || w%ps != 0 {
		panic("nn: image size must be divisible by patch size")
	}
	t := (h / ps) * (w / ps)
	patch := c * ps * ps
	return &PatchEmbed{
		Proj:   NewParameter(name+".proj.weight", tensor.XavierInit(r, patch, d, d, patch)),
		Bias:   NewParameter(name+".proj.bias", tensor.New(d)),
		Cls:    NewParameter(name+".cls", tensor.Randn(r, 0.02, d)),
		PosEmb: NewParameter(name+".pos", tensor.Randn(r, 0.02, t+1, d)),
		C:      c, PS: ps, D: d, T: t,
	}
}

// Forward implements Layer.
func (l *PatchEmbed) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Dim(0)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	cols := tensor.Im2Col(x, l.PS, l.PS, l.PS, 0) // (N*T, patch)
	l.lastCols = cols
	proj := tensor.New(n*l.T, l.D)
	tensor.MatMulTransBInto(proj, cols, l.Proj.W)

	out := tensor.New(n, l.T+1, l.D)
	od, pd := out.Data(), proj.Data()
	bd, cd, ed := l.Bias.W.Data(), l.Cls.W.Data(), l.PosEmb.W.Data()
	for s := 0; s < n; s++ {
		base := s * (l.T + 1) * l.D
		for j := 0; j < l.D; j++ {
			od[base+j] = cd[j] + ed[j]
		}
		for tk := 0; tk < l.T; tk++ {
			src := pd[(s*l.T+tk)*l.D : (s*l.T+tk+1)*l.D]
			dst := od[base+(tk+1)*l.D : base+(tk+2)*l.D]
			pos := ed[(tk+1)*l.D : (tk+2)*l.D]
			for j := range dst {
				dst[j] = src[j] + bd[j] + pos[j]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *PatchEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	gd := grad.Data()
	cg, eg, bg := l.Cls.Grad.Data(), l.PosEmb.Grad.Data(), l.Bias.Grad.Data()
	dProj := tensor.New(n*l.T, l.D)
	dpd := dProj.Data()
	for s := 0; s < n; s++ {
		base := s * (l.T + 1) * l.D
		for j := 0; j < l.D; j++ {
			cg[j] += gd[base+j]
			eg[j] += gd[base+j]
		}
		for tk := 0; tk < l.T; tk++ {
			row := gd[base+(tk+1)*l.D : base+(tk+2)*l.D]
			pos := eg[(tk+1)*l.D : (tk+2)*l.D]
			dst := dpd[(s*l.T+tk)*l.D : (s*l.T+tk+1)*l.D]
			for j, v := range row {
				pos[j] += v
				bg[j] += v
				dst[j] = v
			}
		}
	}
	// dW = dProjᵀ × cols → (D, patch).
	dW := tensor.New(l.D, l.Proj.W.Dim(1))
	tensor.MatMulTransAInto(dW, dProj, l.lastCols)
	tensor.AxpyInto(l.Proj.Grad, 1, dW)
	// dcols = dProj × W.
	dcols := tensor.MatMul(dProj, l.Proj.W)
	h, w := l.lastShape[2], l.lastShape[3]
	return tensor.Col2Im(dcols, n, l.C, h, w, l.PS, l.PS, l.PS, 0)
}

// Params implements Layer.
func (l *PatchEmbed) Params() []*Parameter {
	return []*Parameter{l.Proj, l.Bias, l.Cls, l.PosEmb}
}

// TransformerBlock is a pre-norm transformer encoder block:
//
//	x = x + MHA(LN1(x)); x = x + MLP(LN2(x))
//
// with a GELU MLP of expansion factor mlpRatio.
type TransformerBlock struct {
	LN1  *LayerNorm
	Attn *MultiHeadAttention
	LN2  *LayerNorm
	FC1  *Linear
	Act  *GELU
	FC2  *Linear

	lastShape []int
}

// NewTransformerBlock builds a block of width d with the given head count
// and MLP expansion ratio.
func NewTransformerBlock(name string, r *tensor.RNG, d, heads, mlpRatio int) *TransformerBlock {
	return &TransformerBlock{
		LN1:  NewLayerNorm(name+".ln1", d),
		Attn: NewMultiHeadAttention(name+".attn", r, d, heads),
		LN2:  NewLayerNorm(name+".ln2", d),
		FC1:  NewLinear(name+".mlp.fc1", r, d, d*mlpRatio),
		Act:  NewGELU(),
		FC2:  NewLinear(name+".mlp.fc2", r, d*mlpRatio, d),
	}
}

// Forward implements Layer.
func (l *TransformerBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastShape = []int{n, t, d}
	a := l.Attn.Forward(l.LN1.Forward(x, train), train)
	x1 := tensor.Add(x, a)
	h := l.LN2.Forward(x1, train)
	h2 := l.FC1.Forward(h.Reshape(n*t, d), train)
	h3 := l.Act.Forward(h2, train)
	h4 := l.FC2.Forward(h3, train)
	return tensor.Add(x1, h4.Reshape(n, t, d))
}

// Backward implements Layer.
func (l *TransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := l.lastShape[0], l.lastShape[1], l.lastShape[2]
	// MLP branch.
	gm := l.FC2.Backward(grad.Reshape(n*t, d))
	gm = l.Act.Backward(gm)
	gm = l.FC1.Backward(gm)
	gm = l.LN2.Backward(gm.Reshape(n, t, d))
	dx1 := tensor.Add(grad, gm)
	// Attention branch.
	ga := l.Attn.Backward(dx1)
	ga = l.LN1.Backward(ga)
	return tensor.Add(dx1, ga)
}

// Params implements Layer.
func (l *TransformerBlock) Params() []*Parameter {
	var ps []*Parameter
	ps = append(ps, l.LN1.Params()...)
	ps = append(ps, l.Attn.Params()...)
	ps = append(ps, l.LN2.Params()...)
	ps = append(ps, l.FC1.Params()...)
	ps = append(ps, l.FC2.Params()...)
	return ps
}

// TokenPool extracts the class token (index 0) from (N, T, D), producing
// (N, D) for the classifier head.
type TokenPool struct {
	lastShape []int
}

// NewTokenPool returns a class-token pooling layer.
func NewTokenPool() *TokenPool { return &TokenPool{} }

// Forward implements Layer.
func (l *TokenPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastShape = []int{n, t, d}
	out := tensor.New(n, d)
	xd, od := x.Data(), out.Data()
	for s := 0; s < n; s++ {
		copy(od[s*d:(s+1)*d], xd[s*t*d:s*t*d+d])
	}
	return out
}

// Backward implements Layer.
func (l *TokenPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := l.lastShape[0], l.lastShape[1], l.lastShape[2]
	dx := tensor.New(n, t, d)
	gd, dd := grad.Data(), dx.Data()
	for s := 0; s < n; s++ {
		copy(dd[s*t*d:s*t*d+d], gd[s*d:(s+1)*d])
	}
	return dx
}

// Params implements Layer.
func (l *TokenPool) Params() []*Parameter { return nil }
